(** Kernel symbol table: every callable entity (kernel export, module
    function, attacker payload) is interned at a unique fake text
    address, so function pointers in simulated memory are plain
    integers that corruption can redirect and CALL capabilities can
    name. *)

type t = {
  by_name : (string, int) Hashtbl.t;
  by_addr : (int, string) Hashtbl.t;
  mutable text_cursor : int;
}

val create : unit -> t

exception Unknown_symbol of string

val intern : t -> string -> int
(** Assign a fresh kernel-text address (idempotent). *)

val register_at : t -> string -> int -> unit
(** Bind a name at a caller-chosen address (module text, user
    payloads). *)

val addr_of : t -> string -> int
val addr_of_opt : t -> string -> int option
val name_of : t -> int -> string option

val pp_addr : t -> Format.formatter -> int -> unit
(** Print an address with its symbol name when known. *)

(** Network-device core: [struct net_device], device ops, qdisc-lite
    transmit path, NAPI receive path.

    This is the Figure 1 interface of the paper: modules allocate a
    [net_device], point [dev->dev_ops] at their own ops table (in module
    memory!), and the core kernel later invokes [ndo_start_xmit] and the
    NAPI [poll] callback through those module-written pointers — the
    exact indirect-call sites the LXFI kernel rewriter must guard. *)

let dev_struct = "net_device"
let ops_struct = "net_device_ops"
let napi_struct = "napi_struct"
let qdisc_struct = "qdisc"

let define_layout types =
  ignore
    (Ktypes.define types qdisc_struct
       [
         ("enqueue", 8, Ktypes.Funcptr "qdisc_ops.enqueue");
         ("dequeue", 8, Ktypes.Funcptr "qdisc_ops.dequeue");
         ("skb", 8, Ktypes.Pointer);
         ("qlen", 4, Ktypes.Scalar);
       ]);
  ignore
    (Ktypes.define types ops_struct
       [
         ("ndo_open", 8, Ktypes.Funcptr "net_device_ops.ndo_open");
         ("ndo_stop", 8, Ktypes.Funcptr "net_device_ops.ndo_stop");
         ("ndo_start_xmit", 8, Ktypes.Funcptr "net_device_ops.ndo_start_xmit");
         ("ndo_set_rx_mode", 8, Ktypes.Funcptr "net_device_ops.ndo_set_rx_mode");
       ]);
  ignore
    (Ktypes.define types dev_struct
       [
         ("dev_ops", 8, Ktypes.Pointer);
         ("qdisc", 8, Ktypes.Pointer);
         ("priv", 8, Ktypes.Pointer);
         ("mtu", 4, Ktypes.Scalar);
         ("flags", 4, Ktypes.Scalar);
         ("tx_packets", 8, Ktypes.Scalar);
         ("tx_bytes", 8, Ktypes.Scalar);
         ("rx_packets", 8, Ktypes.Scalar);
         ("rx_bytes", 8, Ktypes.Scalar);
         ("name", 16, Ktypes.Scalar);
       ]);
  ignore
    (Ktypes.define types napi_struct
       [
         ("dev", 8, Ktypes.Pointer);
         ("poll", 8, Ktypes.Funcptr "napi.poll");
         ("weight", 4, Ktypes.Scalar);
         ("scheduled", 4, Ktypes.Scalar);
       ])

(* netdev_tx_t values *)
let netdev_tx_ok = 0L
let netdev_tx_busy = 16L

type t = {
  kst : Kstate.t;
  mutable devices : int list;  (** registered net_device addresses *)
  mutable napis : int list;  (** registered napi_struct addresses *)
  mutable rx_delivered_pkts : int;
  mutable rx_delivered_bytes : int;
  pfifo_enqueue_addr : int;  (** kernel function behind qdisc enqueue slots *)
  pfifo_dequeue_addr : int;
  ptype_slot : int;  (** kernel-memory slot holding the L3 receive handler *)
}

let qoff_ types f = Ktypes.offset types qdisc_struct f

let create kst =
  (* The default packet scheduler: kernel functions stored in kernel
     memory as function pointers and invoked indirectly by
     [dev_queue_xmit].  These are the indirect-call sites the writer-set
     fast path elides: no module ever receives WRITE on a qdisc. *)
  let enqueue_addr =
    Kstate.register_kernel_fn kst "pfifo_fast_enqueue" (fun args ->
        match args with
        | [ qdisc; skb ] ->
            let q = Int64.to_int qdisc in
            Kcycles.charge kst.Kstate.cycles Kcycles.Kernel 18;
            Kmem.write_ptr kst.Kstate.mem (q + qoff_ kst.Kstate.types "skb")
              (Int64.to_int skb);
            Kmem.write_u32 kst.Kstate.mem (q + qoff_ kst.Kstate.types "qlen") 1;
            0L
        | _ -> raise (Kstate.Oops "pfifo_fast_enqueue: bad arity"))
  in
  let dequeue_addr =
    Kstate.register_kernel_fn kst "pfifo_fast_dequeue" (fun args ->
        match args with
        | [ qdisc ] ->
            let q = Int64.to_int qdisc in
            Kcycles.charge kst.Kstate.cycles Kcycles.Kernel 18;
            let skb = Kmem.read_ptr kst.Kstate.mem (q + qoff_ kst.Kstate.types "skb") in
            Kmem.write_u32 kst.Kstate.mem (q + qoff_ kst.Kstate.types "qlen") 0;
            Int64.of_int skb
        | _ -> raise (Kstate.Oops "pfifo_fast_dequeue: bad arity"))
  in
  (* The protocol-layer receive handler (ip_rcv analogue), also reached
     through a kernel-memory function-pointer slot. *)
  let ip_rcv_addr =
    Kstate.register_kernel_fn kst "ip_rcv" (fun _args ->
        Kcycles.charge kst.Kstate.cycles Kcycles.Kernel 60;
        0L)
  in
  let ptype_slot = Slab.kmalloc kst.Kstate.slab 8 in
  Kmem.write_ptr kst.Kstate.mem ptype_slot ip_rcv_addr;
  {
    kst;
    devices = [];
    napis = [];
    rx_delivered_pkts = 0;
    rx_delivered_bytes = 0;
    pfifo_enqueue_addr = enqueue_addr;
    pfifo_dequeue_addr = dequeue_addr;
    ptype_slot;
  }

let doff t f = Ktypes.offset t.kst.Kstate.types dev_struct f
let oops_off t f = Ktypes.offset t.kst.Kstate.types ops_struct f
let noff t f = Ktypes.offset t.kst.Kstate.types napi_struct f
let qoff t f = qoff_ t.kst.Kstate.types f

(** [alloc_netdev t ~name] allocates and minimally initialises a
    [net_device]; exported to modules as [alloc_etherdev]. *)
let alloc_netdev t ~name =
  let kst = t.kst in
  Kcycles.charge kst.cycles Kcycles.Kernel 80;
  let dev = Slab.kmalloc kst.slab (Ktypes.sizeof kst.types dev_struct) in
  Kmem.write_u32 kst.mem (dev + doff t "mtu") 1500;
  Kmem.write_bytes kst.mem ~addr:(dev + doff t "name")
    (let n = if String.length name > 15 then String.sub name 0 15 else name in
     n ^ "\000");
  (* Attach the default qdisc: a kernel-memory object whose function
     pointers point at core-kernel code. *)
  let q = Slab.kmalloc kst.slab (Ktypes.sizeof kst.types qdisc_struct) in
  Kmem.write_ptr kst.mem (q + qoff t "enqueue") t.pfifo_enqueue_addr;
  Kmem.write_ptr kst.mem (q + qoff t "dequeue") t.pfifo_dequeue_addr;
  Kmem.write_ptr kst.mem (dev + doff t "qdisc") q;
  dev

let register_netdev t dev =
  Kcycles.charge t.kst.cycles Kcycles.Kernel 120;
  t.devices <- dev :: t.devices;
  0L

let dev_name t dev =
  let b = Kmem.read_bytes t.kst.mem ~addr:(dev + doff t "name") ~len:16 in
  let s = Bytes.to_string b in
  match String.index_opt s '\000' with Some i -> String.sub s 0 i | None -> s

(** [netif_napi_add t ~dev ~napi ~poll] — the Figure 1 callback
    registration: stores the module's poll pointer into the napi
    struct. In the real kernel the module passes a bare function
    pointer; here module code stores it itself and calls this to
    register, which preserves the "pointer lives in module-writable
    memory" property the writer-set check needs. *)
let netif_napi_add t ~dev ~napi ~weight =
  Kcycles.charge t.kst.cycles Kcycles.Kernel 30;
  Kmem.write_ptr t.kst.mem (napi + noff t "dev") dev;
  Kmem.write_u32 t.kst.mem (napi + noff t "weight") weight;
  t.napis <- napi :: t.napis

let napi_schedule t napi =
  Kcycles.charge t.kst.cycles Kcycles.Kernel 12;
  Kmem.write_u32 t.kst.mem (napi + noff t "scheduled") 1

(** [dev_queue_xmit t skb] — core-kernel transmit path: charges the
    qdisc/stack cost and invokes the driver's [ndo_start_xmit] through
    the module-written ops slot (a guarded kernel indirect call). *)
let dev_queue_xmit t skb =
  let kst = t.kst in
  let dev = Skbuff.dev kst skb in
  if dev = 0 then raise (Kstate.Oops "dev_queue_xmit: skb without device");
  Kcycles.charge kst.cycles Kcycles.Kernel 55 (* txq lock, headers *);
  (* Packet scheduler: two kernel indirect calls through kernel-owned
     slots (writer-set fast path applies), then the driver's
     ndo_start_xmit through the module-owned ops slot. *)
  let q = Kmem.read_ptr kst.mem (dev + doff t "qdisc") in
  ignore
    (Kstate.call_ptr kst ~slot:(q + qoff t "enqueue") ~ftype:"qdisc_ops.enqueue"
       [ Int64.of_int q; Int64.of_int skb ]);
  let skb' =
    Kstate.call_ptr kst ~slot:(q + qoff t "dequeue") ~ftype:"qdisc_ops.dequeue"
      [ Int64.of_int q ]
  in
  let skb = Int64.to_int skb' in
  let ops = Kmem.read_ptr kst.mem (dev + doff t "dev_ops") in
  let slot = ops + oops_off t "ndo_start_xmit" in
  let ret =
    Kstate.call_ptr kst ~slot ~ftype:"net_device_ops.ndo_start_xmit"
      [ Int64.of_int skb; Int64.of_int dev ]
  in
  if ret = netdev_tx_ok then begin
    let tx_p = dev + doff t "tx_packets" and tx_b = dev + doff t "tx_bytes" in
    Kmem.write_u64 kst.mem tx_p (Int64.add (Kmem.read_u64 kst.mem tx_p) 1L);
    Kmem.write_u64 kst.mem tx_b
      (Int64.add (Kmem.read_u64 kst.mem tx_b) (Int64.of_int (Skbuff.len kst skb)))
  end;
  ret

(** [netif_rx t skb] — driver hands a received packet to the stack; the
    stack consumes (frees) it. *)
let netif_rx t skb =
  let kst = t.kst in
  Kcycles.charge kst.cycles Kcycles.Kernel 80 (* demux + socket queue *);
  (* Protocol dispatch through the packet-type handler slot (kernel
     memory; fast-path elidable). *)
  ignore
    (Kstate.call_ptr kst ~slot:t.ptype_slot ~ftype:"packet_type.func"
       [ Int64.of_int skb ]);
  t.rx_delivered_pkts <- t.rx_delivered_pkts + 1;
  t.rx_delivered_bytes <- t.rx_delivered_bytes + Skbuff.len kst skb;
  let dev = Skbuff.dev kst skb in
  if dev <> 0 then begin
    let rx_p = dev + doff t "rx_packets" and rx_b = dev + doff t "rx_bytes" in
    Kmem.write_u64 kst.mem rx_p (Int64.add (Kmem.read_u64 kst.mem rx_p) 1L);
    Kmem.write_u64 kst.mem rx_b
      (Int64.add (Kmem.read_u64 kst.mem rx_b) (Int64.of_int (Skbuff.len kst skb)))
  end;
  Skbuff.free kst skb;
  0L

(** [poll_scheduled t ~budget] — softirq loop: invoke each scheduled
    NAPI's module poll callback through its slot. Returns the total work
    reported by the polls. *)
let poll_scheduled t ~budget =
  let kst = t.kst in
  let total = ref 0 in
  List.iter
    (fun napi ->
      if Kmem.read_u32 kst.mem (napi + noff t "scheduled") = 1 then begin
        Kmem.write_u32 kst.mem (napi + noff t "scheduled") 0;
        Kcycles.charge kst.cycles Kcycles.Kernel 50;
        let slot = napi + noff t "poll" in
        let done_ =
          Kstate.call_ptr kst ~slot ~ftype:"napi.poll"
            [ Int64.of_int napi; Int64.of_int budget ]
        in
        total := !total + Int64.to_int done_
      end)
    t.napis;
  !total

let stats t dev =
  let r f = Int64.to_int (Kmem.read_u64 t.kst.mem (dev + doff t f)) in
  (r "tx_packets", r "tx_bytes", r "rx_packets", r "rx_bytes")

(** Block layer + device-mapper substrate, enough to host the paper's
    three dm modules (dm-crypt, dm-zero, dm-snapshot).

    A device-mapper target module registers a [target_type] whose
    constructor/destructor/map pointers live in module memory; the core
    calls them indirectly per table-create and per-bio.  Each mapped
    device is a natural module {e principal} (paper §3.1: "device mapper
    modules provide a layered block device abstraction that can be
    instantiated for a particular block device"). *)

let tt_struct = "target_type"
let ti_struct = "dm_target"
let bio_struct = "bio"

let define_layout types =
  ignore
    (Ktypes.define types tt_struct
       [
         ("ctr", 8, Ktypes.Funcptr "target_type.ctr");
         ("dtr", 8, Ktypes.Funcptr "target_type.dtr");
         ("map", 8, Ktypes.Funcptr "target_type.map");
       ]);
  ignore
    (Ktypes.define types ti_struct
       [
         ("private", 8, Ktypes.Pointer);
         ("begin", 8, Ktypes.Scalar);
         ("len", 8, Ktypes.Scalar);
         ("error", 4, Ktypes.Scalar);
       ]);
  ignore
    (Ktypes.define types bio_struct
       [
         ("sector", 8, Ktypes.Scalar);
         ("data", 8, Ktypes.Pointer);
         ("size", 4, Ktypes.Scalar);
         ("rw", 4, Ktypes.Scalar);  (* 0 read, 1 write *)
         ("status", 4, Ktypes.Scalar);
       ])

(* dm map return codes *)
let dm_mapio_submitted = 0L
let dm_mapio_remapped = 1L

type t = {
  kst : Kstate.t;
  targets : (string, int) Hashtbl.t;  (** target name -> target_type addr *)
  mutable mapped : (string * int * int) list;
      (** mapped devices: (dm name, dm_target addr, target_type addr) *)
  mutable backing_io : int;  (** bios that reached the "backing device" *)
}

let create kst = { kst; targets = Hashtbl.create 8; mapped = []; backing_io = 0 }

let ttoff t f = Ktypes.offset t.kst.Kstate.types tt_struct f
let tioff t f = Ktypes.offset t.kst.Kstate.types ti_struct f
let boff t f = Ktypes.offset t.kst.Kstate.types bio_struct f

(** [register_target t ~name ~tt] — exported to dm modules. *)
let register_target t ~name ~tt =
  if Hashtbl.mem t.targets name then -17L
  else begin
    Hashtbl.replace t.targets name tt;
    0L
  end

let unregister_target t ~name = Hashtbl.remove t.targets name

(** [dm_create t ~target ~name ~len ~arg] builds a mapped device over
    the named target: allocates the [dm_target] and runs the module's
    constructor through the ctr slot.  Returns the dm_target address or
    an error. *)
let dm_create t ~target ~name ~len ~arg =
  let kst = t.kst in
  match Hashtbl.find_opt t.targets target with
  | None -> Error "no such target"
  | Some tt ->
      Kcycles.charge kst.cycles Kcycles.Kernel 150;
      let ti = Slab.kmalloc kst.slab (Ktypes.sizeof kst.types ti_struct) in
      Kmem.write_u64 kst.mem (ti + tioff t "len") (Int64.of_int len);
      let slot = tt + ttoff t "ctr" in
      let ret =
        Kstate.call_ptr kst ~slot ~ftype:"target_type.ctr"
          [ Int64.of_int ti; Int64.of_int arg ]
      in
      if ret <> 0L then Error (Printf.sprintf "ctr failed: %Ld" ret)
      else begin
        t.mapped <- (name, ti, tt) :: t.mapped;
        Ok ti
      end

let dm_destroy t ~name =
  match List.find_opt (fun (n, _, _) -> n = name) t.mapped with
  | None -> ()
  | Some (_, ti, tt) ->
      let slot = tt + ttoff t "dtr" in
      ignore (Kstate.call_ptr t.kst ~slot ~ftype:"target_type.dtr" [ Int64.of_int ti ]);
      t.mapped <- List.filter (fun (n, _, _) -> n <> name) t.mapped

(** [alloc_bio t ~sector ~size ~rw] allocates a bio with a data buffer. *)
let alloc_bio t ~sector ~size ~rw =
  let kst = t.kst in
  let bio = Slab.kmalloc kst.slab (Ktypes.sizeof kst.types bio_struct) in
  let data = Slab.kmalloc kst.slab (max size 1) in
  Kmem.write_u64 kst.mem (bio + boff t "sector") (Int64.of_int sector);
  Kmem.write_ptr kst.mem (bio + boff t "data") data;
  Kmem.write_u32 kst.mem (bio + boff t "size") size;
  Kmem.write_u32 kst.mem (bio + boff t "rw") rw;
  bio

let free_bio t bio =
  let data = Kmem.read_ptr t.kst.mem (bio + boff t "data") in
  if data <> 0 && Slab.is_live t.kst.slab data then Slab.kfree t.kst.slab data;
  Slab.kfree t.kst.slab bio

(** [submit_bio t ~name bio] routes a bio through the named mapped
    device: the module's [map] runs via the map slot; a REMAPPED result
    sends the bio on to the backing device (counted). *)
let submit_bio t ~name bio =
  let kst = t.kst in
  match List.find_opt (fun (n, _, _) -> n = name) t.mapped with
  | None -> Error "no such mapped device"
  | Some (_, ti, tt) ->
      Kcycles.charge kst.cycles Kcycles.Kernel 120;
      let slot = tt + ttoff t "map" in
      let ret =
        Kstate.call_ptr kst ~slot ~ftype:"target_type.map"
          [ Int64.of_int ti; Int64.of_int bio ]
      in
      if ret = dm_mapio_remapped || ret = dm_mapio_submitted then begin
        t.backing_io <- t.backing_io + 1;
        Ok ret
      end
      else Error (Printf.sprintf "map failed: %Ld" ret)

(** Network-device core — the paper's Figure 1 interface: modules
    allocate a [net_device], point [dev_ops] at their own ops table in
    module memory, and the core later invokes [ndo_start_xmit] and the
    NAPI poll through those module-written pointers.  The transmit
    path also performs two indirect calls through the kernel-owned
    default qdisc, and receive dispatches through a kernel-owned
    protocol-handler slot — the sites the writer-set fast path
    elides. *)

val dev_struct : string
val ops_struct : string
val napi_struct : string
val qdisc_struct : string
val define_layout : Ktypes.t -> unit

val netdev_tx_ok : int64
val netdev_tx_busy : int64

type t = {
  kst : Kstate.t;
  mutable devices : int list;
  mutable napis : int list;
  mutable rx_delivered_pkts : int;
  mutable rx_delivered_bytes : int;
  pfifo_enqueue_addr : int;
  pfifo_dequeue_addr : int;
  ptype_slot : int;
}

val create : Kstate.t -> t

val alloc_netdev : t -> name:string -> int
(** Allocate and minimally initialise a [net_device] (with its default
    qdisc attached); exported to modules as [alloc_etherdev]. *)

val register_netdev : t -> int -> int64
val dev_name : t -> int -> string
val netif_napi_add : t -> dev:int -> napi:int -> weight:int -> unit
val napi_schedule : t -> int -> unit

val dev_queue_xmit : t -> int -> int64
(** Core transmit: qdisc enqueue/dequeue (kernel ind-calls) then the
    driver's [ndo_start_xmit] (module ind-call); updates device stats
    on NETDEV_TX_OK. *)

val netif_rx : t -> int -> int64
(** Driver hands a packet up; protocol dispatch, stats, and the stack
    consumes (frees) the skb. *)

val poll_scheduled : t -> budget:int -> int
(** Softirq loop: invoke every scheduled NAPI's poll through its slot;
    returns total work reported. *)

val stats : t -> int -> int * int * int * int
(** (tx_packets, tx_bytes, rx_packets, rx_bytes) of a device. *)

(** Minimal System-V shared-memory subsystem — the {e victim} of the
    CAN BCM exploit (§8.1).

    In Jon Oberheide's original exploit, the attacker arranges for a
    [struct shmid_kernel] slab object to sit directly after the
    undersized CAN BCM buffer; the overflow rewrites a pointer that
    [shmctl] later follows to a function pointer the kernel invokes.
    Our [shmid_kernel] is collapsed to the essential 16 bytes — a magic
    word and the operation pointer itself — allocated from the same
    16-byte slab class as the overflowed buffer, so the adjacency the
    exploit needs arises exactly as on the real SLUB allocator. *)

let shm_struct = "shmid_kernel"

let define_layout types =
  ignore
    (Ktypes.define types shm_struct
       [ ("magic", 8, Ktypes.Scalar); ("ipc_op", 8, Ktypes.Funcptr "ipc_ops.getinfo") ])

let magic = 0x53484d4bL (* "SHMK" *)

type t = {
  kst : Kstate.t;
  mutable segments : (int * int) list;  (** shmid -> shmid_kernel address *)
  mutable next_id : int;
  default_op : int;  (** kernel function all segments start with *)
}

let create kst =
  let default_op =
    Kstate.register_kernel_fn kst "shm_getinfo" (fun _args ->
        Kcycles.charge kst.Kstate.cycles Kcycles.Kernel 25;
        0L)
  in
  { kst; segments = []; next_id = 1; default_op }

let ipc_off t = Ktypes.offset t.kst.Kstate.types shm_struct "ipc_op"

(** [sys_shmget t] allocates a segment descriptor from the slab and
    returns its id. *)
let sys_shmget t =
  let kst = t.kst in
  Kcycles.charge kst.cycles Kcycles.Kernel 150;
  let seg = Slab.kmalloc kst.Kstate.slab (Ktypes.sizeof kst.Kstate.types shm_struct) in
  Kmem.write_u64 kst.Kstate.mem seg magic;
  Kmem.write_ptr kst.Kstate.mem (seg + ipc_off t) t.default_op;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.segments <- (id, seg) :: t.segments;
  id

let segment_addr t id = List.assoc id t.segments

(** [sys_shmctl t ~id] — the kernel follows the segment's operation
    pointer: the indirect call the CAN BCM exploit redirects. *)
let sys_shmctl t ~id =
  let kst = t.kst in
  Kcycles.charge kst.cycles Kcycles.Kernel 100;
  match List.assoc_opt id t.segments with
  | None -> -22L
  | Some seg ->
      let slot = seg + ipc_off t in
      Kstate.call_ptr kst ~slot ~ftype:"ipc_ops.getinfo" [ Int64.of_int seg ]

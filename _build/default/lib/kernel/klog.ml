(** Kernel log — a thin wrapper around [Logs] with a dedicated source.

    The simulated kernel and the LXFI runtime report noteworthy events
    (module loads, capability violations, oopses) through this module so
    that tests and benchmarks can silence or capture them uniformly. *)

let src = Logs.Src.create "kernel_sim" ~doc:"Simulated Linux kernel substrate"

module Log = (val Logs.src_log src : Logs.LOG)

let debug fmt = Format.kasprintf (fun s -> Log.debug (fun m -> m "%s" s)) fmt
let info fmt = Format.kasprintf (fun s -> Log.info (fun m -> m "%s" s)) fmt
let warn fmt = Format.kasprintf (fun s -> Log.warn (fun m -> m "%s" s)) fmt
let err fmt = Format.kasprintf (fun s -> Log.err (fun m -> m "%s" s)) fmt

(** [quiet ()] disables all kernel log output (used by benchmarks). *)
let quiet () = Logs.Src.set_level src None

(** [verbose ()] enables debug-level output on the kernel source. *)
let verbose () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src (Some Logs.Debug)

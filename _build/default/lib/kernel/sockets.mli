(** Socket layer: protocol-family registry and the syscall surface the
    attack programs and workloads use.  Protocol modules register a
    [net_proto_family] and a [proto_ops] table living in module memory;
    the kernel invokes create/sendmsg/recvmsg/ioctl/bind/release
    through those slots — the RDS and Econet exploits end at exactly
    such an invocation of a corrupted [proto_ops.ioctl]. *)

val socket_struct : string
val ops_struct : string
val npf_struct : string
val define_layout : Ktypes.t -> unit

val af_rds : int
val af_can : int
val af_econet : int

type t = {
  kst : Kstate.t;
  families : (int, int) Hashtbl.t;
  fds : (int, int) Hashtbl.t;
  mutable next_fd : int;
}

val create : Kstate.t -> t

val sock_register : t -> int -> int64
(** Register a [net_proto_family] (module export surface); -EEXIST on
    duplicates. *)

val sock_unregister : t -> int -> unit
val sock_of_fd : t -> int -> int

val sys_socket : t -> family:int -> typ:int -> int
(** Allocate the socket object and call the module's create through the
    registered slot.  Returns the fd or a negative errno. *)

val sys_sendmsg : t -> fd:int -> buf:int -> len:int -> flags:int -> int64

val sys_sendpage : t -> fd:int -> buf:int -> len:int -> flags:int -> int64
(** The sendfile path: raises the address limit to KERNEL_DS around the
    module's sendmsg and — crucially for CVE-2010-4258 — does not
    restore it if the module oopses inside. *)

val sys_recvmsg : t -> fd:int -> buf:int -> len:int -> flags:int -> int64
val sys_ioctl : t -> fd:int -> cmd:int -> arg:int -> int64
val sys_bind : t -> fd:int -> addr:int -> alen:int -> int64
val sys_close : t -> fd:int -> int64

(** Simulated e1000-class NIC hardware behind a PCI MMIO BAR.

    The device is driven entirely through memory-mapped registers and
    descriptor rings living inside the BAR, so every driver access is an
    ordinary (LXFI-guarded) store into simulated memory — which is what
    makes the netperf reproduction honest: the per-packet write-guard
    counts of Figure 13 come from real instrumented stores, not from
    bookkeeping shortcuts.

    BAR layout (offsets from BAR base):
    - [0x00] CTRL, [0x08] STATUS
    - [0x10] TDH (tx head, device-owned), [0x18] TDT (tx tail, driver)
    - [0x20] RDH (rx head, driver),       [0x28] RDT (rx tail, device)
    - [0x100 ..] 64 TX descriptors of 16 bytes: {addr:8, len:4, sta:4}
    - [0x500 ..] 64 RX descriptors of 16 bytes: {addr:8, len:4, sta:4} *)

let ring_entries = 64
let desc_size = 16
let reg_ctrl = 0x00
let reg_status = 0x08
let reg_tdh = 0x10
let reg_tdt = 0x18
let reg_rdh = 0x20
let reg_rdt = 0x28
let tx_ring_off = 0x100
let rx_ring_off = 0x500
let sta_dd = 1 (* descriptor done *)

(* Total BAR size needed. *)
let bar_len = rx_ring_off + (ring_entries * desc_size)

type t = {
  kst : Kstate.t;
  bar : int;
  mutable tx_pkts : int;
  mutable tx_bytes : int;
  mutable rx_seq : int;  (** sequence for generated inbound frames *)
}

let create kst ~bar = { kst; bar; tx_pkts = 0; tx_bytes = 0; rx_seq = 0 }

let reg t r = Kmem.read_u32 t.kst.Kstate.mem (t.bar + r)
let set_reg t r v = Kmem.write_u32 t.kst.Kstate.mem (t.bar + r) v
let tx_desc t i = t.bar + tx_ring_off + (i * desc_size)
let rx_desc t i = t.bar + rx_ring_off + (i * desc_size)

(** [drain_tx t] — the device consumes descriptors between TDH and the
    driver-written TDT, "transmitting" each frame (counting it) and
    setting the DD status bit for the driver's clean-up path.  Returns
    packets transmitted. *)
let drain_tx t =
  let kst = t.kst in
  let head = ref (reg t reg_tdh) and tail = reg t reg_tdt in
  let sent = ref 0 in
  while !head <> tail do
    let d = tx_desc t !head in
    let len = Kmem.read_u32 kst.mem (d + 8) in
    Kcycles.charge kst.cycles Kcycles.Kernel 20 (* DMA + wire time proxy *);
    t.tx_pkts <- t.tx_pkts + 1;
    t.tx_bytes <- t.tx_bytes + len;
    Kmem.write_u32 kst.mem (d + 12) sta_dd;
    incr sent;
    head := (!head + 1) mod ring_entries
  done;
  set_reg t reg_tdh !head;
  !sent

(** [inject_rx t ~count ~frame_len] — the wire delivers [count] frames:
    the device DMAs payload into the posted buffers (read from the
    descriptors the driver wrote) and marks descriptors done, advancing
    RDT.  Returns frames actually injected (bounded by ring space). *)
let inject_rx t ~count ~frame_len =
  let kst = t.kst in
  let rdt = ref (reg t reg_rdt) and rdh = reg t reg_rdh in
  let injected = ref 0 in
  let space () = (rdh + ring_entries - 1 - !rdt) mod ring_entries in
  while !injected < count && space () > 0 do
    let d = rx_desc t !rdt in
    let buf = Kmem.read_ptr kst.Kstate.mem d in
    if buf = 0 then raise (Kstate.Oops "nic: rx descriptor without buffer");
    (* DMA the frame: a recognisable pattern, sequence-stamped. *)
    Kmem.write_u32 kst.mem buf t.rx_seq;
    t.rx_seq <- t.rx_seq + 1;
    Kmem.write_u32 kst.mem (d + 8) frame_len;
    Kmem.write_u32 kst.mem (d + 12) sta_dd;
    Kcycles.charge kst.cycles Kcycles.Kernel 20;
    incr injected;
    rdt := (!rdt + 1) mod ring_entries
  done;
  set_reg t reg_rdt !rdt;
  !injected

let tx_stats t = (t.tx_pkts, t.tx_bytes)

lib/kernel/ksym.ml: Fmt Hashtbl Kmem

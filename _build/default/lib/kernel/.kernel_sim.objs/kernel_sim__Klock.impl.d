lib/kernel/klock.ml: Kcycles Kmem Kstate Printf

lib/kernel/sound.ml: Int64 Kcycles Kmem Kstate Ktypes Slab String

lib/kernel/nic.mli: Kstate

lib/kernel/netdev.mli: Kstate Ktypes

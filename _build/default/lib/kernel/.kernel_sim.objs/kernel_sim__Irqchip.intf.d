lib/kernel/irqchip.mli: Kstate

lib/kernel/kmem.mli: Bytes Hashtbl

lib/kernel/kstate.ml: Hashtbl Kcycles Klog Kmem Ksym Ktypes List Printf Slab Task

lib/kernel/shm.ml: Int64 Kcycles Kmem Kstate Ktypes List Slab

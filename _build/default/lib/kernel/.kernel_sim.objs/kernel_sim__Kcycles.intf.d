lib/kernel/kcycles.mli: Format

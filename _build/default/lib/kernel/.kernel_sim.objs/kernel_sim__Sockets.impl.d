lib/kernel/sockets.ml: Hashtbl Int64 Kcycles Kmem Kstate Ktypes Printf Slab Task

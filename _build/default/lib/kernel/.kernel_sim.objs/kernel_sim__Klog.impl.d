lib/kernel/klog.ml: Format Logs

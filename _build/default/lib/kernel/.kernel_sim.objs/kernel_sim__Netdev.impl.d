lib/kernel/netdev.ml: Bytes Int64 Kcycles Kmem Kstate Ktypes List Skbuff Slab String

lib/kernel/ktypes.ml: Fmt Hashtbl List Printf

lib/kernel/sound.mli: Kstate Ktypes

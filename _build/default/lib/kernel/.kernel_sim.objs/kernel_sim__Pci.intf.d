lib/kernel/pci.mli: Hashtbl Kstate Ktypes

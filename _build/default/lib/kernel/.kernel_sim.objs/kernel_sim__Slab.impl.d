lib/kernel/slab.ml: Array Hashtbl Kcycles Kmem Stack

lib/kernel/kcycles.ml: Fmt

lib/kernel/blockdev.ml: Hashtbl Int64 Kcycles Kmem Kstate Ktypes List Printf Slab

lib/kernel/ksym.mli: Format Hashtbl

lib/kernel/blockdev.mli: Hashtbl Kstate Ktypes

lib/kernel/slab.mli: Hashtbl Kcycles Kmem Stack

lib/kernel/skbuff.ml: Kcycles Kmem Kstate Ktypes Slab

lib/kernel/skbuff.mli: Kstate Ktypes

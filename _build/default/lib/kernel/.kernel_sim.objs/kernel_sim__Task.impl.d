lib/kernel/task.ml: Bytes Int64 Kmem Ktypes Slab String

lib/kernel/nic.ml: Kcycles Kmem Kstate

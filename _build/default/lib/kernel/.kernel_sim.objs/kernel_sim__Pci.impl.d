lib/kernel/pci.ml: Hashtbl Int64 Kcycles Kmem Kstate Ktypes List Option Slab

lib/kernel/task.mli: Kmem Ktypes Slab

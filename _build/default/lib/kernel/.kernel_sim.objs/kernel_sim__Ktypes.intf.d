lib/kernel/ktypes.mli: Format Hashtbl

lib/kernel/kstate.mli: Hashtbl Kcycles Kmem Ksym Ktypes Slab Task

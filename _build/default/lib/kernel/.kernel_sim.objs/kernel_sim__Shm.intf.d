lib/kernel/shm.mli: Kstate Ktypes

lib/kernel/irqchip.ml: Int64 Kcycles Kmem Kstate List Slab

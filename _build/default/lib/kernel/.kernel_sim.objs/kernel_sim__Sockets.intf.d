lib/kernel/sockets.mli: Hashtbl Kstate Ktypes

lib/kernel/kmem.ml: Bytes Char Hashtbl Int64 String

(** PCI subsystem: device enumeration, driver registration, probe
    dispatch, and MMIO BARs.

    The probe handshake is the paper's Figure 1/Figure 4 example: the
    bus invokes the module's [probe] through a function-pointer slot in
    the module's [pci_driver] struct, and the [principal(pcidev)] /
    [pre(copy(ref(struct pci_dev), pcidev))] annotations on that slot
    type define which REF capability the module principal receives. *)

let dev_struct = "pci_dev"
let drv_struct = "pci_driver"

let define_layout types =
  ignore
    (Ktypes.define types dev_struct
       [
         ("vendor", 4, Ktypes.Scalar);
         ("device", 4, Ktypes.Scalar);
         ("irq", 4, Ktypes.Scalar);
         ("enabled", 4, Ktypes.Scalar);
         ("bar0", 8, Ktypes.Pointer);
         ("bar0_len", 4, Ktypes.Scalar);
         ("ioport", 4, Ktypes.Scalar);
         ("claimed", 4, Ktypes.Scalar);
         ("drvdata", 8, Ktypes.Pointer);
       ]);
  ignore
    (Ktypes.define types drv_struct
       [
         ("vendor", 4, Ktypes.Scalar);
         ("device", 4, Ktypes.Scalar);
         ("probe", 8, Ktypes.Funcptr "pci_driver.probe");
         ("remove", 8, Ktypes.Funcptr "pci_driver.remove");
       ])

type t = {
  kst : Kstate.t;
  mutable devices : int list;
  io_space : (int, int) Hashtbl.t;  (** legacy I/O port space *)
}

let create kst = { kst; devices = []; io_space = Hashtbl.create 32 }
let doff t f = Ktypes.offset t.kst.Kstate.types dev_struct f
let droff t f = Ktypes.offset t.kst.Kstate.types drv_struct f

(** [add_device t ~vendor ~device ~bar_len] models hot-plugging hardware:
    allocates the [pci_dev] and maps an MMIO BAR of [bar_len] bytes.
    Returns the pci_dev address. *)
let add_device t ~vendor ~device ~bar_len =
  let kst = t.kst in
  let dev = Slab.kmalloc kst.slab (Ktypes.sizeof kst.types dev_struct) in
  let bar = Kstate.alloc_module_area kst bar_len in
  Kmem.write_u32 kst.mem (dev + doff t "vendor") vendor;
  Kmem.write_u32 kst.mem (dev + doff t "device") device;
  Kmem.write_u32 kst.mem (dev + doff t "irq") (40 + List.length t.devices);
  Kmem.write_ptr kst.mem (dev + doff t "bar0") bar;
  Kmem.write_u32 kst.mem (dev + doff t "bar0_len") bar_len;
  Kmem.write_u32 kst.mem (dev + doff t "ioport") (0xc000 + (0x40 * List.length t.devices));
  t.devices <- dev :: t.devices;
  dev

let bar0 t dev = Kmem.read_ptr t.kst.mem (dev + doff t "bar0")
let bar0_len t dev = Kmem.read_u32 t.kst.mem (dev + doff t "bar0_len")
let is_enabled t dev = Kmem.read_u32 t.kst.mem (dev + doff t "enabled") = 1

(** [register_driver t drv] — for every matching unclaimed device, the
    bus calls the driver's [probe] through the module-memory slot.
    Returns the number of devices successfully probed. *)
let register_driver t drv =
  let kst = t.kst in
  Kcycles.charge kst.cycles Kcycles.Kernel 100;
  let want_v = Kmem.read_u32 kst.mem (drv + droff t "vendor") in
  let want_d = Kmem.read_u32 kst.mem (drv + droff t "device") in
  let bound = ref 0 in
  List.iter
    (fun dev ->
      let v = Kmem.read_u32 kst.mem (dev + doff t "vendor") in
      let d = Kmem.read_u32 kst.mem (dev + doff t "device") in
      let claimed = Kmem.read_u32 kst.mem (dev + doff t "claimed") in
      if v = want_v && d = want_d && claimed = 0 then begin
        let slot = drv + droff t "probe" in
        let ret =
          Kstate.call_ptr kst ~slot ~ftype:"pci_driver.probe" [ Int64.of_int dev ]
        in
        if ret = 0L then begin
          Kmem.write_u32 kst.mem (dev + doff t "claimed") 1;
          incr bound
        end
      end)
    (List.rev t.devices);
  !bound

(** Exported kernel functions (raw semantics; LXFI annotations gate who
    may call them and with which arguments). *)

let pci_enable_device t dev =
  Kcycles.charge t.kst.cycles Kcycles.Kernel 200;
  Kmem.write_u32 t.kst.mem (dev + doff t "enabled") 1;
  0L

let pci_disable_device t dev =
  Kmem.write_u32 t.kst.mem (dev + doff t "enabled") 0;
  0L

let pci_set_drvdata t dev data = Kmem.write_ptr t.kst.mem (dev + doff t "drvdata") data
let pci_get_drvdata t dev = Kmem.read_ptr t.kst.mem (dev + doff t "drvdata")
let ioport t dev = Kmem.read_u32 t.kst.mem (dev + doff t "ioport")
let irq t dev = Kmem.read_u32 t.kst.mem (dev + doff t "irq")

(** Legacy port I/O (Guideline 3 of the paper: modules need a REF of the
    special [io_port] type for the port argument). *)
let outb t ~port ~value =
  Kcycles.charge t.kst.cycles Kcycles.Kernel 12;
  Hashtbl.replace t.io_space port (value land 0xff)

let inb t ~port =
  Kcycles.charge t.kst.cycles Kcycles.Kernel 12;
  Option.value ~default:0 (Hashtbl.find_opt t.io_space port)

(** Interrupt controller: handler registration and dispatch.

    The handler function pointer arrives {e as an argument} to
    [request_irq], so LXFI checks it against the registering module's
    CALL capabilities at that moment (the §2.2 callback contract); the
    later per-interrupt dispatch goes through a kernel-owned slot the
    writer-set fast path clears. *)

type t = {
  kst : Kstate.t;
  mutable slots : (int * int * int) list;
  mutable raised : int;
}

val create : Kstate.t -> t

val request_irq : t -> irq:int -> handler:int -> dev_id:int -> int64
(** 0 on success, -EBUSY if the line is taken. *)

val free_irq : t -> irq:int -> unit

val raise_irq : t -> irq:int -> int64
(** Hardware asserts the line: run the registered handler (guarded
    indirect call) with [(irq, dev_id)].  Returns the handler's result,
    or 0 for a spurious interrupt. *)

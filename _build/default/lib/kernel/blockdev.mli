(** Block layer + device-mapper substrate for the dm-* corpus: target
    modules register a [target_type] whose ctr/dtr/map pointers live in
    module memory; each mapped device is a natural instance principal
    (§3.1). *)

val tt_struct : string
val ti_struct : string
val bio_struct : string
val define_layout : Ktypes.t -> unit

val dm_mapio_submitted : int64
val dm_mapio_remapped : int64

type t = {
  kst : Kstate.t;
  targets : (string, int) Hashtbl.t;
  mutable mapped : (string * int * int) list;
  mutable backing_io : int;
}

val create : Kstate.t -> t
val register_target : t -> name:string -> tt:int -> int64
val unregister_target : t -> name:string -> unit

val dm_create :
  t -> target:string -> name:string -> len:int -> arg:int -> (int, string) result
(** Build a mapped device: allocate the [dm_target] and run the
    module's constructor through the ctr slot; returns the dm_target
    address. *)

val dm_destroy : t -> name:string -> unit
val alloc_bio : t -> sector:int -> size:int -> rw:int -> int
val free_bio : t -> int -> unit

val submit_bio : t -> name:string -> int -> (int64, string) result
(** Route a bio through the named device's map slot; REMAPPED/SUBMITTED
    results reach the backing device (counted). *)

(** Minimal SysV shared memory — the CAN BCM exploit's victim (§8.1):
    [shmid_kernel] descriptors are 16-byte slab objects holding a
    function pointer that [shmctl] follows, and they land adjacent to
    the module's overflowed buffer in the 16-byte class. *)

val shm_struct : string
val define_layout : Ktypes.t -> unit
val magic : int64

type t = {
  kst : Kstate.t;
  mutable segments : (int * int) list;
  mutable next_id : int;
  default_op : int;
}

val create : Kstate.t -> t

val sys_shmget : t -> int
(** Allocate a segment descriptor; returns its id. *)

val segment_addr : t -> int -> int

val sys_shmctl : t -> id:int -> int64
(** Follow the segment's operation pointer — the indirect call the
    exploit redirects. *)

(** Simulated [struct task_struct] and credentials.

    Tasks are memory-resident structures: the uid field at a fixed offset
    is precisely the kind of kernel data a confused-deputy write (the
    [spin_lock_init] example of paper §1) or an arbitrary-write exploit
    targets.  Privilege escalation in this simulation {e is} the
    observable fact [uid current = 0]. *)

type t = { addr : int; pid : int }

let struct_name = "task_struct"

(** Address-limit values, mirroring [USER_DS]/[KERNEL_DS]. *)
let user_ds = 0

let kernel_ds = 1

(** Registers the task_struct layout; call once at kernel boot. *)
let define_layout types =
  ignore
    (Ktypes.define types struct_name
       [
         ("pid", 4, Ktypes.Scalar);
         ("uid", 4, Ktypes.Scalar);
         ("euid", 4, Ktypes.Scalar);
         ("suid", 4, Ktypes.Scalar);
         ("fsuid", 4, Ktypes.Scalar);
         ("addr_limit", 8, Ktypes.Scalar);
         ("clear_child_tid", 8, Ktypes.Pointer);
         ("comm", 16, Ktypes.Scalar);
       ])

let field_addr types t fname = t.addr + Ktypes.offset types struct_name fname

let create mem slab types ~pid ~uid ~comm =
  let addr = Slab.kmalloc slab (Ktypes.sizeof types struct_name) in
  let t = { addr; pid } in
  Kmem.write_u32 mem (field_addr types t "pid") pid;
  Kmem.write_u32 mem (field_addr types t "uid") uid;
  Kmem.write_u32 mem (field_addr types t "euid") uid;
  Kmem.write_u32 mem (field_addr types t "suid") uid;
  Kmem.write_u32 mem (field_addr types t "fsuid") uid;
  Kmem.write_u64 mem (field_addr types t "addr_limit") (Int64.of_int user_ds);
  Kmem.write_bytes mem
    ~addr:(field_addr types t "comm")
    (let c = if String.length comm > 15 then String.sub comm 0 15 else comm in
     c ^ "\000");
  t

let uid mem types t = Kmem.read_u32 mem (field_addr types t "uid")
let euid mem types t = Kmem.read_u32 mem (field_addr types t "euid")

let set_uid mem types t v =
  Kmem.write_u32 mem (field_addr types t "uid") v;
  Kmem.write_u32 mem (field_addr types t "euid") v

let addr_limit mem types t =
  Int64.to_int (Kmem.read_u64 mem (field_addr types t "addr_limit"))

let set_addr_limit mem types t v =
  Kmem.write_u64 mem (field_addr types t "addr_limit") (Int64.of_int v)

let clear_child_tid mem types t =
  Kmem.read_ptr mem (field_addr types t "clear_child_tid")

let set_clear_child_tid mem types t p =
  Kmem.write_ptr mem (field_addr types t "clear_child_tid") p

let comm mem types t =
  let b = Kmem.read_bytes mem ~addr:(field_addr types t "comm") ~len:16 in
  match String.index_opt (Bytes.to_string b) '\000' with
  | Some i -> String.sub (Bytes.to_string b) 0 i
  | None -> Bytes.to_string b

let is_root mem types t = uid mem types t = 0

(** ALSA-like sound core for the snd-* corpus: drivers create a card,
    install a [snd_pcm_ops] table in module memory, and the core drives
    playback by calling trigger/pointer through those slots while the
    module fills the DMA area with guarded stores. *)

val card_struct : string
val ops_struct : string
val define_layout : Ktypes.t -> unit

val trigger_start : int64
val trigger_stop : int64

type t = { kst : Kstate.t; mutable cards : int list; mutable periods_elapsed : int }

val create : Kstate.t -> t

val snd_card_create : t -> name:string -> dma_bytes:int -> int
(** Allocate a card and its DMA buffer; the [snd_card_caps] iterator on
    the export grants the caller WRITE on both plus the registration
    REF. *)

val snd_card_register : t -> int -> int64
val dma_area : t -> int -> int
val dma_bytes : t -> int -> int
val snd_pcm_period_elapsed : t -> int -> int64

val playback : t -> int -> polls:int -> int64
(** Userspace-side playback: open, start, poll the hardware pointer
    [polls] times, stop, close; returns the final position. *)

(** Struct-layout registry for the simulated kernel.

    The Linux kernel exposes its internal data structures (e.g.
    [struct sk_buff], [struct net_device_ops]) to modules; LXFI's
    annotations reference them by name ([ref(struct pci_dev)],
    the default "size of the pointed-to struct").  This registry
    records, for each named
    struct, its size and field layout so that:

    - the annotation evaluator can resolve [sizeof(struct foo)] and the
      default size of a pointer's referent;
    - module code (MIR) and kernel substrate agree on field offsets;
    - function-pointer-typed fields carry the name of their slot type,
      which the kernel rewriter uses to look up the expected annotation
      hash at indirect call sites (paper §4.1). *)

type field_kind =
  | Scalar  (** plain integer data *)
  | Pointer  (** pointer to other kernel data *)
  | Funcptr of string
      (** function pointer; the payload names the slot type registered in
          [Annot.Registry], e.g. ["net_device_ops.ndo_start_xmit"] *)

type field = {
  f_name : string;
  f_offset : int;
  f_size : int;
  f_kind : field_kind;
}

type strct = { s_name : string; s_size : int; s_fields : field list }

type t = { structs : (string, strct) Hashtbl.t }

let create () = { structs = Hashtbl.create 64 }

exception Unknown_struct of string
exception Unknown_field of string * string

(** [define t name fields] registers a struct whose fields are laid out in
    declaration order with natural alignment for their size.  Returns the
    completed layout.  Raises [Invalid_argument] on duplicate names. *)
let define t name (specs : (string * int * field_kind) list) : strct =
  if Hashtbl.mem t.structs name then
    invalid_arg (Printf.sprintf "Ktypes.define: duplicate struct %s" name);
  let align off sz =
    let a = if sz >= 8 then 8 else if sz >= 4 then 4 else if sz >= 2 then 2 else 1 in
    (off + a - 1) land lnot (a - 1)
  in
  let fields, size =
    List.fold_left
      (fun (acc, off) (fname, fsize, fkind) ->
        let off = align off fsize in
        ( { f_name = fname; f_offset = off; f_size = fsize; f_kind = fkind } :: acc,
          off + fsize ))
      ([], 0) specs
  in
  let size = align size 8 in
  let s = { s_name = name; s_size = max size 8; s_fields = List.rev fields } in
  Hashtbl.replace t.structs name s;
  s

let find t name =
  match Hashtbl.find_opt t.structs name with
  | Some s -> s
  | None -> raise (Unknown_struct name)

let mem t name = Hashtbl.mem t.structs name
let sizeof t name = (find t name).s_size

let field t sname fname =
  let s = find t sname in
  match List.find_opt (fun f -> f.f_name = fname) s.s_fields with
  | Some f -> f
  | None -> raise (Unknown_field (sname, fname))

(** Byte offset of [fname] within [sname]. *)
let offset t sname fname = (field t sname fname).f_offset

(** All function-pointer fields of [sname], with their slot-type names. *)
let funcptr_fields t sname =
  List.filter_map
    (fun f -> match f.f_kind with Funcptr ty -> Some (f, ty) | _ -> None)
    (find t sname).s_fields

(** [funcptr_slot t sname off] is the slot-type name of the function
    pointer at byte offset [off] in [sname], if that field is one. *)
let funcptr_slot t sname off =
  List.find_map
    (fun f ->
      match f.f_kind with
      | Funcptr ty when f.f_offset = off -> Some ty
      | _ -> None)
    (find t sname).s_fields

let all t = Hashtbl.fold (fun _ s acc -> s :: acc) t.structs []

let pp_struct ppf s =
  Fmt.pf ppf "struct %s { /* %d bytes */@." s.s_name s.s_size;
  List.iter
    (fun f ->
      let kind =
        match f.f_kind with
        | Scalar -> "scalar"
        | Pointer -> "ptr"
        | Funcptr ty -> "fn:" ^ ty
      in
      Fmt.pf ppf "  +%-4d %-24s (%d bytes, %s)@." f.f_offset f.f_name f.f_size kind)
    s.s_fields;
  Fmt.pf ppf "}"

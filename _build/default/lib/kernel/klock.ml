(** Spinlocks as plain memory words.

    [spin_lock_init] is the paper's opening example of a "harmless"
    kernel routine that becomes an arbitrary-zero-write primitive if a
    module may pass any pointer (§1: pass the address of the current
    process's uid and become root).  The functions here perform the raw
    memory operations; whether a module is {e allowed} to name a given
    address is decided by the LXFI annotation on the export
    ([pre(check(write, lock, 4))]). *)

let lock_size = 4

(** [spin_lock_init kst addr] writes the unlocked value (zero) to the
    4-byte lock word at [addr] — unconditionally, like the real kernel. *)
let spin_lock_init (kst : Kstate.t) addr =
  Kcycles.charge kst.cycles Kcycles.Kernel 4;
  Kmem.write_u32 kst.mem addr 0

let spin_lock (kst : Kstate.t) addr =
  Kcycles.charge kst.cycles Kcycles.Kernel 6;
  (* Single-core simulation: locks never contend, but we keep the state
     transition honest so tests can observe lock words. *)
  if Kmem.read_u32 kst.mem addr <> 0 then
    raise (Kstate.Oops (Printf.sprintf "deadlock: spinlock 0x%x already held" addr));
  Kmem.write_u32 kst.mem addr 1

let spin_unlock (kst : Kstate.t) addr =
  Kcycles.charge kst.cycles Kcycles.Kernel 4;
  if Kmem.read_u32 kst.mem addr <> 1 then
    raise (Kstate.Oops (Printf.sprintf "unlock of free spinlock 0x%x" addr));
  Kmem.write_u32 kst.mem addr 0

let is_locked (kst : Kstate.t) addr = Kmem.read_u32 kst.mem addr = 1

(** Simulated [struct sk_buff] — the network packet: a struct with an
    interior pointer to a separately-allocated payload, whose
    capability set is expressed by the [skb_caps] iterator (paper
    Figure 4). *)

val struct_name : string
val define_layout : Ktypes.t -> unit
val off : Kstate.t -> string -> int
val sizeof : Kstate.t -> int

val alloc : Kstate.t -> int -> int
(** Allocate an sk_buff with a payload buffer of the given length;
    returns the struct address. *)

val data : Kstate.t -> int -> int
val len : Kstate.t -> int -> int
val set_len : Kstate.t -> int -> int -> unit
val dev : Kstate.t -> int -> int
val set_dev : Kstate.t -> int -> int -> unit
val set_data : Kstate.t -> int -> int -> unit

val free : Kstate.t -> int -> unit
(** Free the struct and (if live) its payload buffer. *)

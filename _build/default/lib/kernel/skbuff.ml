(** Simulated [struct sk_buff] — the network packet structure.

    An sk_buff is the paper's running example of {e data structure
    integrity} (§2.2): it is a struct with an interior pointer to a
    separately-allocated payload, and the capability set it stands for is
    expressed with a programmer-supplied capability iterator
    ([skb_caps], Figure 4) covering both the struct and
    [skb->data .. skb->data+skb->len). *)

let struct_name = "sk_buff"

let define_layout types =
  ignore
    (Ktypes.define types struct_name
       [
         ("next", 8, Ktypes.Pointer);
         ("dev", 8, Ktypes.Pointer);
         ("head", 8, Ktypes.Pointer);
         ("data", 8, Ktypes.Pointer);
         ("len", 4, Ktypes.Scalar);
         ("truesize", 4, Ktypes.Scalar);
         ("protocol", 4, Ktypes.Scalar);
         ("priority", 4, Ktypes.Scalar);
       ])

let off (kst : Kstate.t) f = Ktypes.offset kst.types struct_name f
let sizeof (kst : Kstate.t) = Ktypes.sizeof kst.types struct_name

(** [alloc kst len] allocates an sk_buff with a [len]-byte payload buffer
    and returns the struct address. *)
let alloc (kst : Kstate.t) len =
  Kcycles.charge kst.cycles Kcycles.Kernel 35;
  let skb = Slab.kmalloc kst.slab (sizeof kst) in
  let buf = Slab.kmalloc kst.slab (max len 1) in
  Kmem.write_ptr kst.mem (skb + off kst "head") buf;
  Kmem.write_ptr kst.mem (skb + off kst "data") buf;
  Kmem.write_u32 kst.mem (skb + off kst "len") len;
  Kmem.write_u32 kst.mem (skb + off kst "truesize") (Slab.usable_size kst.slab buf);
  skb

let data (kst : Kstate.t) skb = Kmem.read_ptr kst.mem (skb + off kst "data")
let len (kst : Kstate.t) skb = Kmem.read_u32 kst.mem (skb + off kst "len")
let set_len (kst : Kstate.t) skb v = Kmem.write_u32 kst.mem (skb + off kst "len") v
let dev (kst : Kstate.t) skb = Kmem.read_ptr kst.mem (skb + off kst "dev")
let set_dev (kst : Kstate.t) skb d = Kmem.write_ptr kst.mem (skb + off kst "dev") d

let set_data (kst : Kstate.t) skb p = Kmem.write_ptr kst.mem (skb + off kst "data") p

let free (kst : Kstate.t) skb =
  Kcycles.charge kst.cycles Kcycles.Kernel 22;
  let head = Kmem.read_ptr kst.mem (skb + off kst "head") in
  if head <> 0 && Slab.is_live kst.slab head then Slab.kfree kst.slab head;
  Slab.kfree kst.slab skb

(** Interrupt controller: [request_irq] registration and dispatch.

    Modules register interrupt handlers by passing a function pointer
    {e as an argument} — the "callback functions" contract of §2.2: the
    module may only provide pointers to functions it could call itself,
    so the LXFI annotation on [request_irq] is
    [pre(check(call, handler))].  The kernel then stores the pointer in
    its own table; the later dispatch is a kernel indirect call through
    kernel-owned memory (writer-set clean → fast path), which is safe
    precisely because the registration was checked. *)

type t = {
  kst : Kstate.t;
  mutable slots : (int * int * int) list;
      (** (irq, handler slot address in kernel memory, dev_id) *)
  mutable raised : int;
}

let create kst = { kst; slots = []; raised = 0 }

(** [request_irq t ~irq ~handler ~dev_id] — raw registration (the LXFI
    contract lives on the kernel export). *)
let request_irq t ~irq ~handler ~dev_id =
  if List.exists (fun (i, _, _) -> i = irq) t.slots then -16L (* -EBUSY *)
  else begin
    let slot = Slab.kmalloc t.kst.Kstate.slab 8 in
    Kmem.write_ptr t.kst.Kstate.mem slot handler;
    t.slots <- (irq, slot, dev_id) :: t.slots;
    0L
  end

let free_irq t ~irq = t.slots <- List.filter (fun (i, _, _) -> i <> irq) t.slots

(** [raise_irq t ~irq] — hardware asserts the line: the kernel runs the
    registered handler (a guarded indirect call) in interrupt context.
    Returns the handler's IRQ_HANDLED result, or 0 if nothing is
    registered (spurious interrupt). *)
let raise_irq t ~irq =
  match List.find_opt (fun (i, _, _) -> i = irq) t.slots with
  | None -> 0L
  | Some (_, slot, dev_id) ->
      t.raised <- t.raised + 1;
      Kcycles.charge t.kst.Kstate.cycles Kcycles.Kernel 90 (* hardirq entry/exit *);
      Kstate.call_ptr t.kst ~slot ~ftype:"irq.handler"
        [ Int64.of_int irq; Int64.of_int dev_id ]

(** Kernel symbol table.

    Every callable entity in the simulation — exported kernel functions,
    module functions, and (for exploit modelling) attacker-controlled
    user-space payloads — is {e interned}: assigned a unique fake text
    address.  Function pointers stored in simulated memory are exactly
    these addresses, so memory corruption can (and in the exploits, does)
    redirect them, and LXFI's CALL capabilities are keyed on them. *)

type t = {
  by_name : (string, int) Hashtbl.t;
  by_addr : (int, string) Hashtbl.t;
  mutable text_cursor : int;
}

let create () =
  {
    by_name = Hashtbl.create 128;
    by_addr = Hashtbl.create 128;
    text_cursor = Kmem.Layout.kernel_text_base;
  }

exception Unknown_symbol of string

(** [intern t name] assigns a fresh kernel-text address to [name]
    (idempotent: re-interning returns the existing address). *)
let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some a -> a
  | None ->
      let a = t.text_cursor in
      (* Functions get 16-byte-aligned fake addresses. *)
      t.text_cursor <- t.text_cursor + 16;
      Hashtbl.replace t.by_name name a;
      Hashtbl.replace t.by_addr a name;
      a

(** [register_at t name addr] binds [name] to a caller-chosen address
    (used for module text, which lives in the module area, and for user
    payloads, which live at attacker-chosen user addresses). *)
let register_at t name addr =
  Hashtbl.replace t.by_name name addr;
  Hashtbl.replace t.by_addr addr name

let addr_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some a -> a
  | None -> raise (Unknown_symbol name)

let addr_of_opt t name = Hashtbl.find_opt t.by_name name
let name_of t addr = Hashtbl.find_opt t.by_addr addr

let pp_addr t ppf addr =
  match name_of t addr with
  | Some n -> Fmt.pf ppf "%s(0x%x)" n addr
  | None -> Fmt.pf ppf "0x%x" addr

(** Struct-layout registry for the simulated kernel: sizes, field
    offsets, and which fields are typed function-pointer slots (the
    anchor of annotation propagation and indirect-call hash checks). *)

type field_kind =
  | Scalar
  | Pointer
  | Funcptr of string
      (** names the slot type registered in [Annot.Registry], e.g.
          ["net_device_ops.ndo_start_xmit"] *)

type field = { f_name : string; f_offset : int; f_size : int; f_kind : field_kind }
type strct = { s_name : string; s_size : int; s_fields : field list }
type t = { structs : (string, strct) Hashtbl.t }

val create : unit -> t

exception Unknown_struct of string
exception Unknown_field of string * string

val define : t -> string -> (string * int * field_kind) list -> strct
(** Register a struct; fields are laid out in order with natural
    alignment.  Raises [Invalid_argument] on duplicates. *)

val find : t -> string -> strct
val mem : t -> string -> bool
val sizeof : t -> string -> int
val field : t -> string -> string -> field
val offset : t -> string -> string -> int

val funcptr_fields : t -> string -> (field * string) list
(** All function-pointer fields, with their slot-type names. *)

val funcptr_slot : t -> string -> int -> string option
(** Slot-type name of the function pointer at a byte offset, if that
    field is one. *)

val all : t -> strct list
val pp_struct : Format.formatter -> strct -> unit

(** e1000-class NIC hardware model behind a PCI MMIO BAR: registers and
    descriptor rings live inside the BAR, so every driver access is an
    ordinary (LXFI-guarded) store — the honest source of Figure 13's
    per-packet write-guard counts. *)

val ring_entries : int
val desc_size : int
val reg_ctrl : int
val reg_status : int

(** Register offsets: TDH/TDT are the tx head (device-owned) and tail
    (driver-written); RDH/RDT the rx head (driver) and tail (device). *)

val reg_tdh : int
val reg_tdt : int
val reg_rdh : int
val reg_rdt : int
val tx_ring_off : int
val rx_ring_off : int

val sta_dd : int
(** Descriptor-done status bit. *)

val bar_len : int
(** BAR size covering registers + both rings. *)

type t = {
  kst : Kstate.t;
  bar : int;
  mutable tx_pkts : int;
  mutable tx_bytes : int;
  mutable rx_seq : int;
}

val create : Kstate.t -> bar:int -> t

val drain_tx : t -> int
(** The device consumes descriptors between TDH and the driver's TDT,
    "transmitting" each frame and setting DD; returns packets sent. *)

val inject_rx : t -> count:int -> frame_len:int -> int
(** The wire delivers frames: DMA into the posted buffers (read from
    the descriptors the driver wrote), mark DD, advance RDT.  Returns
    frames injected (bounded by ring space). *)

val tx_stats : t -> int * int
(** (packets, bytes) put on the wire so far. *)

(** Simulated 64-bit kernel address space.

    A sparse, page-granular byte store.  Addresses are plain OCaml [int]s
    (63 bits — ample for the layout below).  Nothing here enforces
    protection: as on real x86-64, the kernel is a single privilege
    domain, and every write a module performs lands directly in this
    store.  All isolation is provided by the LXFI layer above, which
    guards module stores and boundary crossings.

    The address-space layout mirrors Linux well enough for the paper's
    exploits to be expressed naturally:

    - a user-space range (attacker-controlled; the RDS and Econet
      exploits make the kernel write into, or call into, this range);
    - kernel text (exported functions get addresses here);
    - kernel heap (slab pages);
    - kernel stacks (with adjacent LXFI shadow stacks);
    - module area (per-module text/rodata/data/bss/stack sections). *)

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

(** Address-space layout constants. *)
module Layout = struct
  let null_guard_top = 0x1000

  (** User mappings: [0x1000, 0x8000_0000). *)
  let user_base = 0x1000

  let user_top = 0x8000_0000

  (** Kernel text: exported kernel functions are assigned fake text
      addresses here so CALL capabilities and indirect calls can refer to
      them uniformly. *)
  let kernel_text_base = 0x1_0000_0000

  (** Kernel heap: slab allocator pages. *)
  let kernel_heap_base = 0x2_0000_0000

  (** Kernel thread stacks (and their adjacent shadow stacks). *)
  let kernel_stack_base = 0x3_0000_0000

  (** Module sections: text, rodata, data, bss, module stacks. *)
  let module_base = 0x4_0000_0000

  let is_null a = a >= 0 && a < null_guard_top
  let is_user a = a >= user_base && a < user_top
  let is_kernel a = a >= kernel_text_base
  let is_module_area a = a >= module_base
end

(** Raised on access to unmapped or null addresses; the kernel substrate
    catches this at the syscall boundary and runs the oops path, exactly
    where CVE-2010-4258's [do_exit] bug lives. *)
exception Fault of { addr : int; write : bool }

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable mapped_pages : int;
  mutable fault_on_unmapped : bool;
      (** when false (default), reads of unmapped pages yield zeroes and
          writes map the page on demand; tests can tighten this *)
}

let create () =
  { pages = Hashtbl.create 1024; mapped_pages = 0; fault_on_unmapped = false }

let page_of t ~write addr =
  if Layout.is_null addr || addr < 0 then raise (Fault { addr; write });
  let idx = addr lsr page_shift in
  match Hashtbl.find_opt t.pages idx with
  | Some b -> b
  | None ->
      if t.fault_on_unmapped then raise (Fault { addr; write })
      else begin
        let b = Bytes.make page_size '\000' in
        Hashtbl.replace t.pages idx b;
        t.mapped_pages <- t.mapped_pages + 1;
        b
      end

(** [map t ~addr ~len] eagerly maps (zero-filled) all pages covering
    [addr, addr+len). *)
let map t ~addr ~len =
  let first = addr lsr page_shift and last = (addr + len - 1) lsr page_shift in
  for idx = first to last do
    if not (Hashtbl.mem t.pages idx) then begin
      Hashtbl.replace t.pages idx (Bytes.make page_size '\000');
      t.mapped_pages <- t.mapped_pages + 1
    end
  done

let read_u8 t addr =
  let b = page_of t ~write:false addr in
  Char.code (Bytes.get b (addr land page_mask))

let write_u8 t addr v =
  let b = page_of t ~write:true addr in
  Bytes.set b (addr land page_mask) (Char.chr (v land 0xff))

(** [read t ~addr ~size] reads a little-endian [size]-byte integer
    ([size] in 1..8) and returns it as an [int64]. *)
let read t ~addr ~size =
  assert (size >= 1 && size <= 8);
  let v = ref 0L in
  for i = size - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 t (addr + i)))
  done;
  !v

(** [write t ~addr ~size v] stores the low [size] bytes of [v]
    little-endian at [addr]. *)
let write t ~addr ~size v =
  assert (size >= 1 && size <= 8);
  for i = 0 to size - 1 do
    write_u8 t (addr + i)
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
  done

let read_u64 t addr = read t ~addr ~size:8
let write_u64 t addr v = write t ~addr ~size:8 v
let read_u32 t addr = Int64.to_int (read t ~addr ~size:4)
let write_u32 t addr v = write t ~addr ~size:4 (Int64.of_int v)

(** Pointer-sized loads/stores; pointers are stored as 8-byte values. *)
let read_ptr t addr = Int64.to_int (read t ~addr ~size:8)

let write_ptr t addr p = write t ~addr ~size:8 (Int64.of_int p)

let read_bytes t ~addr ~len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (read_u8 t (addr + i)))
  done;
  out

let write_bytes t ~addr s =
  String.iteri (fun i c -> write_u8 t (addr + i) (Char.code c)) s

let zero t ~addr ~len =
  for i = 0 to len - 1 do
    write_u8 t (addr + i) 0
  done

(** [blit t ~src ~dst ~len] copies [len] bytes within the address space
    (used by the simulated [memcpy] / [copy_to_user] paths). *)
let blit t ~src ~dst ~len =
  let tmp = read_bytes t ~addr:src ~len in
  write_bytes t ~addr:dst (Bytes.to_string tmp)

let mapped_pages t = t.mapped_pages

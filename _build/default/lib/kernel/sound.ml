(** ALSA-like sound core, hosting the two sound drivers of the paper's
    corpus (snd-intel8x0, snd-ens1370).

    A sound driver creates a card, installs a [snd_pcm_ops] table in its
    own memory, and the core drives playback by calling [trigger] and
    [pointer] through those slots while the module fills the DMA area
    with (LXFI-guarded) stores. *)

let card_struct = "snd_card"
let ops_struct = "snd_pcm_ops"

let define_layout types =
  ignore
    (Ktypes.define types ops_struct
       [
         ("open", 8, Ktypes.Funcptr "snd_pcm_ops.open");
         ("close", 8, Ktypes.Funcptr "snd_pcm_ops.close");
         ("trigger", 8, Ktypes.Funcptr "snd_pcm_ops.trigger");
         ("pointer", 8, Ktypes.Funcptr "snd_pcm_ops.pointer");
       ]);
  ignore
    (Ktypes.define types card_struct
       [
         ("pcm_ops", 8, Ktypes.Pointer);
         ("dma_area", 8, Ktypes.Pointer);
         ("dma_bytes", 4, Ktypes.Scalar);
         ("running", 4, Ktypes.Scalar);
         ("private", 8, Ktypes.Pointer);
         ("name", 16, Ktypes.Scalar);
       ])

(* trigger commands *)
let trigger_start = 1L
let trigger_stop = 0L

type t = { kst : Kstate.t; mutable cards : int list; mutable periods_elapsed : int }

let create kst = { kst; cards = []; periods_elapsed = 0 }
let coff t f = Ktypes.offset t.kst.Kstate.types card_struct f
let ooff t f = Ktypes.offset t.kst.Kstate.types ops_struct f

(** [snd_card_create t ~name ~dma_bytes] — exported: allocates the card
    and its DMA buffer; the caller module receives WRITE on the DMA area
    via the export's annotation. *)
let snd_card_create t ~name ~dma_bytes =
  let kst = t.kst in
  Kcycles.charge kst.cycles Kcycles.Kernel 150;
  let card = Slab.kmalloc kst.slab (Ktypes.sizeof kst.types card_struct) in
  let dma = Slab.kmalloc kst.slab dma_bytes in
  Kmem.write_ptr kst.mem (card + coff t "dma_area") dma;
  Kmem.write_u32 kst.mem (card + coff t "dma_bytes") dma_bytes;
  Kmem.write_bytes kst.mem ~addr:(card + coff t "name")
    (let n = if String.length name > 15 then String.sub name 0 15 else name in
     n ^ "\000");
  card

let snd_card_register t card =
  t.cards <- card :: t.cards;
  0L

let dma_area t card = Kmem.read_ptr t.kst.mem (card + coff t "dma_area")
let dma_bytes t card = Kmem.read_u32 t.kst.mem (card + coff t "dma_bytes")

(** [snd_pcm_period_elapsed t card] — exported; drivers call it from
    their interrupt path. *)
let snd_pcm_period_elapsed t _card =
  Kcycles.charge t.kst.cycles Kcycles.Kernel 40;
  t.periods_elapsed <- t.periods_elapsed + 1;
  0L

let op_call t card ~op args =
  let kst = t.kst in
  let ops = Kmem.read_ptr kst.mem (card + coff t "pcm_ops") in
  if ops = 0 then raise (Kstate.Oops "snd card without pcm ops");
  let slot = ops + ooff t op in
  Kstate.call_ptr kst ~slot ~ftype:("snd_pcm_ops." ^ op) (Int64.of_int card :: args)

(** Userspace-side playback sequence: open, start trigger, poll the
    hardware pointer [polls] times, stop, close. Returns the last
    hardware pointer position. *)
let playback t card ~polls =
  ignore (op_call t card ~op:"open" []);
  ignore (op_call t card ~op:"trigger" [ trigger_start ]);
  let pos = ref 0L in
  for _ = 1 to polls do
    Kcycles.charge t.kst.cycles Kcycles.Kernel 30;
    pos := op_call t card ~op:"pointer" []
  done;
  ignore (op_call t card ~op:"trigger" [ trigger_stop ]);
  ignore (op_call t card ~op:"close" []);
  !pos

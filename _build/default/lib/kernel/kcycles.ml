(** Cycle accounting for the simulated single-core CPU.

    The netperf reproduction (paper §8.4) reports CPU utilization; on real
    hardware that is time spent executing instructions and LXFI guards.  In
    the simulator every unit of work charges cycles to a [t], and the
    benchmark harness converts accumulated cycles into utilization against
    a fixed clock rate (the paper's test machine is an Intel i3-550 at
    3.2 GHz).

    Charges are split into coarse categories so the harness can report
    where time goes (kernel path vs. module instructions vs. guards),
    mirroring the paper's Figure 13 breakdown. *)

type category =
  | Kernel  (** core-kernel work: socket layer, qdisc, slab, IRQs *)
  | Module  (** interpreted module (MIR) instructions *)
  | Guard  (** LXFI runtime guards: write checks, wrappers, annotations *)

type t = {
  mutable kernel : int;
  mutable module_ : int;
  mutable guard : int;
}

let create () = { kernel = 0; module_ = 0; guard = 0 }

let reset t =
  t.kernel <- 0;
  t.module_ <- 0;
  t.guard <- 0

let charge t cat n =
  match cat with
  | Kernel -> t.kernel <- t.kernel + n
  | Module -> t.module_ <- t.module_ + n
  | Guard -> t.guard <- t.guard + n

(** Total cycles consumed since creation or the last [reset]. *)
let total t = t.kernel + t.module_ + t.guard

let kernel t = t.kernel
let module_ t = t.module_
let guard t = t.guard

(** Snapshot for differential measurement around a workload section. *)
type snapshot = { s_kernel : int; s_module : int; s_guard : int }

let snapshot t = { s_kernel = t.kernel; s_module = t.module_; s_guard = t.guard }

let since t s =
  {
    kernel = t.kernel - s.s_kernel;
    module_ = t.module_ - s.s_module;
    guard = t.guard - s.s_guard;
  }

let pp ppf t =
  Fmt.pf ppf "cycles{kernel=%d; module=%d; guard=%d; total=%d}" t.kernel
    t.module_ t.guard (total t)

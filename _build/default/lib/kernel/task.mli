(** Simulated [struct task_struct] and credentials — memory-resident,
    so the uid field is a concrete target for confused-deputy writes
    (§1) and arbitrary-write exploits, and "privilege escalation" is
    the observable fact [uid = 0]. *)

type t = { addr : int; pid : int }

val struct_name : string

val user_ds : int
(** Normal address limit: uaccess only reaches user memory. *)

val kernel_ds : int
(** Raised address limit (set_fs(KERNEL_DS)): uaccess reaches kernel
    memory — the context CVE-2010-4258 abuses. *)

val define_layout : Ktypes.t -> unit
(** Register the task_struct layout (called at kernel boot). *)

val field_addr : Ktypes.t -> t -> string -> int
(** Address of a named field — e.g. [field_addr types t "uid"] is what
    an exploit aims its arbitrary write at. *)

val create : Kmem.t -> Slab.t -> Ktypes.t -> pid:int -> uid:int -> comm:string -> t
val uid : Kmem.t -> Ktypes.t -> t -> int
val euid : Kmem.t -> Ktypes.t -> t -> int
val set_uid : Kmem.t -> Ktypes.t -> t -> int -> unit
val addr_limit : Kmem.t -> Ktypes.t -> t -> int
val set_addr_limit : Kmem.t -> Ktypes.t -> t -> int -> unit
val clear_child_tid : Kmem.t -> Ktypes.t -> t -> int
val set_clear_child_tid : Kmem.t -> Ktypes.t -> t -> int -> unit
val comm : Kmem.t -> Ktypes.t -> t -> string
val is_root : Kmem.t -> Ktypes.t -> t -> bool

(** Cycle accounting for the simulated single-core CPU: every unit of
    work charges cycles in one of three categories, and the benchmark
    harness converts totals into throughput/CPU%% against a fixed clock
    (the paper's 3.2 GHz i3-550). *)

type category =
  | Kernel  (** core-kernel work: socket layer, qdisc, slab, IRQs *)
  | Module  (** interpreted module (MIR) instructions *)
  | Guard  (** LXFI guards: write checks, wrappers, annotations *)

type t = { mutable kernel : int; mutable module_ : int; mutable guard : int }

val create : unit -> t
val reset : t -> unit
val charge : t -> category -> int -> unit
val total : t -> int
val kernel : t -> int
val module_ : t -> int
val guard : t -> int

type snapshot

val snapshot : t -> snapshot

val since : t -> snapshot -> t
(** Per-category deltas since the snapshot, as a fresh value. *)

val pp : Format.formatter -> t -> unit

(** Socket layer: protocol-family registry and the syscall surface that
    attack programs and workloads use ([socket]/[sendmsg]/[recvmsg]/
    [ioctl]/[bind]).

    Protocol modules (RDS, CAN, CAN-BCM, Econet in the paper's corpus)
    register a [net_proto_family] whose [create] pointer, and a
    [proto_ops] table whose operation pointers, live in {e module}
    memory.  The kernel invokes all of them indirectly — the RDS and
    Econet privilege-escalation exploits end with exactly such an
    invocation of a corrupted [proto_ops.ioctl]. *)

let socket_struct = "socket"
let ops_struct = "proto_ops"
let npf_struct = "net_proto_family"

let define_layout types =
  ignore
    (Ktypes.define types ops_struct
       [
         ("release", 8, Ktypes.Funcptr "proto_ops.release");
         ("bind", 8, Ktypes.Funcptr "proto_ops.bind");
         ("ioctl", 8, Ktypes.Funcptr "proto_ops.ioctl");
         ("sendmsg", 8, Ktypes.Funcptr "proto_ops.sendmsg");
         ("recvmsg", 8, Ktypes.Funcptr "proto_ops.recvmsg");
       ]);
  ignore
    (Ktypes.define types npf_struct
       [ ("family", 4, Ktypes.Scalar); ("create", 8, Ktypes.Funcptr "net_proto_family.create") ]);
  ignore
    (Ktypes.define types socket_struct
       [
         ("state", 4, Ktypes.Scalar);
         ("type", 4, Ktypes.Scalar);
         ("ops", 8, Ktypes.Pointer);
         ("sk", 8, Ktypes.Pointer);
       ])

(* Address families used by the module corpus. *)
let af_rds = 21
let af_can = 29
let af_econet = 19

type t = {
  kst : Kstate.t;
  families : (int, int) Hashtbl.t;  (** family -> net_proto_family addr *)
  fds : (int, int) Hashtbl.t;  (** fd -> socket addr *)
  mutable next_fd : int;
}

let create kst = { kst; families = Hashtbl.create 8; fds = Hashtbl.create 16; next_fd = 3 }

let soff t f = Ktypes.offset t.kst.Kstate.types socket_struct f
let opoff t f = Ktypes.offset t.kst.Kstate.types ops_struct f
let npoff t f = Ktypes.offset t.kst.Kstate.types npf_struct f

(** [sock_register t npf] — exported to protocol modules. *)
let sock_register t npf =
  let fam = Kmem.read_u32 t.kst.mem (npf + npoff t "family") in
  if Hashtbl.mem t.families fam then -17L (* -EEXIST *)
  else begin
    Hashtbl.replace t.families fam npf;
    0L
  end

let sock_unregister t family = Hashtbl.remove t.families family

let sock_of_fd t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some s -> s
  | None -> raise (Kstate.Oops (Printf.sprintf "bad fd %d" fd))

(** [sys_socket t ~family ~typ] — allocates the socket object and calls
    the module's [create] through the registered npf slot. Returns the
    new fd, or a negative errno. *)
let sys_socket t ~family ~typ =
  let kst = t.kst in
  Kcycles.charge kst.cycles Kcycles.Kernel 120;
  match Hashtbl.find_opt t.families family with
  | None -> -97 (* -EAFNOSUPPORT *)
  | Some npf ->
      let sock = Slab.kmalloc kst.slab (Ktypes.sizeof kst.types socket_struct) in
      Kmem.write_u32 kst.mem (sock + soff t "type") typ;
      let slot = npf + npoff t "create" in
      let ret =
        Kstate.call_ptr kst ~slot ~ftype:"net_proto_family.create"
          [ Int64.of_int sock; Int64.of_int typ ]
      in
      if ret <> 0L then Int64.to_int ret
      else begin
        let fd = t.next_fd in
        t.next_fd <- fd + 1;
        Hashtbl.replace t.fds fd sock;
        fd
      end

let op_call t ~fd ~op ~ftype args =
  let kst = t.kst in
  Kcycles.charge kst.cycles Kcycles.Kernel 90 (* fd lookup, sockfd_lookup, copy msghdr *);
  let sock = sock_of_fd t fd in
  let ops = Kmem.read_ptr kst.mem (sock + soff t "ops") in
  if ops = 0 then raise (Kstate.Oops "socket without ops");
  let slot = ops + opoff t op in
  Kstate.call_ptr kst ~slot ~ftype (Int64.of_int sock :: args)

(** [sys_sendmsg t ~fd ~buf ~len ~flags] — user buffer address and
    length travel to the module's sendmsg. *)
let sys_sendmsg t ~fd ~buf ~len ~flags =
  op_call t ~fd ~op:"sendmsg" ~ftype:"proto_ops.sendmsg"
    [ Int64.of_int buf; Int64.of_int len; Int64.of_int flags ]

(** [sys_sendpage t ~fd ...] — the sendfile/sendpage path: the kernel
    temporarily raises the address limit to KERNEL_DS around the
    protocol's sendmsg (as [sock_no_sendpage]-era kernels did).  If the
    module oopses inside, the limit is {e not} restored — the context
    CVE-2010-4258 needs. *)
let sys_sendpage t ~fd ~buf ~len ~flags =
  Kstate.set_fs t.kst Task.kernel_ds;
  let r =
    op_call t ~fd ~op:"sendmsg" ~ftype:"proto_ops.sendmsg"
      [ Int64.of_int buf; Int64.of_int len; Int64.of_int flags ]
  in
  Kstate.set_fs t.kst Task.user_ds;
  r

let sys_recvmsg t ~fd ~buf ~len ~flags =
  op_call t ~fd ~op:"recvmsg" ~ftype:"proto_ops.recvmsg"
    [ Int64.of_int buf; Int64.of_int len; Int64.of_int flags ]

let sys_ioctl t ~fd ~cmd ~arg =
  op_call t ~fd ~op:"ioctl" ~ftype:"proto_ops.ioctl"
    [ Int64.of_int cmd; Int64.of_int arg ]

let sys_bind t ~fd ~addr ~alen =
  op_call t ~fd ~op:"bind" ~ftype:"proto_ops.bind"
    [ Int64.of_int addr; Int64.of_int alen ]

let sys_close t ~fd =
  (match Hashtbl.find_opt t.fds fd with
  | Some _ ->
      let r = op_call t ~fd ~op:"release" ~ftype:"proto_ops.release" [] in
      ignore r;
      Hashtbl.remove t.fds fd
  | None -> ());
  0L

(** PCI subsystem: enumeration, driver registration, probe dispatch
    through the module's [pci_driver.probe] slot (the Figure 4
    handshake), MMIO BARs, and legacy I/O ports (the special-REF
    resource of Guideline 3). *)

val dev_struct : string
val drv_struct : string
val define_layout : Ktypes.t -> unit

type t = {
  kst : Kstate.t;
  mutable devices : int list;
  io_space : (int, int) Hashtbl.t;
}

val create : Kstate.t -> t

val add_device : t -> vendor:int -> device:int -> bar_len:int -> int
(** Hot-plug a device: allocates the [pci_dev], maps an MMIO BAR,
    assigns an IRQ line and an I/O port base.  Returns the pci_dev
    address. *)

val bar0 : t -> int -> int
val bar0_len : t -> int -> int
val is_enabled : t -> int -> bool
val ioport : t -> int -> int
val irq : t -> int -> int

val register_driver : t -> int -> int
(** For every matching unclaimed device, call the driver's probe
    through the module-memory slot; returns how many bound. *)

val pci_enable_device : t -> int -> int64
val pci_disable_device : t -> int -> int64
val pci_set_drvdata : t -> int -> int -> unit
val pci_get_drvdata : t -> int -> int

val outb : t -> port:int -> value:int -> unit
val inb : t -> port:int -> int

(** AST of the LXFI annotation language (paper Figure 2).

    {v
    annotation ::= pre(action) | post(action) | principal(c-expr)
    action     ::= copy(caplist) | transfer(caplist) | check(caplist)
                 | if (c-expr) action
    caplist    ::= (c, ptr, [size]) | iterator-func(c-expr)
    v}

    [c] is a capability type (WRITE, CALL, or [ref(struct foo)]); [ptr]
    and [size] are C expressions over the annotated function's
    parameters and (in post clauses) its return value.  The [size]
    parameter defaults to the size of the pointed-to struct when the
    parameter's referent type is registered, else to 8 bytes. *)

type captype =
  | Write  (** WRITE(ptr, size): may store to [ptr, ptr+size) *)
  | Call  (** CALL(a): may call/jump to address a *)
  | Ref of string  (** REF(t, a): may pass a where a REF of type t is required *)

type binop = Oeq | One | Olt | Ole | Ogt | Oge | Oadd | Osub | Omul | Oand | Oor

type cexpr =
  | Cint of int64
  | Cparam of string  (** named parameter of the annotated function *)
  | Creturn  (** the function's return value (post clauses only) *)
  | Cbin of binop * cexpr * cexpr
  | Cneg of cexpr
  | Csizeof of string  (** [sizeof(struct foo)] *)

type caplist =
  | Inline of captype * cexpr * cexpr option  (** (c, ptr, [size]) *)
  | Iter of string * cexpr list
      (** programmer-supplied capability iterator, e.g. [skb_caps(skb)] *)

type action =
  | Copy of caplist
  | Transfer of caplist
  | Check of caplist
  | Cif of cexpr * action

type principal_spec =
  | Pglobal  (** run as the module's global principal *)
  | Pshared  (** run as the module's shared principal (the default) *)
  | Pexpr of cexpr  (** instance principal named by this pointer value *)

type clause = Pre of action | Post of action | Principal of principal_spec

type t = clause list

(** {1 Canonical printing}

    The canonical form is what gets hashed for the kernel rewriter's
    annotation-match check (§4.1): a module function stored into a
    function-pointer slot must carry annotations whose canonical hash
    equals the slot type's. *)

let rec cexpr_to_string = function
  | Cint n -> Int64.to_string n
  | Cparam p -> p
  | Creturn -> "return"
  | Cneg e -> "-" ^ cexpr_to_string e
  | Csizeof s -> Printf.sprintf "sizeof(struct %s)" s
  | Cbin (op, a, b) ->
      let s =
        match op with
        | Oeq -> "=="
        | One -> "!="
        | Olt -> "<"
        | Ole -> "<="
        | Ogt -> ">"
        | Oge -> ">="
        | Oadd -> "+"
        | Osub -> "-"
        | Omul -> "*"
        | Oand -> "&&"
        | Oor -> "||"
      in
      Printf.sprintf "(%s %s %s)" (cexpr_to_string a) s (cexpr_to_string b)

let captype_to_string = function
  | Write -> "write"
  | Call -> "call"
  | Ref s -> Printf.sprintf "ref(struct %s)" s

let caplist_to_string = function
  | Inline (c, p, None) ->
      Printf.sprintf "%s, %s" (captype_to_string c) (cexpr_to_string p)
  | Inline (c, p, Some s) ->
      Printf.sprintf "%s, %s, %s" (captype_to_string c) (cexpr_to_string p)
        (cexpr_to_string s)
  | Iter (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map cexpr_to_string args))

let rec action_to_string = function
  | Copy cl -> Printf.sprintf "copy(%s)" (caplist_to_string cl)
  | Transfer cl -> Printf.sprintf "transfer(%s)" (caplist_to_string cl)
  | Check cl -> Printf.sprintf "check(%s)" (caplist_to_string cl)
  | Cif (c, a) -> Printf.sprintf "if (%s) %s" (cexpr_to_string c) (action_to_string a)

let clause_to_string = function
  | Pre a -> Printf.sprintf "pre(%s)" (action_to_string a)
  | Post a -> Printf.sprintf "post(%s)" (action_to_string a)
  | Principal Pglobal -> "principal(global)"
  | Principal Pshared -> "principal(shared)"
  | Principal (Pexpr e) -> Printf.sprintf "principal(%s)" (cexpr_to_string e)

let to_string (t : t) = String.concat " " (List.map clause_to_string t)

(** The principal clause of an annotation set, if any. *)
let principal_of (t : t) =
  List.find_map (function Principal p -> Some p | _ -> None) t

let pre_actions (t : t) = List.filter_map (function Pre a -> Some a | _ -> None) t
let post_actions (t : t) = List.filter_map (function Post a -> Some a | _ -> None) t

(** {1 Static validation}

    An annotation that references an unknown parameter, or the return
    value in a pre clause, would only fail at its first runtime
    evaluation; [validate] rejects it when the interface is declared
    instead (the linter the paper's reliance on trusted annotations
    calls for — §2.2: "if there is any mistake ... LXFI will enforce
    the policy specified in the annotation"; at least the
    non-evaluable mistakes are caught early). *)

let rec validate_cexpr ~params ~allow_return = function
  | Cint _ -> Ok ()
  | Cparam p ->
      if List.mem p params then Ok ()
      else Error (Printf.sprintf "unknown parameter %s (have: %s)" p (String.concat ", " params))
  | Creturn -> if allow_return then Ok () else Error "return value referenced in a pre/principal context"
  | Cneg e -> validate_cexpr ~params ~allow_return e
  | Csizeof _ -> Ok ()
  | Cbin (_, a, b) -> (
      match validate_cexpr ~params ~allow_return a with
      | Ok () -> validate_cexpr ~params ~allow_return b
      | Error _ as e -> e)

let validate_caplist ~params ~allow_return = function
  | Inline (_, p, s) -> (
      match validate_cexpr ~params ~allow_return p with
      | Ok () -> (
          match s with
          | None -> Ok ()
          | Some e -> validate_cexpr ~params ~allow_return e)
      | Error _ as e -> e)
  | Iter (_, args) ->
      List.fold_left
        (fun acc e ->
          match acc with Ok () -> validate_cexpr ~params ~allow_return e | e -> e)
        (Ok ()) args

let rec validate_action ~params ~allow_return = function
  | Copy cl | Transfer cl | Check cl -> validate_caplist ~params ~allow_return cl
  | Cif (c, a) -> (
      match validate_cexpr ~params ~allow_return c with
      | Ok () -> validate_action ~params ~allow_return a
      | Error _ as e -> e)

(** [validate ~params t] — [Error msg] if any clause references an
    undeclared parameter or uses [return] outside a post clause. *)
let validate ~params (t : t) : (unit, string) result =
  List.fold_left
    (fun acc clause ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match clause with
          | Pre a -> validate_action ~params ~allow_return:false a
          | Post a -> validate_action ~params ~allow_return:true a
          | Principal (Pexpr e) -> validate_cexpr ~params ~allow_return:false e
          | Principal (Pglobal | Pshared) -> Ok ()))
    (Ok ()) t

(** Recursive-descent parser for the annotation language of Figure 2.

    Annotations are written as strings attached to kernel exports and
    function-pointer slot types, e.g.:

    {v
    principal(pcidev)
    pre(copy(ref(struct pci_dev), pcidev))
    post(if (return < 0) transfer(ref(struct pci_dev), pcidev))
    pre(transfer(skb_caps(skb)))
    pre(check(write, lock, 4))
    v} *)

open Ast

type token =
  | Tident of string
  | Tint of int64
  | Tlparen
  | Trparen
  | Tcomma
  | Top of string  (** ==, !=, <, <=, >, >=, +, -, *, &&, || *)

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let tokenize (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit Tlparen; incr i)
    else if c = ')' then (emit Trparen; incr i)
    else if c = ',' then (emit Tcomma; incr i)
    else if c = '=' && peek 1 = Some '=' then (emit (Top "=="); i := !i + 2)
    else if c = '!' && peek 1 = Some '=' then (emit (Top "!="); i := !i + 2)
    else if c = '<' && peek 1 = Some '=' then (emit (Top "<="); i := !i + 2)
    else if c = '>' && peek 1 = Some '=' then (emit (Top ">="); i := !i + 2)
    else if c = '&' && peek 1 = Some '&' then (emit (Top "&&"); i := !i + 2)
    else if c = '|' && peek 1 = Some '|' then (emit (Top "||"); i := !i + 2)
    else if c = '<' || c = '>' || c = '+' || c = '-' || c = '*' then
      (emit (Top (String.make 1 c)); incr i)
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        j := !i + 2;
        while !j < n && (is_ident_char s.[!j]) do incr j done
      end
      else while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      let text = String.sub s !i (!j - !i) in
      (match Int64.of_string_opt text with
      | Some v -> emit (Tint v)
      | None -> fail "bad integer literal %S" text);
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      emit (Tident (String.sub s !i (!j - !i)));
      i := !j
    end
    else fail "unexpected character %C" c
  done;
  List.rev !toks

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st = match st.toks with [] -> fail "unexpected end of annotation" | _ :: r -> st.toks <- r

let expect st t =
  match st.toks with
  | x :: r when x = t -> st.toks <- r
  | x :: _ ->
      let show = function
        | Tident s -> s
        | Tint n -> Int64.to_string n
        | Tlparen -> "("
        | Trparen -> ")"
        | Tcomma -> ","
        | Top o -> o
      in
      fail "expected %s, found %s" (show t) (show x)
  | [] -> fail "unexpected end of annotation"

let ident st =
  match st.toks with
  | Tident s :: r ->
      st.toks <- r;
      s
  | _ -> fail "expected identifier"

(* c-expr precedence climbing *)
let rec parse_or st =
  let a = parse_and st in
  match peek st with
  | Some (Top "||") ->
      advance st;
      Cbin (Oor, a, parse_or st)
  | _ -> a

and parse_and st =
  let a = parse_cmp st in
  match peek st with
  | Some (Top "&&") ->
      advance st;
      Cbin (Oand, a, parse_and st)
  | _ -> a

and parse_cmp st =
  let a = parse_add st in
  match peek st with
  | Some (Top (("==" | "!=" | "<" | "<=" | ">" | ">=") as o)) ->
      advance st;
      let b = parse_add st in
      let op =
        match o with
        | "==" -> Oeq
        | "!=" -> One
        | "<" -> Olt
        | "<=" -> Ole
        | ">" -> Ogt
        | _ -> Oge
      in
      Cbin (op, a, b)
  | _ -> a

and parse_add st =
  let rec go a =
    match peek st with
    | Some (Top "+") ->
        advance st;
        go (Cbin (Oadd, a, parse_mul st))
    | Some (Top "-") ->
        advance st;
        go (Cbin (Osub, a, parse_mul st))
    | _ -> a
  in
  go (parse_mul st)

and parse_mul st =
  let rec go a =
    match peek st with
    | Some (Top "*") ->
        advance st;
        go (Cbin (Omul, a, parse_atom st))
    | _ -> a
  in
  go (parse_atom st)

and parse_atom st =
  match st.toks with
  | Tint n :: r ->
      st.toks <- r;
      Cint n
  | Top "-" :: r ->
      st.toks <- r;
      Cneg (parse_atom st)
  | Tident "return" :: r ->
      st.toks <- r;
      Creturn
  | Tident "sizeof" :: r ->
      st.toks <- r;
      expect st Tlparen;
      (match ident st with
      | "struct" ->
          let s = ident st in
          expect st Trparen;
          Csizeof s
      | other -> fail "sizeof expects 'struct <name>', got %s" other)
  | Tident x :: r ->
      st.toks <- r;
      Cparam x
  | Tlparen :: r ->
      st.toks <- r;
      let e = parse_or st in
      expect st Trparen;
      e
  | _ -> fail "expected expression"

let parse_captype st name =
  match name with
  | "write" -> Write
  | "call" -> Call
  | "ref" ->
      expect st Tlparen;
      (match ident st with
      | "struct" ->
          let s = ident st in
          expect st Trparen;
          Ref s
      | (* allow special (non-struct) REF types per Guideline 3 *) other ->
          expect st Trparen;
          Ref other)
  | other -> fail "unknown capability type %s" other

(* caplist — already inside the enclosing parens of copy/transfer/check *)
let parse_caplist st =
  match st.toks with
  | Tident (("write" | "call" | "ref") as ct) :: r ->
      st.toks <- r;
      let c = parse_captype st ct in
      expect st Tcomma;
      let ptr = parse_or st in
      let size =
        match peek st with
        | Some Tcomma ->
            advance st;
            Some (parse_or st)
        | _ -> None
      in
      Inline (c, ptr, size)
  | Tident iter :: r ->
      st.toks <- r;
      expect st Tlparen;
      let rec args acc =
        match peek st with
        | Some Trparen ->
            advance st;
            List.rev acc
        | _ -> (
            let e = parse_or st in
            match peek st with
            | Some Tcomma ->
                advance st;
                args (e :: acc)
            | _ ->
                expect st Trparen;
                List.rev (e :: acc))
      in
      Iter (iter, args [])
  | _ -> fail "expected capability list"

let rec parse_action st =
  match st.toks with
  | Tident "copy" :: r ->
      st.toks <- r;
      expect st Tlparen;
      let cl = parse_caplist st in
      expect st Trparen;
      Copy cl
  | Tident "transfer" :: r ->
      st.toks <- r;
      expect st Tlparen;
      let cl = parse_caplist st in
      expect st Trparen;
      Transfer cl
  | Tident "check" :: r ->
      st.toks <- r;
      expect st Tlparen;
      let cl = parse_caplist st in
      expect st Trparen;
      Check cl
  | Tident "if" :: r ->
      st.toks <- r;
      expect st Tlparen;
      let c = parse_or st in
      expect st Trparen;
      let a = parse_action st in
      Cif (c, a)
  | _ -> fail "expected action (copy/transfer/check/if)"

let parse_clause st =
  match st.toks with
  | Tident "pre" :: r ->
      st.toks <- r;
      expect st Tlparen;
      let a = parse_action st in
      expect st Trparen;
      Pre a
  | Tident "post" :: r ->
      st.toks <- r;
      expect st Tlparen;
      let a = parse_action st in
      expect st Trparen;
      Post a
  | Tident "principal" :: r -> (
      st.toks <- r;
      expect st Tlparen;
      match st.toks with
      | Tident "global" :: r2 ->
          st.toks <- r2;
          expect st Trparen;
          Principal Pglobal
      | Tident "shared" :: r2 ->
          st.toks <- r2;
          expect st Trparen;
          Principal Pshared
      | _ ->
          let e = parse_or st in
          expect st Trparen;
          Principal (Pexpr e))
  | _ -> fail "expected clause (pre/post/principal)"

(** [parse s] parses a whitespace-separated sequence of clauses. *)
let parse (s : string) : (t, string) result =
  try
    let st = { toks = tokenize s } in
    let rec clauses acc =
      match st.toks with [] -> List.rev acc | _ -> clauses (parse_clause st :: acc)
    in
    Ok (clauses [])
  with Parse_error msg -> Error (Printf.sprintf "annotation %S: %s" s msg)

let parse_exn s =
  match parse s with Ok t -> t | Error msg -> invalid_arg msg

(** Registry of annotated function-pointer slot types: a name such as
    ["proto_ops.ioctl"], its parameter names, and its parsed annotation
    with canonical hash.  Kernel indirect-call sites pass the slot-type
    name; the runtime resolves the expected hash and contract here. *)

type slot = {
  sl_name : string;
  sl_params : string list;
  sl_annot : Ast.t;
  sl_ahash : int64;
}

type t = { slots : (string, slot) Hashtbl.t }

val create : unit -> t

exception Unknown_slot of string

val define : t -> name:string -> params:string list -> annot:string -> slot
(** Parse and register; raises [Invalid_argument] on parse errors or
    duplicates. *)

val find : t -> string -> slot
val find_opt : t -> string -> slot option
val mem : t -> string -> bool
val ahash : t -> string -> int64
val all : t -> slot list
(** Sorted by name. *)

(** Recursive-descent parser for the annotation language of paper
    Figure 2.  Annotations are whitespace-separated clause sequences:

    {v
    principal(pcidev)
    pre(copy(ref(struct pci_dev), pcidev))
    post(if (return < 0) transfer(ref(struct pci_dev), pcidev))
    pre(transfer(skb_caps(skb)))
    pre(check(write, lock, 4))
    v} *)

exception Parse_error of string

val parse : string -> (Ast.t, string) result
val parse_exn : string -> Ast.t
(** Raises [Invalid_argument] with the parse error. *)

(** Registry of annotated function-pointer slot types.

    A {e slot type} names a function-pointer position in a kernel
    interface — e.g. ["proto_ops.ioctl"] or
    ["net_device_ops.ndo_start_xmit"] — together with its parameter
    names and its annotation set.  Kernel indirect-call sites pass the
    slot-type name; the LXFI runtime resolves it here to obtain the
    expected annotation hash and the contract to enforce around the
    call. *)

type slot = {
  sl_name : string;
  sl_params : string list;  (** parameter names, excluding the return value *)
  sl_annot : Ast.t;
  sl_ahash : int64;
}

type t = { slots : (string, slot) Hashtbl.t }

let create () = { slots = Hashtbl.create 64 }

exception Unknown_slot of string

(** [define t ~name ~params ~annot] parses and registers a slot type.
    Raises [Invalid_argument] on parse errors or duplicates. *)
let define t ~name ~params ~annot =
  if Hashtbl.mem t.slots name then
    invalid_arg (Printf.sprintf "Registry.define: duplicate slot type %s" name);
  let a = Parser.parse_exn annot in
  (match Ast.validate ~params a with
  | Ok () -> ()
  | Error msg ->
      invalid_arg (Printf.sprintf "Registry.define %s: invalid annotation: %s" name msg));
  let s =
    { sl_name = name; sl_params = params; sl_annot = a; sl_ahash = Hash.of_annot ~params a }
  in
  Hashtbl.replace t.slots name s;
  s

let find t name =
  match Hashtbl.find_opt t.slots name with
  | Some s -> s
  | None -> raise (Unknown_slot name)

let find_opt t name = Hashtbl.find_opt t.slots name
let mem t name = Hashtbl.mem t.slots name
let ahash t name = (find t name).sl_ahash

let all t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.slots []
  |> List.sort (fun a b -> compare a.sl_name b.sl_name)

(** Canonical annotation hashing (the [ahash] of §4.1).

    The kernel rewriter inserts [lxfi_check_indcall(pptr, ahash)] before
    every core-kernel indirect call, where [ahash] is the hash of the
    annotation on the function-pointer {e type}; the runtime compares it
    with the hash of the annotation on the module function actually
    stored in the slot.  Equal hashes mean the module cannot launder a
    function into a slot whose contract differs from the function's own
    (e.g. storing a [sendmsg]-annotated function into an [ioctl] slot).

    We hash the canonical printing with 64-bit FNV-1a. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a (s : string) : int64 =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(** Hash of an annotation set; includes the parameter-name list so that
    positionally different contracts do not collide. *)
let of_annot ~params (t : Ast.t) : int64 =
  fnv1a (String.concat "|" params ^ "##" ^ Ast.to_string t)

(** Hash of the empty annotation set with unknown parameters — the
    value checked against unannotated functions. *)
let empty : int64 = fnv1a "##"

(** Canonical annotation hashing — the [ahash] of paper §4.1.

    The kernel compares the hash of a function-pointer slot type's
    annotation with the hash of the annotation carried by the function
    actually stored there, so a module cannot launder a function into a
    slot with a different contract.  FNV-1a over the canonical printing
    plus the parameter-name list. *)

val fnv1a : string -> int64

val of_annot : params:string list -> Ast.t -> int64

val empty : int64
(** The hash checked against unannotated slot types. *)

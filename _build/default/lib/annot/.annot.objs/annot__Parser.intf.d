lib/annot/parser.mli: Ast

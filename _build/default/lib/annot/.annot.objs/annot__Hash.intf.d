lib/annot/hash.mli: Ast

lib/annot/registry.mli: Ast Hashtbl

lib/annot/ast.ml: Int64 List Printf String

lib/annot/registry.ml: Ast Hash Hashtbl List Parser Printf

lib/annot/hash.ml: Ast Char Int64 String

lib/lxfi/config.ml: Fmt

lib/lxfi/runtime.mli: Annot Capability Config Hashtbl Kernel_sim Kstate Mir Principal Shadow_stack Stats Writer_set

lib/lxfi/captable.mli: Format Hashtbl

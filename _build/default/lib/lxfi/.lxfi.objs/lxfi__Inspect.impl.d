lib/lxfi/inspect.ml: Captable Config Fmt Hashtbl List Mir Principal Printf Runtime Shadow_stack Stats String Writer_set

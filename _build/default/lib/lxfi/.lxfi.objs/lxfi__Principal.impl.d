lib/lxfi/principal.ml: Captable Fmt Printf

lib/lxfi/violation.mli: Format

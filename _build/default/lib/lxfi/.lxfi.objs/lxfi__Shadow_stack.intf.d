lib/lxfi/shadow_stack.mli: Principal

lib/lxfi/captable.ml: Fmt Hashtbl List Option

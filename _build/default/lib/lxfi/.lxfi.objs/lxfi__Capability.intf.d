lib/lxfi/capability.mli: Format

lib/lxfi/rewriter.ml: Config Fmt Format Hashtbl Int64 List Mir Printf

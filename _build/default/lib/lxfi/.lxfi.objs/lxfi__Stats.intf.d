lib/lxfi/stats.mli: Format

lib/lxfi/runtime.ml: Annot Capability Captable Config Fmt Hashtbl Int64 Kcycles Kernel_sim Klog Kmem Kstate Ksym Ktypes List Mir Principal Printf Shadow_stack Stats Violation Writer_set

lib/lxfi/writer_set.ml: Hashtbl

lib/lxfi/capability.ml: Fmt

lib/lxfi/rewriter.mli: Config Format Mir

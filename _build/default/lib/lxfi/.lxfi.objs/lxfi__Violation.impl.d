lib/lxfi/violation.ml: Fmt Format Kernel_sim

lib/lxfi/writer_set.mli: Hashtbl

lib/lxfi/stats.ml: Fmt

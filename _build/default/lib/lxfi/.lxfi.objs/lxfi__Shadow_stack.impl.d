lib/lxfi/shadow_stack.ml: List Principal Violation

lib/lxfi/principal.mli: Captable Format

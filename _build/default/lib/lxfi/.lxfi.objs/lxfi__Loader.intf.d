lib/lxfi/loader.mli: Mir Rewriter Runtime

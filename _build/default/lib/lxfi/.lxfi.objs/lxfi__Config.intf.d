lib/lxfi/config.mli: Format

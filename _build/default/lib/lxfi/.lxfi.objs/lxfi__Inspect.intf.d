lib/lxfi/inspect.mli: Format Runtime Stats

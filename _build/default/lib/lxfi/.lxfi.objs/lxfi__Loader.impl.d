lib/lxfi/loader.ml: Annot Capability Config Format Hashtbl Int64 Kernel_sim Klog Kmem Kstate Ksym Ktypes List Mir Principal Printf Rewriter Runtime String

(** The three capability types of paper §3.2. *)

type t =
  | Cwrite of { base : int; size : int }
      (** may write any values to [base, base+size) and pass interior
          addresses to kernel routines that require writable memory *)
  | Cref of { rtype : string; addr : int }
      (** may pass [addr] where the API demands a REF of type [rtype]
          (object ownership without write access); [rtype] is usually a
          struct name but can be a special type such as [io_port]
          (Guideline 3) *)
  | Ccall of { target : int }  (** may call or jump to [target] *)

val write : base:int -> size:int -> t
val ref_ : rtype:string -> addr:int -> t
val call : target:int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

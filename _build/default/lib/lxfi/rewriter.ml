(** Compile-time module rewriting (§4.2) — the clang-plugin analogue.

    [instrument] transforms a MIR program so every dangerous operation
    is preceded by an explicit runtime guard:

    - every store gains a [Gwrite] guard on its (hoisted) address;
    - every indirect call gains a [Gindcall] guard on its (hoisted)
      target;
    - calls to imports are already routed through annotated wrappers by
      the loader, and function entry/exit hooks are enabled by the
      interpreter when running instrumented code.

    Two of the paper's optimizations are implemented, because the
    Figure 11 microbenchmark results depend on them:

    - {e trivial-function inlining}: single-[Return] leaf functions are
      inlined at direct call sites before guarding, eliminating their
      entry/exit guards (this is why lld is 11% under LXFI vs 93%
      under binary-rewriting XFI);
    - {e safe-store elision}: stores at constant offsets inside a
      function-local [Alloca] buffer, provably in bounds, need no
      write guard (this is why MD5 is ~2% vs 27%).

    Like the paper's rewriter (§7), this one refuses module code it
    cannot analyse: an indirect call buried in a subexpression makes
    [instrument] raise [Rewrite_error] — the module developer must
    hoist it (the paper reports changing 18 lines across 10 modules for
    the same reason). *)

open Mir.Ast

exception Rewrite_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Rewrite_error s)) fmt

type report = {
  r_orig_size : int;
  r_inst_size : int;  (** includes per-function entry/exit hook cost *)
  r_write_guards : int;
  r_write_elided : int;
  r_indcall_guards : int;
  r_inlined_calls : int;
  r_dropped_funcs : int;
}

let empty_report =
  {
    r_orig_size = 0;
    r_inst_size = 0;
    r_write_guards = 0;
    r_write_elided = 0;
    r_indcall_guards = 0;
    r_inlined_calls = 0;
    r_dropped_funcs = 0;
  }

(** {1 Trivial-function inlining} *)

(** A function is trivial when its body is a single [Return] of an
    expression with no calls, and each parameter occurs at most once
    (so substituting argument expressions cannot duplicate effects). *)
let rec expr_has_call = function
  | Const _ | Var _ | Glob _ | Funcaddr _ | Extaddr _ -> false
  | Load (_, e) -> expr_has_call e
  | Binop (_, _, a, b) -> expr_has_call a || expr_has_call b
  | Call _ -> true

let rec count_var name = function
  | Var x -> if x = name then 1 else 0
  | Const _ | Glob _ | Funcaddr _ | Extaddr _ -> 0
  | Load (_, e) -> count_var name e
  | Binop (_, _, a, b) -> count_var name a + count_var name b
  | Call (c, args) ->
      let n = match c with Indirect e -> count_var name e | _ -> 0 in
      List.fold_left (fun acc e -> acc + count_var name e) n args

let trivial_body f =
  match f.body with
  | [ Return e ] when (not (expr_has_call e)) && expr_size e <= 12
                      && List.for_all (fun p -> count_var p e <= 1) f.params ->
      Some e
  | _ -> None

let rec subst map = function
  | Var x as e -> ( match List.assoc_opt x map with Some r -> r | None -> e)
  | (Const _ | Glob _ | Funcaddr _ | Extaddr _) as e -> e
  | Load (w, e) -> Load (w, subst map e)
  | Binop (op, w, a, b) -> Binop (op, w, subst map a, subst map b)
  | Call (c, args) ->
      let c = match c with Indirect e -> Indirect (subst map e) | c -> c in
      Call (c, List.map (subst map) args)

(** One inlining pass over the whole program; [inlined] counts replaced
    call sites and [inlined_names] records which functions were
    substituted somewhere (only those may later be dropped — a module's
    entry points must survive even when their bodies are trivial). *)
let inline_pass prog inlined inlined_names =
  let candidates =
    List.filter_map
      (fun f -> match trivial_body f with Some e -> Some (f.fname, (f.params, e)) | None -> None)
      prog.funcs
  in
  if candidates = [] then prog
  else begin
    let rec rewrite_expr e =
      match e with
      | Call (Direct name, args) -> (
          let args = List.map rewrite_expr args in
          match List.assoc_opt name candidates with
          | Some (params, body) when List.length params = List.length args ->
              incr inlined;
              Hashtbl.replace inlined_names name ();
              subst (List.combine params args) body
          | _ -> Call (Direct name, args))
      | Call (c, args) ->
          let c = match c with Indirect t -> Indirect (rewrite_expr t) | c -> c in
          Call (c, List.map rewrite_expr args)
      | Load (w, e) -> Load (w, rewrite_expr e)
      | Binop (op, w, a, b) -> Binop (op, w, rewrite_expr a, rewrite_expr b)
      | (Const _ | Var _ | Glob _ | Funcaddr _ | Extaddr _) as e -> e
    in
    let rec rewrite_stmt = function
      | Let (x, e) -> Let (x, rewrite_expr e)
      | Alloca _ as s -> s
      | Store (w, a, v) -> Store (w, rewrite_expr a, rewrite_expr v)
      | If (c, t, e) -> If (rewrite_expr c, List.map rewrite_stmt t, List.map rewrite_stmt e)
      | While (c, b) -> While (rewrite_expr c, List.map rewrite_stmt b)
      | Expr e -> Expr (rewrite_expr e)
      | Return e -> Return (rewrite_expr e)
      | Guard _ as s -> s
    in
    { prog with funcs = List.map (fun f -> { f with body = List.map rewrite_stmt f.body }) prog.funcs }
  end

(** Is [fname]'s address taken anywhere (stored in globals or used as a
    [Funcaddr] expression)?  Address-taken functions must survive
    inlining. *)
let address_taken prog fname =
  let rec in_expr = function
    | Funcaddr f -> f = fname
    | Const _ | Var _ | Glob _ | Extaddr _ -> false
    | Load (_, e) -> in_expr e
    | Binop (_, _, a, b) -> in_expr a || in_expr b
    | Call (c, args) ->
        (match c with Indirect e -> in_expr e | _ -> false)
        || List.exists in_expr args
  in
  let rec in_stmt = function
    | Let (_, e) | Expr e | Return e -> in_expr e
    | Alloca _ | Guard _ -> false
    | Store (_, a, v) -> in_expr a || in_expr v
    | If (c, t, e) -> in_expr c || List.exists in_stmt t || List.exists in_stmt e
    | While (c, b) -> in_expr c || List.exists in_stmt b
  in
  List.exists
    (fun g -> List.exists (function Ifunc (_, f) -> f = fname | _ -> false) g.ginit)
    prog.globals
  || List.exists (fun f -> List.exists in_stmt f.body) prog.funcs

let called_directly prog fname =
  let rec in_expr = function
    | Call (Direct f, args) -> f = fname || List.exists in_expr args
    | Call (c, args) ->
        (match c with Indirect e -> in_expr e | _ -> false)
        || List.exists in_expr args
    | Load (_, e) -> in_expr e
    | Binop (_, _, a, b) -> in_expr a || in_expr b
    | Const _ | Var _ | Glob _ | Funcaddr _ | Extaddr _ -> false
  in
  let rec in_stmt = function
    | Let (_, e) | Expr e | Return e -> in_expr e
    | Alloca _ | Guard _ -> false
    | Store (_, a, v) -> in_expr a || in_expr v
    | If (c, t, e) -> in_expr c || List.exists in_stmt t || List.exists in_stmt e
    | While (c, b) -> in_expr c || List.exists in_stmt b
  in
  List.exists (fun f -> f.fname <> fname && List.exists in_stmt f.body) prog.funcs

(** {1 Safe-store analysis} *)

(** Allocas of the current function whose binding is never shadowed by
    a later [Let] — their buffer base is a known constant for the whole
    body. *)
let stable_allocas body =
  let allocas = Hashtbl.create 8 in
  let rec scan = function
    | Alloca (x, n) ->
        if Hashtbl.mem allocas x then Hashtbl.replace allocas x None
        else Hashtbl.replace allocas x (Some n)
    | Let (x, _) -> if Hashtbl.mem allocas x then Hashtbl.replace allocas x None
    | If (_, t, e) ->
        List.iter scan t;
        List.iter scan e
    | While (_, b) -> List.iter scan b
    | Store _ | Expr _ | Return _ | Guard _ -> ()
  in
  List.iter scan body;
  allocas

(** A store address provably inside a stable alloca: [buf] or
    [buf + const] with the access in bounds. *)
let safe_store allocas w addr_expr =
  let width = bytes_of_width w in
  let check buf off =
    match Hashtbl.find_opt allocas buf with
    | Some (Some n) -> off >= 0 && off + width <= n
    | _ -> false
  in
  match addr_expr with
  | Var buf -> check buf 0
  | Binop (Add, _, Var buf, Const k) -> check buf (Int64.to_int k)
  | Binop (Add, _, Const k, Var buf) -> check buf (Int64.to_int k)
  | _ -> false

(** {1 Guard insertion} *)

type counters = {
  mutable wguards : int;
  mutable welided : int;
  mutable iguards : int;
  mutable tmp : int;
}

let fresh c =
  c.tmp <- c.tmp + 1;
  Printf.sprintf "__lxfi%d" c.tmp

(** Expressions may not contain indirect calls (they must be hoisted to
    statement position so the guard can precede them). *)
let rec reject_nested_indcall fname = function
  | Call (Indirect _, _) ->
      fail "function %s: indirect call in subexpression; hoist it to a statement" fname
  | Call (_, args) -> List.iter (reject_nested_indcall fname) args
  | Load (_, e) -> reject_nested_indcall fname e
  | Binop (_, _, a, b) ->
      reject_nested_indcall fname a;
      reject_nested_indcall fname b
  | Const _ | Var _ | Glob _ | Funcaddr _ | Extaddr _ -> ()

let check_args_only fname args = List.iter (reject_nested_indcall fname) args

let instrument_func (cfg : Config.t) counters f =
  let allocas = stable_allocas f.body in
  let rec stmts l = List.concat_map stmt l
  and guard_indirect_call mk te args =
    check_args_only f.fname args;
    let t = fresh counters in
    counters.iguards <- counters.iguards + 1;
    [ Let (t, te); Guard (Gindcall (Var t)); mk (Call (Indirect (Var t), args)) ]
  and stmt s =
    match s with
    | Let (x, Call (Indirect te, args)) ->
        reject_nested_indcall f.fname te;
        guard_indirect_call (fun call -> Let (x, call)) te args
    | Expr (Call (Indirect te, args)) ->
        reject_nested_indcall f.fname te;
        guard_indirect_call (fun call -> Expr call) te args
    | Return (Call (Indirect te, args)) ->
        reject_nested_indcall f.fname te;
        guard_indirect_call (fun call -> Return call) te args
    | Let (_, e) as s ->
        reject_nested_indcall f.fname e;
        [ s ]
    | Alloca _ as s -> [ s ]
    | Store (w, ea, ev) ->
        reject_nested_indcall f.fname ea;
        reject_nested_indcall f.fname ev;
        if cfg.Config.opt_elide_safe_writes && safe_store allocas w ea then begin
          counters.welided <- counters.welided + 1;
          [ Store (w, ea, ev) ]
        end
        else begin
          counters.wguards <- counters.wguards + 1;
          let t = fresh counters in
          [ Let (t, ea); Guard (Gwrite (w, Var t)); Store (w, Var t, ev) ]
        end
    | If (c, th, el) ->
        reject_nested_indcall f.fname c;
        [ If (c, stmts th, stmts el) ]
    | While (c, b) ->
        reject_nested_indcall f.fname c;
        [ While (c, stmts b) ]
    | Expr e ->
        reject_nested_indcall f.fname e;
        [ Expr e ]
    | Return e ->
        reject_nested_indcall f.fname e;
        [ Return e ]
    | Guard _ -> fail "function %s: already instrumented" f.fname
  in
  { f with body = stmts f.body }

(** [instrument cfg prog] — full pipeline: inline (optional), insert
    guards, drop dead inlined leaves.  Returns the instrumented program
    and a report.  For [Config.Stock] the program is returned
    unchanged. *)
let inline_program prog inlined =
  let inlined_names = Hashtbl.create 8 in
  let rec fixpoint p n =
    let before = !inlined in
    let p' = inline_pass p inlined inlined_names in
    if !inlined = before || n = 0 then p' else fixpoint p' (n - 1)
  in
  let p = fixpoint prog 4 in
  (* Drop only leaves that were actually inlined away and are no longer
     referenced; entry points keep their definitions. *)
  let keep f =
    (not (Hashtbl.mem inlined_names f.fname))
    || f.export <> None || address_taken p f.fname || called_directly p f.fname
  in
  { p with funcs = List.filter keep p.funcs }

let instrument (cfg : Config.t) prog : prog * report =
  let orig = prog_size prog in
  if cfg.Config.mode = Config.Stock then begin
    (* The stock baseline still gets the ordinary compiler optimization
       (gcc inlines trivial functions with or without LXFI); only the
       guards and hooks are LXFI's. *)
    let inlined = ref 0 in
    let prog =
      if cfg.Config.opt_inline_trivial then inline_program prog inlined else prog
    in
    ( prog,
      {
        empty_report with
        r_orig_size = orig;
        r_inst_size = prog_size prog;
        r_inlined_calls = !inlined;
      } )
  end
  else begin
    let n_before = List.length prog.funcs in
    let inlined = ref 0 in
    let prog =
      if cfg.Config.opt_inline_trivial then inline_program prog inlined else prog
    in
    let counters = { wguards = 0; welided = 0; iguards = 0; tmp = 0 } in
    let funcs = List.map (instrument_func cfg counters) prog.funcs in
    let prog = { prog with funcs } in
    (* Entry/exit hooks cost 2 IR nodes per remaining function. *)
    let inst = prog_size prog + (2 * List.length funcs) in
    ( prog,
      {
        r_orig_size = orig;
        r_inst_size = inst;
        r_write_guards = counters.wguards;
        r_write_elided = counters.welided;
        r_indcall_guards = counters.iguards;
        r_inlined_calls = !inlined;
        r_dropped_funcs = max 0 (n_before - List.length funcs);
      } )
  end

let pp_report ppf r =
  Fmt.pf ppf
    "size %d -> %d (%.2fx); write guards %d (+%d elided); indcall guards %d; inlined %d"
    r.r_orig_size r.r_inst_size
    (float_of_int r.r_inst_size /. float_of_int (max 1 r.r_orig_size))
    r.r_write_guards r.r_write_elided r.r_indcall_guards r.r_inlined_calls

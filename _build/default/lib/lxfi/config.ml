(** Enforcement configuration.

    [mode] selects which system the simulation runs:

    - [Stock]: an uninstrumented kernel+module — the baseline all
      exploits succeed against.
    - [Xfi]: memory safety + module-side CFI only, in the spirit of
      XFI [Erlingsson et al., OSDI'06].  Modules can only write memory
      they own and call imports/own functions, but kernel APIs are not
      annotated (no argument contracts, no REF checks), the kernel does
      not interpose on its own indirect calls, and there are no
      principals.  This is the ablation that shows why API integrity is
      needed: confused-deputy attacks through permissive kernel APIs
      (RDS) and module-supplied corrupted pointers invoked by the
      kernel (Econet) still succeed.
    - [Lxfi]: the full system of the paper.

    The [opt_*] flags expose the paper's performance mechanisms for the
    ablation benchmarks: writer-set tracking (§5), guard elision for
    provably-safe stores, and trivial-function inlining (§8.3). *)

type mode = Stock | Xfi | Lxfi

type t = {
  mode : mode;
  writer_set_tracking : bool;  (** fast-path elision of kernel ind-call checks *)
  opt_elide_safe_writes : bool;  (** drop guards on in-bounds constant-offset stack stores *)
  opt_inline_trivial : bool;  (** inline trivial functions before guarding *)
}

let lxfi =
  {
    mode = Lxfi;
    writer_set_tracking = true;
    opt_elide_safe_writes = true;
    opt_inline_trivial = true;
  }

let stock = { lxfi with mode = Stock }
let xfi = { lxfi with mode = Xfi }

let mode_name = function Stock -> "stock" | Xfi -> "xfi" | Lxfi -> "lxfi"

let pp ppf t =
  Fmt.pf ppf "%s(ws=%b,elide=%b,inline=%b)" (mode_name t.mode) t.writer_set_tracking
    t.opt_elide_safe_writes t.opt_inline_trivial

(** Compile-time module rewriting (paper §4.2) — the clang-plugin
    analogue, operating on MIR.

    [instrument] inserts a [Gwrite] guard before every store and a
    [Gindcall] guard before every indirect call (both on hoisted
    temporaries), implements the paper's two §8.3 optimizations
    (trivial-function inlining; elision of provably in-bounds
    constant-offset stores into function-local allocas), and refuses
    code it cannot analyse (an indirect call nested in a subexpression),
    like the paper's rewriter refuses untraceable pointers (§7).

    For [Config.Stock] only the ordinary compiler optimization
    (inlining) is applied — the baseline a real gcc build would get —
    and no guards are inserted. *)

exception Rewrite_error of string

type report = {
  r_orig_size : int;  (** IR nodes before instrumentation *)
  r_inst_size : int;  (** after, including per-function entry/exit hooks *)
  r_write_guards : int;
  r_write_elided : int;  (** stores proven safe by the alloca analysis *)
  r_indcall_guards : int;
  r_inlined_calls : int;
  r_dropped_funcs : int;  (** inlined-away leaves removed *)
}

val empty_report : report

val instrument : Config.t -> Mir.Ast.prog -> Mir.Ast.prog * report
(** Instrument a module per the configuration.  Raises {!Rewrite_error}
    on unanalysable or already-instrumented code. *)

val pp_report : Format.formatter -> report -> unit

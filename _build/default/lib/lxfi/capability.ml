(** The three capability types of §3.2.

    - [Cwrite (ptr, size)] — may write any values to
      [ptr, ptr+size) and pass interior addresses to kernel routines
      that require writable memory.
    - [Cref (t, a)] — may pass [a] where the API demands a REF of type
      [t] (object ownership without write access).
    - [Ccall a] — may call or jump to address [a]. *)

type t =
  | Cwrite of { base : int; size : int }
  | Cref of { rtype : string; addr : int }
  | Ccall of { target : int }

let write ~base ~size = Cwrite { base; size }
let ref_ ~rtype ~addr = Cref { rtype; addr }
let call ~target = Ccall { target }

let pp ppf = function
  | Cwrite { base; size } -> Fmt.pf ppf "WRITE(0x%x,+%d)" base size
  | Cref { rtype; addr } -> Fmt.pf ppf "REF(%s,0x%x)" rtype addr
  | Ccall { target } -> Fmt.pf ppf "CALL(0x%x)" target

let to_string c = Fmt.str "%a" pp c

(** Guard counters — the raw material of Figure 13 ("guards per packet"
    by type) and the writer-set ablation.

    Counters are cheap monotonic ints; the benchmark harness snapshots
    them around a workload section and divides by the packet count. *)

type t = {
  mutable annotation_actions : int;
      (** copy/transfer/check actions executed by wrappers *)
  mutable fn_entry : int;  (** wrapper/function entry guards *)
  mutable fn_exit : int;
  mutable mem_write_checks : int;  (** module store guards *)
  mutable mod_indcall_checks : int;  (** module-side indirect-call guards *)
  mutable kernel_indcall_all : int;  (** kernel indirect-call sites executed *)
  mutable kernel_indcall_checked : int;  (** ... that needed the capability check *)
  mutable kernel_indcall_elided : int;  (** ... skipped via writer-set fast path *)
  mutable caps_granted : int;
  mutable caps_revoked : int;
  mutable principal_switches : int;
}

let create () =
  {
    annotation_actions = 0;
    fn_entry = 0;
    fn_exit = 0;
    mem_write_checks = 0;
    mod_indcall_checks = 0;
    kernel_indcall_all = 0;
    kernel_indcall_checked = 0;
    kernel_indcall_elided = 0;
    caps_granted = 0;
    caps_revoked = 0;
    principal_switches = 0;
  }

let reset t =
  t.annotation_actions <- 0;
  t.fn_entry <- 0;
  t.fn_exit <- 0;
  t.mem_write_checks <- 0;
  t.mod_indcall_checks <- 0;
  t.kernel_indcall_all <- 0;
  t.kernel_indcall_checked <- 0;
  t.kernel_indcall_elided <- 0;
  t.caps_granted <- 0;
  t.caps_revoked <- 0;
  t.principal_switches <- 0

type snapshot = {
  s_annotation_actions : int;
  s_fn_entry : int;
  s_fn_exit : int;
  s_mem_write_checks : int;
  s_mod_indcall_checks : int;
  s_kernel_indcall_all : int;
  s_kernel_indcall_checked : int;
  s_kernel_indcall_elided : int;
}

let snapshot t =
  {
    s_annotation_actions = t.annotation_actions;
    s_fn_entry = t.fn_entry;
    s_fn_exit = t.fn_exit;
    s_mem_write_checks = t.mem_write_checks;
    s_mod_indcall_checks = t.mod_indcall_checks;
    s_kernel_indcall_all = t.kernel_indcall_all;
    s_kernel_indcall_checked = t.kernel_indcall_checked;
    s_kernel_indcall_elided = t.kernel_indcall_elided;
  }

let since t s =
  {
    s_annotation_actions = t.annotation_actions - s.s_annotation_actions;
    s_fn_entry = t.fn_entry - s.s_fn_entry;
    s_fn_exit = t.fn_exit - s.s_fn_exit;
    s_mem_write_checks = t.mem_write_checks - s.s_mem_write_checks;
    s_mod_indcall_checks = t.mod_indcall_checks - s.s_mod_indcall_checks;
    s_kernel_indcall_all = t.kernel_indcall_all - s.s_kernel_indcall_all;
    s_kernel_indcall_checked = t.kernel_indcall_checked - s.s_kernel_indcall_checked;
    s_kernel_indcall_elided = t.kernel_indcall_elided - s.s_kernel_indcall_elided;
  }

let pp ppf t =
  Fmt.pf ppf
    "guards{annot=%d; entry=%d; exit=%d; wcheck=%d; mod-ind=%d; kind=%d \
     (checked=%d elided=%d); grant=%d; revoke=%d; switch=%d}"
    t.annotation_actions t.fn_entry t.fn_exit t.mem_write_checks t.mod_indcall_checks
    t.kernel_indcall_all t.kernel_indcall_checked t.kernel_indcall_elided t.caps_granted
    t.caps_revoked t.principal_switches

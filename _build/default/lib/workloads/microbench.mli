(** The SFI microbenchmarks of §8.3 (hotlist, lld, MD5) as MIR modules,
    run stock vs. instrumented: code-size ratio and simulated-cycle
    slowdown (the Figure 11 columns).  The harness also asserts the
    instrumented run computes the same result as stock. *)

val bench_slot : string
(** Trivial slot type the benchmarks export their entries through. *)

val define_bench_slot : Lxfi.Runtime.t -> unit

val hotlist_prog : Mir.Ast.prog
val lld_prog : Mir.Ast.prog
val md5_prog : Mir.Ast.prog

type result = {
  b_name : string;
  b_code_ratio : float;  (** instrumented / original IR size *)
  b_stock_cycles : int;
  b_lxfi_cycles : int;
  b_slowdown : float;  (** lxfi/stock − 1 *)
  b_result : int64;
}

val run : ?config_lxfi:Lxfi.Config.t -> string -> Mir.Ast.prog -> iters:int -> result
(** Raises [Invalid_argument] if the instrumented run diverges from
    stock. *)

val all : ?iters:int -> ?config_lxfi:Lxfi.Config.t -> unit -> result list

lib/workloads/report.ml: List Printf String

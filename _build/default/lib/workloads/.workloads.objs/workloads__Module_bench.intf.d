lib/workloads/module_bench.mli: Lxfi

lib/workloads/microbench.ml: Annot Int64 Kcycles Kernel_sim Kmodules Kstate Ksys List Lxfi Mir Printf

lib/workloads/microbench.mli: Lxfi Mir

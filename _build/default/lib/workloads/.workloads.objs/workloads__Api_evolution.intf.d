lib/workloads/api_evolution.mli:

lib/workloads/netperf_sim.mli: Kernel_sim Kmodules Lxfi

lib/workloads/netperf_sim.ml: E1000 Irqchip Kcycles Kernel_sim Kmodules Kstate Ksys Lxfi Mir Mod_common Netdev Nic Option Pci Skbuff

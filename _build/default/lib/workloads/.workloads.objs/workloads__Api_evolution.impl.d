lib/workloads/api_evolution.ml: Hashtbl List Printf

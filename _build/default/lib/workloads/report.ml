(** Fixed-width table formatting shared by the benchmark harness and
    the CLI. *)

let rule width = String.make width '-'

(** [table ~title ~header rows] prints an aligned table; column widths
    are computed from the content. *)
let table ?title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with Some s -> max m (String.length s) | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
         row)
  in
  let total = List.fold_left ( + ) (2 * (ncols - 1)) widths in
  (match title with
  | Some t ->
      print_endline "";
      print_endline t;
      print_endline (rule total)
  | None -> ());
  print_endline (line header);
  print_endline (rule total);
  List.iter (fun r -> print_endline (line r)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let pct x = Printf.sprintf "%.0f%%" (100. *. x)
let pct1 x = Printf.sprintf "%.1f%%" (100. *. x)
let int_ n = string_of_int n

(** Per-module isolation overhead — an evaluation extension beyond the
    paper (which benchmarks only e1000): one representative steady-state
    workload per module family, reporting simulated cycles per operation
    under stock and LXFI. *)

type row = {
  mb_module : string;
  mb_op : string;
  mb_stock_cycles : float;
  mb_lxfi_cycles : float;
  mb_overhead : float;  (** lxfi/stock − 1 *)
}

val workloads :
  (string * string * (Lxfi.Config.t -> ops:int -> float)) list

val table : ?ops:int -> unit -> row list

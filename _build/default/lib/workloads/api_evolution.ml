(** Kernel API churn survey — the Figure 10 reproduction.

    The paper ran ctags over twenty kernel releases (2.6.20–2.6.39) and
    counted (a) functions exported from the core kernel and (b)
    function pointers appearing in structs, plus how many of each
    changed since the previous release.  The claim the figure supports
    is that the {e churn} is modest (a few hundred entries per release)
    against steady {e growth} — so an annotation corpus keeps most of
    its value across kernel versions.

    We have no Linux source tree in this environment, so the survey is
    replaced by a generative model seeded with the paper's two anchor
    datapoints (2.6.21: 5,583 exported functions / 272 changed; 3,725
    struct function pointers / 183 changed) and the growth visible in
    the plotted curves (roughly 11,000 and 6,000 by 2.6.39).  Release
    dates are the historical ones.  Per-release jitter is deterministic
    (hash of the version number), so the table is reproducible. *)

type row = {
  version : string;
  released : string;  (** month/year *)
  exported_total : int;
  exported_changed : int;
  fptr_total : int;
  fptr_changed : int;
}

let release_dates =
  [
    (20, "02/07"); (21, "04/07"); (22, "07/07"); (23, "10/07"); (24, "01/08");
    (25, "04/08"); (26, "07/08"); (27, "10/08"); (28, "12/08"); (29, "03/09");
    (30, "06/09"); (31, "09/09"); (32, "12/09"); (33, "02/10"); (34, "05/10");
    (35, "08/10"); (36, "10/10"); (37, "01/11"); (38, "03/11"); (39, "05/11");
  ]

(* Deterministic per-version jitter in [-1, 1). *)
let jitter v salt =
  let h = Hashtbl.hash (v * 7919, salt) land 0xffff in
  (float_of_int h /. 32768.) -. 1.

(* Anchored exponential growth: value at 2.6.21 and a per-release
   rate reproducing the curve's 2.6.39 endpoint. *)
let grow ~anchor ~rate v = float_of_int anchor *. (rate ** float_of_int (v - 21))

let table () : row list =
  List.map
    (fun (v, date) ->
      let exported = grow ~anchor:5583 ~rate:1.039 v in
      let fptrs = grow ~anchor:3725 ~rate:1.027 v in
      (* churn scales weakly with the interface size: a few percent of
         the population is new or changed each release *)
      let exp_changed = (0.045 +. (0.012 *. jitter v 1)) *. exported in
      let fp_changed = (0.047 +. (0.014 *. jitter v 2)) *. fptrs in
      {
        version = Printf.sprintf "2.6.%d" v;
        released = date;
        exported_total = int_of_float exported;
        exported_changed = (if v = 20 then 0 else int_of_float exp_changed);
        fptr_total = int_of_float fptrs;
        fptr_changed = (if v = 20 then 0 else int_of_float fp_changed);
      })
    release_dates

(** Paper anchors for validation: (version, exported_total,
    exported_changed, fptr_total, fptr_changed). *)
let paper_anchor = ("2.6.21", 5583, 272, 3725, 183)

(** Kernel API churn — the Figure 10 reproduction: a deterministic
    generative model standing in for the paper's ctags survey (no Linux
    trees here), anchored at the published 2.6.21 datapoints and the
    curves' endpoints. *)

type row = {
  version : string;
  released : string;
  exported_total : int;
  exported_changed : int;
  fptr_total : int;
  fptr_changed : int;
}

val release_dates : (int * string) list
val table : unit -> row list
(** Twenty releases, 2.6.20–2.6.39; deterministic. *)

val paper_anchor : string * int * int * int * int
(** (version, exported_total, exported_changed, fptr_total,
    fptr_changed) from the paper, for validation. *)

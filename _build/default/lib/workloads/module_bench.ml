(** Per-module isolation overhead — an extension beyond the paper's
    evaluation, which benchmarks only the e1000 driver (§8.4).  Here
    every family of the corpus gets a steady-state workload and we
    report simulated cycles per operation, stock vs. LXFI:

    - dm-crypt: 4 KB encrypted bios through one mapped device;
    - dm-zero: 4 KB zero-fill reads;
    - snd-intel8x0: playback pointer polls (one period fill each);
    - can: raw frame sendmsg through the socket layer;
    - rds: sendmsg/recvmsg round trips.

    The shape to expect mirrors Figure 12's logic: modules whose
    operations carry lots of module-side work per boundary crossing
    (dm-crypt XORs 4 KB per bio) amortize the wrapper cost; chatty
    small-operation modules (can, rds) pay proportionally more. *)

open Kernel_sim
open Kmodules

type row = {
  mb_module : string;
  mb_op : string;
  mb_stock_cycles : float;  (** per operation *)
  mb_lxfi_cycles : float;
  mb_overhead : float;  (** lxfi/stock − 1 *)
}

let measure_cycles sys f ~ops =
  (match Lxfi.Runtime.current_module sys.Ksys.rt with _ -> ());
  Hashtbl.iter
    (fun _ (mi : Lxfi.Runtime.module_info) ->
      Option.iter Mir.Interp.refuel mi.Lxfi.Runtime.mi_ctx)
    sys.Ksys.rt.Lxfi.Runtime.modules;
  let c0 = Kcycles.snapshot sys.Ksys.kst.Kstate.cycles in
  f ();
  let d = Kcycles.since sys.Ksys.kst.Kstate.cycles c0 in
  float_of_int (Kcycles.total d) /. float_of_int ops

let dm_crypt_workload config ~ops =
  let sys = Ksys.boot config in
  let _ = Mod_common.install sys Dm_crypt.spec in
  ignore
    (Result.get_ok
       (Blockdev.dm_create sys.Ksys.blk ~target:"crypt" ~name:"c0" ~len:65536 ~arg:0xfeed));
  let bio = Blockdev.alloc_bio sys.Ksys.blk ~sector:0 ~size:4096 ~rw:1 in
  measure_cycles sys ~ops (fun () ->
      for i = 1 to ops do
        Kmem.write_u64 sys.Ksys.kst.Kstate.mem
          (bio + Ktypes.offset sys.Ksys.kst.Kstate.types "bio" "sector")
          (Int64.of_int i);
        ignore (Result.get_ok (Blockdev.submit_bio sys.Ksys.blk ~name:"c0" bio))
      done)

let dm_zero_workload config ~ops =
  let sys = Ksys.boot config in
  let _ = Mod_common.install sys Dm_zero.spec in
  ignore
    (Result.get_ok
       (Blockdev.dm_create sys.Ksys.blk ~target:"zero" ~name:"z0" ~len:65536 ~arg:0));
  let bio = Blockdev.alloc_bio sys.Ksys.blk ~sector:0 ~size:4096 ~rw:0 in
  measure_cycles sys ~ops (fun () ->
      for _ = 1 to ops do
        ignore (Result.get_ok (Blockdev.submit_bio sys.Ksys.blk ~name:"z0" bio))
      done)

let sound_workload config ~ops =
  let sys = Ksys.boot config in
  ignore
    (Pci.add_device sys.Ksys.pci ~vendor:Snd_intel8x0.vendor ~device:Snd_intel8x0.device
       ~bar_len:64);
  let _ = Mod_common.install sys Snd_intel8x0.spec in
  match sys.Ksys.snd.Sound.cards with
  | [ card ] -> measure_cycles sys ~ops (fun () -> ignore (Sound.playback sys.Ksys.snd card ~polls:ops))
  | _ -> invalid_arg "sound card missing"

let can_workload config ~ops =
  let sys = Ksys.boot config in
  let _ = Mod_common.install sys Can.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_can ~typ:3 in
  ignore (Sockets.sys_bind sys.Ksys.sock ~fd ~addr:0 ~alen:0);
  let u = Kstate.user_alloc sys.Ksys.kst 16 in
  measure_cycles sys ~ops (fun () ->
      for _ = 1 to ops do
        ignore (Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:u ~len:16 ~flags:0)
      done)

let rds_workload config ~ops =
  let sys = Ksys.boot config in
  let _ = Mod_common.install sys Rds.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_rds ~typ:2 in
  let u = Kstate.user_alloc sys.Ksys.kst 64 in
  let out = Kstate.user_alloc sys.Ksys.kst 64 in
  measure_cycles sys ~ops (fun () ->
      for _ = 1 to ops do
        ignore (Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:u ~len:32 ~flags:0);
        ignore (Sockets.sys_recvmsg sys.Ksys.sock ~fd ~buf:out ~len:64 ~flags:0)
      done)

let workloads =
  [
    ("dm_crypt", "4KB encrypted bio", dm_crypt_workload);
    ("dm_zero", "4KB zero-fill read", dm_zero_workload);
    ("snd_intel8x0", "pcm pointer poll", sound_workload);
    ("can", "raw frame sendmsg", can_workload);
    ("rds", "send+recv round trip", rds_workload);
  ]

(** [table ?ops ()] — cycles per operation, stock vs. LXFI, for one
    representative workload per module family. *)
let table ?(ops = 400) () : row list =
  List.map
    (fun (name, op, f) ->
      let stock = f Lxfi.Config.stock ~ops in
      let lxfi = f Lxfi.Config.lxfi ~ops in
      {
        mb_module = name;
        mb_op = op;
        mb_stock_cycles = stock;
        mb_lxfi_cycles = lxfi;
        mb_overhead = (lxfi /. Float.max 1. stock) -. 1.0;
      })
    workloads

(** MIR — the module intermediate representation.

    Kernel modules in this reproduction are written in MIR, a small
    C-like IR that plays the role the compiler IR plays for the paper's
    clang rewriting plugin (§4.2): it is the program form the LXFI
    rewriter instruments (write guards, indirect-call guards, wrapper
    redirection, entry/exit hooks) and the form an interpreter executes
    against the simulated kernel address space.

    Deliberate properties shared with compiled C kernel code:

    - arithmetic wraps at a declared width (32/64), so the CAN BCM
      integer-overflow bug can be written exactly as in C;
    - locals are registers (unaddressable), but [Alloca] carves
      addressable buffers from the module stack — the target of the MD5
      microbenchmark's guard-elision optimization;
    - function pointers are first-class integers ([Funcaddr]) that
      module code stores into memory, where they can be corrupted;
    - calls are direct (intra-module), external (imported kernel
      functions, which LXFI forces through annotated wrappers), or
      indirect (through a computed address, which LXFI guards). *)

type width = W8 | W16 | W32 | W64

let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type binop =
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Band
  | Bor
  | Bxor
  | Shl
  | Lshr
  | Eq
  | Ne
  | Lt  (** signed < *)
  | Le
  | Gt
  | Ge
  | Ult  (** unsigned < *)

type callee =
  | Direct of string  (** call to a function in the same module *)
  | Ext of string  (** call to an imported kernel function *)
  | Indirect of expr  (** call through a computed address *)

and expr =
  | Const of int64
  | Var of string  (** local or parameter *)
  | Glob of string  (** address of a module global *)
  | Funcaddr of string  (** address of a module function *)
  | Extaddr of string  (** address of an imported function's wrapper *)
  | Load of width * expr
  | Binop of binop * width * expr * expr
  | Call of callee * expr list

type guard =
  | Gwrite of width * expr  (** write-capability check for [expr] *)
  | Gindcall of expr  (** call-capability check for target [expr] *)

type stmt =
  | Let of string * expr  (** bind or rebind a local *)
  | Alloca of string * int  (** bind local to a fresh [n]-byte stack buffer *)
  | Store of width * expr * expr  (** [Store (w, addr, value)] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Expr of expr  (** evaluate for effect *)
  | Return of expr
  | Guard of guard  (** inserted by the LXFI rewriter *)

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  export : string option;
      (** slot-type name if this function's address is installed in a
          kernel-visible function-pointer slot (drives annotation
          propagation, §4.2) *)
}

(** Initialised datum inside a global. *)
type ginit =
  | Iword of int * width * int64  (** offset, width, value *)
  | Ifunc of int * string  (** offset, module function name *)
  | Iext of int * string  (** offset, imported function name (wrapper address) *)

type section = Data | Rodata | Bss

type glob = {
  gname : string;
  gsize : int;
  gsection : section;
  ginit : ginit list;
  gstruct : string option;
      (** struct type of this global if it instantiates a known kernel
          struct (lets the loader find typed function-pointer slots) *)
}

type prog = {
  pname : string;  (** module name *)
  funcs : func list;
  globals : glob list;
  imports : string list;  (** kernel functions in the symbol table *)
}

let find_func prog name = List.find_opt (fun f -> f.fname = name) prog.funcs

let find_global prog name = List.find_opt (fun g -> g.gname = name) prog.globals

(** Structural size of a program or function in IR nodes — the "code
    size" metric used by the Figure 11 reproduction (Δ code size under
    instrumentation). *)
let rec expr_size = function
  | Const _ | Var _ | Glob _ | Funcaddr _ | Extaddr _ -> 1
  | Load (_, e) -> 1 + expr_size e
  | Binop (_, _, a, b) -> 1 + expr_size a + expr_size b
  | Call (c, args) ->
      let csz = match c with Indirect e -> 1 + expr_size e | _ -> 1 in
      csz + List.fold_left (fun acc e -> acc + expr_size e) 0 args

let rec stmt_size = function
  | Let (_, e) -> 1 + expr_size e
  | Alloca _ -> 1
  | Store (_, a, v) -> 1 + expr_size a + expr_size v
  | If (c, t, e) -> 1 + expr_size c + stmts_size t + stmts_size e
  | While (c, b) -> 1 + expr_size c + stmts_size b
  | Expr e -> expr_size e
  | Return e -> 1 + expr_size e
  | Guard (Gwrite (_, e)) -> 2 + expr_size e
  | Guard (Gindcall e) -> 2 + expr_size e

and stmts_size l = List.fold_left (fun acc s -> acc + stmt_size s) 0 l

let func_size f = 2 + stmts_size f.body

let prog_size p = List.fold_left (fun acc f -> acc + func_size f) 0 p.funcs

(** Pretty-printer for MIR.  The output is the exact textual language
    {!Parser} reads back (lossless round trip: globals with
    initialisers, export slot types, guards, width-suffixed
    operators). *)

val pp_width : Format.formatter -> Ast.width -> unit
val binop_symbol : Ast.binop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_block : indent:int -> Format.formatter -> Ast.stmt list -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_section : Format.formatter -> Ast.section -> unit
val pp_glob : Format.formatter -> Ast.glob -> unit
val pp_prog : Format.formatter -> Ast.prog -> unit
val to_string : Ast.prog -> string

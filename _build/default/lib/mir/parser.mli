(** Parser for MIR's textual form — exactly the language {!Printer}
    emits, so [parse (Printer.to_string p) = p] (qcheck-pinned).  Lets
    modules live in [.mir] files ([lxfi_sim runmod]).

    The syntax in brief: [module NAME], an [imports:] list, [global
    name[size] in .data|.rodata|.bss] with optional [: struct s] and
    [{ +off = u64 N; +off = func f; +off = extern e; }] initialisers,
    and [func name(params) exports slot { ... }] bodies of C-like
    statements where loads/stores are explicit ([*u64(addr)]), external
    calls are [ext:name(...)], indirect calls are [[target](...)], and
    [/* ... */] comments are allowed. *)

exception Parse_error of { line : int; msg : string }

val parse : string -> Ast.prog
(** Raises {!Parse_error}. *)

val parse_result : string -> (Ast.prog, string) result

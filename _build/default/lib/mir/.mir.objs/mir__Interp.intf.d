lib/mir/interp.mli: Ast Kernel_sim Kstate

lib/mir/builder.mli: Ast

lib/mir/printer.mli: Ast Format

lib/mir/ast.mli:

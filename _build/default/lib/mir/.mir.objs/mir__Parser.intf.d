lib/mir/parser.mli: Ast

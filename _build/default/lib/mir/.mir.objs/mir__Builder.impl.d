lib/mir/builder.ml: Ast Int64

lib/mir/ast.ml: List

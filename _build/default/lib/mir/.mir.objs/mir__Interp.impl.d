lib/mir/interp.ml: Ast Hashtbl Int64 Kcycles Kernel_sim Kmem Kstate List Printf

lib/mir/printer.ml: Ast Fmt String

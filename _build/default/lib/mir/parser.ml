(** Parser for MIR's textual form — the exact language {!Printer}
    emits, so [parse (Printer.to_string p) = p] (a qcheck-pinned
    round trip).  This is what lets modules live in [.mir] files and be
    loaded by the CLI ([lxfi_sim runmod]) instead of being built with
    the OCaml EDSL. *)

open Ast

exception Parse_error of { line : int; msg : string }

let fail ~line fmt =
  Format.kasprintf (fun msg -> raise (Parse_error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string  (** also sections (".data") and dotted/colon names *)
  | Tint of int64
  | Tpunct of string  (** ( ) { } [ ] , ; = and operators *)

type lexed = { tok : token; at : int (* line *) }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = ':'

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let emit tok = out := { tok; at = !line } :: !out in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '*' then begin
      (* comment: skip to the closing marker *)
      let j = ref (!i + 2) in
      while
        !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = '/')
      do
        if src.[!j] = '\n' then incr line;
        incr j
      done;
      if !j + 1 >= n then fail ~line:!line "unterminated comment";
      i := !j + 2
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && ((src.[!j] >= '0' && src.[!j] <= '9') || src.[!j] = 'x'
                       || (src.[!j] >= 'a' && src.[!j] <= 'f')
                       || (src.[!j] >= 'A' && src.[!j] <= 'F'))
      do incr j done;
      let text = String.sub src !i (!j - !i) in
      (match Int64.of_string_opt text with
      | Some v -> emit (Tint v)
      | None -> fail ~line:!line "bad number %S" text);
      i := !j
    end
    else if (c = '-' || c = '+') && (match peek 1 with Some d -> d >= '0' && d <= '9' | None -> false)
    then begin
      let sign = if c = '-' then -1L else 1L in
      let j = ref (!i + 1) in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do incr j done;
      let text = String.sub src (!i + 1) (!j - !i - 1) in
      (match Int64.of_string_opt text with
      | Some v -> emit (Tint (Int64.mul sign v))
      | None -> fail ~line:!line "bad number %S" text);
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      emit (Tident (String.sub src !i (!j - !i)));
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "<u" | "<<" | ">>" | "&&" ->
          emit (Tpunct two);
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | '=' | '+' | '-' | '*'
          | '/' | '%' | '&' | '|' | '^' | '<' | '>' | ':' ->
              emit (Tpunct (String.make 1 c));
              incr i
          | _ -> fail ~line:!line "unexpected character %C" c)
    end
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : lexed list; mutable line : int }

let peek st = match st.toks with [] -> None | l :: _ -> Some l.tok

let advance st =
  match st.toks with
  | [] -> fail ~line:st.line "unexpected end of input"
  | l :: r ->
      st.line <- l.at;
      st.toks <- r;
      l.tok

let expect_punct st p =
  match advance st with
  | Tpunct q when q = p -> ()
  | t ->
      fail ~line:st.line "expected %S, found %s" p
        (match t with
        | Tident s -> s
        | Tint v -> Int64.to_string v
        | Tpunct q -> q)

let ident st =
  match advance st with
  | Tident s -> s
  | _ -> fail ~line:st.line "expected identifier"

let keyword st kw =
  let s = ident st in
  if s <> kw then fail ~line:st.line "expected %S, found %S" kw s

let int_ st =
  match advance st with
  | Tint v -> v
  | _ -> fail ~line:st.line "expected number"

let width_of_name st = function
  | "u8" -> W8
  | "u16" -> W16
  | "u32" -> W32
  | "u64" -> W64
  | s -> fail ~line:st.line "expected width (u8/u16/u32/u64), found %S" s

let binop_of_symbol st = function
  | "+" -> Add
  | "-" -> Sub
  | "*" -> Mul
  | "/" -> Udiv
  | "%" -> Urem
  | "&" -> Band
  | "|" -> Bor
  | "^" -> Bxor
  | "<<" -> Shl
  | ">>" -> Lshr
  | "==" -> Eq
  | "!=" -> Ne
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | "<u" -> Ult
  | s -> fail ~line:st.line "expected operator, found %S" s

(* Operators carry a dot-separated width suffix for non-64-bit widths:
   "+" is 64-bit, "*.u32" wraps at 32 (the dot keeps "<.u16" distinct
   from the unsigned comparison "<u").  The suffix lexes as the ident
   ".u16" because '.' starts identifiers. *)
let parse_op st =
  match advance st with
  | Tpunct p ->
      let op = binop_of_symbol st p in
      let w =
        match peek st with
        | Some (Tident (".u8" | ".u16" | ".u32" | ".u64" as wn)) ->
            ignore (advance st);
            width_of_name st (String.sub wn 1 (String.length wn - 1))
        | _ -> W64
      in
      (op, w)
  | _ -> fail ~line:st.line "expected operator"

let ext_prefix = "ext:"

let strip_ext name =
  if String.length name > 4 && String.sub name 0 4 = ext_prefix then
    Some (String.sub name 4 (String.length name - 4))
  else None

let rec parse_expr st : expr =
  match advance st with
  | Tint v -> Const v
  | Tpunct "&" -> Glob (ident st)
  | Tpunct "&&" -> (
      let name = ident st in
      match strip_ext name with Some e -> Extaddr e | None -> Funcaddr name)
  | Tpunct "*" ->
      (* load: *width(expr) *)
      let w = width_of_name st (ident st) in
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      Load (w, e)
  | Tpunct "[" ->
      (* indirect call: [target](args) *)
      let t = parse_expr st in
      expect_punct st "]";
      expect_punct st "(";
      Call (Indirect t, parse_args st)
  | Tpunct "(" ->
      (* parenthesized binop: (a op b) *)
      let a = parse_expr st in
      let op, w = parse_op st in
      let b = parse_expr st in
      expect_punct st ")";
      Binop (op, w, a, b)
  | Tident name -> (
      (* variable, or direct/external call *)
      match peek st with
      | Some (Tpunct "(") ->
          ignore (advance st);
          let args = parse_args st in
          (match strip_ext name with
          | Some e -> Call (Ext e, args)
          | None -> Call (Direct name, args))
      | _ -> Var name)
  | Tpunct p -> fail ~line:st.line "unexpected %S in expression" p

and parse_args st : expr list =
  match peek st with
  | Some (Tpunct ")") ->
      ignore (advance st);
      []
  | _ ->
      let rec go acc =
        let e = parse_expr st in
        match advance st with
        | Tpunct "," -> go (e :: acc)
        | Tpunct ")" -> List.rev (e :: acc)
        | _ -> fail ~line:st.line "expected ',' or ')' in arguments"
      in
      go []

let rec parse_stmt st : stmt =
  match peek st with
  | Some (Tident "return") ->
      ignore (advance st);
      let e = parse_expr st in
      expect_punct st ";";
      Return e
  | Some (Tident "if") ->
      ignore (advance st);
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let t = parse_block st in
      let e =
        match peek st with
        | Some (Tident "else") ->
            ignore (advance st);
            parse_block st
        | _ -> []
      in
      If (c, t, e)
  | Some (Tident "while") ->
      ignore (advance st);
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      While (c, parse_block st)
  | Some (Tident "lxfi_guard_write") ->
      ignore (advance st);
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ",";
      let w = width_of_name st (ident st) in
      expect_punct st ")";
      expect_punct st ";";
      Guard (Gwrite (w, e))
  | Some (Tident "lxfi_guard_indcall") ->
      ignore (advance st);
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      Guard (Gindcall e)
  | Some (Tpunct "*") -> (
      (* either a store "*w(addr) = v;" or a bare load expression
         statement "*w(addr);" *)
      ignore (advance st);
      let w = width_of_name st (ident st) in
      expect_punct st "(";
      let a = parse_expr st in
      expect_punct st ")";
      match advance st with
      | Tpunct "=" ->
          let v = parse_expr st in
          expect_punct st ";";
          Store (w, a, v)
      | Tpunct ";" -> Expr (Load (w, a))
      | _ -> fail ~line:st.line "expected '=' or ';' after load/store address")
  | Some (Tident name) -> (
      ignore (advance st);
      match peek st with
      | Some (Tpunct "=") -> (
          ignore (advance st);
          (* alloca or plain binding *)
          match peek st with
          | Some (Tident "alloca") ->
              ignore (advance st);
              expect_punct st "(";
              let size = Int64.to_int (int_ st) in
              expect_punct st ")";
              expect_punct st ";";
              Alloca (name, size)
          | _ ->
              let e = parse_expr st in
              expect_punct st ";";
              Let (name, e))
      | Some (Tpunct "(") ->
          ignore (advance st);
          let args = parse_args st in
          expect_punct st ";";
          Expr
            (match strip_ext name with
            | Some ext -> Call (Ext ext, args)
            | None -> Call (Direct name, args))
      | _ ->
          expect_punct st ";";
          Expr (Var name))
  | Some _ ->
      (* any other expression statement (&&f; loads; binops; ...) *)
      let e = parse_expr st in
      expect_punct st ";";
      Expr e
  | None -> fail ~line:st.line "unexpected end of input in statement"

and parse_block st : stmt list =
  expect_punct st "{";
  let rec go acc =
    match peek st with
    | Some (Tpunct "}") ->
        ignore (advance st);
        List.rev acc
    | Some _ -> go (parse_stmt st :: acc)
    | None -> fail ~line:st.line "unterminated block"
  in
  go []

let parse_section st =
  match ident st with
  | ".data" -> Data
  | ".rodata" -> Rodata
  | ".bss" -> Bss
  | s -> fail ~line:st.line "expected section, found %S" s

let parse_global st : glob =
  (* after the leading "global" keyword *)
  let name = ident st in
  expect_punct st "[";
  let size = Int64.to_int (int_ st) in
  expect_punct st "]";
  keyword st "in";
  let section = parse_section st in
  let struct_ =
    match peek st with
    | Some (Tpunct ":") ->
        ignore (advance st);
        keyword st "struct";
        Some (ident st)
    | _ -> None
  in
  let ginit =
    match peek st with
    | Some (Tpunct "{") ->
        ignore (advance st);
        let rec go acc =
          match peek st with
          | Some (Tpunct "}") ->
              ignore (advance st);
              List.rev acc
          | _ ->
              let off = Int64.to_int (int_ st) in
              expect_punct st "=";
              let init =
                match advance st with
                | Tident "func" -> Ifunc (off, ident st)
                | Tident "extern" -> Iext (off, ident st)
                | Tident wn ->
                    let w = width_of_name st wn in
                    Iword (off, w, int_ st)
                | _ -> fail ~line:st.line "expected initialiser"
              in
              expect_punct st ";";
              go (init :: acc)
        in
        go []
    | _ -> []
  in
  { gname = name; gsize = size; gsection = section; ginit; gstruct = struct_ }

let parse_func st : func =
  (* after the leading "func" keyword *)
  let name = ident st in
  expect_punct st "(";
  let params =
    match peek st with
    | Some (Tpunct ")") ->
        ignore (advance st);
        []
    | _ ->
        let rec go acc =
          let p = ident st in
          match advance st with
          | Tpunct "," -> go (p :: acc)
          | Tpunct ")" -> List.rev (p :: acc)
          | _ -> fail ~line:st.line "expected ',' or ')' in parameters"
        in
        go []
  in
  let export =
    match peek st with
    | Some (Tident "exports") ->
        ignore (advance st);
        Some (ident st)
    | _ -> None
  in
  let body = parse_block st in
  { fname = name; params; body; export }

(** [parse src] — a whole module. *)
let parse (src : string) : prog =
  let st = { toks = tokenize src; line = 1 } in
  keyword st "module";
  let pname = ident st in
  keyword st "imports:";
  let imports =
    match peek st with
    | Some (Tident ("global" | "func")) | None -> []
    | _ ->
        let rec go acc =
          let name = ident st in
          match peek st with
          | Some (Tpunct ",") ->
              ignore (advance st);
              go (name :: acc)
          | _ -> List.rev (name :: acc)
        in
        go []
  in
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match peek st with
    | None -> ()
    | Some (Tident "global") ->
        ignore (advance st);
        globals := parse_global st :: !globals;
        go ()
    | Some (Tident "func") ->
        ignore (advance st);
        funcs := parse_func st :: !funcs;
        go ()
    | Some _ -> fail ~line:st.line "expected 'global' or 'func'"
  in
  go ();
  { pname; imports; globals = List.rev !globals; funcs = List.rev !funcs }

let parse_result src =
  try Ok (parse src) with Parse_error { line; msg } ->
    Error (Printf.sprintf "line %d: %s" line msg)

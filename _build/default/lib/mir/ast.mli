(** MIR — the module intermediate representation: the program form the
    LXFI rewriter instruments and the interpreter executes, standing in
    for the compiler IR the paper's clang plugin rewrites (§4.2).

    Deliberately C-like where it matters: arithmetic wraps at a
    declared width (the CAN BCM overflow is expressible verbatim),
    locals are registers but [Alloca] carves addressable stack buffers
    (the target of safe-store elision), function pointers are plain
    integers module code stores into corruptible memory, and calls are
    direct (intra-module), external (imported kernel functions, forced
    through annotated wrappers) or indirect (guarded). *)

type width = W8 | W16 | W32 | W64

val bytes_of_width : width -> int

type binop =
  | Add
  | Sub
  | Mul
  | Udiv  (** unsigned; division by zero is a kernel oops *)
  | Urem
  | Band
  | Bor
  | Bxor
  | Shl
  | Lshr  (** logical shift right *)
  | Eq
  | Ne
  | Lt  (** signed comparison *)
  | Le
  | Gt
  | Ge
  | Ult  (** unsigned < *)

type callee =
  | Direct of string  (** function in the same module *)
  | Ext of string  (** imported kernel function (wrapper-routed) *)
  | Indirect of expr  (** through a computed address (guarded) *)

and expr =
  | Const of int64
  | Var of string
  | Glob of string  (** address of a module global *)
  | Funcaddr of string  (** address of a module function *)
  | Extaddr of string  (** address of an import's wrapper *)
  | Load of width * expr
  | Binop of binop * width * expr * expr
  | Call of callee * expr list

type guard =
  | Gwrite of width * expr  (** write-capability check (rewriter-inserted) *)
  | Gindcall of expr  (** call-capability check (rewriter-inserted) *)

type stmt =
  | Let of string * expr  (** bind or rebind a local *)
  | Alloca of string * int  (** bind local to a fresh stack buffer *)
  | Store of width * expr * expr  (** [Store (w, addr, value)] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Expr of expr
  | Return of expr
  | Guard of guard

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  export : string option;
      (** slot-type name when this function may be installed in a
          kernel-visible function-pointer slot (annotation propagation,
          §4.2) *)
}

type ginit =
  | Iword of int * width * int64  (** offset, width, value *)
  | Ifunc of int * string  (** offset, module function (fp initialiser) *)
  | Iext of int * string  (** offset, imported symbol's address *)

type section = Data | Rodata | Bss

type glob = {
  gname : string;
  gsize : int;
  gsection : section;
  ginit : ginit list;
  gstruct : string option;
      (** kernel struct this global instantiates, if any — lets the
          loader find its typed function-pointer slots *)
}

type prog = {
  pname : string;
  funcs : func list;
  globals : glob list;
  imports : string list;
}

val find_func : prog -> string -> func option
val find_global : prog -> string -> glob option

(** Structural code-size metric in IR nodes (the Figure 11 Δcode
    basis). *)

val expr_size : expr -> int
val stmt_size : stmt -> int
val stmts_size : stmt list -> int
val func_size : func -> int
val prog_size : prog -> int

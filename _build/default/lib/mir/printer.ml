(** Pretty-printer for MIR programs (diagnostics, tests, and the
    documentation examples). *)

open Ast

let pp_width ppf = function
  | W8 -> Fmt.string ppf "u8"
  | W16 -> Fmt.string ppf "u16"
  | W32 -> Fmt.string ppf "u32"
  | W64 -> Fmt.string ppf "u64"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Udiv -> "/"
  | Urem -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Lshr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Ult -> "<u"

let rec pp_expr ppf = function
  | Const n -> Fmt.pf ppf "%Ld" n
  | Var x -> Fmt.string ppf x
  | Glob g -> Fmt.pf ppf "&%s" g
  | Funcaddr f -> Fmt.pf ppf "&&%s" f
  | Extaddr f -> Fmt.pf ppf "&&ext:%s" f
  | Load (w, e) -> Fmt.pf ppf "*%a(%a)" pp_width w pp_expr e
  | Binop (op, W64, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Binop (op, w, a, b) ->
      Fmt.pf ppf "(%a %s.%a %a)" pp_expr a (binop_symbol op) pp_width w pp_expr b
  | Call (Direct f, args) -> Fmt.pf ppf "%s(%a)" f pp_args args
  | Call (Ext f, args) -> Fmt.pf ppf "ext:%s(%a)" f pp_args args
  | Call (Indirect t, args) -> Fmt.pf ppf "[%a](%a)" pp_expr t pp_args args

and pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_expr) ppf args

let rec pp_stmt ~indent ppf s =
  let pad = String.make indent ' ' in
  match s with
  | Let (x, e) -> Fmt.pf ppf "%s%s = %a;" pad x pp_expr e
  | Alloca (x, n) -> Fmt.pf ppf "%s%s = alloca(%d);" pad x n
  | Store (w, a, v) -> Fmt.pf ppf "%s*%a(%a) = %a;" pad pp_width w pp_expr a pp_expr v
  | If (c, t, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c (pp_block ~indent:(indent + 2)) t pad
  | If (c, t, e) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
        (pp_block ~indent:(indent + 2))
        t pad
        (pp_block ~indent:(indent + 2))
        e pad
  | While (c, b) ->
      Fmt.pf ppf "%swhile (%a) {@\n%a@\n%s}" pad pp_expr c (pp_block ~indent:(indent + 2)) b pad
  | Expr e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | Return e -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Guard (Gwrite (w, e)) -> Fmt.pf ppf "%slxfi_guard_write(%a, %a);" pad pp_expr e pp_width w
  | Guard (Gindcall e) -> Fmt.pf ppf "%slxfi_guard_indcall(%a);" pad pp_expr e

and pp_block ~indent ppf stmts =
  Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent)) ppf stmts

let pp_func ppf f =
  let export = match f.export with None -> "" | Some t -> " exports " ^ t in
  Fmt.pf ppf "func %s(%s)%s {@\n%a@\n}" f.fname (String.concat ", " f.params) export
    (pp_block ~indent:2) f.body

let pp_section ppf = function
  | Data -> Fmt.string ppf ".data"
  | Rodata -> Fmt.string ppf ".rodata"
  | Bss -> Fmt.string ppf ".bss"

let pp_init ppf = function
  | Iword (off, w, v) -> Fmt.pf ppf "  +%d = %a %Ld;" off pp_width w v
  | Ifunc (off, f) -> Fmt.pf ppf "  +%d = func %s;" off f
  | Iext (off, f) -> Fmt.pf ppf "  +%d = extern %s;" off f

let pp_glob ppf g =
  Fmt.pf ppf "global %s[%d] in %a%s" g.gname g.gsize pp_section g.gsection
    (match g.gstruct with None -> "" | Some s -> " : struct " ^ s);
  match g.ginit with
  | [] -> ()
  | inits -> Fmt.pf ppf " {@\n%a@\n}" Fmt.(list ~sep:(any "@\n") pp_init) inits

let pp_prog ppf p =
  Fmt.pf ppf "module %s@\nimports: %s@\n@\n%a@\n@\n%a@\n" p.pname
    (String.concat ", " p.imports)
    Fmt.(list ~sep:(any "@\n") pp_glob)
    p.globals
    Fmt.(list ~sep:(any "@\n@\n") pp_func)
    p.funcs

let to_string p = Fmt.str "%a" pp_prog p

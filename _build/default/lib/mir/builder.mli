(** EDSL for writing MIR module code in OCaml (the module corpus in
    lib/kmodules is written with these combinators).  Conventions:
    [i]/[ii] build constants, [v] names locals, arithmetic defaults to
    64-bit with [add32]/[mul32] wrapping at 32 bits. *)

open Ast

(** {1 Atoms} *)

val i : int64 -> expr
val ii : int -> expr
val v : string -> expr
val glob : string -> expr
val fn : string -> expr
(** Address of a module function. *)

val ext : string -> expr
(** Address of an imported function's wrapper. *)

(** {1 Arithmetic (64-bit unless noted)} *)

val bin : binop -> width -> expr -> expr -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( &: ) : expr -> expr -> expr
val ( |: ) : expr -> expr -> expr
val ( ^: ) : expr -> expr -> expr
val ( <<: ) : expr -> expr -> expr
val ( >>: ) : expr -> expr -> expr
val ( ==: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr

val add32 : expr -> expr -> expr
(** 32-bit wrapping addition (C's u32 [+]). *)

val mul32 : expr -> expr -> expr
(** 32-bit wrapping multiplication — the CAN BCM overflow operator. *)

(** {1 Memory} *)

val load : width -> expr -> expr
val load64 : expr -> expr
val load32 : expr -> expr
val load8 : expr -> expr
val store : width -> expr -> expr -> stmt
val store64 : expr -> expr -> stmt
val store32 : expr -> expr -> stmt
val store8 : expr -> expr -> stmt

(** {1 Calls} *)

val call : string -> expr list -> expr
(** Intra-module direct call. *)

val call_ext : string -> expr list -> expr
(** Call to an imported kernel function (wrapper-routed). *)

val call_ind : expr -> expr list -> expr
(** Indirect call through a computed address (will be guarded). *)

(** {1 Statements} *)

val let_ : string -> expr -> stmt
val alloca : string -> int -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val when_ : expr -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val expr : expr -> stmt
val ret : expr -> stmt
val ret0 : stmt

val for_ : string -> from:expr -> below:expr -> stmt list -> stmt list
(** Counted loop over a named induction variable. *)

(** {1 Definitions} *)

val func : ?export:string -> string -> string list -> stmt list -> func

val global :
  ?section:section -> ?struct_:string -> ?init:ginit list -> string -> int -> glob

val init_word : ?w:width -> int -> int64 -> ginit
val init_int : ?w:width -> int -> int -> ginit
val init_func : int -> string -> ginit
val init_ext : int -> string -> ginit

val prog :
  string -> imports:string list -> globals:glob list -> funcs:func list -> prog

(** A small EDSL for writing MIR module code readably.

    The ten kernel modules of the corpus (lib/kmodules) are written with
    these combinators; the result is plain {!Ast} data that the LXFI
    rewriter instruments.  Conventions: [i n] is a 64-bit constant, [v]
    a local, arithmetic defaults to 64-bit with [_32]-suffixed variants
    wrapping at 32 bits (used by the CAN BCM overflow). *)

open Ast

let i n = Const n
let ii n = Const (Int64.of_int n)
let v name = Var name
let glob name = Glob name
let fn name = Funcaddr name
let ext name = Extaddr name

(* Arithmetic *)
let bin op w a b = Binop (op, w, a, b)
let ( +: ) a b = bin Add W64 a b
let ( -: ) a b = bin Sub W64 a b
let ( *: ) a b = bin Mul W64 a b
let ( /: ) a b = bin Udiv W64 a b
let ( %: ) a b = bin Urem W64 a b
let ( &: ) a b = bin Band W64 a b
let ( |: ) a b = bin Bor W64 a b
let ( ^: ) a b = bin Bxor W64 a b
let ( <<: ) a b = bin Shl W64 a b
let ( >>: ) a b = bin Lshr W64 a b
let ( ==: ) a b = bin Eq W64 a b
let ( <>: ) a b = bin Ne W64 a b
let ( <: ) a b = bin Lt W64 a b
let ( <=: ) a b = bin Le W64 a b
let ( >: ) a b = bin Gt W64 a b
let ( >=: ) a b = bin Ge W64 a b

(* 32-bit wrapping variants (C's [u32] arithmetic). *)
let add32 a b = bin Add W32 a b
let mul32 a b = bin Mul W32 a b

(* Memory *)
let load w a = Load (w, a)
let load64 a = Load (W64, a)
let load32 a = Load (W32, a)
let load8 a = Load (W8, a)
let store w a x = Store (w, a, x)
let store64 a x = Store (W64, a, x)
let store32 a x = Store (W32, a, x)
let store8 a x = Store (W8, a, x)

(* Calls *)
let call name args = Call (Direct name, args)
let call_ext name args = Call (Ext name, args)
let call_ind target args = Call (Indirect target, args)

(* Statements *)
let let_ name e = Let (name, e)
let alloca name n = Alloca (name, n)
let if_ c t e = If (c, t, e)
let when_ c t = If (c, t, [])
let while_ c b = While (c, b)
let expr e = Expr e
let ret e = Return e
let ret0 = Return (Const 0L)

(** [for_ name ~from ~below body] — counted loop over [name]. *)
let for_ name ~from ~below body =
  [
    let_ name from;
    while_ (v name <: below) (body @ [ let_ name (v name +: ii 1) ]);
  ]

(* Definitions *)
let func ?export name params body = { fname = name; params; body; export }

let global ?(section = Data) ?struct_ ?(init = []) name size =
  { gname = name; gsize = size; gsection = section; ginit = init; gstruct = struct_ }

(** Global initialiser helpers. *)
let init_word ?(w = W64) off value = Iword (off, w, value)

let init_int ?(w = W64) off value = Iword (off, w, Int64.of_int value)
let init_func off fname = Ifunc (off, fname)
let init_ext off iname = Iext (off, iname)

let prog name ~imports ~globals ~funcs =
  { pname = name; funcs; globals; imports }

(** The Econet protocol module, carrying CVE-2010-3849/3850: a crafted
    flags value drives sendmsg down the unchecked AUN path into a NULL
    dereference — the trigger the published exploit combines with the
    do_exit bug (CVE-2010-4258). *)

val family : int
val crafted_flags : int
(** msg_flags value that takes the vulnerable path. *)

val make : Ksys.t -> Mir.Ast.prog
val spec : Mod_common.spec

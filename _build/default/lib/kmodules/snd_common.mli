(** Shared builder for the two PCI sound drivers: probe creates the
    card (WRITE + DMA + REF via the snd_card_caps iterator), claims the
    codec's I/O port (REF io_port — Guideline 3), installs the pcm ops
    table, and playback fills the DMA area from the pointer callback. *)

val p_pcidev : int
val p_card : int
val p_pos : int
val p_periods : int
val p_port : int
val priv_size : int

val make :
  Ksys.t ->
  name:string ->
  vendor:int ->
  device:int ->
  dma_bytes:int ->
  fill_words:int ->
  Mir.Ast.prog

val slot_types : string list

(** snd-intel8x0: Intel AC'97 audio controller driver (PCI 8086:2415). *)

let vendor = 0x8086
let device = 0x2415

let make sys =
  Snd_common.make sys ~name:"snd_intel8x0" ~vendor ~device ~dma_bytes:4096
    ~fill_words:64

let spec : Mod_common.spec =
  {
    Mod_common.name = "snd_intel8x0";
    category = "sound device driver";
    make;
    init = Mod_common.run_module_init;
    slot_types = Snd_common.slot_types;
  }

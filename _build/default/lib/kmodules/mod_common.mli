(** Shared infrastructure for the ten-module corpus: each module is a
    [spec] (program constructor + insmod-time initialisation + the slot
    types it implements, for the Figure 9 accounting); [install] runs
    the full load path. *)

type handle = {
  spec_name : string;
  mi : Lxfi.Runtime.module_info;
  report : Lxfi.Rewriter.report;
}

type spec = {
  name : string;
  category : string;  (** Figure 9 grouping *)
  make : Ksys.t -> Mir.Ast.prog;
  init : Ksys.t -> Lxfi.Runtime.module_info -> unit;
  slot_types : string list;
      (** function-pointer slot types this module implements *)
}

val run_module_init : Ksys.t -> Lxfi.Runtime.module_info -> unit
(** Default [init]: run the module's [module_init] function. *)

val install : Ksys.t -> spec -> handle
(** make → load → init. *)

val gaddr : Lxfi.Runtime.module_info -> string -> int
(** Address of a module global after load. *)

val faddr : Lxfi.Runtime.module_info -> string -> int

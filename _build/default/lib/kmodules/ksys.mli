(** System assembly: boot the simulated kernel, create every subsystem,
    start the LXFI runtime, and register the annotated kernel API —
    the OCaml analogue of the paper's annotation corpus (slot types,
    kernel exports, capability iterators, all in the Figure 2
    language). *)

open Kernel_sim

type t = {
  kst : Kstate.t;
  rt : Lxfi.Runtime.t;
  net : Netdev.t;
  pci : Pci.t;
  sock : Sockets.t;
  blk : Blockdev.t;
  snd : Sound.t;
  shm : Shm.t;
  irq : Irqchip.t;
  mutable nics : (int * Nic.t) list;  (** pci_dev address -> NIC model *)
}

val types : t -> Ktypes.t
val mem : t -> Kmem.t
val off : t -> string -> string -> int
(** [off t struct field] — field offset shortcut for module builders. *)

val sizeof : t -> string -> int

val boot : Lxfi.Config.t -> t
(** Boot everything: kernel state, struct layouts, subsystems, the LXFI
    runtime with the full annotated API registered and the kernel
    indirect-call checker installed. *)

val add_nic : t -> vendor:int -> device:int -> int * Nic.t
(** Plug in a NIC; returns its pci_dev address and hardware model. *)

val nic_of : t -> int -> Nic.t

val load : t -> Mir.Ast.prog -> Lxfi.Runtime.module_info * Lxfi.Rewriter.report
(** Rewrite + load a module under the booted runtime. *)

val as_user : t -> ?comm:string -> (Kernel_sim.Task.t -> 'a) -> 'a * bool
(** Run an attack program as a fresh unprivileged task; returns its
    result and whether it ended up root (the exploit-success
    criterion). *)

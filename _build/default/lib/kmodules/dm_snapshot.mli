(** dm-snapshot: copy-on-write target with a per-device exception
    table; the first write to each chunk preserves the original into a
    COW block. *)

val chunks : int
val chunk_size : int
val make : Ksys.t -> Mir.Ast.prog
val init : Ksys.t -> Lxfi.Runtime.module_info -> unit
val spec : Mod_common.spec

(** dm-zero: the smallest module of the corpus — reads return zeroes,
    writes are discarded. *)

val make : Ksys.t -> Mir.Ast.prog
val init : Ksys.t -> Lxfi.Runtime.module_info -> unit
val spec : Mod_common.spec

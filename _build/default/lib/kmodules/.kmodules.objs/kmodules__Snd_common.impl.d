lib/kmodules/snd_common.ml: Ksys Mir

lib/kmodules/can.mli: Ksys Mir Mod_common

lib/kmodules/dm_crypt.ml: Kernel_sim Ksys Mir Mod_common

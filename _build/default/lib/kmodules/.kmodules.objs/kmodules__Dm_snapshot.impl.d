lib/kmodules/dm_snapshot.ml: Kernel_sim Ksys Mir Mod_common

lib/kmodules/e1000.ml: Kernel_sim Ksys Mir Mod_common

lib/kmodules/snd_ens1370.ml: Mod_common Snd_common

lib/kmodules/ksys.mli: Blockdev Irqchip Kernel_sim Kmem Kstate Ktypes Lxfi Mir Netdev Nic Pci Shm Sockets Sound

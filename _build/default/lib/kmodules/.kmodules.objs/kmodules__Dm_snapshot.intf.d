lib/kmodules/dm_snapshot.mli: Ksys Lxfi Mir Mod_common

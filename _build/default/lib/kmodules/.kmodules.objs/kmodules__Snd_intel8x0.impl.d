lib/kmodules/snd_intel8x0.ml: Mod_common Snd_common

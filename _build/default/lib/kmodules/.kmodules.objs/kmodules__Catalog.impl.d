lib/kmodules/catalog.ml: Can Can_bcm Dm_crypt Dm_snapshot Dm_zero E1000 Econet Ksys List Lxfi Mir Mod_common Rds Snd_ens1370 Snd_intel8x0

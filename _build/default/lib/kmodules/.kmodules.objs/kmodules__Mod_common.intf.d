lib/kmodules/mod_common.mli: Ksys Lxfi Mir

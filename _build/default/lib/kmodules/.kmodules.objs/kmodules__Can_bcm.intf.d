lib/kmodules/can_bcm.mli: Ksys Mir Mod_common

lib/kmodules/proto_common.ml: Ksys List Mir

lib/kmodules/dm_zero.mli: Ksys Lxfi Mir Mod_common

lib/kmodules/econet.ml: Kernel_sim Ksys Mir Mod_common Proto_common

lib/kmodules/snd_common.mli: Ksys Mir

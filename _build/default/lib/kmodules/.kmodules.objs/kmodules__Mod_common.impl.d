lib/kmodules/mod_common.ml: Hashtbl Ksys Lxfi Mir Printf

lib/kmodules/econet.mli: Ksys Mir Mod_common

lib/kmodules/rds.ml: Kernel_sim Ksys Mir Mod_common Proto_common

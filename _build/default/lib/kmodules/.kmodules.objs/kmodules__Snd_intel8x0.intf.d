lib/kmodules/snd_intel8x0.mli: Ksys Mir Mod_common

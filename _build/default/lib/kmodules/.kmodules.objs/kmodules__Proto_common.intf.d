lib/kmodules/proto_common.mli: Ksys Mir

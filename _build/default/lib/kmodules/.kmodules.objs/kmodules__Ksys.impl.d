lib/kmodules/ksys.ml: Annot Blockdev Hashtbl Int64 Irqchip Kernel_sim Klock Kmem Kstate Ktypes List Lxfi Netdev Nic Pci Printf Shm Skbuff Slab Sockets Sound Task

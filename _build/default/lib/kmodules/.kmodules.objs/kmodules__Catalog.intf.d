lib/kmodules/catalog.mli: Ksys Mod_common

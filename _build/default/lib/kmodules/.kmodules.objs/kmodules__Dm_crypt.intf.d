lib/kmodules/dm_crypt.mli: Ksys Lxfi Mir Mod_common

lib/kmodules/rds.mli: Ksys Mir Mod_common

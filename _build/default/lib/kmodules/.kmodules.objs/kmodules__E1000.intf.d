lib/kmodules/e1000.mli: Ksys Mir Mod_common

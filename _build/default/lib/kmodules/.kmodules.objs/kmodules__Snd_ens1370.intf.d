lib/kmodules/snd_ens1370.mli: Ksys Mir Mod_common

lib/kmodules/can_bcm.ml: Ksys Mir Mod_common Proto_common

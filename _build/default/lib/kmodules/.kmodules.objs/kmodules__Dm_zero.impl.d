lib/kmodules/dm_zero.ml: Kernel_sim Ksys Mir Mod_common

(** dm-crypt: an encrypting device-mapper target.

    The cipher is a keyed XOR stream — cryptographically a toy, but the
    data flow matches the real module where it matters to LXFI: a
    per-device key object allocated in the constructor (owned by that
    device's {e instance principal}), in-place transformation of bio
    payloads, and remap to the backing device.  One compromised
    dm-crypt device must not reach another device's key or data —
    the paper's §2.1 motivating scenario (the malicious USB stick). *)

open Mir.Builder

let make (sys : Ksys.t) : Mir.Ast.prog =
  let off = Ksys.off sys in
  let funcs =
    [
      func "module_init" []
        [ expr (call_ext "dm_register_target" [ glob "crypt_target" ]); ret0 ];
      (* arg carries the key value *)
      func "crypt_ctr" [ "ti"; "arg" ]
        [
          let_ "cc" (call_ext "kmalloc" [ ii 32 ]);
          when_ (v "cc" ==: ii 0) [ ret (ii (-12)) ];
          store64 (v "cc") (v "arg");
          store64 (v "cc" +: ii 8) (ii 0) (* sector counter *);
          store64 (v "ti" +: ii (off "dm_target" "private")) (v "cc");
          ret0;
        ];
      func "crypt_dtr" [ "ti" ]
        [
          let_ "cc" (load64 (v "ti" +: ii (off "dm_target" "private")));
          when_ (v "cc" <>: ii 0) [ expr (call_ext "kfree" [ v "cc" ]) ];
          ret0;
        ];
      (* keystream for a sector: key xor (sector * golden) *)
      func "crypt_keystream" [ "key"; "sector" ]
        [ ret (v "key" ^: (v "sector" *: i 0x9e3779b97f4a7c15L)) ];
      func "crypt_map" [ "ti"; "bio" ]
        ([
           let_ "cc" (load64 (v "ti" +: ii (off "dm_target" "private")));
           let_ "key" (load64 (v "cc"));
           let_ "sector" (load64 (v "bio" +: ii (off "bio" "sector")));
           let_ "ks" (call "crypt_keystream" [ v "key"; v "sector" ]);
           let_ "data" (load64 (v "bio" +: ii (off "bio" "data")));
           let_ "size" (load32 (v "bio" +: ii (off "bio" "size")));
         ]
        @ for_ "i" ~from:(ii 0) ~below:(v "size" /: ii 8)
            [
              store64
                (v "data" +: (v "i" *: ii 8))
                (load64 (v "data" +: (v "i" *: ii 8)) ^: v "ks");
            ]
        @ [
            store64 (v "cc" +: ii 8) (load64 (v "cc" +: ii 8) +: ii 1);
            ret (i Kernel_sim.Blockdev.dm_mapio_remapped);
          ]);
    ]
  in
  let globals =
    [
      global "crypt_target" (Ksys.sizeof sys "target_type") ~struct_:"target_type"
        ~init:
          [
            init_func (off "target_type" "ctr") "crypt_ctr";
            init_func (off "target_type" "dtr") "crypt_dtr";
            init_func (off "target_type" "map") "crypt_map";
          ];
    ]
  in
  prog "dm_crypt"
    ~imports:[ "dm_register_target"; "kmalloc"; "kfree"; "printk" ]
    ~globals ~funcs

let init sys mi =
  Mod_common.run_module_init sys mi;
  ignore
    (Kernel_sim.Blockdev.register_target sys.Ksys.blk ~name:"crypt"
       ~tt:(Mod_common.gaddr mi "crypt_target"))

let spec : Mod_common.spec =
  {
    Mod_common.name = "dm_crypt";
    category = "block device driver";
    make;
    init;
    slot_types = [ "target_type.ctr"; "target_type.dtr"; "target_type.map" ];
  }

(** snd-ens1370: Ensoniq AudioPCI driver (PCI 1274:5000). *)

val vendor : int
val device : int
val make : Ksys.t -> Mir.Ast.prog
val spec : Mod_common.spec

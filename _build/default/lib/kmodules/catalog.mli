(** The ten-module corpus of the paper's evaluation, plus the Figure 9
    annotation-effort accounting ("unique" = used by no other module in
    the corpus — the sharing that makes marginal module support cheap,
    §8.2). *)

val all : Mod_common.spec list
(** e1000, snd-intel8x0, snd-ens1370, rds, can, can-bcm, econet,
    dm-crypt, dm-zero, dm-snapshot. *)

val find : string -> Mod_common.spec option

val annotated_imports : Ksys.t -> Mod_common.spec -> string list
(** Kernel functions the module imports, excluding the [lxfi_*]
    runtime builtins. *)

type effort_row = {
  e_module : string;
  e_category : string;
  e_functions_all : int;
  e_functions_unique : int;
  e_fptrs_all : int;
  e_fptrs_unique : int;
}

val annotation_effort : Ksys.t -> effort_row list * int * int
(** Per-module rows plus the distinct totals (functions, fptr types). *)

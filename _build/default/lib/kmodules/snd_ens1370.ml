(** snd-ens1370: Ensoniq AudioPCI driver (PCI 1274:5000). *)

let vendor = 0x1274
let device = 0x5000

let make sys =
  Snd_common.make sys ~name:"snd_ens1370" ~vendor ~device ~dma_bytes:2048
    ~fill_words:32

let spec : Mod_common.spec =
  {
    Mod_common.name = "snd_ens1370";
    category = "sound device driver";
    make;
    init = Mod_common.run_module_init;
    slot_types = Snd_common.slot_types;
  }

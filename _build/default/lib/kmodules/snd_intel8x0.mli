(** snd-intel8x0: Intel AC'97 audio controller driver (PCI 8086:2415). *)

val vendor : int
val device : int
val make : Ksys.t -> Mir.Ast.prog
val spec : Mod_common.spec

(** The CAN broadcast-manager module, carrying CVE-2010-2959: the
    RX_SETUP allocation size is a 32-bit multiplication that overflows,
    and a later RX_UPDATE writes "in bounds" of the corrupted frame
    count — out of bounds of the real allocation. *)

val family : int
val op_rx_setup : int
val op_rx_update : int
val hdr_size : int
val make : Ksys.t -> Mir.Ast.prog
val spec : Mod_common.spec

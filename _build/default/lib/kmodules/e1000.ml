(** The e1000 network driver — the module the paper's performance
    evaluation isolates (§8.4).

    Written in MIR against the simulated PCI/netdev/NAPI interfaces.
    Structure follows the real driver closely enough that the per-packet
    guard profile is meaningful: descriptor-ring stores into the MMIO
    BAR, tx-completion cleanup, buffer-info bookkeeping, NAPI receive
    with buffer replenishment.

    Per-adapter state lives in a kmalloc'd private struct reachable from
    [net_device.priv] (with the NAPI context embedded inside it, as in
    the real driver), so one module instance per card works: the
    capabilities for card A's rings, buffers and private state belong to
    card A's principal only — see examples/netdriver_principals.ml.

    Principal story (Figure 4 of the paper): the PCI probe runs as the
    instance principal named by the [pci_dev]; the module immediately
    aliases the freshly allocated [net_device] and the embedded
    [napi_struct] to the same logical principal, so transmit (named by
    the net_device) and poll (named by the napi) run with the same
    capabilities. *)

open Mir.Builder

(* Private-state layout (kmalloc'd per adapter). *)
let p_pcidev = 0
let p_ndev = 8
let p_bar = 16
let p_tx_lock = 24
let p_rx_head = 28
let p_tx_clean = 32
let p_tx_packets = 40
let p_tx_bytes = 48
let p_rx_packets = 56
let p_napi = 64 (* embedded napi_struct (32 bytes incl. padding) *)
let p_next_to_use = 96
let p_last_tx_jiffies = 104
let p_rx_bufs = 112 (* 64 x 8 bytes *)
let p_tx_info = p_rx_bufs + (64 * 8) (* 64 x 16 bytes: {skb, len} *)
let priv_size = p_tx_info + (64 * 16)

let vendor = 0x8086
let device = 0x100e

let make_with ~strict (sys : Ksys.t) : Mir.Ast.prog =
  let off = Ksys.off sys in
  let priv o = v "priv" +: ii o in
  let skb_data = ii (off "sk_buff" "data") in
  let skb_len = ii (off "sk_buff" "len") in
  let skb_dev = ii (off "sk_buff" "dev") in
  let napi_poll_off = off "napi_struct" "poll" in
  let bar_tdh = ii Kernel_sim.Nic.reg_tdh in
  let bar_tdt = ii Kernel_sim.Nic.reg_tdt in
  let bar_rdh = ii Kernel_sim.Nic.reg_rdh in
  let bar_rdt = ii Kernel_sim.Nic.reg_rdt in
  let tx_ring = ii Kernel_sim.Nic.tx_ring_off in
  let rx_ring = ii Kernel_sim.Nic.rx_ring_off in

  let funcs =
    [
      (* insmod entry point: register with the PCI core. *)
      func "module_init" []
        [ expr (call_ext "pci_register_driver" [ glob "e1000_driver" ]); ret0 ];
      (* Figure 4's module_pci_probe, with the explicit lxfi_check +
         lxfi_princ_alias sequence from the paper. *)
      func "e1000_probe" [ "pcidev" ]
        ([
           expr (call_ext "lxfi_check:pci_dev" [ v "pcidev" ]);
           let_ "ndev" (call_ext "alloc_etherdev" [ ii 0 ]);
           when_ (v "ndev" ==: ii 0) [ ret (ii (-12)) ];
           let_ "priv" (call_ext "kmalloc" [ ii priv_size ]);
           when_ (v "priv" ==: ii 0) [ ret (ii (-12)) ];
           (* one logical principal, three names *)
           expr (call_ext "lxfi_princ_alias" [ v "pcidev"; v "ndev" ]);
           expr (call_ext "lxfi_princ_alias" [ v "pcidev"; priv p_napi ]);
           expr (call_ext "pci_enable_device" [ v "pcidev" ]);
           expr (call_ext "pci_request_regions" [ v "pcidev" ]);
           let_ "bar" (load64 (v "pcidev" +: ii (off "pci_dev" "bar0")));
           store64 (priv p_pcidev) (v "pcidev");
           store64 (priv p_ndev) (v "ndev");
           store64 (priv p_bar) (v "bar");
           store32 (priv p_rx_head) (ii 0);
           store32 (priv p_tx_clean) (ii 0);
           expr (call_ext "spin_lock_init" [ priv p_tx_lock ]);
           (* install our ops table and private state in the kernel's
              net_device *)
           store64 (v "ndev" +: ii (off "net_device" "dev_ops")) (glob "e1000_ops");
           store64 (v "ndev" +: ii (off "net_device" "priv")) (v "priv");
           (* set up the embedded napi context: the poll pointer is a
              dynamic function-pointer store, so e1000_poll declares its
              slot type explicitly (annotation propagation along
              assignments, §4.2) *)
           store64 (priv (p_napi + napi_poll_off)) (fn "e1000_poll");
           expr (call_ext "netif_napi_add" [ v "ndev"; priv p_napi; ii 64 ]);
           (* interrupt line: the handler pointer is checked against our
              CALL capabilities at registration (request_irq's contract) *)
           expr
             (call_ext "request_irq"
                [
                  load32 (v "pcidev" +: ii (off "pci_dev" "irq"));
                  fn "e1000_irq";
                  v "ndev";
                ]);
           (* reset rings *)
           store32 (v "bar" +: bar_tdh) (ii 0);
           store32 (v "bar" +: bar_tdt) (ii 0);
           store32 (v "bar" +: bar_rdh) (ii 0);
           store32 (v "bar" +: bar_rdt) (ii 0);
         ]
        @ for_ "i" ~from:(ii 0) ~below:(ii 64)
            [
              let_ "buf" (call_ext "kmalloc" [ ii 2048 ]);
              let_ "d" (v "bar" +: rx_ring +: (v "i" *: ii 16));
              store64 (v "d") (v "buf");
              store32 (v "d" +: ii 12) (ii 0);
              store64 (priv p_rx_bufs +: (v "i" *: ii 8)) (v "buf");
            ]
        @ [
            expr (call_ext "register_netdev" [ v "ndev" ]);
            expr (call_ext "pci_set_drvdata" [ v "pcidev"; v "ndev" ]);
            ret0;
          ]);
      func "e1000_remove" [ "pcidev" ] [ ret0 ];
      (* hardirq: acknowledge and kick NAPI; runs as the adapter's
         principal (irq.handler names it by dev_id) *)
      func "e1000_irq" [ "irq"; "dev_id" ]
        [
          let_ "priv" (load64 (v "dev_id" +: ii (off "net_device" "priv")));
          expr (call_ext "napi_schedule" [ priv p_napi ]);
          ret (ii 1);
        ]
        ~export:"irq.handler";
      func "e1000_open" [ "dev" ]
        [ store32 (v "dev" +: ii (off "net_device" "flags")) (ii 1); ret0 ];
      func "e1000_stop" [ "dev" ]
        [ store32 (v "dev" +: ii (off "net_device" "flags")) (ii 0); ret0 ];
      func "e1000_set_rx_mode" [ "dev" ] [ ret0 ];
      (* Transmit: clean completed descriptors, then post the packet. *)
      func "e1000_xmit" [ "skb"; "dev" ]
        [
          let_ "priv" (load64 (v "dev" +: ii (off "net_device" "priv")));
          expr (call_ext "spin_lock" [ priv p_tx_lock ]);
          let_ "bar" (load64 (priv p_bar));
          (* reclaim descriptors the device has completed *)
          let_ "clean" (load32 (priv p_tx_clean));
          let_ "tdh" (load32 (v "bar" +: bar_tdh));
          while_
            (v "clean" <>: v "tdh")
            [
              let_ "d" (v "bar" +: tx_ring +: (v "clean" *: ii 16));
              let_ "info" (priv p_tx_info +: (v "clean" *: ii 16));
              let_ "oskb" (load64 (v "info"));
              when_ (v "oskb" <>: ii 0)
                [
                  expr (call_ext "kfree_skb" [ v "oskb" ]);
                  store64 (v "info") (ii 0);
                ];
              store32 (v "d" +: ii 12) (ii 0);
              let_ "clean" ((v "clean" +: ii 1) %: ii 64);
            ];
          store32 (priv p_tx_clean) (v "clean");
          (* post the new descriptor *)
          let_ "tail" (load32 (v "bar" +: bar_tdt));
          let_ "d" (v "bar" +: tx_ring +: (v "tail" *: ii 16));
          let_ "data" (load64 (v "skb" +: skb_data));
          let_ "len" (load32 (v "skb" +: skb_len));
          store64 (v "d") (v "data");
          store32 (v "d" +: ii 8) (v "len");
          store32 (v "d" +: ii 12) (ii 0);
          let_ "info" (priv p_tx_info +: (v "tail" *: ii 16));
          store64 (v "info") (v "skb");
          store32 (v "info" +: ii 8) (v "len");
          store32 (v "bar" +: bar_tdt) ((v "tail" +: ii 1) %: ii 64);
          (* ring bookkeeping + software stats *)
          store64 (priv p_next_to_use) ((v "tail" +: ii 1) %: ii 64);
          store64 (priv p_last_tx_jiffies) (load64 (priv p_tx_packets));
          store64 (priv p_tx_packets) (load64 (priv p_tx_packets) +: ii 1);
          store64 (priv p_tx_bytes) (load64 (priv p_tx_bytes) +: v "len");
          expr (call_ext "spin_unlock" [ priv p_tx_lock ]);
          ret0;
        ];
      (* NAPI receive: harvest done descriptors, hand packets up,
         replenish buffers.  The napi context is embedded in priv. *)
      func "e1000_poll" [ "napi"; "budget" ]
        [
          let_ "priv" (v "napi" -: ii p_napi);
          let_ "bar" (load64 (priv p_bar));
          let_ "head" (load32 (priv p_rx_head));
          let_ "work" (ii 0);
          let_ "cont" (ii 1);
          while_
            (v "cont" &: (v "work" <: v "budget"))
            [
              let_ "d" (v "bar" +: rx_ring +: (v "head" *: ii 16));
              let_ "sta" (load32 (v "d" +: ii 12));
              if_
                (v "sta" &: ii 1)
                ([
                   let_ "buf" (load64 (priv p_rx_bufs +: (v "head" *: ii 8)));
                   let_ "len" (load32 (v "d" +: ii 8));
                 ]
                @ (if strict then
                     (* Guideline 4 (§6): the driver holds only
                        REF(sk_buff_fields) + payload WRITE; the kernel
                        mutates the struct through accessors *)
                     [
                       let_ "skb" (call_ext "build_skb_strict" [ v "buf"; v "len" ]);
                       expr (call_ext "skb_set_dev" [ v "skb"; load64 (priv p_ndev) ]);
                       expr (call_ext "netif_rx_strict" [ v "skb" ]);
                     ]
                   else
                     [
                       let_ "skb" (call_ext "build_skb" [ v "buf"; v "len" ]);
                       store64 (v "skb" +: skb_dev) (load64 (priv p_ndev));
                       expr (call_ext "netif_rx" [ v "skb" ]);
                     ])
                @ [
                    (* replenish *)
                    let_ "nbuf" (call_ext "kmalloc" [ ii 2048 ]);
                    store64 (v "d") (v "nbuf");
                    store32 (v "d" +: ii 12) (ii 0);
                    store64 (priv p_rx_bufs +: (v "head" *: ii 8)) (v "nbuf");
                    store64 (priv p_rx_packets) (load64 (priv p_rx_packets) +: ii 1);
                    let_ "head" ((v "head" +: ii 1) %: ii 64);
                    let_ "work" (v "work" +: ii 1);
                  ])
                [ let_ "cont" (ii 0) ];
            ];
          store32 (priv p_rx_head) (v "head");
          store32 (v "bar" +: bar_rdh) (v "head");
          ret (v "work");
        ]
        ~export:"napi.poll";
    ]
  in
  let globals =
    [
      global "e1000_driver" (Ksys.sizeof sys "pci_driver") ~struct_:"pci_driver"
        ~init:
          [
            init_int ~w:Mir.Ast.W32 (off "pci_driver" "vendor") vendor;
            init_int ~w:Mir.Ast.W32 (off "pci_driver" "device") device;
            init_func (off "pci_driver" "probe") "e1000_probe";
            init_func (off "pci_driver" "remove") "e1000_remove";
          ];
      global "e1000_ops" (Ksys.sizeof sys "net_device_ops") ~struct_:"net_device_ops"
        ~init:
          [
            init_func (off "net_device_ops" "ndo_open") "e1000_open";
            init_func (off "net_device_ops" "ndo_stop") "e1000_stop";
            init_func (off "net_device_ops" "ndo_start_xmit") "e1000_xmit";
            init_func (off "net_device_ops" "ndo_set_rx_mode") "e1000_set_rx_mode";
          ];
    ]
  in
  prog (if strict then "e1000_strict" else "e1000")
    ~imports:
      ((if strict then [ "build_skb_strict"; "skb_set_dev"; "netif_rx_strict" ] else [])
      @ [
        "pci_register_driver";
        "pci_enable_device";
        "pci_request_regions";
        "pci_set_drvdata";
        "alloc_etherdev";
        "register_netdev";
        "netif_napi_add";
        "napi_schedule";
        "request_irq";
        "netif_rx";
        "build_skb";
        "kmalloc";
        "kfree_skb";
        "spin_lock_init";
        "spin_lock";
        "spin_unlock";
        "lxfi_check:pci_dev";
        "lxfi_princ_alias";
      ])
    ~globals ~funcs

let make = make_with ~strict:false

let spec : Mod_common.spec =
  {
    Mod_common.name = "e1000";
    category = "net device driver";
    make;
    init = Mod_common.run_module_init;
    slot_types =
      [
        "pci_driver.probe";
        "pci_driver.remove";
        "net_device_ops.ndo_open";
        "net_device_ops.ndo_stop";
        "net_device_ops.ndo_start_xmit";
        "net_device_ops.ndo_set_rx_mode";
        "napi.poll";
        "irq.handler";
      ];
  }

(** Guideline 4 variant: the receive path uses the strict sk_buff API,
    so the driver's principals never hold WRITE over sk_buff structs it
    hands to the stack (kernel-side field accessors instead). *)
let spec_strict : Mod_common.spec =
  {
    spec with
    Mod_common.name = "e1000_strict";
    make = make_with ~strict:true;
  }

(** Address of the adapter's embedded napi context, from the device's
    private state. *)
let napi_addr (sys : Ksys.t) ~pcidev =
  let kst = sys.Ksys.kst in
  let ndev = Kernel_sim.Pci.pci_get_drvdata sys.Ksys.pci pcidev in
  let priv =
    Kernel_sim.Kmem.read_ptr kst.Kernel_sim.Kstate.mem
      (ndev + Ksys.off sys "net_device" "priv")
  in
  priv + p_napi

(** Shared skeleton for the protocol modules (rds, econet, can,
    can-bcm): family registration, per-socket private objects, and the
    module-global socket list whose linking/unlinking runs as the
    global principal after a structural check — the paper's §3.1
    motivating example. *)

(** Private sk layout; per-module payload starts at [sk_user]. *)

val sk_next : int
val sk_sock : int
val sk_state : int
val sk_buf_len : int
val sk_buf : int
val sk_user : int

type body = Ksys.t -> Mir.Ast.stmt list
(** Operation bodies, parameterised on the booted system for struct
    offsets; sendmsg/recvmsg run with [sock buf len flags], ioctl with
    [sock cmd arg]. *)

val base_imports : string list

val sk_of : Ksys.t -> Mir.Ast.expr -> Mir.Ast.expr
(** Load the private sk pointer from the kernel socket object. *)

val make :
  Ksys.t ->
  name:string ->
  family:int ->
  ops_section:Mir.Ast.section ->
  sk_size:int ->
  sendmsg:body ->
  recvmsg:body ->
  ioctl:body ->
  ?extra_funcs:Mir.Ast.func list ->
  ?extra_globals:Mir.Ast.glob list ->
  ?extra_imports:string list ->
  unit ->
  Mir.Ast.prog

val proto_slot_types : string list

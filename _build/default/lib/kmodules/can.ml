(** The base CAN protocol module (raw CAN frames).

    No known vulnerability — it is part of the corpus to measure
    annotation effort (Figure 9 notes that [can] needed only 7 extra
    function annotations once the rest of the corpus was done, because
    protocol modules share most of their interface). *)

open Mir.Builder

let family = Kernel_sim.Sockets.af_can
let frame_size = 16

let sendmsg sys =
  [
    let_ "sk" (Proto_common.sk_of sys (v "sock"));
    when_ (load32 (v "sk" +: ii Proto_common.sk_state) ==: ii 0) [ ret (ii (-107)) ];
    (* stage the frame from user space *)
    alloca "frame" frame_size;
    let_ "n" (v "len");
    when_ (v "n" >: ii frame_size) [ let_ "n" (ii frame_size) ];
    expr (call_ext "copy_from_user" [ v "frame"; v "buf"; v "n" ]);
    (* build an skb carrying the frame and loop it back up the stack *)
    let_ "skb" (call_ext "alloc_skb" [ ii frame_size ]);
    when_ (v "skb" ==: ii 0) [ ret (ii (-12)) ];
    let_ "data" (load64 (v "skb" +: ii (Ksys.off sys "sk_buff" "data")));
    store64 (v "data") (load64 (v "frame"));
    store64 (v "data" +: ii 8) (load64 (v "frame" +: ii 8));
    expr (call_ext "netif_rx" [ v "skb" ]);
    ret (v "n");
  ]

let recvmsg _sys = [ ret (ii (-11)) ]

let ioctl _sys = [ ret0 ]

let make (sys : Ksys.t) =
  Proto_common.make sys ~name:"can" ~family ~ops_section:Mir.Ast.Data ~sk_size:64
    ~sendmsg ~recvmsg ~ioctl
    ~extra_imports:[ "copy_from_user"; "alloc_skb"; "netif_rx" ]
    ()

let spec : Mod_common.spec =
  {
    Mod_common.name = "can";
    category = "net protocol driver";
    make;
    init = Mod_common.run_module_init;
    slot_types = Proto_common.proto_slot_types;
  }

(** The ten-module corpus of the paper's evaluation (Figure 9), plus
    the annotation-effort accounting that regenerates that table.

    "Unique" counts follow the paper: an annotated function (or
    function-pointer slot type) is unique to a module if no other
    module in the corpus uses it; shared annotations are the reason the
    marginal cost of supporting a new module is small (§8.2). *)

let all : Mod_common.spec list =
  [
    E1000.spec;
    Snd_intel8x0.spec;
    Snd_ens1370.spec;
    Rds.spec;
    Can.spec;
    Can_bcm.spec;
    Econet.spec;
    Dm_crypt.spec;
    Dm_zero.spec;
    Dm_snapshot.spec;
  ]

let find name = List.find_opt (fun s -> s.Mod_common.name = name) all

(** Annotated kernel functions a module needs: its imports minus the
    [lxfi_*] runtime builtins (those are LXFI API, not kernel API). *)
let annotated_imports (sys : Ksys.t) (spec : Mod_common.spec) =
  let prog = spec.Mod_common.make sys in
  List.filter (fun i -> not (Lxfi.Loader.is_builtin i)) prog.Mir.Ast.imports

type effort_row = {
  e_module : string;
  e_category : string;
  e_functions_all : int;
  e_functions_unique : int;
  e_fptrs_all : int;
  e_fptrs_unique : int;
}

(** [annotation_effort sys] — the Figure 9 table over our corpus. *)
let annotation_effort (sys : Ksys.t) : effort_row list * int * int =
  let rows_raw =
    List.map
      (fun spec ->
        (spec, annotated_imports sys spec, spec.Mod_common.slot_types))
      all
  in
  let used_elsewhere self item select =
    List.exists
      (fun (spec, imports, slots) ->
        spec.Mod_common.name <> self
        && List.mem item (match select with `Imports -> imports | `Slots -> slots))
      rows_raw
  in
  let rows =
    List.map
      (fun (spec, imports, slots) ->
        let name = spec.Mod_common.name in
        {
          e_module = name;
          e_category = spec.Mod_common.category;
          e_functions_all = List.length imports;
          e_functions_unique =
            List.length
              (List.filter (fun i -> not (used_elsewhere name i `Imports)) imports);
          e_fptrs_all = List.length slots;
          e_fptrs_unique =
            List.length
              (List.filter (fun s -> not (used_elsewhere name s `Slots)) slots);
        })
      rows_raw
  in
  let distinct select =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, imports, slots) ->
           match select with `Imports -> imports | `Slots -> slots)
         rows_raw)
    |> List.length
  in
  (rows, distinct `Imports, distinct `Slots)

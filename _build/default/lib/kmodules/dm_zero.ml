(** dm-zero: the smallest module of the corpus (Figure 9 lists it with
    6 annotated functions and 2 function pointers) — a device-mapper
    target that returns zeroes for reads and discards writes. *)

open Mir.Builder

let make (sys : Ksys.t) : Mir.Ast.prog =
  let off = Ksys.off sys in
  let funcs =
    [
      func "module_init" []
        [ expr (call_ext "dm_register_target" [ glob "zero_target" ]); ret0 ];
      func "zero_ctr" [ "ti"; "arg" ] [ ret0 ];
      func "zero_dtr" [ "ti" ] [ ret0 ];
      func "zero_map" [ "ti"; "bio" ]
        [
          let_ "rw" (load32 (v "bio" +: ii (off "bio" "rw")));
          if_ (v "rw" ==: ii 0)
            ([
               let_ "data" (load64 (v "bio" +: ii (off "bio" "data")));
               let_ "size" (load32 (v "bio" +: ii (off "bio" "size")));
             ]
            @ for_ "i" ~from:(ii 0) ~below:(v "size" /: ii 8)
                [ store64 (v "data" +: (v "i" *: ii 8)) (ii 0) ])
            [ (* writes are discarded *) ];
          store32 (v "bio" +: ii (off "bio" "status")) (ii 1);
          ret0;
        ];
    ]
  in
  let globals =
    [
      global "zero_target" (Ksys.sizeof sys "target_type") ~struct_:"target_type"
        ~init:
          [
            init_func (off "target_type" "ctr") "zero_ctr";
            init_func (off "target_type" "dtr") "zero_dtr";
            init_func (off "target_type" "map") "zero_map";
          ];
    ]
  in
  prog "dm_zero" ~imports:[ "dm_register_target"; "printk" ] ~globals ~funcs

let init sys mi =
  Mod_common.run_module_init sys mi;
  ignore
    (Kernel_sim.Blockdev.register_target sys.Ksys.blk ~name:"zero"
       ~tt:(Mod_common.gaddr mi "zero_target"))

let spec : Mod_common.spec =
  {
    Mod_common.name = "dm_zero";
    category = "block device driver";
    make;
    init;
    slot_types = [ "target_type.ctr"; "target_type.dtr"; "target_type.map" ];
  }

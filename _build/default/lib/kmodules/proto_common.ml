(** Shared skeleton for the network-protocol modules (rds, econet, can,
    can-bcm).

    Each protocol module registers a [net_proto_family], installs a
    [proto_ops] table, allocates a private per-socket object ("sk") on
    create, and maintains a {e module-global} linked list of all its
    sockets.  The list is the paper's §3.1 motivating example for the
    global principal: each socket's [next] pointer lives inside memory
    owned by a {e different} instance principal, so linking and
    unlinking must run as the module's global principal — the skeleton
    funnels those operations through [link_socket]/[unlink_socket],
    which call [lxfi_switch_global] after a structural sanity check. *)

open Mir.Builder

(* Private sk layout: the per-module payload starts at [sk_user]. *)
let sk_next = 0
let sk_sock = 8
let sk_state = 16
let sk_buf_len = 20
let sk_buf = 24
let sk_user = 32

type body = Ksys.t -> Mir.Ast.stmt list
(** Operation bodies receive the booted system (for struct offsets) and
    run with parameters [sock buf len flags] (sendmsg/recvmsg),
    [sock cmd arg] (ioctl). *)

let base_imports =
  [ "sock_register"; "sock_unregister"; "kmalloc"; "kfree"; "lxfi_switch_global"; "printk" ]

(** [sk_of sys sock_expr] — load the private sk pointer from the kernel
    socket object. *)
let sk_of sys sock_expr = load64 (sock_expr +: ii (Ksys.off sys "socket" "sk"))

let make (sys : Ksys.t) ~name ~family ~ops_section ~sk_size
    ~(sendmsg : body) ~(recvmsg : body) ~(ioctl : body) ?(extra_funcs = [])
    ?(extra_globals = []) ?(extra_imports = []) () : Mir.Ast.prog =
  let off = Ksys.off sys in
  let g suffix = name ^ "_" ^ suffix in
  let head = glob (g "list_head") in
  let funcs =
    [
      func "module_init" []
        [ expr (call_ext "sock_register" [ glob (g "npf") ]); ret0 ];
      (* rmmod entry point: unregister the family so the kernel holds
         no pointers into this module afterwards *)
      func "module_exit" []
        [ expr (call_ext "sock_unregister" [ ii family ]); ret0 ];
      (* net_proto_family.create: runs as the new socket's instance
         principal; shared state is touched only via link_socket. *)
      func (g "create") [ "sock"; "type" ]
        [
          let_ "sk" (call_ext "kmalloc" [ ii sk_size ]);
          when_ (v "sk" ==: ii 0) [ ret (ii (-12)) ];
          store64 (v "sock" +: ii (off "socket" "ops")) (glob (g "ops"));
          store64 (v "sock" +: ii (off "socket" "sk")) (v "sk");
          store64 (v "sk" +: ii sk_sock) (v "sock");
          expr (call (g "link_socket") [ v "sk" ]);
          ret0;
        ];
      (* Cross-instance list insertion: global-principal work (§3.1).
         The preceding structural check is the programmer's "adequate
         check" guarding the privilege switch (§3.4): a forged sk whose
         back-pointer does not close the loop never reaches the
         switch. *)
      func (g "link_socket") [ "sk" ]
        [
          let_ "back" (load64 (load64 (v "sk" +: ii sk_sock) +: ii (off "socket" "sk")));
          when_ (v "back" <>: v "sk") [ ret (ii (-22)) ];
          expr (call_ext "lxfi_switch_global" []);
          store64 (v "sk" +: ii sk_next) (load64 head);
          store64 head (v "sk");
          ret0;
        ];
      func (g "unlink_socket") [ "sk" ]
        [
          let_ "back" (load64 (load64 (v "sk" +: ii sk_sock) +: ii (off "socket" "sk")));
          when_ (v "back" <>: v "sk") [ ret (ii (-22)) ];
          expr (call_ext "lxfi_switch_global" []);
          let_ "cur" (load64 head);
          if_ (v "cur" ==: v "sk")
            [ store64 head (load64 (v "sk" +: ii sk_next)) ]
            [
              (* walk until the predecessor of sk; MIR's & is strict,
                 so the loop advances via an explicit cursor reset *)
              while_ (v "cur" <>: ii 0)
                [
                  let_ "nxt" (load64 (v "cur" +: ii sk_next));
                  if_ (v "nxt" ==: v "sk")
                    [
                      store64 (v "cur" +: ii sk_next)
                        (load64 (v "sk" +: ii sk_next));
                      let_ "cur" (ii 0);
                    ]
                    [ let_ "cur" (v "nxt") ];
                ];
            ];
          ret0;
        ];
      func (g "release") [ "sock" ]
        [
          let_ "sk" (sk_of sys (v "sock"));
          when_ (v "sk" <>: ii 0)
            [
              expr (call (g "unlink_socket") [ v "sk" ]);
              let_ "buf" (load64 (v "sk" +: ii sk_buf));
              when_ (v "buf" <>: ii 0) [ expr (call_ext "kfree" [ v "buf" ]) ];
              expr (call_ext "kfree" [ v "sk" ]);
              store64 (v "sock" +: ii (off "socket" "sk")) (ii 0);
            ];
          ret0;
        ];
      func (g "bind") [ "sock"; "addr"; "alen" ]
        [
          let_ "sk" (sk_of sys (v "sock"));
          store32 (v "sk" +: ii sk_state) (ii 1);
          ret0;
        ];
      func (g "sendmsg") [ "sock"; "buf"; "len"; "flags" ] (sendmsg sys);
      func (g "recvmsg") [ "sock"; "buf"; "len"; "flags" ] (recvmsg sys);
      func (g "ioctl") [ "sock"; "cmd"; "arg" ] (ioctl sys);
    ]
    @ extra_funcs
  in
  let globals =
    [
      global (g "npf") (Ksys.sizeof sys "net_proto_family") ~struct_:"net_proto_family"
        ~init:
          [
            init_int ~w:Mir.Ast.W32 (off "net_proto_family" "family") family;
            init_func (off "net_proto_family" "create") (g "create");
          ];
      global (g "ops") (Ksys.sizeof sys "proto_ops") ~section:ops_section
        ~struct_:"proto_ops"
        ~init:
          [
            init_func (off "proto_ops" "release") (g "release");
            init_func (off "proto_ops" "bind") (g "bind");
            init_func (off "proto_ops" "ioctl") (g "ioctl");
            init_func (off "proto_ops" "sendmsg") (g "sendmsg");
            init_func (off "proto_ops" "recvmsg") (g "recvmsg");
          ];
      global (g "list_head") 8;
    ]
    @ extra_globals
  in
  prog name
    ~imports:(List.sort_uniq compare (base_imports @ extra_imports))
    ~globals ~funcs

let proto_slot_types =
  [
    "net_proto_family.create";
    "proto_ops.release";
    "proto_ops.bind";
    "proto_ops.ioctl";
    "proto_ops.sendmsg";
    "proto_ops.recvmsg";
  ]

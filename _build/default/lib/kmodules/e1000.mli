(** The e1000 network driver in MIR — the module the paper's
    performance evaluation isolates (§8.4): PCI probe with the Figure 4
    check/alias sequence, per-adapter private state, descriptor-ring
    transmit with completion cleanup, registered IRQ handler, and NAPI
    receive with buffer replenishment. *)

val vendor : int
val device : int

(** Private-state field offsets (kmalloc'd per adapter). *)

val p_napi : int
val priv_size : int

val make : Ksys.t -> Mir.Ast.prog
val spec : Mod_common.spec

val spec_strict : Mod_common.spec
(** Guideline 4 (§6) variant: the receive path uses kernel-side sk_buff
    field accessors gated on a [REF(sk_buff_fields)], so the driver
    never holds WRITE over packet structs — least privilege for the
    52-field sk_buff of which the real e1000 writes five. *)

val napi_addr : Ksys.t -> pcidev:int -> int
(** Address of the adapter's embedded NAPI context. *)

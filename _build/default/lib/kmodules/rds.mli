(** The RDS protocol module, carrying CVE-2010-3904: the receive path
    copies to the user-supplied destination with the unchecked copy
    primitive.  [rds_ops] lives in [.rodata]; [spec_writable_ops] is
    the paper's second experiment with the table made writable. *)

val family : int
val msg_max : int
val make : Ksys.t -> Mir.Ast.prog
val spec : Mod_common.spec
val spec_writable_ops : Mod_common.spec

(** dm-crypt: encrypting device-mapper target with a per-device key
    context owned by that device's instance principal — the §2.1
    malicious-USB-stick scenario's subject. *)

val make : Ksys.t -> Mir.Ast.prog
val init : Ksys.t -> Lxfi.Runtime.module_info -> unit
val spec : Mod_common.spec

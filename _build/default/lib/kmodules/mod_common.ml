(** Shared infrastructure for the ten-module corpus.

    Each module is a [spec]: a constructor that builds its MIR program
    against the booted system's struct layouts, plus an [init] that
    performs what [insmod] would trigger (running the module's init
    entry point and any out-of-band registration the simulation keeps
    on the OCaml side).  [install] runs the whole load path:
    rewrite → load → grant initial capabilities → module_init. *)

type handle = {
  spec_name : string;
  mi : Lxfi.Runtime.module_info;
  report : Lxfi.Rewriter.report;
}

type spec = {
  name : string;
  category : string;  (** Figure 9 grouping *)
  make : Ksys.t -> Mir.Ast.prog;
  init : Ksys.t -> Lxfi.Runtime.module_info -> unit;
      (** post-load initialisation; most modules just run their
          [module_init] MIR function here *)
  slot_types : string list;
      (** function-pointer slot types this module implements or has
          implemented against it (Figure 9's "# Function Pointers") *)
}

(** Default init: run the module's [module_init] function. *)
let run_module_init sys (mi : Lxfi.Runtime.module_info) =
  let r = Lxfi.Loader.init_call sys.Ksys.rt mi "module_init" [] in
  if r <> 0L then
    invalid_arg (Printf.sprintf "%s: module_init failed (%Ld)" mi.Lxfi.Runtime.mi_name r)

let install sys (spec : spec) : handle =
  let prog = spec.make sys in
  let mi, report = Ksys.load sys prog in
  spec.init sys mi;
  { spec_name = spec.name; mi; report }

(** Address of a module global after load. *)
let gaddr (mi : Lxfi.Runtime.module_info) name =
  match Hashtbl.find_opt mi.Lxfi.Runtime.mi_globals name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "module %s: no global %s" mi.Lxfi.Runtime.mi_name name)

let faddr (mi : Lxfi.Runtime.module_info) name =
  match Hashtbl.find_opt mi.Lxfi.Runtime.mi_func_addr name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "module %s: no function %s" mi.Lxfi.Runtime.mi_name name)

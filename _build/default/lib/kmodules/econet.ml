(** The Econet protocol module, carrying CVE-2010-3849/3850.

    The real bugs let an unprivileged user reach a NULL-pointer
    dereference in [econet_sendmsg] from a context in which the task's
    address limit is KERNEL_DS (the sendpage path).  Combined with the
    core kernel's CVE-2010-4258 ([do_exit] writing a zero through
    [clear_child_tid] without resetting the address limit), the oops
    becomes a 4-byte arbitrary kernel write, which the published
    exploit aims at the upper half of [econet_ops.ioctl] to bend the
    pointer into attacker-mapped user memory.

    The module reproduces the trigger: a crafted flags value takes the
    unchecked "AUN" path and dereferences the unset remote-address
    pointer (NULL).  [econet_ops] is a plain writable [.data] object,
    as in the original. *)

open Mir.Builder

let family = Kernel_sim.Sockets.af_econet

(* sk payload: +32 remote-address pointer (NULL until connected). *)
let sk_remote = Proto_common.sk_user

(* The crafted msg_flags value that drives sendmsg down the AUN path. *)
let crafted_flags = 0xec0

let sendmsg sys =
  [
    let_ "sk" (Proto_common.sk_of sys (v "sock"));
    if_
      (v "flags" ==: ii crafted_flags)
      [
        (* CVE-2010-3849: the AUN path uses the remote address without
           checking it was ever set — NULL dereference. *)
        let_ "remote" (load64 (v "sk" +: ii sk_remote));
        let_ "port" (load32 (v "remote" +: ii 4));
        ret (v "port");
      ]
      [
        (* normal path: stage the payload in the sk buffer *)
        when_
          (load64 (v "sk" +: ii Proto_common.sk_buf) ==: ii 0)
          [
            let_ "nb" (call_ext "kmalloc" [ ii 128 ]);
            when_ (v "nb" ==: ii 0) [ ret (ii (-12)) ];
            store64 (v "sk" +: ii Proto_common.sk_buf) (v "nb");
          ];
        let_ "n" (v "len");
        when_ (v "n" >: ii 128) [ let_ "n" (ii 128) ];
        expr
          (call_ext "copy_from_user"
             [ load64 (v "sk" +: ii Proto_common.sk_buf); v "buf"; v "n" ]);
        store32 (v "sk" +: ii Proto_common.sk_buf_len) (v "n");
        ret (v "n");
      ];
  ]

let recvmsg sys =
  [
    let_ "sk" (Proto_common.sk_of sys (v "sock"));
    let_ "src" (load64 (v "sk" +: ii Proto_common.sk_buf));
    when_ (v "src" ==: ii 0) [ ret (ii (-11)) ];
    let_ "n" (load32 (v "sk" +: ii Proto_common.sk_buf_len));
    when_ (v "n" >: v "len") [ let_ "n" (v "len") ];
    expr (call_ext "copy_to_user" [ v "buf"; v "src"; v "n" ]);
    ret (v "n");
  ]

let ioctl _sys = [ ret0 ]

let make (sys : Ksys.t) =
  Proto_common.make sys ~name:"econet" ~family ~ops_section:Mir.Ast.Data ~sk_size:64
    ~sendmsg ~recvmsg ~ioctl
    ~extra_imports:[ "copy_from_user"; "copy_to_user" ]
    ()

let spec : Mod_common.spec =
  {
    Mod_common.name = "econet";
    category = "net protocol driver";
    make;
    init = Mod_common.run_module_init;
    slot_types = Proto_common.proto_slot_types;
  }

(** dm-snapshot: copy-on-write snapshot target.

    Keeps an exception table (chunk -> COW copy address); the first
    write to a chunk allocates a COW block and preserves the original
    payload before letting the write proceed.  Per-device state hangs
    off the [dm_target], so each snapshot is its own instance
    principal. *)

open Mir.Builder

let chunks = 256
let chunk_size = 256
let table_bytes = chunks * 8

let make (sys : Ksys.t) : Mir.Ast.prog =
  let off = Ksys.off sys in
  let funcs =
    [
      func "module_init" []
        [ expr (call_ext "dm_register_target" [ glob "snap_target" ]); ret0 ];
      func "snap_ctr" [ "ti"; "arg" ]
        [
          let_ "table" (call_ext "kmalloc" [ ii table_bytes ]);
          when_ (v "table" ==: ii 0) [ ret (ii (-12)) ];
          store64 (v "ti" +: ii (off "dm_target" "private")) (v "table");
          ret0;
        ];
      func "snap_dtr" [ "ti" ]
        ([ let_ "table" (load64 (v "ti" +: ii (off "dm_target" "private"))) ]
        @ for_ "i" ~from:(ii 0) ~below:(ii chunks)
            [
              let_ "cow" (load64 (v "table" +: (v "i" *: ii 8)));
              when_ (v "cow" <>: ii 0) [ expr (call_ext "kfree" [ v "cow" ]) ];
            ]
        @ [ expr (call_ext "kfree" [ v "table" ]); ret0 ]);
      (* Preserve the original chunk payload into a fresh COW block. *)
      func "snap_cow_chunk" [ "table"; "chunk"; "data" ]
        ([
           let_ "cow" (call_ext "kmalloc" [ ii chunk_size ]);
           when_ (v "cow" ==: ii 0) [ ret (ii (-12)) ];
         ]
        @ for_ "i" ~from:(ii 0) ~below:(ii (chunk_size / 8))
            [
              store64
                (v "cow" +: (v "i" *: ii 8))
                (load64 (v "data" +: (v "i" *: ii 8)));
            ]
        @ [ store64 (v "table" +: (v "chunk" *: ii 8)) (v "cow"); ret0 ]);
      func "snap_map" [ "ti"; "bio" ]
        [
          let_ "table" (load64 (v "ti" +: ii (off "dm_target" "private")));
          let_ "sector" (load64 (v "bio" +: ii (off "bio" "sector")));
          let_ "chunk" (v "sector" %: ii chunks);
          let_ "rw" (load32 (v "bio" +: ii (off "bio" "rw")));
          when_
            ((v "rw" ==: ii 1) &: (load64 (v "table" +: (v "chunk" *: ii 8)) ==: ii 0))
            [
              let_ "data" (load64 (v "bio" +: ii (off "bio" "data")));
              let_ "r" (call "snap_cow_chunk" [ v "table"; v "chunk"; v "data" ]);
              when_ (v "r" <>: ii 0) [ ret (v "r") ];
            ];
          ret (i Kernel_sim.Blockdev.dm_mapio_remapped);
        ];
    ]
  in
  let globals =
    [
      global "snap_target" (Ksys.sizeof sys "target_type") ~struct_:"target_type"
        ~init:
          [
            init_func (off "target_type" "ctr") "snap_ctr";
            init_func (off "target_type" "dtr") "snap_dtr";
            init_func (off "target_type" "map") "snap_map";
          ];
    ]
  in
  prog "dm_snapshot"
    ~imports:[ "dm_register_target"; "kmalloc"; "kfree"; "printk" ]
    ~globals ~funcs

let init sys mi =
  Mod_common.run_module_init sys mi;
  ignore
    (Kernel_sim.Blockdev.register_target sys.Ksys.blk ~name:"snapshot"
       ~tt:(Mod_common.gaddr mi "snap_target"))

let spec : Mod_common.spec =
  {
    Mod_common.name = "dm_snapshot";
    category = "block device driver";
    make;
    init;
    slot_types = [ "target_type.ctr"; "target_type.dtr"; "target_type.map" ];
  }

(** The base CAN protocol module (raw frames; no known vulnerability —
    part of the Figure 9 annotation-effort corpus). *)

val family : int
val frame_size : int
val make : Ksys.t -> Mir.Ast.prog
val spec : Mod_common.spec

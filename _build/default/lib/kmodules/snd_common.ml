(** Shared builder for the two PCI sound drivers (snd-intel8x0 and
    snd-ens1370).

    Probe creates the card via the annotated [snd_card_create] export
    (which grants WRITE on the card and its DMA area plus the
    registration REF through the [snd_card_caps] iterator), aliases the
    card to the PCI instance principal, installs the [snd_pcm_ops]
    table, and registers the card.  Playback fills the DMA area from
    the pointer callback — a burst of guarded stores per period, which
    is the module's performance signature. *)

open Mir.Builder

(* priv layout (.bss) *)
let p_pcidev = 0
let p_card = 8
let p_pos = 16
let p_periods = 24
let p_port = 32
let priv_size = 40

let make (sys : Ksys.t) ~name ~vendor ~device ~dma_bytes ~fill_words : Mir.Ast.prog =
  let off = Ksys.off sys in
  let g suffix = name ^ "_" ^ suffix in
  let priv o = glob (g "priv") +: ii o in
  let funcs =
    [
      func "module_init" []
        [ expr (call_ext "pci_register_driver" [ glob (g "driver") ]); ret0 ];
      func (g "probe") [ "pcidev" ]
        [
          expr (call_ext "lxfi_check:pci_dev" [ v "pcidev" ]);
          expr (call_ext "pci_enable_device" [ v "pcidev" ]);
          let_ "card" (call_ext "snd_card_create" [ ii dma_bytes ]);
          when_ (v "card" ==: ii 0) [ ret (ii (-12)) ];
          expr (call_ext "lxfi_princ_alias" [ v "pcidev"; v "card" ]);
          store64 (v "card" +: ii (off "snd_card" "pcm_ops")) (glob (g "pcm_ops"));
          (* the codec lives behind legacy I/O ports: the REF(io_port)
             granted here is what lets trigger/pointer poke them *)
          let_ "port" (call_ext "pci_request_ioport" [ v "pcidev" ]);
          store64 (priv p_port) (v "port");
          store64 (priv p_pcidev) (v "pcidev");
          store64 (priv p_card) (v "card");
          store64 (priv p_pos) (ii 0);
          expr (call_ext "snd_card_register" [ v "card" ]);
          ret0;
        ];
      func (g "remove") [ "pcidev" ] [ ret0 ];
      func (g "pcm_open") [ "card" ] [ store64 (priv p_pos) (ii 0); ret0 ];
      func (g "pcm_close") [ "card" ] [ ret0 ];
      func (g "pcm_trigger") [ "card"; "cmd" ]
        [
          store32 (v "card" +: ii (off "snd_card" "running")) (v "cmd");
          (* codec run/stop command via port I/O *)
          expr (call_ext "outb" [ load64 (priv p_port); v "cmd" ]);
          ret0;
        ];
      (* The hardware-pointer callback: report position and refill one
         period of samples into the DMA area. *)
      func (g "pcm_pointer") [ "card" ]
        ([
           when_
             (load32 (v "card" +: ii (off "snd_card" "running")) ==: ii 0)
             [ ret (load64 (priv p_pos)) ];
           let_ "dma" (load64 (v "card" +: ii (off "snd_card" "dma_area")));
           let_ "pos" (load64 (priv p_pos));
           (* hardware status register; REF(io_port) is exact-match, so
              the driver may only name the port it was granted *)
           let_ "hw" (call_ext "inb" [ load64 (priv p_port) ]);
         ]
        @ for_ "i" ~from:(ii 0) ~below:(ii fill_words)
            [
              store64
                (v "dma" +: ((v "pos" +: (v "i" *: ii 8)) %: ii dma_bytes))
                ((v "pos" +: v "i") *: i 0x5deece66dL);
            ]
        @ [
            let_ "pos" ((v "pos" +: ii (fill_words * 8)) %: ii dma_bytes);
            store64 (priv p_pos) (v "pos");
            store64 (priv p_periods) (load64 (priv p_periods) +: ii 1);
            expr (call_ext "snd_pcm_period_elapsed" [ v "card" ]);
            ret (v "pos");
          ]);
    ]
  in
  let globals =
    [
      global (g "driver") (Ksys.sizeof sys "pci_driver") ~struct_:"pci_driver"
        ~init:
          [
            init_int ~w:Mir.Ast.W32 (off "pci_driver" "vendor") vendor;
            init_int ~w:Mir.Ast.W32 (off "pci_driver" "device") device;
            init_func (off "pci_driver" "probe") (g "probe");
            init_func (off "pci_driver" "remove") (g "remove");
          ];
      global (g "pcm_ops") (Ksys.sizeof sys "snd_pcm_ops") ~struct_:"snd_pcm_ops"
        ~init:
          [
            init_func (off "snd_pcm_ops" "open") (g "pcm_open");
            init_func (off "snd_pcm_ops" "close") (g "pcm_close");
            init_func (off "snd_pcm_ops" "trigger") (g "pcm_trigger");
            init_func (off "snd_pcm_ops" "pointer") (g "pcm_pointer");
          ];
      global (g "priv") priv_size ~section:Mir.Ast.Bss;
    ]
  in
  prog name
    ~imports:
      [
        "pci_register_driver";
        "pci_enable_device";
        "snd_card_create";
        "snd_card_register";
        "snd_pcm_period_elapsed";
        "pci_request_ioport";
        "outb";
        "inb";
        "lxfi_check:pci_dev";
        "lxfi_princ_alias";
        "printk";
      ]
    ~globals ~funcs

let slot_types =
  [
    "pci_driver.probe";
    "pci_driver.remove";
    "snd_pcm_ops.open";
    "snd_pcm_ops.close";
    "snd_pcm_ops.trigger";
    "snd_pcm_ops.pointer";
  ]

(** The RDS (Reliable Datagram Sockets) protocol module, carrying
    CVE-2010-3904.

    The vulnerability, exactly as in [net/rds/page.c]: the receive path
    copies message payload to the user-supplied destination with the
    {e unchecked} copy primitive ([__copy_to_user_inatomic]), trusting
    the pointer without an [access_ok] test.  A local attacker passes a
    kernel address and obtains an arbitrary kernel write, then uses it
    to overwrite [rds_proto_ops.ioctl] and has the kernel call user
    code.

    LXFI-relevant structure, per §8.1:
    - [rds_ops] lives in [.rodata] — the module never receives a WRITE
      capability for it, so the first prevention path is that the
      arbitrary write itself is refused (the annotation on
      [__copy_to_user_inatomic] demands WRITE on the destination);
    - even when the table is made writable (the paper's second
      experiment — [Rds.spec_writable_ops]), the kernel's indirect-call
      check refuses to call a target the writer lacks a CALL capability
      for. *)

open Mir.Builder

let family = Kernel_sim.Sockets.af_rds
let msg_max = 256

let sendmsg sys =
  let _ = sys in
  [
    let_ "sk" (Proto_common.sk_of sys (v "sock"));
    (* first message allocates the reassembly buffer *)
    when_
      (load64 (v "sk" +: ii Proto_common.sk_buf) ==: ii 0)
      [
        let_ "nb" (call_ext "kmalloc" [ ii msg_max ]);
        when_ (v "nb" ==: ii 0) [ ret (ii (-12)) ];
        store64 (v "sk" +: ii Proto_common.sk_buf) (v "nb");
      ];
    let_ "n" (v "len");
    when_ (v "n" >: ii msg_max) [ let_ "n" (ii msg_max) ];
    let_ "dst" (load64 (v "sk" +: ii Proto_common.sk_buf));
    expr (call_ext "copy_from_user" [ v "dst"; v "buf"; v "n" ]);
    store32 (v "sk" +: ii Proto_common.sk_buf_len) (v "n");
    ret (v "n");
  ]

(* CVE-2010-3904: [buf] is used as a destination with no access check. *)
let recvmsg sys =
  [
    let_ "sk" (Proto_common.sk_of sys (v "sock"));
    let_ "src" (load64 (v "sk" +: ii Proto_common.sk_buf));
    when_ (v "src" ==: ii 0) [ ret (ii (-11)) ];
    let_ "n" (load32 (v "sk" +: ii Proto_common.sk_buf_len));
    when_ (v "n" >: v "len") [ let_ "n" (v "len") ];
    expr (call_ext "__copy_to_user_inatomic" [ v "buf"; v "src"; v "n" ]);
    ret (v "n");
  ]

let ioctl _sys = [ ret (ii (-25)) ]

let make_with ~ops_section (sys : Ksys.t) =
  Proto_common.make sys ~name:"rds" ~family ~ops_section ~sk_size:64 ~sendmsg
    ~recvmsg ~ioctl
    ~extra_imports:[ "copy_from_user"; "__copy_to_user_inatomic" ]
    ()

let make = make_with ~ops_section:Mir.Ast.Rodata

let spec : Mod_common.spec =
  {
    Mod_common.name = "rds";
    category = "net protocol driver";
    make;
    init = Mod_common.run_module_init;
    slot_types = Proto_common.proto_slot_types;
  }

(** Variant with a writable ops table — the paper's second RDS
    experiment ("we made this memory location writable"). *)
let spec_writable_ops : Mod_common.spec =
  { spec with make = make_with ~ops_section:Mir.Ast.Data }

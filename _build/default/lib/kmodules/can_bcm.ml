(** The CAN broadcast-manager module, carrying CVE-2010-2959.

    [bcm_rx_setup]'s allocation size is [nframes * 16] computed in
    32-bit arithmetic: a large [nframes] overflows the multiplication,
    so the module allocates a tiny buffer while recording the huge
    frame count.  A later update operation indexes frames by that
    count's bound and writes attacker-controlled values out of bounds —
    into whatever slab object follows the buffer (a [shmid_kernel] in
    Jon Oberheide's exploit).

    LXFI stops it because kmalloc's annotation grants WRITE for the
    {e actual} allocation size ([kmalloc_caps]); the first out-of-bounds
    store faults the write guard (§8.1). *)

open Mir.Builder

(* This module registers its own family in the simulation (the real
   kernel nests BCM inside AF_CAN; the isolation story is identical). *)
let family = 30

(* sk payload: +32 recorded nframes. *)
let sk_nframes = Proto_common.sk_user

(* header layout in the user message: opcode, arg (nframes or index),
   value to write *)
let op_rx_setup = 1
let op_rx_update = 2
let hdr_size = 24

let sendmsg sys =
  [
    let_ "sk" (Proto_common.sk_of sys (v "sock"));
    when_ (v "len" <: ii hdr_size) [ ret (ii (-22)) ];
    alloca "hdr" hdr_size;
    expr (call_ext "copy_from_user" [ v "hdr"; v "buf"; ii hdr_size ]);
    let_ "op" (load64 (v "hdr"));
    if_
      (v "op" ==: ii op_rx_setup)
      [
        let_ "nframes" (load32 (v "hdr" +: ii 8));
        (* CVE-2010-2959: 32-bit multiplication overflows. *)
        let_ "size" (mul32 (v "nframes") (ii 16));
        when_ (v "size" ==: ii 0) [ ret (ii (-22)) ];
        let_ "old" (load64 (v "sk" +: ii Proto_common.sk_buf));
        when_ (v "old" <>: ii 0) [ expr (call_ext "kfree" [ v "old" ]) ];
        let_ "frames" (call_ext "kmalloc" [ v "size" ]);
        when_ (v "frames" ==: ii 0) [ ret (ii (-12)) ];
        store64 (v "sk" +: ii Proto_common.sk_buf) (v "frames");
        store32 (v "sk" +: ii Proto_common.sk_buf_len) (v "size");
        (* the buggy bookkeeping: the unwrapped frame count *)
        store64 (v "sk" +: ii sk_nframes) (v "nframes");
        (* initialise the first frame *)
        store64 (v "frames") (ii 0);
        store64 (v "frames" +: ii 8) (ii 0);
        ret0;
      ]
      [
        when_ (v "op" <>: ii op_rx_update) [ ret (ii (-22)) ];
        let_ "frames" (load64 (v "sk" +: ii Proto_common.sk_buf));
        when_ (v "frames" ==: ii 0) [ ret (ii (-22)) ];
        let_ "idx" (load64 (v "hdr" +: ii 8));
        let_ "val" (load64 (v "hdr" +: ii 16));
        (* bound check against the (corrupted) frame count, not the
           allocation size — the essence of the bug *)
        when_ (v "idx" >=: load64 (v "sk" +: ii sk_nframes)) [ ret (ii (-22)) ];
        store64 (load64 (v "sk" +: ii Proto_common.sk_buf) +: (v "idx" *: ii 16)) (v "val");
        store64
          (load64 (v "sk" +: ii Proto_common.sk_buf) +: (v "idx" *: ii 16) +: ii 8)
          (v "val");
        ret0;
      ];
  ]

let recvmsg _sys = [ ret (ii (-11)) ]

let ioctl _sys = [ ret0 ]

let make (sys : Ksys.t) =
  Proto_common.make sys ~name:"can_bcm" ~family ~ops_section:Mir.Ast.Data ~sk_size:64
    ~sendmsg ~recvmsg ~ioctl ~extra_imports:[ "copy_from_user" ] ()

let spec : Mod_common.spec =
  {
    Mod_common.name = "can_bcm";
    category = "net protocol driver";
    make;
    init = Mod_common.run_module_init;
    slot_types = Proto_common.proto_slot_types;
  }

examples/quickstart.ml: Annot Fmt Format Kernel_sim Klog Kmodules Kstate Ksys Lxfi Mir Task

examples/annotation_tour.mli:

examples/netdriver_principals.ml: Blockdev Dm_crypt E1000 Format Hashtbl Kernel_sim Klog Kmem Kmodules Kstate Ksys Ktypes Lxfi Mod_common Netdev Nic Option Pci Result Skbuff

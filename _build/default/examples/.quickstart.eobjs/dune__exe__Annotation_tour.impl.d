examples/annotation_tour.ml: Annot E1000 Fmt Format Hashtbl Kernel_sim Klog Kmodules Ksys List Lxfi Mod_common Netdev Pci Skbuff

examples/netdriver_principals.mli:

examples/quickstart.mli:

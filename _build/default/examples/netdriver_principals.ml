(* Multi-principal modules in action (§3.1): one e1000 module driving
   TWO network cards, each its own principal; plus two dm-crypt devices
   whose keys stay out of each other's reach.

     dune exec examples/netdriver_principals.exe *)

open Kernel_sim
open Kmodules

let say fmt = Format.printf (fmt ^^ "@.")

let () =
  Klog.quiet ();
  say "== multi-principal modules ==";
  let sys = Ksys.boot Lxfi.Config.lxfi in

  (* Two NICs of the same model: one driver module, two instances. *)
  let pci1, nic1 = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let pci2, nic2 = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  ignore nic2;
  let h = Mod_common.install sys E1000.spec in
  let mi = h.Mod_common.mi in
  say "";
  say "one e1000 module, two cards probed:";
  let p1 = Hashtbl.find mi.Lxfi.Runtime.mi_aliases pci1 in
  let p2 = Hashtbl.find mi.Lxfi.Runtime.mi_aliases pci2 in
  say "  card 1 -> principal %s" (Lxfi.Principal.describe p1);
  say "  card 2 -> principal %s" (Lxfi.Principal.describe p2);

  (* Each instance owns its own MMIO window and nothing else's. *)
  let bar1 = Pci.bar0 sys.Ksys.pci pci1 and bar2 = Pci.bar0 sys.Ksys.pci pci2 in
  let owns p bar =
    Lxfi.Runtime.principal_has sys.Ksys.rt p (Lxfi.Capability.Cwrite { base = bar; size = 64 })
  in
  say "  principal 1 can write card 1's registers: %b" (owns p1 bar1);
  say "  principal 1 can write card 2's registers: %b  <- isolation" (owns p1 bar2);
  say "  principal 2 can write card 2's registers: %b" (owns p2 bar2);

  (* Traffic still flows normally on both. *)
  let send pci n =
    let dev = Pci.pci_get_drvdata sys.Ksys.pci pci in
    for _ = 1 to n do
      let skb = Skbuff.alloc sys.Ksys.kst 64 in
      Skbuff.set_dev sys.Ksys.kst skb dev;
      ignore (Netdev.dev_queue_xmit sys.Ksys.net skb)
    done
  in
  send pci1 5;
  ignore (Nic.drain_tx nic1);
  let pkts, bytes = Nic.tx_stats nic1 in
  say "  card 1 transmitted %d packets (%d bytes) under full enforcement" pkts bytes;

  (* dm-crypt: the §2.1 malicious-USB-stick scenario. *)
  say "";
  say "dm-crypt: two encrypted devices, two keys:";
  let _hc = Mod_common.install sys Dm_crypt.spec in
  let ti1 =
    Result.get_ok
      (Blockdev.dm_create sys.Ksys.blk ~target:"crypt" ~name:"system-disk" ~len:4096
         ~arg:0x1111)
  in
  let ti2 =
    Result.get_ok
      (Blockdev.dm_create sys.Ksys.blk ~target:"crypt" ~name:"usb-stick" ~len:4096
         ~arg:0x2222)
  in
  let cmi = Option.get (Lxfi.Runtime.module_named sys.Ksys.rt "dm_crypt") in
  let q1 = Hashtbl.find cmi.Lxfi.Runtime.mi_aliases ti1 in
  let q2 = Hashtbl.find cmi.Lxfi.Runtime.mi_aliases ti2 in
  say "  system-disk -> %s" (Lxfi.Principal.describe q1);
  say "  usb-stick   -> %s" (Lxfi.Principal.describe q2);
  let key_of ti =
    Kmem.read_ptr sys.Ksys.kst.Kstate.mem
      (ti + Ktypes.offset sys.Ksys.kst.Kstate.types "dm_target" "private")
  in
  let can_touch p ti =
    Lxfi.Runtime.principal_has sys.Ksys.rt p
      (Lxfi.Capability.Cwrite { base = key_of ti; size = 8 })
  in
  say "  usb-stick principal can write its own key context:    %b" (can_touch q2 ti2);
  say "  usb-stick principal can write the system disk's key:  %b  <- the paper's point"
    (can_touch q2 ti1);
  say "";
  say "A compromise through the USB stick is confined to the USB stick's";
  say "capabilities; the system disk's key and data stay out of reach."

(* Integration tests: load and drive every module of the corpus under
   all three enforcement modes. *)

open Kernel_sim
open Kmodules

let boot_with config specs =
  let sys = Ksys.boot config in
  ignore (Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device);
  ignore (Pci.add_device sys.Ksys.pci ~vendor:Snd_intel8x0.vendor ~device:Snd_intel8x0.device ~bar_len:4096);
  ignore (Pci.add_device sys.Ksys.pci ~vendor:Snd_ens1370.vendor ~device:Snd_ens1370.device ~bar_len:4096);
  let handles = List.map (Mod_common.install sys) specs in
  (sys, handles)

let test_all_modules_load config () =
  let sys, handles = boot_with config Catalog.all in
  Alcotest.(check int) "ten modules loaded" 10 (List.length handles);
  Alcotest.(check int) "runtime sees them" 10 (Hashtbl.length sys.Ksys.rt.Lxfi.Runtime.modules)

let test_protocol_roundtrip config () =
  let sys, _ = boot_with config [ Rds.spec ] in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_rds ~typ:2 in
  Alcotest.(check bool) "socket created" true (fd >= 3);
  let ubuf = Kstate.user_alloc sys.Ksys.kst 64 in
  Kmem.write_bytes sys.Ksys.kst.Kstate.mem ~addr:ubuf "hello rds protocol!";
  let sent = Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:ubuf ~len:19 ~flags:0 in
  Alcotest.(check int64) "sendmsg accepted" 19L sent;
  let out = Kstate.user_alloc sys.Ksys.kst 64 in
  let got = Sockets.sys_recvmsg sys.Ksys.sock ~fd ~buf:out ~len:64 ~flags:0 in
  Alcotest.(check int64) "recvmsg returned payload" 19L got;
  let s = Bytes.to_string (Kmem.read_bytes sys.Ksys.kst.Kstate.mem ~addr:out ~len:19) in
  Alcotest.(check string) "payload round-tripped" "hello rds protocol!" s;
  ignore (Sockets.sys_close sys.Ksys.sock ~fd)

let test_socket_list_global config () =
  let sys, handles = boot_with config [ Econet.spec ] in
  let mi = (List.hd handles).Mod_common.mi in
  let head = Mod_common.gaddr mi "econet_list_head" in
  let fd1 = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  let fd2 = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  Alcotest.(check bool) "two sockets" true (fd1 >= 3 && fd2 > fd1);
  (* list must contain two entries *)
  let rec count addr acc =
    if addr = 0 then acc
    else count (Kmem.read_ptr sys.Ksys.kst.Kstate.mem addr) (acc + 1)
  in
  Alcotest.(check int) "both sockets linked" 2
    (count (Kmem.read_ptr sys.Ksys.kst.Kstate.mem head) 0);
  ignore (Sockets.sys_close sys.Ksys.sock ~fd:fd1);
  Alcotest.(check int) "one socket after close" 1
    (count (Kmem.read_ptr sys.Ksys.kst.Kstate.mem head) 0);
  ignore (Sockets.sys_close sys.Ksys.sock ~fd:fd2);
  Alcotest.(check int) "empty after both close" 0
    (count (Kmem.read_ptr sys.Ksys.kst.Kstate.mem head) 0)

let test_dm_zero config () =
  let sys, _ = boot_with config [ Dm_zero.spec ] in
  let ti = Result.get_ok (Blockdev.dm_create sys.Ksys.blk ~target:"zero" ~name:"z0" ~len:1024 ~arg:0) in
  ignore ti;
  let bio = Blockdev.alloc_bio sys.Ksys.blk ~sector:7 ~size:512 ~rw:0 in
  let data_off = Ktypes.offset sys.Ksys.kst.Kstate.types "bio" "data" in
  let data = Kmem.read_ptr sys.Ksys.kst.Kstate.mem (bio + data_off) in
  Kmem.write_u64 sys.Ksys.kst.Kstate.mem data 0xdeadbeefL;
  (match Blockdev.submit_bio sys.Ksys.blk ~name:"z0" bio with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int64) "read returns zeroes" 0L
    (Kmem.read_u64 sys.Ksys.kst.Kstate.mem data);
  Blockdev.free_bio sys.Ksys.blk bio

let test_dm_crypt_roundtrip config () =
  let sys, _ = boot_with config [ Dm_crypt.spec ] in
  ignore
    (Result.get_ok
       (Blockdev.dm_create sys.Ksys.blk ~target:"crypt" ~name:"c0" ~len:1024
          ~arg:0x1234567));
  let bio = Blockdev.alloc_bio sys.Ksys.blk ~sector:5 ~size:64 ~rw:1 in
  let data_off = Ktypes.offset sys.Ksys.kst.Kstate.types "bio" "data" in
  let data = Kmem.read_ptr sys.Ksys.kst.Kstate.mem (bio + data_off) in
  Kmem.write_u64 sys.Ksys.kst.Kstate.mem data 0x1111222233334444L;
  ignore (Result.get_ok (Blockdev.submit_bio sys.Ksys.blk ~name:"c0" bio));
  let enc = Kmem.read_u64 sys.Ksys.kst.Kstate.mem data in
  Alcotest.(check bool) "payload encrypted" true (enc <> 0x1111222233334444L);
  (* mapping again with the same sector decrypts (XOR stream) *)
  ignore (Result.get_ok (Blockdev.submit_bio sys.Ksys.blk ~name:"c0" bio));
  Alcotest.(check int64) "decrypts back" 0x1111222233334444L
    (Kmem.read_u64 sys.Ksys.kst.Kstate.mem data)

let test_dm_crypt_principals_isolated () =
  (* Two crypt devices: compromising one instance must not expose the
     other's key object. Verified structurally: the WRITE capability
     for device 2's key context is absent from device 1's principal. *)
  let sys, handles = boot_with Lxfi.Config.lxfi [ Dm_crypt.spec ] in
  let mi = (List.hd handles).Mod_common.mi in
  let ti1 =
    Result.get_ok
      (Blockdev.dm_create sys.Ksys.blk ~target:"crypt" ~name:"c1" ~len:64 ~arg:1)
  in
  let ti2 =
    Result.get_ok
      (Blockdev.dm_create sys.Ksys.blk ~target:"crypt" ~name:"c2" ~len:64 ~arg:2)
  in
  let p1 = Hashtbl.find mi.Lxfi.Runtime.mi_aliases ti1 in
  let p2 = Hashtbl.find mi.Lxfi.Runtime.mi_aliases ti2 in
  Alcotest.(check bool) "distinct principals" true (p1.Lxfi.Principal.id <> p2.Lxfi.Principal.id);
  let cc2 =
    Kmem.read_ptr sys.Ksys.kst.Kstate.mem
      (ti2 + Ktypes.offset sys.Ksys.kst.Kstate.types "dm_target" "private")
  in
  let rt = sys.Ksys.rt in
  Alcotest.(check bool) "p2 owns its key context" true
    (Lxfi.Runtime.principal_has rt p2 (Lxfi.Capability.Cwrite { base = cc2; size = 8 }));
  Alcotest.(check bool) "p1 cannot write p2's key context" false
    (Lxfi.Runtime.principal_has rt p1 (Lxfi.Capability.Cwrite { base = cc2; size = 8 }))

let test_dm_snapshot_cow config () =
  let sys, _ = boot_with config [ Dm_snapshot.spec ] in
  ignore
    (Result.get_ok
       (Blockdev.dm_create sys.Ksys.blk ~target:"snapshot" ~name:"s0" ~len:4096 ~arg:0));
  let bio = Blockdev.alloc_bio sys.Ksys.blk ~sector:3 ~size:256 ~rw:1 in
  ignore (Result.get_ok (Blockdev.submit_bio sys.Ksys.blk ~name:"s0" bio));
  (* second write to the same chunk must not allocate a second COW *)
  let allocs0 = Slab.allocations sys.Ksys.kst.Kstate.slab in
  ignore (Result.get_ok (Blockdev.submit_bio sys.Ksys.blk ~name:"s0" bio));
  Alcotest.(check int) "no second COW allocation" allocs0
    (Slab.allocations sys.Ksys.kst.Kstate.slab);
  Blockdev.free_bio sys.Ksys.blk bio

let test_dm_destroy_runs_dtr config () =
  let sys, _ = boot_with config [ Dm_snapshot.spec ] in
  ignore
    (Result.get_ok
       (Blockdev.dm_create sys.Ksys.blk ~target:"snapshot" ~name:"s0" ~len:4096 ~arg:0));
  (* populate two COW chunks *)
  let bio = Blockdev.alloc_bio sys.Ksys.blk ~sector:1 ~size:256 ~rw:1 in
  ignore (Result.get_ok (Blockdev.submit_bio sys.Ksys.blk ~name:"s0" bio));
  Kmem.write_u64 sys.Ksys.kst.Kstate.mem
    (bio + Ktypes.offset sys.Ksys.kst.Kstate.types "bio" "sector") 2L;
  ignore (Result.get_ok (Blockdev.submit_bio sys.Ksys.blk ~name:"s0" bio));
  Blockdev.free_bio sys.Ksys.blk bio;
  let live_before = Slab.live_objects sys.Ksys.kst.Kstate.slab in
  Blockdev.dm_destroy sys.Ksys.blk ~name:"s0";
  (* dtr frees the exception table and both COW blocks *)
  Alcotest.(check int) "dtr freed table + 2 cow blocks" (live_before - 3)
    (Slab.live_objects sys.Ksys.kst.Kstate.slab)

let test_sound_stopped_pointer_is_stable config () =
  let sys, _ = boot_with config [ Snd_ens1370.spec ] in
  match List.filter (fun _ -> true) sys.Ksys.snd.Sound.cards with
  | card :: _ ->
      (* without a trigger_start, pointer polls must not advance *)
      ignore (Sound.playback sys.Ksys.snd card ~polls:3);
      let periods0 = sys.Ksys.snd.Sound.periods_elapsed in
      Alcotest.(check bool) "ran at least once under playback" true (periods0 > 0)
  | [] -> Alcotest.fail "no card"

let test_sound_playback config () =
  let sys, _ =
    boot_with config [ Snd_intel8x0.spec; Snd_ens1370.spec ]
  in
  match sys.Ksys.snd.Sound.cards with
  | [ _; _ ] as cards ->
      List.iter
        (fun card ->
          let pos = Sound.playback sys.Ksys.snd card ~polls:10 in
          Alcotest.(check bool) "dma position advanced" true (pos <> 0L))
        cards;
      Alcotest.(check bool) "periods elapsed" true
        (sys.Ksys.snd.Sound.periods_elapsed >= 20)
  | l -> Alcotest.failf "expected 2 sound cards, got %d" (List.length l)

let test_can_sendmsg config () =
  let sys, _ = boot_with config [ Can.spec ] in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_can ~typ:3 in
  ignore (Sockets.sys_bind sys.Ksys.sock ~fd ~addr:0 ~alen:0);
  let ubuf = Kstate.user_alloc sys.Ksys.kst 16 in
  let sent = Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:ubuf ~len:16 ~flags:0 in
  Alcotest.(check int64) "frame sent" 16L sent;
  Alcotest.(check int) "frame delivered to stack" 1 sys.Ksys.net.Netdev.rx_delivered_pkts

let test_can_bcm_benign config () =
  let sys, _ = boot_with config [ Can_bcm.spec ] in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:30 ~typ:2 in
  let ubuf = Kstate.user_alloc sys.Ksys.kst 32 in
  (* benign RX_SETUP with 4 frames, then in-bounds update *)
  Kmem.write_u64 sys.Ksys.kst.Kstate.mem ubuf 1L;
  Kmem.write_u64 sys.Ksys.kst.Kstate.mem (ubuf + 8) 4L;
  Alcotest.(check int64) "setup ok" 0L
    (Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:ubuf ~len:24 ~flags:0);
  Kmem.write_u64 sys.Ksys.kst.Kstate.mem ubuf 2L;
  Kmem.write_u64 sys.Ksys.kst.Kstate.mem (ubuf + 8) 3L;
  Kmem.write_u64 sys.Ksys.kst.Kstate.mem (ubuf + 16) 0xabcdL;
  Alcotest.(check int64) "in-bounds update ok" 0L
    (Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:ubuf ~len:24 ~flags:0)

let test_request_irq_call_check () =
  (* the callback-argument contract (§2.2): request_irq demands a CALL
     capability for the handler the module passes *)
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let open Mir.Builder in
  let p =
    prog "irqmod" ~imports:[ "request_irq" ] ~globals:[]
      ~funcs:
        [
          func "my_handler" [ "irq"; "dev_id" ] [ ret (ii 1) ];
          func "register_good" []
            [ ret (call_ext "request_irq" [ ii 77; fn "my_handler"; ii 0x1234 ]) ];
          func "register_evil" []
            [ ret (call_ext "request_irq" [ ii 78; ii 0xdead0; ii 0x1234 ]) ];
          func "module_init" [] [ ret0 ];
        ]
  in
  let mi, _ = Ksys.load sys p in
  Alcotest.(check int64) "own handler accepted" 0L
    (Lxfi.Loader.init_call sys.Ksys.rt mi "register_good" []);
  (match Lxfi.Loader.init_call sys.Ksys.rt mi "register_evil" [] with
  | exception Lxfi.Violation.Violation v ->
      Alcotest.(check string) "kind" "call-denied"
        (Lxfi.Violation.kind_name v.Lxfi.Violation.v_kind)
  | _ -> Alcotest.fail "bogus handler must be refused")

let test_ioport_ref_exact () =
  (* Guideline 3: the io_port REF names one fixed value *)
  let sys = Ksys.boot Lxfi.Config.lxfi in
  ignore (Pci.add_device sys.Ksys.pci ~vendor:Snd_intel8x0.vendor ~device:Snd_intel8x0.device ~bar_len:64);
  let _h = Mod_common.install sys Snd_intel8x0.spec in
  let mi = Option.get (Lxfi.Runtime.module_named sys.Ksys.rt "snd_intel8x0") in
  let priv = Mod_common.gaddr mi "snd_intel8x0_priv" in
  let port =
    Kernel_sim.Kmem.read_ptr sys.Ksys.kst.Kstate.mem (priv + Snd_common.p_port)
  in
  let p = Hashtbl.find mi.Lxfi.Runtime.mi_aliases
      (Kernel_sim.Kmem.read_ptr sys.Ksys.kst.Kstate.mem (priv + Snd_common.p_pcidev)) in
  Alcotest.(check bool) "REF for the granted port" true
    (Lxfi.Runtime.principal_has sys.Ksys.rt p
       (Lxfi.Capability.Cref { rtype = "io_port"; addr = port }));
  Alcotest.(check bool) "no REF for port+1" false
    (Lxfi.Runtime.principal_has sys.Ksys.rt p
       (Lxfi.Capability.Cref { rtype = "io_port"; addr = port + 1 }))

let test_annotation_effort_table () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let rows, total_fn, total_fp = Catalog.annotation_effort sys in
  Alcotest.(check int) "ten rows" 10 (List.length rows);
  Alcotest.(check bool) "distinct functions counted" true (total_fn > 10);
  Alcotest.(check bool) "distinct fptr types counted" true (total_fp > 5);
  (* e1000 is the biggest module, dm-zero the smallest, as in Fig 9 *)
  let get n = List.find (fun r -> r.Catalog.e_module = n) rows in
  Alcotest.(check bool) "e1000 imports the most functions" true
    ((get "e1000").Catalog.e_functions_all
    >= List.fold_left (fun m r -> max m r.Catalog.e_functions_all) 0 rows);
  Alcotest.(check bool) "dm_zero imports the fewest" true
    ((get "dm_zero").Catalog.e_functions_all
    <= List.fold_left (fun m r -> min m r.Catalog.e_functions_all) 99 rows)

let modes name f =
  [
    Alcotest.test_case (name ^ " [stock]") `Quick (f Lxfi.Config.stock);
    Alcotest.test_case (name ^ " [xfi]") `Quick (f Lxfi.Config.xfi);
    Alcotest.test_case (name ^ " [lxfi]") `Quick (f Lxfi.Config.lxfi);
  ]

let () =
  Klog.quiet ();
  Alcotest.run "modules"
    [
      ("load", modes "all ten modules load" test_all_modules_load);
      ("rds", modes "protocol round trip" test_protocol_roundtrip);
      ("econet", modes "global socket list" test_socket_list_global);
      ("dm_zero", modes "zero target" test_dm_zero);
      ("dm_crypt", modes "crypt round trip" test_dm_crypt_roundtrip);
      ("dm_snapshot", modes "cow once per chunk" test_dm_snapshot_cow);
      ("sound", modes "playback fills dma" test_sound_playback);
      ("sound-stop", modes "stopped pointer stable" test_sound_stopped_pointer_is_stable);
      ("dm-destroy", modes "dtr frees cow state" test_dm_destroy_runs_dtr);
      ("can", modes "raw frame send" test_can_sendmsg);
      ("can_bcm", modes "benign setup/update" test_can_bcm_benign);
      ( "principals",
        [
          Alcotest.test_case "dm-crypt instances isolated" `Quick
            test_dm_crypt_principals_isolated;
        ] );
      ( "effort",
        [ Alcotest.test_case "figure 9 accounting" `Quick test_annotation_effort_table ]
      );
      ( "contracts",
        [
          Alcotest.test_case "request_irq checks CALL cap" `Quick
            test_request_irq_call_check;
          Alcotest.test_case "io_port REF is exact" `Quick test_ioport_ref_exact;
        ] );
    ]

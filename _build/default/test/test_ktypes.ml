(* Unit tests for the struct-layout registry. *)

open Kernel_sim

let mk () = Ktypes.create ()

let test_layout_alignment () =
  let t = mk () in
  let s =
    Ktypes.define t "mixed"
      [
        ("a", 1, Ktypes.Scalar);
        ("b", 4, Ktypes.Scalar);
        ("c", 8, Ktypes.Pointer);
        ("d", 2, Ktypes.Scalar);
      ]
  in
  Alcotest.(check int) "a at 0" 0 (Ktypes.offset t "mixed" "a");
  Alcotest.(check int) "b aligned to 4" 4 (Ktypes.offset t "mixed" "b");
  Alcotest.(check int) "c aligned to 8" 8 (Ktypes.offset t "mixed" "c");
  Alcotest.(check int) "d after c" 16 (Ktypes.offset t "mixed" "d");
  Alcotest.(check int) "size rounded to 8" 24 s.Ktypes.s_size

let test_funcptr_slots () =
  let t = mk () in
  ignore
    (Ktypes.define t "ops"
       [
         ("open", 8, Ktypes.Funcptr "ops.open");
         ("data", 8, Ktypes.Pointer);
         ("close", 8, Ktypes.Funcptr "ops.close");
       ]);
  Alcotest.(check (option string)) "slot at 0" (Some "ops.open")
    (Ktypes.funcptr_slot t "ops" 0);
  Alcotest.(check (option string)) "pointer field is not a slot" None
    (Ktypes.funcptr_slot t "ops" 8);
  Alcotest.(check (option string)) "slot at 16" (Some "ops.close")
    (Ktypes.funcptr_slot t "ops" 16);
  Alcotest.(check int) "two funcptr fields" 2 (List.length (Ktypes.funcptr_fields t "ops"))

let test_duplicate_rejected () =
  let t = mk () in
  ignore (Ktypes.define t "x" [ ("f", 8, Ktypes.Scalar) ]);
  Alcotest.check_raises "duplicate struct"
    (Invalid_argument "Ktypes.define: duplicate struct x") (fun () ->
      ignore (Ktypes.define t "x" [ ("f", 8, Ktypes.Scalar) ]))

let test_unknown_lookups () =
  let t = mk () in
  ignore (Ktypes.define t "y" [ ("f", 8, Ktypes.Scalar) ]);
  Alcotest.check_raises "unknown struct" (Ktypes.Unknown_struct "nope") (fun () ->
      ignore (Ktypes.sizeof t "nope"));
  Alcotest.check_raises "unknown field" (Ktypes.Unknown_field ("y", "g")) (fun () ->
      ignore (Ktypes.offset t "y" "g"))

let test_kernel_structs_present () =
  (* Boot defines the full layout set; spot-check the ones annotations
     reference by name. *)
  let kst = Kstate.boot () in
  Skbuff.define_layout kst.Kstate.types;
  Netdev.define_layout kst.Kstate.types;
  Pci.define_layout kst.Kstate.types;
  Sockets.define_layout kst.Kstate.types;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " defined") true (Ktypes.mem kst.Kstate.types name))
    [ "task_struct"; "sk_buff"; "net_device"; "net_device_ops"; "pci_dev"; "socket" ];
  Alcotest.(check bool) "sk_buff holds data ptr + len" true
    (Ktypes.offset kst.Kstate.types "sk_buff" "data"
     <> Ktypes.offset kst.Kstate.types "sk_buff" "len")

let () =
  Alcotest.run "ktypes"
    [
      ( "layout",
        [
          Alcotest.test_case "alignment" `Quick test_layout_alignment;
          Alcotest.test_case "funcptr slots" `Quick test_funcptr_slots;
          Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
          Alcotest.test_case "unknown lookups" `Quick test_unknown_lookups;
          Alcotest.test_case "kernel structs" `Quick test_kernel_structs_present;
        ] );
    ]

(* Unit tests for the simulated address space. *)

open Kernel_sim

let t () = Kmem.create ()

let test_rw_widths () =
  let m = t () in
  let base = 0x2_0000_0000 in
  List.iter
    (fun (size, v, expect) ->
      Kmem.write m ~addr:base ~size v;
      Alcotest.(check int64)
        (Printf.sprintf "width %d" size)
        expect
        (Kmem.read m ~addr:base ~size))
    [
      (1, 0x1ffL, 0xffL);
      (2, 0x1_ffffL, 0xffffL);
      (4, 0x1_ffff_ffffL, 0xffff_ffffL);
      (8, -1L, -1L);
    ]

let test_little_endian () =
  let m = t () in
  let base = 0x2_0000_0000 in
  Kmem.write m ~addr:base ~size:8 0x1122334455667788L;
  Alcotest.(check int) "low byte first" 0x88 (Kmem.read_u8 m base);
  Alcotest.(check int) "high byte last" 0x11 (Kmem.read_u8 m (base + 7));
  Alcotest.(check int64) "u32 low half" 0x55667788L (Kmem.read m ~addr:base ~size:4)

let test_page_crossing () =
  let m = t () in
  let base = 0x2_0000_0000 + Kmem.page_size - 3 in
  Kmem.write m ~addr:base ~size:8 0xdeadbeefcafebabeL;
  Alcotest.(check int64) "value crosses page boundary" 0xdeadbeefcafebabeL
    (Kmem.read m ~addr:base ~size:8)

let test_null_guard () =
  let m = t () in
  (match Kmem.read m ~addr:0 ~size:8 with
  | exception Kmem.Fault { addr; write = false } ->
      Alcotest.(check bool) "fault inside NULL page" true (addr < 0x1000)
  | _ -> Alcotest.fail "read of NULL must fault");
  match Kmem.write m ~addr:0xfff ~size:1 0L with
  | exception Kmem.Fault { addr = 0xfff; write = true } -> ()
  | _ -> Alcotest.fail "write near NULL must fault"

let test_zero_fill () =
  let m = t () in
  let base = 0x2_0000_0000 in
  Alcotest.(check int64) "fresh memory reads zero" 0L (Kmem.read m ~addr:base ~size:8);
  Kmem.write m ~addr:base ~size:8 5L;
  Kmem.zero m ~addr:base ~len:8;
  Alcotest.(check int64) "zeroed" 0L (Kmem.read m ~addr:base ~size:8)

let test_blit () =
  let m = t () in
  let src = 0x2_0000_0000 and dst = 0x2_0001_0000 in
  Kmem.write_bytes m ~addr:src "api integrity";
  Kmem.blit m ~src ~dst ~len:13;
  Alcotest.(check string) "copied" "api integrity"
    (Bytes.to_string (Kmem.read_bytes m ~addr:dst ~len:13))

let test_bytes_roundtrip () =
  let m = t () in
  let base = 0x3_0000_0000 in
  let s = String.init 300 (fun i -> Char.chr (i mod 256)) in
  Kmem.write_bytes m ~addr:base s;
  Alcotest.(check string) "300-byte blob" s
    (Bytes.to_string (Kmem.read_bytes m ~addr:base ~len:300))

let test_layout_predicates () =
  Alcotest.(check bool) "user addr" true (Kmem.Layout.is_user 0x1000);
  Alcotest.(check bool) "null guard not user" false (Kmem.Layout.is_user 0xfff);
  Alcotest.(check bool) "kernel heap is kernel" true
    (Kmem.Layout.is_kernel Kmem.Layout.kernel_heap_base);
  Alcotest.(check bool) "module area" true
    (Kmem.Layout.is_module_area Kmem.Layout.module_base);
  Alcotest.(check bool) "user not kernel" false (Kmem.Layout.is_kernel 0x2000)

let test_mapped_page_accounting () =
  let m = t () in
  let n0 = Kmem.mapped_pages m in
  Kmem.map m ~addr:0x2_0000_0000 ~len:(3 * Kmem.page_size);
  Alcotest.(check int) "three pages mapped" (n0 + 3) (Kmem.mapped_pages m);
  Kmem.map m ~addr:0x2_0000_0000 ~len:Kmem.page_size;
  Alcotest.(check int) "idempotent" (n0 + 3) (Kmem.mapped_pages m)

let () =
  Alcotest.run "kmem"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write widths" `Quick test_rw_widths;
          Alcotest.test_case "little endian" `Quick test_little_endian;
          Alcotest.test_case "page crossing" `Quick test_page_crossing;
          Alcotest.test_case "NULL guard faults" `Quick test_null_guard;
          Alcotest.test_case "zero fill" `Quick test_zero_fill;
          Alcotest.test_case "blit" `Quick test_blit;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "layout predicates" `Quick test_layout_predicates;
          Alcotest.test_case "page accounting" `Quick test_mapped_page_accounting;
        ] );
    ]

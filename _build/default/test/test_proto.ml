(* Protocol-module behaviour under enforcement: the global socket list
   invariant under random create/close sequences (the §3.1
   global-principal workload), sendpage address-limit hygiene, and
   cross-module capability separation between protocol instances. *)

open Kernel_sim
open Kmodules

let boot config spec =
  let sys = Ksys.boot config in
  let h = Mod_common.install sys spec in
  (sys, h)

let walk_list sys head =
  let rec go addr acc =
    if addr = 0 then List.rev acc
    else go (Kmem.read_ptr sys.Ksys.kst.Kstate.mem addr) (addr :: acc)
  in
  go (Kmem.read_ptr sys.Ksys.kst.Kstate.mem head) []

(* qcheck: any create/close interleaving keeps the module's global list
   exactly equal to the set of live sockets' sks. *)
let prop_socket_list_invariant =
  QCheck.Test.make ~count:60 ~name:"econet global list = live sockets"
    (QCheck.make
       ~print:(fun l -> String.concat "" (List.map (fun b -> if b then "C" else "X") l))
       QCheck.Gen.(list_size (int_bound 40) bool))
    (fun ops ->
      let sys, h = boot Lxfi.Config.lxfi Econet.spec in
      let head = Mod_common.gaddr h.Mod_common.mi "econet_list_head" in
      let live = ref [] in
      List.iter
        (fun create ->
          if create then begin
            let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
            if fd >= 3 then live := fd :: !live
          end
          else
            match !live with
            | [] -> ()
            | fd :: rest ->
                ignore (Sockets.sys_close sys.Ksys.sock ~fd);
                live := rest)
        ops;
      let expected_sks =
        List.map
          (fun fd ->
            let sock = Sockets.sock_of_fd sys.Ksys.sock fd in
            Kmem.read_ptr sys.Ksys.kst.Kstate.mem
              (sock + Ktypes.offset sys.Ksys.kst.Kstate.types "socket" "sk"))
          !live
        |> List.sort compare
      in
      let in_list = walk_list sys head |> List.sort compare in
      expected_sks = in_list)

let test_sendpage_restores_limit_on_success () =
  let sys, _ = boot Lxfi.Config.lxfi Econet.spec in
  let kst = sys.Ksys.kst in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  let u = Kstate.user_alloc kst 16 in
  ignore (Sockets.sys_sendpage sys.Ksys.sock ~fd ~buf:u ~len:8 ~flags:0);
  Alcotest.(check int) "address limit back to USER_DS" Task.user_ds
    (Task.addr_limit kst.Kstate.mem kst.Kstate.types kst.Kstate.current)

let test_sendpage_leaks_limit_on_oops () =
  (* the CVE-2010-4258 precondition: an oops inside sendpage leaves
     KERNEL_DS behind *)
  let sys, _ = boot Lxfi.Config.lxfi Econet.spec in
  let kst = sys.Ksys.kst in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  (match
     Sockets.sys_sendpage sys.Ksys.sock ~fd ~buf:0 ~len:0 ~flags:Econet.crafted_flags
   with
  | exception Kmem.Fault _ -> ()
  | _ -> Alcotest.fail "expected the NULL dereference");
  Alcotest.(check int) "stale KERNEL_DS" Task.kernel_ds
    (Task.addr_limit kst.Kstate.mem kst.Kstate.types kst.Kstate.current);
  Kstate.set_fs kst Task.user_ds

let test_socket_principals_isolated () =
  (* two RDS sockets: each instance owns its own staging buffer and not
     the other's *)
  let sys, h = boot Lxfi.Config.lxfi Rds.spec in
  let kst = sys.Ksys.kst in
  let mk () =
    let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_rds ~typ:2 in
    let u = Kstate.user_alloc kst 16 in
    ignore (Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:u ~len:8 ~flags:0);
    let sock = Sockets.sock_of_fd sys.Ksys.sock fd in
    let sk =
      Kmem.read_ptr kst.Kstate.mem
        (sock + Ktypes.offset kst.Kstate.types "socket" "sk")
    in
    let buf = Kmem.read_ptr kst.Kstate.mem (sk + 24 (* Proto_common.sk_buf *)) in
    (sock, buf)
  in
  let sock1, buf1 = mk () in
  let sock2, buf2 = mk () in
  let mi = h.Mod_common.mi in
  let p1 = Hashtbl.find mi.Lxfi.Runtime.mi_aliases sock1 in
  let p2 = Hashtbl.find mi.Lxfi.Runtime.mi_aliases sock2 in
  let owns p buf =
    Lxfi.Runtime.principal_has sys.Ksys.rt p (Lxfi.Capability.Cwrite { base = buf; size = 8 })
  in
  Alcotest.(check bool) "1 owns its buffer" true (owns p1 buf1);
  Alcotest.(check bool) "2 owns its buffer" true (owns p2 buf2);
  Alcotest.(check bool) "1 cannot write 2's buffer" false (owns p1 buf2);
  Alcotest.(check bool) "2 cannot write 1's buffer" false (owns p2 buf1)

let test_release_frees_sk () =
  let sys, _ = boot Lxfi.Config.lxfi Can.spec in
  let live0 = Slab.live_objects sys.Ksys.kst.Kstate.slab in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_can ~typ:3 in
  Alcotest.(check bool) "allocation happened" true
    (Slab.live_objects sys.Ksys.kst.Kstate.slab > live0);
  ignore (Sockets.sys_close sys.Ksys.sock ~fd);
  (* the socket struct itself is kernel-owned and stays; the sk must be
     gone.  Allow for the socket struct allocation. *)
  Alcotest.(check int) "sk freed on release" (live0 + 1)
    (Slab.live_objects sys.Ksys.kst.Kstate.slab)

let () =
  Klog.quiet ();
  Alcotest.run "proto"
    [
      ( "lists",
        [
          QCheck_alcotest.to_alcotest prop_socket_list_invariant;
          Alcotest.test_case "release frees sk" `Quick test_release_frees_sk;
        ] );
      ( "sendpage",
        [
          Alcotest.test_case "limit restored on success" `Quick
            test_sendpage_restores_limit_on_success;
          Alcotest.test_case "limit leaked on oops (the bug)" `Quick
            test_sendpage_leaks_limit_on_oops;
        ] );
      ( "principals",
        [
          Alcotest.test_case "socket instances isolated" `Quick
            test_socket_principals_isolated;
        ] );
    ]

(* Unit tests for the kernel substrate itself: tasks, uaccess, the
   oops/do_exit path (both vulnerable and fixed kernels), pid hash vs.
   run queue, PCI matching, IRQ dispatch, SHM, locks, netdev stats. *)

open Kernel_sim

let boot = Kstate.boot

(* ---- tasks and creds ---- *)

let test_task_lifecycle () =
  let kst = boot () in
  let t = Kstate.spawn_task kst ~uid:1000 ~comm:"worker" in
  Alcotest.(check int) "uid stored" 1000 (Task.uid kst.Kstate.mem kst.Kstate.types t);
  Alcotest.(check string) "comm stored" "worker" (Task.comm kst.Kstate.mem kst.Kstate.types t);
  Alcotest.(check bool) "not root" false (Task.is_root kst.Kstate.mem kst.Kstate.types t);
  Task.set_uid kst.Kstate.mem kst.Kstate.types t 0;
  Alcotest.(check bool) "escalated" true (Task.is_root kst.Kstate.mem kst.Kstate.types t);
  Alcotest.(check bool) "in ps" true (List.mem t.Task.pid (Kstate.ps kst));
  Alcotest.(check bool) "scheduled" true (List.mem t.Task.pid (Kstate.scheduled kst))

let test_uid_is_memory () =
  (* the uid is a memory-resident field — the thing arbitrary writes
     target *)
  let kst = boot () in
  let t = Kstate.spawn_task kst ~uid:1000 ~comm:"victim" in
  let uid_addr = Task.field_addr kst.Kstate.types t "uid" in
  Kmem.write_u32 kst.Kstate.mem uid_addr 0;
  Alcotest.(check int) "direct write changed uid" 0 (Task.uid kst.Kstate.mem kst.Kstate.types t)

let test_detach_pid_hides () =
  let kst = boot () in
  let t = Kstate.spawn_task kst ~uid:1000 ~comm:"ghost" in
  Kstate.detach_pid kst t;
  Alcotest.(check bool) "hidden from ps" false (List.mem t.Task.pid (Kstate.ps kst));
  Alcotest.(check bool) "still scheduled" true (List.mem t.Task.pid (Kstate.scheduled kst))

(* ---- uaccess and address limits ---- *)

let test_put_user_checks_limit () =
  let kst = boot () in
  let u = Kstate.user_alloc kst 16 in
  Kstate.put_user kst ~addr:u ~size:4 7L;
  Alcotest.(check int64) "user write lands" 7L (Kmem.read kst.Kstate.mem ~addr:u ~size:4);
  let kaddr = Slab.kmalloc kst.Kstate.slab 16 in
  Alcotest.check_raises "kernel address refused under USER_DS" (Kstate.Efault kaddr)
    (fun () -> Kstate.put_user kst ~addr:kaddr ~size:4 7L);
  Kstate.set_fs kst Task.kernel_ds;
  Kstate.put_user kst ~addr:kaddr ~size:4 9L;
  Alcotest.(check int64) "KERNEL_DS lets it through" 9L
    (Kmem.read kst.Kstate.mem ~addr:kaddr ~size:4)

let test_do_exit_vulnerable_vs_fixed () =
  let run ~fixed =
    let kst = boot () in
    kst.Kstate.cve_2010_4258_fixed <- fixed;
    let victim_slot = Slab.kmalloc kst.Kstate.slab 8 in
    Kmem.write_u64 kst.Kstate.mem victim_slot 0xffffffffffffffffL;
    let t = Kstate.spawn_task kst ~uid:1000 ~comm:"dying" in
    Kstate.switch_to kst t;
    Task.set_clear_child_tid kst.Kstate.mem kst.Kstate.types t victim_slot;
    Kstate.set_fs kst Task.kernel_ds (* the stale limit *);
    Kstate.do_exit kst;
    Kmem.read kst.Kstate.mem ~addr:victim_slot ~size:4
  in
  Alcotest.(check int64) "vulnerable kernel zeroes kernel memory" 0L (run ~fixed:false);
  Alcotest.(check int64) "fixed kernel does not" 0xffffffffL (run ~fixed:true)

let test_with_syscall_oops_runs_do_exit () =
  let kst = boot () in
  let t = Kstate.spawn_task kst ~uid:1000 ~comm:"crasher" in
  Kstate.switch_to kst t;
  let r = Kstate.with_syscall kst (fun () -> Kmem.read kst.Kstate.mem ~addr:4 ~size:4) in
  Alcotest.(check bool) "syscall reported error" true (Result.is_error r);
  Alcotest.(check int) "oops counted" 1 kst.Kstate.oops_count;
  Alcotest.(check bool) "task reaped" false (List.mem t.Task.pid (Kstate.scheduled kst))

(* ---- locks ---- *)

let test_spinlock_state_machine () =
  let kst = boot () in
  let lock = Slab.kmalloc kst.Kstate.slab 8 in
  Klock.spin_lock_init kst lock;
  Alcotest.(check bool) "unlocked" false (Klock.is_locked kst lock);
  Klock.spin_lock kst lock;
  Alcotest.(check bool) "locked" true (Klock.is_locked kst lock);
  (match Klock.spin_lock kst lock with
  | exception Kstate.Oops _ -> ()
  | _ -> Alcotest.fail "double lock must oops (single core)");
  Klock.spin_unlock kst lock;
  match Klock.spin_unlock kst lock with
  | exception Kstate.Oops _ -> ()
  | _ -> Alcotest.fail "unlock of free lock must oops"

(* ---- PCI ---- *)

let test_pci_matching () =
  let kst = boot () in
  Pci.define_layout kst.Kstate.types;
  let pci = Pci.create kst in
  let d1 = Pci.add_device pci ~vendor:0x8086 ~device:0x100e ~bar_len:64 in
  let _d2 = Pci.add_device pci ~vendor:0x1274 ~device:0x5000 ~bar_len:64 in
  let probed = ref [] in
  (* a fake driver struct in kernel memory with a registered probe fn *)
  let drv = Slab.kmalloc kst.Kstate.slab (Ktypes.sizeof kst.Kstate.types "pci_driver") in
  Kmem.write_u32 kst.Kstate.mem (drv + Ktypes.offset kst.Kstate.types "pci_driver" "vendor") 0x8086;
  Kmem.write_u32 kst.Kstate.mem (drv + Ktypes.offset kst.Kstate.types "pci_driver" "device") 0x100e;
  let probe_addr =
    Kstate.register_kernel_fn kst "test_probe" (fun args ->
        probed := Int64.to_int (List.nth args 0) :: !probed;
        0L)
  in
  Kmem.write_ptr kst.Kstate.mem
    (drv + Ktypes.offset kst.Kstate.types "pci_driver" "probe")
    probe_addr;
  let n = Pci.register_driver pci drv in
  Alcotest.(check int) "exactly one device matched" 1 n;
  Alcotest.(check (list int)) "the right one" [ d1 ] !probed;
  (* re-registration does not double-probe claimed devices *)
  Alcotest.(check int) "no rebind" 0 (Pci.register_driver pci drv)

let test_pci_ioports_distinct () =
  let kst = boot () in
  Pci.define_layout kst.Kstate.types;
  let pci = Pci.create kst in
  let d1 = Pci.add_device pci ~vendor:1 ~device:1 ~bar_len:64 in
  let d2 = Pci.add_device pci ~vendor:1 ~device:2 ~bar_len:64 in
  Alcotest.(check bool) "distinct ports" true (Pci.ioport pci d1 <> Pci.ioport pci d2);
  Pci.outb pci ~port:(Pci.ioport pci d1) ~value:0xab;
  Alcotest.(check int) "port readback" 0xab (Pci.inb pci ~port:(Pci.ioport pci d1));
  Alcotest.(check int) "other port untouched" 0 (Pci.inb pci ~port:(Pci.ioport pci d2))

(* ---- IRQ ---- *)

let test_irq_dispatch () =
  let kst = boot () in
  let irqc = Irqchip.create kst in
  let fired = ref 0 in
  let handler =
    Kstate.register_kernel_fn kst "test_handler" (fun args ->
        fired := Int64.to_int (List.nth args 1);
        1L)
  in
  Alcotest.(check int64) "spurious irq unhandled" 0L (Irqchip.raise_irq irqc ~irq:9);
  Alcotest.(check int64) "registration ok" 0L
    (Irqchip.request_irq irqc ~irq:9 ~handler ~dev_id:0x77);
  Alcotest.(check int64) "busy line refused" (-16L)
    (Irqchip.request_irq irqc ~irq:9 ~handler ~dev_id:0x78);
  Alcotest.(check int64) "handled" 1L (Irqchip.raise_irq irqc ~irq:9);
  Alcotest.(check int) "dev_id delivered" 0x77 !fired;
  Irqchip.free_irq irqc ~irq:9;
  Alcotest.(check int64) "unhandled after free" 0L (Irqchip.raise_irq irqc ~irq:9)

(* ---- SHM ---- *)

let test_shm_segments () =
  let kst = boot () in
  Shm.define_layout kst.Kstate.types;
  let shm = Shm.create kst in
  let id = Shm.sys_shmget shm in
  let seg = Shm.segment_addr shm id in
  Alcotest.(check int64) "magic stamped" Shm.magic (Kmem.read_u64 kst.Kstate.mem seg);
  Alcotest.(check int64) "shmctl follows the op pointer" 0L (Shm.sys_shmctl shm ~id);
  Alcotest.(check int64) "bad id" (-22L) (Shm.sys_shmctl shm ~id:999);
  (* segments come from the 16-byte class: adjacency for the exploit *)
  let id2 = Shm.sys_shmget shm in
  Alcotest.(check int) "adjacent segments" 16 (Shm.segment_addr shm id2 - seg)

(* ---- netdev ---- *)

let test_netdev_stats_and_qdisc () =
  let kst = boot () in
  Skbuff.define_layout kst.Kstate.types;
  Netdev.define_layout kst.Kstate.types;
  let net = Netdev.create kst in
  let dev = Netdev.alloc_netdev net ~name:"eth0" in
  Alcotest.(check string) "name" "eth0" (Netdev.dev_name net dev);
  (* wire the xmit slot to a kernel function so the qdisc path runs *)
  let ops = Slab.kmalloc kst.Kstate.slab (Ktypes.sizeof kst.Kstate.types "net_device_ops") in
  let xmit =
    Kstate.register_kernel_fn kst "test_xmit" (fun _ -> Netdev.netdev_tx_ok)
  in
  Kmem.write_ptr kst.Kstate.mem
    (ops + Ktypes.offset kst.Kstate.types "net_device_ops" "ndo_start_xmit")
    xmit;
  Kmem.write_ptr kst.Kstate.mem
    (dev + Ktypes.offset kst.Kstate.types "net_device" "dev_ops")
    ops;
  let skb = Skbuff.alloc kst 100 in
  Skbuff.set_dev kst skb dev;
  Alcotest.(check int64) "xmit ok" 0L (Netdev.dev_queue_xmit net skb);
  let tx_p, tx_b, _, _ = Netdev.stats net dev in
  Alcotest.(check int) "tx packet counted" 1 tx_p;
  Alcotest.(check int) "tx bytes counted" 100 tx_b;
  (* skb without a device oopses, like the real stack would *)
  let skb2 = Skbuff.alloc kst 10 in
  match Netdev.dev_queue_xmit net skb2 with
  | exception Kstate.Oops _ -> ()
  | _ -> Alcotest.fail "xmit without device must oops"

let test_skbuff_lifecycle () =
  let kst = boot () in
  Skbuff.define_layout kst.Kstate.types;
  let live0 = Slab.live_objects kst.Kstate.slab in
  let skb = Skbuff.alloc kst 64 in
  Alcotest.(check int) "len" 64 (Skbuff.len kst skb);
  Alcotest.(check bool) "data buffer allocated" true (Skbuff.data kst skb <> 0);
  Skbuff.free kst skb;
  Alcotest.(check int) "struct and payload freed" live0 (Slab.live_objects kst.Kstate.slab)

(* ---- sockets error paths ---- *)

let test_socket_errors () =
  let kst = boot () in
  Sockets.define_layout kst.Kstate.types;
  let sock = Sockets.create kst in
  Alcotest.(check int) "unknown family" (-97) (Sockets.sys_socket sock ~family:99 ~typ:1);
  (match Sockets.sys_sendmsg sock ~fd:42 ~buf:0 ~len:0 ~flags:0 with
  | exception Kstate.Oops _ -> ()
  | _ -> Alcotest.fail "bad fd must oops");
  (* duplicate family registration *)
  let npf = Slab.kmalloc kst.Kstate.slab (Ktypes.sizeof kst.Kstate.types "net_proto_family") in
  Kmem.write_u32 kst.Kstate.mem (npf + Ktypes.offset kst.Kstate.types "net_proto_family" "family") 21;
  Alcotest.(check int64) "first registration" 0L (Sockets.sock_register sock npf);
  Alcotest.(check int64) "duplicate refused" (-17L) (Sockets.sock_register sock npf)

let () =
  Klog.quiet ();
  Alcotest.run "kernel"
    [
      ( "tasks",
        [
          Alcotest.test_case "lifecycle" `Quick test_task_lifecycle;
          Alcotest.test_case "uid lives in memory" `Quick test_uid_is_memory;
          Alcotest.test_case "detach_pid hides" `Quick test_detach_pid_hides;
        ] );
      ( "uaccess",
        [
          Alcotest.test_case "put_user address limit" `Quick test_put_user_checks_limit;
          Alcotest.test_case "do_exit: CVE-2010-4258" `Quick test_do_exit_vulnerable_vs_fixed;
          Alcotest.test_case "oops path reaps task" `Quick test_with_syscall_oops_runs_do_exit;
        ] );
      ("locks", [ Alcotest.test_case "spinlock transitions" `Quick test_spinlock_state_machine ]);
      ( "pci",
        [
          Alcotest.test_case "driver matching" `Quick test_pci_matching;
          Alcotest.test_case "io ports" `Quick test_pci_ioports_distinct;
        ] );
      ("irq", [ Alcotest.test_case "dispatch" `Quick test_irq_dispatch ]);
      ("shm", [ Alcotest.test_case "segments" `Quick test_shm_segments ]);
      ( "net",
        [
          Alcotest.test_case "netdev stats + qdisc" `Quick test_netdev_stats_and_qdisc;
          Alcotest.test_case "skbuff lifecycle" `Quick test_skbuff_lifecycle;
          Alcotest.test_case "socket errors" `Quick test_socket_errors;
        ] );
    ]

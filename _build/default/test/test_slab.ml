(* Unit tests for the SLUB-style allocator — especially the properties
   the CAN BCM exploit depends on: size-class rounding, adjacency
   within a class, and LIFO reuse of freed objects. *)

open Kernel_sim

let mk () =
  let mem = Kmem.create () in
  let cycles = Kcycles.create () in
  Slab.create mem cycles

let test_size_class_rounding () =
  let s = mk () in
  List.iter
    (fun (req, usable) ->
      let a = Slab.kmalloc s req in
      Alcotest.(check int)
        (Printf.sprintf "request %d -> class %d" req usable)
        usable (Slab.usable_size s a))
    [ (1, 16); (16, 16); (17, 32); (33, 64); (65, 96); (100, 128); (3000, 4096) ]

let test_adjacency_within_class () =
  let s = mk () in
  let a = Slab.kmalloc s 16 in
  let b = Slab.kmalloc s 16 in
  Alcotest.(check int) "sequential carve is adjacent" (a + 16) b

let test_lifo_reuse () =
  let s = mk () in
  let a = Slab.kmalloc s 16 in
  let _b = Slab.kmalloc s 16 in
  Slab.kfree s a;
  let c = Slab.kmalloc s 16 in
  Alcotest.(check int) "freed slot reused first (LIFO)" a c

let test_different_classes_not_adjacent () =
  let s = mk () in
  let a = Slab.kmalloc s 16 in
  let b = Slab.kmalloc s 64 in
  Alcotest.(check bool) "classes carve from different pages" true (abs (b - a) >= 16)

let test_zeroed_on_alloc () =
  let s = mk () in
  let a = Slab.kmalloc s 32 in
  Kmem.write_u64 s.Slab.mem a 0x4141414141414141L;
  Slab.kfree s a;
  let b = Slab.kmalloc s 32 in
  Alcotest.(check int) "same slot" a b;
  Alcotest.(check int64) "object zeroed on reallocation" 0L (Kmem.read_u64 s.Slab.mem b)

let test_double_free_rejected () =
  let s = mk () in
  let a = Slab.kmalloc s 16 in
  Slab.kfree s a;
  Alcotest.check_raises "double free" (Slab.Bad_free a) (fun () -> Slab.kfree s a)

let test_bad_free_rejected () =
  let s = mk () in
  Alcotest.check_raises "free of non-object" (Slab.Bad_free 0x12345) (fun () ->
      Slab.kfree s 0x12345)

let test_large_allocation () =
  let s = mk () in
  let a = Slab.kmalloc s 10000 in
  Alcotest.(check int) "page-rounded usable size" (3 * Kmem.page_size)
    (Slab.usable_size s a);
  Kmem.write_u8 s.Slab.mem (a + 9999) 7;
  Slab.kfree s a

let test_live_accounting () =
  let s = mk () in
  let a = Slab.kmalloc s 16 and b = Slab.kmalloc s 16 in
  Alcotest.(check int) "two live" 2 (Slab.live_objects s);
  Alcotest.(check bool) "a live" true (Slab.is_live s a);
  Slab.kfree s a;
  Alcotest.(check int) "one live" 1 (Slab.live_objects s);
  Alcotest.(check bool) "a dead" false (Slab.is_live s a);
  Alcotest.(check bool) "b live" true (Slab.is_live s b)

let test_page_boundary_carving () =
  let s = mk () in
  (* 4096/96 = 42 objects + remainder: the 43rd must come from a fresh
     page, never straddling. *)
  let addrs = List.init 60 (fun _ -> Slab.kmalloc s 96) in
  List.iter
    (fun a ->
      let page = a lsr 12 and last_page = (a + 95) lsr 12 in
      Alcotest.(check int) "object within one page" page last_page)
    addrs

let () =
  Alcotest.run "slab"
    [
      ( "allocator",
        [
          Alcotest.test_case "size-class rounding" `Quick test_size_class_rounding;
          Alcotest.test_case "adjacency" `Quick test_adjacency_within_class;
          Alcotest.test_case "LIFO reuse" `Quick test_lifo_reuse;
          Alcotest.test_case "class separation" `Quick test_different_classes_not_adjacent;
          Alcotest.test_case "zero on alloc" `Quick test_zeroed_on_alloc;
          Alcotest.test_case "double free" `Quick test_double_free_rejected;
          Alcotest.test_case "bad free" `Quick test_bad_free_rejected;
          Alcotest.test_case "large allocation" `Quick test_large_allocation;
          Alcotest.test_case "live accounting" `Quick test_live_accounting;
          Alcotest.test_case "page boundary" `Quick test_page_boundary_carving;
        ] );
    ]

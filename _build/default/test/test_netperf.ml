(* Tests pinning the Figure 12/13 netperf shapes (coarse bounds — the
   benchmark harness prints the full numbers). *)

open Workloads

let rows = lazy (Netperf_sim.figure12 ~pkts:1500 ())

let get name = List.find (fun r -> r.Netperf_sim.r_test = name) (Lazy.force rows)

let ratio r = r.Netperf_sim.r_lxfi /. r.Netperf_sim.r_stock

let test_tcp_throughput_unaffected () =
  List.iter
    (fun name ->
      let r = get name in
      Alcotest.(check (float 0.001)) (name ^ " ratio") 1.0 (ratio r))
    [ "TCP_STREAM TX"; "TCP_STREAM RX" ]

let test_udp_tx_drops () =
  let r = get "UDP_STREAM TX" in
  let ratio = ratio r in
  Alcotest.(check bool)
    (Printf.sprintf "UDP TX ratio %.2f in [0.5, 0.8] (paper 0.65)" ratio)
    true
    (ratio > 0.5 && ratio < 0.8);
  Alcotest.(check (float 0.001)) "LXFI UDP TX is CPU-bound" 1.0 r.Netperf_sim.r_lxfi_cpu

let test_udp_rx_unaffected () =
  let r = get "UDP_STREAM RX" in
  Alcotest.(check (float 0.001)) "UDP RX ratio" 1.0 (ratio r);
  Alcotest.(check bool) "CPU rises substantially" true
    (r.Netperf_sim.r_lxfi_cpu > 1.5 *. r.Netperf_sim.r_stock_cpu)

let test_cpu_always_higher_under_lxfi () =
  List.iter
    (fun (r : Netperf_sim.row) ->
      let effective_cpu m cpu = cpu /. Float.max 1e-9 m in
      (* compare cpu per achieved unit so throughput drops don't mask
         the inflation *)
      Alcotest.(check bool)
        (r.Netperf_sim.r_test ^ ": cpu/unit higher under LXFI")
        true
        (effective_cpu r.Netperf_sim.r_lxfi r.Netperf_sim.r_lxfi_cpu
        >= effective_cpu r.Netperf_sim.r_stock r.Netperf_sim.r_stock_cpu))
    (Lazy.force rows)

let test_rr_stock_wins () =
  List.iter
    (fun name ->
      let r = get name in
      Alcotest.(check bool) (name ^ ": stock >= lxfi") true
        (r.Netperf_sim.r_stock >= r.Netperf_sim.r_lxfi))
    [ "TCP_RR"; "UDP_RR"; "TCP_RR (1-switch)"; "UDP_RR (1-switch)" ]

let test_low_latency_hurts_more () =
  let multi = ratio (get "UDP_RR") in
  let onesw = ratio (get "UDP_RR (1-switch)") in
  Alcotest.(check bool)
    (Printf.sprintf "1-switch ratio %.2f < multi-switch ratio %.2f" onesw multi)
    true (onesw < multi)

let test_fig13_counts () =
  let guards, m = Netperf_sim.figure13 ~pkts:1000 () in
  let get_g name =
    List.find (fun g -> g.Netperf_sim.g_type = name) guards
  in
  Alcotest.(check bool) "write checks dominate counts" true
    ((get_g "Mem-write check").Netperf_sim.g_per_packet
    > (get_g "Kernel ind-call all").Netperf_sim.g_per_packet);
  Alcotest.(check bool) "entry = exit" true
    (Float.abs
       ((get_g "Function entry").Netperf_sim.g_per_packet
       -. (get_g "Function exit").Netperf_sim.g_per_packet)
    < 0.1);
  Alcotest.(check bool) "checked < all ind-calls" true
    ((get_g "Kernel ind-call checked").Netperf_sim.g_per_packet
    < (get_g "Kernel ind-call all").Netperf_sim.g_per_packet);
  Alcotest.(check bool) "guard cycles are a real fraction" true
    (m.Netperf_sim.m_guard_cycles_per_unit > 100.)

let test_writer_set_ablation () =
  let ws = Netperf_sim.writer_set_ablation ~pkts:1000 () in
  Alcotest.(check bool)
    (Printf.sprintf "elided fraction %.2f near 2/3" ws.Netperf_sim.ws_on_elided_fraction)
    true
    (ws.Netperf_sim.ws_on_elided_fraction > 0.5
    && ws.Netperf_sim.ws_on_elided_fraction < 0.8);
  Alcotest.(check bool) "tracking reduces checks" true
    (ws.Netperf_sim.ws_on_checked < ws.Netperf_sim.ws_off_checked)

let test_api_evolution_anchors () =
  let rows = Api_evolution.table () in
  Alcotest.(check int) "twenty releases" 20 (List.length rows);
  let v21 = List.find (fun r -> r.Api_evolution.version = "2.6.21") rows in
  let _, exp_t, _, fp_t, _ = Api_evolution.paper_anchor in
  Alcotest.(check int) "2.6.21 exported anchor" exp_t v21.Api_evolution.exported_total;
  Alcotest.(check int) "2.6.21 fptr anchor" fp_t v21.Api_evolution.fptr_total;
  (* growth is monotone; churn stays bounded *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Api_evolution.exported_total <= b.Api_evolution.exported_total && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "growth monotone" true (monotone rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Api_evolution.version ^ " churn modest")
        true
        (r.Api_evolution.exported_changed < r.Api_evolution.exported_total / 10))
    rows;
  (* determinism *)
  Alcotest.(check bool) "table deterministic" true (rows = Api_evolution.table ())

let test_module_overheads () =
  let rows = Module_bench.table ~ops:100 () in
  Alcotest.(check int) "five workloads" 5 (List.length rows);
  List.iter
    (fun (r : Module_bench.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: lxfi costs more (%.0f vs %.0f)" r.Module_bench.mb_module
           r.Module_bench.mb_lxfi_cycles r.Module_bench.mb_stock_cycles)
        true
        (r.Module_bench.mb_lxfi_cycles > r.Module_bench.mb_stock_cycles);
      Alcotest.(check bool)
        (r.Module_bench.mb_module ^ ": overhead bounded (< 4x)")
        true
        (r.Module_bench.mb_overhead < 3.0))
    rows

let () =
  Kernel_sim.Klog.quiet ();
  Alcotest.run "netperf"
    [
      ( "figure 12 shapes",
        [
          Alcotest.test_case "TCP throughput unaffected" `Quick
            test_tcp_throughput_unaffected;
          Alcotest.test_case "UDP TX drops ~35%" `Quick test_udp_tx_drops;
          Alcotest.test_case "UDP RX unaffected" `Quick test_udp_rx_unaffected;
          Alcotest.test_case "CPU inflation" `Quick test_cpu_always_higher_under_lxfi;
          Alcotest.test_case "RR: stock wins" `Quick test_rr_stock_wins;
          Alcotest.test_case "low latency hurts more" `Quick test_low_latency_hurts_more;
        ] );
      ( "figure 13",
        [
          Alcotest.test_case "guard count structure" `Quick test_fig13_counts;
          Alcotest.test_case "writer-set ablation" `Quick test_writer_set_ablation;
        ] );
      ( "figure 10",
        [ Alcotest.test_case "api evolution model" `Quick test_api_evolution_anchors ] );
      ( "extension",
        [ Alcotest.test_case "per-module overheads" `Quick test_module_overheads ] );
    ]

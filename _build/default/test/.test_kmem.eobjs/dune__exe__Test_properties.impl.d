test/test_properties.ml: Alcotest Annot Array Bytes Char Int64 Kernel_sim List Lxfi Mir Printf QCheck QCheck_alcotest String

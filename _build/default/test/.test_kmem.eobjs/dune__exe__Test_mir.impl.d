test/test_mir.ml: Alcotest Hashtbl Int64 Kernel_sim Kmem Kstate List Mir String Workloads

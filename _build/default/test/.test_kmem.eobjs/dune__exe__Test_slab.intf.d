test/test_slab.mli:

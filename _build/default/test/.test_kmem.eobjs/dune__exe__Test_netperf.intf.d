test/test_netperf.mli:

test/test_principal.ml: Alcotest Capability Config Kernel_sim Klog Kstate Loader Lxfi Mir Principal Runtime Violation

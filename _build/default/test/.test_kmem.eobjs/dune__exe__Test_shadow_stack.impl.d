test/test_shadow_stack.ml: Alcotest Config Kernel_sim Lxfi Principal Runtime Shadow_stack Violation

test/test_shadow_stack.mli:

test/test_microbench.ml: Alcotest Kernel_sim Lazy List Lxfi Microbench Printf Workloads

test/test_unload.ml: Alcotest Blockdev Can Dm_zero Econet Hashtbl Kernel_sim Klog Kmodules Kstate Ksys Lxfi Mod_common Rds Sockets

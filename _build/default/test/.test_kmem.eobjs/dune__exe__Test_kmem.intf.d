test/test_kmem.mli:

test/test_loader.ml: Alcotest Annot Capability Captable Config Hashtbl Kernel_sim Klog Kmem Kstate Ktypes List Loader Lxfi Mir Principal Rewriter Runtime Violation

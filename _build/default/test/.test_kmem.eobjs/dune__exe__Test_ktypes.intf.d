test/test_ktypes.mli:

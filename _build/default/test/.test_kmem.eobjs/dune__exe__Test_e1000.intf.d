test/test_e1000.mli:

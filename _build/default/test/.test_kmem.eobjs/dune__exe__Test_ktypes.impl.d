test/test_ktypes.ml: Alcotest Kernel_sim Kstate Ktypes List Netdev Pci Skbuff Sockets

test/test_annot.ml: Alcotest Annot Int64 List Result

test/test_kmem.ml: Alcotest Bytes Char Kernel_sim Kmem List Printf String

test/test_proto.ml: Alcotest Can Econet Hashtbl Kernel_sim Klog Kmem Kmodules Kstate Ksys Ktypes List Lxfi Mod_common QCheck QCheck_alcotest Rds Slab Sockets String Task

test/test_writer_set.mli:

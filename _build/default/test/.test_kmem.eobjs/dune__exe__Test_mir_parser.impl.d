test/test_mir_parser.ml: Alcotest Catalog E1000 Int64 Kernel_sim Kmodules Ksys List Lxfi Mir Mod_common Printf QCheck QCheck_alcotest Workloads

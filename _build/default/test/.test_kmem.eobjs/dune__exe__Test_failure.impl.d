test/test_failure.ml: Alcotest Annot E1000 Econet Int64 Kernel_sim Klog Kmem Kmodules Kstate Ksys Lxfi Mir Mod_common Netdev Nic Pci Result Skbuff Sockets

test/test_limitations.mli:

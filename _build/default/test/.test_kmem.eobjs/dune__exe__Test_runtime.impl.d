test/test_runtime.ml: Alcotest Annot Capability Config Hashtbl Inspect Int64 Kernel_sim Klog Kmem Kstate List Loader Lxfi Mir Principal Runtime Slab Stats String Violation

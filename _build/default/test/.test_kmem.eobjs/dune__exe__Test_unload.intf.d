test/test_unload.mli:

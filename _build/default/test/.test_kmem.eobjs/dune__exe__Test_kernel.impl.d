test/test_kernel.ml: Alcotest Int64 Irqchip Kernel_sim Klock Klog Kmem Kstate Ktypes List Netdev Pci Result Shm Skbuff Slab Sockets Task

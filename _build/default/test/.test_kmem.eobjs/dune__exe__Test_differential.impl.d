test/test_differential.ml: Alcotest Annot Bytes Hashtbl Kernel_sim Klog Kmem Kmodules Kstate Ksys List Lxfi Mir Mod_common QCheck QCheck_alcotest

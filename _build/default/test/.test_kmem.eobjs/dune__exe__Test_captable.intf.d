test/test_captable.mli:

test/test_limitations.ml: Alcotest Annot Econet Int64 Kernel_sim Klog Kmem Kmodules Kstate Ksys Ktypes Lxfi Mir Mod_common Slab Sockets

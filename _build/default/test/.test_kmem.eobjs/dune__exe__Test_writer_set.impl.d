test/test_writer_set.ml: Alcotest Capability Config Kernel_sim Lxfi Principal Runtime Writer_set

test/test_netperf.ml: Alcotest Api_evolution Float Kernel_sim Lazy List Module_bench Netperf_sim Printf Workloads

test/test_mir_parser.mli:

test/test_captable.ml: Alcotest Captable Lxfi Unix

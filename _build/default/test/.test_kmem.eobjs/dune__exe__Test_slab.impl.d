test/test_slab.ml: Alcotest Kcycles Kernel_sim Kmem List Printf Slab

test/test_rewriter.ml: Alcotest Hashtbl Kernel_sim List Lxfi Mir

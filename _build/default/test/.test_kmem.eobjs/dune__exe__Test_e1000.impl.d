test/test_e1000.ml: Alcotest Annot E1000 Hashtbl Irqchip Kernel_sim Klog Kmodules Kstate Ksys Lxfi Mir Mod_common Netdev Nic Pci Printf Skbuff Slab

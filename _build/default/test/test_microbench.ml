(* Tests pinning the Figure 11 microbenchmark shapes. *)

open Workloads

let noopt =
  {
    Lxfi.Config.lxfi with
    Lxfi.Config.opt_elide_safe_writes = false;
    opt_inline_trivial = false;
  }

let results = lazy (Microbench.all ~iters:100 ())
let results_noopt = lazy (Microbench.all ~iters:100 ~config_lxfi:noopt ())

let get l name = List.find (fun r -> r.Microbench.b_name = name) (Lazy.force l)

let test_results_agree_across_modes () =
  (* Microbench.run itself asserts stock/lxfi output equality; getting
     results at all is the test, plus sanity on the values. *)
  List.iter
    (fun (r : Microbench.result) ->
      Alcotest.(check bool)
        (r.Microbench.b_name ^ " ran")
        true
        (r.Microbench.b_stock_cycles > 0 && r.Microbench.b_lxfi_cycles > 0))
    (Lazy.force results)

let test_hotlist_negligible () =
  let r = get results "hotlist" in
  Alcotest.(check bool)
    (Printf.sprintf "hotlist slowdown %.1f%% < 5%%" (100. *. r.Microbench.b_slowdown))
    true
    (r.Microbench.b_slowdown < 0.05)

let test_md5_small_with_elision () =
  let r = get results "MD5" in
  Alcotest.(check bool)
    (Printf.sprintf "MD5 slowdown %.1f%% < 5%%" (100. *. r.Microbench.b_slowdown))
    true
    (r.Microbench.b_slowdown < 0.05)

let test_md5_large_without_elision () =
  let w = get results "MD5" and wo = get results_noopt "MD5" in
  Alcotest.(check bool)
    (Printf.sprintf "no-opt MD5 %.0f%% much worse than %.0f%%"
       (100. *. wo.Microbench.b_slowdown)
       (100. *. w.Microbench.b_slowdown))
    true
    (wo.Microbench.b_slowdown > 10. *. (w.Microbench.b_slowdown +. 0.01))

let test_lld_moderate_with_inlining () =
  let w = get results "lld" and wo = get results_noopt "lld" in
  Alcotest.(check bool) "lld slowdown moderate (<60%)" true
    (w.Microbench.b_slowdown < 0.60);
  Alcotest.(check bool) "no-opt lld at least 2x worse" true
    (wo.Microbench.b_slowdown > 2. *. w.Microbench.b_slowdown)

let test_code_size_ratios () =
  List.iter
    (fun (r : Microbench.result) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s code ratio %.2f in [1.0, 1.5]" r.Microbench.b_name
           r.Microbench.b_code_ratio)
        true
        (r.Microbench.b_code_ratio >= 1.0 && r.Microbench.b_code_ratio <= 1.5))
    (Lazy.force results)

let test_ordering_matches_paper () =
  (* paper ordering: hotlist <= MD5 < lld *)
  let h = get results "hotlist" and m = get results "MD5" and l = get results "lld" in
  Alcotest.(check bool) "lld is the worst" true
    (l.Microbench.b_slowdown > m.Microbench.b_slowdown
    && l.Microbench.b_slowdown > h.Microbench.b_slowdown)

let test_divergence_detected () =
  (* a benchmark whose instrumented result differs must be reported *)
  Alcotest.(check bool) "equality enforced by harness" true
    (try
       ignore (Microbench.run "hotlist" Microbench.hotlist_prog ~iters:10);
       true
     with Invalid_argument _ -> false)

let () =
  Kernel_sim.Klog.quiet ();
  Alcotest.run "microbench"
    [
      ( "figure 11",
        [
          Alcotest.test_case "all run + agree" `Quick test_results_agree_across_modes;
          Alcotest.test_case "hotlist ~0%" `Quick test_hotlist_negligible;
          Alcotest.test_case "MD5 small (elision)" `Quick test_md5_small_with_elision;
          Alcotest.test_case "MD5 large without elision" `Quick
            test_md5_large_without_elision;
          Alcotest.test_case "lld moderate (inlining)" `Quick
            test_lld_moderate_with_inlining;
          Alcotest.test_case "code size ratios" `Quick test_code_size_ratios;
          Alcotest.test_case "ordering" `Quick test_ordering_matches_paper;
          Alcotest.test_case "divergence detection" `Quick test_divergence_detected;
        ] );
    ]

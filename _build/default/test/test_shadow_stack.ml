(* Tests of the per-thread shadow stack (§5): return-token validation,
   principal save/restore, interrupt nesting. *)

open Lxfi

let mk () = Shadow_stack.create ~mem_base:0x3_0000_4000 ~mem_len:0x4000

let some_principal name =
  Some (Principal.make ~kind:Principal.Shared ~owner:name ~primary_name:0)

let test_push_pop () =
  let s = mk () in
  let p = some_principal "m" in
  let tok = Shadow_stack.push s ~wrapper:"w" ~saved_principal:p in
  Alcotest.(check int) "depth" 1 (Shadow_stack.depth s);
  let restored = Shadow_stack.pop s ~wrapper:"w" ~token:tok in
  Alcotest.(check bool) "principal restored" true (restored = p);
  Alcotest.(check int) "empty" 0 (Shadow_stack.depth s)

let test_lifo_nesting () =
  let s = mk () in
  let t1 = Shadow_stack.push s ~wrapper:"outer" ~saved_principal:(some_principal "a") in
  let t2 = Shadow_stack.push s ~wrapper:"inner" ~saved_principal:(some_principal "b") in
  let pb = Shadow_stack.pop s ~wrapper:"inner" ~token:t2 in
  let pa = Shadow_stack.pop s ~wrapper:"outer" ~token:t1 in
  (match (pb, pa) with
  | Some b, Some a ->
      Alcotest.(check string) "inner restores b" "b" b.Principal.owner;
      Alcotest.(check string) "outer restores a" "a" a.Principal.owner
  | _ -> Alcotest.fail "principals lost");
  Alcotest.(check (option string)) "top wrapper empty" None (Shadow_stack.top_wrapper s)

let expect_violation f =
  try
    f ();
    Alcotest.fail "expected shadow-stack violation"
  with Violation.Violation v ->
    Alcotest.(check string) "kind" "shadow-stack" (Violation.kind_name v.Violation.v_kind)

let test_token_mismatch () =
  let s = mk () in
  let t1 = Shadow_stack.push s ~wrapper:"outer" ~saved_principal:None in
  let _t2 = Shadow_stack.push s ~wrapper:"inner" ~saved_principal:None in
  (* returning through the outer frame while inner is live = corrupted
     return address *)
  expect_violation (fun () -> ignore (Shadow_stack.pop s ~wrapper:"outer" ~token:t1))

let test_pop_empty () =
  let s = mk () in
  expect_violation (fun () -> ignore (Shadow_stack.pop s ~wrapper:"w" ~token:1))

let test_stale_token_reuse () =
  let s = mk () in
  let t = Shadow_stack.push s ~wrapper:"w" ~saved_principal:None in
  ignore (Shadow_stack.pop s ~wrapper:"w" ~token:t);
  expect_violation (fun () -> ignore (Shadow_stack.pop s ~wrapper:"w" ~token:t))

let test_overflow () =
  let s = Shadow_stack.create ~mem_base:0 ~mem_len:64 (* 4 frames *) in
  expect_violation (fun () ->
      for _ = 1 to 10 do
        ignore (Shadow_stack.push s ~wrapper:"w" ~saved_principal:None)
      done)

let test_max_depth_tracking () =
  let s = mk () in
  let t1 = Shadow_stack.push s ~wrapper:"a" ~saved_principal:None in
  let t2 = Shadow_stack.push s ~wrapper:"b" ~saved_principal:None in
  ignore (Shadow_stack.pop s ~wrapper:"b" ~token:t2);
  ignore (Shadow_stack.pop s ~wrapper:"a" ~token:t1);
  Alcotest.(check int) "max depth recorded" 2 s.Shadow_stack.max_depth

(* IRQ semantics through the runtime: an interrupt must strip module
   privileges and restore them at exit. *)
let test_irq_save_restore () =
  let kst = Kernel_sim.Kstate.boot () in
  let rt = Runtime.create ~kst ~config:Config.lxfi in
  let p = Principal.make ~kind:Principal.Instance ~owner:"m" ~primary_name:0x9000 in
  rt.Runtime.current <- Some p;
  let tok = Runtime.irq_enter rt in
  Alcotest.(check bool) "irq runs as kernel" true (rt.Runtime.current = None);
  Runtime.irq_exit rt tok;
  (match rt.Runtime.current with
  | Some q -> Alcotest.(check int) "module principal restored" p.Principal.id q.Principal.id
  | None -> Alcotest.fail "principal lost");
  (* nested irqs *)
  let t1 = Runtime.irq_enter rt in
  let t2 = Runtime.irq_enter rt in
  Runtime.irq_exit rt t2;
  Runtime.irq_exit rt t1;
  Alcotest.(check bool) "still the module principal" true
    (match rt.Runtime.current with Some q -> q.Principal.id = p.Principal.id | None -> false)

let () =
  Alcotest.run "shadow_stack"
    [
      ( "frames",
        [
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "LIFO nesting" `Quick test_lifo_nesting;
          Alcotest.test_case "token mismatch" `Quick test_token_mismatch;
          Alcotest.test_case "pop empty" `Quick test_pop_empty;
          Alcotest.test_case "stale token" `Quick test_stale_token_reuse;
          Alcotest.test_case "overflow" `Quick test_overflow;
          Alcotest.test_case "max depth" `Quick test_max_depth_tracking;
        ] );
      ("irq", [ Alcotest.test_case "irq save/restore" `Quick test_irq_save_restore ]);
    ]

(* Tests of the compile-time rewriter (§4.2): guard insertion, the
   safe-store elision, trivial-function inlining, and the cases the
   rewriter must refuse. *)

open Mir.Builder
module RW = Lxfi.Rewriter

let cfg = Lxfi.Config.lxfi

let cfg_noopt =
  { cfg with Lxfi.Config.opt_elide_safe_writes = false; opt_inline_trivial = false }

let mk funcs = prog "t" ~imports:[] ~globals:[ global "g" 64 ] ~funcs

let rec count_guards_stmt = function
  | Mir.Ast.Guard _ -> 1
  | Mir.Ast.If (_, a, b) -> count_guards a + count_guards b
  | Mir.Ast.While (_, b) -> count_guards b
  | _ -> 0

and count_guards stmts = List.fold_left (fun acc s -> acc + count_guards_stmt s) 0 stmts

let guards_in prog =
  List.fold_left (fun acc (f : Mir.Ast.func) -> acc + count_guards f.Mir.Ast.body) 0
    prog.Mir.Ast.funcs

let test_store_gets_guard () =
  let p = mk [ func "f" [] [ store64 (glob "g") (ii 1); ret0 ] ] in
  let p', r = RW.instrument cfg_noopt p in
  Alcotest.(check int) "one write guard" 1 r.RW.r_write_guards;
  Alcotest.(check int) "guard statement present" 1 (guards_in p');
  Alcotest.(check bool) "size grew" true (r.RW.r_inst_size > r.RW.r_orig_size)

let test_stock_unchanged () =
  let p = mk [ func "f" [] [ store64 (glob "g") (ii 1); ret0 ] ] in
  let p', r = RW.instrument Lxfi.Config.stock p in
  Alcotest.(check int) "no guards" 0 (guards_in p');
  Alcotest.(check int) "size unchanged" r.RW.r_orig_size r.RW.r_inst_size

let test_safe_store_elided () =
  let p =
    mk
      [
        func "f" []
          [
            alloca "buf" 32;
            store64 (v "buf") (ii 1) (* offset 0, in bounds *);
            store64 (v "buf" +: ii 24) (ii 2) (* offset 24+8 = 32, in bounds *);
            store64 (v "buf" +: ii 25) (ii 3) (* 25+8 > 32: out of bounds *);
            store64 (glob "g") (ii 4) (* not an alloca *);
            ret0;
          ];
      ]
  in
  let _, r = RW.instrument cfg p in
  Alcotest.(check int) "two elided" 2 r.RW.r_write_elided;
  Alcotest.(check int) "two guarded" 2 r.RW.r_write_guards

let test_elision_needs_stable_binding () =
  (* rebinding the alloca variable kills the bound, so the store must
     be guarded *)
  let p =
    mk
      [
        func "f" []
          [
            alloca "buf" 32;
            let_ "buf" (v "buf" +: ii 16);
            store64 (v "buf") (ii 1);
            ret0;
          ];
      ]
  in
  let _, r = RW.instrument cfg p in
  Alcotest.(check int) "no elision after rebind" 0 r.RW.r_write_elided;
  Alcotest.(check int) "guarded" 1 r.RW.r_write_guards

let test_indirect_call_guarded () =
  let p =
    mk
      [
        func "f" []
          [
            let_ "fp" (load64 (glob "g"));
            let_ "x" (call_ind (v "fp") [ ii 1 ]);
            ret (v "x");
          ];
      ]
  in
  let p', r = RW.instrument cfg p in
  Alcotest.(check int) "one indirect guard" 1 r.RW.r_indcall_guards;
  Alcotest.(check int) "guard present" 1 (guards_in p')

let test_nested_indirect_rejected () =
  (* an indirect call buried in a subexpression cannot be guarded; the
     rewriter refuses it like the paper's plugin refuses untraceable
     pointers (§7) *)
  let p =
    mk
      [
        func "f" []
          [ ret (ii 1 +: call_ind (load64 (glob "g")) []) ];
      ]
  in
  match RW.instrument cfg p with
  | exception RW.Rewrite_error _ -> ()
  | _ -> Alcotest.fail "expected rewrite error"

let test_trivial_inlining () =
  let p =
    mk
      [
        func "double" [ "x" ] [ ret (v "x" *: ii 2) ];
        func "f" [] [ ret (call "double" [ ii 21 ]) ];
      ]
  in
  let p', r = RW.instrument cfg p in
  Alcotest.(check int) "one call inlined" 1 r.RW.r_inlined_calls;
  Alcotest.(check int) "leaf dropped" 1 r.RW.r_dropped_funcs;
  Alcotest.(check int) "one function remains" 1 (List.length p'.Mir.Ast.funcs)

let test_inlining_preserves_semantics () =
  (* run the instrumented program and compare with the original *)
  let p =
    mk
      [
        func "triple" [ "x" ] [ ret (v "x" *: ii 3) ];
        func "f" [ "n" ] [ ret (call "triple" [ v "n" ] +: call "triple" [ ii 2 ]) ];
      ]
  in
  let run prog =
    let kst = Kernel_sim.Kstate.boot () in
    let globals = Hashtbl.create 4 in
    List.iter
      (fun (g : Mir.Ast.glob) ->
        Hashtbl.replace globals g.Mir.Ast.gname
          (Kernel_sim.Kstate.alloc_module_area kst (max 16 g.Mir.Ast.gsize)))
      prog.Mir.Ast.globals;
    let ctx =
      Mir.Interp.create ~kst ~prog
        ~global_addr:(Hashtbl.find globals)
        ~func_addr:(fun f -> Hashtbl.hash f)
        ~ext_addr:(fun _ -> 0)
        ~call_ext:(fun _ _ -> 0L)
        ~guard_write:(fun ~addr:_ ~size:_ -> ())
        ~guard_indcall:(fun ~target:_ -> ())
        ~on_entry:(fun _ -> ())
        ~on_exit:(fun _ -> ())
        ~hooks_enabled:false
        ~stack_base:(Kernel_sim.Kstate.alloc_module_area kst 4096)
        ~stack_len:4096
    in
    Mir.Interp.run ctx "f" [ 5L ]
  in
  let p', _ = RW.instrument cfg p in
  Alcotest.(check int64) "same result" (run p) (run p')

let test_no_double_duplication_of_effects () =
  (* a trivial function whose parameter appears twice must NOT be
     inlined when the argument could carry effects *)
  let p =
    mk
      [
        func "square" [ "x" ] [ ret (v "x" *: v "x") ];
        func "bump_and_get" []
          [
            store64 (glob "g") (load64 (glob "g") +: ii 1);
            ret (load64 (glob "g"));
          ];
        func "f" [] [ ret (call "square" [ call "bump_and_get" [] ]) ];
      ]
  in
  let p', _ = RW.instrument cfg p in
  (* square must still exist because it was not inlined *)
  Alcotest.(check bool) "square survives" true
    (Mir.Ast.find_func p' "square" <> None)

let test_exported_functions_survive_inlining () =
  let p =
    prog "t" ~imports:[] ~globals:[]
      ~funcs:[ func "cb" [ "x" ] [ ret (v "x") ] ~export:"bench.entry" ]
  in
  let p', _ = RW.instrument cfg p in
  Alcotest.(check bool) "exported trivial function kept" true
    (Mir.Ast.find_func p' "cb" <> None)

let test_address_taken_survive () =
  let p =
    prog "t" ~imports:[]
      ~globals:[ global "tbl" 8 ~init:[ init_func 0 "cb" ] ]
      ~funcs:
        [
          func "cb" [ "x" ] [ ret (v "x") ];
          func "f" [] [ ret (call "cb" [ ii 3 ]) ];
        ]
  in
  let p', _ = RW.instrument cfg p in
  Alcotest.(check bool) "address-taken function kept" true
    (Mir.Ast.find_func p' "cb" <> None)

let test_double_instrumentation_rejected () =
  let p = mk [ func "f" [] [ store64 (glob "g") (ii 1); ret0 ] ] in
  let p', _ = RW.instrument cfg p in
  match RW.instrument cfg p' with
  | exception RW.Rewrite_error _ -> ()
  | _ -> Alcotest.fail "re-instrumenting must fail"

let () =
  Alcotest.run "rewriter"
    [
      ( "guards",
        [
          Alcotest.test_case "store guarded" `Quick test_store_gets_guard;
          Alcotest.test_case "stock untouched" `Quick test_stock_unchanged;
          Alcotest.test_case "safe stores elided" `Quick test_safe_store_elided;
          Alcotest.test_case "rebind kills elision" `Quick test_elision_needs_stable_binding;
          Alcotest.test_case "indirect call guarded" `Quick test_indirect_call_guarded;
          Alcotest.test_case "nested indirect rejected" `Quick test_nested_indirect_rejected;
          Alcotest.test_case "double instrumentation rejected" `Quick
            test_double_instrumentation_rejected;
        ] );
      ( "inlining",
        [
          Alcotest.test_case "trivial call inlined" `Quick test_trivial_inlining;
          Alcotest.test_case "semantics preserved" `Quick test_inlining_preserves_semantics;
          Alcotest.test_case "effectful args not duplicated" `Quick
            test_no_double_duplication_of_effects;
          Alcotest.test_case "exports survive" `Quick test_exported_functions_survive_inlining;
          Alcotest.test_case "address-taken survive" `Quick test_address_taken_survive;
        ] );
    ]

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8) from this reproduction.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig12   -- one section

   Sections: fig7 fig8 fig9 fig10 fig11 fig12 fig13 guards ablation
   captable rewrite overheads faultsim lifecycle; "netperf" is an
   alias for fig12+fig13.
   Paper reference values are printed alongside; EXPERIMENTS.md records
   the comparison run-by-run.

   Flags:
     --json              also write BENCH_<section>.json per section
                         (wall-clock seconds + the section's data,
                         including simulated cycles and guard counters
                         where the section measures them)
     --check FILE        enforcement-neutrality check: recompute the
                         deterministic guard counters (fig13 + faultsim)
                         and compare byte-for-byte against FILE; exit 1
                         on mismatch.  Runs instead of the sections.
     --write-ref FILE    regenerate FILE for --check
     --trace             additionally run a traced netperf op mix:
                         prints the per-principal profile and writes
                         TRACE_netperf.json (Chrome trace-event format) *)

open Kmodules
open Workloads
module R = Report

let json_mode = ref false
let check_file = ref None
let write_ref_file = ref None
let trace_mode = ref false

let cli_sections =
  let rec strip = function
    | [] -> []
    | "--json" :: rest ->
        json_mode := true;
        strip rest
    | "--trace" :: rest ->
        trace_mode := true;
        strip rest
    | "--check" :: file :: rest ->
        check_file := Some file;
        strip rest
    | "--write-ref" :: file :: rest ->
        write_ref_file := Some file;
        strip rest
    | arg :: rest -> arg :: strip rest
  in
  let named = strip (Array.to_list Sys.argv |> List.tl) in
  (* "netperf" = the end-to-end netperf pipeline, fig12 + fig13 *)
  List.concat_map (function "netperf" -> [ "fig12"; "fig13" ] | s -> [ s ]) named

let section_wanted name = cli_sections = [] || List.mem name cli_sections

(* ------------------------------------------------------------------ *)
(* Figure 7: components and lines of code.                             *)
(* ------------------------------------------------------------------ *)

let count_loc dir =
  let rec files d =
    if Sys.is_directory d then
      Sys.readdir d |> Array.to_list
      |> List.concat_map (fun f -> files (Filename.concat d f))
    else if Filename.check_suffix d ".ml" || Filename.check_suffix d ".mli" then [ d ]
    else []
  in
  List.fold_left
    (fun acc f ->
      let ic = open_in f in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> close_in ic);
      acc + !n)
    0
    (try files dir with Sys_error _ -> [])

let fig7 () =
  let components =
    [
      ("Kernel substrate (lib/kernel)", "lib/kernel", "(Linux itself)");
      ("Module IR + interpreter (lib/mir)", "lib/mir", "(clang IR)");
      ("Annotation language (lib/annot)", "lib/annot", "(clang attrs)");
      ("Module rewriting plugin (rewriter.ml)", "lib/lxfi/rewriter.ml", "1,452");
      ("Runtime checker (lib/lxfi sans rewriter)", "lib/lxfi", "4,704");
      ("Annotated module corpus (lib/kmodules)", "lib/kmodules", "(10 modules)");
      ("Exploit reproductions (lib/exploits)", "lib/exploits", "(3 exploits)");
      ("Workloads + models (lib/workloads)", "lib/workloads", "(netperf &c)");
    ]
  in
  let rows =
    List.map
      (fun (name, path, paper) ->
        let loc =
          if path = "lib/lxfi" then count_loc path - count_loc "lib/lxfi/rewriter.ml"
          else count_loc path
        in
        [ name; R.int_ loc; paper ])
      components
  in
  R.table ~title:"Figure 7: components of LXFI (this reproduction's lines of code)"
    ~header:[ "Component"; "LoC"; "paper" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 8: exploit prevention.                                       *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  let outcome (o : Exploits.Exploit.outcome) =
    match o with
    | Exploits.Exploit.Escalated d -> "ESCALATED (" ^ d ^ ")"
    | Exploits.Exploit.Prevented v ->
        Printf.sprintf "prevented [%s]" (Lxfi.Violation.kind_name v.Lxfi.Violation.v_kind)
    | Exploits.Exploit.Not_exploitable d -> "no exploit (" ^ d ^ ")"
  in
  let rows =
    List.map
      (fun (e : Exploits.Exploit.t) ->
        [
          e.Exploits.Exploit.name;
          e.Exploits.Exploit.cve;
          outcome (e.Exploits.Exploit.run Lxfi.Config.stock);
          outcome (e.Exploits.Exploit.run Lxfi.Config.xfi);
          outcome (e.Exploits.Exploit.run Lxfi.Config.lxfi);
        ])
      Exploits.Pid_rootkit.all
  in
  R.table
    ~title:
      "Figure 8: privilege-escalation exploits vs. enforcement mode (paper: LXFI \
       prevents all)"
    ~header:[ "Exploit"; "CVE"; "stock"; "xfi-style"; "LXFI" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 9: annotation effort.                                        *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let rows, total_fn, total_fp = Catalog.annotation_effort sys in
  let body =
    List.map
      (fun (r : Catalog.effort_row) ->
        [
          r.Catalog.e_category;
          r.Catalog.e_module;
          R.int_ r.Catalog.e_functions_all;
          R.int_ r.Catalog.e_functions_unique;
          R.int_ r.Catalog.e_fptrs_all;
          R.int_ r.Catalog.e_fptrs_unique;
        ])
      rows
    @ [ [ ""; "Total (distinct)"; R.int_ total_fn; ""; R.int_ total_fp; "" ] ]
  in
  R.table
    ~title:
      "Figure 9: annotated functions and function pointers per module (paper \
       totals: 334 functions, 155 fptrs over a much larger API surface)"
    ~header:[ "Category"; "Module"; "#fn all"; "uniq"; "#fptr all"; "uniq" ]
    body

(* ------------------------------------------------------------------ *)
(* Figure 10: kernel API churn.                                        *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  let rows =
    List.map
      (fun (r : Api_evolution.row) ->
        [
          r.Api_evolution.version;
          r.Api_evolution.released;
          R.int_ r.Api_evolution.exported_total;
          R.int_ r.Api_evolution.exported_changed;
          R.int_ r.Api_evolution.fptr_total;
          R.int_ r.Api_evolution.fptr_changed;
        ])
      (Api_evolution.table ())
  in
  R.table
    ~title:
      "Figure 10: exported functions / struct function pointers per kernel \
       release (generative model; anchored at 2.6.21 = 5583/272 and 3725/183)"
    ~header:[ "version"; "rel."; "#exported"; "changed"; "#fptrs"; "changed" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 11: SFI microbenchmarks.                                     *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  let paper = [ ("hotlist", "1.14x", "0%"); ("lld", "1.12x", "11%"); ("MD5", "1.15x", "2%") ] in
  let rows =
    List.map
      (fun (r : Microbench.result) ->
        let p_sz, p_sd =
          match List.assoc_opt r.Microbench.b_name (List.map (fun (a, b, c) -> (a, (b, c))) paper) with
          | Some (b, c) -> (b, c)
          | None -> ("-", "-")
        in
        [
          r.Microbench.b_name;
          Printf.sprintf "%.2fx" r.Microbench.b_code_ratio;
          R.pct1 r.Microbench.b_slowdown;
          p_sz;
          p_sd;
        ])
      (Microbench.all ())
  in
  R.table
    ~title:"Figure 11: SFI microbenchmarks — code size and slowdown under LXFI"
    ~header:[ "Benchmark"; "dCode"; "slowdown"; "paper dCode"; "paper slowdown" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 12: netperf.                                                 *)
(* ------------------------------------------------------------------ *)

let paper_fig12 =
  [
    ("TCP_STREAM TX", "836 Mbit/s", "828 Mbit/s", "13%", "48%");
    ("TCP_STREAM RX", "770 Mbit/s", "770 Mbit/s", "29%", "64%");
    ("UDP_STREAM TX", "3.1M pkt/s", "2.0M pkt/s", "54%", "100%");
    ("UDP_STREAM RX", "2.3M pkt/s", "2.3M pkt/s", "46%", "100%");
    ("TCP_RR", "9.4K Tx/s", "9.4K Tx/s", "18%", "46%");
    ("UDP_RR", "10K Tx/s", "8.6K Tx/s", "18%", "40%");
    ("TCP_RR (1-switch)", "16K Tx/s", "9.8K Tx/s", "24%", "43%");
    ("UDP_RR (1-switch)", "20K Tx/s", "10K Tx/s", "23%", "47%");
  ]

let fmt_rate unit_ v =
  if unit_ = "Mbit/s" then Printf.sprintf "%.0f %s" v unit_
  else if v >= 1e6 then Printf.sprintf "%.2fM %s" (v /. 1e6) unit_
  else Printf.sprintf "%.1fK %s" (v /. 1e3) unit_

let fig12 () =
  let data = Netperf_sim.figure12 () in
  let rows =
    List.map
      (fun (r : Netperf_sim.row) ->
        let ps, pl, pcs, pcl =
          match
            List.find_opt (fun (t, _, _, _, _) -> t = r.Netperf_sim.r_test) paper_fig12
          with
          | Some (_, a, b, c, d) -> (a, b, c, d)
          | None -> ("-", "-", "-", "-")
        in
        [
          r.Netperf_sim.r_test;
          fmt_rate r.Netperf_sim.r_unit r.Netperf_sim.r_stock;
          fmt_rate r.Netperf_sim.r_unit r.Netperf_sim.r_lxfi;
          R.pct r.Netperf_sim.r_stock_cpu;
          R.pct r.Netperf_sim.r_lxfi_cpu;
          Printf.sprintf "[paper: %s / %s; cpu %s / %s]" ps pl pcs pcl;
        ])
      data
  in
  R.table ~title:"Figure 12: netperf with stock and LXFI-isolated e1000"
    ~header:[ "Test"; "stock"; "LXFI"; "cpu"; "cpu(LXFI)"; "paper" ]
    rows;
  Some
    (Bench_json.List
       (List.map
          (fun (r : Netperf_sim.row) ->
            Bench_json.Obj
              [
                ("test", Bench_json.Str r.Netperf_sim.r_test);
                ("unit", Bench_json.Str r.Netperf_sim.r_unit);
                ("stock", Bench_json.Float r.Netperf_sim.r_stock);
                ("lxfi", Bench_json.Float r.Netperf_sim.r_lxfi);
                ("stock_cpu", Bench_json.Float r.Netperf_sim.r_stock_cpu);
                ("lxfi_cpu", Bench_json.Float r.Netperf_sim.r_lxfi_cpu);
              ])
          data))

(* ------------------------------------------------------------------ *)
(* Figure 13 + guard primitive timing (bechamel).                      *)
(* ------------------------------------------------------------------ *)

open Bechamel

let measure_ns ~name f =
  let test = Test.make ~name (Staged.stage f) in
  let elt = List.hd (Test.elements test) in
  let cfg = Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
  match Analyze.OLS.estimates est with
  | Some (x :: _) -> x
  | _ -> Float.nan

(* Host-measured cost of the actual runtime guard implementations,
   playing the role of the paper's "time per guard" column. *)
let guard_primitive_timings () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let pcidev, _nic = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let h = Mod_common.install sys E1000.spec in
  let rt = sys.Ksys.rt in
  let mi = h.Mod_common.mi in
  let kst = sys.Ksys.kst in
  rt.Lxfi.Runtime.current <- Some mi.Lxfi.Runtime.mi_shared;
  (* a module-owned word to aim checks at: inside the module stack,
     which the shared principal holds WRITE for *)
  let lock = mi.Lxfi.Runtime.mi_stack_base + 128 in
  let ops = Mod_common.gaddr mi "e1000_ops" in
  let xmit_slot =
    ops + Kernel_sim.Ktypes.offset kst.Kernel_sim.Kstate.types "net_device_ops" "ndo_start_xmit"
  in
  let dev = Kernel_sim.Pci.pci_get_drvdata sys.Ksys.pci pcidev in
  let qdisc =
    Kernel_sim.Kmem.read_ptr kst.Kernel_sim.Kstate.mem
      (dev + Kernel_sim.Ktypes.offset kst.Kernel_sim.Kstate.types "net_device" "qdisc")
  in
  let qdisc_slot = qdisc in
  let spin_init = Lxfi.Runtime.find_kexport rt "spin_lock_init" in
  (* Use the open/stop pair so the target invocation is cheap. *)
  let open_slot =
    ops + Kernel_sim.Ktypes.offset kst.Kernel_sim.Kstate.types "net_device_ops" "ndo_open"
  in
  [
    ( "Mem-write check (guard_write)",
      measure_ns ~name:"guard_write" (fun () ->
          Lxfi.Runtime.guard_write rt mi ~addr:lock ~size:4) );
    ( "Annotation action (check via wrapper)",
      measure_ns ~name:"annotated-kexport" (fun () ->
          ignore (Lxfi.Runtime.call_kexport rt spin_init [ Int64.of_int lock ])) );
    ( "Function entry guard",
      measure_ns ~name:"entry" (fun () -> Lxfi.Runtime.entry_guard rt) );
    ( "Function exit guard",
      measure_ns ~name:"exit" (fun () -> Lxfi.Runtime.exit_guard rt) );
    ( "Kernel ind-call, checked (module slot)",
      measure_ns ~name:"indcall-checked" (fun () ->
          ignore
            (Lxfi.Runtime.kernel_indirect_call rt ~slot:open_slot
               ~ftype:"net_device_ops.ndo_open" [ Int64.of_int dev ])) );
    ( "Kernel ind-call, elided (kernel slot)",
      measure_ns ~name:"indcall-elided" (fun () ->
          ignore
            (Lxfi.Runtime.kernel_indirect_call rt ~slot:qdisc_slot
               ~ftype:"qdisc_ops.enqueue"
               [ Int64.of_int qdisc; Int64.of_int 0 ])) );
    ( "Writer-set lookup",
      measure_ns ~name:"wset" (fun () ->
          ignore (Lxfi.Writer_set.maybe_written rt.Lxfi.Runtime.wset xmit_slot)) );
    ( "Capability table has_write",
      measure_ns ~name:"has_write" (fun () ->
          ignore
            (Lxfi.Captable.has_write mi.Lxfi.Runtime.mi_shared.Lxfi.Principal.caps
               ~addr:lock ~size:4)) );
  ]

let fig13 () =
  let guards, m = Netperf_sim.figure13 () in
  let rows =
    List.map
      (fun (g : Netperf_sim.guard_row) ->
        [
          g.Netperf_sim.g_type;
          Printf.sprintf "%.1f" g.Netperf_sim.g_per_packet;
          (if Float.is_nan g.Netperf_sim.g_paper_per_packet then "-"
           else Printf.sprintf "%.1f" g.Netperf_sim.g_paper_per_packet);
        ])
      guards
  in
  R.table
    ~title:
      (Printf.sprintf
         "Figure 13: guards per packet on UDP_STREAM TX (simulated: %.0f \
          cycles/pkt, of which %.0f guard cycles)"
         m.Netperf_sim.m_cycles_per_unit m.Netperf_sim.m_guard_cycles_per_unit)
    ~header:[ "Guard type"; "per packet"; "paper" ]
    rows;
  Some
    (Bench_json.Obj
       [
         ( "guards_per_packet",
           Bench_json.List
             (List.map
                (fun (g : Netperf_sim.guard_row) ->
                  Bench_json.Obj
                    [
                      ("type", Bench_json.Str g.Netperf_sim.g_type);
                      ("per_packet", Bench_json.Float g.Netperf_sim.g_per_packet);
                      ("paper", Bench_json.Float g.Netperf_sim.g_paper_per_packet);
                    ])
                guards) );
         ("measure", Bench_json.of_measure m);
       ])

let guards_section () =
  let timings = guard_primitive_timings () in
  let rows = List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f ns" ns ]) timings in
  R.table
    ~title:
      "Guard primitives measured on this host with bechamel (the paper's \
       'time per guard' column measured 14-124 ns on an i3-550)"
    ~header:[ "Primitive"; "ns/op" ]
    rows;
  Some
    (Bench_json.List
       (List.map
          (fun (name, ns) ->
            Bench_json.Obj
              [ ("primitive", Bench_json.Str name); ("host_ns", Bench_json.Float ns) ])
          timings))

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)
(* ------------------------------------------------------------------ *)

let ablation () =
  let ws = Netperf_sim.writer_set_ablation () in
  R.table
    ~title:
      "Ablation E8: writer-set tracking (paper: fast path elides ~2/3 of \
       kernel indirect-call checks)"
    ~header:[ "Metric"; "value" ]
    [
      [ "elided fraction (tracking on)"; R.pct ws.Netperf_sim.ws_on_elided_fraction ];
      [ "checked ind-calls/pkt (on)"; R.f1 ws.Netperf_sim.ws_on_checked ];
      [ "checked ind-calls/pkt (off)"; R.f1 ws.Netperf_sim.ws_off_checked ];
    ];
  let noopt =
    {
      Lxfi.Config.lxfi with
      Lxfi.Config.opt_elide_safe_writes = false;
      opt_inline_trivial = false;
    }
  in
  let with_ = Microbench.all () in
  let without = Microbench.all ~config_lxfi:noopt () in
  let rows =
    List.map2
      (fun (a : Microbench.result) (b : Microbench.result) ->
        [
          a.Microbench.b_name;
          R.pct1 a.Microbench.b_slowdown;
          R.pct1 b.Microbench.b_slowdown;
          Printf.sprintf "%.2fx" a.Microbench.b_code_ratio;
          Printf.sprintf "%.2fx" b.Microbench.b_code_ratio;
        ])
      with_ without
  in
  R.table
    ~title:
      "Ablation E9: rewriter optimizations off (binary-rewriting-XFI regime: \
       paper reports lld 93%, MD5 27% for XFI)"
    ~header:[ "Benchmark"; "slowdown (opt)"; "slowdown (no-opt)"; "dCode"; "no-opt" ]
    rows

(* Rewriter statistics over the whole module corpus: the per-module
   code-size ratios and guard populations (the XFI paper reports the
   same table for its benchmarks; Figure 11 covers only the three
   microbenchmarks). *)
let rewrite_table () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let rows =
    List.map
      (fun (spec : Kmodules.Mod_common.spec) ->
        let prog = spec.Kmodules.Mod_common.make sys in
        let _, r = Lxfi.Rewriter.instrument Lxfi.Config.lxfi prog in
        [
          spec.Kmodules.Mod_common.name;
          R.int_ r.Lxfi.Rewriter.r_orig_size;
          R.int_ r.Lxfi.Rewriter.r_inst_size;
          Printf.sprintf "%.2fx"
            (float_of_int r.Lxfi.Rewriter.r_inst_size
            /. float_of_int (max 1 r.Lxfi.Rewriter.r_orig_size));
          R.int_ r.Lxfi.Rewriter.r_write_guards;
          R.int_ r.Lxfi.Rewriter.r_write_elided;
          R.int_ r.Lxfi.Rewriter.r_indcall_guards;
          R.int_ r.Lxfi.Rewriter.r_inlined_calls;
        ])
      Catalog.all
  in
  R.table ~title:"Rewriter statistics over the ten-module corpus"
    ~header:[ "Module"; "IR"; "IR'"; "dCode"; "wguards"; "elided"; "iguards"; "inlined" ]
    rows

(* Ablation E10: the WRITE-capability data structure.  The paper chose
   a page-masked hash table over a balanced tree because the covering-
   range lookup is the hottest runtime operation (§5).  We compare the
   hashed table against a naive linear interval list at a realistic
   population, measured with bechamel on this host. *)
let captable_ablation () =
  let n = 512 in
  let ranges = List.init n (fun i -> (0x2_0000_0000 + (i * 4096) + ((i * 7) mod 256), 64 + (i mod 192))) in
  let hashed = Lxfi.Captable.create () in
  List.iter (fun (base, size) -> Lxfi.Captable.add_write hashed ~base ~size) ranges;
  let linear : (int * int) list = ranges in
  let probe = List.init 64 (fun i -> 0x2_0000_0000 + (i * 13 * 4096 mod (n * 4096)) + 32) in
  let hashed_ns =
    measure_ns ~name:"hashed" (fun () ->
        List.iter (fun a -> ignore (Lxfi.Captable.has_write hashed ~addr:a ~size:8)) probe)
  in
  let linear_ns =
    measure_ns ~name:"linear" (fun () ->
        List.iter
          (fun a ->
            ignore
              (List.exists (fun (b, s) -> b <= a && a + 8 <= b + s) linear))
          probe)
  in
  R.table
    ~title:
      (Printf.sprintf
         "Ablation E10: WRITE-capability lookup, %d live ranges, 64 probes/op \
          (the paper's constant-time hash vs. a linear interval list)"
         n)
    ~header:[ "Structure"; "ns per 64 probes"; "per probe" ]
    [
      [ "page-masked hash table"; Printf.sprintf "%.0f" hashed_ns; Printf.sprintf "%.1f ns" (hashed_ns /. 64.) ];
      [ "linear interval list"; Printf.sprintf "%.0f" linear_ns; Printf.sprintf "%.1f ns" (linear_ns /. 64.) ];
      [ "speedup"; Printf.sprintf "%.1fx" (linear_ns /. Float.max 1. hashed_ns); "" ];
    ];
  Some
    (Bench_json.Obj
       [
         ("live_ranges", Bench_json.Int n);
         ("probes_per_op", Bench_json.Int 64);
         ("hashed_host_ns", Bench_json.Float hashed_ns);
         ("linear_host_ns", Bench_json.Float linear_ns);
       ])

(* Extension: per-module isolation overhead — the paper benchmarks
   only e1000; this table gives one representative workload per module
   family. *)
let module_overheads () =
  let data = Module_bench.table () in
  let rows =
    List.map
      (fun (r : Module_bench.row) ->
        [
          r.Module_bench.mb_module;
          r.Module_bench.mb_op;
          Printf.sprintf "%.0f" r.Module_bench.mb_stock_cycles;
          Printf.sprintf "%.0f" r.Module_bench.mb_lxfi_cycles;
          R.pct1 r.Module_bench.mb_overhead;
        ])
      data
  in
  R.table
    ~title:
      "Extension: per-module isolation overhead (simulated cycles per        operation; the paper measures only e1000)"
    ~header:[ "Module"; "Operation"; "stock"; "LXFI"; "overhead" ]
    rows;
  Some
    (Bench_json.List
       (List.map
          (fun (r : Module_bench.row) ->
            Bench_json.Obj
              [
                ("module", Bench_json.Str r.Module_bench.mb_module);
                ("op", Bench_json.Str r.Module_bench.mb_op);
                ("stock_cycles", Bench_json.Float r.Module_bench.mb_stock_cycles);
                ("lxfi_cycles", Bench_json.Float r.Module_bench.mb_lxfi_cycles);
                ("overhead", Bench_json.Float r.Module_bench.mb_overhead);
              ])
          data))

(* Robustness: the deterministic fault-injection campaign against the
   quarantine policy (see lib/workloads/faultsim.ml and EXPERIMENTS.md,
   "faultsim").  Seed fixed so the bench output is reproducible. *)
let faultsim_json rows breaches =
  Bench_json.Obj
    [
      ("cells", Bench_json.Int (List.length rows));
      ("breaches", Bench_json.Int (List.length breaches));
      ("all_invariants_held", Bench_json.Bool (breaches = []));
      ( "rows",
        Bench_json.List
          (List.map
             (fun (r : Faultsim.row) ->
               Bench_json.Obj
                 [
                   ("class", Bench_json.Str r.Faultsim.fs_class);
                   ("workload", Bench_json.Str r.Faultsim.fs_workload);
                   ("plan", Bench_json.Str r.Faultsim.fs_plan);
                   ("fired", Bench_json.Int r.Faultsim.fs_fired);
                   ("quarantines", Bench_json.Int r.Faultsim.fs_quarantines);
                   ("escalations", Bench_json.Int r.Faultsim.fs_escalations);
                   ("efaults", Bench_json.Int r.Faultsim.fs_efaults);
                   ("bystander_ok", Bench_json.Bool r.Faultsim.fs_bystander_ok);
                   ("invariants_ok", Bench_json.Bool r.Faultsim.fs_invariants_ok);
                 ])
             rows) );
    ]

let faultsim_section () =
  ignore (Faultsim.print ~seed:42 () : int);
  if !json_mode then begin
    let rows, breaches = Faultsim.run ~seed:42 () in
    Some (faultsim_json rows breaches)
  end
  else None

(* Robustness: the live-lifecycle campaign — hot upgrades under
   traffic plus quarantine→repair→replay (lib/workloads/lifecycle.ml;
   EXPERIMENTS.md, "lifecycle").  Seed fixed for reproducibility.  Not
   part of the enforcement reference: the campaign exercises the
   upgrade/repair paths only, so its counters are gated separately by
   the CI lifecycle job's run-twice cmp. *)
let lifecycle_section () =
  ignore (Lifecycle.print ~seed:1 () : int);
  if !json_mode then begin
    let rows, breaches = Lifecycle.run ~seed:1 () in
    Some (Lifecycle.to_json ~seed:1 rows breaches)
  end
  else None

(* Event tracing (--trace): one traced netperf op mix; the profile goes
   to stdout, the Chrome trace-event JSON next to the bench JSON. *)
let trace_section () =
  let out = "TRACE_netperf.json" in
  let rc = Trace_run.run ~seed:1 ~workload:"netperf" ~out Fmt.stdout in
  Some
    (Bench_json.Obj
       [
         ("workload", Bench_json.Str "netperf");
         ("seed", Bench_json.Int 1);
         ("ops", Bench_json.Int Trace_run.ops);
         ("chrome_trace", Bench_json.Str out);
         ("cycles_reconciled", Bench_json.Bool (rc = 0));
       ])

(* ------------------------------------------------------------------ *)
(* Enforcement-neutrality reference.                                    *)
(* ------------------------------------------------------------------ *)

(* Everything in here is a deterministic function of the simulation
   (guard counters, simulated cycles, faultsim outcomes — no host
   timing), so the serialized form must be byte-identical run to run
   and commit to commit unless enforcement semantics actually change.
   CI regenerates it and compares against the committed copy. *)
let enforcement_reference () =
  let guards, m = Netperf_sim.figure13 () in
  let rows, breaches = Faultsim.run ~seed:42 () in
  Bench_json.Obj
    [
      ( "fig13",
        Bench_json.Obj
          [
            ( "guards_per_packet",
              Bench_json.List
                (List.map
                   (fun (g : Netperf_sim.guard_row) ->
                     Bench_json.Obj
                       [
                         ("type", Bench_json.Str g.Netperf_sim.g_type);
                         ("per_packet", Bench_json.Float g.Netperf_sim.g_per_packet);
                       ])
                   guards) );
            ("measure", Bench_json.of_measure m);
          ] );
      ("faultsim", faultsim_json rows breaches);
    ]

let reference_string () = Bench_json.to_string (enforcement_reference ()) ^ "\n"

let check_reference file =
  let expected =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let actual = reference_string () in
  if String.equal actual expected then begin
    Printf.printf "guard reference OK (%s)\n" file;
    0
  end
  else begin
    Printf.printf
      "guard reference MISMATCH against %s — enforcement semantics changed.\n\
       Recorded counters differ from this build's; if the change is intended,\n\
       regenerate with: bench/main.exe --write-ref %s\n\
       --- expected ---\n%s--- actual ---\n%s"
      file file expected actual;
    1
  end

(* ------------------------------------------------------------------ *)

let () =
  Kernel_sim.Klog.quiet ();
  (match !write_ref_file with
  | Some file ->
      let oc = open_out_bin file in
      output_string oc (reference_string ());
      close_out oc;
      Printf.printf "wrote %s\n" file;
      exit 0
  | None -> ());
  (match !check_file with Some file -> exit (check_reference file) | None -> ());
  let plain f () =
    f ();
    None
  in
  let sections =
    [
      ("fig7", plain fig7);
      ("fig8", plain fig8);
      ("fig9", plain fig9);
      ("fig10", plain fig10);
      ("fig11", plain fig11);
      ("fig12", fig12);
      ("fig13", fig13);
      ("guards", guards_section);
      ("ablation", plain ablation);
      ("captable", captable_ablation);
      ("rewrite", plain rewrite_table);
      ("overheads", module_overheads);
      ("faultsim", faultsim_section);
      ("lifecycle", lifecycle_section);
    ]
    @ if !trace_mode then [ ("trace", trace_section) ] else []
  in
  List.iter
    (fun (name, f) ->
      if name = "trace" || section_wanted name then begin
        (* Monotonic clock for the wall field: gettimeofday jumps under
           NTP adjustment, which poisoned BENCH_*.json comparisons. *)
        let t0 = Monotonic_clock.now () in
        let data = f () in
        let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
        match data with
        | Some d when !json_mode ->
            let file = "BENCH_" ^ name ^ ".json" in
            Bench_json.write_file file
              (Bench_json.Obj
                 [
                   ("section", Bench_json.Str name);
                   ("wall_seconds", Bench_json.Float wall);
                   ("data", d);
                 ]);
            Printf.printf "[json] wrote %s\n" file
        | _ -> ()
      end)
    sections;
  print_endline ""

(* A tour of the LXFI annotation language (paper §3, Figures 2-4).

     dune exec examples/annotation_tour.exe

   Parses each annotation shape, shows its canonical form and hash, and
   then replays Figure 4's PCI-probe contract against the live runtime,
   watching capabilities appear and disappear. *)

open Kernel_sim
open Kmodules

let say fmt = Format.printf (fmt ^^ "@.")

let show_annot s =
  match Annot.Parser.parse s with
  | Error e -> say "  %-60s PARSE ERROR: %s" s (Annot.Parser.error_to_string e)
  | Ok t ->
      say "  input:     %s" s;
      say "  canonical: %s" (Annot.Ast.to_string t);
      say "  ahash:     0x%Lx" (Annot.Hash.of_annot ~params:[ "a"; "b" ] t);
      say ""

let () =
  Klog.quiet ();
  say "== the annotation grammar (Figure 2) ==";
  say "";
  List.iter show_annot
    [
      "pre(check(write, lock, 4))";
      "post(if (return != 0) copy(write, return, size))";
      "pre(transfer(skb_caps(skb)))";
      "principal(pcidev) pre(copy(ref(struct pci_dev), pcidev)) \
       post(if (return < 0) transfer(ref(struct pci_dev), pcidev))";
      "pre(check(ref(io_port), port))";
    ];

  say "== Figure 4 live: the PCI probe contract ==";
  say "";
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let pcidev, _nic = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  say "hot-plugged a NIC; its pci_dev struct is at 0x%x" pcidev;
  say "";
  say "the slot type pci_driver.probe carries:";
  let slot = Annot.Registry.find sys.Ksys.rt.Lxfi.Runtime.registry "pci_driver.probe" in
  say "  %s" (Annot.Ast.to_string slot.Annot.Registry.sl_annot);
  say "";
  say "loading e1000: the PCI core invokes probe through that slot...";
  let h = Mod_common.install sys E1000.spec in
  let mi = h.Mod_common.mi in
  let p = Hashtbl.find mi.Lxfi.Runtime.mi_aliases pcidev in
  say "  probe ran as %s (the principal clause)" (Lxfi.Principal.describe p);
  say "  REF(pci_dev) granted by pre(copy):        %b"
    (Lxfi.Runtime.principal_has sys.Ksys.rt p
       (Lxfi.Capability.Cref { rtype = "pci_dev"; addr = pcidev }));
  let bar = Pci.bar0 sys.Ksys.pci pcidev in
  say "  WRITE on the MMIO BAR from pci_request_regions' iterator: %b"
    (Lxfi.Runtime.principal_has sys.Ksys.rt p
       (Lxfi.Capability.Cwrite { base = bar; size = 64 }));
  say "";

  say "== transfer semantics: a packet's journey ==";
  say "";
  let kst = sys.Ksys.kst in
  let dev = Pci.pci_get_drvdata sys.Ksys.pci pcidev in
  let skb = Skbuff.alloc kst 64 in
  Skbuff.set_dev kst skb dev;
  let data = Skbuff.data kst skb in
  let driver_owns () =
    Lxfi.Runtime.principal_has sys.Ksys.rt p
      (Lxfi.Capability.Cwrite { base = data; size = 64 })
  in
  say "kernel allocates an skb (payload at 0x%x); driver owns it: %b" data (driver_owns ());
  say "dev_queue_xmit -> ndo_start_xmit: pre(transfer(skb_caps(skb)))...";
  ignore (Netdev.dev_queue_xmit sys.Ksys.net skb);
  say "  during transmit the driver held WRITE on the payload;";
  say "  after kfree_skb's pre(transfer) revoked it everywhere: %b" (driver_owns ());
  say "";
  say "capability operations so far: %s"
    (Fmt.str "grants=%d revokes=%d"
       sys.Ksys.rt.Lxfi.Runtime.stats.Lxfi.Stats.caps_granted
       sys.Ksys.rt.Lxfi.Runtime.stats.Lxfi.Stats.caps_revoked);
  say "";
  say "Every contract in this reproduction's kernel API:";
  List.iter
    (fun (s : Annot.Registry.slot) ->
      if s.Annot.Registry.sl_annot <> [] then
        say "  %-32s %s" s.Annot.Registry.sl_name
          (Annot.Ast.to_string s.Annot.Registry.sl_annot))
    (Annot.Registry.all sys.Ksys.rt.Lxfi.Runtime.registry)

(* Quickstart: isolate a tiny kernel module with LXFI in ~80 lines.

     dune exec examples/quickstart.exe

   We boot the simulated kernel, write a small module in MIR that uses
   the annotated kernel API correctly, load it under full LXFI
   enforcement, drive it — and then show what happens when the same
   module misbehaves (the spin_lock_init confused-deputy attack from
   the paper's introduction). *)

open Kernel_sim
open Kmodules
open Mir.Builder

let say fmt = Format.printf (fmt ^^ "@.")

(* A module that allocates a buffer, initialises a lock inside it, and
   exposes one operation to the kernel.  The [bench.entry] slot type is
   a trivial empty contract; real interfaces carry real contracts (see
   examples/annotation_tour.exe). *)
let good_module =
  prog "hello_mod"
    ~imports:[ "kmalloc"; "spin_lock_init"; "spin_lock"; "spin_unlock"; "printk" ]
    ~globals:[ global "state" 16 ~section:Mir.Ast.Bss ]
    ~funcs:
      [
        func "module_init" []
          [
            let_ "buf" (call_ext "kmalloc" [ ii 64 ]);
            store64 (glob "state") (v "buf");
            (* the lock lives inside our own buffer: the check on
               spin_lock_init passes because kmalloc's annotation
               granted us WRITE for it *)
            expr (call_ext "spin_lock_init" [ v "buf" ]);
            ret0;
          ];
        func "hello_op" [ "n" ]
          [
            let_ "buf" (load64 (glob "state"));
            expr (call_ext "spin_lock" [ v "buf" ]);
            store64 (v "buf" +: ii 8) (v "n" *: ii 2);
            let_ "r" (load64 (v "buf" +: ii 8));
            expr (call_ext "spin_unlock" [ v "buf" ]);
            ret (v "r");
          ]
          ~export:"bench.entry";
      ]

(* The same module, compromised: it passes the address of the current
   task's uid field to spin_lock_init, trying to become root by having
   the kernel write a zero there (paper §1). *)
let evil_module ~uid_addr =
  prog "evil_mod" ~imports:[ "spin_lock_init" ] ~globals:[]
    ~funcs:
      [
        func "module_init" [] [ ret0 ];
        func "evil_op" [ "n" ]
          [ expr (call_ext "spin_lock_init" [ ii uid_addr ]); ret0 ]
          ~export:"bench.entry";
      ]

let () =
  Klog.quiet ();
  say "== LXFI quickstart ==";
  say "";
  say "Booting the simulated kernel with full LXFI enforcement...";
  let sys = Ksys.boot Lxfi.Config.lxfi in
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:"bench.entry"
       ~params:[ "n" ] ~annot_src:"");

  say "Loading hello_mod (rewriter inserts guards, loader grants initial caps)...";
  let mi, report = Ksys.load sys good_module in
  say "  rewriter: %s" (Fmt.str "%a" Lxfi.Rewriter.pp_report report);
  ignore (Lxfi.Loader.init_call sys.Ksys.rt mi "module_init" []);

  say "Kernel invokes the module's operation through its wrapper:";
  let r = Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "hello_op" [ 21L ] in
  say "  hello_op 21 = %Ld  (lock taken and released, stores checked)" r;
  say "  guards so far: %s" (Fmt.str "%a" Lxfi.Stats.pp sys.Ksys.rt.Lxfi.Runtime.stats);
  say "";

  say "Now the confused-deputy attack from the paper's introduction:";
  say "  the module passes &current->uid to spin_lock_init, hoping the";
  say "  kernel will write 0 (root) there on its behalf.";
  let kst = sys.Ksys.kst in
  let uid_addr = Task.field_addr kst.Kstate.types kst.Kstate.current "uid" in
  let emi, _ = Ksys.load sys (evil_module ~uid_addr) in
  (match Lxfi.Runtime.invoke_module_function sys.Ksys.rt emi "evil_op" [ 0L ] with
  | _ -> say "  !!! the attack went through (this should not happen under LXFI)"
  | exception Lxfi.Violation.Violation v ->
      say "  LXFI: %s" (Fmt.str "%a" Lxfi.Violation.pp v));
  say "  current uid is still %d" (Kstate.current_uid kst);
  say "";
  say "Same attack on a stock kernel:";
  let sys = Ksys.boot Lxfi.Config.stock in
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:"bench.entry"
       ~params:[ "n" ] ~annot_src:"");
  let kst = sys.Ksys.kst in
  let uid_addr = Task.field_addr kst.Kstate.types kst.Kstate.current "uid" in
  let emi, _ = Ksys.load sys (evil_module ~uid_addr) in
  ignore (Lxfi.Runtime.invoke_module_function sys.Ksys.rt emi "evil_op" [ 0L ]);
  say "  current uid is now %d — root. That is why modules need API integrity."
    (Kstate.current_uid kst)

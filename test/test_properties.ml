(* Property-based tests (qcheck) over the core data structures and the
   invariants the paper's security argument rests on. *)

let seeded_count n = n

(* ------------------------------------------------------------------ *)
(* Captable WRITE ranges agree with a naive reference model.            *)
(* ------------------------------------------------------------------ *)

type wop = Add of int * int | Remove of int * int | Query of int * int

let gen_wop =
  QCheck.Gen.(
    let addr = map (fun a -> 0x1000 + (a * 8)) (int_bound 2048) in
    let size = map (fun s -> 8 + (s * 8)) (int_bound 64) in
    oneof
      [
        map2 (fun a s -> Add (a, s)) addr size;
        map2 (fun a s -> Remove (a, s)) addr size;
        map2 (fun a s -> Query (a, s)) addr size;
      ])

let show_wop = function
  | Add (a, s) -> Printf.sprintf "Add(0x%x,%d)" a s
  | Remove (a, s) -> Printf.sprintf "Remove(0x%x,%d)" a s
  | Query (a, s) -> Printf.sprintf "Query(0x%x,%d)" a s

let arb_wops =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map show_wop l))
    QCheck.Gen.(list_size (seeded_count (int_bound 60)) gen_wop)

let prop_captable_matches_model =
  QCheck.Test.make ~count:300 ~name:"captable WRITE = naive interval model" arb_wops
    (fun ops ->
      let t = Lxfi.Captable.create () in
      let model = ref [] (* (base, size) list *) in
      let covered (b, s) addr size = b <= addr && addr + size <= b + s in
      let intersects (b, s) base size = b < base + size && base < b + s in
      List.for_all
        (fun op ->
          match op with
          | Add (base, size) ->
              Lxfi.Captable.add_write t ~base ~size;
              if not (List.mem (base, size) !model) then model := (base, size) :: !model;
              true
          | Remove (base, size) ->
              ignore (Lxfi.Captable.remove_write_intersecting t ~base ~size);
              model := List.filter (fun e -> not (intersects e base size)) !model;
              true
          | Query (addr, size) ->
              Lxfi.Captable.has_write t ~addr ~size
              = List.exists (fun e -> covered e addr size) !model)
        ops)

(* ------------------------------------------------------------------ *)
(* Writer set: no false negatives.                                     *)
(* ------------------------------------------------------------------ *)

let arb_ranges =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (b, s) -> Printf.sprintf "(0x%x,%d)" b s) l))
    QCheck.Gen.(
      list_size (int_bound 30)
        (map2
           (fun b s -> (0x2_0000_0000 + (b * 16), 1 + s))
           (int_bound 4096) (int_bound 256)))

let prop_writer_set_no_false_negatives =
  QCheck.Test.make ~count:200 ~name:"writer set has no false negatives" arb_ranges
    (fun ranges ->
      let w = Lxfi.Writer_set.create () in
      List.iter (fun (base, size) -> Lxfi.Writer_set.mark_range w ~base ~size) ranges;
      List.for_all
        (fun (base, size) ->
          Lxfi.Writer_set.maybe_written w base
          && Lxfi.Writer_set.maybe_written w (base + size - 1))
        ranges)

(* ------------------------------------------------------------------ *)
(* Annotation language: print/parse fixpoint on generated ASTs.        *)
(* ------------------------------------------------------------------ *)

let gen_cexpr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> Annot.Ast.Cint (Int64.of_int i)) (int_bound 4096);
              map
                (fun i -> Annot.Ast.Cneg (Annot.Ast.Cint (Int64.of_int i)))
                (int_bound 4096);
              oneofl
                [
                  Annot.Ast.Cparam "p";
                  Annot.Ast.Cparam "len";
                  Annot.Ast.Cparam "buf";
                  Annot.Ast.Cparam "skb";
                  Annot.Ast.Creturn;
                  Annot.Ast.Csizeof "sk_buff";
                  Annot.Ast.Csizeof "socket";
                  Annot.Ast.Csizeof "pci_dev";
                ];
            ]
        in
        if n <= 1 then leaf
        else
          frequency
            [
              (2, leaf);
              ( 3,
                map3
                  (fun op a b -> Annot.Ast.Cbin (op, a, b))
                  (oneofl
                     Annot.Ast.
                       [ Oeq; One; Olt; Ole; Ogt; Oge; Oadd; Osub; Omul; Oand; Oor ])
                  (self (n / 2)) (self (n / 2)) );
              (1, map (fun e -> Annot.Ast.Cneg e) (self (n / 2)));
            ]))

let gen_caplist =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun ct p s -> Annot.Ast.Inline (ct, p, s))
          (oneofl
             [
               Annot.Ast.Write;
               Annot.Ast.Call;
               Annot.Ast.Ref "pci_dev";
               Annot.Ast.Ref "io_port";
             ])
          gen_cexpr
          (option gen_cexpr);
        map (fun e -> Annot.Ast.Iter ("skb_caps", [ e ])) gen_cexpr;
        map2
          (fun a b -> Annot.Ast.Iter ("range_caps", [ a; b ]))
          gen_cexpr gen_cexpr;
      ])

let gen_action =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let base =
          oneof
            [
              map (fun c -> Annot.Ast.Copy c) gen_caplist;
              map (fun c -> Annot.Ast.Transfer c) gen_caplist;
              map (fun c -> Annot.Ast.Check c) gen_caplist;
            ]
        in
        if n <= 1 then base
        else
          frequency
            [
              (3, base);
              (1, map2 (fun c a -> Annot.Ast.Cif (c, a)) gen_cexpr (self (n / 2)));
            ]))

let gen_clause =
  QCheck.Gen.(
    oneof
      [
        map (fun a -> Annot.Ast.Pre a) gen_action;
        map (fun a -> Annot.Ast.Post a) gen_action;
        oneofl
          [
            Annot.Ast.Principal Annot.Ast.Pglobal;
            Annot.Ast.Principal Annot.Ast.Pshared;
            Annot.Ast.Principal (Annot.Ast.Pexpr (Annot.Ast.Cparam "p"));
          ];
      ])

let arb_annot =
  QCheck.make ~print:Annot.Ast.to_string QCheck.Gen.(list_size (int_bound 5) gen_clause)

let prop_annot_roundtrip =
  QCheck.Test.make ~count:500 ~name:"annotation print/parse fixpoint" arb_annot
    (fun t ->
      let s = Annot.Ast.to_string t in
      match Annot.Parser.parse s with
      | Ok t2 -> Annot.Ast.to_string t2 = s
      | Error _ -> false)

let prop_annot_hash_stable =
  QCheck.Test.make ~count:300 ~name:"hash invariant under reparse" arb_annot
    (fun t ->
      let params = [ "p"; "len" ] in
      let s = Annot.Ast.to_string t in
      match Annot.Parser.parse s with
      | Ok t2 ->
          Int64.equal
            (Annot.Hash.of_annot ~params t |> fun h ->
             ignore h;
             Annot.Hash.of_annot ~params t2)
            (Annot.Hash.of_annot ~params t)
      | Error _ -> false)

let prop_registry_define_consistent =
  (* the typed registry API accepts exactly what Ast.validate accepts,
     and on success exposes the canonical hash *)
  QCheck.Test.make ~count:300 ~name:"Registry.define agrees with validate" arb_annot
    (fun t ->
      let params = [ "p"; "len"; "buf"; "skb" ] in
      let r = Annot.Registry.create () in
      match
        (Annot.Registry.define r ~name:"gen.slot" ~params ~annot:t,
         Annot.Ast.validate ~params t)
      with
      | Ok slot, Ok () ->
          Int64.equal slot.Annot.Registry.sl_ahash (Annot.Hash.of_annot ~params t)
      | Error (Annot.Registry.Invalid _), Error _ -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Kmem agrees with a bytes reference model.                            *)
(* ------------------------------------------------------------------ *)

let arb_mem_ops =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 80)
        (triple (int_bound 500) (oneofl [ 1; 2; 4; 8 ])
           (map Int64.of_int (int_bound 1_000_000))))
  in
  QCheck.make gen

let prop_kmem_matches_bytes =
  QCheck.Test.make ~count:200 ~name:"kmem = byte-array model" arb_mem_ops (fun writes ->
      let m = Kernel_sim.Kmem.create () in
      let reference = Bytes.make 512 '\000' in
      let base = 0x2_0000_0000 in
      List.iter
        (fun (off, size, v) ->
          let off = min off (512 - 8) in
          Kernel_sim.Kmem.write m ~addr:(base + off) ~size v;
          for i = 0 to size - 1 do
            Bytes.set reference (off + i)
              (Char.chr
                 (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
          done)
        writes;
      (* compare every byte *)
      let ok = ref true in
      for i = 0 to 511 do
        if
          Kernel_sim.Kmem.read_u8 m (base + i) <> Char.code (Bytes.get reference i)
        then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Slab: live objects never overlap; freed slots are reused.            *)
(* ------------------------------------------------------------------ *)

let arb_slab_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_bound 100) (pair bool (map (fun s -> 1 + s) (int_bound 300))))

let prop_slab_no_overlap =
  QCheck.Test.make ~count:100 ~name:"live slab objects never overlap" arb_slab_ops
    (fun ops ->
      let mem = Kernel_sim.Kmem.create () in
      let cycles = Kernel_sim.Kcycles.create () in
      let s = Kernel_sim.Slab.create mem cycles in
      let live = ref [] in
      List.iter
        (fun (free, size) ->
          if free && !live <> [] then begin
            let a = List.hd !live in
            live := List.tl !live;
            Kernel_sim.Slab.kfree s a
          end
          else begin
            let a = Kernel_sim.Slab.kmalloc s size in
            live := !live @ [ a ]
          end)
        ops;
      (* check pairwise disjointness of live objects *)
      let ranges =
        List.map (fun a -> (a, Kernel_sim.Slab.usable_size s a)) !live
      in
      let rec disjoint = function
        | [] -> true
        | (a, sa) :: rest ->
            List.for_all (fun (b, sb) -> a + sa <= b || b + sb <= a) rest
            && disjoint rest
      in
      disjoint ranges)

(* ------------------------------------------------------------------ *)
(* Transfer revokes everywhere: no principal retains an intersecting    *)
(* WRITE capability after revoke_from_all.                              *)
(* ------------------------------------------------------------------ *)

let prop_revoke_leaves_no_copies =
  QCheck.Test.make ~count:100 ~name:"revoke_from_all leaves no copies"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 20)
           (pair (int_bound 3) (pair (int_bound 512) (map (fun s -> 8 + (8 * s)) (int_bound 16))))))
    (fun grants ->
      let kst = Kernel_sim.Kstate.boot () in
      let rt = Lxfi.Runtime.create ~kst ~config:Lxfi.Config.lxfi in
      (* one module, several principals *)
      let prog =
        Mir.Builder.prog "m" ~imports:[] ~globals:[]
          ~funcs:[ Mir.Builder.func "module_init" [] [ Mir.Builder.ret0 ] ]
      in
      let mi, _ = Lxfi.Loader.load rt prog in
      let principals =
        [|
          mi.Lxfi.Runtime.mi_shared;
          Lxfi.Runtime.find_or_create_instance rt mi ~name_ptr:0x9000;
          Lxfi.Runtime.find_or_create_instance rt mi ~name_ptr:0xa000;
          mi.Lxfi.Runtime.mi_global;
        |]
      in
      List.iter
        (fun (p, (off, size)) ->
          Lxfi.Runtime.grant rt principals.(p)
            (Lxfi.Capability.Cwrite { base = 0x2_0000_0000 + (off * 16); size }))
        grants;
      (* revoke a range covering part of the arena *)
      let rbase = 0x2_0000_0000 + 1024 and rsize = 2048 in
      Lxfi.Runtime.revoke_from_all rt (Lxfi.Capability.Cwrite { base = rbase; size = rsize });
      (* no principal may hold WRITE on any byte of the revoked range
         that came from an intersecting grant *)
      Array.for_all
        (fun p ->
          let leaked = ref false in
          Lxfi.Captable.fold_writes p.Lxfi.Principal.caps
            (fun () ~base ~size ->
              if base < rbase + rsize && rbase < base + size then leaked := true)
            ();
          not !leaked)
        principals)

(* ------------------------------------------------------------------ *)
(* Interpreter arithmetic matches Int64 reference semantics.            *)
(* ------------------------------------------------------------------ *)

let arb_binop_case =
  QCheck.make
    ~print:(fun (op, a, b) ->
      Printf.sprintf "%s %Ld %Ld" (Mir.Printer.binop_symbol op) a b)
    QCheck.Gen.(
      triple
        (oneofl
           Mir.Ast.
             [ Add; Sub; Mul; Band; Bor; Bxor; Shl; Lshr; Eq; Ne; Lt; Le; Gt; Ge; Ult ])
        (map Int64.of_int int) (map Int64.of_int int))

let reference_binop op a b =
  let bool_ x = if x then 1L else 0L in
  match op with
  | Mir.Ast.Add -> Int64.add a b
  | Mir.Ast.Sub -> Int64.sub a b
  | Mir.Ast.Mul -> Int64.mul a b
  | Mir.Ast.Band -> Int64.logand a b
  | Mir.Ast.Bor -> Int64.logor a b
  | Mir.Ast.Bxor -> Int64.logxor a b
  | Mir.Ast.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Mir.Ast.Lshr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Mir.Ast.Eq -> bool_ (a = b)
  | Mir.Ast.Ne -> bool_ (a <> b)
  | Mir.Ast.Lt -> bool_ (Int64.compare a b < 0)
  | Mir.Ast.Le -> bool_ (Int64.compare a b <= 0)
  | Mir.Ast.Gt -> bool_ (Int64.compare a b > 0)
  | Mir.Ast.Ge -> bool_ (Int64.compare a b >= 0)
  | Mir.Ast.Ult -> bool_ (Int64.unsigned_compare a b < 0)
  | _ -> assert false

let prop_interp_arithmetic =
  QCheck.Test.make ~count:500 ~name:"interpreter binop = Int64 reference"
    arb_binop_case (fun (op, a, b) ->
      Int64.equal
        (Mir.Interp.eval_binop op Mir.Ast.W64 a b)
        (reference_binop op a b))

let prop_truncation =
  QCheck.Test.make ~count:300 ~name:"width truncation masks correctly"
    (QCheck.make QCheck.Gen.(map Int64.of_int int))
    (fun v ->
      Int64.equal (Mir.Interp.truncate Mir.Ast.W32 v) (Int64.logand v 0xffff_ffffL)
      && Int64.equal (Mir.Interp.truncate Mir.Ast.W16 v) (Int64.logand v 0xffffL)
      && Int64.equal (Mir.Interp.truncate Mir.Ast.W8 v) (Int64.logand v 0xffL)
      && Int64.equal (Mir.Interp.truncate Mir.Ast.W64 v) v)

(* ------------------------------------------------------------------ *)
(* Fault injection: any seed / fault class / workload / injection       *)
(* point leaves the containment invariants intact (shadow stack,        *)
(* kernel principal, revoked capabilities, surviving bystander).        *)
(* ------------------------------------------------------------------ *)

let prop_faultsim_invariants =
  QCheck.Test.make ~count:24
    ~name:"fault injection preserves containment invariants"
    (QCheck.make
       ~print:(fun (seed, c, w, k) ->
         Printf.sprintf "seed=%d class=%s workload=%s nth=%d" seed
           (Workloads.Faultsim.class_name (List.nth Workloads.Faultsim.classes c))
           (List.nth Workloads.Faultsim.workload_names w)
           k)
       QCheck.Gen.(
         quad (int_bound 100_000)
           (int_bound (List.length Workloads.Faultsim.classes - 1))
           (int_bound (List.length Workloads.Faultsim.workload_names - 1))
           (map (fun k -> 1 + k) (int_bound 9))))
    (fun (seed, c, w, k) ->
      let fclass = List.nth Workloads.Faultsim.classes c in
      let workload = List.nth Workloads.Faultsim.workload_names w in
      let _row, breaches =
        Workloads.Faultsim.run_cell ~seed fclass ~workload
          ~plan:(Kernel_sim.Finject.Nth k)
      in
      breaches = [])

let prop_faultsim_deterministic =
  QCheck.Test.make ~count:3 ~name:"faultsim report is a pure function of the seed"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
    (fun seed -> Workloads.Faultsim.run ~seed () = Workloads.Faultsim.run ~seed ())

let () =
  Kernel_sim.Klog.quiet ();
  Alcotest.run "properties"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_captable_matches_model;
            prop_writer_set_no_false_negatives;
            prop_annot_roundtrip;
            prop_annot_hash_stable;
            prop_registry_define_consistent;
            prop_kmem_matches_bytes;
            prop_slab_no_overlap;
            prop_revoke_leaves_no_copies;
            prop_interp_arithmetic;
            prop_truncation;
            prop_faultsim_invariants;
            prop_faultsim_deterministic;
          ] );
    ]

(* The textual MIR round trip: parse (print p) = p, on the whole module
   corpus, the microbenchmarks, and qcheck-generated programs. *)

open Kmodules

let roundtrip_ok name (p : Mir.Ast.prog) =
  let text = Mir.Printer.to_string p in
  match Mir.Parser.parse_result text with
  | Error e -> Alcotest.failf "%s: re-parse failed: %s\n%s" name e text
  | Ok p2 ->
      if p <> p2 then
        Alcotest.failf "%s: round trip not identity;\nfirst print:\n%s\nsecond:\n%s" name
          text (Mir.Printer.to_string p2)

let test_corpus_roundtrip () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  List.iter
    (fun (spec : Mod_common.spec) ->
      roundtrip_ok spec.Mod_common.name (spec.Mod_common.make sys))
    Catalog.all

let test_microbench_roundtrip () =
  List.iter
    (fun (name, p) -> roundtrip_ok name p)
    [
      ("hotlist", Workloads.Microbench.hotlist_prog);
      ("lld", Workloads.Microbench.lld_prog);
      ("md5", Workloads.Microbench.md5_prog);
    ]

let test_instrumented_roundtrip () =
  (* guards print and parse too *)
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let p = E1000.spec.Mod_common.make sys in
  let p', _ = Lxfi.Rewriter.instrument Lxfi.Config.lxfi p in
  roundtrip_ok "e1000 (instrumented)" p'

let test_hand_written_source () =
  let src =
    {mir|
module hello
imports: kmalloc, kfree, printk, lxfi_check:pci_dev

/* a writable counter and an ops table */
global counter[8] in .bss
global table[16] in .data : struct two_slots {
  +0 = func cb;
  +8 = u32 7;
}

func cb(x) exports cb.fn {
  return (x * 2);
}

func module_init() {
  buf = ext:kmalloc(64);
  if ((buf == 0)) {
    return -12;
  }
  *u64(buf) = 123;
  *u64(&counter) = (*u64(&counter) + 1);
  ext:kfree(buf);
  return 0;
}
|mir}
  in
  match Mir.Parser.parse_result src with
  | Error e -> Alcotest.failf "hand-written source rejected: %s" e
  | Ok p ->
      Alcotest.(check string) "name" "hello" p.Mir.Ast.pname;
      Alcotest.(check int) "imports" 4 (List.length p.Mir.Ast.imports);
      Alcotest.(check int) "globals" 2 (List.length p.Mir.Ast.globals);
      Alcotest.(check int) "funcs" 2 (List.length p.Mir.Ast.funcs);
      (match Mir.Ast.find_func p "cb" with
      | Some f -> Alcotest.(check (option string)) "export" (Some "cb.fn") f.Mir.Ast.export
      | None -> Alcotest.fail "cb missing");
      roundtrip_ok "hello" p

let test_parse_errors () =
  List.iter
    (fun (what, src) ->
      match Mir.Parser.parse_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should be rejected" what)
    [
      ("missing module header", "func f() { return 0; }");
      ("unterminated block", "module m\nimports: \nfunc f() { return 0;");
      ("garbage statement", "module m\nimports: \nfunc f() { 123 bad; }");
      ("bad width", "module m\nimports: \nfunc f() { *u13(1) = 2; return 0; }");
      ("unterminated comment", "module m /* oops");
    ]

(* qcheck: generated programs survive the round trip *)

let gen_name = QCheck.Gen.(map (fun i -> Printf.sprintf "v%d" i) (int_bound 6))

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> Mir.Ast.Const (Int64.of_int (i - 500))) (int_bound 1000);
              map (fun v -> Mir.Ast.Var v) gen_name;
              map (fun v -> Mir.Ast.Glob ("g" ^ v)) gen_name;
              map (fun v -> Mir.Ast.Funcaddr ("f" ^ v)) gen_name;
              map (fun v -> Mir.Ast.Extaddr ("e" ^ v)) gen_name;
            ]
        in
        if n <= 1 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 2,
                map3
                  (fun op (w, a) b -> Mir.Ast.Binop (op, w, a, b))
                  (oneofl
                     Mir.Ast.
                       [ Add; Sub; Mul; Udiv; Urem; Band; Bor; Bxor; Shl; Lshr; Eq; Ne; Lt; Le; Gt; Ge; Ult ])
                  (pair (oneofl Mir.Ast.[ W8; W16; W32; W64 ]) (self (n / 2)))
                  (self (n / 2)) );
              (2, map2 (fun w e -> Mir.Ast.Load (w, e)) (oneofl Mir.Ast.[ W8; W32; W64 ]) (self (n / 2)));
              ( 1,
                map2
                  (fun t args -> Mir.Ast.Call (Mir.Ast.Indirect t, args))
                  (self (n / 2))
                  (list_size (int_bound 2) (self (n / 3))) );
              ( 1,
                map2
                  (fun v args -> Mir.Ast.Call (Mir.Ast.Direct ("f" ^ v), args))
                  gen_name
                  (list_size (int_bound 3) (self (n / 3))) );
            ]))

let gen_stmt =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let base =
          oneof
            [
              map2 (fun v e -> Mir.Ast.Let (v, e)) gen_name gen_expr;
              map2 (fun v sz -> Mir.Ast.Alloca (v, 16 + sz)) gen_name (int_bound 64);
              map3
                (fun w a v -> Mir.Ast.Store (w, a, v))
                (oneofl Mir.Ast.[ W8; W32; W64 ])
                gen_expr gen_expr;
              map (fun e -> Mir.Ast.Expr e) gen_expr;
              map (fun e -> Mir.Ast.Return e) gen_expr;
              map2 (fun w e -> Mir.Ast.Guard (Mir.Ast.Gwrite (w, e))) (oneofl Mir.Ast.[ W32; W64 ]) gen_expr;
              map (fun e -> Mir.Ast.Guard (Mir.Ast.Gindcall e)) gen_expr;
            ]
        in
        if n <= 1 then base
        else
          frequency
            [
              (5, base);
              ( 1,
                map3
                  (fun c t e -> Mir.Ast.If (c, t, e))
                  gen_expr
                  (list_size (int_bound 3) (self (n / 3)))
                  (list_size (int_bound 2) (self (n / 3))) );
              ( 1,
                map2 (fun c b -> Mir.Ast.While (c, b)) gen_expr
                  (list_size (int_bound 3) (self (n / 3))) );
            ]))

let gen_prog =
  QCheck.Gen.(
    let gen_glob =
      map3
        (fun v sec init ->
          {
            Mir.Ast.gname = "g" ^ v;
            gsize = 64;
            gsection = sec;
            ginit = init;
            gstruct = None;
          })
        gen_name
        (oneofl Mir.Ast.[ Data; Rodata; Bss ])
        (list_size (int_bound 3)
           (oneof
              [
                map2 (fun o x -> Mir.Ast.Iword (o * 8, Mir.Ast.W64, Int64.of_int x)) (int_bound 7) (int_bound 100);
                map2 (fun o v -> Mir.Ast.Ifunc (o * 8, "f" ^ v)) (int_bound 7) gen_name;
                map2 (fun o v -> Mir.Ast.Iext (o * 8, "e" ^ v)) (int_bound 7) gen_name;
              ]))
    in
    let gen_func =
      map3
        (fun v params body ->
          { Mir.Ast.fname = "f" ^ v; params; body; export = None })
        gen_name
        (map (List.mapi (fun i p -> Printf.sprintf "%s_%d" p i)) (list_size (int_bound 3) gen_name))
        (list_size (int_bound 5) gen_stmt)
    in
    map3
      (fun imports globals funcs ->
        {
          Mir.Ast.pname = "gen";
          imports = List.sort_uniq compare (List.map (fun v -> "e" ^ v) imports);
          globals =
            List.sort_uniq compare globals
            |> List.fold_left
                 (fun acc g ->
                   if List.exists (fun h -> h.Mir.Ast.gname = g.Mir.Ast.gname) acc then acc
                   else g :: acc)
                 []
            |> List.rev;
          funcs =
            List.fold_left
              (fun acc f ->
                if List.exists (fun h -> h.Mir.Ast.fname = f.Mir.Ast.fname) acc then acc
                else f :: acc)
              [] funcs
            |> List.rev;
        })
      (list_size (int_bound 4) gen_name)
      (list_size (int_bound 3) gen_glob)
      (list_size (int_bound 4) gen_func))

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"generated programs round trip"
    (QCheck.make ~print:Mir.Printer.to_string gen_prog)
    (fun p ->
      match Mir.Parser.parse_result (Mir.Printer.to_string p) with
      | Ok p2 -> p = p2
      | Error _ -> false)

(* The fuzzer's module generator (annotated exports, vtables,
   lock regions, kmalloc blocks) round-trips too — what makes its
   shrunk repros replayable from text. *)
let prop_fuzz_gen_roundtrip =
  QCheck.Test.make ~count:300 ~name:"fuzz-generated modules round trip"
    (QCheck.make
       ~print:(fun (c : Fuzz.Gen.case) -> Mir.Printer.to_string c.Fuzz.Gen.c_prog)
       (Fuzz.Gen.of_random_state ()))
    (fun case ->
      let p = case.Fuzz.Gen.c_prog in
      match Mir.Parser.parse_result (Mir.Printer.to_string p) with
      | Ok p2 -> p = p2
      | Error _ -> false)

let () =
  Kernel_sim.Klog.quiet ();
  Alcotest.run "mir_parser"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "module corpus" `Quick test_corpus_roundtrip;
          Alcotest.test_case "microbenchmarks" `Quick test_microbench_roundtrip;
          Alcotest.test_case "instrumented code" `Quick test_instrumented_roundtrip;
          Alcotest.test_case "hand-written source" `Quick test_hand_written_source;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_fuzz_gen_roundtrip ] );
    ]

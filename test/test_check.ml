(* Unit tests for the static checker: one known-bad annotation per lint
   rule, the capability-flow rules on minimal MIR entries, and the
   catalog-wide acceptance properties (the shipped corpus checks clean;
   the deliberately broken module does not). *)

module F = Check.Finding

(* ------------------------------------------------------------------ *)
(* Environment plumbing                                                *)
(* ------------------------------------------------------------------ *)

let mk_env ?(iterators = [ "skb_caps" ]) ?(kexports = []) () =
  let registry = Annot.Registry.create () in
  let types = Kernel_sim.Ktypes.create () in
  ignore
    (Kernel_sim.Ktypes.define types "sk_buff"
       [ ("data", 8, Kernel_sim.Ktypes.Pointer); ("len", 4, Kernel_sim.Ktypes.Scalar) ]);
  let env =
    Check.Env.make ~registry ~types
      ~iterator_exists:(fun n -> List.mem n iterators)
      ~kexports
  in
  (registry, env)

let parse src =
  match Annot.Parser.parse src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse %S: %s" src (Annot.Parser.error_to_string e)

let rules fs = String.concat ", " (List.map F.rule fs)
let has_rule r fs = List.exists (fun f -> F.rule f = r) fs

(* ------------------------------------------------------------------ *)
(* Annotation lint: one known-bad annotation per rule                  *)
(* ------------------------------------------------------------------ *)

let check_rule ?(kexport = false) ~params src expected_rule expected_sev =
  let _, env = mk_env () in
  let fs = Check.Lint.annot_findings env ~what:"slot t.f" ~kexport ~params (parse src) in
  match List.find_opt (fun f -> F.rule f = expected_rule) fs with
  | None -> Alcotest.failf "%s: rule %s not raised (got: %s)" src expected_rule (rules fs)
  | Some f ->
      Alcotest.(check string)
        (src ^ " severity")
        (Diag.severity_name expected_sev)
        (Diag.severity_name (F.severity f))

let test_lint_errors () =
  check_rule ~params:[ "p" ] "pre(check(write, bogus, 8))" "unknown-param" Diag.Error;
  check_rule ~params:[ "p" ] "pre(check(write, return, 8))" "return-in-pre" Diag.Error;
  check_rule ~params:[ "p" ] "pre(transfer(nope(p)))" "unknown-iterator" Diag.Error;
  check_rule ~params:[ "p" ] "pre(check(write, p, sizeof(struct nope)))"
    "sizeof-unknown-struct" Diag.Error

let test_lint_warnings () =
  check_rule ~params:[ "p" ] "pre(copy(write, p))" "write-size-defaulted" Diag.Warning;
  check_rule ~params:[ "p" ] "pre(if (1 == 2) check(write, p, 8))" "unsat-guard"
    Diag.Warning;
  check_rule ~params:[ "p" ] "pre(if (2 > 1) check(write, p, 8))" "redundant-guard"
    Diag.Info;
  check_rule ~params:[ "p" ]
    "pre(check(write, p, 8)) pre(check(write, p, 8))" "duplicate-clause" Diag.Warning;
  check_rule ~params:[ "p" ] "pre(if (p > 0) if (p > 0) check(write, p, 8))"
    "duplicate-guard" Diag.Warning

let test_transfer_then_use () =
  (* unconditional transfer followed by a pre referencing the same cap:
     the ownership check is guaranteed to fail *)
  check_rule ~kexport:true ~params:[ "p" ]
    "pre(transfer(write, p, 8)) pre(check(write, p, 8))" "transfer-then-use"
    Diag.Error;
  (* either side conditional: only liable to fail *)
  check_rule ~kexport:true ~params:[ "p"; "n" ]
    "pre(if (n > 0) transfer(write, p, 8)) pre(check(write, p, 8))"
    "transfer-then-use" Diag.Warning;
  (* M2K is the only direction where callers provably lose the cap *)
  let _, env = mk_env () in
  let fs =
    Check.Lint.annot_findings env ~what:"slot t.f" ~kexport:false ~params:[ "p" ]
      (parse "pre(transfer(write, p, 8)) pre(check(write, p, 8))")
  in
  Alcotest.(check bool) "not flagged on slots" false (has_rule "transfer-then-use" fs)

let test_lint_clean () =
  let _, env = mk_env () in
  let fs =
    Check.Lint.annot_findings env ~what:"slot t.f" ~kexport:false
      ~params:[ "skb"; "len" ]
      (parse
         "principal(skb) pre(copy(write, skb, sizeof(struct sk_buff))) \
          post(if (return == 0) transfer(skb_caps(skb)))")
  in
  Alcotest.(check string) "no findings" "" (rules fs)

(* ------------------------------------------------------------------ *)
(* Capability flow                                                     *)
(* ------------------------------------------------------------------ *)

let capflow ?iterators ?kexports ~slots ~funcs () =
  let registry, env = mk_env ?iterators ?kexports () in
  List.iter
    (fun (name, params, annot_src) ->
      ignore (Annot.Registry.define_exn registry ~name ~params ~annot_src))
    slots;
  let prog = Mir.Builder.prog "m" ~imports:[] ~globals:[] ~funcs in
  Check.Checker.check_module env prog

let test_uncovered_store () =
  let open Mir.Builder in
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "buf"; "n" ], "") ]
      ~funcs:
        [ func "f" [ "buf"; "n" ] ~export:"t.entry" [ store64 (v "buf") (ii 0); ret0 ] ]
      ()
  in
  Alcotest.(check bool) "uncovered-store" true (has_rule "uncovered-store" fs);
  (* the same store is fine once a clause covers the parameter *)
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "buf"; "n" ], "pre(copy(write, buf, n))") ]
      ~funcs:
        [ func "f" [ "buf"; "n" ] ~export:"t.entry" [ store64 (v "buf") (ii 0); ret0 ] ]
      ()
  in
  Alcotest.(check string) "covered" "" (rules fs)

let test_param_rooted_arith () =
  (* parameter-rooted pointer arithmetic keeps the root *)
  let open Mir.Builder in
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "buf" ], "") ]
      ~funcs:
        [
          func "f" [ "buf" ] ~export:"t.entry"
            [
              let_ "p" (v "buf" +: ii 16);
              store64 (v "p" +: ii 8) (ii 0);
              ret0;
            ];
        ]
      ()
  in
  Alcotest.(check bool) "rooted through arith" true (has_rule "uncovered-store" fs);
  (* loads break the root: pointers read out of memory are the
     runtime's problem, not this pass's *)
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "buf" ], "") ]
      ~funcs:
        [
          func "f" [ "buf" ] ~export:"t.entry"
            [ let_ "q" (load64 (v "buf")); store64 (v "q") (ii 0); ret0 ]
        ]
      ()
  in
  Alcotest.(check bool) "load clears root (no store finding)" false
    (has_rule "uncovered-store" fs)

let test_uncovered_indcall () =
  let open Mir.Builder in
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "cb" ], "") ]
      ~funcs:
        [ func "f" [ "cb" ] ~export:"t.entry" [ expr (call_ind (v "cb") []); ret0 ] ]
      ()
  in
  Alcotest.(check bool) "uncovered-indcall" true (has_rule "uncovered-indcall" fs);
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "cb" ], "pre(check(call, cb, 8))") ]
      ~funcs:
        [ func "f" [ "cb" ] ~export:"t.entry" [ expr (call_ind (v "cb") []); ret0 ] ]
      ()
  in
  Alcotest.(check string) "covered indcall" "" (rules fs)

let test_principal_held_store () =
  let open Mir.Builder in
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "sock" ], "principal(sock)") ]
      ~funcs:
        [ func "f" [ "sock" ] ~export:"t.entry" [ store64 (v "sock") (ii 0); ret0 ] ]
      ()
  in
  Alcotest.(check bool) "principal-held-store info" true
    (has_rule "principal-held-store" fs);
  Alcotest.(check int) "no errors" 0 (F.errors fs)

let test_use_after_transfer () =
  let open Mir.Builder in
  let kexports =
    [
      {
        Check.Env.kx_name = "take";
        kx_params = [ "p" ];
        kx_annot = parse "pre(transfer(write, p, 8))";
      };
    ]
  in
  let fs =
    capflow ~kexports
      ~slots:[ ("t.entry", [ "n" ], "") ]
      ~funcs:
        [
          func "f" [ "n" ] ~export:"t.entry"
            [
              alloca "x" 16;
              expr (call_ext "take" [ v "x" ]);
              store64 (v "x") (ii 1);
              ret0;
            ];
        ]
      ()
  in
  Alcotest.(check bool) "use-after-transfer" true (has_rule "use-after-transfer" fs)

let test_over_privilege_and_arity () =
  let open Mir.Builder in
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "buf" ], "pre(copy(write, buf, 8))") ]
      ~funcs:[ func "f" [ "buf" ] ~export:"t.entry" [ ret0 ] ]
      ()
  in
  Alcotest.(check bool) "over-privilege" true (has_rule "over-privilege" fs);
  let fs =
    capflow
      ~slots:[ ("t.entry", [ "a" ], "") ]
      ~funcs:[ func "f" [ "a"; "b" ] ~export:"t.entry" [ ret0 ] ]
      ()
  in
  Alcotest.(check bool) "param-arity" true (has_rule "param-arity" fs)

let test_propagation () =
  let open Mir.Builder in
  let fs =
    capflow ~slots:[]
      ~funcs:[ func "f" [ "a" ] ~export:"no.such" [ ret0 ] ]
      ()
  in
  Alcotest.(check bool) "unknown slot type" true (has_rule "propagation" fs);
  Alcotest.(check bool) "is an error" true (List.exists F.is_error fs)

(* ------------------------------------------------------------------ *)
(* Syscall-flow extraction (apiflow)                                   *)
(* ------------------------------------------------------------------ *)

let flow_kexports names =
  List.map
    (fun n -> { Check.Env.kx_name = n; kx_params = [ "a" ]; kx_annot = parse "" })
    names

let flow_env () =
  let _, env =
    mk_env
      ~kexports:
        (flow_kexports
           [ "kmalloc"; "kfree"; "spin_lock"; "spin_unlock"; "spin_lock_init" ])
      ()
  in
  env

let test_flow_graph_shape () =
  let open Mir.Builder in
  let p =
    prog "m" ~imports:[ "kmalloc"; "kfree" ] ~globals:[]
      ~funcs:
        [
          func "f" [ "n" ]
            [
              let_ "p" (call_ext "kmalloc" [ v "n" ]);
              expr (call_ext "kfree" [ v "p" ]);
              ret0;
            ];
        ]
  in
  let g = Check.Apiflow.extract (flow_env ()) p in
  Alcotest.(check (list string)) "nodes" [ "kfree"; "kmalloc" ] g.Check.Apiflow.g_nodes;
  Alcotest.(check (list string)) "start" [ "kmalloc" ] g.Check.Apiflow.g_start;
  (* (kmalloc, kfree) within the entry; (kfree, kmalloc) across the
     entry boundary (a kernel may re-enter the module) *)
  Alcotest.(check bool) "intra edge" true
    (Check.Apiflow.permits g ~pos:(Some "kmalloc") "kfree");
  Alcotest.(check bool) "boundary edge" true
    (Check.Apiflow.permits g ~pos:(Some "kfree") "kmalloc");
  Alcotest.(check bool) "kfree is not a start" false
    (Check.Apiflow.permits g ~pos:None "kfree");
  Alcotest.(check bool) "no kfree -> kfree edge" false
    (Check.Apiflow.permits g ~pos:(Some "kfree") "kfree");
  Alcotest.(check bool) "has_node" true (Check.Apiflow.has_node g "kmalloc");
  Alcotest.(check bool) "foreign node" false (Check.Apiflow.has_node g "vmalloc")

let test_flow_undefined_callee () =
  let open Mir.Builder in
  let p =
    prog "m" ~imports:[] ~globals:[]
      ~funcs:[ func "f" [ "n" ] [ let_ "x" (call "nope" [ v "n" ]); ret (v "x") ] ]
  in
  let fs = Check.Apiflow.check_module (flow_env ()) p in
  Alcotest.(check bool) "flow-extraction error" true (has_rule "flow-extraction" fs);
  Alcotest.(check bool) "is an error" true (List.exists F.is_error fs)

(* Extraction soundness on the fuzzer's well-behaved modules: the
   loader self-extracts this graph under [flow_integrity] and the
   runtime automaton checks every kernel-API call against it, so any
   false rejection surfaces as a violation outcome in the clean drive.
   Determinism: two independent extractions render byte-identically. *)
let prop_flow_soundness =
  QCheck.Test.make ~count:25
    ~name:"flow graph accepts every clean run; extraction deterministic"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let case = Fuzz.Gen.case_of_rand (Fuzz.Rng.rand (Fuzz.Rng.create ~seed)) in
      let render () =
        Check.Apiflow.render (Check.Apiflow.extract (flow_env ()) case.Fuzz.Gen.c_prog)
      in
      if render () <> render () then
        QCheck.Test.fail_report "extraction is not deterministic";
      (match Fuzz.Harness.clean_sig_under Lxfi.Config.lxfi case with
      | Error m -> QCheck.Test.fail_reportf "setup: %s" m
      | Ok s ->
          List.iter
            (fun (name, o) ->
              match o with
              | Fuzz.Harness.Oviolation k ->
                  QCheck.Test.fail_reportf "%s: clean run rejected as %s" name
                    (Lxfi.Violation.kind_name k)
              | Fuzz.Harness.Oval _ | Fuzz.Harness.Oexn _ -> ())
            s.Fuzz.Harness.s_outcomes);
      true)

(* ------------------------------------------------------------------ *)
(* Catalog acceptance                                                  *)
(* ------------------------------------------------------------------ *)

let test_catalog_clean () =
  Kernel_sim.Klog.quiet ();
  let r = Workloads.Check_run.check_catalog () in
  Alcotest.(check bool) "shipped corpus has no error findings" false
    (Workloads.Check_run.has_errors r);
  Alcotest.(check int) "all ten modules checked" 10 (List.length r.Workloads.Check_run.r_modules)

let test_broken_demo () =
  Kernel_sim.Klog.quiet ();
  let r = Workloads.Check_run.broken_demo () in
  Alcotest.(check bool) "broken demo has errors" true (Workloads.Check_run.has_errors r);
  let fs = r.Workloads.Check_run.r_summary.Check.Checker.findings in
  List.iter
    (fun rule ->
      Alcotest.(check bool) rule true (has_rule rule fs))
    [ "unknown-param"; "unknown-iterator"; "uncovered-store" ];
  (* the JSON report carries the findings *)
  let json = Workloads.Bench_json.to_string (Workloads.Check_run.to_json r) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json names the rule" true (contains json "uncovered-store");
  Alcotest.(check bool) "json counts errors" true (contains json "\"errors\": 3")

let test_strict_loader () =
  (* Config.strict_check turns checker errors into load errors *)
  Kernel_sim.Klog.quiet ();
  let open Mir.Builder in
  let sys = Kmodules.Ksys.boot { Lxfi.Config.lxfi with Lxfi.Config.strict_check = true } in
  ignore
    (Annot.Registry.define_exn sys.Kmodules.Ksys.rt.Lxfi.Runtime.registry ~name:"strict.entry"
       ~params:[ "buf" ] ~annot_src:"");
  let prog =
    prog "strictmod" ~imports:[] ~globals:[]
      ~funcs:
        [ func "entry" [ "buf" ] ~export:"strict.entry" [ store64 (v "buf") (ii 0); ret0 ] ]
  in
  (match Kmodules.Ksys.load sys prog with
  | exception Lxfi.Loader.Load_error m ->
      Alcotest.(check bool) "message names the check" true
        (String.length m > 0)
  | _ -> Alcotest.fail "strict mode must refuse the module");
  (* same module loads fine without strict checking *)
  let sys2 = Kmodules.Ksys.boot Lxfi.Config.lxfi in
  ignore
    (Annot.Registry.define_exn sys2.Kmodules.Ksys.rt.Lxfi.Runtime.registry ~name:"strict.entry"
       ~params:[ "buf" ] ~annot_src:"");
  ignore (Kmodules.Ksys.load sys2 prog)

let () =
  Alcotest.run "check"
    [
      ( "lint",
        [
          Alcotest.test_case "error rules" `Quick test_lint_errors;
          Alcotest.test_case "warning rules" `Quick test_lint_warnings;
          Alcotest.test_case "transfer-then-use" `Quick test_transfer_then_use;
          Alcotest.test_case "clean annotation" `Quick test_lint_clean;
        ] );
      ( "capflow",
        [
          Alcotest.test_case "uncovered store" `Quick test_uncovered_store;
          Alcotest.test_case "param-rooted arithmetic" `Quick test_param_rooted_arith;
          Alcotest.test_case "uncovered indirect call" `Quick test_uncovered_indcall;
          Alcotest.test_case "principal-held store" `Quick test_principal_held_store;
          Alcotest.test_case "use after transfer" `Quick test_use_after_transfer;
          Alcotest.test_case "over-privilege + arity" `Quick test_over_privilege_and_arity;
          Alcotest.test_case "propagation errors" `Quick test_propagation;
        ] );
      ( "apiflow",
        [
          Alcotest.test_case "graph shape" `Quick test_flow_graph_shape;
          Alcotest.test_case "undefined callee" `Quick test_flow_undefined_callee;
          QCheck_alcotest.to_alcotest prop_flow_soundness;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "catalog checks clean" `Quick test_catalog_clean;
          Alcotest.test_case "broken demo rejected" `Quick test_broken_demo;
          Alcotest.test_case "strict loader gate" `Quick test_strict_loader;
        ] );
    ]

(* Known-limitation pinning: behaviours this reproduction *inherits
   from the paper's design* and does not claim to prevent.  If future
   hardening closes one, the corresponding test will fail and should be
   inverted — these are documentation, not aspirations. *)

open Kernel_sim
open Kmodules

(* Data-pointer redirection (DESIGN.md "Known limitations"): a module
   holding WRITE over a struct containing a *data* pointer to its ops
   table can aim that pointer at kernel-owned memory; the eventual
   function-pointer slot then has no module writers, so the writer-set
   fast path skips the CALL check.  Both the paper's system and this
   one accept this residual risk on interfaces that grant struct WRITE
   (mitigated by Guidelines 1 and 4 where applied). *)
let test_data_pointer_redirection_not_caught () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let _h = Mod_common.install sys Econet.spec in
  let kst = sys.Ksys.kst in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  let sock = Sockets.sock_of_fd sys.Ksys.sock fd in
  (* the module (simulated as compromised) redirects sock->ops — a data
     pointer it legitimately has WRITE over — at kernel memory where a
     kernel-function address happens to sit at the ioctl offset *)
  let ioctl_off = Ktypes.offset kst.Kstate.types "proto_ops" "ioctl" in
  let fake_ops = Slab.kmalloc kst.Kstate.slab 64 in
  let benign_kfn =
    Kstate.register_kernel_fn kst "some_kernel_fn" (fun _ -> 77L)
  in
  Kmem.write_ptr kst.Kstate.mem (fake_ops + ioctl_off) benign_kfn;
  Kmem.write_ptr kst.Kstate.mem
    (sock + Ktypes.offset kst.Kstate.types "socket" "ops")
    fake_ops;
  (* the kernel follows the redirected pointer: no writers on the fake
     slot, fast path, dispatch — the documented gap *)
  let r = Sockets.sys_ioctl sys.Ksys.sock ~fd ~cmd:0 ~arg:0 in
  Alcotest.(check int64) "redirection rides the fast path (known limitation)" 77L r

(* Reads are unguarded: a module can read any kernel memory (LXFI
   protects integrity, not secrecy — paper §2). *)
let test_reads_unguarded () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:"bench.entry"
       ~params:[ "n" ] ~annot_src:"");
  let kst = sys.Ksys.kst in
  let secret = Slab.kmalloc kst.Kstate.slab 16 in
  Kmem.write_u64 kst.Kstate.mem secret 0x5ec2e7L;
  let open Mir.Builder in
  let p =
    prog "reader" ~imports:[] ~globals:[]
      ~funcs:
        [
          func "module_init" [] [ ret0 ];
          func "entry" [ "n" ] [ ret (load64 (v "n")) ] ~export:"bench.entry";
        ]
  in
  let mi, _ = Ksys.load sys p in
  Alcotest.(check int64) "kernel memory readable (by design)" 0x5ec2e7L
    (Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "entry"
       [ Int64.of_int secret ])

let () =
  Klog.quiet ();
  Alcotest.run "limitations"
    [
      ( "documented gaps",
        [
          Alcotest.test_case "data-pointer redirection" `Quick
            test_data_pointer_redirection_not_caught;
          Alcotest.test_case "reads unguarded" `Quick test_reads_unguarded;
        ] );
    ]

(* End-to-end tests of the e1000 driver under all three enforcement
   modes: probe, transmit, receive, principal aliasing, capability flow. *)

open Kernel_sim
open Kmodules

let setup config =
  let sys = Ksys.boot config in
  let pcidev, nic = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let h = Mod_common.install sys E1000.spec in
  (sys, pcidev, nic, h)

let dev_of sys pcidev = Pci.pci_get_drvdata sys.Ksys.pci pcidev

let send_one sys pcidev len =
  let skb = Skbuff.alloc sys.Ksys.kst len in
  Skbuff.set_dev sys.Ksys.kst skb (dev_of sys pcidev);
  Netdev.dev_queue_xmit sys.Ksys.net skb

let test_probe_binds config () =
  let sys, pcidev, _nic, _h = setup config in
  Alcotest.(check bool) "device enabled" true (Pci.is_enabled sys.Ksys.pci pcidev);
  Alcotest.(check bool) "drvdata set" true (dev_of sys pcidev <> 0)

let test_xmit config () =
  let sys, pcidev, nic, _h = setup config in
  for _ = 1 to 10 do
    let r = send_one sys pcidev 64 in
    Alcotest.(check int64) "NETDEV_TX_OK" 0L r;
    ignore (Nic.drain_tx nic)
  done;
  let pkts, bytes = Nic.tx_stats nic in
  Alcotest.(check int) "packets on wire" 10 pkts;
  Alcotest.(check int) "bytes on wire" 640 bytes

let test_rx config () =
  let sys, pcidev, nic, _h = setup config in
  let injected = Nic.inject_rx nic ~count:8 ~frame_len:64 in
  Alcotest.(check int) "frames injected" 8 injected;
  (* real interrupt path: the kernel runs the module's registered
     handler, which schedules NAPI *)
  let token = Lxfi.Runtime.irq_enter sys.Ksys.rt in
  let handled = Irqchip.raise_irq sys.Ksys.irq ~irq:(Pci.irq sys.Ksys.pci pcidev) in
  Lxfi.Runtime.irq_exit sys.Ksys.rt token;
  Alcotest.(check int64) "irq handled" 1L handled;
  let work = Netdev.poll_scheduled sys.Ksys.net ~budget:64 in
  Alcotest.(check int) "poll harvested all frames" 8 work;
  Alcotest.(check int) "stack received them" 8 sys.Ksys.net.Netdev.rx_delivered_pkts

let test_tx_completion_frees config () =
  let sys, pcidev, nic, _h = setup config in
  let live0 = Slab.live_objects sys.Ksys.kst.Kstate.slab in
  (* Send, drain, send again (cleanup of the first), drain... the skb
     population must stay bounded. *)
  for _ = 1 to 50 do
    ignore (send_one sys pcidev 100);
    ignore (Nic.drain_tx nic)
  done;
  let live = Slab.live_objects sys.Ksys.kst.Kstate.slab in
  Alcotest.(check bool)
    (Printf.sprintf "no unbounded skb leak (%d -> %d)" live0 live)
    true
    (live - live0 < 10)

let test_napi_principal_aliased () =
  let sys, pcidev, _nic, h = setup Lxfi.Config.lxfi in
  let mi = h.Mod_common.mi in
  let p_pci = Hashtbl.find mi.Lxfi.Runtime.mi_aliases pcidev in
  let p_ndev = Hashtbl.find mi.Lxfi.Runtime.mi_aliases (dev_of sys pcidev) in
  let p_napi = Hashtbl.find mi.Lxfi.Runtime.mi_aliases (E1000.napi_addr sys ~pcidev) in
  Alcotest.(check int) "ndev aliases pci principal" p_pci.Lxfi.Principal.id p_ndev.Lxfi.Principal.id;
  Alcotest.(check int) "napi aliases pci principal" p_pci.Lxfi.Principal.id p_napi.Lxfi.Principal.id

let test_skb_caps_transferred_on_rx () =
  let sys, pcidev, nic, h = setup Lxfi.Config.lxfi in
  ignore (Nic.inject_rx nic ~count:1 ~frame_len:64);
  Netdev.napi_schedule sys.Ksys.net (E1000.napi_addr sys ~pcidev);
  ignore (Netdev.poll_scheduled sys.Ksys.net ~budget:64);
  (* After netif_rx, the driver must hold no WRITE capability on the
     packet it handed up (which has been freed by the stack). *)
  let mi = h.Mod_common.mi in
  let stats = sys.Ksys.rt.Lxfi.Runtime.stats in
  Alcotest.(check bool) "capabilities were revoked" true (stats.Lxfi.Stats.caps_revoked > 0);
  ignore mi

let test_guard_counts_nonzero () =
  let sys, pcidev, nic, _h = setup Lxfi.Config.lxfi in
  let s0 = Lxfi.Stats.snapshot sys.Ksys.rt.Lxfi.Runtime.stats in
  ignore (send_one sys pcidev 64);
  ignore (Nic.drain_tx nic);
  let d = Lxfi.Stats.since sys.Ksys.rt.Lxfi.Runtime.stats s0 in
  Alcotest.(check bool) "write checks fired" true (d.Lxfi.Stats.s_mem_write_checks > 5);
  Alcotest.(check bool) "annotation actions fired" true (d.Lxfi.Stats.s_annotation_actions > 0);
  Alcotest.(check bool) "kernel ind-calls seen" true (d.Lxfi.Stats.s_kernel_indcall_all >= 3);
  Alcotest.(check bool) "some ind-calls elided (qdisc)" true
    (d.Lxfi.Stats.s_kernel_indcall_elided >= 2)

let test_stock_has_no_guards () =
  let sys, pcidev, nic, _h = setup Lxfi.Config.stock in
  let s0 = Lxfi.Stats.snapshot sys.Ksys.rt.Lxfi.Runtime.stats in
  ignore (send_one sys pcidev 64);
  ignore (Nic.drain_tx nic);
  let d = Lxfi.Stats.since sys.Ksys.rt.Lxfi.Runtime.stats s0 in
  Alcotest.(check int) "no write checks" 0 d.Lxfi.Stats.s_mem_write_checks;
  Alcotest.(check int) "no annotation actions" 0 d.Lxfi.Stats.s_annotation_actions

let test_two_nics config () =
  (* one module, two adapters: traffic must flow independently on each
     card (per-adapter private state), and under LXFI each instance only
     touches its own rings *)
  let sys = Ksys.boot config in
  let pci1, nic1 = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let pci2, nic2 = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let _h = Mod_common.install sys E1000.spec in
  for _ = 1 to 3 do
    ignore (send_one sys pci1 64)
  done;
  for _ = 1 to 5 do
    ignore (send_one sys pci2 64)
  done;
  ignore (Nic.drain_tx nic1);
  ignore (Nic.drain_tx nic2);
  Alcotest.(check int) "card 1 got its 3 packets" 3 (fst (Nic.tx_stats nic1));
  Alcotest.(check int) "card 2 got its 5 packets" 5 (fst (Nic.tx_stats nic2));
  (* receive on both, through each adapter's own napi *)
  ignore (Nic.inject_rx nic1 ~count:2 ~frame_len:64);
  ignore (Nic.inject_rx nic2 ~count:4 ~frame_len:64);
  Netdev.napi_schedule sys.Ksys.net (E1000.napi_addr sys ~pcidev:pci1);
  Netdev.napi_schedule sys.Ksys.net (E1000.napi_addr sys ~pcidev:pci2);
  let work = Netdev.poll_scheduled sys.Ksys.net ~budget:64 in
  Alcotest.(check int) "both adapters polled" 6 work

let test_strict_skb_guideline4 () =
  (* Guideline 4 (§6): with the field-accessor API, the driver receives
     packets and hands them up without ever holding WRITE over the
     sk_buff struct — only REF(sk_buff_fields) + payload WRITE. *)
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let pcidev, nic = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let h = Mod_common.install sys E1000.spec_strict in
  let mi = h.Mod_common.mi in
  (* watch the capability grants during one RX burst *)
  ignore (Nic.inject_rx nic ~count:4 ~frame_len:64);
  let p = Hashtbl.find mi.Lxfi.Runtime.mi_aliases pcidev in
  Netdev.napi_schedule sys.Ksys.net (E1000.napi_addr sys ~pcidev);
  let work = Netdev.poll_scheduled sys.Ksys.net ~budget:64 in
  Alcotest.(check int) "strict driver receives" 4 work;
  Alcotest.(check int) "stack got the packets" 4 sys.Ksys.net.Netdev.rx_delivered_pkts;
  ignore p

let test_strict_skb_blocks_struct_writes () =
  (* the point of Guideline 4: a module on the strict API that tries to
     write the sk_buff struct directly is refused *)
  let sys = Ksys.boot Lxfi.Config.lxfi in
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:"bench.entry"
       ~params:[ "n" ] ~annot_src:"");
  let open Mir.Builder in
  let skb_data_off = Ksys.off sys "sk_buff" "data" in
  let p =
    prog "strictmod" ~imports:[ "kmalloc"; "build_skb_strict"; "skb_set_len" ]
      ~globals:[]
      ~funcs:
        [
          func "module_init" [] [ ret0 ];
          func "entry" [ "n" ]
            [
              let_ "buf" (call_ext "kmalloc" [ ii 128 ]);
              let_ "skb" (call_ext "build_skb_strict" [ v "buf"; ii 64 ]);
              (* allowed: payload write + accessor *)
              store64 (v "buf") (ii 7);
              expr (call_ext "skb_set_len" [ v "skb"; ii 32 ]);
              when_ (v "n" ==: ii 1)
                [ (* forbidden: redirect skb->data directly *)
                  store64 (v "skb" +: ii skb_data_off) (ii 0x1234) ];
              ret0;
            ]
            ~export:"bench.entry";
        ]
  in
  let mi, _ = Ksys.load sys p in
  Alcotest.(check int64) "accessor path works" 0L
    (Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "entry" [ 0L ]);
  match Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "entry" [ 1L ] with
  | exception Lxfi.Violation.Violation v ->
      Alcotest.(check string) "struct write denied" "write-denied"
        (Lxfi.Violation.kind_name v.Lxfi.Violation.v_kind)
  | _ -> Alcotest.fail "direct sk_buff struct write must be refused"

let modes name f =
  [
    Alcotest.test_case (name ^ " [stock]") `Quick (f Lxfi.Config.stock);
    Alcotest.test_case (name ^ " [xfi]") `Quick (f Lxfi.Config.xfi);
    Alcotest.test_case (name ^ " [lxfi]") `Quick (f Lxfi.Config.lxfi);
  ]

let () =
  Klog.quiet ();
  Alcotest.run "e1000"
    [
      ("probe", modes "probe binds device" test_probe_binds);
      ("xmit", modes "transmit path" test_xmit);
      ("rx", modes "napi receive path" test_rx);
      ("completion", modes "tx completion frees skbs" test_tx_completion_frees);
      ("multi-nic", modes "two adapters, one module" test_two_nics);
      ( "principals",
        [
          Alcotest.test_case "napi/ndev alias pci principal" `Quick
            test_napi_principal_aliased;
          Alcotest.test_case "skb caps revoked after netif_rx" `Quick
            test_skb_caps_transferred_on_rx;
        ] );
      ( "guards",
        [
          Alcotest.test_case "lxfi counts guards" `Quick test_guard_counts_nonzero;
          Alcotest.test_case "stock counts none" `Quick test_stock_has_no_guards;
        ] );
      ( "guideline 4",
        [
          Alcotest.test_case "strict driver works" `Quick test_strict_skb_guideline4;
          Alcotest.test_case "strict API blocks struct writes" `Quick
            test_strict_skb_blocks_struct_writes;
        ] );
    ]

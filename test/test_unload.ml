(* Module unloading (rmmod): clean unload after module_exit, refusal of
   new work afterwards, and the dangling-pointer hazard when an exit
   function forgets to unregister. *)

open Kernel_sim
open Kmodules

let test_clean_unload () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let h = Mod_common.install sys Econet.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  Alcotest.(check bool) "socket worked before unload" true (fd >= 3);
  ignore (Sockets.sys_close sys.Ksys.sock ~fd);
  Lxfi.Loader.unload sys.Ksys.rt h.Mod_common.mi;
  Alcotest.(check int) "module gone from the runtime" 0
    (Hashtbl.length sys.Ksys.rt.Lxfi.Runtime.modules);
  (* module_exit unregistered the family: new sockets are refused
     cleanly, not crashed *)
  Alcotest.(check int) "family unregistered" (-97)
    (Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2)

let test_reload_after_unload () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let h = Mod_common.install sys Rds.spec in
  Lxfi.Loader.unload sys.Ksys.rt h.Mod_common.mi;
  (* loading the same module again must work (no duplicate-name error) *)
  let _h2 = Mod_common.install sys Rds.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_rds ~typ:2 in
  Alcotest.(check bool) "reloaded module serves sockets" true (fd >= 3)

let test_dangling_pointer_after_buggy_unload () =
  (* a module whose exit function forgets sock_unregister: the kernel
     still holds its create pointer, and the next socket() oopses on a
     retired address instead of silently running stale code *)
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let h = Mod_common.install sys Can.spec in
  let mi = h.Mod_common.mi in
  (* simulate the bug by stripping module_exit's effect: unregistering
     is skipped because we re-register the family behind its back *)
  Lxfi.Loader.unload sys.Ksys.rt mi;
  let npf = Mod_common.gaddr mi "can_npf" in
  ignore (Sockets.sock_register sys.Ksys.sock npf);
  (match Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_can ~typ:3 with
  | exception Kstate.Oops _ -> ()
  | fd -> Alcotest.failf "expected an oops, got fd %d" fd);
  ()

let test_dangling_pointer_quarantined () =
  (* same hazard under a quarantine config: the retired-address call is
     a contained violation attributed to the unloaded module, not an
     oops — and the kernel keeps running *)
  let sys = Ksys.boot Lxfi.Config.lxfi_quarantine in
  let h = Mod_common.install sys Can.spec in
  let mi = h.Mod_common.mi in
  Lxfi.Loader.unload sys.Ksys.rt mi;
  let npf = Mod_common.gaddr mi "can_npf" in
  ignore (Sockets.sock_register sys.Ksys.sock npf);
  (match
     Lxfi.Quarantine.protect sys.Ksys.rt (fun () ->
         Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_can ~typ:3)
   with
  | Ok fd -> Alcotest.failf "expected containment, got fd %d" fd
  | Error v ->
      Alcotest.(check string) "denied as a call violation" "call-denied"
        (Lxfi.Violation.kind_name v.Lxfi.Violation.v_kind));
  Alcotest.(check int) "shadow stack balanced" 0
    (Lxfi.Shadow_stack.depth sys.Ksys.rt.Lxfi.Runtime.sstack);
  Alcotest.(check bool) "kernel context restored" true
    (sys.Ksys.rt.Lxfi.Runtime.current = None);
  (* unrelated work still flows *)
  let _h2 = Mod_common.install sys Rds.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_rds ~typ:2 in
  Alcotest.(check bool) "other modules still serve" true (fd >= 3)

let test_unload_twice_fails () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let h = Mod_common.install sys Dm_zero.spec in
  Blockdev.unregister_target sys.Ksys.blk ~name:"zero";
  Lxfi.Loader.unload sys.Ksys.rt h.Mod_common.mi;
  match Lxfi.Loader.unload sys.Ksys.rt h.Mod_common.mi with
  | exception Lxfi.Loader.Load_error _ -> ()
  | () -> Alcotest.fail "double unload must fail"

let test_unload_revokes_all_ref_rtypes () =
  (* regression: retirement used to drop only the first rtype bucket it
     saw, so a REF of a second rtype survived the unload and a reloaded
     attacker could present it to a check(ref) wrapper *)
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let h = Mod_common.install sys Rds.spec in
  let p = h.Mod_common.mi.Lxfi.Runtime.mi_shared in
  Lxfi.Runtime.grant sys.Ksys.rt p
    (Lxfi.Capability.Cref { rtype = "pci_dev"; addr = 0x9100 });
  Lxfi.Runtime.grant sys.Ksys.rt p
    (Lxfi.Capability.Cref { rtype = "io_port"; addr = 0x9200 });
  Alcotest.(check bool) "both REFs held before unload" true
    (Lxfi.Captable.has_ref p.Lxfi.Principal.caps ~rtype:"pci_dev" ~addr:0x9100
    && Lxfi.Captable.has_ref p.Lxfi.Principal.caps ~rtype:"io_port" ~addr:0x9200);
  Lxfi.Loader.unload sys.Ksys.rt h.Mod_common.mi;
  Alcotest.(check bool) "pci_dev REF revoked" false
    (Lxfi.Captable.has_ref p.Lxfi.Principal.caps ~rtype:"pci_dev" ~addr:0x9100);
  Alcotest.(check bool) "io_port REF revoked" false
    (Lxfi.Captable.has_ref p.Lxfi.Principal.caps ~rtype:"io_port" ~addr:0x9200);
  Alcotest.(check int) "no REF of any rtype survives" 0
    (Lxfi.Captable.ref_count p.Lxfi.Principal.caps)

let test_unload_preserves_other_modules () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let h_rds = Mod_common.install sys Rds.spec in
  let _h_econet = Mod_common.install sys Econet.spec in
  Lxfi.Loader.unload sys.Ksys.rt h_rds.Mod_common.mi;
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  Alcotest.(check bool) "econet unaffected by rds unload" true (fd >= 3);
  let u = Kstate.user_alloc sys.Ksys.kst 16 in
  Alcotest.(check int64) "econet still enforced and working" 8L
    (Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:u ~len:8 ~flags:0)

let () =
  Klog.quiet ();
  Alcotest.run "unload"
    [
      ( "rmmod",
        [
          Alcotest.test_case "clean unload" `Quick test_clean_unload;
          Alcotest.test_case "reload after unload" `Quick test_reload_after_unload;
          Alcotest.test_case "dangling pointers oops" `Quick
            test_dangling_pointer_after_buggy_unload;
          Alcotest.test_case "dangling pointers quarantined" `Quick
            test_dangling_pointer_quarantined;
          Alcotest.test_case "double unload fails" `Quick test_unload_twice_fails;
          Alcotest.test_case "all REF rtypes revoked" `Quick
            test_unload_revokes_all_ref_rtypes;
          Alcotest.test_case "other modules preserved" `Quick
            test_unload_preserves_other_modules;
        ] );
    ]

(* Snapshot determinism properties over fuzzer-generated modules.

   The lifecycle machinery (hot upgrade, quarantine repair) leans on
   three Snapshot facts, checked here as qcheck properties instead of
   hand-picked examples:

   - capture -> restore -> capture round-trips byte-identically, for
     any generated module in any reachable post-traffic state;
   - restore really is an exact restore: scrub the capability tables,
     globals and quarantine flags and the snapshot puts every byte
     back;
   - [diff a b = []] exactly when [equal a b], so the reconciliation
     oracles can report differences without a second comparison
     path. *)

let boot_case (case : Fuzz.Gen.case) =
  let sys = Kmodules.Ksys.boot Lxfi.Config.lxfi in
  let rt = sys.Kmodules.Ksys.rt in
  List.iter
    (fun (name, params, annot_src) ->
      ignore
        (Annot.Registry.define_exn rt.Lxfi.Runtime.registry ~name ~params ~annot_src
          : Annot.Registry.slot))
    Fuzz.Gen.slot_defs;
  let kbuf = Kernel_sim.Slab.kmalloc sys.Kmodules.Ksys.kst.Kernel_sim.Kstate.slab
      Fuzz.Gen.kbuf_size
  in
  let mi, _report = Kmodules.Ksys.load sys case.Fuzz.Gen.c_prog in
  ignore (Lxfi.Loader.init_call rt mi "module_init" [] : int64);
  (* drive real traffic so the captured state includes dynamic grants,
     instance principals and mutated globals, not just the load-time
     baseline *)
  List.iter
    (fun n ->
      ignore (Lxfi.Runtime.invoke_module_function rt mi "entry" [ n ] : int64);
      ignore
        (Lxfi.Runtime.invoke_module_function rt mi "touch" [ Int64.of_int kbuf; n ]
          : int64);
      ignore (Lxfi.Runtime.invoke_module_function rt mi "peer" [ 0x7001L; n ] : int64))
    case.Fuzz.Gen.c_inputs;
  (sys, mi)

let case_of_seed seed =
  let rng = Fuzz.Rng.create ~seed in
  Fuzz.Gen.case_of_rand (Fuzz.Rng.rand rng)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let prop_capture_restore_capture =
  QCheck.Test.make ~count:40 ~name:"capture -> restore -> capture is byte-identical"
    arb_seed (fun seed ->
      let sys, mi = boot_case (case_of_seed seed) in
      let rt = sys.Kmodules.Ksys.rt in
      let s1 = Lxfi.Snapshot.capture rt mi in
      Lxfi.Snapshot.restore rt mi s1;
      let s2 = Lxfi.Snapshot.capture rt mi in
      String.equal (Lxfi.Snapshot.render s1) (Lxfi.Snapshot.render s2))

(* Scrub everything restore is specified to put back — capability
   tables, quarantine flags, global bytes — using raw table/memory
   operations (stats-silent, so the stats line cannot mask a miss). *)
let prop_restore_is_exact =
  QCheck.Test.make ~count:30 ~name:"restore undoes capability+global+quarantine scrub"
    arb_seed (fun seed ->
      let sys, mi = boot_case (case_of_seed seed) in
      let rt = sys.Kmodules.Ksys.rt in
      let s1 = Lxfi.Snapshot.capture rt mi in
      List.iter
        (fun (p : Lxfi.Principal.t) ->
          Lxfi.Captable.clear p.Lxfi.Principal.caps;
          p.Lxfi.Principal.quarantined <- Some "scrubbed")
        mi.Lxfi.Runtime.mi_principals;
      let arena = Kmodules.Mod_common.gaddr mi "arena" in
      let mem = sys.Kmodules.Ksys.kst.Kernel_sim.Kstate.mem in
      for i = 0 to Fuzz.Gen.arena_size - 1 do
        Kernel_sim.Kmem.write_u8 mem (arena + i) 0xee
      done;
      let scrubbed = Lxfi.Snapshot.capture rt mi in
      Lxfi.Snapshot.restore rt mi s1;
      let s2 = Lxfi.Snapshot.capture rt mi in
      (not (Lxfi.Snapshot.equal s1 scrubbed))
      && String.equal (Lxfi.Snapshot.render s1) (Lxfi.Snapshot.render s2))

let prop_diff_empty_iff_equal =
  QCheck.Test.make ~count:30 ~name:"diff is empty exactly when snapshots are equal"
    (QCheck.pair arb_seed arb_seed) (fun (seed_a, seed_b) ->
      let sys_a, mi_a = boot_case (case_of_seed seed_a) in
      let sys_b, mi_b = boot_case (case_of_seed seed_b) in
      let a = Lxfi.Snapshot.capture sys_a.Kmodules.Ksys.rt mi_a in
      let b = Lxfi.Snapshot.capture sys_b.Kmodules.Ksys.rt mi_b in
      let coherent x y =
        Lxfi.Snapshot.diff x y = [] = Lxfi.Snapshot.equal x y
      in
      Lxfi.Snapshot.diff a a = []
      && Lxfi.Snapshot.diff b b = []
      && coherent a b && coherent b a)

(* Each diff line carries the side marker the reconciliation reports
   print verbatim. *)
let test_diff_markers () =
  let sys, mi = boot_case (case_of_seed 11) in
  let rt = sys.Kmodules.Ksys.rt in
  let s1 = Lxfi.Snapshot.capture rt mi in
  mi.Lxfi.Runtime.mi_shared.Lxfi.Principal.quarantined <- Some "marker-test";
  let s2 = Lxfi.Snapshot.capture rt mi in
  let d = Lxfi.Snapshot.diff s1 s2 in
  Alcotest.(check bool) "scrub shows up" true (d <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "line %S has a side marker" l)
        true
        (String.length l > 2
        && (String.sub l 0 2 = "- " || String.sub l 0 2 = "+ ")))
    d

(* Hot upgrade re-validates the restored flow-automaton position
   against the new version's (possibly narrower) flow graph: a
   position naming a kexport the new graph no longer contains is stale
   and must drop to the automaton start — mirroring the grant-shrinking
   rule for restored WRITE capabilities. *)
let flow_slot = "flow.entry"

let flow_prog ~with_kfree =
  let open Mir.Builder in
  let tail =
    if with_kfree then [ expr (call_ext "kfree" [ v "p" ]); ret0 ] else [ ret0 ]
  in
  prog "flowmod" ~imports:[ "kmalloc"; "kfree" ] ~globals:[]
    ~funcs:
      [
        func "module_init" [] [ ret0 ];
        func "entry" [ "n" ]
          ([ let_ "p" (call_ext "kmalloc" [ ii 32 ]); when_ (v "p" ==: ii 0) [ ret0 ] ]
          @ tail)
          ~export:flow_slot;
      ]

let test_upgrade_revalidates_flow_position () =
  let sys = Kmodules.Ksys.boot Lxfi.Config.lxfi in
  let rt = sys.Kmodules.Ksys.rt in
  ignore
    (Annot.Registry.define_exn rt.Lxfi.Runtime.registry ~name:flow_slot
       ~params:[ "n" ] ~annot_src:""
      : Annot.Registry.slot);
  let drive mi =
    ignore (Lxfi.Runtime.invoke_module_function rt mi "entry" [ 1L ] : int64)
  in
  (* v1 ends every entry at kfree: the at-rest automaton position *)
  let mi, _ = Kmodules.Ksys.load sys (flow_prog ~with_kfree:true) in
  ignore (Lxfi.Loader.init_call rt mi "module_init" [] : int64);
  drive mi;
  Alcotest.(check (option string))
    "at-rest position is kfree" (Some "kfree")
    mi.Lxfi.Runtime.mi_shared.Lxfi.Principal.flow_pos;
  (* same-shape upgrade: the new graph still has the node, so the
     captured mid-sequence position survives the restore *)
  let mi2, _, _ = Lxfi.Loader.upgrade rt mi (flow_prog ~with_kfree:true) in
  Alcotest.(check (option string))
    "compatible upgrade keeps the position" (Some "kfree")
    mi2.Lxfi.Runtime.mi_shared.Lxfi.Principal.flow_pos;
  (* narrower upgrade: kfree is gone from the new version's graph, so
     the restored position is stale and must drop *)
  let mi3, _, _ = Lxfi.Loader.upgrade rt mi2 (flow_prog ~with_kfree:false) in
  Alcotest.(check (option string))
    "narrower upgrade drops the stale position" None
    mi3.Lxfi.Runtime.mi_shared.Lxfi.Principal.flow_pos;
  (* and the automaton restarts cleanly from the start set *)
  drive mi3;
  Alcotest.(check (option string))
    "post-upgrade traffic re-advances from start" (Some "kmalloc")
    mi3.Lxfi.Runtime.mi_shared.Lxfi.Principal.flow_pos

let () =
  Kernel_sim.Klog.quiet ();
  Alcotest.run "snapshot"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_capture_restore_capture;
            prop_restore_is_exact;
            prop_diff_empty_iff_equal;
          ] );
      ("diff", [ Alcotest.test_case "side markers" `Quick test_diff_markers ]);
      ( "lifecycle",
        [
          Alcotest.test_case "upgrade re-validates flow position" `Quick
            test_upgrade_revalidates_flow_position;
        ] );
    ]

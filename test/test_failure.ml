(* Failure injection: violations and crashes at awkward moments must
   leave the system consistent — shadow stack balanced, principal
   restored to kernel, later legitimate work unaffected.  (The paper's
   runtime panics; a reusable simulation must clean up instead, and
   these tests pin that down.) *)

open Kernel_sim
open Kmodules
open Mir.Builder

let entry_slot = "bench.entry"

let boot () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:entry_slot
       ~params:[ "n" ] ~annot_src:"");
  sys

let load sys prog = fst (Ksys.load sys prog)

let consistent sys =
  Alcotest.(check int) "shadow stack balanced" 0
    (Lxfi.Shadow_stack.depth sys.Ksys.rt.Lxfi.Runtime.sstack);
  Alcotest.(check bool) "kernel context restored" true
    (sys.Ksys.rt.Lxfi.Runtime.current = None)

let expect_violation f =
  match f () with
  | _ -> Alcotest.fail "expected a violation"
  | exception Lxfi.Violation.Violation _ -> ()

(* a module whose entry misbehaves in a configurable way *)
let crashy =
  prog "crashy" ~imports:[ "kmalloc"; "kfree" ] ~globals:[ global "g" 32 ]
    ~funcs:
      [
        func "module_init" [] [ ret0 ];
        (* n=1: wild store; n=2: NULL load; n=3: divide by zero;
           n=4: infinite loop; n=5: wild indirect call; else: fine *)
        func "entry" [ "n" ]
          [
            when_ (v "n" ==: ii 1) [ store64 (i 0x2_0BAD_0000L) (ii 1); ret0 ];
            when_ (v "n" ==: ii 2) [ ret (load64 (ii 8)) ];
            when_ (v "n" ==: ii 3) [ ret (ii 1 /: ii 0) ];
            when_ (v "n" ==: ii 4) [ while_ (ii 1) []; ret0 ];
            when_ (v "n" ==: ii 5)
              [ let_ "x" (call_ind (i 0x2_0BAD_0010L) []); ret (v "x") ];
            store64 (glob "g") (v "n");
            ret (load64 (glob "g"));
          ]
          ~export:entry_slot;
      ]

let invoke sys mi n =
  Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "entry" [ Int64.of_int n ]

let test_each_failure_then_recovery () =
  let sys = boot () in
  let mi = load sys crashy in
  (* wild store: violation *)
  expect_violation (fun () -> invoke sys mi 1);
  consistent sys;
  (* NULL load: fault propagates *)
  (match invoke sys mi 2 with
  | exception Kmem.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault");
  consistent sys;
  (* divide by zero: oops *)
  (match invoke sys mi 3 with
  | exception Kstate.Oops _ -> ()
  | _ -> Alcotest.fail "expected oops");
  consistent sys;
  (* wild indirect call: violation *)
  expect_violation (fun () -> invoke sys mi 5);
  consistent sys;
  (* after all that, legitimate work still flows *)
  Alcotest.(check int64) "module still usable" 9L (invoke sys mi 9)

let test_fuel_exhaustion_cleans_up () =
  let sys = boot () in
  let mi = load sys crashy in
  (match mi.Lxfi.Runtime.mi_ctx with
  | Some ctx -> Mir.Interp.refuel ~fuel:50_000 ctx
  | None -> ());
  (match invoke sys mi 4 with
  | exception Kstate.Oops _ -> ()
  | _ -> Alcotest.fail "expected soft lockup");
  consistent sys;
  (match mi.Lxfi.Runtime.mi_ctx with
  | Some ctx -> Mir.Interp.refuel ctx
  | None -> ());
  Alcotest.(check int64) "usable after refuel" 7L (invoke sys mi 7)

let test_violation_in_pre_action_cleans_up () =
  (* a kexport whose pre(check) fails mid-wrapper *)
  let sys = boot () in
  let p =
    prog "checked" ~imports:[ "kfree" ] ~globals:[]
      ~funcs:
        [
          func "module_init" [] [ ret0 ];
          func "entry" [ "n" ]
            [ expr (call_ext "kfree" [ i 0x2_00AB_0000L ]); ret0 ]
            ~export:entry_slot;
        ]
  in
  let mi = load sys p in
  (* freeing a non-object: the kmalloc_caps iterator oopses *)
  (match Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "entry" [ 0L ] with
  | exception (Kstate.Oops _ | Lxfi.Violation.Violation _) -> ()
  | _ -> Alcotest.fail "expected failure");
  consistent sys

let test_violation_during_irq_restores_interrupted_principal () =
  let sys = boot () in
  let mi = load sys crashy in
  (* pretend a module principal was interrupted *)
  let p = Lxfi.Runtime.find_or_create_instance sys.Ksys.rt mi ~name_ptr:0x9000 in
  sys.Ksys.rt.Lxfi.Runtime.current <- Some p;
  let token = Lxfi.Runtime.irq_enter sys.Ksys.rt in
  (* the handler (module code) violates inside the interrupt *)
  expect_violation (fun () -> invoke sys mi 1);
  Lxfi.Runtime.irq_exit sys.Ksys.rt token;
  (match sys.Ksys.rt.Lxfi.Runtime.current with
  | Some q -> Alcotest.(check int) "interrupted principal restored" p.Lxfi.Principal.id q.Lxfi.Principal.id
  | None -> Alcotest.fail "principal lost");
  sys.Ksys.rt.Lxfi.Runtime.current <- None

let test_violating_module_does_not_poison_others () =
  let sys = boot () in
  let bad = load sys crashy in
  let pcidev, nic = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let _ = Mod_common.install sys E1000.spec in
  expect_violation (fun () -> invoke sys bad 1);
  (* the NIC still transmits under full enforcement *)
  let dev = Pci.pci_get_drvdata sys.Ksys.pci pcidev in
  let skb = Skbuff.alloc sys.Ksys.kst 64 in
  Skbuff.set_dev sys.Ksys.kst skb dev;
  Alcotest.(check int64) "e1000 unaffected" 0L (Netdev.dev_queue_xmit sys.Ksys.net skb);
  ignore (Nic.drain_tx nic)

(* ---- quarantine mode: contain instead of propagate ---------------- *)

let obj_slot = "bench.obj_entry"

let qboot () =
  let sys = Ksys.boot Lxfi.Config.lxfi_quarantine in
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:entry_slot
       ~params:[ "n" ] ~annot_src:"");
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:obj_slot
       ~params:[ "obj"; "n" ] ~annot_src:"principal(obj)");
  sys

(* an innocent module loaded next to crashy *)
let buddy =
  prog "buddy" ~imports:[] ~globals:[ global "g" 32 ]
    ~funcs:
      [
        func "module_init" [] [ ret0 ];
        func "entry" [ "n" ]
          [ store64 (glob "g") (v "n"); ret (load64 (glob "g")) ]
          ~export:entry_slot;
      ]

let qdispatch sys mi n =
  Lxfi.Quarantine.dispatch sys.Ksys.rt mi "entry" [ Int64.of_int n ]

let caps_held (p : Lxfi.Principal.t) =
  Lxfi.Captable.write_count p.Lxfi.Principal.caps
  + Lxfi.Captable.call_count p.Lxfi.Principal.caps
  + Lxfi.Captable.ref_count p.Lxfi.Principal.caps

let test_quarantine_contains_each_misbehaviour () =
  List.iter
    (fun (n, what) ->
      let sys = qboot () in
      let bad = load sys crashy in
      let good = load sys buddy in
      Alcotest.(check int64) (what ^ ": caller gets -EFAULT") (-14L) (qdispatch sys bad n);
      consistent sys;
      Alcotest.(check bool) (what ^ ": offender quarantined") true
        (bad.Lxfi.Runtime.mi_shared.Lxfi.Principal.quarantined <> None);
      Alcotest.(check int) (what ^ ": capabilities revoked") 0
        (caps_held bad.Lxfi.Runtime.mi_shared);
      Alcotest.(check int64) (what ^ ": sibling module unaffected") 5L
        (qdispatch sys good 5);
      (* further entries into the quarantined module are refused but
         contained, never crash the kernel *)
      Alcotest.(check int64) (what ^ ": later entry refused cleanly") (-14L)
        (qdispatch sys bad 9);
      consistent sys)
    [
      (1, "wild store");
      (2, "NULL load");
      (3, "division by zero");
      (4, "infinite loop");
      (5, "wild indirect call");
    ]

let test_watchdog_quarantines_infinite_loop () =
  let sys = qboot () in
  let bad = load sys crashy in
  Alcotest.(check int64) "loop terminated and contained" (-14L) (qdispatch sys bad 4);
  Alcotest.(check int) "watchdog expired exactly once" 1
    sys.Ksys.rt.Lxfi.Runtime.stats.Lxfi.Stats.watchdog_expiries;
  consistent sys

let test_repeat_offender_escalates_to_retirement () =
  let sys = qboot () in
  let bad = load sys crashy in
  ignore (qdispatch sys bad 1);
  (* the quarantined principal keeps getting invoked: each refusal is a
     violation too, and the third inside the window retires the module *)
  ignore (qdispatch sys bad 6);
  ignore (qdispatch sys bad 6);
  Alcotest.(check bool) "module retired" true (bad.Lxfi.Runtime.mi_dead <> None);
  Alcotest.(check bool) "escalation counted" true
    (sys.Ksys.rt.Lxfi.Runtime.stats.Lxfi.Stats.escalations >= 1);
  Alcotest.(check int) "module gone from the runtime" 0
    (Hashtbl.length sys.Ksys.rt.Lxfi.Runtime.modules);
  consistent sys

(* a module whose entry allocates stack before faulting: every contained
   fault used to leak the frame's alloca space (the interpreter's
   exception path skipped the stack-pointer restore), so repeated
   -EFAULT containment manufactured a spurious stack overflow *)
let leaky =
  prog "leaky" ~imports:[] ~globals:[]
    ~funcs:
      [
        func "module_init" [] [ ret0 ];
        func "entry" [ "n" ]
          [
            alloca "buf" 256;
            store64 (v "buf") (v "n");
            store64 (i 0x2_0BAD_0000L) (ii 1);
            ret0;
          ]
          ~export:entry_slot;
      ]

let test_quarantined_reentry_restores_stack () =
  let sys = qboot () in
  let mi = load sys leaky in
  let ctx =
    match mi.Lxfi.Runtime.mi_ctx with
    | Some ctx -> ctx
    | None -> Alcotest.fail "no interpreter context"
  in
  let baseline = ctx.Mir.Interp.stack_ptr in
  Alcotest.(check int) "baseline is the stack base" ctx.Mir.Interp.stack_base baseline;
  for n = 1 to 50 do
    Alcotest.(check int64)
      (Printf.sprintf "entry %d contained" n)
      (-14L)
      (qdispatch sys mi n);
    Alcotest.(check int)
      (Printf.sprintf "stack pointer at baseline after entry %d" n)
      baseline ctx.Mir.Interp.stack_ptr
  done;
  consistent sys

(* an entry whose principal is named by its first argument, so two
   kernel objects select two sibling instance principals *)
let multi =
  prog "multi" ~imports:[] ~globals:[ global "g" 32 ]
    ~funcs:
      [
        func "module_init" [] [ ret0 ];
        func "entry" [ "obj"; "n" ]
          [
            when_ (v "n" ==: ii 1) [ store64 (i 0x2_0BAD_0000L) (ii 1); ret0 ];
            store64 (glob "g") (v "n");
            ret (load64 (glob "g"));
          ]
          ~export:obj_slot;
      ]

let test_quarantine_spares_sibling_instance () =
  let sys = qboot () in
  let mi = load sys multi in
  let d obj n =
    Lxfi.Quarantine.dispatch sys.Ksys.rt mi "entry" [ Int64.of_int obj; Int64.of_int n ]
  in
  Alcotest.(check int64) "instance A works" 5L (d 0x9100 5);
  Alcotest.(check int64) "instance A contained" (-14L) (d 0x9100 1);
  consistent sys;
  Alcotest.(check int64) "sibling instance B still serves" 7L (d 0x9200 7);
  Alcotest.(check int64) "quarantined instance stays refused" (-14L) (d 0x9100 6);
  Alcotest.(check int64) "sibling unaffected by the refusal" 8L (d 0x9200 8);
  Alcotest.(check bool) "module itself still alive" true
    (mi.Lxfi.Runtime.mi_dead = None)

let test_oops_inside_syscall_inside_wrapper () =
  (* the econet pattern: module faults inside a socket op reached via
     kernel indirect call reached via syscall; everything unwinds *)
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let _ = Mod_common.install sys Econet.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  let r =
    Kstate.with_syscall sys.Ksys.kst (fun () ->
        Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:0 ~len:0 ~flags:Econet.crafted_flags)
  in
  Alcotest.(check bool) "syscall failed" true (Result.is_error r);
  Alcotest.(check int) "shadow stack balanced" 0
    (Lxfi.Shadow_stack.depth sys.Ksys.rt.Lxfi.Runtime.sstack);
  (* a fresh socket still works *)
  let fd2 = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_econet ~typ:2 in
  let u = Kstate.user_alloc sys.Ksys.kst 16 in
  Alcotest.(check int64) "normal sendmsg works" 8L
    (Sockets.sys_sendmsg sys.Ksys.sock ~fd:fd2 ~buf:u ~len:8 ~flags:0)

let () =
  Klog.quiet ();
  Alcotest.run "failure"
    [
      ( "injection",
        [
          Alcotest.test_case "each failure then recovery" `Quick
            test_each_failure_then_recovery;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion_cleans_up;
          Alcotest.test_case "violation in pre action" `Quick
            test_violation_in_pre_action_cleans_up;
          Alcotest.test_case "violation during irq" `Quick
            test_violation_during_irq_restores_interrupted_principal;
          Alcotest.test_case "other modules unaffected" `Quick
            test_violating_module_does_not_poison_others;
          Alcotest.test_case "oops in syscall in wrapper" `Quick
            test_oops_inside_syscall_inside_wrapper;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "each misbehaviour contained" `Quick
            test_quarantine_contains_each_misbehaviour;
          Alcotest.test_case "watchdog catches infinite loop" `Quick
            test_watchdog_quarantines_infinite_loop;
          Alcotest.test_case "repeat offender escalates" `Quick
            test_repeat_offender_escalates_to_retirement;
          Alcotest.test_case "sibling instance spared" `Quick
            test_quarantine_spares_sibling_instance;
          Alcotest.test_case "re-entry restores stack pointer" `Quick
            test_quarantined_reentry_restores_stack;
        ] );
    ]

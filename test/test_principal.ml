(* Tests of principal semantics (§3.1): shared/global/instance access
   rules, aliasing, and the transfer-revokes-everywhere rule (§3.3). *)

open Kernel_sim
open Lxfi

(* A minimal module to hang principals off. *)
let tiny_prog name : Mir.Ast.prog =
  let open Mir.Builder in
  prog name ~imports:[ "kmalloc" ]
    ~globals:[ global "g" 64 ]
    ~funcs:[ func "module_init" [] [ ret0 ] ]

let boot () =
  let kst = Kstate.boot () in
  let rt = Runtime.create ~kst ~config:Config.lxfi in
  ignore
    (Runtime.register_kexport_exn rt ~name:"kmalloc" ~params:[ "size" ] ~annot_src:""
       (fun _ -> 0L));
  Runtime.install rt;
  rt

let load rt name = fst (Loader.load rt (tiny_prog name))

let heap a = 0x2_0000_0000 + a
let w base = Capability.Cwrite { base = heap base; size = 16 }

let test_instance_sees_shared () =
  let rt = boot () in
  let mi = load rt "m" in
  let inst = Runtime.find_or_create_instance rt mi ~name_ptr:0x9000 in
  Runtime.grant rt mi.Runtime.mi_shared (w 0x7000);
  Alcotest.(check bool) "instance inherits shared caps" true
    (Runtime.principal_has rt inst (w 0x7000));
  Runtime.grant rt inst (w 0x7100);
  Alcotest.(check bool) "shared does not inherit instance caps" false
    (Runtime.principal_has rt mi.Runtime.mi_shared (w 0x7100))

let test_instances_isolated () =
  let rt = boot () in
  let mi = load rt "m" in
  let a = Runtime.find_or_create_instance rt mi ~name_ptr:0x9000 in
  let b = Runtime.find_or_create_instance rt mi ~name_ptr:0xa000 in
  Runtime.grant rt a (w 0x7000);
  Alcotest.(check bool) "a owns" true (Runtime.principal_has rt a (w 0x7000));
  Alcotest.(check bool) "b does not" false (Runtime.principal_has rt b (w 0x7000))

let test_global_sees_all () =
  let rt = boot () in
  let mi = load rt "m" in
  let a = Runtime.find_or_create_instance rt mi ~name_ptr:0x9000 in
  Runtime.grant rt a (w 0x7000);
  Runtime.grant rt mi.Runtime.mi_shared (w 0x7200);
  Alcotest.(check bool) "global sees instance caps" true
    (Runtime.principal_has rt mi.Runtime.mi_global (w 0x7000));
  Alcotest.(check bool) "global sees shared caps" true
    (Runtime.principal_has rt mi.Runtime.mi_global (w 0x7200))

let test_modules_isolated () =
  let rt = boot () in
  let m1 = load rt "m1" and m2 = load rt "m2" in
  Runtime.grant rt m1.Runtime.mi_shared (w 0x7000);
  Alcotest.(check bool) "m2 shared blind to m1 caps" false
    (Runtime.principal_has rt m2.Runtime.mi_shared (w 0x7000));
  Alcotest.(check bool) "m2 global blind to m1 caps" false
    (Runtime.principal_has rt m2.Runtime.mi_global (w 0x7000))

let test_alias_same_principal () =
  let rt = boot () in
  let mi = load rt "m" in
  let a = Runtime.find_or_create_instance rt mi ~name_ptr:0x9000 in
  rt.Runtime.current <- Some a;
  Runtime.lxfi_princ_alias rt ~existing:0x9000 ~fresh:0xb000;
  let b = Runtime.find_or_create_instance rt mi ~name_ptr:0xb000 in
  Alcotest.(check int) "alias resolves to same principal" a.Principal.id b.Principal.id;
  Runtime.grant rt a (w 0x7000);
  Alcotest.(check bool) "caps shared through alias" true
    (Runtime.principal_has rt b (w 0x7000))

let test_alias_requires_standing () =
  let rt = boot () in
  let mi = load rt "m" in
  let a = Runtime.find_or_create_instance rt mi ~name_ptr:0x9000 in
  ignore a;
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  (* aliasing a name that does not exist in this module must fail *)
  (try
     Runtime.lxfi_princ_alias rt ~existing:0xdead ~fresh:0xb000;
     Alcotest.fail "expected violation"
   with Violation.Violation v ->
     Alcotest.(check string) "principal-denied" "principal-denied"
       (Violation.kind_name v.Violation.v_kind));
  (* and from kernel context it must fail too *)
  rt.Runtime.current <- None;
  try
    Runtime.lxfi_princ_alias rt ~existing:0x9000 ~fresh:0xb000;
    Alcotest.fail "expected violation"
  with Violation.Violation _ -> ()

let test_transfer_revokes_from_all () =
  let rt = boot () in
  let m1 = load rt "m1" and m2 = load rt "m2" in
  let a = Runtime.find_or_create_instance rt m1 ~name_ptr:0x9000 in
  Runtime.grant rt a (w 0x7000);
  Runtime.grant rt m2.Runtime.mi_shared (w 0x7000);
  Runtime.grant rt m2.Runtime.mi_shared (Capability.Ccall { target = heap 0x7000 });
  Runtime.revoke_from_all rt (w 0x7000);
  Alcotest.(check bool) "gone from m1 instance" false (Runtime.principal_has rt a (w 0x7000));
  Alcotest.(check bool) "gone from m2 shared" false
    (Runtime.principal_has rt m2.Runtime.mi_shared (w 0x7000));
  Alcotest.(check bool) "CALL caps untouched by WRITE revoke" true
    (Runtime.principal_has rt m2.Runtime.mi_shared (Capability.Ccall { target = heap 0x7000 }))

let test_intersecting_transfer_revokes () =
  (* revoking [0x7000,+16) removes a cap whose range merely overlaps *)
  let rt = boot () in
  let m1 = load rt "m1" in
  Runtime.grant rt m1.Runtime.mi_shared (Capability.Cwrite { base = heap 0x6ff8; size = 32 });
  Runtime.revoke_from_all rt (w 0x7000);
  Alcotest.(check bool) "overlapping cap revoked" false
    (Runtime.principal_has rt m1.Runtime.mi_shared
       (Capability.Cwrite { base = heap 0x6ff8; size = 8 }))

let test_describe () =
  let rt = boot () in
  let mi = load rt "m" in
  let a = Runtime.find_or_create_instance rt mi ~name_ptr:0x9000 in
  Alcotest.(check string) "shared name" "m/shared" (Principal.describe mi.Runtime.mi_shared);
  Alcotest.(check string) "global name" "m/global" (Principal.describe mi.Runtime.mi_global);
  Alcotest.(check string) "instance name" "m/instance(0x9000)" (Principal.describe a)

let () =
  Klog.quiet ();
  Alcotest.run "principal"
    [
      ( "access rules",
        [
          Alcotest.test_case "instance sees shared" `Quick test_instance_sees_shared;
          Alcotest.test_case "instances isolated" `Quick test_instances_isolated;
          Alcotest.test_case "global sees all" `Quick test_global_sees_all;
          Alcotest.test_case "modules isolated" `Quick test_modules_isolated;
        ] );
      ( "aliases",
        [
          Alcotest.test_case "alias resolves to same principal" `Quick
            test_alias_same_principal;
          Alcotest.test_case "alias requires standing" `Quick test_alias_requires_standing;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "revokes from all principals" `Quick
            test_transfer_revokes_from_all;
          Alcotest.test_case "revokes intersecting ranges" `Quick
            test_intersecting_transfer_revokes;
        ] );
      ("misc", [ Alcotest.test_case "describe" `Quick test_describe ]);
    ]

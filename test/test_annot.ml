(* Unit tests for the annotation language: parser, canonical printing,
   and hashing. *)

module A = Annot.Ast
module P = Annot.Parser

let parse s =
  match P.parse s with Ok t -> t | Error e -> Alcotest.fail (P.error_to_string e)

let roundtrip s =
  (* canonical print of a parse must re-parse to the same canonical
     print (the fixpoint the hash relies on) *)
  let t = parse s in
  let c = A.to_string t in
  let t2 = parse c in
  Alcotest.(check string) ("roundtrip " ^ s) c (A.to_string t2)

let test_paper_examples () =
  (* every annotation shape from Figures 2-4 of the paper *)
  List.iter roundtrip
    [
      "pre(copy(write, ptr, size))";
      "post(copy(write, return, size))";
      "pre(transfer(write, ptr, 64))";
      "post(transfer(write, ptr))";
      "pre(check(write, lock, 4))";
      "pre(check(skb_iter(ptr)))";
      "pre(if (len > 0) copy(write, buf, len))";
      "post(if (return == 0) transfer(write, buf, len))";
      "principal(p)";
      "principal(global)";
      "principal(shared)";
      "principal(pcidev) pre(copy(ref(struct pci_dev), pcidev)) \
       post(if (return < 0) transfer(ref(struct pci_dev), pcidev))";
      "principal(dev) pre(transfer(skb_caps(skb))) \
       post(if (return == 16) transfer(skb_caps(skb)))";
    ]

let test_structure () =
  match parse "principal(dev) pre(transfer(skb_caps(skb)))" with
  | [ A.Principal (A.Pexpr (A.Cparam "dev")); A.Pre (A.Transfer (A.Iter ("skb_caps", [ A.Cparam "skb" ]))) ]
    -> ()
  | other -> Alcotest.failf "unexpected structure: %s" (A.to_string other)

let test_cexpr_precedence () =
  match parse "pre(if (a + b * 2 < c) check(write, p, 8))" with
  | [ A.Pre (A.Cif (A.Cbin (A.Olt, A.Cbin (A.Oadd, A.Cparam "a", A.Cbin (A.Omul, A.Cparam "b", A.Cint 2L)), A.Cparam "c"), _)) ]
    -> ()
  | other -> Alcotest.failf "precedence broken: %s" (A.to_string other)

let test_sizeof () =
  match parse "pre(check(write, p, sizeof(struct sk_buff)))" with
  | [ A.Pre (A.Check (A.Inline (A.Write, A.Cparam "p", Some (A.Csizeof "sk_buff")))) ] -> ()
  | other -> Alcotest.failf "sizeof broken: %s" (A.to_string other)

let test_negative_and_hex () =
  (match parse "post(if (return == -16) transfer(write, p, 8))" with
  | [ A.Post (A.Cif (A.Cbin (A.Oeq, A.Creturn, A.Cneg (A.Cint 16L)), _)) ] -> ()
  | o -> Alcotest.failf "negative literal: %s" (A.to_string o));
  match parse "pre(check(write, p, 0x40))" with
  | [ A.Pre (A.Check (A.Inline (_, _, Some (A.Cint 64L)))) ] -> ()
  | o -> Alcotest.failf "hex literal: %s" (A.to_string o)

let test_special_ref_types () =
  (* Guideline 3: REF with a special (non-struct) type for fixed values *)
  match parse "pre(check(ref(io_port), port))" with
  | [ A.Pre (A.Check (A.Inline (A.Ref "io_port", A.Cparam "port", None))) ] -> ()
  | o -> Alcotest.failf "special ref type: %s" (A.to_string o)

let test_parse_errors () =
  List.iter
    (fun s ->
      match P.parse s with
      | Ok t -> Alcotest.failf "%S should not parse, got %s" s (A.to_string t)
      | Error _ -> ())
    [
      "pre(copy(write))" (* missing pointer *);
      "pre(grant(write, p))" (* unknown action *);
      "before(check(write, p))" (* unknown clause *);
      "pre(check(write, p)" (* unbalanced *);
      "pre(check(write p))" (* missing comma *);
      "principal()" (* empty principal *);
      "pre(if () check(write, p))" (* empty condition *);
    ]

let test_empty_annotation () =
  Alcotest.(check int) "empty parses to []" 0 (List.length (parse ""))

let test_hash_discrimination () =
  let h s params = Annot.Hash.of_annot ~params (parse s) in
  let a = h "pre(check(write, p, 8))" [ "p" ] in
  Alcotest.(check bool) "same annot same hash" true
    (Int64.equal a (h "pre(check(write, p, 8))" [ "p" ]));
  Alcotest.(check bool) "different size differs" false
    (Int64.equal a (h "pre(check(write, p, 16))" [ "p" ]));
  Alcotest.(check bool) "different action differs" false
    (Int64.equal a (h "pre(copy(write, p, 8))" [ "p" ]));
  Alcotest.(check bool) "different params differ" false
    (Int64.equal a (h "pre(check(write, p, 8))" [ "p"; "q" ]));
  Alcotest.(check bool) "pre vs post differs" false
    (Int64.equal a (h "post(check(write, p, 8))" [ "p" ]));
  Alcotest.(check bool) "empty hash differs" false (Int64.equal a Annot.Hash.empty)

let test_accessors () =
  let t =
    parse
      "principal(dev) pre(check(write, a, 4)) pre(copy(write, b, 4)) \
       post(transfer(write, c, 4))"
  in
  Alcotest.(check int) "two pre actions" 2 (List.length (A.pre_actions t));
  Alcotest.(check int) "one post action" 1 (List.length (A.post_actions t));
  match A.principal_of t with
  | Some (A.Pexpr (A.Cparam "dev")) -> ()
  | _ -> Alcotest.fail "principal_of"

let test_validation () =
  let v annot params =
    match P.parse annot with
    | Error e -> Alcotest.failf "parse failed: %s" (P.error_to_string e)
    | Ok t -> A.validate ~params t
  in
  Alcotest.(check bool) "known params pass" true
    (v "pre(check(write, buf, len))" [ "buf"; "len" ] = Ok ());
  Alcotest.(check bool) "return in post passes" true
    (v "post(if (return != 0) copy(write, return, 8))" [] = Ok ());
  Alcotest.(check bool) "unknown param rejected" true
    (Result.is_error (v "pre(check(write, bogus, 8))" [ "buf" ]));
  Alcotest.(check bool) "return in pre rejected" true
    (Result.is_error (v "pre(check(write, return, 8))" [ "buf" ]));
  Alcotest.(check bool) "unknown param in iterator arg rejected" true
    (Result.is_error (v "pre(transfer(skb_caps(nope)))" [ "skb" ]));
  Alcotest.(check bool) "unknown principal rejected" true
    (Result.is_error (v "principal(nope)" [ "dev" ]));
  (* the registry enforces it at definition time, as a structured error *)
  let r = Annot.Registry.create () in
  (match Annot.Registry.define_src r ~name:"bad.slot" ~params:[ "a" ] ~annot_src:"principal(b)" with
  | Error (Annot.Registry.Invalid { name = "bad.slot"; _ }) -> ()
  | Error e ->
      Alcotest.failf "wrong error kind: %s" (Annot.Registry.error_to_string e)
  | Ok _ -> Alcotest.fail "registry must reject invalid annotations");
  (* unparsable source is reported with the parser diagnostic attached *)
  match Annot.Registry.define_src r ~name:"bad.syntax" ~params:[] ~annot_src:"pre(" with
  | Error (Annot.Registry.Parse { name = "bad.syntax"; err; _ }) ->
      Alcotest.(check bool) "parse error has a position" true (err.P.err_pos <> None)
  | Error e -> Alcotest.failf "wrong error kind: %s" (Annot.Registry.error_to_string e)
  | Ok _ -> Alcotest.fail "registry must reject unparsable annotations"

let test_registry () =
  let r = Annot.Registry.create () in
  let s = Annot.Registry.define_exn r ~name:"t.f" ~params:[ "a" ] ~annot_src:"principal(a)" in
  Alcotest.(check bool) "registered" true (Annot.Registry.mem r "t.f");
  Alcotest.(check bool) "hash exposed" true
    (Int64.equal s.Annot.Registry.sl_ahash (Annot.Registry.ahash r "t.f"));
  (match Annot.Registry.define_src r ~name:"t.f" ~params:[ "a" ] ~annot_src:"" with
  | Error (Annot.Registry.Duplicate "t.f") -> ()
  | Error e -> Alcotest.failf "wrong duplicate error: %s" (Annot.Registry.error_to_string e)
  | Ok _ -> Alcotest.fail "duplicate must be rejected");
  Alcotest.check_raises "unknown slot" (Annot.Registry.Unknown_slot "t.g") (fun () ->
      ignore (Annot.Registry.find r "t.g"))

let test_error_positions () =
  (* the parser names the offending token and where it sits *)
  (match P.parse "pre(grant(write, p))" with
  | Ok _ -> Alcotest.fail "grant must not parse"
  | Error e ->
      Alcotest.(check (option string)) "token" (Some "grant") e.P.err_token;
      Alcotest.(check (option int)) "position" (Some 4) e.P.err_pos);
  (match P.parse "pre(check(write, p)" with
  | Ok _ -> Alcotest.fail "unbalanced must not parse"
  | Error e ->
      (* truncated input: the error points at end-of-string *)
      Alcotest.(check (option int)) "eof position" (Some 19) e.P.err_pos);
  match P.parse "before(check(write, p))" with
  | Ok _ -> Alcotest.fail "unknown clause must not parse"
  | Error e ->
      let rendered = P.error_to_string ~src:"before(check(write, p))" e in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "rendering names the token" true (contains rendered "before")

let () =
  Alcotest.run "annot"
    [
      ( "parser",
        [
          Alcotest.test_case "paper examples roundtrip" `Quick test_paper_examples;
          Alcotest.test_case "ast structure" `Quick test_structure;
          Alcotest.test_case "cexpr precedence" `Quick test_cexpr_precedence;
          Alcotest.test_case "sizeof" `Quick test_sizeof;
          Alcotest.test_case "negative + hex literals" `Quick test_negative_and_hex;
          Alcotest.test_case "special ref types" `Quick test_special_ref_types;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "empty annotation" `Quick test_empty_annotation;
        ] );
      ( "hash",
        [
          Alcotest.test_case "discrimination" `Quick test_hash_discrimination;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "registry",
        [
          Alcotest.test_case "define/find" `Quick test_registry;
          Alcotest.test_case "static validation" `Quick test_validation;
        ] );
    ]

(* Stats snapshot/since round-trip: every mutable counter must survive
   snapshot -> bump -> since.  A counter missed by [snapshot] or [since]
   (the bug class this guards against: a field added to [t] but not
   threaded through the snapshot record) makes the property fail. *)

open Lxfi

(* One bump thunk per mutable counter, paired with a reader for both the
   live record and the snapshot.  Adding a counter to Stats.t without
   extending this list fails the coverage check below. *)
let counters :
    (string * (Stats.t -> unit) * (Stats.snapshot -> int)) list =
  [
    ( "annotation_actions",
      (fun t -> t.Stats.annotation_actions <- t.Stats.annotation_actions + 1),
      fun s -> s.Stats.s_annotation_actions );
    ( "fn_entry",
      (fun t -> t.Stats.fn_entry <- t.Stats.fn_entry + 1),
      fun s -> s.Stats.s_fn_entry );
    ( "fn_exit",
      (fun t -> t.Stats.fn_exit <- t.Stats.fn_exit + 1),
      fun s -> s.Stats.s_fn_exit );
    ( "mem_write_checks",
      (fun t -> t.Stats.mem_write_checks <- t.Stats.mem_write_checks + 1),
      fun s -> s.Stats.s_mem_write_checks );
    ( "mod_indcall_checks",
      (fun t -> t.Stats.mod_indcall_checks <- t.Stats.mod_indcall_checks + 1),
      fun s -> s.Stats.s_mod_indcall_checks );
    ( "kernel_indcall_all",
      (fun t -> t.Stats.kernel_indcall_all <- t.Stats.kernel_indcall_all + 1),
      fun s -> s.Stats.s_kernel_indcall_all );
    ( "kernel_indcall_checked",
      (fun t -> t.Stats.kernel_indcall_checked <- t.Stats.kernel_indcall_checked + 1),
      fun s -> s.Stats.s_kernel_indcall_checked );
    ( "kernel_indcall_elided",
      (fun t -> t.Stats.kernel_indcall_elided <- t.Stats.kernel_indcall_elided + 1),
      fun s -> s.Stats.s_kernel_indcall_elided );
    ( "caps_granted",
      (fun t -> t.Stats.caps_granted <- t.Stats.caps_granted + 1),
      fun s -> s.Stats.s_caps_granted );
    ( "caps_revoked",
      (fun t -> t.Stats.caps_revoked <- t.Stats.caps_revoked + 1),
      fun s -> s.Stats.s_caps_revoked );
    ( "principal_switches",
      (fun t -> t.Stats.principal_switches <- t.Stats.principal_switches + 1),
      fun s -> s.Stats.s_principal_switches );
    ( "violations",
      (fun t -> Stats.note_violation t "prop"),
      fun s -> s.Stats.s_violations );
    ( "quarantines",
      (fun t -> t.Stats.quarantines <- t.Stats.quarantines + 1),
      fun s -> s.Stats.s_quarantines );
    ( "escalations",
      (fun t -> t.Stats.escalations <- t.Stats.escalations + 1),
      fun s -> s.Stats.s_escalations );
    ( "watchdog_expiries",
      (fun t -> t.Stats.watchdog_expiries <- t.Stats.watchdog_expiries + 1),
      fun s -> s.Stats.s_watchdog_expiries );
    ( "flow_violations",
      (fun t -> t.Stats.flow_violations <- t.Stats.flow_violations + 1),
      fun s -> s.Stats.s_flow_violations );
    ( "caps_dropped",
      (fun t -> t.Stats.caps_dropped <- t.Stats.caps_dropped + 1),
      fun s -> s.Stats.s_caps_dropped );
  ]

let n_counters = List.length counters

(* A bump plan: for each counter, a baseline count (applied before the
   snapshot) and a delta count (applied after).  [since] must see the
   delta alone, and the full snapshot must see baseline + delta. *)
let arb_plan =
  QCheck.make
    ~print:(fun l ->
      String.concat "; "
        (List.map2
           (fun (name, _, _) (b, d) -> Printf.sprintf "%s:%d+%d" name b d)
           counters l))
    QCheck.Gen.(list_repeat n_counters (pair (int_bound 20) (int_bound 20)))

let apply t plan pick =
  List.iter2 (fun (_, bump, _) bd -> for _ = 1 to pick bd do bump t done) counters plan

let prop_since_roundtrip =
  QCheck.Test.make ~count:200 ~name:"stats since = post - pre over every counter"
    arb_plan (fun plan ->
      let t = Stats.create () in
      apply t plan fst;
      let s0 = Stats.snapshot t in
      apply t plan snd;
      let d = Stats.since t s0 in
      let full = Stats.snapshot t in
      List.for_all2
        (fun (_, _, read) (base, delta) ->
          read d = delta && read full = base + delta)
        counters plan)

let prop_snapshot_of_fresh_is_zero =
  QCheck.Test.make ~count:50 ~name:"stats snapshot of fresh/reset t is all-zero"
    arb_plan (fun plan ->
      let t = Stats.create () in
      apply t plan fst;
      Stats.reset t;
      let s = Stats.snapshot t in
      List.for_all (fun (_, _, read) -> read s = 0) counters)

(* Structural coverage: the number of bump thunks above must match the
   number of mutable int counters in Stats.t, so a newly added counter
   cannot silently escape the round-trip property.  [pp] prints every
   counter exactly once; count the "=<int>" groups it emits. *)
let test_counter_coverage () =
  let t = Stats.create () in
  List.iter (fun (_, bump, _) -> bump t) counters;
  let printed = Fmt.str "%a" Stats.pp t in
  let fields =
    (* each counter renders as "name=<digits>"; count '=' signs *)
    String.fold_left (fun n c -> if c = '=' then n + 1 else n) 0 printed
  in
  Alcotest.(check int) "pp field count = covered counters" n_counters fields;
  (* and every one of them was bumped to 1 by the loop above *)
  let s = Stats.snapshot t in
  List.iter
    (fun (name, _, read) -> Alcotest.(check int) name 1 (read s))
    counters

(* ---- violation-kind exhaustiveness guard ---------------------------

   Every [Violation.kind] must be threaded through four places: the
   [all_kinds] enumeration, the [kind_name]/[kind_of_name] pair, a
   [counter_row] decision whose title exists as a Figure 13 row, and
   [to_diag]'s rendering.  The matches below are wildcard-free and
   warning 8 is an error in the dev profile, so adding a kind breaks
   this test's build outright; the assertions then catch each way the
   fix could stay incomplete. *)

let ordinal : Violation.kind -> int = function
  | Violation.Write_denied -> 0
  | Violation.Call_denied -> 1
  | Violation.Ref_denied -> 2
  | Violation.Cap_not_owned -> 3
  | Violation.Annot_mismatch -> 4
  | Violation.Shadow_stack -> 5
  | Violation.Principal_denied -> 6
  | Violation.Watchdog_expired -> 7
  | Violation.Flow_violation -> 8

(* bump together with the new [ordinal] arm *)
let n_kinds =
  match Violation.Write_denied with
  | Violation.Write_denied | Violation.Call_denied | Violation.Ref_denied
  | Violation.Cap_not_owned | Violation.Annot_mismatch | Violation.Shadow_stack
  | Violation.Principal_denied | Violation.Watchdog_expired
  | Violation.Flow_violation ->
      9

let test_kind_enumeration () =
  Alcotest.(check int) "all_kinds lists every constructor" n_kinds
    (List.length Violation.all_kinds);
  Alcotest.(check (list int))
    "all_kinds in declaration order, no duplicates"
    (List.init n_kinds Fun.id)
    (List.map ordinal Violation.all_kinds);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Violation.kind_name k ^ " round-trips through kind_of_name")
        true
        (Violation.kind_of_name (Violation.kind_name k) = Some k))
    Violation.all_kinds

let test_kind_counter_rows () =
  let rows, _ = Workloads.Netperf_sim.figure13 ~pkts:100 () in
  let titles = List.map (fun g -> g.Workloads.Netperf_sim.g_type) rows in
  List.iter
    (fun k ->
      let row = Violation.counter_row k in
      Alcotest.(check bool)
        (Printf.sprintf "%s accounted under Figure 13 row %S"
           (Violation.kind_name k) row)
        true (List.mem row titles))
    Violation.all_kinds

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_kind_diag_rendering () =
  List.iter
    (fun k ->
      let d =
        Violation.to_diag
          {
            Violation.v_kind = k;
            v_module = "m";
            v_principal = None;
            v_where = None;
            v_detail = "detail";
          }
      in
      Alcotest.(check bool)
        (Violation.kind_name k ^ " named in its diagnostic")
        true
        (contains ~needle:(Violation.kind_name k) d.Diag.d_message))
    Violation.all_kinds

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_since_roundtrip; prop_snapshot_of_fresh_is_zero ]
  in
  Alcotest.run "stats"
    [
      ("roundtrip", qsuite);
      ("coverage", [ Alcotest.test_case "every counter covered" `Quick test_counter_coverage ]);
      ( "kinds",
        [
          Alcotest.test_case "enumeration + name round-trip" `Quick test_kind_enumeration;
          Alcotest.test_case "every kind has a Figure 13 row" `Quick test_kind_counter_rows;
          Alcotest.test_case "every kind renders in diagnostics" `Quick
            test_kind_diag_rendering;
        ] );
    ]

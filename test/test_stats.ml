(* Stats snapshot/since round-trip: every mutable counter must survive
   snapshot -> bump -> since.  A counter missed by [snapshot] or [since]
   (the bug class this guards against: a field added to [t] but not
   threaded through the snapshot record) makes the property fail. *)

open Lxfi

(* One bump thunk per mutable counter, paired with a reader for both the
   live record and the snapshot.  Adding a counter to Stats.t without
   extending this list fails the coverage check below. *)
let counters :
    (string * (Stats.t -> unit) * (Stats.snapshot -> int)) list =
  [
    ( "annotation_actions",
      (fun t -> t.Stats.annotation_actions <- t.Stats.annotation_actions + 1),
      fun s -> s.Stats.s_annotation_actions );
    ( "fn_entry",
      (fun t -> t.Stats.fn_entry <- t.Stats.fn_entry + 1),
      fun s -> s.Stats.s_fn_entry );
    ( "fn_exit",
      (fun t -> t.Stats.fn_exit <- t.Stats.fn_exit + 1),
      fun s -> s.Stats.s_fn_exit );
    ( "mem_write_checks",
      (fun t -> t.Stats.mem_write_checks <- t.Stats.mem_write_checks + 1),
      fun s -> s.Stats.s_mem_write_checks );
    ( "mod_indcall_checks",
      (fun t -> t.Stats.mod_indcall_checks <- t.Stats.mod_indcall_checks + 1),
      fun s -> s.Stats.s_mod_indcall_checks );
    ( "kernel_indcall_all",
      (fun t -> t.Stats.kernel_indcall_all <- t.Stats.kernel_indcall_all + 1),
      fun s -> s.Stats.s_kernel_indcall_all );
    ( "kernel_indcall_checked",
      (fun t -> t.Stats.kernel_indcall_checked <- t.Stats.kernel_indcall_checked + 1),
      fun s -> s.Stats.s_kernel_indcall_checked );
    ( "kernel_indcall_elided",
      (fun t -> t.Stats.kernel_indcall_elided <- t.Stats.kernel_indcall_elided + 1),
      fun s -> s.Stats.s_kernel_indcall_elided );
    ( "caps_granted",
      (fun t -> t.Stats.caps_granted <- t.Stats.caps_granted + 1),
      fun s -> s.Stats.s_caps_granted );
    ( "caps_revoked",
      (fun t -> t.Stats.caps_revoked <- t.Stats.caps_revoked + 1),
      fun s -> s.Stats.s_caps_revoked );
    ( "principal_switches",
      (fun t -> t.Stats.principal_switches <- t.Stats.principal_switches + 1),
      fun s -> s.Stats.s_principal_switches );
    ( "violations",
      (fun t -> Stats.note_violation t "prop"),
      fun s -> s.Stats.s_violations );
    ( "quarantines",
      (fun t -> t.Stats.quarantines <- t.Stats.quarantines + 1),
      fun s -> s.Stats.s_quarantines );
    ( "escalations",
      (fun t -> t.Stats.escalations <- t.Stats.escalations + 1),
      fun s -> s.Stats.s_escalations );
    ( "watchdog_expiries",
      (fun t -> t.Stats.watchdog_expiries <- t.Stats.watchdog_expiries + 1),
      fun s -> s.Stats.s_watchdog_expiries );
    ( "caps_dropped",
      (fun t -> t.Stats.caps_dropped <- t.Stats.caps_dropped + 1),
      fun s -> s.Stats.s_caps_dropped );
  ]

let n_counters = List.length counters

(* A bump plan: for each counter, a baseline count (applied before the
   snapshot) and a delta count (applied after).  [since] must see the
   delta alone, and the full snapshot must see baseline + delta. *)
let arb_plan =
  QCheck.make
    ~print:(fun l ->
      String.concat "; "
        (List.map2
           (fun (name, _, _) (b, d) -> Printf.sprintf "%s:%d+%d" name b d)
           counters l))
    QCheck.Gen.(list_repeat n_counters (pair (int_bound 20) (int_bound 20)))

let apply t plan pick =
  List.iter2 (fun (_, bump, _) bd -> for _ = 1 to pick bd do bump t done) counters plan

let prop_since_roundtrip =
  QCheck.Test.make ~count:200 ~name:"stats since = post - pre over every counter"
    arb_plan (fun plan ->
      let t = Stats.create () in
      apply t plan fst;
      let s0 = Stats.snapshot t in
      apply t plan snd;
      let d = Stats.since t s0 in
      let full = Stats.snapshot t in
      List.for_all2
        (fun (_, _, read) (base, delta) ->
          read d = delta && read full = base + delta)
        counters plan)

let prop_snapshot_of_fresh_is_zero =
  QCheck.Test.make ~count:50 ~name:"stats snapshot of fresh/reset t is all-zero"
    arb_plan (fun plan ->
      let t = Stats.create () in
      apply t plan fst;
      Stats.reset t;
      let s = Stats.snapshot t in
      List.for_all (fun (_, _, read) -> read s = 0) counters)

(* Structural coverage: the number of bump thunks above must match the
   number of mutable int counters in Stats.t, so a newly added counter
   cannot silently escape the round-trip property.  [pp] prints every
   counter exactly once; count the "=<int>" groups it emits. *)
let test_counter_coverage () =
  let t = Stats.create () in
  List.iter (fun (_, bump, _) -> bump t) counters;
  let printed = Fmt.str "%a" Stats.pp t in
  let fields =
    (* each counter renders as "name=<digits>"; count '=' signs *)
    String.fold_left (fun n c -> if c = '=' then n + 1 else n) 0 printed
  in
  Alcotest.(check int) "pp field count = covered counters" n_counters fields;
  (* and every one of them was bumped to 1 by the loop above *)
  let s = Stats.snapshot t in
  List.iter
    (fun (name, _, read) -> Alcotest.(check int) name 1 (read s))
    counters

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_since_roundtrip; prop_snapshot_of_fresh_is_zero ]
  in
  Alcotest.run "stats"
    [
      ("roundtrip", qsuite);
      ("coverage", [ Alcotest.test_case "every counter covered" `Quick test_counter_coverage ]);
    ]

(* Corpus replay + fuzz-subsystem regression pins.

   - every checked-in repro in corpus/*.mir replays green: clean
     exemplars pass the full oracle battery, attack exemplars raise
     exactly their recorded violation class with the canary intact;
   - a fixed-seed smoke campaign finds zero divergences and detects
     every mutant as the correct class;
   - the campaign report is deterministic (same seed, equal report);
   - the shrinker preserves the failure signature and only ever
     removes things. *)

(* cwd is test/ under `dune runtest`, the project root under
   `dune exec` *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mir")
  |> List.sort compare

let read_file path = In_channel.with_open_text path In_channel.input_all

let test_corpus_replay () =
  let files = corpus_files () in
  (* one attack exemplar per mutation class plus the clean exemplar *)
  Alcotest.(check bool) "corpus covers every class" true
    (List.length files >= List.length Fuzz.Mutate.all + 1);
  List.iter
    (fun f ->
      let src = read_file (Filename.concat corpus_dir f) in
      match Fuzz.Corpus.replay ~src with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" f m)
    files

(* Every mutation class has an attack exemplar checked in, so a
   regressing guard family fails loudly by name. *)
let test_corpus_covers_all_classes () =
  let files = corpus_files () in
  List.iter
    (fun cls ->
      let expected = Printf.sprintf "attack_%s.mir" (Fuzz.Mutate.name cls) in
      Alcotest.(check bool) expected true (List.mem expected files))
    Fuzz.Mutate.all

(* Differential control for the flow class: the mutant raises
   flow-violation under the registered benign policy, and the same
   module with its kernel-API calls reordered back runs clean under
   that very policy — the guard rejects the ordering, not the calls. *)
let test_flow_reorder_differential () =
  let canary = Fuzz.Harness.canary_addr_of Fuzz.Harness.mutant_config in
  let rng = Fuzz.Rng.create ~seed:11 in
  let case = Fuzz.Gen.case_of_rand (Fuzz.Rng.rand rng) in
  let m =
    Fuzz.Mutate.apply ~canary_addr:canary Fuzz.Mutate.Flow_reorder case.Fuzz.Gen.c_prog
  in
  let inputs = case.Fuzz.Gen.c_inputs in
  (match
     Fuzz.Harness.run_violation_repro m.Fuzz.Mutate.m_prog m.Fuzz.Mutate.m_drive
       ~inputs ~expect:Lxfi.Violation.Flow_violation
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flow mutant not detected: %s" e);
  let benign =
    { m with Fuzz.Mutate.m_prog = Fuzz.Mutate.benign_of m.Fuzz.Mutate.m_prog }
  in
  match Fuzz.Harness.run_mutant benign ~inputs with
  | Error e -> Alcotest.failf "reordered-back control setup: %s" e
  | Ok r -> (
      match r.Fuzz.Harness.mr_outcome with
      | Fuzz.Harness.Oval _ -> ()
      | o ->
          Alcotest.failf "reordered-back control raised %s"
            (Fuzz.Harness.outcome_string o))

let test_smoke_campaign () =
  let r = Fuzz.Campaign.run ~seed:7 ~runs:25 () in
  List.iter
    (fun (d : Fuzz.Campaign.divergence) ->
      Printf.printf "divergence %s: %s\n" d.Fuzz.Campaign.dv_name d.Fuzz.Campaign.dv_message)
    r.Fuzz.Campaign.r_divergences;
  Alcotest.(check int) "clean cases all pass" 25 r.Fuzz.Campaign.r_cases_ok;
  Alcotest.(check int) "every mutant correct" r.Fuzz.Campaign.r_mutants_total
    r.Fuzz.Campaign.r_mutants_correct;
  Alcotest.(check bool) "campaign passed" true (Fuzz.Campaign.passed r)

let test_campaign_deterministic () =
  let a = Fuzz.Campaign.run ~seed:3 ~runs:8 () in
  let b = Fuzz.Campaign.run ~seed:3 ~runs:8 () in
  Alcotest.(check string) "same JSON report"
    (Workloads.Bench_json.to_string (Workloads.Fuzz_run.json_of_report a))
    (Workloads.Bench_json.to_string (Workloads.Fuzz_run.json_of_report b))

(* The shrinker on a real mutant: result still fails with the same
   signature and is no larger than the input. *)
let prog_weight (p : Mir.Ast.prog) =
  let rec stmts ss = List.fold_left (fun a s -> a + stmt s) 0 ss
  and stmt = function
    | Mir.Ast.If (_, t, e) -> 1 + stmts t + stmts e
    | Mir.Ast.While (_, b) -> 1 + stmts b
    | _ -> 1
  in
  List.length p.Mir.Ast.globals + List.length p.Mir.Ast.imports
  + List.fold_left (fun a (f : Mir.Ast.func) -> a + 1 + stmts f.Mir.Ast.body) 0 p.Mir.Ast.funcs

let test_shrinker_preserves_signature () =
  let canary = Fuzz.Harness.canary_addr_of Fuzz.Harness.mutant_config in
  let rng = Fuzz.Rng.create ~seed:99 in
  let case = Fuzz.Gen.case_of_rand (Fuzz.Rng.rand rng) in
  let m = Fuzz.Mutate.apply ~canary_addr:canary Fuzz.Mutate.Store_oob case.Fuzz.Gen.c_prog in
  let inputs = case.Fuzz.Gen.c_inputs in
  let expect = Fuzz.Mutate.expected_kind m.Fuzz.Mutate.m_class in
  let pred p =
    match Fuzz.Harness.run_violation_repro p m.Fuzz.Mutate.m_drive ~inputs ~expect with
    | Ok () -> Some "detected"
    | Error _ -> None
  in
  Alcotest.(check bool) "mutant fails before shrinking" true (pred m.Fuzz.Mutate.m_prog <> None);
  let small = Fuzz.Shrink.minimize ~pred m.Fuzz.Mutate.m_prog in
  Alcotest.(check bool) "shrunk program still fails" true (pred small <> None);
  Alcotest.(check bool) "shrinking never grows the program" true
    (prog_weight small <= prog_weight m.Fuzz.Mutate.m_prog);
  (* the shrunk repro round-trips through the printer/parser *)
  let txt = Mir.Printer.to_string small in
  match Mir.Parser.parse_result txt with
  | Error e -> Alcotest.failf "shrunk repro does not re-parse: %s" e
  | Ok _ -> ()

(* Rendered repros parse both as directives and as plain MIR. *)
let test_render_parse_roundtrip () =
  let canary = Fuzz.Harness.canary_addr_of Fuzz.Harness.mutant_config in
  let rng = Fuzz.Rng.create ~seed:5 in
  let case = Fuzz.Gen.case_of_rand (Fuzz.Rng.rand rng) in
  let m = Fuzz.Mutate.apply ~canary_addr:canary Fuzz.Mutate.Over_grant case.Fuzz.Gen.c_prog in
  let txt =
    Fuzz.Corpus.render_mutant ~comment:"roundtrip"
      ~expect:(Fuzz.Mutate.expected_kind m.Fuzz.Mutate.m_class)
      m.Fuzz.Mutate.m_drive m.Fuzz.Mutate.m_prog
  in
  (match Fuzz.Corpus.parse_spec txt with
  | Error e -> Alcotest.failf "directives do not re-parse: %s" e
  | Ok spec -> (
      Alcotest.(check bool) "drive survives" true (spec.Fuzz.Corpus.sp_drive <> None);
      match spec.Fuzz.Corpus.sp_expect with
      | Fuzz.Corpus.Eviolation k ->
          Alcotest.(check string) "kind survives"
            (Lxfi.Violation.kind_name (Fuzz.Mutate.expected_kind m.Fuzz.Mutate.m_class))
            (Lxfi.Violation.kind_name k)
      | Fuzz.Corpus.Eclean -> Alcotest.fail "expected a violation directive"));
  match Mir.Parser.parse_result txt with
  | Error e -> Alcotest.failf "repro is not plain MIR: %s" e
  | Ok _ -> ()

let () =
  Kernel_sim.Klog.quiet ();
  Alcotest.run "fuzz_regressions"
    [
      ( "corpus",
        [
          Alcotest.test_case "replay" `Quick test_corpus_replay;
          Alcotest.test_case "covers all classes" `Quick test_corpus_covers_all_classes;
          Alcotest.test_case "flow-reorder differential control" `Quick
            test_flow_reorder_differential;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "smoke" `Quick test_smoke_campaign;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "preserves signature" `Quick test_shrinker_preserves_signature;
          Alcotest.test_case "render/parse roundtrip" `Quick test_render_parse_roundtrip;
        ] );
    ]

(* Unit tests for the capability tables, including the paper's
   page-masked multi-slot WRITE representation. *)

open Lxfi

let test_write_basic () =
  let t = Captable.create () in
  Captable.add_write t ~base:0x1000 ~size:64;
  Alcotest.(check bool) "exact range" true (Captable.has_write t ~addr:0x1000 ~size:64);
  Alcotest.(check bool) "interior byte" true (Captable.has_write t ~addr:0x1020 ~size:1);
  Alcotest.(check bool) "suffix" true (Captable.has_write t ~addr:0x1030 ~size:16);
  Alcotest.(check bool) "one past end" false (Captable.has_write t ~addr:0x1040 ~size:1);
  Alcotest.(check bool) "straddles end" false (Captable.has_write t ~addr:0x1030 ~size:32);
  Alcotest.(check bool) "before" false (Captable.has_write t ~addr:0xfff ~size:1)

let test_write_spanning_pages () =
  let t = Captable.create () in
  (* range covering three pages: must be found from any page's slot *)
  Captable.add_write t ~base:0x3ff0 ~size:0x2020;
  Alcotest.(check bool) "first page" true (Captable.has_write t ~addr:0x3ff0 ~size:8);
  Alcotest.(check bool) "middle page" true (Captable.has_write t ~addr:0x4800 ~size:8);
  Alcotest.(check bool) "last page" true (Captable.has_write t ~addr:0x6000 ~size:8);
  Alcotest.(check bool) "cross-page access inside" true
    (Captable.has_write t ~addr:0x4ffc ~size:8);
  Alcotest.(check int) "one distinct entry" 1 (Captable.write_count t)

let test_write_removal_spanning () =
  let t = Captable.create () in
  Captable.add_write t ~base:0x3ff0 ~size:0x2020;
  let removed = Captable.remove_write_intersecting t ~base:0x5000 ~size:8 in
  Alcotest.(check int) "removed once" 1 removed;
  Alcotest.(check bool) "gone from every slot" false
    (Captable.has_write t ~addr:0x3ff0 ~size:8);
  Alcotest.(check int) "count zero" 0 (Captable.write_count t)

let test_write_intersecting_removal () =
  let t = Captable.create () in
  Captable.add_write t ~base:0x1000 ~size:64;
  Captable.add_write t ~base:0x1100 ~size:64;
  let removed = Captable.remove_write_intersecting t ~base:0x1020 ~size:8 in
  Alcotest.(check int) "only overlapping entry removed" 1 removed;
  Alcotest.(check bool) "other survives" true (Captable.has_write t ~addr:0x1100 ~size:64)

let test_write_idempotent_insert () =
  let t = Captable.create () in
  Captable.add_write t ~base:0x1000 ~size:64;
  Captable.add_write t ~base:0x1000 ~size:64;
  Alcotest.(check int) "no duplicate" 1 (Captable.write_count t)

let test_big_range () =
  let t = Captable.create () in
  let base = 0x1000 and size = 0x8000_0000 - 0x1000 in
  (* a 2 GB blanket must not take 500k insertions *)
  let t0 = Unix.gettimeofday () in
  Captable.add_write t ~base ~size;
  Alcotest.(check bool) "fast insert" true (Unix.gettimeofday () -. t0 < 0.05);
  Alcotest.(check bool) "covers low" true (Captable.has_write t ~addr:0x2000 ~size:8);
  Alcotest.(check bool) "covers high" true
    (Captable.has_write t ~addr:0x7fff_0000 ~size:8);
  Alcotest.(check bool) "not beyond" false
    (Captable.has_write t ~addr:0x8000_0000 ~size:8);
  (* small revocations inside must NOT strip the blanket *)
  ignore (Captable.remove_write_intersecting t ~base:0x2000 ~size:64);
  Alcotest.(check bool) "blanket survives small revoke" true
    (Captable.has_write t ~addr:0x2000 ~size:8);
  (* full-range revocation does remove it *)
  ignore (Captable.remove_write_intersecting t ~base:0 ~size:0x9000_0000);
  Alcotest.(check bool) "blanket removable" false
    (Captable.has_write t ~addr:0x2000 ~size:8)

let test_zero_length_ranges () =
  let t = Captable.create () in
  (* empty grants are a caller bug, not a silent no-op capability *)
  Alcotest.check_raises "size 0 rejected" (Invalid_argument "Captable.add_write: size <= 0")
    (fun () -> Captable.add_write t ~base:0x1000 ~size:0);
  (try Captable.add_write t ~base:0x1000 ~size:(-8) with Invalid_argument _ -> ());
  Alcotest.(check int) "nothing inserted" 0 (Captable.write_count t);
  (* revoking an empty range removes nothing *)
  Captable.add_write t ~base:0x1000 ~size:64;
  Alcotest.(check int) "empty revoke is a no-op" 0
    (Captable.remove_write_intersecting t ~base:0x1000 ~size:0);
  Alcotest.(check bool) "grant survives" true (Captable.has_write t ~addr:0x1000 ~size:64)

let test_exactly_adjacent_ranges () =
  let t = Captable.create () in
  (* two abutting grants: each side covered, but a single access
     straddling the seam is not — capabilities do not coalesce *)
  Captable.add_write t ~base:0x1000 ~size:0x40;
  Captable.add_write t ~base:0x1040 ~size:0x40;
  Alcotest.(check bool) "left suffix" true (Captable.has_write t ~addr:0x1038 ~size:8);
  Alcotest.(check bool) "right prefix" true (Captable.has_write t ~addr:0x1040 ~size:8);
  Alcotest.(check bool) "seam-straddling access denied" false
    (Captable.has_write t ~addr:0x1038 ~size:16);
  (* revoking the left entry must not disturb its neighbour *)
  Alcotest.(check int) "left revoked" 1
    (Captable.remove_write_intersecting t ~base:0x1000 ~size:0x40);
  Alcotest.(check bool) "right intact" true (Captable.has_write t ~addr:0x1040 ~size:0x40)

let test_page_boundary_writes () =
  let t = Captable.create () in
  (* a grant ending exactly on a page boundary grants nothing beyond *)
  Captable.add_write t ~base:0xff8 ~size:8;
  Alcotest.(check bool) "covers to the edge" true (Captable.has_write t ~addr:0xff8 ~size:8);
  Alcotest.(check bool) "next page excluded" false (Captable.has_write t ~addr:0x1000 ~size:1);
  (* a grant straddling a page boundary admits the straddling write,
     from the slot of either page *)
  Captable.add_write t ~base:0x1ff0 ~size:0x20;
  Alcotest.(check bool) "write across the boundary" true
    (Captable.has_write t ~addr:0x1ffc ~size:8);
  Alcotest.(check bool) "tail on second page" true (Captable.has_write t ~addr:0x2008 ~size:8);
  Alcotest.(check bool) "past the grant" false (Captable.has_write t ~addr:0x2010 ~size:1)

let test_revoke_inside_covering_range () =
  let t = Captable.create () in
  (* revocation granularity is the whole entry: an interior revoke
     (kfree of an interior pointer, transfer-back of a sub-buffer)
     strips the full grant rather than splitting it *)
  Captable.add_write t ~base:0x1000 ~size:0x40;
  Alcotest.(check int) "interior revoke hits the entry" 1
    (Captable.remove_write_intersecting t ~base:0x1010 ~size:8);
  Alcotest.(check bool) "prefix gone" false (Captable.has_write t ~addr:0x1000 ~size:8);
  Alcotest.(check bool) "suffix gone" false (Captable.has_write t ~addr:0x1020 ~size:8);
  Alcotest.(check int) "count zero" 0 (Captable.write_count t)

let test_find_covering () =
  let t = Captable.create () in
  Captable.add_write t ~base:0x1000 ~size:64;
  (match Captable.find_write_covering t ~addr:0x1010 with
  | Some e -> Alcotest.(check int) "entry base" 0x1000 e.Captable.base
  | None -> Alcotest.fail "should cover");
  Alcotest.(check bool) "miss" true (Captable.find_write_covering t ~addr:0x2000 = None)

let test_call_refs () =
  let t = Captable.create () in
  Captable.add_call t ~target:0x4000;
  Alcotest.(check bool) "call present" true (Captable.has_call t ~target:0x4000);
  Alcotest.(check bool) "other absent" false (Captable.has_call t ~target:0x4001);
  Captable.remove_call t ~target:0x4000;
  Alcotest.(check bool) "call removed" false (Captable.has_call t ~target:0x4000);
  Captable.add_ref t ~rtype:"pci_dev" ~addr:0x5000;
  Alcotest.(check bool) "ref present" true (Captable.has_ref t ~rtype:"pci_dev" ~addr:0x5000);
  Alcotest.(check bool) "type matters" false
    (Captable.has_ref t ~rtype:"net_device" ~addr:0x5000);
  Captable.remove_ref t ~rtype:"pci_dev" ~addr:0x5000;
  Alcotest.(check bool) "ref removed" false
    (Captable.has_ref t ~rtype:"pci_dev" ~addr:0x5000)

let test_fold_writes () =
  let t = Captable.create () in
  Captable.add_write t ~base:0x1000 ~size:0x3000 (* spans pages *);
  Captable.add_write t ~base:0x9000 ~size:16;
  let n = Captable.fold_writes t (fun acc ~base:_ ~size:_ -> acc + 1) 0 in
  Alcotest.(check int) "distinct entries folded once" 2 n

(* The one-entry "last covering range" cache on the guard-write fast
   path must be invisible: under any interleaving of grants, revokes
   and clears, the cached [has_write] answers exactly as the uncached
   scan.  The generator works a small page universe so ranges collide,
   straddle page boundaries, and occasionally exceed [big_range_pages]
   (landing on the blanket list). *)

type cop = Add of int * int | Remove of int * int | Clear | Query of int * int

let gen_cop =
  QCheck.Gen.(
    let page = 0x1000 in
    let addr = map (fun a -> page + (a * 8)) (int_bound (8 * page / 8)) in
    let small_size = map (fun s -> 1 + s) (int_bound (2 * page)) in
    let big_size =
      map (fun s -> (Lxfi.Captable.big_range_pages + s) * page) (int_bound 8)
    in
    frequency
      [
        (5, map2 (fun a s -> Add (a, s)) addr small_size);
        (1, map2 (fun a s -> Add (a, s)) addr big_size);
        (3, map2 (fun a s -> Remove (a, s)) addr small_size);
        (1, return Clear);
        (6, map2 (fun a s -> Query (a, s)) addr small_size);
      ])

let show_cop = function
  | Add (a, s) -> Printf.sprintf "Add(0x%x,%d)" a s
  | Remove (a, s) -> Printf.sprintf "Remove(0x%x,%d)" a s
  | Clear -> "Clear"
  | Query (a, s) -> Printf.sprintf "Query(0x%x,%d)" a s

let arb_cops =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map show_cop l))
    QCheck.Gen.(list_size (int_bound 80) gen_cop)

let prop_write_cache_transparent =
  QCheck.Test.make ~count:500 ~name:"write cache = uncached has_write" arb_cops
    (fun ops ->
      let t = Captable.create () in
      List.for_all
        (function
          | Add (base, size) ->
              Captable.add_write t ~base ~size;
              true
          | Remove (base, size) ->
              ignore (Captable.remove_write_intersecting t ~base ~size);
              true
          | Clear ->
              Captable.clear t;
              true
          | Query (addr, size) ->
              let uncached = Captable.has_write_uncached t ~addr ~size in
              (* query twice: the first may fill the cache, the second
                 must answer from it — both must agree with the scan *)
              Captable.has_write t ~addr ~size = uncached
              && Captable.has_write t ~addr ~size = uncached)
        ops)

let () =
  Alcotest.run "captable"
    [
      ( "write",
        [
          Alcotest.test_case "coverage" `Quick test_write_basic;
          Alcotest.test_case "page spanning" `Quick test_write_spanning_pages;
          Alcotest.test_case "spanning removal" `Quick test_write_removal_spanning;
          Alcotest.test_case "intersecting removal" `Quick test_write_intersecting_removal;
          Alcotest.test_case "idempotent insert" `Quick test_write_idempotent_insert;
          Alcotest.test_case "big (user) ranges" `Quick test_big_range;
          Alcotest.test_case "zero-length ranges" `Quick test_zero_length_ranges;
          Alcotest.test_case "exactly-adjacent ranges" `Quick test_exactly_adjacent_ranges;
          Alcotest.test_case "page-boundary writes" `Quick test_page_boundary_writes;
          Alcotest.test_case "revoke inside covering range" `Quick
            test_revoke_inside_covering_range;
          Alcotest.test_case "find covering" `Quick test_find_covering;
        ] );
      ( "call/ref",
        [
          Alcotest.test_case "call + ref tables" `Quick test_call_refs;
          Alcotest.test_case "fold distinct" `Quick test_fold_writes;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_write_cache_transparent ]);
    ]

(* Trace ring-buffer semantics and fixed-seed determinism.

   - wraparound: the ring keeps the NEWEST events, oldest first on read,
     with [dropped]/[total] accounting exact;
   - determinism: driving the same traced workload twice at the same
     seed yields byte-identical reports and Chrome JSON, and the
     per-principal profile reconciles with the cycle clock. *)

(* A synthetic clock/principal pair so ring tests need no simulator. *)
let with_counter_clock f =
  let tick = ref 0 in
  let buf = Trace.make ~capacity:4 () in
  Trace.attach buf
    ~clock:(fun () ->
      incr tick;
      (!tick, 0, 0))
    ~principal:(fun () -> "p" ^ string_of_int (!tick mod 3));
  Fun.protect ~finally:Trace.detach (fun () -> f buf)

let kinds_of buf =
  Array.to_list (Array.map (fun e -> e.Trace.ev_kind) (Trace.events buf))

let test_ring_keeps_newest () =
  with_counter_clock (fun buf ->
      for i = 1 to 10 do
        Trace.emit (Trace.Mod_call (string_of_int i))
      done;
      Alcotest.(check int) "total" 10 (Trace.total buf);
      Alcotest.(check int) "dropped" 6 (Trace.dropped buf);
      Alcotest.(check int) "capacity" 4 (Trace.capacity buf);
      Alcotest.(check (list string))
        "newest four, oldest first"
        [ "7"; "8"; "9"; "10" ]
        (List.map
           (function Trace.Mod_call s -> s | _ -> "?")
           (kinds_of buf));
      (* stamps are monotone across the retained window *)
      let evs = Trace.events buf in
      Array.iteri
        (fun i e ->
          if i > 0 then
            Alcotest.(check bool)
              "clock monotone" true
              (Trace.ev_total e >= Trace.ev_total evs.(i - 1)))
        evs)

let test_ring_under_capacity () =
  with_counter_clock (fun buf ->
      Trace.emit (Trace.Guard Trace.Gentry);
      Trace.emit (Trace.Guard Trace.Gexit);
      Alcotest.(check int) "total" 2 (Trace.total buf);
      Alcotest.(check int) "dropped" 0 (Trace.dropped buf);
      Alcotest.(check int) "retained" 2 (Array.length (Trace.events buf));
      Trace.clear buf;
      Alcotest.(check int) "cleared" 0 (Array.length (Trace.events buf));
      Alcotest.(check int) "total after clear" 0 (Trace.total buf))

let test_detach_disables () =
  with_counter_clock (fun buf ->
      Trace.emit (Trace.Mod_call "before");
      Alcotest.(check int) "emitted while attached" 1 (Trace.total buf));
  Alcotest.(check bool) "off after detach" false !Trace.on

(* Exact wraparound boundary: total = capacity keeps everything. *)
let test_ring_exact_fit () =
  with_counter_clock (fun buf ->
      for i = 1 to 4 do
        Trace.emit (Trace.Mod_call (string_of_int i))
      done;
      Alcotest.(check int) "dropped" 0 (Trace.dropped buf);
      Alcotest.(check (list string))
        "all four retained"
        [ "1"; "2"; "3"; "4" ]
        (List.map
           (function Trace.Mod_call s -> s | _ -> "?")
           (kinds_of buf)))

(* Drive the real traced netperf workload twice at the same seed; the
   report (cycle totals, per-principal tables) and the Chrome JSON
   export must be byte-identical, and cycles must reconcile (exit 0). *)
let traced_run seed =
  (* fixed name: the report header echoes the output path, and a random
     temp name would defeat the byte-identical comparison *)
  let out = Filename.concat (Filename.get_temp_dir_name ()) "lxfi_trace_test.json" in
  let buf = Buffer.create 4096 in
  let ppf = Fmt.with_buffer buf in
  let rc = Workloads.Trace_run.run ~seed ~limit:8192 ~out ~workload:"netperf" ppf in
  Fmt.flush ppf ();
  let ic = open_in_bin out in
  let json = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (rc, Buffer.contents buf, json)

let test_trace_determinism () =
  let rc1, rep1, json1 = traced_run 7 in
  let rc2, rep2, json2 = traced_run 7 in
  Alcotest.(check int) "cycles reconcile (run 1)" 0 rc1;
  Alcotest.(check int) "cycles reconcile (run 2)" 0 rc2;
  Alcotest.(check bool) "reports byte-identical" true (String.equal rep1 rep2);
  Alcotest.(check bool) "chrome JSON byte-identical" true (String.equal json1 json2);
  (* different seed must actually change the trace, or the determinism
     check above is vacuous *)
  let _, rep3, _ = traced_run 8 in
  Alcotest.(check bool) "seed changes the trace" false (String.equal rep1 rep3)

let test_profile_reconciles_synthetic () =
  with_counter_clock (fun buf ->
      for _ = 1 to 6 do
        Trace.emit (Trace.Guard Trace.Gwrite)
      done;
      let final =
        (* clock advanced once per emit; pretend 5 more kernel cycles ran *)
        (Trace.total buf + 5, 0, 0)
      in
      let p = Trace_profile.aggregate ~final buf in
      Alcotest.(check int) "attributed = total" p.Trace_profile.pr_total_cycles
        (Trace_profile.attributed_cycles p);
      Alcotest.(check int) "dropped threads through" 2 p.Trace_profile.pr_dropped)

let () =
  Kernel_sim.Klog.quiet ();
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps newest" `Quick test_ring_keeps_newest;
          Alcotest.test_case "under capacity" `Quick test_ring_under_capacity;
          Alcotest.test_case "exact fit" `Quick test_ring_exact_fit;
          Alcotest.test_case "detach disables" `Quick test_detach_disables;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fixed-seed netperf trace is byte-identical" `Slow
            test_trace_determinism;
          Alcotest.test_case "synthetic profile reconciles" `Quick
            test_profile_reconciles_synthetic;
        ] );
    ]

(* Tests of writer-set tracking (§4.1, §5). *)

open Lxfi

let test_mark_and_query () =
  let w = Writer_set.create () in
  Alcotest.(check bool) "fresh is clean" false (Writer_set.maybe_written w 0x4000);
  Writer_set.mark_range w ~base:0x4000 ~size:64;
  Alcotest.(check bool) "marked" true (Writer_set.maybe_written w 0x4000);
  Alcotest.(check bool) "same line marked" true (Writer_set.maybe_written w 0x403f);
  Alcotest.(check bool) "aligned 64-byte range stays in one line" false
    (Writer_set.maybe_written w 0x4040)

let test_line_granularity () =
  let w = Writer_set.create () in
  Writer_set.mark_range w ~base:0x4000 ~size:1;
  Alcotest.(check bool) "whole line conservatively marked" true
    (Writer_set.maybe_written w 0x403f);
  Alcotest.(check bool) "next line clean" false (Writer_set.maybe_written w 0x4040)

let test_clear () =
  let w = Writer_set.create () in
  Writer_set.mark_range w ~base:0x4000 ~size:256;
  Writer_set.clear_range w ~base:0x4000 ~size:256;
  Alcotest.(check bool) "cleared" false (Writer_set.maybe_written w 0x4080)

let test_range_spanning () =
  let w = Writer_set.create () in
  Writer_set.mark_range w ~base:0x40f8 ~size:16 (* crosses a line boundary *);
  Alcotest.(check bool) "first line" true (Writer_set.maybe_written w 0x40f8);
  Alcotest.(check bool) "second line" true (Writer_set.maybe_written w 0x4100)

let test_zero_size_noop () =
  let w = Writer_set.create () in
  Writer_set.mark_range w ~base:0x4000 ~size:0;
  Alcotest.(check bool) "no mark for empty range" false (Writer_set.maybe_written w 0x4000);
  Alcotest.(check int) "no lines" 0 (Writer_set.marked_lines w)

let test_adjacent_ranges () =
  let w = Writer_set.create () in
  (* exactly-adjacent marks tile the lines with no gap and no bleed *)
  Writer_set.mark_range w ~base:0x4000 ~size:0x40;
  Writer_set.mark_range w ~base:0x4040 ~size:0x40;
  Alcotest.(check bool) "line before clean" false (Writer_set.maybe_written w 0x3fff);
  Alcotest.(check bool) "first line" true (Writer_set.maybe_written w 0x4000);
  Alcotest.(check bool) "second line" true (Writer_set.maybe_written w 0x407f);
  Alcotest.(check bool) "line after clean" false (Writer_set.maybe_written w 0x4080);
  Alcotest.(check int) "exactly two lines" 2 (Writer_set.marked_lines w)

let test_clear_inside_covering_range () =
  let w = Writer_set.create () in
  (* an interior clear is line-granular: it punches out only the lines
     it intersects, unlike the captable's whole-entry revocation *)
  Writer_set.mark_range w ~base:0x4000 ~size:256;
  Writer_set.clear_range w ~base:0x4080 ~size:8;
  Alcotest.(check bool) "prefix still marked" true (Writer_set.maybe_written w 0x4000);
  Alcotest.(check bool) "punched line clean" false (Writer_set.maybe_written w 0x4080);
  Alcotest.(check bool) "suffix still marked" true (Writer_set.maybe_written w 0x40c0);
  (* empty clear is a no-op *)
  Writer_set.clear_range w ~base:0x4000 ~size:0;
  Alcotest.(check bool) "empty clear removes nothing" true (Writer_set.maybe_written w 0x4000)

(* End-to-end: kernel-owned slots stay clean under a loaded module, so
   the fast path fires; module-owned slots are dirty. *)
let test_integration_with_grants () =
  let kst = Kernel_sim.Kstate.boot () in
  let rt = Runtime.create ~kst ~config:Config.lxfi in
  let p = Principal.make ~kind:Principal.Shared ~owner:"m" ~primary_name:0 in
  Runtime.grant rt p (Capability.Cwrite { base = 0x2_0000_5000; size = 128 });
  Alcotest.(check bool) "granted range marked" true
    (Writer_set.maybe_written rt.Runtime.wset 0x2_0000_5040);
  Alcotest.(check bool) "elsewhere clean" false
    (Writer_set.maybe_written rt.Runtime.wset 0x2_0000_9000);
  (* user-space blanket is not marked *)
  Runtime.grant rt p
    (Capability.Cwrite
       { base = Kernel_sim.Kmem.Layout.user_base; size = 0x1000_0000 });
  Alcotest.(check bool) "user range unmarked" false
    (Writer_set.maybe_written rt.Runtime.wset 0x10_0000)

let () =
  Alcotest.run "writer_set"
    [
      ( "bitmap",
        [
          Alcotest.test_case "mark and query" `Quick test_mark_and_query;
          Alcotest.test_case "line granularity" `Quick test_line_granularity;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "line spanning" `Quick test_range_spanning;
          Alcotest.test_case "empty range" `Quick test_zero_size_noop;
          Alcotest.test_case "exactly-adjacent ranges" `Quick test_adjacent_ranges;
          Alcotest.test_case "clear inside covering range" `Quick
            test_clear_inside_covering_range;
          Alcotest.test_case "grants mark; user blanket does not" `Quick
            test_integration_with_grants;
        ] );
    ]

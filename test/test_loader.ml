(* Tests of the module loader: section layout, initial capabilities,
   annotation propagation, and load-time rejection of bad modules. *)

open Kernel_sim
open Lxfi
open Mir.Builder

let boot ?(config = Config.lxfi) () =
  let kst = Kstate.boot () in
  let rt = Runtime.create ~kst ~config in
  ignore
    (Annot.Registry.define_exn rt.Runtime.registry ~name:"cb.fn" ~params:[ "x" ] ~annot_src:"");
  ignore
    (Runtime.register_kexport_exn rt ~name:"nop" ~params:[] ~annot_src:"" (fun _ -> 0L));
  Runtime.install rt;
  (kst, rt)

let sections mi name =
  List.find_opt (fun (n, _, _) -> n = name) mi.Runtime.mi_sections

let basic_prog =
  prog "m" ~imports:[ "nop" ]
    ~globals:
      [
        global "rw" 32 ~init:[ init_int 0 7 ];
        global "ro" 32 ~section:Mir.Ast.Rodata ~init:[ init_int 0 9 ];
        global "zeroed" 32 ~section:Mir.Ast.Bss;
      ]
    ~funcs:
      [
        func "cb" [ "x" ] [ ret (v "x") ] ~export:"cb.fn";
        func "helper" [ "x" ] [ ret (v "x" +: ii 1) ];
      ]

let test_sections_and_initializers () =
  let kst, rt = boot () in
  let mi, _ = Loader.load rt basic_prog in
  let rw = Hashtbl.find mi.Runtime.mi_globals "rw" in
  let ro = Hashtbl.find mi.Runtime.mi_globals "ro" in
  Alcotest.(check int64) "data initialised" 7L (Kmem.read_u64 kst.Kstate.mem rw);
  Alcotest.(check int64) "rodata initialised" 9L (Kmem.read_u64 kst.Kstate.mem ro);
  Alcotest.(check bool) "three sections" true
    (sections mi "data" <> None && sections mi "rodata" <> None
    && sections mi "bss" <> None)

let test_initial_capabilities () =
  let _, rt = boot () in
  let mi, _ = Loader.load rt basic_prog in
  let shared = mi.Runtime.mi_shared in
  let has c = Runtime.principal_has rt shared c in
  let sec name =
    match sections mi name with Some (_, b, l) -> (b, l) | None -> assert false
  in
  let data, dlen = sec "data" in
  let ro, _ = sec "rodata" in
  Alcotest.(check bool) "WRITE on data" true
    (has (Capability.Cwrite { base = data; size = dlen }));
  Alcotest.(check bool) "no WRITE on rodata" false
    (has (Capability.Cwrite { base = ro; size = 8 }));
  Alcotest.(check bool) "WRITE on module stack" true
    (has (Capability.Cwrite { base = mi.Runtime.mi_stack_base; size = 64 }));
  Alcotest.(check bool) "CALL on own function" true
    (has (Capability.Ccall { target = Hashtbl.find mi.Runtime.mi_func_addr "helper" }));
  let ke = Runtime.find_kexport rt "nop" in
  Alcotest.(check bool) "CALL on import wrapper" true
    (has (Capability.Ccall { target = ke.Runtime.ke_addr }));
  Alcotest.(check bool) "no WRITE on shadow stack region" false
    (has
       (Capability.Cwrite
          {
            base = rt.Runtime.kernel_stack_base + rt.Runtime.kernel_stack_len;
            size = 16;
          }))

let test_annotation_propagation_from_export () =
  let _, rt = boot () in
  let mi, _ = Loader.load rt basic_prog in
  Alcotest.(check bool) "cb carries slot type" true
    (Hashtbl.mem mi.Runtime.mi_func_slot "cb");
  Alcotest.(check bool) "helper carries none" false
    (Hashtbl.mem mi.Runtime.mi_func_slot "helper");
  let addr = Hashtbl.find mi.Runtime.mi_func_addr "cb" in
  Alcotest.(check bool) "ahash registered" true
    (Hashtbl.mem rt.Runtime.func_ahash_by_addr addr)

let test_propagation_from_struct_initializer () =
  let kst, rt = boot () in
  ignore
    (Ktypes.define kst.Kstate.types "cb_table" [ ("fn", 8, Ktypes.Funcptr "cb.fn") ]);
  let p =
    prog "m2" ~imports:[]
      ~globals:
        [ global "table" 8 ~struct_:"cb_table" ~init:[ init_func 0 "impl" ] ]
      ~funcs:[ func "impl" [ "x" ] [ ret (v "x") ] ]
  in
  let mi, _ = Loader.load rt p in
  Alcotest.(check bool) "annotation propagated through struct init" true
    (Hashtbl.mem mi.Runtime.mi_func_slot "impl")

let test_conflicting_annotations_rejected () =
  let kst, rt = boot () in
  ignore
    (Annot.Registry.define_exn rt.Runtime.registry ~name:"cb.other" ~params:[ "x" ]
       ~annot_src:"principal(global)");
  ignore
    (Ktypes.define kst.Kstate.types "two_slots"
       [ ("a", 8, Ktypes.Funcptr "cb.fn"); ("b", 8, Ktypes.Funcptr "cb.other") ]);
  let p =
    prog "m3" ~imports:[]
      ~globals:
        [
          global "table" 16 ~struct_:"two_slots"
            ~init:[ init_func 0 "impl"; init_func 8 "impl" ];
        ]
      ~funcs:[ func "impl" [ "x" ] [ ret (v "x") ] ]
  in
  match Loader.load rt p with
  | exception Loader.Load_error _ -> ()
  | _ -> Alcotest.fail "conflicting propagation must be a load error"

let test_unknown_import_rejected () =
  let _, rt = boot () in
  let p = prog "m4" ~imports:[ "no_such_symbol" ] ~globals:[] ~funcs:[] in
  match Loader.load rt p with
  | exception Loader.Load_error _ -> ()
  | _ -> Alcotest.fail "unknown import must be a load error"

let test_unknown_slot_type_rejected () =
  let _, rt = boot () in
  let p =
    prog "m5" ~imports:[] ~globals:[]
      ~funcs:[ func "f" [] [ ret0 ] ~export:"no.such.slot" ]
  in
  match Loader.load rt p with
  | exception Loader.Load_error _ -> ()
  | _ -> Alcotest.fail "unknown slot type must be a load error"

let test_duplicate_module_rejected () =
  let _, rt = boot () in
  ignore (Loader.load rt basic_prog);
  match Loader.load rt basic_prog with
  | exception Loader.Load_error _ -> ()
  | _ -> Alcotest.fail "duplicate module must be a load error"

let test_fptr_into_undeclared_slot_rejected () =
  let kst, rt = boot () in
  ignore
    (Ktypes.define kst.Kstate.types "half_table"
       [ ("data", 8, Ktypes.Pointer); ("fn", 8, Ktypes.Funcptr "cb.fn") ]);
  let p =
    prog "m6" ~imports:[]
      ~globals:
        [ global "table" 16 ~struct_:"half_table" ~init:[ init_func 0 "impl" ] ]
      ~funcs:[ func "impl" [ "x" ] [ ret (v "x") ] ]
  in
  (* the function pointer is stored at the DATA field's offset *)
  match Loader.load rt p with
  | exception Loader.Load_error _ -> ()
  | _ -> Alcotest.fail "fptr into non-slot field must be a load error"

let test_stock_mode_loads_without_caps () =
  let _, rt = boot ~config:Config.stock () in
  let mi, _ = Loader.load rt basic_prog in
  Alcotest.(check int) "no capabilities granted" 0
    (Captable.write_count mi.Runtime.mi_shared.Principal.caps
    + Captable.call_count mi.Runtime.mi_shared.Principal.caps)

let test_iext_initialiser_and_indirect_call () =
  (* a module storing an import's address in a global and calling the
     kernel through it: the Iext initialiser resolves to the wrapper,
     the rewriter guards the indirect call, and the CALL capability
     granted at load approves it *)
  let _, rt = boot () in
  let hits = ref 0 in
  ignore
    (Runtime.register_kexport_exn rt ~name:"poke" ~params:[] ~annot_src:"" (fun _ ->
         incr hits;
         42L));
  let p =
    prog "iext_mod" ~imports:[ "poke" ]
      ~globals:[ global "vtable" 8 ~init:[ init_ext 0 "poke" ] ]
      ~funcs:
        [
          func "go" []
            [ let_ "fp" (load64 (glob "vtable")); ret (call_ind (v "fp") []) ];
        ]
  in
  let mi, report = Loader.load rt p in
  Alcotest.(check bool) "indirect call was guarded" true
    (report.Rewriter.r_indcall_guards >= 1);
  Alcotest.(check int64) "dispatched through the wrapper" 42L
    (Loader.init_call rt mi "go" []);
  Alcotest.(check int) "kernel impl ran" 1 !hits;
  (* corrupting the stored pointer is caught by the module-side guard *)
  let vt = Hashtbl.find mi.Runtime.mi_globals "vtable" in
  Kmem.write_ptr rt.Runtime.kst.Kstate.mem vt 0xdead0;
  match Loader.init_call rt mi "go" [] with
  | exception Violation.Violation v ->
      Alcotest.(check string) "call-denied" "call-denied"
        (Violation.kind_name v.Violation.v_kind)
  | _ -> Alcotest.fail "corrupted vtable call must be refused"

let test_init_call_runs_as_shared () =
  let _, rt = boot () in
  let p =
    prog "m7" ~imports:[] ~globals:[ global "flag" 8 ]
      ~funcs:[ func "module_init" [] [ store64 (glob "flag") (ii 1); ret0 ] ]
  in
  let mi, _ = Loader.load rt p in
  Alcotest.(check int64) "init ran" 0L (Loader.init_call rt mi "module_init" []);
  Alcotest.(check bool) "kernel context restored" true (rt.Runtime.current = None)

let () =
  Klog.quiet ();
  Alcotest.run "loader"
    [
      ( "layout",
        [
          Alcotest.test_case "sections + initialisers" `Quick test_sections_and_initializers;
          Alcotest.test_case "initial capabilities" `Quick test_initial_capabilities;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "export declaration" `Quick
            test_annotation_propagation_from_export;
          Alcotest.test_case "struct initialiser" `Quick
            test_propagation_from_struct_initializer;
          Alcotest.test_case "conflicts rejected" `Quick test_conflicting_annotations_rejected;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "unknown import" `Quick test_unknown_import_rejected;
          Alcotest.test_case "unknown slot type" `Quick test_unknown_slot_type_rejected;
          Alcotest.test_case "duplicate module" `Quick test_duplicate_module_rejected;
          Alcotest.test_case "fptr into non-slot" `Quick test_fptr_into_undeclared_slot_rejected;
        ] );
      ( "modes",
        [
          Alcotest.test_case "stock loads bare" `Quick test_stock_mode_loads_without_caps;
          Alcotest.test_case "init_call context" `Quick test_init_call_runs_as_shared;
          Alcotest.test_case "Iext vtable + indirect call" `Quick
            test_iext_initialiser_and_indirect_call;
        ] );
    ]

(* Tests of the runtime reference monitor: guards, wrappers, annotation
   semantics, the kernel indirect-call checker, and the privileged
   builtins. *)

open Kernel_sim
open Lxfi

let boot ?(config = Config.lxfi) () =
  let kst = Kstate.boot () in
  let rt = Runtime.create ~kst ~config in
  Runtime.install rt;
  (kst, rt)

(* A module with a writable global and an exported entry point used to
   exercise the wrapper path. *)
let probe_prog : Mir.Ast.prog =
  let open Mir.Builder in
  prog "probe_mod" ~imports:[ "kzalloc_like"; "take_buffer" ]
    ~globals:[ global "scratch" 64 ]
    ~funcs:
      [
        func "entry" [ "arg" ]
          [ store64 (glob "scratch") (v "arg"); ret (load64 (glob "scratch")) ]
          ~export:"test.entry";
      ]

let setup ?(config = Config.lxfi) () =
  let kst, rt = boot ~config () in
  ignore
    (Annot.Registry.define_exn rt.Runtime.registry ~name:"test.entry" ~params:[ "arg" ]
       ~annot_src:"principal(arg)");
  (* kzalloc_like grants WRITE for its return; take_buffer transfers a
     buffer away from the caller. *)
  let heap = ref 0x2_0100_0000 in
  ignore
    (Runtime.register_kexport_exn rt ~name:"kzalloc_like" ~params:[ "size" ]
       ~annot_src:"post(if (return != 0) copy(write, return, size))" (fun args ->
         let size = Int64.to_int (List.nth args 0) in
         let a = !heap in
         heap := !heap + ((size + 15) land lnot 15);
         Kmem.map kst.Kstate.mem ~addr:a ~len:size;
         Int64.of_int a));
  ignore
    (Runtime.register_kexport_exn rt ~name:"take_buffer" ~params:[ "buf"; "size" ]
       ~annot_src:"pre(transfer(write, buf, size))" (fun _ -> 0L));
  let mi, _ = Loader.load rt probe_prog in
  (kst, rt, mi)

let test_guard_write_allows_owned () =
  let _, rt, mi = setup () in
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  let data =
    match List.find_opt (fun (n, _, _) -> n = "data") mi.Runtime.mi_sections with
    | Some (_, base, _) -> base
    | None -> Alcotest.fail "no data section"
  in
  Runtime.guard_write rt mi ~addr:data ~size:8 (* must not raise *)

let test_guard_write_denies_foreign () =
  let kst, rt, mi = setup () in
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  let victim = Slab.kmalloc kst.Kstate.slab 64 in
  try
    Runtime.guard_write rt mi ~addr:victim ~size:8;
    Alcotest.fail "expected write-denied"
  with Violation.Violation v ->
    Alcotest.(check string) "kind" "write-denied" (Violation.kind_name v.Violation.v_kind)

let test_guard_write_user_space_allowed () =
  let kst, rt, mi = setup () in
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  let u = Kstate.user_alloc kst 64 in
  Runtime.guard_write rt mi ~addr:u ~size:8 (* blanket user window *)

let test_guard_indcall () =
  let _, rt, mi = setup () in
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  let own = Hashtbl.find mi.Runtime.mi_func_addr "entry" in
  Runtime.guard_indcall rt mi ~target:own (* own functions callable *);
  try
    Runtime.guard_indcall rt mi ~target:0xdead0;
    Alcotest.fail "expected call-denied"
  with Violation.Violation v ->
    Alcotest.(check string) "kind" "call-denied" (Violation.kind_name v.Violation.v_kind)

let test_kexport_grant_flow () =
  let _, rt, mi = setup () in
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  let ke = Runtime.find_kexport rt "kzalloc_like" in
  let buf = Int64.to_int (Runtime.call_kexport rt ke [ 128L ]) in
  Alcotest.(check bool) "WRITE granted by post(copy)" true
    (Runtime.principal_has rt mi.Runtime.mi_shared
       (Capability.Cwrite { base = buf; size = 128 }));
  (* transfer takes it away again *)
  let tk = Runtime.find_kexport rt "take_buffer" in
  ignore (Runtime.call_kexport rt tk [ Int64.of_int buf; 128L ]);
  Alcotest.(check bool) "WRITE revoked by pre(transfer)" false
    (Runtime.principal_has rt mi.Runtime.mi_shared
       (Capability.Cwrite { base = buf; size = 128 }))

let test_transfer_requires_ownership () =
  let _, rt, mi = setup () in
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  let tk = Runtime.find_kexport rt "take_buffer" in
  try
    ignore (Runtime.call_kexport rt tk [ Int64.of_int 0x2_00dd_dd00; 64L ]);
    Alcotest.fail "expected violation"
  with Violation.Violation v ->
    Alcotest.(check string) "cap source checked" "write-denied"
      (Violation.kind_name v.Violation.v_kind)

let test_conditional_post_respects_return () =
  let kst, rt, mi = setup () in
  ignore kst;
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  (* kzalloc_like with size 0 still returns nonzero here; simulate the
     conditional by a new export returning 0 *)
  ignore
    (Runtime.register_kexport_exn rt ~name:"failing_alloc" ~params:[ "size" ]
       ~annot_src:"post(if (return != 0) copy(write, return, size))" (fun _ -> 0L));
  let ke = Runtime.find_kexport rt "failing_alloc" in
  let granted0 = rt.Runtime.stats.Stats.caps_granted in
  ignore (Runtime.call_kexport rt ke [ 64L ]);
  Alcotest.(check int) "no grant on failure return" granted0
    rt.Runtime.stats.Stats.caps_granted

let test_wrapper_principal_selection () =
  let _, rt, mi = setup () in
  (* kernel invokes the module's entry through its slot: principal(arg)
     names the instance by the first argument *)
  ignore (Runtime.invoke_module_function rt mi "entry" [ 0x7777L ]);
  Alcotest.(check bool) "instance principal created" true
    (Hashtbl.mem mi.Runtime.mi_aliases 0x7777);
  Alcotest.(check bool) "current restored to kernel" true (rt.Runtime.current = None)

let test_unannotated_function_not_callable () =
  let _, rt, mi = setup () in
  (* direct kernel invocation of a module function with no slot type is
     the paper's unsafe default *)
  Hashtbl.remove mi.Runtime.mi_func_slot "entry";
  try
    ignore (Runtime.invoke_module_function rt mi "entry" [ 1L ]);
    Alcotest.fail "expected annotation violation"
  with Violation.Violation v ->
    Alcotest.(check string) "kind" "annotation-mismatch"
      (Violation.kind_name v.Violation.v_kind)

let test_kernel_indcall_hash_mismatch () =
  let kst, rt, mi = setup () in
  (* store the module's entry (hash of test.entry) into a slot of a
     DIFFERENT type: the runtime must refuse the laundering *)
  ignore
    (Annot.Registry.define_exn rt.Runtime.registry ~name:"test.other" ~params:[ "x" ]
       ~annot_src:"principal(global)");
  let data =
    match List.find_opt (fun (n, _, _) -> n = "data") mi.Runtime.mi_sections with
    | Some (_, base, _) -> base
    | None -> assert false
  in
  let entry = Hashtbl.find mi.Runtime.mi_func_addr "entry" in
  Kmem.write_ptr kst.Kstate.mem data entry;
  try
    ignore (Kstate.call_ptr kst ~slot:data ~ftype:"test.other" [ 1L ]);
    Alcotest.fail "expected annotation-mismatch"
  with Violation.Violation v ->
    Alcotest.(check string) "kind" "annotation-mismatch"
      (Violation.kind_name v.Violation.v_kind)

let test_kernel_indcall_matching_hash_ok () =
  let kst, _rt, mi = setup () in
  let data =
    match List.find_opt (fun (n, _, _) -> n = "data") mi.Runtime.mi_sections with
    | Some (_, base, _) -> base
    | None -> assert false
  in
  let entry = Hashtbl.find mi.Runtime.mi_func_addr "entry" in
  Kmem.write_ptr kst.Kstate.mem data entry;
  let r = Kstate.call_ptr kst ~slot:data ~ftype:"test.entry" [ 5L ] in
  Alcotest.(check int64) "dispatched through wrapper" 5L r

let test_writers_of () =
  let _, rt, mi = setup () in
  let data =
    match List.find_opt (fun (n, _, _) -> n = "data") mi.Runtime.mi_sections with
    | Some (_, base, _) -> base
    | None -> assert false
  in
  (match Runtime.writers_of rt ~addr:data with
  | [ p ] -> Alcotest.(check string) "shared wrote the data section" "probe_mod/shared"
               (Principal.describe p)
  | l -> Alcotest.failf "expected one writer, got %d" (List.length l));
  (* kernel memory nobody was granted: no writers *)
  Alcotest.(check int) "kernel data has no writers" 0
    (List.length (Runtime.writers_of rt ~addr:0x2_0FFF_0000))

let test_inspect_capture () =
  let _, rt, mi = setup () in
  ignore (Runtime.invoke_module_function rt mi "entry" [ 0x4242L ]);
  let view = Inspect.capture rt in
  Alcotest.(check string) "mode" "lxfi" view.Inspect.iv_mode;
  (match view.Inspect.iv_modules with
  | [ m ] ->
      Alcotest.(check string) "module" "probe_mod" m.Inspect.mv_name;
      Alcotest.(check bool) "instance principal visible" true
        (List.exists
           (fun p -> p.Inspect.pv_aliases = [ 0x4242 ])
           m.Inspect.mv_principals)
  | l -> Alcotest.failf "expected one module, got %d" (List.length l));
  Alcotest.(check bool) "render is non-trivial" true
    (String.length (Inspect.to_string rt) > 100)

let test_current_module () =
  let _, rt, mi = setup () in
  Alcotest.(check bool) "kernel context: no module" true (Runtime.current_module rt = None);
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  (match Runtime.current_module rt with
  | Some m -> Alcotest.(check string) "resolved" "probe_mod" m.Runtime.mi_name
  | None -> Alcotest.fail "current module lost");
  rt.Runtime.current <- None

let test_stats_move () =
  let _, rt, mi = setup () in
  rt.Runtime.current <- Some mi.Runtime.mi_shared;
  let s0 = Stats.snapshot rt.Runtime.stats in
  let ke = Runtime.find_kexport rt "kzalloc_like" in
  ignore (Runtime.call_kexport rt ke [ 16L ]);
  let d = Stats.since rt.Runtime.stats s0 in
  Alcotest.(check bool) "entry counted" true (d.Stats.s_fn_entry >= 1);
  Alcotest.(check bool) "annotation counted" true (d.Stats.s_annotation_actions >= 1)

let () =
  Klog.quiet ();
  Alcotest.run "runtime"
    [
      ( "module guards",
        [
          Alcotest.test_case "write to owned memory" `Quick test_guard_write_allows_owned;
          Alcotest.test_case "write to foreign memory" `Quick test_guard_write_denies_foreign;
          Alcotest.test_case "write to user space" `Quick test_guard_write_user_space_allowed;
          Alcotest.test_case "indirect call caps" `Quick test_guard_indcall;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "grant flow (copy/transfer)" `Quick test_kexport_grant_flow;
          Alcotest.test_case "transfer checks ownership" `Quick
            test_transfer_requires_ownership;
          Alcotest.test_case "conditional post" `Quick test_conditional_post_respects_return;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "principal selection" `Quick test_wrapper_principal_selection;
          Alcotest.test_case "unannotated functions blocked" `Quick
            test_unannotated_function_not_callable;
          Alcotest.test_case "stats counted" `Quick test_stats_move;
          Alcotest.test_case "writers_of" `Quick test_writers_of;
          Alcotest.test_case "inspect capture" `Quick test_inspect_capture;
          Alcotest.test_case "current_module" `Quick test_current_module;
        ] );
      ( "kernel ind-call",
        [
          Alcotest.test_case "hash mismatch refused" `Quick test_kernel_indcall_hash_mismatch;
          Alcotest.test_case "matching hash dispatches" `Quick
            test_kernel_indcall_matching_hash_ok;
        ] );
    ]

(* Differential testing: for randomly generated *well-behaved* modules
   (stores confined to memory they legitimately own, bounded loops),
   the full LXFI pipeline — rewriter, loader, wrappers, guards — must
   be semantically invisible: same outcomes and same final memory as a
   stock run.

   The generator is the shared one in [Fuzz.Gen] (the same definition
   `lxfi_sim fuzz` mutates into attack variants), exercised here
   through qcheck so failures shrink and print as MIR.  The oracle is
   [Fuzz.Harness], whose clean battery also covers the de-optimized
   config, the static checker and trace reconciliation. *)

open Kernel_sim

let gen_case = Fuzz.Gen.of_random_state ()

let arb_case =
  QCheck.make ~print:(fun (c : Fuzz.Gen.case) -> Mir.Printer.to_string c.Fuzz.Gen.c_prog) gen_case

(* The full clean-oracle battery: stock = lxfi = de-optimized lxfi on
   every drive outcome and on final arena/buffer memory, zero static
   findings, and (traced) cycle totals that reconcile. *)
let prop_clean_oracles =
  QCheck.Test.make ~count:200 ~name:"clean oracles hold on well-behaved modules" arb_case
    (fun case ->
      match Fuzz.Harness.clean_failure ~trace:true case with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* XFI mode (segment confinement without API integrity) must agree with
   stock on well-behaved modules too — it is not part of the fuzz
   campaign's battery, so pin it here. *)
let prop_xfi_agrees =
  QCheck.Test.make ~count:100 ~name:"xfi mode agrees too" arb_case (fun case ->
      match
        ( Fuzz.Harness.clean_sig_under Lxfi.Config.stock case,
          Fuzz.Harness.clean_sig_under Lxfi.Config.xfi case )
      with
      | Ok stock, Ok xfi -> (
          match Fuzz.Harness.diff_sigs ~la:"stock" ~lb:"xfi" stock xfi with
          | None -> true
          | Some d -> QCheck.Test.fail_report d)
      | Error m, _ | _, Error m -> QCheck.Test.fail_report ("setup: " ^ m))

let () =
  Klog.quiet ();
  Alcotest.run "differential"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest [ prop_clean_oracles; prop_xfi_agrees ] );
    ]

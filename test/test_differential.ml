(* Differential testing: for randomly generated *well-behaved* modules
   (stores confined to their own arena, bounded loops), the full LXFI
   pipeline — rewriter, loader, wrappers, guards — must be semantically
   invisible: same return value and same final memory as a stock run.

   This is the deepest end-to-end property in the suite: it exercises
   guard insertion, inlining, the interpreter, capability grants from
   kmalloc, and wrapper plumbing on thousands of program shapes. *)

open Kernel_sim
open Kmodules
open Mir.Builder

let arena_size = 256

(* Generator for statements that only ever write inside the module's
   own arena global (offsets are in bounds by construction) and only
   loop boundedly. *)
let gen_offset = QCheck.Gen.(map (fun i -> i * 8) (int_bound ((arena_size / 8) - 1)))

let gen_pure_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> ii (i - 100)) (int_bound 200);
              map (fun o -> load64 (glob "arena" +: ii o)) gen_offset;
              oneofl [ v "a"; v "b" ];
            ]
        in
        if n <= 1 then leaf
        else
          frequency
            [
              (2, leaf);
              ( 3,
                map3
                  (fun op a b -> bin op Mir.Ast.W64 a b)
                  (oneofl Mir.Ast.[ Add; Sub; Mul; Band; Bor; Bxor ])
                  (self (n / 2)) (self (n / 2)) );
              ( 1,
                map3
                  (fun op a b -> bin op Mir.Ast.W32 a b)
                  (oneofl Mir.Ast.[ Add; Mul ])
                  (self (n / 2)) (self (n / 2)) );
            ]))

let gen_stmt =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let base =
          oneof
            [
              map2 (fun o e -> store64 (glob "arena" +: ii o) e) gen_offset gen_pure_expr;
              map (fun e -> let_ "a" e) gen_pure_expr;
              map (fun e -> let_ "b" e) gen_pure_expr;
              map (fun e -> let_ "a" (call "helper" [ e ])) gen_pure_expr;
            ]
        in
        if n <= 1 then base
        else
          frequency
            [
              (4, base);
              ( 1,
                map3
                  (fun c t e -> if_ (c &: ii 1) t e)
                  gen_pure_expr
                  (list_size (int_bound 3) (self (n / 3)))
                  (list_size (int_bound 2) (self (n / 3))) );
              ( 1,
                map
                  (fun body ->
                    (* bounded loop over a fresh counter *)
                    Mir.Ast.If
                      ( ii 1,
                        for_ "i" ~from:(ii 0) ~below:(ii 7) body,
                        [] ))
                  (list_size (int_bound 3) (self (n / 3))) );
            ]))

let gen_prog =
  QCheck.Gen.(
    map
      (fun stmts ->
        prog "difftest" ~imports:[ "kmalloc"; "kfree" ]
          ~globals:[ global "arena" arena_size ~section:Mir.Ast.Bss ]
          ~funcs:
            [
              (* trivial helper: inlining candidate *)
              func "helper" [ "x" ] [ ret (v "x" +: ii 3) ];
              func "module_init" [] [ ret0 ];
              func "entry" [ "n" ]
                ([ let_ "a" (v "n"); let_ "b" (ii 1) ]
                @ stmts
                @ [
                    (* fold the arena into the result so memory
                       divergence is observable *)
                    let_ "acc" (ii 0);
                    let_ "o" (ii 0);
                    while_
                      (v "o" <: ii arena_size)
                      [
                        let_ "acc" (v "acc" ^: load64 (glob "arena" +: v "o"));
                        let_ "o" (v "o" +: ii 8);
                      ];
                    ret (v "acc" ^: v "a" ^: v "b");
                  ])
                ~export:"bench.entry";
            ])
      (list_size (int_bound 12) gen_stmt))

let run_under config prog input =
  let sys = Ksys.boot config in
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:"bench.entry"
       ~params:[ "n" ] ~annot_src:"");
  let mi, _ = Ksys.load sys prog in
  let r = Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "entry" [ input ] in
  (* also hash the final arena contents *)
  let arena = Mod_common.gaddr mi "arena" in
  let mem = Kmem.read_bytes sys.Ksys.kst.Kstate.mem ~addr:arena ~len:arena_size in
  (r, Hashtbl.hash (Bytes.to_string mem))

let prop_stock_equals_lxfi =
  QCheck.Test.make ~count:200 ~name:"stock = lxfi on well-behaved modules"
    (QCheck.make ~print:Mir.Printer.to_string gen_prog)
    (fun prog ->
      List.for_all
        (fun input ->
          run_under Lxfi.Config.stock prog input
          = run_under Lxfi.Config.lxfi prog input)
        [ 0L; 5L; 123456789L ])

let prop_xfi_also_agrees =
  QCheck.Test.make ~count:100 ~name:"xfi mode agrees too"
    (QCheck.make ~print:Mir.Printer.to_string gen_prog)
    (fun prog ->
      run_under Lxfi.Config.stock prog 7L = run_under Lxfi.Config.xfi prog 7L)

let prop_no_opt_agrees =
  QCheck.Test.make ~count:100 ~name:"optimizations do not change results"
    (QCheck.make ~print:Mir.Printer.to_string gen_prog)
    (fun prog ->
      let noopt =
        {
          Lxfi.Config.lxfi with
          Lxfi.Config.opt_elide_safe_writes = false;
          opt_inline_trivial = false;
        }
      in
      run_under noopt prog 9L = run_under Lxfi.Config.lxfi prog 9L)

let () =
  Klog.quiet ();
  Alcotest.run "differential"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [ prop_stock_equals_lxfi; prop_xfi_also_agrees; prop_no_opt_agrees ] );
    ]

(* Unit tests of the MIR interpreter: arithmetic semantics (including
   the 32-bit wrapping the CAN BCM bug needs), control flow, memory,
   calls, allocas, and fault behaviour. *)

open Kernel_sim
open Mir.Builder

(* Run a bare program without LXFI: direct interpreter harness. *)
let run_prog prog fname args =
  let kst = Kstate.boot () in
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (g : Mir.Ast.glob) ->
      let a = Kstate.alloc_module_area kst (max 16 g.Mir.Ast.gsize) in
      Hashtbl.replace globals g.Mir.Ast.gname a)
    prog.Mir.Ast.globals;
  let stack_base = Kstate.alloc_module_area kst 4096 in
  let ctx =
    Mir.Interp.create ~kst ~prog
      ~global_addr:(Hashtbl.find globals)
      ~func_addr:(fun f ->
        match Mir.Ast.find_func prog f with
        | Some _ -> 0x4_0000_0000 + Hashtbl.hash f
        | None -> raise Not_found)
      ~ext_addr:(fun _ -> 0x1_0000_0000)
      ~call_ext:(fun _ _ -> 0L)
      ~guard_write:(fun ~addr:_ ~size:_ -> ())
      ~guard_indcall:(fun ~target:_ -> ())
      ~on_entry:(fun _ -> ())
      ~on_exit:(fun _ -> ())
      ~hooks_enabled:false ~stack_base ~stack_len:4096
  in
  (Mir.Interp.run ctx fname args, kst, ctx)

let eval_expr e =
  let p = prog "t" ~imports:[] ~globals:[] ~funcs:[ func "f" [] [ ret e ] ] in
  let r, _, _ = run_prog p "f" [] in
  r

let check_expr name expect e = Alcotest.(check int64) name expect (eval_expr e)

let test_arithmetic () =
  check_expr "add" 7L (ii 3 +: ii 4);
  check_expr "sub wraps" (-1L) (ii 3 -: ii 4);
  check_expr "mul" 12L (ii 3 *: ii 4);
  check_expr "udiv" 3L (ii 13 /: ii 4);
  check_expr "urem" 1L (ii 13 %: ii 4);
  check_expr "div by unsigned -1 is 0" 0L (ii 13 /: i (-1L));
  check_expr "and" 4L (ii 12 &: ii 6);
  check_expr "or" 14L (ii 12 |: ii 6);
  check_expr "xor" 10L (ii 12 ^: ii 6);
  check_expr "shl" 48L (ii 12 <<: ii 2);
  check_expr "lshr" 3L (ii 12 >>: ii 2);
  check_expr "lshr is logical" 1L (i Int64.min_int >>: ii 63)

let test_comparisons () =
  check_expr "eq true" 1L (ii 5 ==: ii 5);
  check_expr "eq false" 0L (ii 5 ==: ii 6);
  check_expr "ne" 1L (ii 5 <>: ii 6);
  check_expr "lt signed" 1L (i (-1L) <: ii 1);
  check_expr "ult unsigned" 0L (bin Mir.Ast.Ult Mir.Ast.W64 (i (-1L)) (ii 1));
  check_expr "le" 1L (ii 5 <=: ii 5);
  check_expr "ge" 1L (ii 5 >=: ii 5);
  check_expr "gt" 0L (ii 5 >: ii 5)

let test_narrow_signed_compares () =
  let open Mir.Ast in
  (* narrow values circulate zero-extended; signed compares must see
     them at their width (a W32 -1 is 0xFFFF_FFFF) *)
  check_expr "w32 -1 < 0" 1L (bin Lt W32 (i 0xFFFF_FFFFL) (ii 0));
  check_expr "w32 -1 <= 0" 1L (bin Le W32 (i 0xFFFF_FFFFL) (ii 0));
  check_expr "w32 0 > -1" 1L (bin Gt W32 (ii 0) (i 0xFFFF_FFFFL));
  check_expr "w32 -1 >= -2" 1L (bin Ge W32 (i 0xFFFF_FFFFL) (i 0xFFFF_FFFEL));
  check_expr "w16 -1 < 1" 1L (bin Lt W16 (i 0xFFFFL) (ii 1));
  check_expr "w8 -128 < 127" 1L (bin Lt W8 (i 0x80L) (ii 127));
  check_expr "w8 -1 > -128" 1L (bin Gt W8 (i 0xFFL) (i 0x80L));
  check_expr "w32 ult stays unsigned" 0L (bin Ult W32 (i 0xFFFF_FFFFL) (ii 1));
  check_expr "w64 unchanged" 1L (i (-1L) <: ii 1)

let test_narrow_shift_masking () =
  let open Mir.Ast in
  (* shift counts wrap at the operation width, not at 64 *)
  check_expr "w32 shl 32 = shl 0" 5L (bin Shl W32 (ii 5) (ii 32));
  check_expr "w32 shl 33 = shl 1" 10L (bin Shl W32 (ii 5) (ii 33));
  check_expr "w8 shl 8 = shl 0" 5L (bin Shl W8 (ii 5) (ii 8));
  check_expr "w8 shl truncates" 0x80L (bin Shl W8 (ii 1) (ii 7));
  check_expr "w16 lshr 17 = lshr 1" 4L (bin Lshr W16 (ii 8) (ii 17));
  check_expr "w32 lshr 32 = lshr 0" 7L (bin Lshr W32 (ii 7) (ii 32));
  check_expr "w32 lshr shifts the truncated value" 1L
    (bin Lshr W32 (i 0x1_8000_0000L) (ii 31));
  check_expr "w64 shl 64 = shl 0" 5L (ii 5 <<: ii 64)

let test_32bit_wrapping () =
  (* the CAN BCM overflow: 0x10000001 * 16 wraps to 16 in u32 *)
  check_expr "mul32 wraps" 16L (mul32 (i 0x10000001L) (ii 16));
  check_expr "add32 wraps" 0L (add32 (i 0xffffffffL) (ii 1));
  check_expr "64-bit does not wrap" 0x100000010L (i 0x10000001L *: ii 16)

let test_control_flow () =
  let p =
    prog "t" ~imports:[] ~globals:[]
      ~funcs:
        [
          func "fib" [ "n" ]
            [
              when_ (v "n" <: ii 2) [ ret (v "n") ];
              ret (call "fib" [ v "n" -: ii 1 ] +: call "fib" [ v "n" -: ii 2 ]);
            ];
          func "sum_to" [ "n" ]
            [
              let_ "acc" (ii 0);
              let_ "i" (ii 1);
              while_
                (v "i" <=: v "n")
                [ let_ "acc" (v "acc" +: v "i"); let_ "i" (v "i" +: ii 1) ];
              ret (v "acc");
            ];
        ]
  in
  let r, _, _ = run_prog p "fib" [ 10L ] in
  Alcotest.(check int64) "fib 10" 55L r;
  let r, _, _ = run_prog p "sum_to" [ 100L ] in
  Alcotest.(check int64) "gauss" 5050L r

let test_memory_and_globals () =
  let p =
    prog "t" ~imports:[]
      ~globals:[ global "counter" 8; global "buf" 64 ]
      ~funcs:
        [
          func "bump" []
            [
              store64 (glob "counter") (load64 (glob "counter") +: ii 1);
              ret (load64 (glob "counter"));
            ];
          func "mixed_widths" []
            [
              store8 (glob "buf") (ii 0xab);
              store32 (glob "buf" +: ii 4) (i 0xdeadbeefL);
              ret (load8 (glob "buf") +: load32 (glob "buf" +: ii 4));
            ];
        ]
  in
  let r, _, _ = run_prog p "bump" [] in
  Alcotest.(check int64) "counter" 1L r;
  let r, _, _ = run_prog p "mixed_widths" [] in
  Alcotest.(check int64) "width mix" (Int64.add 0xabL 0xdeadbeefL) r

let test_alloca_stack_discipline () =
  let p =
    prog "t" ~imports:[] ~globals:[]
      ~funcs:
        [
          func "leaf" []
            [ alloca "b" 32; store64 (v "b") (ii 99); ret (load64 (v "b")) ];
          func "caller" []
            [
              alloca "a" 16;
              store64 (v "a") (ii 7);
              let_ "x" (call "leaf" []);
              (* leaf's frame must not have clobbered ours *)
              ret (load64 (v "a") +: v "x");
            ];
        ]
  in
  let r, _, ctx = run_prog p "caller" [] in
  Alcotest.(check int64) "frames independent" 106L r;
  Alcotest.(check int) "stack pointer restored" ctx.Mir.Interp.stack_base
    ctx.Mir.Interp.stack_ptr

let test_stack_overflow () =
  let p =
    prog "t" ~imports:[] ~globals:[]
      ~funcs:[ func "deep" [ "n" ] [ alloca "b" 1024; ret (call "deep" [ v "n" ]) ] ]
  in
  match run_prog p "deep" [ 0L ] with
  | exception Kstate.Oops msg ->
      Alcotest.(check bool) "stack overflow detected" true
        (String.length msg > 0
        && (String.sub msg 0 6 = "module" || String.length msg > 0))
  | _ -> Alcotest.fail "expected stack overflow oops"

let test_null_deref_faults () =
  let p =
    prog "t" ~imports:[] ~globals:[]
      ~funcs:[ func "f" [] [ ret (load64 (ii 0)) ] ]
  in
  match run_prog p "f" [] with
  | exception Kmem.Fault { addr; write = false } when addr < 0x1000 -> ()
  | _ -> Alcotest.fail "expected NULL fault"

let test_divide_by_zero_oops () =
  let p =
    prog "t" ~imports:[] ~globals:[]
      ~funcs:[ func "f" [] [ ret (ii 1 /: ii 0) ] ]
  in
  match run_prog p "f" [] with
  | exception Kstate.Oops "divide error" -> ()
  | _ -> Alcotest.fail "expected divide oops"

let test_fuel_stops_infinite_loops () =
  let p =
    prog "t" ~imports:[] ~globals:[]
      ~funcs:[ func "spin" [] [ while_ (ii 1) []; ret0 ] ]
  in
  match run_prog p "spin" [] with
  | exception Kstate.Oops _ -> ()
  | _ -> Alcotest.fail "expected soft lockup"

let test_unbound_local_oops () =
  let p =
    prog "t" ~imports:[] ~globals:[] ~funcs:[ func "f" [] [ ret (v "nope") ] ]
  in
  match run_prog p "f" [] with
  | exception Kstate.Oops _ -> ()
  | _ -> Alcotest.fail "expected unbound-local oops"

let test_indirect_call_to_own_function () =
  let p =
    prog "t" ~imports:[] ~globals:[ global "slot" 8 ]
      ~funcs:
        [
          func "target" [ "x" ] [ ret (v "x" *: ii 3) ];
          func "f" []
            [
              store64 (glob "slot") (fn "target");
              let_ "fp" (load64 (glob "slot"));
              ret (call_ind (v "fp") [ ii 14 ]);
            ];
        ]
  in
  let r, _, _ = run_prog p "f" [] in
  Alcotest.(check int64) "indirect dispatch" 42L r

let test_code_size_metric () =
  let small = prog "s" ~imports:[] ~globals:[] ~funcs:[ func "f" [] [ ret0 ] ] in
  let bigger =
    prog "b" ~imports:[] ~globals:[]
      ~funcs:[ func "f" [] [ let_ "x" (ii 1 +: ii 2); ret (v "x") ] ]
  in
  Alcotest.(check bool) "size is monotone" true
    (Mir.Ast.prog_size bigger > Mir.Ast.prog_size small)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_printer_smoke () =
  let s = Mir.Printer.to_string Workloads.Microbench.lld_prog in
  Alcotest.(check bool) "printer renders module" true (String.length s > 200);
  Alcotest.(check bool) "mentions insert" true (contains ~needle:"func insert" s);
  Alcotest.(check bool) "mentions globals" true (contains ~needle:"global head" s)

let () =
  Alcotest.run "mir"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "narrow signed compares" `Quick
            test_narrow_signed_compares;
          Alcotest.test_case "narrow shift masking" `Quick test_narrow_shift_masking;
          Alcotest.test_case "32-bit wrapping" `Quick test_32bit_wrapping;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "memory + globals" `Quick test_memory_and_globals;
          Alcotest.test_case "alloca discipline" `Quick test_alloca_stack_discipline;
          Alcotest.test_case "indirect call" `Quick test_indirect_call_to_own_function;
        ] );
      ( "faults",
        [
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
          Alcotest.test_case "NULL deref" `Quick test_null_deref_faults;
          Alcotest.test_case "divide by zero" `Quick test_divide_by_zero_oops;
          Alcotest.test_case "infinite loop fuel" `Quick test_fuel_stops_infinite_loops;
          Alcotest.test_case "unbound local" `Quick test_unbound_local_oops;
        ] );
      ( "tools",
        [
          Alcotest.test_case "code size metric" `Quick test_code_size_metric;
          Alcotest.test_case "printer" `Quick test_printer_smoke;
        ] );
    ]

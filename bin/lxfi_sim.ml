(* lxfi_sim — command-line driver for the LXFI reproduction.

     lxfi_sim exploit [NAME] [--mode MODE]   run CVE exploits
     lxfi_sim netperf [--pkts N]             Figure 12 rows
     lxfi_sim micro [--no-opt]               Figure 11 rows
     lxfi_sim modules                        corpus + annotation effort
     lxfi_sim annotations                    the annotated kernel API
     lxfi_sim dump MODULE [--mode MODE]      instrumented MIR of a module
     lxfi_sim faultsim [--seed N]            fault-injection campaign
     lxfi_sim lifecycle [--seed N]           hot-upgrade + repair/replay campaign
     lxfi_sim fuzz [--seed N] [--runs K]     adversarial differential fuzzing
     lxfi_sim trace WORKLOAD [--seed N]      event trace + principal profile
     lxfi_sim check [MODULE|--all] [--json F] static annotation + capflow check
*)

open Cmdliner
open Kmodules
module R = Workloads.Report

let mode_conv =
  let parse = function
    | "stock" -> Ok Lxfi.Config.stock
    | "xfi" -> Ok Lxfi.Config.xfi
    | "lxfi" -> Ok Lxfi.Config.lxfi
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (stock|xfi|lxfi)" s))
  in
  let print ppf c = Fmt.string ppf (Lxfi.Config.mode_name c.Lxfi.Config.mode) in
  Arg.conv (parse, print)

let mode_arg =
  Arg.(
    value
    & opt (some mode_conv) None
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"Enforcement mode: stock, xfi or lxfi.")

(* ---- exploit ---- *)

let exploit_cmd =
  let name_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Exploit to run (CAN_BCM, Econet, RDS, RDS(w), Rootkit, ...); all if omitted.")
  in
  let run name mode =
    Kernel_sim.Klog.quiet ();
    let selected =
      match name with
      | None -> Exploits.Pid_rootkit.all
      | Some n -> (
          match
            List.find_opt
              (fun (e : Exploits.Exploit.t) ->
                String.lowercase_ascii e.Exploits.Exploit.name = String.lowercase_ascii n)
              Exploits.Pid_rootkit.all
          with
          | Some e -> [ e ]
          | None ->
              Fmt.epr "unknown exploit %s@." n;
              exit 1)
    in
    let modes =
      match mode with
      | Some m -> [ m ]
      | None -> [ Lxfi.Config.stock; Lxfi.Config.xfi; Lxfi.Config.lxfi ]
    in
    List.iter
      (fun e ->
        List.iter
          (fun m ->
            let r = Exploits.Exploit.run_in_mode e m in
            Fmt.pr "%a@." Exploits.Exploit.pp_result r)
          modes)
      selected
  in
  Cmd.v
    (Cmd.info "exploit" ~doc:"Run the CVE exploit reproductions (Figure 8).")
    Term.(const run $ name_arg $ mode_arg)

(* ---- netperf ---- *)

let netperf_cmd =
  let pkts =
    Arg.(value & opt int 4000 & info [ "pkts" ] ~doc:"Packets per measurement.")
  in
  let run pkts =
    Kernel_sim.Klog.quiet ();
    let rows = Workloads.Netperf_sim.figure12 ~pkts () in
    R.table ~title:"netperf (Figure 12)"
      ~header:[ "Test"; "stock"; "LXFI"; "cpu"; "cpu(LXFI)" ]
      (List.map
         (fun (r : Workloads.Netperf_sim.row) ->
           let fmt v =
             if r.Workloads.Netperf_sim.r_unit = "Mbit/s" then Printf.sprintf "%.0f Mbit/s" v
             else if v >= 1e6 then Printf.sprintf "%.2fM/s" (v /. 1e6)
             else Printf.sprintf "%.1fK/s" (v /. 1e3)
           in
           [
             r.Workloads.Netperf_sim.r_test;
             fmt r.Workloads.Netperf_sim.r_stock;
             fmt r.Workloads.Netperf_sim.r_lxfi;
             R.pct r.Workloads.Netperf_sim.r_stock_cpu;
             R.pct r.Workloads.Netperf_sim.r_lxfi_cpu;
           ])
         rows)
  in
  Cmd.v
    (Cmd.info "netperf" ~doc:"Run the netperf simulation (Figure 12).")
    Term.(const run $ pkts)

(* ---- micro ---- *)

let micro_cmd =
  let noopt =
    Arg.(value & flag & info [ "no-opt" ] ~doc:"Disable rewriter optimizations.")
  in
  let run noopt =
    Kernel_sim.Klog.quiet ();
    let config =
      if noopt then
        {
          Lxfi.Config.lxfi with
          Lxfi.Config.opt_elide_safe_writes = false;
          opt_inline_trivial = false;
        }
      else Lxfi.Config.lxfi
    in
    R.table ~title:"SFI microbenchmarks (Figure 11)"
      ~header:[ "Benchmark"; "dCode"; "slowdown" ]
      (List.map
         (fun (r : Workloads.Microbench.result) ->
           [
             r.Workloads.Microbench.b_name;
             Printf.sprintf "%.2fx" r.Workloads.Microbench.b_code_ratio;
             R.pct1 r.Workloads.Microbench.b_slowdown;
           ])
         (Workloads.Microbench.all ~config_lxfi:config ()))
  in
  Cmd.v
    (Cmd.info "micro" ~doc:"Run the SFI microbenchmarks (Figure 11).")
    Term.(const run $ noopt)

(* ---- modules ---- *)

let modules_cmd =
  let run () =
    Kernel_sim.Klog.quiet ();
    let sys = Ksys.boot Lxfi.Config.lxfi in
    let rows, total_fn, total_fp = Catalog.annotation_effort sys in
    R.table ~title:"module corpus and annotation effort (Figure 9)"
      ~header:[ "Category"; "Module"; "#fn"; "uniq"; "#fptr"; "uniq" ]
      (List.map
         (fun (r : Catalog.effort_row) ->
           [
             r.Catalog.e_category;
             r.Catalog.e_module;
             string_of_int r.Catalog.e_functions_all;
             string_of_int r.Catalog.e_functions_unique;
             string_of_int r.Catalog.e_fptrs_all;
             string_of_int r.Catalog.e_fptrs_unique;
           ])
         rows
      @ [ [ ""; "Total (distinct)"; string_of_int total_fn; ""; string_of_int total_fp; "" ] ])
  in
  Cmd.v
    (Cmd.info "modules" ~doc:"List the ten-module corpus and annotation effort.")
    Term.(const run $ const ())

(* ---- annotations ---- *)

let annotations_cmd =
  let run () =
    Kernel_sim.Klog.quiet ();
    let sys = Ksys.boot Lxfi.Config.lxfi in
    let rt = sys.Ksys.rt in
    Fmt.pr "== function-pointer slot types ==@.";
    List.iter
      (fun (s : Annot.Registry.slot) ->
        Fmt.pr "  %-36s (%s)@.      %s@." s.Annot.Registry.sl_name
          (String.concat ", " s.Annot.Registry.sl_params)
          (match Annot.Ast.to_string s.Annot.Registry.sl_annot with
          | "" -> "(no contract)"
          | a -> a))
      (Annot.Registry.all rt.Lxfi.Runtime.registry);
    Fmt.pr "@.== annotated kernel exports ==@.";
    Hashtbl.fold (fun name ke acc -> (name, ke) :: acc) rt.Lxfi.Runtime.kexports []
    |> List.sort compare
    |> List.iter (fun (name, (ke : Lxfi.Runtime.kexport)) ->
           Fmt.pr "  %-28s (%s)@.      %s@." name
             (String.concat ", " ke.Lxfi.Runtime.ke_params)
             (match Annot.Ast.to_string ke.Lxfi.Runtime.ke_annot with
             | "" -> "(no contract)"
             | a -> a))
  in
  Cmd.v
    (Cmd.info "annotations" ~doc:"Dump the annotated kernel API surface.")
    Term.(const run $ const ())

(* ---- state ---- *)

let state_cmd =
  let run () =
    Kernel_sim.Klog.quiet ();
    (* boot a representative system, run some traffic, dump LXFI state *)
    let sys = Ksys.boot Lxfi.Config.lxfi in
    let pcidev, nic = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
    List.iter
      (fun spec -> ignore (Mod_common.install sys spec))
      [ E1000.spec; Rds.spec; Dm_crypt.spec ];
    ignore
      (Result.get_ok
         (Kernel_sim.Blockdev.dm_create sys.Ksys.blk ~target:"crypt" ~name:"c0"
            ~len:1024 ~arg:7));
    ignore (Kernel_sim.Sockets.sys_socket sys.Ksys.sock ~family:Kernel_sim.Sockets.af_rds ~typ:2);
    let dev = Kernel_sim.Pci.pci_get_drvdata sys.Ksys.pci pcidev in
    for _ = 1 to 4 do
      let skb = Kernel_sim.Skbuff.alloc sys.Ksys.kst 64 in
      Kernel_sim.Skbuff.set_dev sys.Ksys.kst skb dev;
      ignore (Kernel_sim.Netdev.dev_queue_xmit sys.Ksys.net skb)
    done;
    ignore (Kernel_sim.Nic.drain_tx nic);
    print_string (Lxfi.Inspect.to_string sys.Ksys.rt)
  in
  Cmd.v
    (Cmd.info "state"
       ~doc:"Boot a demo system, run traffic, and dump LXFI's principal and \
             capability state.")
    Term.(const run $ const ())

(* ---- dump ---- *)

let dump_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"MODULE" ~doc:"Module name (e.g. e1000, rds, can_bcm).")
  in
  let run name mode =
    Kernel_sim.Klog.quiet ();
    let config = Option.value ~default:Lxfi.Config.lxfi mode in
    let sys = Ksys.boot config in
    match Catalog.find name with
    | None ->
        Fmt.epr "unknown module %s (try: %s)@." name
          (String.concat ", " (List.map (fun s -> s.Mod_common.name) Catalog.all));
        exit 1
    | Some spec ->
        let prog = spec.Mod_common.make sys in
        let prog, report = Lxfi.Rewriter.instrument config prog in
        Fmt.pr "/* %s, %s mode: %a */@.@.%a@." name
          (Lxfi.Config.mode_name config.Lxfi.Config.mode)
          Lxfi.Rewriter.pp_report report Mir.Printer.pp_prog prog
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print a module's (instrumented) MIR.")
    Term.(const run $ name_arg $ mode_arg)

(* ---- faultsim ---- *)

let faultsim_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; the same seed reproduces the exact same report.")
  in
  let trace_dir =
    Arg.(
      value & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:"Capture each cell's faulting window as Chrome trace-event JSON \
                into $(docv) (one file per cell).")
  in
  let run seed trace_dir =
    Kernel_sim.Klog.quiet ();
    (match trace_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    exit (Workloads.Faultsim.print ?trace_dir ~seed ())
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:"Run the deterministic fault-injection campaign against the \
             quarantine policy (alloc-fail, drop-grant, corrupt-slot, \
             watchdog x netperf, can, rds).")
    Term.(const run $ seed $ trace_dir)

(* ---- lifecycle ---- *)

let lifecycle_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; the same seed reproduces the exact same report.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write a machine-readable (byte-stable) report to $(docv).")
  in
  let run seed json =
    Kernel_sim.Klog.quiet ();
    exit (Workloads.Lifecycle.print ?json ~seed ())
  in
  Cmd.v
    (Cmd.info "lifecycle"
       ~doc:"Run the live module lifecycle campaign: hot upgrades under \
             netperf/can/rds traffic plus quarantine->repair->replay recovery \
             cycles, asserting the liveness, violation-free-swap, counter \
             reconciliation and recovery-replay oracles.")
    Term.(const run $ seed $ json)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; the same seed yields a byte-identical report.")
  in
  let runs =
    Arg.(
      value & opt int 100
      & info [ "r"; "runs" ] ~docv:"N" ~doc:"Generated clean cases per campaign.")
  in
  let mutants =
    Arg.(
      value & opt int 4
      & info [ "m"; "mutants" ] ~docv:"M"
          ~doc:"Attack mutants derived from each clean case (classes rotate so \
                every class gets equal coverage).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:"Write minimized .mir repros for any divergence into $(docv).")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write a machine-readable report to $(docv).")
  in
  let exemplars =
    Arg.(
      value & flag
      & info [ "exemplars" ]
          ~doc:"Instead of a campaign, write one minimized detected-attack \
                repro per mutation class (plus a clean module) into --out; \
                this is how test/corpus is generated.")
  in
  let run seed runs mutants out json exemplars =
    Kernel_sim.Klog.quiet ();
    if exemplars then
      match out with
      | None ->
          Fmt.epr "--exemplars requires --out DIR@.";
          exit 2
      | Some dir -> exit (Workloads.Fuzz_run.print_exemplars ~seed ~out:dir ())
    else exit (Workloads.Fuzz_run.print ~mutants_per_case:mutants ?out ?json ~seed ~runs ())
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Run the seeded adversarial fuzz campaign: generated modules \
             checked under the differential oracles (stock vs lxfi agreement, \
             mutant detection by violation class, static/runtime consistency, \
             trace reconciliation), with failing cases minimized to \
             replayable MIR repros.")
    Term.(const run $ seed $ runs $ mutants $ out $ json $ exemplars)

(* ---- trace ---- *)

let trace_cmd =
  let workload_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun w -> (w, w)) Workloads.Trace_run.workload_names))) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to trace: netperf, can or rds.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Op-mix seed; the same seed yields byte-identical output.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE.json"
          ~doc:"Write the trace as Chrome trace-event JSON (chrome://tracing).")
  in
  let limit =
    Arg.(
      value & opt int Trace.default_capacity
      & info [ "limit" ] ~docv:"N"
          ~doc:"Ring-buffer capacity: retain at most $(docv) events (newest win).")
  in
  let run workload seed out limit =
    Kernel_sim.Klog.quiet ();
    exit (Workloads.Trace_run.run ~seed ~limit ?out ~workload Fmt.stdout)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace a workload run: per-principal and per-entry-point profile \
             (cycles by category, guards by type), optional Chrome trace-event \
             JSON export.")
    Term.(const run $ workload_arg $ seed $ out $ limit)

(* ---- runmod ---- *)

(* ---- check ---- *)

let check_cmd =
  let module_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"MODULE"
          ~doc:"Catalog module to check (e.g. e1000, rds, can_bcm).")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Check the whole API surface (slot registry + kernel exports) \
                and every catalog module.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write a machine-readable report to $(docv).")
  in
  let broken_arg =
    Arg.(
      value & flag
      & info [ "broken-demo" ]
          ~doc:"Check a deliberately broken module instead (exit is non-zero; \
                demonstrates what the checker rejects).")
  in
  let run module_name all json broken =
    Kernel_sim.Klog.quiet ();
    let report =
      if broken then Workloads.Check_run.broken_demo ()
      else if all || module_name = None then Workloads.Check_run.check_catalog ()
      else
        match Workloads.Check_run.check_catalog ?only:module_name () with
        | r -> r
        | exception Invalid_argument m ->
            Fmt.epr "%s@." m;
            exit 2
    in
    Fmt.pr "%a" Workloads.Check_run.pp report;
    (match json with
    | Some file ->
        Workloads.Bench_json.write_file file (Workloads.Check_run.to_json report);
        Fmt.pr "wrote %s@." file
    | None -> ());
    if Workloads.Check_run.has_errors report then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check annotations and capability flow (lint + dataflow) \
          without loading any module.")
    Term.(const run $ module_arg $ all_arg $ json_arg $ broken_arg)

let runmod_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Textual MIR module (see 'lxfi_sim dump' for the syntax).")
  in
  let entry_arg =
    Arg.(
      value & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"FUNC"
          ~doc:"Function to invoke after module_init; mark it 'exports cli.entry' \
                in the source so the kernel may call it under LXFI.")
  in
  let args_arg =
    Arg.(
      value & opt (list int64) []
      & info [ "a"; "args" ] ~docv:"INTS" ~doc:"Comma-separated integer arguments.")
  in
  let run file entry args mode =
    Kernel_sim.Klog.quiet ();
    let config = Option.value ~default:Lxfi.Config.lxfi mode in
    let src = In_channel.with_open_text file In_channel.input_all in
    match Mir.Parser.parse_result src with
    | Error e ->
        Fmt.epr "%s: %s@." file e;
        exit 1
    | Ok prog -> (
        let sys = Ksys.boot config in
        if not (Annot.Registry.mem sys.Ksys.rt.Lxfi.Runtime.registry "cli.entry") then
          ignore
            (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:"cli.entry"
               ~params:[] ~annot_src:"");
        (* the fuzz slot types too, so corpus repros load standalone *)
        List.iter
          (fun (name, params, annot_src) ->
            if not (Annot.Registry.mem sys.Ksys.rt.Lxfi.Runtime.registry name) then
              ignore
                (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name ~params
                   ~annot_src))
          Fuzz.Gen.slot_defs;
        match Ksys.load sys prog with
        | exception Lxfi.Loader.Load_error e ->
            Fmt.epr "load error: %s@." e;
            exit 1
        | exception Lxfi.Rewriter.Rewrite_error e ->
            Fmt.epr "rewrite error: %s@." e;
            exit 1
        | mi, report ->
            Fmt.pr "loaded %s under %s: %a@." prog.Mir.Ast.pname
              (Lxfi.Config.mode_name config.Lxfi.Config.mode)
              Lxfi.Rewriter.pp_report report;
            let call what f a =
              match f () with
              | r -> Fmt.pr "%s returned %Ld@." what r
              | exception Lxfi.Violation.Violation v ->
                  Fmt.pr "%s: %a@." what Lxfi.Violation.pp v;
                  ignore a
              | exception Kernel_sim.Kstate.Oops m -> Fmt.pr "%s: kernel oops: %s@." what m
              | exception Kernel_sim.Kmem.Fault { addr; write } ->
                  Fmt.pr "%s: fault (%s 0x%x)@." what (if write then "write" else "read") addr
            in
            if Mir.Ast.find_func prog "module_init" <> None then
              call "module_init"
                (fun () -> Lxfi.Loader.init_call sys.Ksys.rt mi "module_init" [])
                ();
            (match entry with
            | None -> ()
            | Some e ->
                call e
                  (fun () -> Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi e args)
                  ());
            Fmt.pr "%a@." Lxfi.Stats.pp sys.Ksys.rt.Lxfi.Runtime.stats)
  in
  Cmd.v
    (Cmd.info "runmod" ~doc:"Load and run a textual MIR module under LXFI.")
    Term.(const run $ file_arg $ entry_arg $ args_arg $ mode_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "lxfi_sim" ~version:"1.0"
             ~doc:"LXFI (SOSP 2011) reproduction: SFI with API integrity and \
                   multi-principal kernel modules.")
          [
            exploit_cmd;
            netperf_cmd;
            micro_cmd;
            modules_cmd;
            annotations_cmd;
            state_cmd;
            dump_cmd;
            faultsim_cmd;
            lifecycle_cmd;
            fuzz_cmd;
            trace_cmd;
            runmod_cmd;
            check_cmd;
          ]))

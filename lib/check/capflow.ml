(** Capability-flow check: an intraprocedural dataflow over a module's
    MIR that relates what each kernel-callable entry point {e does}
    with what its slot-type annotation {e grants}.

    For every entry (a function bound to a slot type, mirroring the
    loader's annotation propagation of §4.2) the pass tracks which
    pointer values derive from the entry's annotated parameters —
    parameter-rooted pointer arithmetic keeps the root; anything
    loaded, returned from a call, or taken from a global is [Rother]
    (module-owned memory, covered by the section/stack WRITE grants).
    It reports:

    - ["uncovered-store"] / ["uncovered-indcall"] (error): a store or
      indirect call through a parameter-rooted pointer that no
      copy/transfer/check clause of the slot type covers — the runtime
      guard is guaranteed to fire on the first execution;
    - ["principal-held-store"] (info): the store is through the
      parameter that names the entry's instance principal; the module
      is relying on capabilities granted to that principal earlier in
      its lifetime (e.g. at [create]) rather than by this entry;
    - ["use-after-transfer"] (warning): a value is used after being
      passed to a kernel export whose annotation [pre(transfer)]s it —
      the caller provably lost the capability (the paper's §3.3 revoke
      semantics), so later stores through it will fault;
    - ["over-privilege"] (warning): the slot type grants WRITE on a
      parameter the entry never uses on any path — the §7 worry, a
      wider grant than the code needs;
    - ["param-arity"] (warning): entry and slot type disagree on
      parameter count, so positional annotation coverage is partial;
    - propagation errors the loader would also refuse (unknown slot
      type, conflicting annotations, unknown function in an ops
      table) as ["propagation"] errors.

    The analysis is intraprocedural by design: stores inside helper
    functions reached by direct call run under the same principal but
    are not traced through — DESIGN.md discusses the trade-off. *)

open Mir.Ast
module SMap = Map.Make (String)

type root = Rparam of int  (** derives from the entry's i-th parameter *)
           | Rother  (** module-owned or unknown — runtime's problem *)

type state = {
  roots : root SMap.t;
  xfer : string SMap.t;  (** var -> kexport whose pre(transfer) revoked it *)
}

(* --- slot-type coverage, positional --- *)

type cover = {
  slot : Annot.Registry.slot;
  write : bool array;  (** slot param i is covered by a WRITE-ish clause *)
  call : bool array;  (** ... by a CALL/REF clause *)
  principal : bool array;  (** ... named by the principal clause *)
  granted_write : bool array;  (** pre copy/transfer grants WRITE on it *)
}

let rec cexpr_mentions name = function
  | Annot.Ast.Cparam p -> p = name
  | Annot.Ast.Cint _ | Annot.Ast.Creturn | Annot.Ast.Csizeof _ -> false
  | Annot.Ast.Cneg e -> cexpr_mentions name e
  | Annot.Ast.Cbin (_, a, b) -> cexpr_mentions name a || cexpr_mentions name b

let rec leaf_caplist = function
  | Annot.Ast.Copy cl -> (`Copy, cl)
  | Annot.Ast.Transfer cl -> (`Transfer, cl)
  | Annot.Ast.Check cl -> (`Check, cl)
  | Annot.Ast.Cif (_, a) -> leaf_caplist a

(* Does the caplist cover [name] for the given access kind?  Iterators
   grant capabilities over the object graph reachable from their
   arguments, so an iterator mentioning the param covers both kinds. *)
let caplist_covers ~kind name = function
  | Annot.Ast.Inline (ct, p, s) -> (
      let in_exprs =
        cexpr_mentions name p
        || (match s with Some e -> cexpr_mentions name e | None -> false)
      in
      match (kind, ct) with
      | `Write, Annot.Ast.Write -> in_exprs
      | `Call, (Annot.Ast.Call | Annot.Ast.Ref _) -> in_exprs
      | _ -> false)
  | Annot.Ast.Iter (_, args) -> List.exists (cexpr_mentions name) args

let cover_of (slot : Annot.Registry.slot) : cover =
  let params = Array.of_list slot.Annot.Registry.sl_params in
  let n = Array.length params in
  let annot = slot.Annot.Registry.sl_annot in
  let actions = Annot.Ast.pre_actions annot @ Annot.Ast.post_actions annot in
  let caplists = List.map leaf_caplist actions in
  let covered kind i =
    List.exists (fun (_, cl) -> caplist_covers ~kind params.(i) cl) caplists
  in
  let principal_mentions i =
    match Annot.Ast.principal_of annot with
    | Some (Annot.Ast.Pexpr e) -> cexpr_mentions params.(i) e
    | _ -> false
  in
  let grants i =
    List.exists
      (fun a ->
        match leaf_caplist a with
        | (`Copy | `Transfer), Annot.Ast.Inline (Annot.Ast.Write, p, _) ->
            cexpr_mentions params.(i) p
        | (`Copy | `Transfer), Annot.Ast.Iter (_, args) ->
            List.exists (fun e -> e = Annot.Ast.Cparam params.(i)) args
        | _ -> false)
      (Annot.Ast.pre_actions annot)
  in
  {
    slot;
    write = Array.init n (covered `Write);
    call = Array.init n (covered `Call);
    principal = Array.init n principal_mentions;
    granted_write = Array.init n grants;
  }

(* --- kexport pre(transfer) positions, for use-after-transfer --- *)

let transferred_positions (k : Env.kexport_decl) : int list =
  let params = k.Env.kx_params in
  let index_of p =
    let rec go i = function
      | [] -> None
      | q :: _ when q = p -> Some i
      | _ :: r -> go (i + 1) r
    in
    go 0 params
  in
  Annot.Ast.pre_actions k.Env.kx_annot
  |> List.concat_map (fun a ->
         match a with
         | Annot.Ast.Transfer cl -> (
             (* only unconditional transfers provably revoke *)
             match cl with
             | Annot.Ast.Inline (_, Annot.Ast.Cparam p, _) ->
                 Option.to_list (index_of p)
             | Annot.Ast.Inline _ -> []
             | Annot.Ast.Iter (_, args) ->
                 List.filter_map
                   (function Annot.Ast.Cparam p -> index_of p | _ -> None)
                   args)
         | _ -> [])

(* --- the walker --- *)

type walk = {
  env : Env.t;
  cover : cover;
  fparams : string array;
  where : string;  (** "module/function" *)
  mutable acc : Finding.t list;
  mutable reported : (string * string) list;  (** (rule, key) dedup *)
}

let emit w ~rule sev fmt =
  Format.kasprintf
    (fun msg ->
      w.acc <-
        Finding.make ~rule ~location:w.where ~source:"check.capflow" sev "%s" msg
        :: w.acc)
    fmt

let once w ~rule key f =
  if not (List.mem (rule, key) w.reported) then begin
    w.reported <- (rule, key) :: w.reported;
    f ()
  end

let root_of st e =
  let rec go = function
    | Var x -> ( match SMap.find_opt x st.roots with Some r -> r | None -> Rother)
    | Binop ((Add | Sub), _, a, b) -> (
        match go a with Rparam i -> Rparam i | Rother -> go b)
    | _ -> Rother
  in
  go e

let slot_name w = w.cover.slot.Annot.Registry.sl_name

(* A store/indirect call lands on a pointer rooted in function param [i]:
   decide whether the slot type covers it. *)
let check_param_access w ~kind i =
  let sp = w.cover.slot.Annot.Registry.sl_params in
  let fpname = if i < Array.length w.fparams then w.fparams.(i) else "?" in
  let what, rule =
    match kind with
    | `Write -> ("store", "uncovered-store")
    | `Call -> ("indirect call", "uncovered-indcall")
  in
  if i >= List.length sp then
    once w ~rule (string_of_int i) (fun () ->
        emit w ~rule Diag.Error
          "%s through parameter %s, which has no corresponding slot-type \
           parameter (slot %s declares %d)"
          what fpname (slot_name w) (List.length sp))
  else
    let covered =
      match kind with `Write -> w.cover.write.(i) | `Call -> w.cover.call.(i)
    in
    if covered then ()
    else if w.cover.principal.(i) then
      once w ~rule:"principal-held-store" fpname (fun () ->
          emit w ~rule:"principal-held-store" Diag.Info
            "%s through principal-naming parameter %s (slot %s) relies on \
             capabilities the instance principal acquired outside this entry"
            what fpname (slot_name w))
    else
      once w ~rule fpname (fun () ->
          emit w ~rule Diag.Error
            "%s through parameter %s is covered by no copy/transfer/check \
             clause of slot %s — a %s violation is guaranteed at runtime"
            what fpname (slot_name w)
            (match kind with `Write -> "WRITE" | `Call -> "CALL"))

let rec check_expr w st e : state =
  match e with
  | Const _ | Glob _ | Funcaddr _ | Extaddr _ -> st
  | Var v ->
      (match SMap.find_opt v st.xfer with
      | Some kname ->
          once w ~rule:"use-after-transfer" (v ^ ":" ^ kname) (fun () ->
              emit w ~rule:"use-after-transfer" Diag.Warning
                "%s is used after pre(transfer) in the call to %s revoked its \
                 capabilities from this module"
                v kname)
      | None -> ());
      st
  | Load (_, a) -> check_expr w st a
  | Binop (_, _, a, b) -> check_expr w (check_expr w st a) b
  | Call (callee, args) -> (
      let st =
        match callee with
        | Indirect tgt ->
            let st = check_expr w st tgt in
            (match root_of st tgt with
            | Rparam i -> check_param_access w ~kind:`Call i
            | Rother -> ());
            st
        | Direct _ | Ext _ -> st
      in
      let st = List.fold_left (check_expr w) st args in
      match callee with
      | Ext name -> (
          match Env.find_kexport w.env name with
          | None -> st
          | Some k ->
              List.fold_left
                (fun st j ->
                  match List.nth_opt args j with
                  | Some (Var v) -> { st with xfer = SMap.add v name st.xfer }
                  | _ -> st)
                st (transferred_positions k))
      | Direct _ | Indirect _ -> st)

let join a b =
  {
    roots =
      SMap.merge
        (fun _ ra rb ->
          match (ra, rb) with
          | Some x, Some y when x = y -> Some x
          | None, None -> None
          | _ -> Some Rother)
        a.roots b.roots;
    xfer = SMap.union (fun _ x _ -> Some x) a.xfer b.xfer;
  }

let rec walk_stmt w st = function
  | Let (x, e) ->
      let st' = check_expr w st e in
      { roots = SMap.add x (root_of st' e) st'.roots; xfer = SMap.remove x st'.xfer }
  | Alloca (x, _) ->
      { roots = SMap.add x Rother st.roots; xfer = SMap.remove x st.xfer }
  | Store (_, addr, v) ->
      let st = check_expr w st addr in
      let st = check_expr w st v in
      (match root_of st addr with
      | Rparam i -> check_param_access w ~kind:`Write i
      | Rother -> ());
      st
  | If (c, t, f) ->
      let st = check_expr w st c in
      join (walk_stmts w st t) (walk_stmts w st f)
  | While (c, b) ->
      let st = check_expr w st c in
      join st (walk_stmts w st b)
  | Expr e | Return e -> check_expr w st e
  | Guard _ -> st

and walk_stmts w st stmts = List.fold_left (walk_stmt w) st stmts

let rec expr_vars acc = function
  | Const _ | Glob _ | Funcaddr _ | Extaddr _ -> acc
  | Var v -> v :: acc
  | Load (_, a) -> expr_vars acc a
  | Binop (_, _, a, b) -> expr_vars (expr_vars acc a) b
  | Call (c, args) ->
      let acc = match c with Indirect e -> expr_vars acc e | _ -> acc in
      List.fold_left expr_vars acc args

let rec stmt_vars acc = function
  | Let (_, e) | Expr e | Return e -> expr_vars acc e
  | Alloca _ -> acc
  | Store (_, a, v) -> expr_vars (expr_vars acc a) v
  | If (c, t, f) ->
      List.fold_left stmt_vars (List.fold_left stmt_vars (expr_vars acc c) t) f
  | While (c, b) -> List.fold_left stmt_vars (expr_vars acc c) b
  | Guard (Gwrite (_, e)) | Guard (Gindcall e) -> expr_vars acc e

(* --- one entry point --- *)

let check_entry env ~mname (fn : func) (slot : Annot.Registry.slot) : Finding.t list
    =
  let cover = cover_of slot in
  let fparams = Array.of_list fn.params in
  let w =
    {
      env;
      cover;
      fparams;
      where = mname ^ "/" ^ fn.fname;
      acc = [];
      reported = [];
    }
  in
  let n_slot = List.length slot.Annot.Registry.sl_params in
  if Array.length fparams <> n_slot then
    emit w ~rule:"param-arity" Diag.Warning
      "entry has %d parameters but slot %s declares %d — positional annotation \
       coverage is partial"
      (Array.length fparams) (slot_name w) n_slot;
  let init =
    {
      roots =
        Array.to_list fparams
        |> List.mapi (fun i p -> (p, Rparam i))
        |> List.to_seq |> SMap.of_seq;
      xfer = SMap.empty;
    }
  in
  ignore (walk_stmts w init fn.body);
  (* over-privilege: granted but never used on any path *)
  let used = List.fold_left stmt_vars [] fn.body in
  Array.iteri
    (fun i granted ->
      if granted && i < Array.length fparams && not (List.mem fparams.(i) used)
      then
        emit w ~rule:"over-privilege" Diag.Warning
          "slot %s grants WRITE on parameter %s, but this entry never uses it \
           on any path"
          (slot_name w) fparams.(i))
    cover.granted_write;
  List.rev w.acc

(* --- annotation propagation, mirroring Loader.load (§4.2) --- *)

let entries env (prog : prog) : (func * Annot.Registry.slot) list * Finding.t list =
  let findings = ref [] in
  let bad ~where fmt =
    Format.kasprintf
      (fun msg ->
        findings :=
          Finding.make ~rule:"propagation" ~location:where ~source:"check.capflow"
            Diag.Error "%s" msg
          :: !findings)
      fmt
  in
  let tbl : (string, Annot.Registry.slot) Hashtbl.t = Hashtbl.create 8 in
  let propagate ~where fname slot_name =
    match Annot.Registry.find_opt env.Env.registry slot_name with
    | None ->
        bad ~where "function %s bound to unknown slot type %s (load would fail)"
          fname slot_name
    | Some slot -> (
        match Hashtbl.find_opt tbl fname with
        | Some prev when prev.Annot.Registry.sl_name <> slot_name ->
            bad ~where
              "function %s receives conflicting annotations (%s vs %s; load \
               would fail)"
              fname prev.Annot.Registry.sl_name slot_name
        | _ -> Hashtbl.replace tbl fname slot)
  in
  List.iter
    (fun (f : func) ->
      match f.export with
      | Some sl -> propagate ~where:(prog.pname ^ "/" ^ f.fname) f.fname sl
      | None -> ())
    prog.funcs;
  List.iter
    (fun (g : glob) ->
      match g.gstruct with
      | None -> ()
      | Some sname ->
          let where = prog.pname ^ "/" ^ g.gname in
          List.iter
            (fun init ->
              match init with
              | Ifunc (off, f) -> (
                  if find_func prog f = None then
                    bad ~where "ops table references unknown function %s" f
                  else
                    match
                      Kernel_sim.Ktypes.funcptr_slot env.Env.types sname off
                    with
                    | Some slot_name -> propagate ~where f slot_name
                    | None ->
                        bad ~where
                          "function pointer %s stored at +%d of struct %s, \
                           which is not a declared slot (load would fail)"
                          f off sname)
              | Iword _ | Iext _ -> ())
            g.ginit)
    prog.globals;
  let bound =
    List.filter_map
      (fun (f : func) ->
        match Hashtbl.find_opt tbl f.fname with
        | Some slot -> Some (f, slot)
        | None -> None)
      prog.funcs
  in
  (bound, List.rev !findings)

(** [check_module env prog] — the capability-flow findings for one
    module: propagation errors plus the per-entry dataflow results. *)
let check_module env (prog : prog) : Finding.t list =
  let bound, pfindings = entries env prog in
  pfindings
  @ List.concat_map
      (fun (f, slot) -> check_entry env ~mname:prog.pname f slot)
      bound

(** Checker input environment.

    The static checker runs {e before} load, over exactly the
    information the loader itself consults: the slot-type registry, the
    kernel struct layouts, which capability iterators exist, and the
    annotated kernel exports.  It is deliberately decoupled from the
    LXFI runtime (no [Runtime.t] here) so the check layer sits below
    [lxfi] in the library stack; [Loader.check_env] builds one of these
    from a live runtime. *)

type kexport_decl = {
  kx_name : string;
  kx_params : string list;
  kx_annot : Annot.Ast.t;
}
(** What the checker needs to know about one annotated kernel export. *)

type t = {
  registry : Annot.Registry.t;  (** function-pointer slot types *)
  types : Kernel_sim.Ktypes.t;  (** kernel struct layouts *)
  iterator_exists : string -> bool;
      (** is this capability iterator registered? *)
  kexports : kexport_decl list;  (** annotated kernel exports *)
}

let make ~registry ~types ~iterator_exists ~kexports =
  { registry; types; iterator_exists; kexports }

let find_kexport t name =
  List.find_opt (fun k -> k.kx_name = name) t.kexports

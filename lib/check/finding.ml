(** A checker finding: a structured {!Diag.t} tagged with the lint or
    dataflow rule that produced it, so reports (and tests) can select
    findings by rule. *)

type t = { f_rule : string; f_diag : Diag.t }

let make ~rule ?principal ?location ~source severity fmt =
  Format.kasprintf
    (fun msg ->
      { f_rule = rule; f_diag = Diag.make ?principal ?location ~source severity msg })
    fmt

let rule f = f.f_rule
let severity f = f.f_diag.Diag.d_severity
let is_error f = Diag.is_error f.f_diag
let is_warning f = Diag.is_warning f.f_diag

let count_severity fs sev = List.length (List.filter (fun f -> severity f = sev) fs)
let errors fs = count_severity fs Diag.Error
let warnings fs = count_severity fs Diag.Warning

let pp ppf f = Fmt.pf ppf "%a [%s]" Diag.pp f.f_diag f.f_rule
let to_string f = Fmt.str "%a" pp f

(** Sort by severity (errors first), then location, then rule — the
    stable order of the CLI and JSON reports. *)
let sort fs =
  List.stable_sort
    (fun a b ->
      match Diag.severity_compare (severity a) (severity b) with
      | 0 -> (
          match compare a.f_diag.Diag.d_location b.f_diag.Diag.d_location with
          | 0 -> compare a.f_rule b.f_rule
          | c -> c)
      | c -> c)
    fs

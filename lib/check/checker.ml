(** The checker façade: run the annotation lint over every registered
    interface and the capability-flow pass over module MIR, and
    summarise the findings.

    This is the load-time verifier move of the SFI lineage (Wahbe et
    al.'s verifier, XFI's two-phase checker) applied to LXFI's trusted
    input: the annotations themselves.  See DESIGN.md, "Static
    checking". *)

type summary = {
  findings : Finding.t list;  (** sorted: errors first *)
  errors : int;
  warnings : int;
  infos : int;
}

let summarize findings =
  let findings = Finding.sort findings in
  {
    findings;
    errors = Finding.count_severity findings Diag.Error;
    warnings = Finding.count_severity findings Diag.Warning;
    infos = Finding.count_severity findings Diag.Info;
  }

(** Lint every slot type in the registry. *)
let check_registry (env : Env.t) : Finding.t list =
  List.concat_map (Lint.slot_findings env) (Annot.Registry.all env.Env.registry)

(** Lint every annotated kernel export. *)
let check_kexports (env : Env.t) : Finding.t list =
  env.Env.kexports
  |> List.sort (fun a b -> compare a.Env.kx_name b.Env.kx_name)
  |> List.concat_map (Lint.kexport_findings env)

(** The whole declared API surface: registry + kexports. *)
let check_interfaces env = check_registry env @ check_kexports env

(** One module's MIR against its propagated slot types, plus the
    syscall-flow extraction pass. *)
let check_module env prog =
  Capflow.check_module env prog @ Apiflow.check_module env prog

let ok summary = summary.errors = 0

let pp_summary ppf s =
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) s.findings;
  Fmt.pf ppf "%d error%s, %d warning%s, %d info@." s.errors
    (if s.errors = 1 then "" else "s")
    s.warnings
    (if s.warnings = 1 then "" else "s")
    s.infos

(** Annotation lint: static rules over a single annotation set.

    The paper's whole security argument rests on the hand-written
    interface annotations being right (§6; §7 lists a wrong annotation
    as the way a module's authority silently widens), yet annotations
    are only exercised at runtime — when a guard fires, or worse,
    doesn't.  These rules catch the mistakes that are decidable from
    the annotation text alone:

    - ["unknown-param"] (error): a [Cparam] name not in the declared
      parameter list — evaluation raises at every call;
    - ["return-in-pre"] (error): [return] referenced outside a post
      clause — same;
    - ["unknown-iterator"] (error): an [Iter] name with no registered
      capability iterator — same;
    - ["sizeof-unknown-struct"] (error): [sizeof(struct s)] for an
      unregistered struct — [Ktypes.sizeof] raises at evaluation;
    - ["write-size-defaulted"] (warning): a WRITE capability with no
      size expression silently defaults to 8 bytes, which is almost
      never the author's intent for a struct pointer;
    - ["unsat-guard"] (warning) / ["redundant-guard"] (info): an [if]
      guard whose condition constant-folds to false (the action is
      dead) or true (the guard is noise);
    - ["duplicate-clause"] / ["duplicate-guard"] (warning): the same
      clause registered twice, or the same condition repeated in a
      nested guard chain;
    - ["transfer-then-use"] (error/warning, kexports only): a
      [pre(transfer(...))] revokes the capability from the calling
      module, yet a later pre clause of the same annotation references
      the same capability — the ownership check on that later clause is
      then guaranteed (unconditional) or liable (conditional) to fail. *)

open Annot.Ast

type ctx = {
  env : Env.t;
  what : string;  (** location label, e.g. ["slot proto_ops.bind"] *)
  params : string list;
  kexport : bool;  (** module→kernel direction (callers lose transfers) *)
  mutable acc : Finding.t list;
}

let emit ctx ~rule sev fmt =
  Format.kasprintf
    (fun msg ->
      ctx.acc <-
        Finding.make ~rule ~location:ctx.what ~source:"check.lint" sev "%s" msg
        :: ctx.acc)
    fmt

let rec cexpr_check ctx ~allow_return = function
  | Cint _ -> ()
  | Cparam p ->
      if not (List.mem p ctx.params) then
        emit ctx ~rule:"unknown-param" Diag.Error
          "references unknown parameter %s (declared: %s)" p
          (match ctx.params with [] -> "none" | ps -> String.concat ", " ps)
  | Creturn ->
      if not allow_return then
        emit ctx ~rule:"return-in-pre" Diag.Error
          "references the return value outside a post clause"
  | Cneg e -> cexpr_check ctx ~allow_return e
  | Csizeof s ->
      if not (Kernel_sim.Ktypes.mem ctx.env.Env.types s) then
        emit ctx ~rule:"sizeof-unknown-struct" Diag.Error
          "sizeof(struct %s): struct is not registered, so evaluation raises at runtime"
          s
  | Cbin (_, a, b) ->
      cexpr_check ctx ~allow_return a;
      cexpr_check ctx ~allow_return b

let caplist_check ctx ~allow_return = function
  | Inline (ct, p, s) -> (
      cexpr_check ctx ~allow_return p;
      (match s with Some e -> cexpr_check ctx ~allow_return e | None -> ());
      match (ct, s) with
      | Write, None ->
          emit ctx ~rule:"write-size-defaulted" Diag.Warning
            "WRITE capability on %s has no size expression and silently defaults \
             to 8 bytes"
            (cexpr_to_string p)
      | _ -> ())
  | Iter (name, args) ->
      List.iter (cexpr_check ctx ~allow_return) args;
      if not (ctx.env.Env.iterator_exists name) then
        emit ctx ~rule:"unknown-iterator" Diag.Error
          "capability iterator %s is not registered, so evaluation raises at runtime"
          name

(* Constant folding over the annotation expression language: params and
   the return value are unknown; registered struct sizes are static. *)
let rec cfold types = function
  | Cint n -> Some n
  | Cparam _ | Creturn -> None
  | Cneg e -> Option.map Int64.neg (cfold types e)
  | Csizeof s ->
      if Kernel_sim.Ktypes.mem types s then
        Some (Int64.of_int (Kernel_sim.Ktypes.sizeof types s))
      else None
  | Cbin (op, a, b) -> (
      match (cfold types a, cfold types b) with
      | Some va, Some vb ->
          let bool_ x = if x then 1L else 0L in
          Some
            (match op with
            | Oeq -> bool_ (Int64.equal va vb)
            | One -> bool_ (not (Int64.equal va vb))
            | Olt -> bool_ (Int64.compare va vb < 0)
            | Ole -> bool_ (Int64.compare va vb <= 0)
            | Ogt -> bool_ (Int64.compare va vb > 0)
            | Oge -> bool_ (Int64.compare va vb >= 0)
            | Oadd -> Int64.add va vb
            | Osub -> Int64.sub va vb
            | Omul -> Int64.mul va vb
            | Oand -> bool_ (va <> 0L && vb <> 0L)
            | Oor -> bool_ (va <> 0L || vb <> 0L))
      | _ -> None)

let rec action_check ctx ~allow_return = function
  | Copy cl | Transfer cl | Check cl -> caplist_check ctx ~allow_return cl
  | Cif (c, a) ->
      cexpr_check ctx ~allow_return c;
      (match cfold ctx.env.Env.types c with
      | Some 0L ->
          emit ctx ~rule:"unsat-guard" Diag.Warning
            "if-guard (%s) is always false; the guarded action is dead"
            (cexpr_to_string c)
      | Some _ ->
          emit ctx ~rule:"redundant-guard" Diag.Info
            "if-guard (%s) is always true; the guard is redundant"
            (cexpr_to_string c)
      | None -> ());
      action_check ctx ~allow_return a

(* The same condition repeated along one nested if-guard chain. *)
let rec nested_guard_dup ctx seen = function
  | Cif (c, a) ->
      let s = cexpr_to_string c in
      if List.mem s seen then
        emit ctx ~rule:"duplicate-guard" Diag.Warning
          "condition (%s) repeated in nested if-guards" s;
      nested_guard_dup ctx (s :: seen) a
  | Copy _ | Transfer _ | Check _ -> ()

let dup_clause_check ctx (t : t) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun cl ->
      let s = clause_to_string cl in
      if Hashtbl.mem seen s then
        emit ctx ~rule:"duplicate-clause" Diag.Warning "duplicate clause %s" s
      else Hashtbl.add seen s ())
    t

(* --- transfer-then-use (kexport / module→kernel direction) ---

   A pre(transfer(cap)) means the wrapper checks the caller owns [cap]
   and then revokes it from everyone.  Any later pre clause of the same
   annotation that references the same capability expression performs
   an ownership check against a capability the caller has provably just
   lost. *)

let caplist_keys = function
  | Inline (_, p, _) -> [ cexpr_to_string p ]
  | Iter (_, args) -> List.map cexpr_to_string args

(* The leaf caplist of an action, with whether any guard wraps it. *)
let rec leaf_of = function
  | Copy cl -> (`Copy, cl, false)
  | Transfer cl -> (`Transfer, cl, false)
  | Check cl -> (`Check, cl, false)
  | Cif (_, a) ->
      let k, cl, _ = leaf_of a in
      (k, cl, true)

let transfer_then_use ctx (t : t) =
  let transferred = Hashtbl.create 4 (* key -> conditional? *) in
  List.iter
    (fun a ->
      let _, cl, conditional = leaf_of a in
      let keys = caplist_keys cl in
      List.iter
        (fun k ->
          match Hashtbl.find_opt transferred k with
          | None -> ()
          | Some was_conditional ->
              let sev =
                if was_conditional || conditional then Diag.Warning else Diag.Error
              in
              emit ctx ~rule:"transfer-then-use" sev
                "pre clause references %s after an earlier pre(transfer) revoked \
                 it from the caller — the ownership check cannot succeed"
                k)
        keys;
      match leaf_of a with
      | `Transfer, cl, conditional ->
          List.iter
            (fun k ->
              match Hashtbl.find_opt transferred k with
              | Some false -> ()  (* already unconditionally transferred *)
              | _ -> Hashtbl.replace transferred k conditional)
            (caplist_keys cl)
      | (`Copy | `Check), _, _ -> ())
    (pre_actions t)

let annot_findings env ~what ~kexport ~params (t : t) : Finding.t list =
  let ctx = { env; what; params; kexport; acc = [] } in
  List.iter
    (fun cl ->
      match cl with
      | Pre a ->
          action_check ctx ~allow_return:false a;
          nested_guard_dup ctx [] a
      | Post a ->
          action_check ctx ~allow_return:true a;
          nested_guard_dup ctx [] a
      | Principal (Pexpr e) -> cexpr_check ctx ~allow_return:false e
      | Principal (Pglobal | Pshared) -> ())
    t;
  dup_clause_check ctx t;
  if kexport then transfer_then_use ctx t;
  List.rev ctx.acc

let slot_findings env (s : Annot.Registry.slot) =
  annot_findings env
    ~what:("slot " ^ s.Annot.Registry.sl_name)
    ~kexport:false ~params:s.Annot.Registry.sl_params s.Annot.Registry.sl_annot

let kexport_findings env (k : Env.kexport_decl) =
  annot_findings env
    ~what:("kexport " ^ k.Env.kx_name)
    ~kexport:true ~params:k.Env.kx_params k.Env.kx_annot

(** Syscall-flow extraction: a coarse per-module kernel-API flow graph
    computed from MIR, in the spirit of SFP/SFIP's syscall-flow
    integrity (see PAPERS.md).

    Nodes are the module's annotated kernel-export call sites (by
    export name); edges are the {e may-follow} relation: [(a, b)] is an
    edge when some execution of the module can call [b] with [a] as the
    immediately preceding kernel-API call.  The relation is computed
    intraprocedurally per function from the MIR control structure
    (sequence / if / while, with the interpreter's strict left-to-right
    evaluation order), direct calls inline the callee's summary (to a
    fixpoint, so recursion converges), and indirect calls use the union
    of every address-taken function's summary.  Because modules are
    re-entered by the kernel many times, every function is treated as a
    potential entry point and the graph additionally contains the
    {e boundary} edges [lasts × firsts]: any call that can end one
    activation may be followed by any call that can begin another.

    The analysis over-approximates by construction (inlined summaries
    are made {e transparent} — allowed to contribute no call — and
    [Return] is tracked as a separate exit path), so a faithfully
    executed module can never leave its own extracted graph; only a
    mutated or corrupted module can.  That is the soundness contract
    the runtime automaton ([Runtime.call_kexport]) and the fuzz oracle
    rely on. *)

open Mir.Ast
module SSet = Set.Make (String)

module PSet = Set.Make (struct
  type t = string * string

  let compare = compare
end)

(** May-follow summary of a program fragment: the kernel-API calls that
    can come first / last, the within-fragment may-follow pairs, and
    whether the fragment can execute without any kernel-API call. *)
type summary = { first : SSet.t; last : SSet.t; pairs : PSet.t; empty : bool }

let empty_sum =
  { first = SSet.empty; last = SSet.empty; pairs = PSet.empty; empty = true }

let sum_equal a b =
  SSet.equal a.first b.first && SSet.equal a.last b.last
  && PSet.equal a.pairs b.pairs && a.empty = b.empty

let node k =
  { first = SSet.singleton k; last = SSet.singleton k; pairs = PSet.empty; empty = false }

let cross xs ys acc =
  SSet.fold (fun x acc -> SSet.fold (fun y acc -> PSet.add (x, y) acc) ys acc) xs acc

let seq a b =
  {
    first = (if a.empty then SSet.union a.first b.first else a.first);
    last = (if b.empty then SSet.union a.last b.last else b.last);
    pairs = cross a.last b.first (PSet.union a.pairs b.pairs);
    empty = a.empty && b.empty;
  }

let alt a b =
  {
    first = SSet.union a.first b.first;
    last = SSet.union a.last b.last;
    pairs = PSet.union a.pairs b.pairs;
    empty = a.empty || b.empty;
  }

let star a = { a with pairs = cross a.last a.first a.pairs; empty = true }

(* A called function's contribution at a call site: its summary made
   transparent (able to contribute no call).  Fixing [empty = true] at
   call sites keeps every transfer function monotone in the set
   components, so the fixpoint below terminates, at the cost of a
   strictly larger (= safer) graph. *)
let transparent a = { a with empty = true }

(** Per-statement-list flow: executions that fall through vs. those
    that left via [Return].  [None] means "no execution takes this
    path" — distinct from [Some empty_sum], "a path with no calls". *)
type flow = { fall : summary option; exits : summary option }

let opt_alt a b =
  match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (alt a b)

let opt_seq_after s = Option.map (fun x -> seq s x)

type ctx = {
  is_kexport : string -> bool;
  fsum : string -> summary;  (** current fixpoint summary of an own function *)
  isum : unit -> summary;  (** indirect-call summary (address-taken union) *)
}

let rec sum_expr ctx (e : expr) : summary =
  match e with
  | Const _ | Var _ | Glob _ | Funcaddr _ | Extaddr _ -> empty_sum
  | Load (_, a) -> sum_expr ctx a
  | Binop (_, _, a, b) -> seq (sum_expr ctx a) (sum_expr ctx b)
  | Call (callee, args) -> (
      let args_sum =
        List.fold_left (fun acc a -> seq acc (sum_expr ctx a)) empty_sum args
      in
      match callee with
      | Ext name ->
          if ctx.is_kexport name then seq args_sum (node name) else args_sum
      | Direct f -> seq args_sum (transparent (ctx.fsum f))
      | Indirect tgt ->
          seq (sum_expr ctx tgt) (seq args_sum (transparent (ctx.isum ()))))

let rec flow_stmt ctx (s : stmt) : flow =
  match s with
  | Let (_, e) | Expr e -> { fall = Some (sum_expr ctx e); exits = None }
  | Return e -> { fall = None; exits = Some (sum_expr ctx e) }
  | Alloca _ | Guard _ -> { fall = Some empty_sum; exits = None }
  | Store (_, a, v) ->
      { fall = Some (seq (sum_expr ctx a) (sum_expr ctx v)); exits = None }
  | If (c, t, f) ->
      let sc = sum_expr ctx c in
      let ft = flow_stmts ctx t and ff = flow_stmts ctx f in
      {
        fall = opt_seq_after sc (opt_alt ft.fall ff.fall);
        exits = opt_seq_after sc (opt_alt ft.exits ff.exits);
      }
  | While (c, b) ->
      let sc = sum_expr ctx c in
      let fb = flow_stmts ctx b in
      (* Fall-through runs [c (b c)*]; an exit runs that prefix, then
         one body attempt that returns. *)
      let prefix =
        match fb.fall with
        | Some bf -> seq sc (star (seq bf sc))
        | None -> sc
      in
      { fall = Some prefix; exits = opt_seq_after prefix fb.exits }

and flow_stmts ctx (ss : stmt list) : flow =
  List.fold_left
    (fun acc s ->
      match acc.fall with
      | None -> acc (* unreachable: every earlier path returned *)
      | Some before ->
          let f = flow_stmt ctx s in
          {
            fall = opt_seq_after before f.fall;
            exits = opt_alt acc.exits (opt_seq_after before f.exits);
          })
    { fall = Some empty_sum; exits = None }
    ss

(** Entry-to-completion summary of one function body. *)
let sum_func ctx (fn : func) : summary =
  let f = flow_stmts ctx fn.body in
  match opt_alt f.fall f.exits with Some s -> s | None -> empty_sum

(* --- address-taken sets, for indirect-call summaries --- *)

let rec expr_taken (own, kex) (e : expr) =
  match e with
  | Const _ | Var _ | Glob _ -> (own, kex)
  | Funcaddr f -> (SSet.add f own, kex)
  | Extaddr x -> (own, SSet.add x kex)
  | Load (_, a) -> expr_taken (own, kex) a
  | Binop (_, _, a, b) -> expr_taken (expr_taken (own, kex) a) b
  | Call (c, args) ->
      let acc =
        match c with Indirect t -> expr_taken (own, kex) t | _ -> (own, kex)
      in
      List.fold_left expr_taken acc args

let rec stmt_taken acc = function
  | Let (_, e) | Expr e | Return e -> expr_taken acc e
  | Alloca _ | Guard _ -> acc
  | Store (_, a, v) -> expr_taken (expr_taken acc a) v
  | If (c, t, f) ->
      List.fold_left stmt_taken
        (List.fold_left stmt_taken (expr_taken acc c) t)
        f
  | While (c, b) -> List.fold_left stmt_taken (expr_taken acc c) b

let address_taken (prog : prog) : SSet.t * SSet.t =
  let acc =
    List.fold_left
      (fun acc (f : func) -> List.fold_left stmt_taken acc f.body)
      (SSet.empty, SSet.empty) prog.funcs
  in
  List.fold_left
    (fun acc (g : glob) ->
      List.fold_left
        (fun (own, kex) init ->
          match init with
          | Ifunc (_, f) -> (SSet.add f own, kex)
          | Iext (_, x) -> (own, SSet.add x kex)
          | Iword _ -> (own, kex))
        acc g.ginit)
    acc prog.globals

(* --- syntactic kexport call sites (graph node set) --- *)

let rec expr_sites is_kexport acc = function
  | Const _ | Var _ | Glob _ | Funcaddr _ | Extaddr _ -> acc
  | Load (_, a) -> expr_sites is_kexport acc a
  | Binop (_, _, a, b) -> expr_sites is_kexport (expr_sites is_kexport acc a) b
  | Call (c, args) ->
      let acc =
        match c with
        | Ext name when is_kexport name -> SSet.add name acc
        | Indirect t -> expr_sites is_kexport acc t
        | _ -> acc
      in
      List.fold_left (expr_sites is_kexport) acc args

let rec stmt_sites is_kexport acc = function
  | Let (_, e) | Expr e | Return e -> expr_sites is_kexport acc e
  | Alloca _ | Guard _ -> acc
  | Store (_, a, v) ->
      expr_sites is_kexport (expr_sites is_kexport acc a) v
  | If (c, t, f) ->
      List.fold_left (stmt_sites is_kexport)
        (List.fold_left (stmt_sites is_kexport)
           (expr_sites is_kexport acc c)
           t)
        f
  | While (c, b) ->
      List.fold_left (stmt_sites is_kexport) (expr_sites is_kexport acc c) b

(* --- the graph --- *)

type graph = {
  g_module : string;
  g_nodes : string list;  (** kexports the module can call, sorted *)
  g_start : string list;  (** calls that may begin an activation, sorted *)
  g_edges : (string * string) list;  (** sorted may-follow pairs *)
}

(** [permits g ~pos k] — may the module call kexport [k] from automaton
    position [pos] ([None] = start)? *)
let permits g ~pos k =
  match pos with
  | None -> List.mem k g.g_start
  | Some p -> List.mem (p, k) g.g_edges

let has_node g k = List.mem k g.g_nodes

(** [extract env prog] — the flow graph of [prog], with kexports
    identified through [env].  Deterministic: pure set computations,
    rendered as sorted lists. *)
let extract (env : Env.t) (prog : prog) : graph =
  let is_kexport name = Env.find_kexport env name <> None in
  let tbl : (string, summary) Hashtbl.t = Hashtbl.create 16 in
  let fsum f =
    match Hashtbl.find_opt tbl f with Some s -> s | None -> empty_sum
  in
  let own_taken, kex_taken = address_taken prog in
  let isum () =
    let base =
      SSet.fold (fun f acc -> alt acc (fsum f)) own_taken empty_sum
    in
    SSet.fold
      (fun x acc -> if is_kexport x then alt acc (node x) else acc)
      kex_taken base
  in
  let ctx = { is_kexport; fsum; isum } in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fn : func) ->
        let s = sum_func ctx fn in
        if not (sum_equal s (fsum fn.fname)) then begin
          Hashtbl.replace tbl fn.fname s;
          changed := true
        end)
      prog.funcs
  done;
  (* Every function is a potential kernel entry. *)
  let firsts, lasts, pairs =
    List.fold_left
      (fun (fs, ls, ps) (fn : func) ->
        let s = fsum fn.fname in
        (SSet.union fs s.first, SSet.union ls s.last, PSet.union ps s.pairs))
      (SSet.empty, SSet.empty, PSet.empty)
      prog.funcs
  in
  let edges = cross lasts firsts pairs in
  let nodes =
    List.fold_left
      (fun acc (fn : func) ->
        List.fold_left (stmt_sites is_kexport) acc fn.body)
      SSet.empty prog.funcs
  in
  {
    g_module = prog.pname;
    g_nodes = SSet.elements nodes;
    g_start = SSet.elements firsts;
    g_edges = PSet.elements edges;
  }

(** Byte-stable rendering, one line per fact. *)
let render_lines (g : graph) : string list =
  Printf.sprintf "flow module %s" g.g_module
  :: List.map (Printf.sprintf "flow node %s") g.g_nodes
  @ List.map (Printf.sprintf "flow start %s") g.g_start
  @ List.map (fun (a, b) -> Printf.sprintf "flow edge %s -> %s" a b) g.g_edges

let render (g : graph) : string = String.concat "\n" (render_lines g) ^ "\n"

(* --- checker facade integration --- *)

(** Direct calls to functions the program does not define: the loader
    would build a context whose execution oopses, and the flow summary
    for the callee is vacuous — a genuine extraction failure. *)
let rec expr_undef prog acc = function
  | Const _ | Var _ | Glob _ | Funcaddr _ | Extaddr _ -> acc
  | Load (_, a) -> expr_undef prog acc a
  | Binop (_, _, a, b) -> expr_undef prog (expr_undef prog acc a) b
  | Call (c, args) ->
      let acc =
        match c with
        | Direct f when find_func prog f = None -> SSet.add f acc
        | Indirect t -> expr_undef prog acc t
        | _ -> acc
      in
      List.fold_left (expr_undef prog) acc args

let rec stmt_undef prog acc = function
  | Let (_, e) | Expr e | Return e -> expr_undef prog acc e
  | Alloca _ | Guard _ -> acc
  | Store (_, a, v) -> expr_undef prog (expr_undef prog acc a) v
  | If (c, t, f) ->
      List.fold_left (stmt_undef prog)
        (List.fold_left (stmt_undef prog) (expr_undef prog acc c) t)
        f
  | While (c, b) ->
      List.fold_left (stmt_undef prog) (expr_undef prog acc c) b

(** [check_module env prog] — flow-graph findings for one module: an
    error per direct call to an undefined function (extraction cannot
    summarise the callee), and one info finding stating the extracted
    graph's size, so [lxfi_sim check] reports surface the pass ran. *)
let check_module (env : Env.t) (prog : prog) : Finding.t list =
  let undef =
    List.fold_left
      (fun acc (fn : func) -> List.fold_left (stmt_undef prog) acc fn.body)
      SSet.empty prog.funcs
  in
  let errors =
    List.map
      (fun f ->
        Finding.make ~rule:"flow-extraction" ~location:prog.pname
          ~source:"check.apiflow" Diag.Error
          "direct call to undefined function %s: no flow summary for the \
           callee"
          f)
      (SSet.elements undef)
  in
  let g = extract env prog in
  let info =
    (* Modules that call no kernel export have a vacuous graph; stay
       silent so kexport-free fixtures keep checking finding-free. *)
    if g.g_nodes = [] then []
    else
      [
        Finding.make ~rule:"flow-graph" ~location:prog.pname
          ~source:"check.apiflow" Diag.Info
          "flow graph: %d kexport nodes, %d start, %d may-follow edges"
          (List.length g.g_nodes) (List.length g.g_start)
          (List.length g.g_edges);
      ]
  in
  errors @ info

(** Structured diagnostics shared by the static checker, the runtime,
    and the containment machinery.

    Before this module existed the simulator had three ad-hoc
    diagnostic channels: [Klog] formatted strings, [Violation.info]
    records, and [Runtime.quarantine_log] [(who, reason)] string pairs.
    A [Diag.t] carries the same information in one shape — severity,
    source subsystem, the principal involved (if any), a source
    location, and a human-readable message — so the CLI, the JSON
    reports, and the logs all render the same record instead of three
    different ones. *)

type severity = Error | Warning | Info | Debug

type t = {
  d_severity : severity;
  d_source : string;
      (** emitting subsystem, dotted: ["check.lint"], ["check.capflow"],
          ["runtime.violation"], ["runtime.quarantine"], ... *)
  d_principal : string option;  (** principal involved, if any *)
  d_location : string option;
      (** where: ["slot proto_ops.bind"], ["rds/rds_sendmsg"], ... *)
  d_message : string;
}

let make ?principal ?location ~source severity message =
  {
    d_severity = severity;
    d_source = source;
    d_principal = principal;
    d_location = location;
    d_message = message;
  }

let makef ?principal ?location ~source severity fmt =
  Format.kasprintf (make ?principal ?location ~source severity) fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"
  | Debug -> "debug"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

(* Error < Warning < Info < Debug in declaration order, so the
   natural polymorphic compare ranks errors most severe. *)
let severity_compare (a : severity) (b : severity) = compare a b
let is_error d = d.d_severity = Error
let is_warning d = d.d_severity = Warning

let count_errors ds = List.length (List.filter is_error ds)

let pp ppf d =
  Fmt.pf ppf "%s[%s]%a%a: %s" (severity_name d.d_severity) d.d_source
    (Fmt.option (fun ppf l -> Fmt.pf ppf " %s" l))
    d.d_location
    (Fmt.option (fun ppf p -> Fmt.pf ppf " (principal %s)" p))
    d.d_principal d.d_message

let to_string d = Fmt.str "%a" pp d

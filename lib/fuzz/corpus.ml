type expect = Eviolation of Lxfi.Violation.kind | Eclean

type spec = {
  sp_drive : Mutate.drive option;
  sp_inputs : int64 list;
  sp_expect : expect;
}

let default_inputs = [ 0L; 5L; 123456789L ]

let arg_token = function
  | Mutate.Acanary -> "@canary"
  | Mutate.Akbuf -> "@kbuf"
  | Mutate.Ainput -> "@in"

let arg_of_token = function
  | "@canary" -> Some Mutate.Acanary
  | "@kbuf" -> Some Mutate.Akbuf
  | "@in" -> Some Mutate.Ainput
  | _ -> None

let drive_line = function
  | Mutate.Dinvoke (f, args) ->
      "drive: invoke " ^ String.concat " " (f :: List.map arg_token args)
  | Mutate.Dcorrupt_kcall (f, args) ->
      "drive: invoke+kcall " ^ String.concat " " (f :: List.map arg_token args)
  | Mutate.Dupgrade ((f1, a1), (f2, a2)) ->
      "drive: invoke+upgrade+invoke "
      ^ String.concat " "
          ((f1 :: List.map arg_token a1) @ (f2 :: List.map arg_token a2))
  | Mutate.Dflow (f, args) ->
      "drive: invoke+flowpolicy " ^ String.concat " " (f :: List.map arg_token args)

let header lines =
  "/* fuzz corpus\n"
  ^ String.concat "" (List.map (fun l -> " * " ^ l ^ "\n") lines)
  ^ " */\n"

let render_mutant ~comment ~expect drive prog =
  header
    [
      comment;
      drive_line drive;
      "expect: violation " ^ Lxfi.Violation.kind_name expect;
    ]
  ^ Mir.Printer.to_string prog

let render_clean ~comment ~inputs prog =
  header
    [
      comment;
      "inputs: " ^ String.concat "," (List.map Int64.to_string inputs);
      "expect: clean";
    ]
  ^ Mir.Printer.to_string prog

(* ---- parsing ---- *)

let strip_comment_prefix line =
  let line = String.trim line in
  if String.length line >= 2 && String.sub line 0 2 = "* " then
    String.sub line 2 (String.length line - 2)
  else line

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_spec src =
  let lines = String.split_on_char '\n' src |> List.map strip_comment_prefix in
  let directive prefix =
    List.find_map
      (fun l ->
        let pl = String.length prefix in
        if String.length l > pl && String.sub l 0 pl = prefix then
          Some (String.trim (String.sub l pl (String.length l - pl)))
        else None)
      lines
  in
  let parse_args toks =
    List.fold_left
      (fun acc t ->
        match (acc, arg_of_token t) with
        | Ok args, Some a -> Ok (args @ [ a ])
        | Ok _, None -> Error (Printf.sprintf "bad drive argument %S" t)
        | err, _ -> err)
      (Ok []) toks
  in
  let drive =
    match directive "drive:" with
    | None -> Ok None
    | Some rest -> (
        match words rest with
        | "invoke" :: f :: toks ->
            Result.map (fun args -> Some (Mutate.Dinvoke (f, args))) (parse_args toks)
        | "invoke+kcall" :: f :: toks ->
            Result.map (fun args -> Some (Mutate.Dcorrupt_kcall (f, args))) (parse_args toks)
        | "invoke+flowpolicy" :: f :: toks ->
            (* the replayed policy is re-derived deterministically: the
               graph of [Mutate.benign_of] on the stored program *)
            Result.map (fun args -> Some (Mutate.Dflow (f, args))) (parse_args toks)
        | "invoke+upgrade+invoke" :: f1 :: toks -> (
            (* leading @-tokens belong to the first call; the next bare
               word names the post-upgrade entry *)
            let rec split acc = function
              | t :: rest when arg_of_token t <> None ->
                  split (acc @ [ Option.get (arg_of_token t) ]) rest
              | rest -> (acc, rest)
            in
            let a1, rest = split [] toks in
            match rest with
            | f2 :: toks2 ->
                Result.map
                  (fun a2 -> Some (Mutate.Dupgrade ((f1, a1), (f2, a2))))
                  (parse_args toks2)
            | [] -> Error "invoke+upgrade+invoke needs a post-upgrade entry name")
        | _ -> Error (Printf.sprintf "bad drive directive %S" rest))
  in
  let inputs =
    match directive "inputs:" with
    | None -> Ok default_inputs
    | Some rest -> (
        let toks = String.split_on_char ',' rest |> List.map String.trim in
        try Ok (List.map Int64.of_string toks)
        with _ -> Error (Printf.sprintf "bad inputs directive %S" rest))
  in
  let expect =
    match directive "expect:" with
    | None -> Error "missing expect: directive"
    | Some rest -> (
        match words rest with
        | [ "clean" ] -> Ok Eclean
        | [ "violation"; kname ] -> (
            match Lxfi.Violation.kind_of_name kname with
            | Some k -> Ok (Eviolation k)
            | None -> Error (Printf.sprintf "unknown violation kind %S" kname))
        | _ -> Error (Printf.sprintf "bad expect directive %S" rest))
  in
  match (drive, inputs, expect) with
  | Ok d, Ok i, Ok e -> Ok { sp_drive = d; sp_inputs = i; sp_expect = e }
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> Error m

let replay ~src =
  match parse_spec src with
  | Error m -> Error ("directives: " ^ m)
  | Ok spec -> (
      match Mir.Parser.parse_result src with
      | Error m -> Error ("parse: " ^ m)
      | Ok prog -> (
          match spec.sp_expect with
          | Eclean -> (
              match
                Harness.clean_failure ~trace:true
                  { Gen.c_prog = prog; c_inputs = spec.sp_inputs }
              with
              | None -> Ok ()
              | Some m -> Error m)
          | Eviolation kind -> (
              match spec.sp_drive with
              | None -> Error "expect: violation requires a drive: directive"
              | Some drive ->
                  Harness.run_violation_repro prog drive ~inputs:spec.sp_inputs ~expect:kind)))

(** Replayable counterexample corpus: a repro is a printable MIR module
    prefixed by a directive comment saying how to drive it and what
    must happen.  Files parse as ordinary MIR (the directives live in a
    [/* ... */] comment), so [lxfi_sim runmod] can load them too.

    Directives, one per line inside the header comment:
    - [drive: invoke FUNC ARG*] — invoke one entry
      ([ARG] is [@canary], [@kbuf] or [@in]);
    - [drive: invoke+kcall FUNC ARG*] — invoke, then kernel-call
      through the module's [kslot];
    - [drive: invoke+flowpolicy FUNC ARG*] — register the flow graph
      of [Mutate.benign_of] the module as its enforced policy, load,
      then invoke (the replayed policy is re-derived from the stored
      program, so replay stays deterministic);
    - [expect: violation KIND] — the drive must raise exactly this
      violation class with the canary intact;
    - [expect: clean] — the full clean-oracle battery must pass;
    - [inputs: N,N,...] — inputs for the clean drive (optional). *)

type expect = Eviolation of Lxfi.Violation.kind | Eclean

type spec = {
  sp_drive : Mutate.drive option;  (** required for [Eviolation] *)
  sp_inputs : int64 list;
  sp_expect : expect;
}

val parse_spec : string -> (spec, string) result
(** Extract the directives from a repro's source text. *)

val render_mutant :
  comment:string -> expect:Lxfi.Violation.kind -> Mutate.drive -> Mir.Ast.prog -> string
(** Repro text for a detected-violation case ([comment] names seed /
    case / class for humans). *)

val render_clean : comment:string -> inputs:int64 list -> Mir.Ast.prog -> string

val replay : src:string -> (unit, string) result
(** Parse and re-run a repro, checking its [expect:] directive. *)

(** Well-behaved module generator.  Design rules that keep a generated
    module enforcement-invisible (oracle 1) by construction:

    - every store lands in the module's own arena, its own vtable /
      fp-slot globals, a kmalloc'd object it still owns, or the first
      {!touch_grant} bytes of the buffer its [touch] annotation grants;
    - only buffer {e contents} are folded into results and the arena,
      never raw pointers (heap addresses are not guaranteed equal
      across enforcement modes);
    - loops are bounded and nesting is capped, so the worst clean entry
      stays far under the harness watchdog budget;
    - locked regions never nest (the simulated spinlock oopses on
      recursion);
    - indirect calls only ever go through the module's own vtable,
      which only ever holds the module's own callbacks.  The separate
      [kslot] global exists purely as a kernel-visible function-pointer
      slot: clean code never calls through it, so mutations can corrupt
      it without perturbing the clean drive. *)

open Mir.Builder

type rand = int -> int

let arena_size = 256
let touch_grant = 64
let kbuf_size = 64

let slot_defs =
  [
    ("fuzz.entry", [ "n" ], "");
    ("fuzz.touch", [ "buf"; "n" ], Printf.sprintf "pre(copy(write, buf, %d))" touch_grant);
    ("fuzz.peer", [ "who"; "n" ], "principal(who)");
    ("fuzz.cb", [ "n" ], "");
    ("fuzz.noop", [ "p"; "n" ], "");
  ]

let imports = [ "kmalloc"; "kfree"; "spin_lock_init"; "spin_lock"; "spin_unlock" ]

type case = { c_prog : Mir.Ast.prog; c_inputs : int64 list }

(* 8-aligned offset strictly inside the arena *)
let gen_offset rand = 8 * rand (arena_size / 8)

(* Sequencing through [rand] is side-effectful, so statement counts use
   explicit recursion: no reliance on library evaluation order. *)
let rec rep k f = if k <= 0 then [] else f () @ rep (k - 1) f

let rec gen_pure rand n =
  let leaf () =
    match rand 5 with
    | 0 -> ii (rand 201 - 100)
    | 1 -> load64 (glob "arena" +: ii (gen_offset rand))
    | 2 -> v "a"
    | 3 -> v "b"
    | _ ->
        if rand 2 = 0 then load64 (glob "ro" +: ii (8 * rand 2))
        else load64 (glob "seeded" +: ii (8 * rand 4))
  in
  if n <= 1 then leaf ()
  else
    match rand 6 with
    | 0 | 1 -> leaf ()
    | 2 | 3 | 4 ->
        let op = List.nth Mir.Ast.[ Add; Sub; Mul; Band; Bor; Bxor ] (rand 6) in
        bin op Mir.Ast.W64 (gen_pure rand (n / 2)) (gen_pure rand (n / 2))
    | _ ->
        let op = List.nth Mir.Ast.[ Add; Mul ] (rand 2) in
        bin op Mir.Ast.W32 (gen_pure rand (n / 2)) (gen_pure rand (n / 2))

let store_arena rand = store64 (glob "arena" +: ii (gen_offset rand)) (gen_pure rand 6)

let rec gen_stmts rand ~depth n : Mir.Ast.stmt list =
  let base () =
    match rand 9 with
    | 0 | 1 -> [ store_arena rand ]
    | 2 -> [ let_ "a" (gen_pure rand 6) ]
    | 3 -> [ let_ "b" (gen_pure rand 6) ]
    | 4 -> [ let_ "a" (call "helper" [ gen_pure rand 4 ]) ]
    | 5 ->
        (* indirect call through the module's own vtable *)
        [ let_ "b" (call_ind (load64 (glob "vtbl" +: ii (8 * rand 2))) [ gen_pure rand 3 ]) ]
    | 6 ->
        (* function-pointer rewrite, staying within own callbacks *)
        let f = if rand 2 = 0 then "cb0" else "cb1" in
        [ store64 (glob "vtbl" +: ii (8 * rand 2)) (fn f) ]
    | 7 ->
        (* kernel-heap round trip: kmalloc / store / read back / kfree;
           only the contents reach the arena, never the pointer *)
        let sz = 16 + (8 * rand 7) in
        let off = gen_offset rand in
        [
          let_ "p" (call_ext "kmalloc" [ ii sz ]);
          if_
            (v "p" <>: ii 0)
            [
              store64 (v "p") (gen_pure rand 4);
              store64 (glob "arena" +: ii off) (load64 (v "p"));
              expr (call_ext "kfree" [ v "p" ]);
            ]
            [];
        ]
    | _ ->
        (* non-nesting locked region *)
        [
          expr (call_ext "spin_lock" [ glob "lock" ]);
          store_arena rand;
          expr (call_ext "spin_unlock" [ glob "lock" ]);
        ]
  in
  if n <= 1 || depth >= 2 then base ()
  else
    match rand 8 with
    | 0 | 1 | 2 | 3 | 4 -> base ()
    | 5 ->
        let c = bin Mir.Ast.Band Mir.Ast.W64 (gen_pure rand 4) (ii 1) in
        let t = gen_block rand ~depth:(depth + 1) (n / 3) (1 + rand 3) in
        let e = gen_block rand ~depth:(depth + 1) (n / 3) (rand 3) in
        [ if_ c t e ]
    | 6 ->
        let var = Printf.sprintf "i%d" depth in
        let bound = 1 + rand 5 in
        let body = gen_block rand ~depth:(depth + 1) (n / 3) (1 + rand 2) in
        for_ var ~from:(ii 0) ~below:(ii bound) body
    | _ -> base ()

and gen_block rand ~depth n k = rep k (fun () -> gen_stmts rand ~depth n)

let entry_body rand ~size =
  [ let_ "a" (v "n"); let_ "b" (ii 1) ]
  @ gen_block rand ~depth:0 size (1 + rand 10)
  @ [
      (* fold the arena into the result so memory divergence is
         observable in the return value, not only in the byte dump *)
      let_ "acc" (ii 0);
      let_ "o" (ii 0);
      while_
        (v "o" <: ii arena_size)
        [
          let_ "acc" (v "acc" ^: load64 (glob "arena" +: v "o"));
          let_ "o" (v "o" +: ii 8);
        ];
      ret (v "acc" ^: v "a" ^: v "b");
    ]

(* Stores stay inside the [touch_grant]-byte window the annotation
   pre-copies; the final load folds buffer contents into the result. *)
let touch_body rand =
  rep
    (1 + rand 3)
    (fun () ->
      [ store64 (v "buf" +: ii (8 * rand ((touch_grant / 8) - 1))) (v "n" +: ii (rand 64)) ])
  @ [
      store64 (v "buf" +: ii (touch_grant - 8)) (v "n" ^: load64 (v "buf"));
      ret (load64 (v "buf" +: ii (8 * rand (touch_grant / 8))));
    ]

(* Runs as the instance principal named by [who]; never dereferences
   [who] (it is a principal name, not memory the module owns). *)
let peer_body rand =
  let off = gen_offset rand in
  [ let_ "a" (v "n"); let_ "b" (ii 2) ]
  @ gen_block rand ~depth:1 3 (1 + rand 3)
  @ [
      store64 (glob "arena" +: ii off) (v "a" +: v "n");
      ret (v "a" ^: load64 (glob "arena" +: ii off));
    ]

let make_prog ?(size = 8) rand =
  let r1 = Int64.of_int (rand 1_000_000)
  and r2 = Int64.of_int (rand 1_000_000) in
  let s1 = Int64.of_int (rand 4096)
  and s2 = Int64.of_int (rand 4096) in
  prog "fuzzmod" ~imports
    ~globals:
      [
        global "arena" arena_size ~section:Mir.Ast.Bss;
        global "lock" 8 ~section:Mir.Ast.Bss;
        global "ro" 16 ~section:Mir.Ast.Rodata ~init:[ init_word 0 r1; init_word 8 r2 ];
        global "seeded" 32 ~section:Mir.Ast.Data
          ~init:[ init_word 0 s1; init_word 16 s2 ];
        global "vtbl" 16 ~section:Mir.Ast.Data
          ~init:[ init_func 0 "cb0"; init_func 8 "cb1" ];
        global "kslot" 8 ~section:Mir.Ast.Data ~init:[ init_func 0 "cb0" ];
      ]
    ~funcs:
      [
        (* trivial helper: inlining candidate *)
        func "helper" [ "x" ] [ ret (v "x" +: ii 3) ];
        func "module_init" [] [ expr (call_ext "spin_lock_init" [ glob "lock" ]); ret0 ];
        func "cb0" [ "n" ] ~export:"fuzz.cb"
          [ store64 (glob "arena" +: ii 8) (v "n" +: ii 1); ret (v "n" +: ii 7) ];
        func "cb1" [ "n" ] ~export:"fuzz.cb" [ ret (mul32 (v "n") (ii 0x9E3779B1)) ];
        func "entry" [ "n" ] ~export:"fuzz.entry" (entry_body rand ~size);
        func "touch" [ "buf"; "n" ] ~export:"fuzz.touch" (touch_body rand);
        func "peer" [ "who"; "n" ] ~export:"fuzz.peer" (peer_body rand);
      ]

let case_of_rand ?size rand =
  let prog = make_prog ?size rand in
  let extra = Int64.of_int (rand 1_000_000) in
  { c_prog = prog; c_inputs = [ 0L; extra; 123456789L ] }

let of_random_state ?size () st = case_of_rand ?size (fun n -> Random.State.int st n)

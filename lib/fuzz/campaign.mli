(** Campaign driver: the deterministic loop behind [lxfi_sim fuzz].

    Case [i] of a campaign draws its module and mutation schedule from
    an {!Rng} stream seeded with [Rng.derive seed i], so the campaign
    is reproducible case-by-case and the report for a given
    [(seed, runs, mutants_per_case)] is byte-stable.  Every case runs
    the full clean-oracle battery ({!Harness.clean_failure} with
    tracing), then [mutants_per_case] labelled attack variants
    ({!Mutate.select} / {!Harness.run_mutant}).  Divergences are
    minimized with {!Shrink.minimize} and rendered as replayable
    {!Corpus} repros. *)

type class_stat = {
  cs_class : Mutate.mclass;
  mutable cs_total : int;
  mutable cs_detected : int;  (** raised some violation *)
  mutable cs_correct : int;  (** passed the full oracle-2/3 verdict *)
  mutable cs_static : int;  (** flagged by the static checker *)
}

type repro = { rp_name : string; rp_text : string }
(** A minimized, replayable counterexample ([rp_name] is a suggested
    [.mir] file name). *)

type divergence = { dv_name : string; dv_message : string }

type report = {
  r_seed : int;
  r_runs : int;
  r_mutants_per_case : int;
  r_cases_ok : int;  (** cases passing all clean oracles *)
  r_mutants_total : int;
  r_mutants_correct : int;
  r_stats : class_stat list;  (** one per {!Mutate.all} class, in order *)
  r_divergences : divergence list;
  r_repros : repro list;  (** minimized repros for the divergences *)
}

val passed : report -> bool
(** No divergences, and every mutant passed its verdict. *)

val run : ?shrink:bool -> ?mutants_per_case:int -> seed:int -> runs:int -> unit -> report
(** Run the campaign.  [shrink] (default [true]) minimizes each
    divergent case before rendering its repro; [mutants_per_case]
    defaults to 4. *)

val exemplars : seed:int -> repro list
(** One minimized detected-attack repro per mutation class plus one
    small clean module — the generator for the checked-in regression
    corpus ([lxfi_sim fuzz --exemplars]). *)

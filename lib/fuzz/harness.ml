(** The differential harness: boots a fresh system per run (runs must
    not contaminate each other), allocates the kernel canary and the
    [touch] buffer {e before} loading the module — which is what makes
    their addresses deterministic and known to the mutation engine —
    then drives the module's full kernel-visible surface. *)

open Kernel_sim
open Kmodules

type outcome = Oval of int64 | Oviolation of Lxfi.Violation.kind | Oexn of string

let outcome_string = function
  | Oval v -> Printf.sprintf "%Ld" v
  | Oviolation k -> "violation:" ^ Lxfi.Violation.kind_name k
  | Oexn m -> "exn:" ^ m

let fuel = 100_000

let mutant_config = { Lxfi.Config.lxfi with Lxfi.Config.watchdog_fuel = Some fuel }

let noopt_config =
  {
    Lxfi.Config.lxfi with
    Lxfi.Config.opt_elide_safe_writes = false;
    opt_inline_trivial = false;
  }

let canary_size = 64
let canary_byte i = (0xC5 + i) land 0xff

exception Setup_failed of string

type ctx = { sys : Ksys.t; mi : Lxfi.Runtime.module_info; canary : int; kbuf : int }

let define_slots (rt : Lxfi.Runtime.t) =
  List.iter
    (fun (name, params, annot_src) ->
      ignore (Annot.Registry.define_exn rt.Lxfi.Runtime.registry ~name ~params ~annot_src))
    Gen.slot_defs

(* Canary then kbuf: the first two allocations after boot, so their
   addresses depend only on the config, never on the module. *)
let alloc_fixtures (sys : Ksys.t) =
  let kst = sys.Ksys.kst in
  let canary = Slab.kmalloc kst.Kstate.slab canary_size in
  for i = 0 to canary_size - 1 do
    Kmem.write_u8 kst.Kstate.mem (canary + i) (canary_byte i)
  done;
  let kbuf = Slab.kmalloc kst.Kstate.slab Gen.kbuf_size in
  (canary, kbuf)

let canary_addr_of config =
  let sys = Ksys.boot config in
  fst (alloc_fixtures sys)

(* [flow_of] is the audited program whose extracted kernel-API flow
   graph is registered as [prog]'s enforced policy before the load —
   the skew between the two is what the flow automaton detects. *)
let boot ?flow_of config prog =
  let sys = Ksys.boot config in
  define_slots sys.Ksys.rt;
  let canary, kbuf = alloc_fixtures sys in
  (match flow_of with
  | None -> ()
  | Some benign ->
      let rt = sys.Ksys.rt in
      let g = Check.Apiflow.extract (Lxfi.Loader.check_env rt) benign in
      Lxfi.Runtime.register_flow_graph rt ~module_:benign.Mir.Ast.pname g);
  match Ksys.load sys prog with
  | exception Lxfi.Loader.Load_error m -> raise (Setup_failed ("load error: " ^ m))
  | exception Lxfi.Rewriter.Rewrite_error m -> raise (Setup_failed ("rewrite error: " ^ m))
  | mi, _report ->
      (match Lxfi.Loader.init_call sys.Ksys.rt mi "module_init" [] with
      | _ -> ()
      | exception e -> raise (Setup_failed ("module_init: " ^ Printexc.to_string e)));
      { sys; mi; canary; kbuf }

let catching f =
  match f () with
  | r -> Oval r
  | exception Lxfi.Violation.Violation v -> Oviolation v.Lxfi.Violation.v_kind
  | exception Kstate.Oops m -> Oexn ("oops: " ^ m)
  | exception Kmem.Fault { addr; write } ->
      Oexn (Printf.sprintf "fault:%s:0x%x" (if write then "w" else "r") addr)
  | exception e -> Oexn (Printexc.to_string e)

let invoke ctx fname args =
  catching (fun () -> Lxfi.Runtime.invoke_module_function ctx.sys.Ksys.rt ctx.mi fname args)

(* The kernel calling through the module-writable [kslot] global — the
   path [lxfi_check_indcall] interposes on. *)
let kcall ctx n =
  let slot = Mod_common.gaddr ctx.mi "kslot" in
  catching (fun () -> Kstate.call_ptr ctx.sys.Ksys.kst ~slot ~ftype:"fuzz.cb" [ n ])

(* ---- clean-side oracles ---- *)

type clean_sig = {
  s_outcomes : (string * outcome) list;
  s_arena : string;
  s_kbuf : string;
}

let hex b =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.of_seq (Bytes.to_seq b))))

let clean_drive ctx inputs =
  List.concat_map
    (fun n ->
      [
        (Printf.sprintf "entry(%Ld)" n, invoke ctx "entry" [ n ]);
        (Printf.sprintf "touch(%Ld)" n, invoke ctx "touch" [ Int64.of_int ctx.kbuf; n ]);
        (Printf.sprintf "peer(0x7001,%Ld)" n, invoke ctx "peer" [ 0x7001L; n ]);
        (Printf.sprintf "peer(0x7002,%Ld)" n, invoke ctx "peer" [ 0x7002L; n ]);
        (Printf.sprintf "kcall(%Ld)" n, kcall ctx n);
      ])
    inputs

let run_clean ?(trace = false) config (case : Gen.case) =
  match boot config case.Gen.c_prog with
  | exception Setup_failed m -> Error m
  | ctx ->
      let buf = if trace then Some (Trace.make ~capacity:65536 ()) else None in
      (match buf with Some b -> Lxfi.Runtime.attach_trace ctx.sys.Ksys.rt b | None -> ());
      let outcomes =
        Fun.protect
          ~finally:(fun () -> if trace then Trace.detach ())
          (fun () -> clean_drive ctx case.Gen.c_inputs)
      in
      let reconciled =
        match buf with
        | None -> true
        | Some b ->
            let c = ctx.sys.Ksys.kst.Kstate.cycles in
            let final = (Kcycles.kernel c, Kcycles.module_ c, Kcycles.guard c) in
            let p = Trace_profile.aggregate ~final b in
            Trace_profile.attributed_cycles p = p.Trace_profile.pr_total_cycles
      in
      let mem = ctx.sys.Ksys.kst.Kstate.mem in
      let arena = Mod_common.gaddr ctx.mi "arena" in
      Ok
        ( {
            s_outcomes = outcomes;
            s_arena = hex (Kmem.read_bytes mem ~addr:arena ~len:Gen.arena_size);
            s_kbuf = hex (Kmem.read_bytes mem ~addr:ctx.kbuf ~len:Gen.kbuf_size);
          },
          (ctx, reconciled) )

let clean_sig_under config case = Result.map fst (run_clean config case)

let diff_sigs ~la ~lb (a : clean_sig) (b : clean_sig) =
  let rec first_outcome xs ys =
    match (xs, ys) with
    | (na, oa) :: xs', (_, ob) :: ys' ->
        if oa = ob then first_outcome xs' ys'
        else Some (Printf.sprintf "%s: %s=%s vs %s=%s" na la (outcome_string oa) lb (outcome_string ob))
    | _ -> None
  in
  match first_outcome a.s_outcomes b.s_outcomes with
  | Some _ as d -> d
  | None ->
      if a.s_arena <> b.s_arena then
        Some (Printf.sprintf "final arena bytes differ (%s vs %s)" la lb)
      else if a.s_kbuf <> b.s_kbuf then
        Some (Printf.sprintf "final kbuf bytes differ (%s vs %s)" la lb)
      else None

let static_errors_of (rt : Lxfi.Runtime.t) prog =
  let env = Lxfi.Loader.check_env rt in
  Check.Finding.errors (Check.Checker.check_module env prog)

let clean_failure ?(trace = false) (case : Gen.case) =
  match run_clean Lxfi.Config.stock case with
  | Error m -> Some ("stock setup: " ^ m)
  | Ok (stock_sig, _) -> (
      match run_clean Lxfi.Config.lxfi case with
      | Error m -> Some ("lxfi setup: " ^ m)
      | Ok (lxfi_sig, (lxfi_ctx, _)) -> (
          match diff_sigs ~la:"stock" ~lb:"lxfi" stock_sig lxfi_sig with
          | Some d -> Some ("enforcement visible: " ^ d)
          | None -> (
              match run_clean noopt_config case with
              | Error m -> Some ("noopt setup: " ^ m)
              | Ok (noopt_sig, _) -> (
                  match diff_sigs ~la:"lxfi" ~lb:"noopt" lxfi_sig noopt_sig with
                  | Some d -> Some ("optimizations visible: " ^ d)
                  | None -> (
                      let serr = static_errors_of lxfi_ctx.sys.Ksys.rt case.Gen.c_prog in
                      if serr > 0 then
                        Some
                          (Printf.sprintf
                             "static checker reports %d error(s) on a clean module" serr)
                      else if not trace then None
                      else
                        match run_clean ~trace:true Lxfi.Config.lxfi case with
                        | Error m -> Some ("traced setup: " ^ m)
                        | Ok (traced_sig, (_, reconciled)) -> (
                            match diff_sigs ~la:"lxfi" ~lb:"lxfi+trace" lxfi_sig traced_sig with
                            | Some d -> Some ("tracing visible: " ^ d)
                            | None when not reconciled ->
                                Some "trace cycle totals do not reconcile with the clock"
                            | None -> None))))))

(* ---- mutant-side oracles ---- *)

type mutant_result = {
  mr_outcome : outcome;
  mr_canary_intact : bool;
  mr_static_errors : int;
}

(* [prog] is the pristine (pre-rewrite) program, needed by the
   [Dupgrade] drive to derive the downgraded version it swaps in. *)
let run_drive ctx ~prog (drive : Mutate.drive) ~input =
  let arg = function
    | Mutate.Acanary -> Int64.of_int ctx.canary
    | Mutate.Akbuf -> Int64.of_int ctx.kbuf
    | Mutate.Ainput -> input
  in
  match drive with
  | Mutate.Dinvoke (fname, args) | Mutate.Dflow (fname, args) ->
      invoke ctx fname (List.map arg args)
  | Mutate.Dcorrupt_kcall (fname, args) -> (
      match invoke ctx fname (List.map arg args) with
      | Oval _ -> kcall ctx input
      | early -> early)
  | Mutate.Dupgrade ((f1, a1), (f2, a2)) -> (
      match invoke ctx f1 (List.map arg a1) with
      | Oval _ ->
          catching (fun () ->
              let rt = ctx.sys.Ksys.rt in
              let mi, _report, _up =
                Lxfi.Loader.upgrade rt ctx.mi (Mutate.downgrade_of prog)
              in
              Lxfi.Runtime.invoke_module_function rt mi f2 (List.map arg a2))
      | early -> early)

let canary_intact ctx =
  let mem = ctx.sys.Ksys.kst.Kstate.mem in
  let rec go i =
    i >= canary_size || (Kmem.read_u8 mem (ctx.canary + i) = canary_byte i && go (i + 1))
  in
  go 0

(* Flow-class mutants are detected by skew between a registered benign
   graph and the loaded binary; every other class self-extracts its
   graph at load, which by construction never rejects its own runs. *)
let flow_policy_of (m_drive : Mutate.drive) prog =
  match m_drive with
  | Mutate.Dflow _ -> Some (Mutate.benign_of prog)
  | Mutate.Dinvoke _ | Mutate.Dcorrupt_kcall _ | Mutate.Dupgrade _ -> None

let run_mutant (m : Mutate.mutant) ~inputs =
  match boot ?flow_of:(flow_policy_of m.Mutate.m_drive m.Mutate.m_prog) mutant_config m.Mutate.m_prog with
  | exception Setup_failed msg -> Error msg
  | ctx ->
      let input = match inputs with n :: _ -> n | [] -> 5L in
      let outcome = run_drive ctx ~prog:m.Mutate.m_prog m.Mutate.m_drive ~input in
      Ok
        {
          mr_outcome = outcome;
          mr_canary_intact = canary_intact ctx;
          mr_static_errors = static_errors_of ctx.sys.Ksys.rt m.Mutate.m_prog;
        }

let mutant_verdict (m : Mutate.mutant) (r : mutant_result) =
  let expected = Mutate.expected_kind m.Mutate.m_class in
  match r.mr_outcome with
  | Oviolation k when k <> expected ->
      Some
        (Printf.sprintf "detected as %s, expected %s" (Lxfi.Violation.kind_name k)
           (Lxfi.Violation.kind_name expected))
  | Oviolation _ ->
      if not r.mr_canary_intact then Some "canary corrupted before detection"
      else if Mutate.statically_visible m.Mutate.m_class && r.mr_static_errors = 0 then
        Some "static checker missed a statically-visible attack"
      else None
  | (Oval _ | Oexn _) as o ->
      Some
        (Printf.sprintf "not detected (outcome %s%s)" (outcome_string o)
           (if r.mr_canary_intact then "" else ", canary corrupted"))

let mutant_failure (m : Mutate.mutant) ~inputs =
  match run_mutant m ~inputs with
  | Error msg -> Some ("setup failed: " ^ msg)
  | Ok r -> mutant_verdict m r

(* The no-upgrade control for the stale-capability class: the same two
   calls on one instance, no swap in between.  Both must complete —
   the violation is real only if it {e depends} on the upgrade having
   dropped the grant (a shrunk attack that violates even without the
   swap is just an ordinary bad store, not a stale capability). *)
let run_without_upgrade prog ((f1, a1), (f2, a2)) ~inputs =
  match boot mutant_config prog with
  | exception Setup_failed m -> Error ("control setup: " ^ m)
  | ctx -> (
      let input = match inputs with n :: _ -> n | [] -> 5L in
      let arg = function
        | Mutate.Acanary -> Int64.of_int ctx.canary
        | Mutate.Akbuf -> Int64.of_int ctx.kbuf
        | Mutate.Ainput -> input
      in
      let step f args =
        match invoke ctx f (List.map arg args) with
        | Oval _ -> Ok ()
        | o ->
            Error
              (Printf.sprintf "no-upgrade control: %s raised %s (violation does not \
                               depend on the swap)"
                 f (outcome_string o))
      in
      match step f1 a1 with Ok () -> step f2 a2 | e -> e)

(* Flow-class controls, pinning the violation on the policy skew: (1)
   the same mutant with no registered policy self-extracts its graph
   and must run clean — detection depends on the registered benign
   graph, not on the calls themselves; (2) the reordered-back program
   ({!Mutate.benign_of}) under that same registered policy must also
   run clean — the policy rejects only the reordering. *)
let run_flow_controls prog (fname, fargs) ~inputs =
  let input = match inputs with n :: _ -> n | [] -> 5L in
  let run ?flow_of label p =
    match boot ?flow_of mutant_config p with
    | exception Setup_failed m -> Error (label ^ " control setup: " ^ m)
    | ctx -> (
        let arg = function
          | Mutate.Acanary -> Int64.of_int ctx.canary
          | Mutate.Akbuf -> Int64.of_int ctx.kbuf
          | Mutate.Ainput -> input
        in
        match invoke ctx fname (List.map arg fargs) with
        | Oval _ -> Ok ()
        | o ->
            Error
              (Printf.sprintf
                 "%s control: %s raised %s (violation does not depend on the \
                  registered flow policy)"
                 label fname (outcome_string o)))
  in
  match run "self-graph" prog with
  | Ok () ->
      let benign = Mutate.benign_of prog in
      run ~flow_of:benign "reordered-back" benign
  | e -> e

let run_violation_repro prog drive ~inputs ~expect =
  match boot ?flow_of:(flow_policy_of drive prog) mutant_config prog with
  | exception Setup_failed m -> Error ("setup: " ^ m)
  | ctx -> (
      let input = match inputs with n :: _ -> n | [] -> 5L in
      match run_drive ctx ~prog drive ~input with
      | Oviolation k when k = expect -> (
          if not (canary_intact ctx) then Error "canary corrupted before detection"
          else
            match drive with
            | Mutate.Dupgrade (c1, c2) -> run_without_upgrade prog (c1, c2) ~inputs
            | Mutate.Dflow (f, a) -> run_flow_controls prog (f, a) ~inputs
            | Mutate.Dinvoke _ | Mutate.Dcorrupt_kcall _ -> Ok ())
      | o ->
          Error
            (Printf.sprintf "expected violation:%s, got %s"
               (Lxfi.Violation.kind_name expect) (outcome_string o)))

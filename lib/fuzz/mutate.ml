(** Labelled attack mutations over clean generated modules.  Each class
    is built so that exactly one guard family stands between the attack
    and kernel-state corruption; {!Harness.run_mutant} then checks the
    guard fires with the class's expected violation kind before the
    targeted canary changes. *)

open Mir.Builder

type mclass =
  | Store_oob
  | Forged_indcall
  | Use_after_transfer
  | Unowned_arg
  | Over_grant
  | Principal_confusion
  | Slot_corruption
  | Slot_type_confusion
  | Runaway_entry
  | Uncovered_param_store
  | Stale_cap_after_upgrade
  | Flow_reorder

let all =
  [
    Store_oob;
    Forged_indcall;
    Use_after_transfer;
    Unowned_arg;
    Over_grant;
    Principal_confusion;
    Slot_corruption;
    Slot_type_confusion;
    Runaway_entry;
    Uncovered_param_store;
    Stale_cap_after_upgrade;
    Flow_reorder;
  ]

let name = function
  | Store_oob -> "store-oob"
  | Forged_indcall -> "forged-indcall"
  | Use_after_transfer -> "use-after-transfer"
  | Unowned_arg -> "unowned-arg"
  | Over_grant -> "over-grant"
  | Principal_confusion -> "principal-confusion"
  | Slot_corruption -> "slot-corruption"
  | Slot_type_confusion -> "slot-type-confusion"
  | Runaway_entry -> "runaway-entry"
  | Uncovered_param_store -> "uncovered-param-store"
  | Stale_cap_after_upgrade -> "stale-capability-after-upgrade"
  | Flow_reorder -> "flow-reorder"

let of_name s = List.find_opt (fun c -> name c = s) all

let expected_kind = function
  | Store_oob | Use_after_transfer | Over_grant | Uncovered_param_store
  | Stale_cap_after_upgrade ->
      Lxfi.Violation.Write_denied
  | Forged_indcall | Slot_corruption -> Lxfi.Violation.Call_denied
  | Unowned_arg -> Lxfi.Violation.Ref_denied
  | Principal_confusion -> Lxfi.Violation.Principal_denied
  | Slot_type_confusion -> Lxfi.Violation.Annot_mismatch
  | Runaway_entry -> Lxfi.Violation.Watchdog_expired
  | Flow_reorder -> Lxfi.Violation.Flow_violation

let guard_family = function
  | Store_oob -> "store guard (guard_write)"
  | Forged_indcall -> "module indirect-call guard (guard_indcall)"
  | Use_after_transfer -> "transfer revocation + store guard"
  | Unowned_arg -> "wrapper pre check(ref) action"
  | Over_grant -> "annotation grant bounds + store guard"
  | Principal_confusion -> "privileged runtime call (lxfi_princ_alias)"
  | Slot_corruption -> "kernel indirect-call writer-set/CALL check"
  | Slot_type_confusion -> "kernel indirect-call annotation-hash check"
  | Runaway_entry -> "entry watchdog"
  | Uncovered_param_store -> "static capflow + store guard"
  | Stale_cap_after_upgrade -> "upgrade restore filter (grant shrinking) + store guard"
  | Flow_reorder -> "syscall-flow automaton (registered flow graph)"

let statically_visible = function Uncovered_param_store -> true | _ -> false

type arg = Acanary | Akbuf | Ainput

type drive =
  | Dinvoke of string * arg list
  | Dcorrupt_kcall of string * arg list
  | Dupgrade of (string * arg list) * (string * arg list)
  | Dflow of string * arg list

type mutant = { m_class : mclass; m_prog : Mir.Ast.prog; m_drive : drive }

(** The hot-upgrade downgrade of a mutant program: [touch] loses its
    [fuzz.touch] export, so the new version's write surface no longer
    contains the slot whose annotation granted dynamic WRITEs — the
    upgrade's restore filter must then drop every restored WRITE
    capability (all-or-nothing grant shrinking). *)
let downgrade_of (p : Mir.Ast.prog) =
  {
    p with
    Mir.Ast.funcs =
      List.map
        (fun (f : Mir.Ast.func) ->
          if f.Mir.Ast.export = Some "fuzz.touch" then { f with Mir.Ast.export = None }
          else f)
        p.Mir.Ast.funcs;
  }

(* The audited call order of [flow_evil]: allocate, free, then take and
   release the lock.  Every per-call contract is identical to the evil
   body's — the two versions differ only in call {e order}. *)
let flow_benign_body =
  [
    let_ "q" (call_ext "kmalloc" [ ii 32 ]);
    when_ (v "q" ==: ii 0) [ ret0 ];
    expr (call_ext "kfree" [ v "q" ]);
    expr (call_ext "spin_lock" [ glob "lock" ]);
    expr (call_ext "spin_unlock" [ glob "lock" ]);
    ret0;
  ]

let benign_of (p : Mir.Ast.prog) =
  {
    p with
    Mir.Ast.funcs =
      List.map
        (fun (f : Mir.Ast.func) ->
          if f.Mir.Ast.fname = "flow_evil" then { f with Mir.Ast.body = flow_benign_body }
          else f)
        p.Mir.Ast.funcs;
  }

let prepend_to fname stmts (p : Mir.Ast.prog) =
  {
    p with
    Mir.Ast.funcs =
      List.map
        (fun (f : Mir.Ast.func) ->
          if f.Mir.Ast.fname = fname then { f with Mir.Ast.body = stmts @ f.Mir.Ast.body }
          else f)
        p.Mir.Ast.funcs;
  }

let add_import iname (p : Mir.Ast.prog) =
  if List.mem iname p.Mir.Ast.imports then p
  else { p with Mir.Ast.imports = p.Mir.Ast.imports @ [ iname ] }

let add_func f (p : Mir.Ast.prog) = { p with Mir.Ast.funcs = p.Mir.Ast.funcs @ [ f ] }

let add_global g (p : Mir.Ast.prog) =
  { p with Mir.Ast.globals = p.Mir.Ast.globals @ [ g ] }

let apply ~canary_addr mclass prog =
  let canary = ii canary_addr in
  let prog, drive =
    match mclass with
    | Store_oob ->
        (* out-of-arena store straight at a kernel object *)
        (prepend_to "entry" [ store64 canary (ii 0x5a5a5a5a) ] prog, Dinvoke ("entry", [ Ainput ]))
    | Forged_indcall ->
        (* indirect call to an address no CALL capability covers *)
        (prepend_to "entry" [ expr (call_ind canary [ ii 1 ]) ] prog, Dinvoke ("entry", [ Ainput ]))
    | Use_after_transfer ->
        (* kfree's pre(transfer) revoked the object; the second store
           must find the WRITE capability gone *)
        ( prepend_to "entry"
            [
              let_ "uaf" (call_ext "kmalloc" [ ii 64 ]);
              store64 (v "uaf") (ii 1);
              expr (call_ext "kfree" [ v "uaf" ]);
              store64 (v "uaf") (ii 2);
            ]
            prog,
          Dinvoke ("entry", [ Ainput ]) )
    | Unowned_arg ->
        (* pass a pointer the module holds no REF for into a kernel
           export whose annotation demands check(ref(...)) *)
        ( prepend_to "entry"
            [ expr (call_ext "detach_pid" [ canary ]) ]
            (add_import "detach_pid" prog),
          Dinvoke ("entry", [ Ainput ]) )
    | Over_grant ->
        (* first store just past the annotation's WRITE grant *)
        ( prepend_to "touch" [ store64 (v "buf" +: ii Gen.touch_grant) (ii 0x77) ] prog,
          Dinvoke ("touch", [ Akbuf; Ainput ]) )
    | Principal_confusion ->
        (* alias a principal name this module never created *)
        ( prepend_to "entry"
            [ expr (call_ext "lxfi_princ_alias" [ ii 0xDEAD; ii 0xBEEF ]) ]
            (add_import "lxfi_princ_alias" prog),
          Dinvoke ("entry", [ Ainput ]) )
    | Slot_corruption ->
        (* scribble a non-callable address into the kernel-held slot;
           the kernel's next call through it must be refused because a
           writer lacks CALL for the target *)
        ( prepend_to "entry" [ store64 (glob "kslot") canary ] prog,
          Dcorrupt_kcall ("entry", [ Ainput ]) )
    | Slot_type_confusion ->
        (* an own (hence CALL-capable) function of the wrong slot type:
           only the annotation-hash check can catch this one *)
        ( prepend_to "entry" [ store64 (glob "kslot") (fn "touch") ] prog,
          Dcorrupt_kcall ("entry", [ Ainput ]) )
    | Runaway_entry ->
        ( prepend_to "entry" [ while_ (ii 1) [ let_ "a" (ii 0) ] ] prog,
          Dinvoke ("entry", [ Ainput ]) )
    | Uncovered_param_store ->
        (* an entry that stores through a parameter its slot type grants
           nothing for — the one class the static checker must also
           flag before load (oracle 3) *)
        ( add_func
            (func "evil_store" [ "p"; "n" ] ~export:"fuzz.noop"
               [ store64 (v "p") (v "n"); ret0 ])
            prog,
          Dinvoke ("evil_store", [ Acanary; Ainput ]) )
    | Stale_cap_after_upgrade ->
        (* [touch] stashes the buffer pointer its annotation granted
           WRITE for; the harness then hot-upgrades to the downgraded
           version ([downgrade_of]: the stash global's contents survive
           the state transfer, but the shrunken write surface makes the
           restore filter drop the dynamic WRITE), and the victim's
           store through the stale pointer must find the capability
           gone.  A replay oracle for upgrade grant-shrinking: a naive
           restore would let the store land in the kernel buffer. *)
        ( add_func
            (* bails out when the stash was never planted, so the
               victim is clean on its own; Harness.run_without_upgrade
               additionally pins the violation on the swap itself *)
            (func "upgrade_victim" [ "p"; "n" ] ~export:"fuzz.noop"
               [
                 when_ (load64 (glob "stash") ==: ii 0) [ ret0 ];
                 store64 (load64 (glob "stash")) (v "n");
                 ret0;
               ])
            (add_global
               (global "stash" 8 ~section:Mir.Ast.Data)
               (prepend_to "touch" [ store64 (glob "stash") (v "buf") ] prog)),
          Dupgrade (("touch", [ Akbuf; Ainput ]), ("upgrade_victim", [ Acanary; Ainput ]))
        )
    | Flow_reorder ->
        (* kfree reordered into the locked region.  Every per-call
           contract still holds (the freed object is owned, the lock is
           taken then released, never recursively), so no capability or
           annotation guard can object — only the flow automaton,
           running the registered graph of {!benign_of}'s audited order
           (where a lock acquire is never followed by kfree), sees the
           skew.  The harness registers that graph before load. *)
        ( add_func
            (func "flow_evil" [ "p"; "n" ] ~export:"fuzz.noop"
               [
                 let_ "q" (call_ext "kmalloc" [ ii 32 ]);
                 when_ (v "q" ==: ii 0) [ ret0 ];
                 expr (call_ext "spin_lock" [ glob "lock" ]);
                 expr (call_ext "kfree" [ v "q" ]);
                 expr (call_ext "spin_unlock" [ glob "lock" ]);
                 ret0;
               ])
            prog,
          Dflow ("flow_evil", [ Acanary; Ainput ]) )
  in
  { m_class = mclass; m_prog = prog; m_drive = drive }

let select ~rand ~count =
  let n = List.length all in
  let count = max 0 (min count n) in
  let start = rand n in
  List.init count (fun i -> List.nth all ((start + i) mod n))

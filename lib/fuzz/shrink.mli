(** Counterexample minimizer: greedy delta-debugging over MIR programs.

    [pred] maps a program to the {e failure signature} it exhibits
    ([None] = does not fail).  A reduction is kept only when the
    signature is unchanged — the classic ddmin safeguard against
    shrinking one bug into a different one.  Reductions tried, to a
    bounded budget of predicate evaluations: statement-chunk deletion
    per function (halving chunk sizes), replacing an [If]/[While] with
    one of its branches, and dropping whole functions, globals and
    imports (a reduction that breaks a reference changes the signature
    and is rejected automatically). *)

val max_attempts : int
(** Predicate-evaluation budget per minimization. *)

val minimize : pred:(Mir.Ast.prog -> string option) -> Mir.Ast.prog -> Mir.Ast.prog
(** Smallest program found that still fails with [prog]'s signature;
    [prog] itself if it does not fail under [pred]. *)

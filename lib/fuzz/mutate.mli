(** Attack-mutation engine: derive labelled malicious variants from a
    clean generated module — one mutation class per guard family in
    lib/lxfi, each carrying the violation class its guard must raise
    (the oracle of {!Harness.run_mutant}). *)

type mclass =
  | Store_oob  (** store outside owned memory → store guard *)
  | Forged_indcall  (** indirect call to a forged target → indcall guard *)
  | Use_after_transfer  (** store after kfree's pre(transfer) → revocation *)
  | Unowned_arg  (** unowned pointer into a check(ref) wrapper → pre check *)
  | Over_grant  (** store just past an annotation's WRITE grant → grant bound *)
  | Principal_confusion  (** alias a principal never owned → privileged call *)
  | Slot_corruption  (** garbage into the kernel fp slot → writer-set/CALL *)
  | Slot_type_confusion  (** wrong-typed own function into the slot → hash *)
  | Runaway_entry  (** unbounded loop → watchdog *)
  | Uncovered_param_store  (** store no clause covers → capflow + store guard *)
  | Stale_cap_after_upgrade
      (** store through a pointer whose WRITE grant the hot upgrade's
          restore filter dropped → grant shrinking + store guard *)
  | Flow_reorder
      (** kernel-API calls reordered against the audited order, every
          per-call contract kept → syscall-flow automaton *)

val all : mclass list
val name : mclass -> string
val of_name : string -> mclass option

val expected_kind : mclass -> Lxfi.Violation.kind
(** The violation class the guard family must report. *)

val guard_family : mclass -> string
(** The lib/lxfi guard family the class targets (DESIGN.md table). *)

val statically_visible : mclass -> bool
(** Whether the static capability-flow checker is required to flag the
    mutant with an error-severity finding (the checker-soundness half
    of oracle 3). *)

type arg = Acanary  (** the kernel canary object's address *)
         | Akbuf  (** the kernel buffer passed to [touch] *)
         | Ainput  (** the case's first input value *)

type drive =
  | Dinvoke of string * arg list  (** invoke one module entry *)
  | Dcorrupt_kcall of string * arg list
      (** invoke the entry (which corrupts [kslot]), then have the
          kernel indirect-call through [kslot] *)
  | Dupgrade of (string * arg list) * (string * arg list)
      (** invoke the first entry, hot-upgrade the module to
          {!downgrade_of} its program, then invoke the second entry on
          the swapped-in instance *)
  | Dflow of string * arg list
      (** register the flow graph extracted from {!benign_of} the
          program before loading it, then invoke the entry — the SFIP
          threat model: an audited benign graph held against a
          tampered binary *)

type mutant = { m_class : mclass; m_prog : Mir.Ast.prog; m_drive : drive }

val benign_of : Mir.Ast.prog -> Mir.Ast.prog
(** The audited counterpart of a {!Flow_reorder} mutant: identical
    except that [flow_evil]'s kernel-API calls run in the benign order
    (free before lock).  The graph extracted from this program is the
    policy the {!Dflow} drive registers; the program itself is the
    reordered-back differential control — it must run clean under that
    same policy. *)

val downgrade_of : Mir.Ast.prog -> Mir.Ast.prog
(** The program the {!Dupgrade} drive swaps in: identical except that
    [touch] loses its [fuzz.touch] export, shrinking the version's
    write surface so the upgrade's restore filter must drop every
    restored dynamic WRITE capability. *)

val apply : canary_addr:int -> mclass -> Mir.Ast.prog -> mutant
(** Derive the labelled malicious variant.  [canary_addr] is the
    address of the kernel object the attack targets (deterministic:
    the harness allocates it first thing after boot). *)

val select : rand:Gen.rand -> count:int -> mclass list
(** [count] classes starting from a random rotation of {!all} — every
    class still appears with equal frequency across a campaign when
    [count < List.length all]. *)

(** Splitmix64 (Steele et al.), matching {!Kernel_sim.Finject}'s
    engine: tiny, fast, and plenty for statement-shape choices. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let rand t = int t

let derive seed i =
  let r = create ~seed:(seed lxor (i * 0x632BE59B)) in
  Int64.to_int (Int64.shift_right_logical (next r) 2)

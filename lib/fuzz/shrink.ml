open Mir.Ast

let max_attempts = 400

let remove_range l lo len = List.filteri (fun i _ -> i < lo || i >= lo + len) l

(* Greedy chunk deletion: for decreasing chunk sizes, sweep the list
   and commit every removal that keeps the failure signature. *)
let shrink_list ~keeps xs =
  let rec scan xs lo size =
    if lo >= List.length xs then xs
    else
      let cand = remove_range xs lo size in
      if List.length cand < List.length xs && keeps cand then scan cand lo size
      else scan xs (lo + size) size
  in
  let rec at_size xs size =
    if size < 1 then xs else at_size (scan xs 0 size) (size / 2)
  in
  at_size xs (max 1 (List.length xs / 2))

(* Replace compound statements with one of their branches. *)
let rec simplify_stmts ~keeps stmts =
  let try_replace i repl =
    let cand = List.mapi (fun j s -> if j = i then repl else [ s ]) stmts |> List.concat in
    if keeps cand then Some cand else None
  in
  let rec go i = function
    | [] -> stmts
    | s :: rest -> (
        let candidates =
          match s with
          | If (_, t, e) -> [ t; e ]
          | While (_, b) -> [ b ]
          | _ -> []
        in
        match List.find_map (try_replace i) candidates with
        | Some cand -> simplify_stmts ~keeps cand
        | None -> go (i + 1) rest)
  in
  go 0 stmts

let with_funcs p funcs = { p with funcs }
let with_func p fname body =
  with_funcs p
    (List.map (fun f -> if f.fname = fname then { f with body } else f) p.funcs)

let minimize ~pred prog =
  match pred prog with
  | None -> prog
  | Some sig0 ->
      let budget = ref max_attempts in
      let ok p =
        !budget > 0
        &&
        (decr budget;
         pred p = Some sig0)
      in
      let prog = ref prog in
      (* whole-item deletion: functions, globals, imports *)
      let try_set cand = if ok cand then prog := cand in
      List.iter
        (fun (f : func) ->
          try_set (with_funcs !prog (List.filter (fun g -> g.fname <> f.fname) !prog.funcs)))
        !prog.funcs;
      List.iter
        (fun (g : glob) ->
          try_set { !prog with globals = List.filter (fun h -> h.gname <> g.gname) !prog.globals })
        !prog.globals;
      List.iter
        (fun i -> try_set { !prog with imports = List.filter (fun j -> j <> i) !prog.imports })
        !prog.imports;
      (* per-function body reduction, two passes; the helpers only ever
         return the original body or a verified-failing reduction, so
         committing the result is always sound *)
      for _pass = 1 to 2 do
        List.iter
          (fun (f : func) ->
            match List.find_opt (fun g -> g.fname = f.fname) !prog.funcs with
            | None -> ()  (* deleted by the whole-item phase *)
            | Some cur ->
                let keeps body = ok (with_func !prog f.fname body) in
                let body = shrink_list ~keeps cur.body in
                let body = simplify_stmts ~keeps body in
                let body = shrink_list ~keeps body in
                prog := with_func !prog f.fname body)
          !prog.funcs
      done;
      !prog

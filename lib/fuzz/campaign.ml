type class_stat = {
  cs_class : Mutate.mclass;
  mutable cs_total : int;
  mutable cs_detected : int;
  mutable cs_correct : int;
  mutable cs_static : int;
}

type repro = { rp_name : string; rp_text : string }
type divergence = { dv_name : string; dv_message : string }

type report = {
  r_seed : int;
  r_runs : int;
  r_mutants_per_case : int;
  r_cases_ok : int;
  r_mutants_total : int;
  r_mutants_correct : int;
  r_stats : class_stat list;
  r_divergences : divergence list;
  r_repros : repro list;
}

let passed r = r.r_divergences = [] && r.r_mutants_correct = r.r_mutants_total

let detected = function Harness.Oviolation _ -> true | Harness.Oval _ | Harness.Oexn _ -> false

let run ?(shrink = true) ?(mutants_per_case = 4) ~seed ~runs () =
  let canary_addr = Harness.canary_addr_of Harness.mutant_config in
  let stats =
    List.map
      (fun c -> { cs_class = c; cs_total = 0; cs_detected = 0; cs_correct = 0; cs_static = 0 })
      Mutate.all
  in
  let stat c = List.find (fun s -> s.cs_class = c) stats in
  let cases_ok = ref 0 in
  let mutants_total = ref 0 in
  let mutants_correct = ref 0 in
  let divergences = ref [] in
  let repros = ref [] in
  let diverge name message repro_text =
    divergences := { dv_name = name; dv_message = message } :: !divergences;
    repros := { rp_name = name ^ ".mir"; rp_text = repro_text } :: !repros
  in
  for i = 1 to runs do
    let rng = Rng.create ~seed:(Rng.derive seed i) in
    let rand = Rng.rand rng in
    let case = Gen.case_of_rand rand in
    (match Harness.clean_failure ~trace:true case with
    | None -> incr cases_ok
    | Some msg ->
        let pred p = Harness.clean_failure ~trace:true { case with Gen.c_prog = p } in
        let small = if shrink then Shrink.minimize ~pred case.Gen.c_prog else case.Gen.c_prog in
        let name = Printf.sprintf "clean_s%d_c%d" seed i in
        diverge name msg
          (Corpus.render_clean
             ~comment:(Printf.sprintf "%s: %s" name msg)
             ~inputs:case.Gen.c_inputs small));
    List.iter
      (fun cls ->
        let m = Mutate.apply ~canary_addr cls case.Gen.c_prog in
        let s = stat cls in
        s.cs_total <- s.cs_total + 1;
        incr mutants_total;
        let failure =
          match Harness.run_mutant m ~inputs:case.Gen.c_inputs with
          | Error msg -> Some ("setup failed: " ^ msg)
          | Ok r ->
              if detected r.Harness.mr_outcome then s.cs_detected <- s.cs_detected + 1;
              if r.Harness.mr_static_errors > 0 then s.cs_static <- s.cs_static + 1;
              Harness.mutant_verdict m r
        in
        match failure with
        | None ->
            s.cs_correct <- s.cs_correct + 1;
            incr mutants_correct
        | Some msg ->
            let pred p =
              Harness.mutant_failure { m with Mutate.m_prog = p } ~inputs:case.Gen.c_inputs
            in
            let small = if shrink then Shrink.minimize ~pred m.Mutate.m_prog else m.Mutate.m_prog in
            let name = Printf.sprintf "mutant_s%d_c%d_%s" seed i (Mutate.name cls) in
            diverge name msg
              (Corpus.render_mutant
                 ~comment:(Printf.sprintf "%s: %s" name msg)
                 ~expect:(Mutate.expected_kind cls) m.Mutate.m_drive small))
      (Mutate.select ~rand ~count:mutants_per_case)
  done;
  {
    r_seed = seed;
    r_runs = runs;
    r_mutants_per_case = mutants_per_case;
    r_cases_ok = !cases_ok;
    r_mutants_total = !mutants_total;
    r_mutants_correct = !mutants_correct;
    r_stats = stats;
    r_divergences = List.rev !divergences;
    r_repros = List.rev !repros;
  }

(* ---- exemplar generation for the checked-in corpus ---- *)

let exemplars ~seed =
  let canary_addr = Harness.canary_addr_of Harness.mutant_config in
  (* One detected attack per class, shrunk down to the attack skeleton:
     the predicate pins "raises exactly the expected kind with the
     canary intact", the same check corpus replay applies. *)
  let attack cls =
    let rec find i =
      if i > 50 then
        failwith (Printf.sprintf "no detected %s exemplar in 50 tries" (Mutate.name cls))
      else
        let rng = Rng.create ~seed:(Rng.derive seed (1000 + i)) in
        let case = Gen.case_of_rand (Rng.rand rng) in
        let m = Mutate.apply ~canary_addr cls case.Gen.c_prog in
        let inputs = case.Gen.c_inputs in
        let expect = Mutate.expected_kind cls in
        let pred p =
          match Harness.run_violation_repro p m.Mutate.m_drive ~inputs ~expect with
          | Ok () -> Some "detected"
          | Error _ -> None
        in
        if pred m.Mutate.m_prog = None then find (i + 1)
        else
          let small = Shrink.minimize ~pred m.Mutate.m_prog in
          {
            rp_name = Printf.sprintf "attack_%s.mir" (Mutate.name cls);
            rp_text =
              Corpus.render_mutant
                ~comment:
                  (Printf.sprintf "exemplar: %s attack on the %s guard family" (Mutate.name cls)
                     (Mutate.guard_family cls))
                ~expect m.Mutate.m_drive small;
          }
    in
    find 0
  in
  (* One small clean module passing the full oracle battery. *)
  let clean =
    let rec find i =
      if i > 50 then failwith "no clean exemplar in 50 tries"
      else
        let rng = Rng.create ~seed:(Rng.derive seed (2000 + i)) in
        let case = Gen.case_of_rand ~size:3 (Rng.rand rng) in
        match Harness.clean_failure ~trace:true case with
        | None ->
            {
              rp_name = "clean_small.mir";
              rp_text =
                Corpus.render_clean
                  ~comment:"exemplar: well-behaved module, all clean oracles must pass"
                  ~inputs:case.Gen.c_inputs case.Gen.c_prog;
            }
        | Some _ -> find (i + 1)
    in
    find 0
  in
  clean :: List.map attack Mutate.all

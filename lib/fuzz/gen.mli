(** The shared well-behaved module generator: random MIR modules with
    an annotated kernel-callable surface (plain entry, a WRITE-granting
    [touch], a cross-principal [peer], vtable callbacks and a
    kernel-held function-pointer slot), whose every store stays inside
    memory the module legitimately owns.

    This is the single generator definition behind both the qcheck
    differential suite ([test_differential.ml]) and the CLI fuzzer
    ([lxfi_sim fuzz]); {!Mutate} derives the malicious variants from
    its output.  It is parameterized over a plain [int -> int] random
    source so the library depends on neither qcheck nor a global RNG:
    wrap a {!Rng.t} with {!Rng.rand}, or a [Random.State.t] for
    qcheck. *)

type rand = int -> int
(** [rand n] must return a uniform value in [0, n). *)

val arena_size : int
(** Size of the module's scratch global (every generated store is
    8-aligned inside it). *)

val touch_grant : int
(** Bytes of WRITE the [fuzz.touch] slot annotation grants on its
    buffer parameter. *)

val kbuf_size : int
(** Size of the kernel-owned buffer the harness passes to [touch]. *)

val slot_defs : (string * string list * string) list
(** The fuzz slot types (name, params, annotation source) a harness
    must define before loading generated modules: [fuzz.entry],
    [fuzz.touch] (pre-copy WRITE of {!touch_grant} bytes),
    [fuzz.peer] (instance principal), [fuzz.cb] (vtable callback) and
    [fuzz.noop]. *)

val imports : string list
(** Kernel imports every generated module declares. *)

type case = {
  c_prog : Mir.Ast.prog;  (** the well-behaved module *)
  c_inputs : int64 list;  (** inputs the harness drives it with *)
}

val make_prog : ?size:int -> rand -> Mir.Ast.prog
(** One well-behaved module.  [size] scales statement count and nesting
    (default 8); loop bounds and nesting depth are capped so the worst
    clean entry stays far under {!Harness.fuel}. *)

val case_of_rand : ?size:int -> rand -> case

val of_random_state : ?size:int -> unit -> Random.State.t -> case
(** The same generator as a [Random.State.t] consumer — exactly
    [QCheck.Gen.t]'s representation, so qcheck suites can use it
    without this library depending on qcheck. *)

(** Multi-oracle differential harness.

    Clean cases run under stock, full-enforcement (lxfi) and
    de-optimized lxfi, and must agree on every invocation outcome and
    on final arena/buffer memory (oracle 1: enforcement invisibility);
    the static checker must report zero errors on them (oracle 3, clean
    half) and, when tracing is on, the per-principal cycle totals must
    reconcile with the cycle clock (oracle 4).

    Mutants run once under full enforcement with the watchdog armed,
    and must be detected as exactly their class's expected violation
    kind before the targeted kernel canary changes (oracle 2), with the
    static checker's error findings consistent with the runtime outcome
    (oracle 3, adversarial half). *)

type outcome =
  | Oval of int64
  | Oviolation of Lxfi.Violation.kind
  | Oexn of string  (** oops / fault / other exception, as text *)

val outcome_string : outcome -> string

val fuel : int
(** Watchdog budget for mutant runs — an order of magnitude above the
    worst clean entry the generator can emit. *)

val mutant_config : Lxfi.Config.t
(** Full enforcement plus the armed watchdog (quarantine stays off so
    violations propagate to the oracle). *)

val canary_size : int

val canary_addr_of : Lxfi.Config.t -> int
(** Address the canary will occupy under [config] — deterministic,
    because the harness allocates it first thing after boot, before
    the module is loaded.  {!Mutate.apply} needs it up front. *)

exception Setup_failed of string
(** Load/init of a generated module failed — a generator or loader bug,
    reported as a campaign divergence rather than a crash. *)

type clean_sig = {
  s_outcomes : (string * outcome) list;  (** labelled drive outcomes *)
  s_arena : string;  (** final arena bytes, hex *)
  s_kbuf : string;  (** final kernel-buffer bytes, hex *)
}

val clean_sig_under : Lxfi.Config.t -> Gen.case -> (clean_sig, string) result
(** The full observable behaviour of one clean case under one config:
    every drive outcome plus final memory.  Two configs are
    behaviourally equivalent on the case iff their signatures are
    equal. *)

val diff_sigs : la:string -> lb:string -> clean_sig -> clean_sig -> string option
(** First observable difference between two signatures ([la]/[lb] label
    the sides in the message); [None] = equivalent. *)

val clean_failure : ?trace:bool -> Gen.case -> string option
(** All clean-side oracles on one case; [None] means every oracle
    passed.  [trace] additionally runs a traced enforcement run and
    checks both cycle reconciliation and that tracing is semantically
    invisible. *)

type mutant_result = {
  mr_outcome : outcome;
  mr_canary_intact : bool;
  mr_static_errors : int;  (** error-severity capflow findings *)
}

val run_mutant : Mutate.mutant -> inputs:int64 list -> (mutant_result, string) result

val mutant_verdict : Mutate.mutant -> mutant_result -> string option
(** The oracle-2/3 verdict on an already-computed result ([None] =
    passed) — lets a campaign derive stats and the verdict from one
    run. *)

val mutant_failure : Mutate.mutant -> inputs:int64 list -> string option
(** Oracle 2 + 3 on one mutant; [None] when it was detected as the
    expected class, the canary survived, and static findings agree. *)

val run_violation_repro :
  Mir.Ast.prog ->
  Mutate.drive ->
  inputs:int64 list ->
  expect:Lxfi.Violation.kind ->
  (unit, string) result
(** Corpus replay: the drive must raise exactly [expect] with the
    canary intact.  [Dupgrade] additionally runs the no-upgrade
    control; [Dflow] additionally runs the self-graph control (no
    registered policy → clean) and the reordered-back differential
    control ({!Mutate.benign_of} under the same policy → clean). *)

(** Deterministic random stream for the fuzzer (splitmix64, the same
    engine {!Kernel_sim.Finject} uses).  Every campaign artefact — the
    generated modules, the mutation schedule, the JSON report — derives
    from one integer seed through this stream, which is what makes two
    runs with the same seed byte-identical. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t n] — uniform in [0, n); raises [Invalid_argument] for
    [n <= 0]. *)

val rand : t -> int -> int
(** The stream as the [int -> int] closure {!Gen} consumes. *)

val derive : int -> int -> int
(** [derive seed i] — mix a per-case seed out of the campaign seed, so
    case [i]'s stream is independent of how many cases ran before
    it. *)

(** MIR interpreter — the "CPU" module text runs on.

    Stores go straight to simulated memory; [Guard] statements invoke
    the [guard_write]/[guard_indcall] callbacks (wired to the LXFI
    runtime by the loader; absent in stock code); calls to imports
    dispatch through [call_ext]; the entry/exit hooks fire around every
    function activation when [hooks_enabled].  Each evaluated IR node
    charges one [Kcycles.Module] cycle; charges accumulate in
    [pending_cycles] and flush to the global clock at every observable
    boundary (external calls, guards, hooks, interpreter exit).

    Functions are compiled once, on first activation, into an internal
    form (array-slot locals, resolved addresses, hash-dispatched
    callees); compilation is structural, so step counts and cycle
    totals match direct AST interpretation exactly. *)

open Kernel_sim

type rfunc
(** A function compiled to the interpreter's internal form. *)

type ctx = {
  kst : Kstate.t;
  prog : Ast.prog;
  global_addr : string -> int;
  func_addr : string -> int;
  ext_addr : string -> int;
  call_ext : int -> int64 list -> int64;
  guard_write : addr:int -> size:int -> unit;
  guard_indcall : target:int -> unit;
  on_entry : string -> unit;
  on_exit : string -> unit;
  hooks_enabled : bool;
  stack_base : int;
  stack_len : int;
  mutable stack_ptr : int;
  mutable fuel : int;  (** runaway-loop budget; exhaustion is an Oops *)
  mutable steps : int;
  mutable watchdog : bool;
      (** raise {!Fuel_exhausted} instead of an Oops on exhaustion (set
          by the LXFI runtime when an entry watchdog budget is active) *)
  mutable cur_fn : string;
      (** innermost executing function ("" outside any activation);
          violation reports use it as the fault location *)
  mutable pending_cycles : int;
      (** module cycles accumulated since the last {!flush_cycles} *)
  compiled : (string, rfunc) Hashtbl.t;
      (** per-function compile cache, filled lazily *)
  mutable fn_by_addr : (int, string) Hashtbl.t option;
      (** text address → function name, built on first indirect
          intra-module call *)
}

exception Return_value of int64

exception Fuel_exhausted of string
(** Fuel ran out under [watchdog] mode; carries the module name.  The
    kernel→module wrapper converts this into a watchdog violation. *)

val default_fuel : int

val create :
  kst:Kstate.t ->
  prog:Ast.prog ->
  global_addr:(string -> int) ->
  func_addr:(string -> int) ->
  ext_addr:(string -> int) ->
  call_ext:(int -> int64 list -> int64) ->
  guard_write:(addr:int -> size:int -> unit) ->
  guard_indcall:(target:int -> unit) ->
  on_entry:(string -> unit) ->
  on_exit:(string -> unit) ->
  hooks_enabled:bool ->
  stack_base:int ->
  stack_len:int ->
  ctx

val truncate : Ast.width -> int64 -> int64
(** Mask a value to a width (arithmetic wraps at the declared width —
    how the CAN BCM overflow is expressed). *)

val eval_binop : Ast.binop -> Ast.width -> int64 -> int64 -> int64
(** Pure binop semantics; division by zero is a [Kstate.Oops].  Signed
    compares sign-extend narrow operands; shift amounts wrap at the
    operation width. *)

val flush_cycles : ctx -> unit
(** Charge the batched module cycles to the global clock.  The
    interpreter calls this at every boundary where other code can
    observe {!Kcycles}; external callers only need it if they read the
    cycle clock mid-execution from outside a guard/hook/wrapper. *)

val run : ctx -> string -> int64 list -> int64
(** Invoke a module function by name.  Module bugs surface as
    [Kmem.Fault] / [Kstate.Oops]; guard callbacks may raise LXFI
    violations.  Pending cycles are flushed on both normal and
    exceptional exit. *)

val refuel : ?fuel:int -> ctx -> unit
(** Reset the runaway-loop budget (long benchmarks). *)

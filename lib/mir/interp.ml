(** MIR interpreter — executes module code against the simulated kernel
    address space.

    The interpreter is the "CPU" on which module text runs.  Its
    security-relevant behaviour is deliberately minimal:

    - stores go straight to {!Kernel_sim.Kmem} (no protection);
    - explicit [Guard] statements (inserted by the LXFI rewriter) invoke
      the [guard_write]/[guard_indcall] callbacks, which the LXFI
      runtime points at its checkers — in stock mode no guards exist;
    - calls to imported functions are dispatched through [call_ext]
      (LXFI routes these to annotated wrappers; stock calls raw
      implementations);
    - the [on_entry]/[on_exit] hooks fire around every function
      activation when [hooks_enabled] (shadow-stack/accounting guards
      of §4.2/§5).

    Returns inside the interpreter use OCaml's own stack, so return-
    address integrity is structural here; the shadow stack still
    enforces the boundary-crossing discipline at wrappers, and the
    entry/exit hook cost is what Figure 13's "function entry/exit"
    guards measure. *)

open Kernel_sim
open Ast

type ctx = {
  kst : Kstate.t;
  prog : prog;
  global_addr : string -> int;  (** module global name -> address *)
  func_addr : string -> int;  (** module function name -> text address *)
  ext_addr : string -> int;  (** import name -> callable address *)
  call_ext : int -> int64 list -> int64;
      (** dispatch a call to an external (kernel) address *)
  guard_write : addr:int -> size:int -> unit;
  guard_indcall : target:int -> unit;
  on_entry : string -> unit;
  on_exit : string -> unit;
  hooks_enabled : bool;
  stack_base : int;
  stack_len : int;
  mutable stack_ptr : int;
  mutable fuel : int;
  mutable steps : int;
  mutable watchdog : bool;
      (** when set, fuel exhaustion raises [Fuel_exhausted] for the
          runtime to convert into a watchdog violation; otherwise it is
          a plain soft-lockup oops *)
  mutable cur_fn : string;  (** innermost executing function, for fault reports *)
}

exception Return_value of int64

exception Fuel_exhausted of string
(** Raised (module name) instead of [Kstate.Oops] when [watchdog] is
    set: the enclosing kernel→module wrapper owns the budget and turns
    exhaustion into a graceful quarantine instead of a crash. *)

let default_fuel = 50_000_000

let create ~kst ~prog ~global_addr ~func_addr ~ext_addr ~call_ext ~guard_write
    ~guard_indcall ~on_entry ~on_exit ~hooks_enabled ~stack_base ~stack_len =
  {
    kst;
    prog;
    global_addr;
    func_addr;
    ext_addr;
    call_ext;
    guard_write;
    guard_indcall;
    on_entry;
    on_exit;
    hooks_enabled;
    stack_base;
    stack_len;
    stack_ptr = stack_base;
    fuel = default_fuel;
    steps = 0;
    watchdog = false;
    cur_fn = "";
  }

let tick ctx =
  ctx.steps <- ctx.steps + 1;
  Kcycles.charge ctx.kst.Kstate.cycles Kcycles.Module 1;
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then
    if ctx.watchdog then raise (Fuel_exhausted ctx.prog.pname)
    else raise (Kstate.Oops (Printf.sprintf "soft lockup in module %s" ctx.prog.pname))

let truncate w v =
  match w with
  | W64 -> v
  | W32 -> Int64.logand v 0xffff_ffffL
  | W16 -> Int64.logand v 0xffffL
  | W8 -> Int64.logand v 0xffL

let bool_ b = if b then 1L else 0L

let eval_binop op w a b =
  let arith f = truncate w (f a b) in
  match op with
  | Add -> arith Int64.add
  | Sub -> arith Int64.sub
  | Mul -> arith Int64.mul
  | Udiv ->
      if b = 0L then raise (Kstate.Oops "divide error") else arith Int64.unsigned_div
  | Urem ->
      if b = 0L then raise (Kstate.Oops "divide error") else arith Int64.unsigned_rem
  | Band -> arith Int64.logand
  | Bor -> arith Int64.logor
  | Bxor -> arith Int64.logxor
  | Shl -> truncate w (Int64.shift_left a (Int64.to_int b land 63))
  | Lshr -> truncate w (Int64.shift_right_logical a (Int64.to_int b land 63))
  | Eq -> bool_ (Int64.equal a b)
  | Ne -> bool_ (not (Int64.equal a b))
  | Lt -> bool_ (Int64.compare a b < 0)
  | Le -> bool_ (Int64.compare a b <= 0)
  | Gt -> bool_ (Int64.compare a b > 0)
  | Ge -> bool_ (Int64.compare a b >= 0)
  | Ult -> bool_ (Int64.unsigned_compare a b < 0)

type frame = { vars : (string, int64) Hashtbl.t; saved_sp : int }

let rec eval ctx frame (e : expr) : int64 =
  tick ctx;
  match e with
  | Const n -> n
  | Var name -> (
      match Hashtbl.find_opt frame.vars name with
      | Some x -> x
      | None ->
          raise (Kstate.Oops (Printf.sprintf "module %s: unbound local %s" ctx.prog.pname name)))
  | Glob name -> Int64.of_int (ctx.global_addr name)
  | Funcaddr name -> Int64.of_int (ctx.func_addr name)
  | Extaddr name -> Int64.of_int (ctx.ext_addr name)
  | Load (w, ea) ->
      let addr = Int64.to_int (eval ctx frame ea) in
      Kmem.read ctx.kst.Kstate.mem ~addr ~size:(bytes_of_width w)
  | Binop (op, w, a, b) ->
      let va = eval ctx frame a in
      let vb = eval ctx frame b in
      eval_binop op w va vb
  | Call (callee, args) -> (
      let vargs = List.map (eval ctx frame) args in
      match callee with
      | Direct name -> invoke ctx name vargs
      | Ext name -> ctx.call_ext (ctx.ext_addr name) vargs
      | Indirect te ->
          (* The rewriter places a Gindcall guard immediately before any
             indirect call; by the time we get here the target is
             approved (or we are running unguarded stock/xfi code). *)
          let target = Int64.to_int (eval ctx frame te) in
          call_address ctx target vargs)

and call_address ctx target vargs =
  (* Intra-module function addresses run in the interpreter; everything
     else goes out through the external dispatcher. *)
  match
    List.find_opt (fun f -> ctx.func_addr f.fname = target) ctx.prog.funcs
  with
  | Some f -> invoke ctx f.fname vargs
  | None -> ctx.call_ext target vargs

and invoke ctx fname vargs =
  match find_func ctx.prog fname with
  | None ->
      raise (Kstate.Oops (Printf.sprintf "module %s: no function %s" ctx.prog.pname fname))
  | Some f ->
      if List.length f.params <> List.length vargs then
        raise
          (Kstate.Oops
             (Printf.sprintf "module %s: %s arity mismatch (%d args, want %d)"
                ctx.prog.pname fname (List.length vargs) (List.length f.params)));
      let frame = { vars = Hashtbl.create 8; saved_sp = ctx.stack_ptr } in
      List.iter2 (fun p a -> Hashtbl.replace frame.vars p a) f.params vargs;
      if ctx.hooks_enabled then ctx.on_entry fname;
      let prev_fn = ctx.cur_fn in
      ctx.cur_fn <- fname;
      let result =
        match exec_stmts ctx frame f.body with
        | () -> 0L
        | exception Return_value v -> v
        | exception e ->
            ctx.cur_fn <- prev_fn;
            raise e
      in
      ctx.cur_fn <- prev_fn;
      ctx.stack_ptr <- frame.saved_sp;
      if ctx.hooks_enabled then ctx.on_exit fname;
      result

and exec_stmts ctx frame stmts = List.iter (exec ctx frame) stmts

and exec ctx frame (s : stmt) : unit =
  tick ctx;
  match s with
  | Let (name, e) -> Hashtbl.replace frame.vars name (eval ctx frame e)
  | Alloca (name, n) ->
      let aligned = (n + 15) land lnot 15 in
      if ctx.stack_ptr + aligned > ctx.stack_base + ctx.stack_len then
        raise (Kstate.Oops (Printf.sprintf "module %s: stack overflow" ctx.prog.pname));
      let addr = ctx.stack_ptr in
      ctx.stack_ptr <- ctx.stack_ptr + aligned;
      Hashtbl.replace frame.vars name (Int64.of_int addr)
  | Store (w, ea, ev) ->
      let addr = Int64.to_int (eval ctx frame ea) in
      let value = eval ctx frame ev in
      Kmem.write ctx.kst.Kstate.mem ~addr ~size:(bytes_of_width w) value
  | If (c, t, e) ->
      if eval ctx frame c <> 0L then exec_stmts ctx frame t else exec_stmts ctx frame e
  | While (c, body) ->
      while eval ctx frame c <> 0L do
        exec_stmts ctx frame body
      done
  | Expr e -> ignore (eval ctx frame e)
  | Return e -> raise (Return_value (eval ctx frame e))
  | Guard (Gwrite (w, ea)) ->
      let addr = Int64.to_int (eval ctx frame ea) in
      ctx.guard_write ~addr ~size:(bytes_of_width w)
  | Guard (Gindcall ea) ->
      let target = Int64.to_int (eval ctx frame ea) in
      ctx.guard_indcall ~target

(** [run ctx fname args] invokes module function [fname]. *)
let run ctx fname args = invoke ctx fname args

(** [refuel ctx] resets the runaway-loop budget (long benchmarks). *)
let refuel ?(fuel = default_fuel) ctx = ctx.fuel <- fuel

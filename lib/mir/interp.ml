(** MIR interpreter — executes module code against the simulated kernel
    address space.

    The interpreter is the "CPU" on which module text runs.  Its
    security-relevant behaviour is deliberately minimal:

    - stores go straight to {!Kernel_sim.Kmem} (no protection);
    - explicit [Guard] statements (inserted by the LXFI rewriter) invoke
      the [guard_write]/[guard_indcall] callbacks, which the LXFI
      runtime points at its checkers — in stock mode no guards exist;
    - calls to imported functions are dispatched through [call_ext]
      (LXFI routes these to annotated wrappers; stock calls raw
      implementations);
    - the [on_entry]/[on_exit] hooks fire around every function
      activation when [hooks_enabled] (shadow-stack/accounting guards
      of §4.2/§5).

    Returns inside the interpreter use OCaml's own stack, so return-
    address integrity is structural here; the shadow stack still
    enforces the boundary-crossing discipline at wrappers, and the
    entry/exit hook cost is what Figure 13's "function entry/exit"
    guards measure.

    For wall-clock speed each function is {e compiled} once, on first
    activation, into an internal form ({!rfunc}): locals become frame
    array slots instead of string-keyed hash entries, global/function/
    import names resolve to addresses at compile time, and direct
    callees dispatch through a hash table rather than a list scan.
    Compilation is purely structural (one compiled node per AST node),
    so step counts, fuel consumption and simulated cycle totals are
    identical to interpreting the AST directly.

    Cycle accounting is batched: each step accumulates into
    [pending_cycles] and the total is flushed to {!Kcycles} at every
    observable boundary — external calls, guard callbacks, entry/exit
    hooks, fuel exhaustion, and interpreter exit — so any code that can
    observe the cycle clock (wrappers, guards, the quarantine policy's
    escalation window) sees exactly the value per-step charging would
    have produced. *)

open Kernel_sim
open Ast

(** A function compiled to the interpreter's internal form: frame slots
    instead of string-keyed locals, addresses resolved, callees hash-
    dispatched.  One compiled node per AST node, so fuel/cycle
    accounting is unchanged. *)
type rexpr =
  | Rconst of int64
  | Rvar of int * string  (** frame slot; name kept for fault reports *)
  | Raddr of int64  (** resolved [Glob]/[Funcaddr]/[Extaddr] *)
  | Rfail of exn  (** name that failed to resolve; raises on evaluation *)
  | Rload of int * rexpr  (** byte size *)
  | Rbinop of binop * width * rexpr * rexpr
  | Rcall_direct of string * rexpr array
  | Rcall_ext of int * rexpr array  (** resolved import address *)
  | Rcall_ext_fail of exn * rexpr array  (** unresolvable import *)
  | Rcall_ind of rexpr * rexpr array

type rstmt =
  | Rlet of int * rexpr
  | Ralloca of int * int  (** slot, 16-byte-aligned size *)
  | Rstore of int * rexpr * rexpr  (** byte size, address, value *)
  | Rif of rexpr * rstmt array * rstmt array
  | Rwhile of rexpr * rstmt array
  | Rexpr of rexpr
  | Rreturn of rexpr
  | Rguard_write of int * rexpr
  | Rguard_ind of rexpr

type rfunc = {
  rf_name : string;
  rf_param_slots : int array;  (** frame slot of each positional parameter *)
  rf_nslots : int;
  rf_body : rstmt array;
}

type ctx = {
  kst : Kstate.t;
  prog : prog;
  global_addr : string -> int;  (** module global name -> address *)
  func_addr : string -> int;  (** module function name -> text address *)
  ext_addr : string -> int;  (** import name -> callable address *)
  call_ext : int -> int64 list -> int64;
      (** dispatch a call to an external (kernel) address *)
  guard_write : addr:int -> size:int -> unit;
  guard_indcall : target:int -> unit;
  on_entry : string -> unit;
  on_exit : string -> unit;
  hooks_enabled : bool;
  stack_base : int;
  stack_len : int;
  mutable stack_ptr : int;
  mutable fuel : int;
  mutable steps : int;
  mutable watchdog : bool;
      (** when set, fuel exhaustion raises [Fuel_exhausted] for the
          runtime to convert into a watchdog violation; otherwise it is
          a plain soft-lockup oops *)
  mutable cur_fn : string;  (** innermost executing function, for fault reports *)
  mutable pending_cycles : int;
      (** module cycles accumulated since the last flush (see
          {!flush_cycles}) *)
  compiled : (string, rfunc) Hashtbl.t;  (** per-function compile cache *)
  mutable fn_by_addr : (int, string) Hashtbl.t option;
      (** text address -> function name, built on first indirect
          intra-module call *)
}

exception Return_value of int64

exception Fuel_exhausted of string
(** Raised (module name) instead of [Kstate.Oops] when [watchdog] is
    set: the enclosing kernel→module wrapper owns the budget and turns
    exhaustion into a graceful quarantine instead of a crash. *)

let default_fuel = 50_000_000

let create ~kst ~prog ~global_addr ~func_addr ~ext_addr ~call_ext ~guard_write
    ~guard_indcall ~on_entry ~on_exit ~hooks_enabled ~stack_base ~stack_len =
  {
    kst;
    prog;
    global_addr;
    func_addr;
    ext_addr;
    call_ext;
    guard_write;
    guard_indcall;
    on_entry;
    on_exit;
    hooks_enabled;
    stack_base;
    stack_len;
    stack_ptr = stack_base;
    fuel = default_fuel;
    steps = 0;
    watchdog = false;
    cur_fn = "";
    pending_cycles = 0;
    compiled = Hashtbl.create 16;
    fn_by_addr = None;
  }

(** [flush_cycles ctx] charges the batched module cycles to the global
    clock.  Called automatically at every boundary where other code can
    observe {!Kcycles} (external calls, guards, hooks, interpreter
    exit); callers outside the interpreter never need it. *)
let flush_cycles ctx =
  if ctx.pending_cycles > 0 then begin
    Kcycles.charge ctx.kst.Kstate.cycles Kcycles.Module ctx.pending_cycles;
    ctx.pending_cycles <- 0
  end

let tick ctx =
  ctx.steps <- ctx.steps + 1;
  ctx.pending_cycles <- ctx.pending_cycles + 1;
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then begin
    flush_cycles ctx;
    if ctx.watchdog then raise (Fuel_exhausted ctx.prog.pname)
    else raise (Kstate.Oops (Printf.sprintf "soft lockup in module %s" ctx.prog.pname))
  end

let truncate w v =
  match w with
  | W64 -> v
  | W32 -> Int64.logand v 0xffff_ffffL
  | W16 -> Int64.logand v 0xffffL
  | W8 -> Int64.logand v 0xffL

let bits_of_width = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

(** Reinterpret the low [w] bits of [v] as a signed value (narrow
    values circulate zero-extended; signed compares must not). *)
let sign_extend w v =
  match w with
  | W64 -> v
  | _ ->
      let sh = 64 - bits_of_width w in
      Int64.shift_right (Int64.shift_left v sh) sh

let bool_ b = if b then 1L else 0L

let eval_binop op w a b =
  let arith f = truncate w (f a b) in
  (* Shift amounts wrap at the operation width, as on x86; signed
     compares sign-extend both operands to the width first. *)
  let shift_mask = bits_of_width w - 1 in
  let scmp () = Int64.compare (sign_extend w a) (sign_extend w b) in
  match op with
  | Add -> arith Int64.add
  | Sub -> arith Int64.sub
  | Mul -> arith Int64.mul
  | Udiv ->
      if b = 0L then raise (Kstate.Oops "divide error") else arith Int64.unsigned_div
  | Urem ->
      if b = 0L then raise (Kstate.Oops "divide error") else arith Int64.unsigned_rem
  | Band -> arith Int64.logand
  | Bor -> arith Int64.logor
  | Bxor -> arith Int64.logxor
  | Shl -> truncate w (Int64.shift_left a (Int64.to_int b land shift_mask))
  | Lshr ->
      truncate w
        (Int64.shift_right_logical (truncate w a) (Int64.to_int b land shift_mask))
  | Eq -> bool_ (Int64.equal a b)
  | Ne -> bool_ (not (Int64.equal a b))
  | Lt -> bool_ (scmp () < 0)
  | Le -> bool_ (scmp () <= 0)
  | Gt -> bool_ (scmp () > 0)
  | Ge -> bool_ (scmp () >= 0)
  | Ult -> bool_ (Int64.unsigned_compare a b < 0)

(** An activation frame: locals live in [slots]; [bound] distinguishes
    a never-assigned local (access is an oops) from a zero one. *)
type frame = { slots : int64 array; bound : bool array }

(* ------------------------------------------------------------------ *)
(* Compilation: AST -> internal form, once per function.               *)

type slotmap = { stbl : (string, int) Hashtbl.t; mutable snext : int }

let slot_of sm name =
  match Hashtbl.find_opt sm.stbl name with
  | Some i -> i
  | None ->
      let i = sm.snext in
      sm.snext <- i + 1;
      Hashtbl.replace sm.stbl name i;
      i

let resolve f name = match f name with a -> Raddr (Int64.of_int a) | exception e -> Rfail e

let rec compile_expr ctx sm (e : expr) : rexpr =
  match e with
  | Const n -> Rconst n
  | Var name -> Rvar (slot_of sm name, name)
  | Glob name -> resolve ctx.global_addr name
  | Funcaddr name -> resolve ctx.func_addr name
  | Extaddr name -> resolve ctx.ext_addr name
  | Load (w, ea) -> Rload (bytes_of_width w, compile_expr ctx sm ea)
  | Binop (op, w, a, b) -> Rbinop (op, w, compile_expr ctx sm a, compile_expr ctx sm b)
  | Call (callee, args) -> (
      let rargs = Array.of_list (List.map (compile_expr ctx sm) args) in
      match callee with
      | Direct name -> Rcall_direct (name, rargs)
      | Ext name -> (
          match ctx.ext_addr name with
          | a -> Rcall_ext (a, rargs)
          | exception e -> Rcall_ext_fail (e, rargs))
      | Indirect te -> Rcall_ind (compile_expr ctx sm te, rargs))

let rec compile_stmt ctx sm (s : stmt) : rstmt =
  match s with
  | Let (name, e) ->
      let re = compile_expr ctx sm e in
      Rlet (slot_of sm name, re)
  | Alloca (name, n) -> Ralloca (slot_of sm name, (n + 15) land lnot 15)
  | Store (w, ea, ev) ->
      Rstore (bytes_of_width w, compile_expr ctx sm ea, compile_expr ctx sm ev)
  | If (c, t, e) ->
      Rif (compile_expr ctx sm c, compile_stmts ctx sm t, compile_stmts ctx sm e)
  | While (c, b) -> Rwhile (compile_expr ctx sm c, compile_stmts ctx sm b)
  | Expr e -> Rexpr (compile_expr ctx sm e)
  | Return e -> Rreturn (compile_expr ctx sm e)
  | Guard (Gwrite (w, ea)) -> Rguard_write (bytes_of_width w, compile_expr ctx sm ea)
  | Guard (Gindcall ea) -> Rguard_ind (compile_expr ctx sm ea)

and compile_stmts ctx sm stmts = Array.of_list (List.map (compile_stmt ctx sm) stmts)

let compile_func ctx (f : func) : rfunc =
  let sm = { stbl = Hashtbl.create 16; snext = 0 } in
  let param_slots = Array.of_list (List.map (slot_of sm) f.params) in
  let body = compile_stmts ctx sm f.body in
  { rf_name = f.fname; rf_param_slots = param_slots; rf_nslots = sm.snext; rf_body = body }

let find_rfunc ctx fname =
  match Hashtbl.find_opt ctx.compiled fname with
  | Some rf -> Some rf
  | None -> (
      match find_func ctx.prog fname with
      | None -> None
      | Some f ->
          let rf = compile_func ctx f in
          Hashtbl.replace ctx.compiled fname rf;
          Some rf)

(** Text address -> function name, replacing the per-call list scan of
    [prog.funcs].  First-match-wins, as the scan was. *)
let addr_index ctx =
  match ctx.fn_by_addr with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 16 in
      List.iter
        (fun (f : func) ->
          let a = ctx.func_addr f.fname in
          if not (Hashtbl.mem t a) then Hashtbl.replace t a f.fname)
        ctx.prog.funcs;
      ctx.fn_by_addr <- Some t;
      t

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let unbound ctx name =
  raise (Kstate.Oops (Printf.sprintf "module %s: unbound local %s" ctx.prog.pname name))

let rec eval ctx fr (e : rexpr) : int64 =
  tick ctx;
  match e with
  | Rconst n -> n
  | Rvar (i, name) -> if fr.bound.(i) then fr.slots.(i) else unbound ctx name
  | Raddr a -> a
  | Rfail e -> raise e
  | Rload (size, ea) ->
      let addr = Int64.to_int (eval ctx fr ea) in
      Kmem.read ctx.kst.Kstate.mem ~addr ~size
  | Rbinop (op, w, a, b) ->
      let va = eval ctx fr a in
      let vb = eval ctx fr b in
      eval_binop op w va vb
  | Rcall_direct (name, rargs) -> invoke ctx name (eval_args ctx fr rargs)
  | Rcall_ext (addr, rargs) ->
      let vargs = eval_args ctx fr rargs in
      flush_cycles ctx;
      ctx.call_ext addr vargs
  | Rcall_ext_fail (e, rargs) ->
      ignore (eval_args ctx fr rargs);
      raise e
  | Rcall_ind (te, rargs) ->
      (* The rewriter places a Gindcall guard immediately before any
         indirect call; by the time we get here the target is approved
         (or we are running unguarded stock/xfi code). *)
      let target = Int64.to_int (eval ctx fr te) in
      call_address ctx target (eval_args ctx fr rargs)

and eval_args ctx fr rargs =
  (* Left-to-right, as [List.map eval] evaluated the AST arguments. *)
  let n = Array.length rargs in
  let rec go i = if i >= n then [] else let v = eval ctx fr rargs.(i) in v :: go (i + 1) in
  go 0

and call_address ctx target vargs =
  (* Intra-module function addresses run in the interpreter; everything
     else goes out through the external dispatcher. *)
  match Hashtbl.find_opt (addr_index ctx) target with
  | Some fname -> invoke ctx fname vargs
  | None ->
      flush_cycles ctx;
      ctx.call_ext target vargs

and invoke ctx fname vargs =
  match find_rfunc ctx fname with
  | None ->
      raise (Kstate.Oops (Printf.sprintf "module %s: no function %s" ctx.prog.pname fname))
  | Some rf ->
      let nparams = Array.length rf.rf_param_slots in
      let nargs = List.length vargs in
      if nparams <> nargs then
        raise
          (Kstate.Oops
             (Printf.sprintf "module %s: %s arity mismatch (%d args, want %d)"
                ctx.prog.pname fname nargs nparams));
      let fr =
        { slots = Array.make rf.rf_nslots 0L; bound = Array.make rf.rf_nslots false }
      in
      List.iteri
        (fun i a ->
          let s = rf.rf_param_slots.(i) in
          fr.slots.(s) <- a;
          fr.bound.(s) <- true)
        vargs;
      let saved_sp = ctx.stack_ptr in
      if ctx.hooks_enabled then begin
        flush_cycles ctx;
        ctx.on_entry fname
      end;
      if !Trace.on then begin
        flush_cycles ctx;
        Trace.emit (Trace.Mod_call fname)
      end;
      let prev_fn = ctx.cur_fn in
      ctx.cur_fn <- fname;
      let finish () =
        (* Frame teardown is unconditional — including the exception
           path, where a quarantined fault must not leak the faulting
           frame's alloca space (repeated -EFAULT containment would
           otherwise manufacture a spurious stack overflow). *)
        ctx.cur_fn <- prev_fn;
        ctx.stack_ptr <- saved_sp;
        if ctx.hooks_enabled then begin
          flush_cycles ctx;
          ctx.on_exit fname
        end
      in
      (match exec_block ctx fr rf.rf_body with
      | () ->
          finish ();
          0L
      | exception Return_value v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

and exec_block ctx fr stmts =
  for i = 0 to Array.length stmts - 1 do
    exec ctx fr stmts.(i)
  done

and exec ctx fr (s : rstmt) : unit =
  tick ctx;
  match s with
  | Rlet (i, e) ->
      let v = eval ctx fr e in
      fr.slots.(i) <- v;
      fr.bound.(i) <- true
  | Ralloca (i, aligned) ->
      if ctx.stack_ptr + aligned > ctx.stack_base + ctx.stack_len then
        raise (Kstate.Oops (Printf.sprintf "module %s: stack overflow" ctx.prog.pname));
      let addr = ctx.stack_ptr in
      ctx.stack_ptr <- ctx.stack_ptr + aligned;
      fr.slots.(i) <- Int64.of_int addr;
      fr.bound.(i) <- true
  | Rstore (size, ea, ev) ->
      let addr = Int64.to_int (eval ctx fr ea) in
      let value = eval ctx fr ev in
      Kmem.write ctx.kst.Kstate.mem ~addr ~size value
  | Rif (c, t, e) ->
      if eval ctx fr c <> 0L then exec_block ctx fr t else exec_block ctx fr e
  | Rwhile (c, b) ->
      while eval ctx fr c <> 0L do
        exec_block ctx fr b
      done
  | Rexpr e -> ignore (eval ctx fr e)
  | Rreturn e -> raise (Return_value (eval ctx fr e))
  | Rguard_write (size, ea) ->
      let addr = Int64.to_int (eval ctx fr ea) in
      flush_cycles ctx;
      ctx.guard_write ~addr ~size
  | Rguard_ind ea ->
      let target = Int64.to_int (eval ctx fr ea) in
      flush_cycles ctx;
      ctx.guard_indcall ~target

(** [run ctx fname args] invokes module function [fname]. *)
let run ctx fname args =
  match invoke ctx fname args with
  | r ->
      flush_cycles ctx;
      r
  | exception e ->
      flush_cycles ctx;
      raise e

(** [refuel ctx] resets the runaway-loop budget (long benchmarks). *)
let refuel ?(fuel = default_fuel) ctx = ctx.fuel <- fuel

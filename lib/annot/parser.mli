(** Recursive-descent parser for the annotation language of paper
    Figure 2.  Annotations are whitespace-separated clause sequences:

    {v
    principal(pcidev)
    pre(copy(ref(struct pci_dev), pcidev))
    post(if (return < 0) transfer(ref(struct pci_dev), pcidev))
    pre(transfer(skb_caps(skb)))
    pre(check(write, lock, 4))
    v} *)

type error = {
  err_msg : string;  (** what the parser expected or rejected *)
  err_pos : int option;  (** byte offset into the annotation source *)
  err_token : string option;  (** the offending token text, if any *)
}

exception Parse_error of error
(** Raised internally; [parse] catches it and returns [Error]. *)

val error_to_string : ?src:string -> error -> string
(** Render an error, optionally prefixed with the annotation source it
    came from: [annotation "...": expected ( at offset 12 (near ",")]. *)

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.t, error) result

val parse_exn : string -> Ast.t
(** Raises [Invalid_argument] with the rendered parse error. *)

(** Recursive-descent parser for the annotation language of Figure 2.

    Annotations are written as strings attached to kernel exports and
    function-pointer slot types, e.g.:

    {v
    principal(pcidev)
    pre(copy(ref(struct pci_dev), pcidev))
    post(if (return < 0) transfer(ref(struct pci_dev), pcidev))
    pre(transfer(skb_caps(skb)))
    pre(check(write, lock, 4))
    v}

    Parse failures come back as a structured {!error} carrying the byte
    offset and the offending token, so the static checker can point at
    the exact spot in the annotation instead of reporting a generic
    failure. *)

open Ast

type token =
  | Tident of string
  | Tint of int64
  | Tlparen
  | Trparen
  | Tcomma
  | Top of string  (** ==, !=, <, <=, >, >=, +, -, *, &&, || *)

type error = {
  err_msg : string;  (** what the parser expected or rejected *)
  err_pos : int option;  (** byte offset into the annotation source *)
  err_token : string option;  (** the offending token text, if any *)
}

exception Parse_error of error

let token_text = function
  | Tident s -> s
  | Tint n -> Int64.to_string n
  | Tlparen -> "("
  | Trparen -> ")"
  | Tcomma -> ","
  | Top o -> o

let fail_at ?pos ?token fmt =
  Format.kasprintf
    (fun s -> raise (Parse_error { err_msg = s; err_pos = pos; err_token = token }))
    fmt

let error_to_string ?src e =
  let where =
    match (e.err_pos, e.err_token) with
    | Some p, Some t -> Printf.sprintf " at offset %d (near %S)" p t
    | Some p, None -> Printf.sprintf " at offset %d" p
    | None, Some t -> Printf.sprintf " (near %S)" t
    | None, None -> ""
  in
  match src with
  | Some s -> Printf.sprintf "annotation %S: %s%s" s e.err_msg where
  | None -> Printf.sprintf "%s%s" e.err_msg where

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* The tokenizer pairs every token with its starting byte offset. *)
let tokenize (s : string) : (token * int) list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := (t, !i) :: !toks in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit Tlparen; incr i)
    else if c = ')' then (emit Trparen; incr i)
    else if c = ',' then (emit Tcomma; incr i)
    else if c = '=' && peek 1 = Some '=' then (emit (Top "=="); i := !i + 2)
    else if c = '!' && peek 1 = Some '=' then (emit (Top "!="); i := !i + 2)
    else if c = '<' && peek 1 = Some '=' then (emit (Top "<="); i := !i + 2)
    else if c = '>' && peek 1 = Some '=' then (emit (Top ">="); i := !i + 2)
    else if c = '&' && peek 1 = Some '&' then (emit (Top "&&"); i := !i + 2)
    else if c = '|' && peek 1 = Some '|' then (emit (Top "||"); i := !i + 2)
    else if c = '<' || c = '>' || c = '+' || c = '-' || c = '*' then
      (emit (Top (String.make 1 c)); incr i)
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      let j = ref !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        j := !i + 2;
        while !j < n && (is_ident_char s.[!j]) do incr j done
      end
      else while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      let text = String.sub s start (!j - start) in
      (match Int64.of_string_opt text with
      | Some v -> toks := (Tint v, start) :: !toks
      | None -> fail_at ~pos:start ~token:text "bad integer literal %S" text);
      i := !j
    end
    else if is_ident_char c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      toks := (Tident (String.sub s start (!j - start)), start) :: !toks;
      i := !j
    end
    else fail_at ~pos:!i ~token:(String.make 1 c) "unexpected character %C" c
  done;
  List.rev !toks

type state = { mutable toks : (token * int) list; src_len : int }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

(* Error helpers that know where the parse stopped. *)
let fail_here st fmt =
  match st.toks with
  | (t, p) :: _ -> fail_at ~pos:p ~token:(token_text t) fmt
  | [] -> fail_at ~pos:st.src_len fmt

let advance st =
  match st.toks with
  | [] -> fail_here st "unexpected end of annotation"
  | _ :: r -> st.toks <- r

let expect st t =
  match st.toks with
  | (x, _) :: r when x = t -> st.toks <- r
  | (x, _) :: _ -> fail_here st "expected %s, found %s" (token_text t) (token_text x)
  | [] -> fail_here st "expected %s, found end of annotation" (token_text t)

let ident st =
  match st.toks with
  | (Tident s, _) :: r ->
      st.toks <- r;
      s
  | _ -> fail_here st "expected identifier"

(* c-expr precedence climbing *)
let rec parse_or st =
  let a = parse_and st in
  match peek st with
  | Some (Top "||") ->
      advance st;
      Cbin (Oor, a, parse_or st)
  | _ -> a

and parse_and st =
  let a = parse_cmp st in
  match peek st with
  | Some (Top "&&") ->
      advance st;
      Cbin (Oand, a, parse_and st)
  | _ -> a

and parse_cmp st =
  let a = parse_add st in
  match peek st with
  | Some (Top (("==" | "!=" | "<" | "<=" | ">" | ">=") as o)) ->
      advance st;
      let b = parse_add st in
      let op =
        match o with
        | "==" -> Oeq
        | "!=" -> One
        | "<" -> Olt
        | "<=" -> Ole
        | ">" -> Ogt
        | _ -> Oge
      in
      Cbin (op, a, b)
  | _ -> a

and parse_add st =
  let rec go a =
    match peek st with
    | Some (Top "+") ->
        advance st;
        go (Cbin (Oadd, a, parse_mul st))
    | Some (Top "-") ->
        advance st;
        go (Cbin (Osub, a, parse_mul st))
    | _ -> a
  in
  go (parse_mul st)

and parse_mul st =
  let rec go a =
    match peek st with
    | Some (Top "*") ->
        advance st;
        go (Cbin (Omul, a, parse_atom st))
    | _ -> a
  in
  go (parse_atom st)

and parse_atom st =
  match st.toks with
  | (Tint n, _) :: r ->
      st.toks <- r;
      Cint n
  | (Top "-", _) :: r ->
      st.toks <- r;
      Cneg (parse_atom st)
  | (Tident "return", _) :: r ->
      st.toks <- r;
      Creturn
  | (Tident "sizeof", _) :: r ->
      st.toks <- r;
      expect st Tlparen;
      (match ident st with
      | "struct" ->
          let s = ident st in
          expect st Trparen;
          Csizeof s
      | other -> fail_here st "sizeof expects 'struct <name>', got %s" other)
  | (Tident x, _) :: r ->
      st.toks <- r;
      Cparam x
  | (Tlparen, _) :: r ->
      st.toks <- r;
      let e = parse_or st in
      expect st Trparen;
      e
  | _ -> fail_here st "expected expression"

let parse_captype st name =
  match name with
  | "write" -> Write
  | "call" -> Call
  | "ref" ->
      expect st Tlparen;
      (match ident st with
      | "struct" ->
          let s = ident st in
          expect st Trparen;
          Ref s
      | (* allow special (non-struct) REF types per Guideline 3 *) other ->
          expect st Trparen;
          Ref other)
  | other -> fail_here st "unknown capability type %s" other

(* caplist — already inside the enclosing parens of copy/transfer/check *)
let parse_caplist st =
  match st.toks with
  | (Tident (("write" | "call" | "ref") as ct), _) :: r ->
      st.toks <- r;
      let c = parse_captype st ct in
      expect st Tcomma;
      let ptr = parse_or st in
      let size =
        match peek st with
        | Some Tcomma ->
            advance st;
            Some (parse_or st)
        | _ -> None
      in
      Inline (c, ptr, size)
  | (Tident iter, _) :: r ->
      st.toks <- r;
      expect st Tlparen;
      let rec args acc =
        match peek st with
        | Some Trparen ->
            advance st;
            List.rev acc
        | _ -> (
            let e = parse_or st in
            match peek st with
            | Some Tcomma ->
                advance st;
                args (e :: acc)
            | _ ->
                expect st Trparen;
                List.rev (e :: acc))
      in
      Iter (iter, args [])
  | _ -> fail_here st "expected capability list"

let rec parse_action st =
  match st.toks with
  | (Tident "copy", _) :: r ->
      st.toks <- r;
      expect st Tlparen;
      let cl = parse_caplist st in
      expect st Trparen;
      Copy cl
  | (Tident "transfer", _) :: r ->
      st.toks <- r;
      expect st Tlparen;
      let cl = parse_caplist st in
      expect st Trparen;
      Transfer cl
  | (Tident "check", _) :: r ->
      st.toks <- r;
      expect st Tlparen;
      let cl = parse_caplist st in
      expect st Trparen;
      Check cl
  | (Tident "if", _) :: r ->
      st.toks <- r;
      expect st Tlparen;
      let c = parse_or st in
      expect st Trparen;
      let a = parse_action st in
      Cif (c, a)
  | _ -> fail_here st "expected action (copy/transfer/check/if)"

let parse_clause st =
  match st.toks with
  | (Tident "pre", _) :: r ->
      st.toks <- r;
      expect st Tlparen;
      let a = parse_action st in
      expect st Trparen;
      Pre a
  | (Tident "post", _) :: r ->
      st.toks <- r;
      expect st Tlparen;
      let a = parse_action st in
      expect st Trparen;
      Post a
  | (Tident "principal", _) :: r -> (
      st.toks <- r;
      expect st Tlparen;
      match st.toks with
      | (Tident "global", _) :: r2 ->
          st.toks <- r2;
          expect st Trparen;
          Principal Pglobal
      | (Tident "shared", _) :: r2 ->
          st.toks <- r2;
          expect st Trparen;
          Principal Pshared
      | _ ->
          let e = parse_or st in
          expect st Trparen;
          Principal (Pexpr e))
  | _ -> fail_here st "expected clause (pre/post/principal)"

(** [parse s] parses a whitespace-separated sequence of clauses. *)
let parse (s : string) : (t, error) result =
  try
    let st = { toks = tokenize s; src_len = String.length s } in
    let rec clauses acc =
      match st.toks with [] -> List.rev acc | _ -> clauses (parse_clause st :: acc)
    in
    Ok (clauses [])
  with Parse_error e -> Error e

let parse_exn s =
  match parse s with Ok t -> t | Error e -> invalid_arg (error_to_string ~src:s e)

(** Registry of annotated function-pointer slot types: a name such as
    ["proto_ops.ioctl"], its parameter names, and its parsed annotation
    with canonical hash.  Kernel indirect-call sites pass the slot-type
    name; the runtime resolves the expected hash and contract here. *)

type slot = {
  sl_name : string;
  sl_params : string list;
  sl_annot : Ast.t;
  sl_ahash : int64;
}

type t = { slots : (string, slot) Hashtbl.t }

val create : unit -> t

exception Unknown_slot of string

type error =
  | Duplicate of string  (** slot-type name already defined *)
  | Parse of { name : string; src : string; err : Parser.error }
      (** the [~annot_src] convenience form failed to parse *)
  | Invalid of { name : string; msg : string }
      (** parsed, but [Ast.validate] rejected it against the params *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val ok_exn : ('a, error) result -> 'a
(** Unwrap, raising [Invalid_argument] with the rendered error — for
    boot-time registration code where a bad built-in annotation is a
    programming bug. *)

val define : t -> name:string -> params:string list -> annot:Ast.t -> (slot, error) result
(** Register an already-parsed annotation.  Still validates against
    [params] (unknown parameter names, [return] in pre clauses) so
    every slot in the registry is internally consistent. *)

val define_src :
  t -> name:string -> params:string list -> annot_src:string -> (slot, error) result
(** Convenience wrapper that parses [annot_src] first. *)

val define_exn : t -> name:string -> params:string list -> annot_src:string -> slot
(** [define_src] + [ok_exn]. *)

val find : t -> string -> slot
val find_opt : t -> string -> slot option
val mem : t -> string -> bool
val ahash : t -> string -> int64
val all : t -> slot list
(** Sorted by name. *)

(** Registry of annotated function-pointer slot types.

    A {e slot type} names a function-pointer position in a kernel
    interface — e.g. ["proto_ops.ioctl"] or
    ["net_device_ops.ndo_start_xmit"] — together with its parameter
    names and its annotation set.  Kernel indirect-call sites pass the
    slot-type name; the LXFI runtime resolves it here to obtain the
    expected annotation hash and the contract to enforce around the
    call. *)

type slot = {
  sl_name : string;
  sl_params : string list;  (** parameter names, excluding the return value *)
  sl_annot : Ast.t;
  sl_ahash : int64;
}

type t = { slots : (string, slot) Hashtbl.t }

let create () = { slots = Hashtbl.create 64 }

exception Unknown_slot of string

type error =
  | Duplicate of string  (** slot-type name already defined *)
  | Parse of { name : string; src : string; err : Parser.error }
      (** the [~annot_src] convenience form failed to parse *)
  | Invalid of { name : string; msg : string }
      (** parsed, but [Ast.validate] rejected it against the params *)

let error_to_string = function
  | Duplicate name -> Printf.sprintf "duplicate slot type %s" name
  | Parse { name; src; err } ->
      Printf.sprintf "%s: %s" name (Parser.error_to_string ~src err)
  | Invalid { name; msg } -> Printf.sprintf "%s: invalid annotation: %s" name msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let ok_exn = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "Registry.define: %s" (error_to_string e))

(** [define t ~name ~params ~annot] registers an already-parsed slot
    type; validation against [params] still runs so a slot in the
    registry is always internally consistent. *)
let define t ~name ~params ~annot : (slot, error) result =
  if Hashtbl.mem t.slots name then Error (Duplicate name)
  else
    match Ast.validate ~params annot with
    | Error msg -> Error (Invalid { name; msg })
    | Ok () ->
        let s =
          {
            sl_name = name;
            sl_params = params;
            sl_annot = annot;
            sl_ahash = Hash.of_annot ~params annot;
          }
        in
        Hashtbl.replace t.slots name s;
        Ok s

(** Thin convenience that parses [annot_src] first. *)
let define_src t ~name ~params ~annot_src : (slot, error) result =
  match Parser.parse annot_src with
  | Error err -> Error (Parse { name; src = annot_src; err })
  | Ok annot -> define t ~name ~params ~annot

let define_exn t ~name ~params ~annot_src = ok_exn (define_src t ~name ~params ~annot_src)

let find t name =
  match Hashtbl.find_opt t.slots name with
  | Some s -> s
  | None -> raise (Unknown_slot name)

let find_opt t name = Hashtbl.find_opt t.slots name
let mem t name = Hashtbl.mem t.slots name
let ahash t name = (find t name).sl_ahash

let all t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.slots []
  |> List.sort (fun a b -> compare a.sl_name b.sl_name)

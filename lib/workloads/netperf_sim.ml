(** netperf over the simulated stack + instrumented e1000 driver — the
    Figure 12/13 reproduction (§8.4).

    The measured quantity is {e cycles per packet / per transaction} on
    the simulated single-core CPU, obtained by actually running the
    packet path: socket layer (cycle-charged kernel code) → qdisc →
    instrumented MIR e1000 → NIC model, and the NAPI path in reverse
    for RX.  Throughput and CPU utilization then follow from a
    calibrated analytic model of the paper's testbed:

    - a 3.2 GHz single core (Intel i3-550);
    - a switched gigabit link whose effective TCP ceilings match the
      paper's stock measurements (836 / 770 Mbit/s TX/RX — the
      testbed's own limits, not ours to re-derive);
    - the e1000's per-packet device/bus ceiling for small UDP frames
      (3.1 M pkt/s TX, 2.3 M pkt/s offered on RX);
    - netperf round-trip latency decomposed into network RTT plus
      local processing; the 1-switch configuration shrinks the RTT,
      which is exactly what makes LXFI's processing cost visible in
      the RR rows.

    Absolute numbers are model outputs; the reproduction targets are
    the paper's shapes: TCP throughput unchanged, UDP TX down ~35%
    with CPU pegged, UDP RX unchanged, CPU utilization up severalfold,
    and RR rates that suffer more as network latency shrinks.
    EXPERIMENTS.md discusses each row against the paper. *)

open Kernel_sim
open Kmodules

let cpu_hz = 3.2e9

(* Testbed ceilings (from the paper's stock rows). *)
let tcp_tx_ceiling_mbps = 836.
let tcp_rx_ceiling_mbps = 770.
let udp_tx_device_pps = 3.1e6
let udp_rx_offered_pps = 2.3e6

(* Socket-layer cost model: fixed per-call cycles plus per-byte copy +
   checksum cost, calibrated so the stock CPU column lands near the
   paper's. *)
let syscall_cycles = 110
let copy_cycles_per_byte = 2
let tcp_segment_cycles = 280
let udp_header_cycles = 70
let mss = 1448

(* RR latency model: network round trip plus remote-side processing
   (the far machine always runs stock Linux, as in the paper), plus a
   fixed scheduler wakeup on each side.  Guard work sits on the
   latency-critical path and is amplified by the pipeline/cache factor
   [rr_guard_amplification]: in a closed-loop RR test nothing overlaps
   the capability actions (the paper's own explanation for the
   1-switch results). *)
let rtt_multi_us = 88.
let rtt_1sw_us = 28.
let wakeup_us = 11.0
let rr_guard_amplification = 45.

type env = {
  sys : Ksys.t;
  nic : Nic.t;
  dev : int;  (** net_device address *)
  napi : int;
  irq : int;  (** the adapter's interrupt line *)
}

let setup (config : Lxfi.Config.t) : env =
  let sys = Ksys.boot config in
  let pcidev, nic = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let _h = Mod_common.install sys E1000.spec in
  let dev = Pci.pci_get_drvdata sys.Ksys.pci pcidev in
  {
    sys;
    nic;
    dev;
    napi = E1000.napi_addr sys ~pcidev;
    irq = Pci.irq sys.Ksys.pci pcidev;
  }

(** {1 Packet paths} *)

(* One UDP datagram through socket layer and driver. *)
let udp_send env ~len =
  let kst = env.sys.Ksys.kst in
  Kcycles.charge kst.Kstate.cycles Kcycles.Kernel
    (syscall_cycles + udp_header_cycles + (copy_cycles_per_byte * len));
  let skb = Skbuff.alloc kst len in
  Skbuff.set_dev kst skb env.dev;
  ignore (Netdev.dev_queue_xmit env.sys.Ksys.net skb)

(* One TCP message: segmentation into MSS-sized skbs. *)
let tcp_send env ~msg_len =
  let kst = env.sys.Ksys.kst in
  Kcycles.charge kst.Kstate.cycles Kcycles.Kernel
    (syscall_cycles + (copy_cycles_per_byte * msg_len));
  let rec segments remaining =
    if remaining > 0 then begin
      let seg = min mss remaining in
      Kcycles.charge kst.Kstate.cycles Kcycles.Kernel tcp_segment_cycles;
      let skb = Skbuff.alloc kst seg in
      Skbuff.set_dev kst skb env.dev;
      ignore (Netdev.dev_queue_xmit env.sys.Ksys.net skb);
      segments (remaining - seg)
    end
  in
  segments msg_len

let drain env = ignore (Nic.drain_tx env.nic)

(* Receive a burst: the NIC DMAs [count] frames, raises its interrupt,
   and the NAPI softirq polls the driver, which feeds netif_rx. *)
let rx_burst env ~count ~frame_len =
  let kst = env.sys.Ksys.kst in
  let injected = Nic.inject_rx env.nic ~count ~frame_len in
  (* hardirq: the kernel dispatches the module's registered handler,
     which schedules NAPI; the softirq then polls the driver *)
  let token = Lxfi.Runtime.irq_enter env.sys.Ksys.rt in
  ignore (Irqchip.raise_irq env.sys.Ksys.irq ~irq:env.irq);
  Lxfi.Runtime.irq_exit env.sys.Ksys.rt token;
  let polled = Netdev.poll_scheduled env.sys.Ksys.net ~budget:64 in
  (* per-packet socket delivery cost *)
  Kcycles.charge kst.Kstate.cycles Kcycles.Kernel
    (polled * (udp_header_cycles + (copy_cycles_per_byte * frame_len)));
  ignore injected;
  polled

(** {1 Measurement} *)

type measure = {
  m_cycles_per_unit : float;  (** cycles per packet (streams) or per txn (RR) *)
  m_guard_cycles_per_unit : float;
  m_stats : Lxfi.Stats.snapshot;  (** guard counts over the run *)
  m_units : int;
}

let measure env (f : unit -> int) : measure =
  let kst = env.sys.Ksys.kst in
  (match (Lxfi.Runtime.module_named env.sys.Ksys.rt "e1000") with
  | Some mi -> Option.iter Mir.Interp.refuel mi.Lxfi.Runtime.mi_ctx
  | None -> ());
  let c0 = Kcycles.snapshot kst.Kstate.cycles in
  let s0 = Lxfi.Stats.snapshot env.sys.Ksys.rt.Lxfi.Runtime.stats in
  let units = f () in
  let dc = Kcycles.since kst.Kstate.cycles c0 in
  let ds = Lxfi.Stats.since env.sys.Ksys.rt.Lxfi.Runtime.stats s0 in
  {
    m_cycles_per_unit = float_of_int (Kcycles.total dc) /. float_of_int units;
    m_guard_cycles_per_unit = float_of_int (Kcycles.guard dc) /. float_of_int units;
    m_stats = ds;
    m_units = units;
  }

let measure_udp_tx env ~pkts =
  measure env (fun () ->
      for i = 1 to pkts do
        udp_send env ~len:64;
        if i mod 16 = 0 then drain env
      done;
      drain env;
      pkts)

let measure_udp_rx env ~pkts =
  measure env (fun () ->
      let received = ref 0 in
      while !received < pkts do
        received := !received + rx_burst env ~count:32 ~frame_len:64
      done;
      !received)

let measure_tcp_tx env ~msgs ~msg_len =
  measure env (fun () ->
      for i = 1 to msgs do
        tcp_send env ~msg_len;
        if i mod 2 = 0 then drain env
      done;
      drain env;
      msgs * ((msg_len + mss - 1) / mss))

let measure_tcp_rx env ~pkts =
  (* Inbound segments arrive in NAPI bursts; socket-layer cost uses the
     full segment size. *)
  measure env (fun () ->
      let received = ref 0 in
      while !received < pkts do
        received := !received + rx_burst env ~count:32 ~frame_len:1448
      done;
      !received)

(* One request/response transaction: send a small packet, receive a
   small packet. *)
let measure_rr env ~txns ~tcp =
  measure env (fun () ->
      for _ = 1 to txns do
        if tcp then
          Kcycles.charge env.sys.Ksys.kst.Kstate.cycles Kcycles.Kernel 2200
            (* TCP state machine + ACK processing per txn *)
        else ();
        udp_send env ~len:64;
        drain env;
        ignore (rx_burst env ~count:1 ~frame_len:64)
      done;
      txns)

(** {1 The analytic model} *)

type row = {
  r_test : string;
  r_unit : string;
  r_stock : float;
  r_lxfi : float;
  r_stock_cpu : float;  (** fraction, 0..1 *)
  r_lxfi_cpu : float;
}

let stream_row ~test ~unit_ ~(ceiling : float) ~(per_unit : [ `Pkts | `Mbps of int ])
    (stock : measure) (lxfi : measure) : row =
  let rate m =
    (* units/sec the CPU can sustain *)
    let cpu_rate = cpu_hz /. m.m_cycles_per_unit in
    min ceiling cpu_rate
  in
  let cpu m r = min 1.0 (r *. m.m_cycles_per_unit /. cpu_hz) in
  let to_unit r =
    match per_unit with
    | `Pkts -> r
    | `Mbps bytes_per_pkt -> r *. float_of_int bytes_per_pkt *. 8. /. 1e6
  in
  let rs = rate stock and rl = rate lxfi in
  {
    r_test = test;
    r_unit = unit_;
    r_stock = to_unit rs;
    r_lxfi = to_unit rl;
    r_stock_cpu = cpu stock rs;
    r_lxfi_cpu = cpu lxfi rl;
  }

let rr_row ~test ~rtt_us (stock : measure) (lxfi : measure) : row =
  let period m ~amplify =
    let proc_us = m.m_cycles_per_unit /. cpu_hz *. 1e6 in
    let guard_us = m.m_guard_cycles_per_unit /. cpu_hz *. 1e6 in
    rtt_us +. (2. *. wakeup_us) +. proc_us
    +. (if amplify then (rr_guard_amplification -. 1.) *. guard_us else 0.)
  in
  let tps m ~amplify = 1e6 /. period m ~amplify in
  let cpu m t = min 1.0 (t *. (m.m_cycles_per_unit +. (wakeup_us /. 1e6 *. cpu_hz)) /. cpu_hz) in
  let ts = tps stock ~amplify:false and tl = tps lxfi ~amplify:true in
  {
    r_test = test;
    r_unit = "Tx/sec";
    r_stock = ts;
    r_lxfi = tl;
    r_stock_cpu = cpu stock ts;
    r_lxfi_cpu = cpu lxfi tl;
  }

(** [figure12 ?quick ()] runs all eight netperf rows under stock and
    LXFI and returns them in the paper's order. *)
let figure12 ?(pkts = 4000) () : row list =
  let stock_env = setup Lxfi.Config.stock in
  let lxfi_env = setup Lxfi.Config.lxfi in
  let both f = (f stock_env, f lxfi_env) in
  (* TCP streams: Mbit/s at MSS-sized packets *)
  let tcp_tx_s, tcp_tx_l = both (fun e -> measure_tcp_tx e ~msgs:(pkts / 8) ~msg_len:16384) in
  let tcp_rx_s, tcp_rx_l = both (fun e -> measure_tcp_rx e ~pkts) in
  let udp_tx_s, udp_tx_l = both (fun e -> measure_udp_tx e ~pkts) in
  let udp_rx_s, udp_rx_l = both (fun e -> measure_udp_rx e ~pkts) in
  let tcp_rr_s, tcp_rr_l = both (fun e -> measure_rr e ~txns:(pkts / 8) ~tcp:true) in
  let udp_rr_s, udp_rr_l = both (fun e -> measure_rr e ~txns:(pkts / 8) ~tcp:false) in
  [
    stream_row ~test:"TCP_STREAM TX" ~unit_:"Mbit/s"
      ~ceiling:(tcp_tx_ceiling_mbps *. 1e6 /. 8. /. float_of_int mss)
      ~per_unit:(`Mbps mss) tcp_tx_s tcp_tx_l;
    stream_row ~test:"TCP_STREAM RX" ~unit_:"Mbit/s"
      ~ceiling:(tcp_rx_ceiling_mbps *. 1e6 /. 8. /. float_of_int mss)
      ~per_unit:(`Mbps mss) tcp_rx_s tcp_rx_l;
    stream_row ~test:"UDP_STREAM TX" ~unit_:"pkt/s" ~ceiling:udp_tx_device_pps
      ~per_unit:`Pkts udp_tx_s udp_tx_l;
    stream_row ~test:"UDP_STREAM RX" ~unit_:"pkt/s" ~ceiling:udp_rx_offered_pps
      ~per_unit:`Pkts udp_rx_s udp_rx_l;
    rr_row ~test:"TCP_RR" ~rtt_us:rtt_multi_us tcp_rr_s tcp_rr_l;
    rr_row ~test:"UDP_RR" ~rtt_us:rtt_multi_us udp_rr_s udp_rr_l;
    rr_row ~test:"TCP_RR (1-switch)" ~rtt_us:rtt_1sw_us tcp_rr_s tcp_rr_l;
    rr_row ~test:"UDP_RR (1-switch)" ~rtt_us:rtt_1sw_us udp_rr_s udp_rr_l;
  ]

(** {1 Figure 13: guard breakdown on the UDP TX path} *)

type guard_row = {
  g_type : string;
  g_per_packet : float;
  g_paper_per_packet : float;  (** the paper's Figure 13 column *)
}

let figure13 ?(pkts = 4000) () : guard_row list * measure =
  let env = setup Lxfi.Config.lxfi in
  let m = measure_udp_tx env ~pkts in
  let per c = float_of_int c /. float_of_int m.m_units in
  let s = m.m_stats in
  ( [
      {
        g_type = "Annotation action";
        g_per_packet = per s.Lxfi.Stats.s_annotation_actions;
        g_paper_per_packet = 13.5;
      };
      {
        g_type = "Function entry";
        g_per_packet = per s.Lxfi.Stats.s_fn_entry;
        g_paper_per_packet = 7.1;
      };
      {
        g_type = "Function exit";
        g_per_packet = per s.Lxfi.Stats.s_fn_exit;
        g_paper_per_packet = 7.1;
      };
      {
        g_type = "Mem-write check";
        g_per_packet = per s.Lxfi.Stats.s_mem_write_checks;
        g_paper_per_packet = 28.8;
      };
      {
        g_type = "Kernel ind-call all";
        g_per_packet = per s.Lxfi.Stats.s_kernel_indcall_all;
        g_paper_per_packet = 9.2;
      };
      {
        g_type = "Kernel ind-call checked";
        g_per_packet = per s.Lxfi.Stats.s_kernel_indcall_checked;
        g_paper_per_packet = 3.1;
      };
      (* Enforcement activity behind the guards (no per-guard column in
         the paper's Figure 13; [nan] renders as "-"). *)
      {
        g_type = "Caps granted";
        g_per_packet = per s.Lxfi.Stats.s_caps_granted;
        g_paper_per_packet = Float.nan;
      };
      {
        g_type = "Caps revoked";
        g_per_packet = per s.Lxfi.Stats.s_caps_revoked;
        g_paper_per_packet = Float.nan;
      };
      {
        g_type = "Principal switches";
        g_per_packet = per s.Lxfi.Stats.s_principal_switches;
        g_paper_per_packet = Float.nan;
      };
      {
        g_type = "Violations";
        g_per_packet = per s.Lxfi.Stats.s_violations;
        g_paper_per_packet = Float.nan;
      };
      {
        g_type = "Quarantines";
        g_per_packet = per s.Lxfi.Stats.s_quarantines;
        g_paper_per_packet = Float.nan;
      };
      {
        g_type = "Escalations";
        g_per_packet = per s.Lxfi.Stats.s_escalations;
        g_paper_per_packet = Float.nan;
      };
      {
        g_type = "Watchdog expiries";
        g_per_packet = per s.Lxfi.Stats.s_watchdog_expiries;
        g_paper_per_packet = Float.nan;
      };
      {
        g_type = "Caps dropped";
        g_per_packet = per s.Lxfi.Stats.s_caps_dropped;
        g_paper_per_packet = Float.nan;
      };
      {
        g_type = "Flow violations";
        g_per_packet = per s.Lxfi.Stats.s_flow_violations;
        g_paper_per_packet = Float.nan;
      };
    ],
    m )

(** Writer-set ablation (§8.4: the fast path eliminates ~2/3 of
    indirect-call checks): fraction of kernel ind-calls elided with
    tracking on, and the checked count with it off. *)
type ws_ablation = {
  ws_on_elided_fraction : float;
  ws_on_checked : float;  (** checks per packet with tracking *)
  ws_off_checked : float;  (** checks per packet without *)
}

let writer_set_ablation ?(pkts = 2000) () : ws_ablation =
  let on = measure_udp_tx (setup Lxfi.Config.lxfi) ~pkts in
  let off =
    measure_udp_tx
      (setup { Lxfi.Config.lxfi with Lxfi.Config.writer_set_tracking = false })
      ~pkts
  in
  let frac (s : Lxfi.Stats.snapshot) =
    float_of_int s.Lxfi.Stats.s_kernel_indcall_elided
    /. float_of_int (max 1 s.Lxfi.Stats.s_kernel_indcall_all)
  in
  let per (m : measure) c = float_of_int c /. float_of_int m.m_units in
  {
    ws_on_elided_fraction = frac on.m_stats;
    ws_on_checked = per on on.m_stats.Lxfi.Stats.s_kernel_indcall_checked;
    ws_off_checked = per off off.m_stats.Lxfi.Stats.s_kernel_indcall_checked;
  }

(** Driver for the static checker: boot the kernel, build the checker
    environment from the live runtime, and run the annotation lint and
    capability-flow pass over the declared API surface and the module
    corpus — without loading (and hence without instrumenting or
    running) anything.  This is what `lxfi_sim check` and the CI check
    job execute; [broken_demo] is the deliberately-bad module that
    proves the checker actually rejects things. *)

open Kmodules

type report = {
  r_scope : string;  (** "catalog", a module name, or "broken-demo" *)
  r_interface : Check.Finding.t list;
      (** registry + kexport lint findings ([--all] only) *)
  r_modules : (string * Check.Finding.t list) list;
      (** per-module capability-flow findings *)
  r_summary : Check.Checker.summary;  (** all findings, sorted *)
}

let summarize ~scope ~interface ~modules =
  {
    r_scope = scope;
    r_interface = interface;
    r_modules = modules;
    r_summary =
      Check.Checker.summarize (interface @ List.concat_map snd modules);
  }

let has_errors r = not (Check.Checker.ok r.r_summary)

(** Check the shipped corpus.  [only] restricts to one module (no
    interface lint — the module is judged against the interfaces as
    they are); [None] checks the whole API surface plus every module. *)
let check_catalog ?only () : report =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let env = Lxfi.Loader.check_env sys.Ksys.rt in
  match only with
  | Some name -> (
      match Catalog.find name with
      | None -> invalid_arg (Printf.sprintf "unknown module %s" name)
      | Some spec ->
          let prog = spec.Mod_common.make sys in
          let fs = Check.Checker.check_module env prog in
          summarize ~scope:name ~interface:[] ~modules:[ (name, fs) ])
  | None ->
      let interface = Check.Checker.check_interfaces env in
      let modules =
        List.map
          (fun (spec : Mod_common.spec) ->
            let prog = spec.Mod_common.make sys in
            (spec.Mod_common.name, Check.Checker.check_module env prog))
          Catalog.all
      in
      summarize ~scope:"catalog" ~interface ~modules

(** The deliberately broken module of the acceptance checklist: a slot
    annotation naming a parameter that does not exist (forged past
    [Registry.define]'s validation, the way a hand-edited annotation
    table would arrive), an annotation using an unregistered capability
    iterator, and an entry function that stores through a parameter no
    clause grants WRITE for.  Every one of these is a guaranteed
    runtime failure; the checker must find all three before load. *)
let broken_demo () : report =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let rt = sys.Ksys.rt in
  let registry = rt.Lxfi.Runtime.registry in
  (* unknown-param: validation would reject this, so forge the slot
     record directly — the checker must not trust the registry to have
     been populated through the front door *)
  let forge name params src =
    let annot = Result.get_ok (Annot.Parser.parse src) in
    Hashtbl.replace registry.Annot.Registry.slots name
      {
        Annot.Registry.sl_name = name;
        sl_params = params;
        sl_annot = annot;
        sl_ahash = Annot.Hash.of_annot ~params annot;
      }
  in
  forge "bad.entry" [ "buf"; "n" ] "pre(check(write, bogus, 8))";
  (* unknown-iterator: parses and validates (iterator names are not
     checked until runtime), so the front door accepts it *)
  ignore
    (Annot.Registry.define_exn registry ~name:"bad.iter" ~params:[ "p" ]
       ~annot_src:"pre(transfer(no_such_iter(p)))");
  let env = Lxfi.Loader.check_env rt in
  let prog =
    let open Mir.Builder in
    prog "badmod" ~imports:[] ~globals:[]
      ~funcs:
        [
          (* stores through [buf], but bad.entry's only clause covers
             the non-existent [bogus]: uncovered-store *)
          func "entry" [ "buf"; "n" ] ~export:"bad.entry"
            [ store64 (v "buf") (v "n"); ret0 ];
          func "iter_user" [ "p" ] ~export:"bad.iter" [ ret0 ];
        ]
  in
  let interface =
    Check.Lint.slot_findings env (Annot.Registry.find registry "bad.entry")
    @ Check.Lint.slot_findings env (Annot.Registry.find registry "bad.iter")
  in
  let modules = [ ("badmod", Check.Checker.check_module env prog) ] in
  summarize ~scope:"broken-demo" ~interface ~modules

(* ---- rendering ---- *)

let finding_json (f : Check.Finding.t) : Bench_json.t =
  let d = f.Check.Finding.f_diag in
  Bench_json.Obj
    [
      ("rule", Bench_json.Str (Check.Finding.rule f));
      ("severity", Bench_json.Str (Diag.severity_name d.Diag.d_severity));
      ("source", Bench_json.Str d.Diag.d_source);
      ( "location",
        match d.Diag.d_location with
        | Some l -> Bench_json.Str l
        | None -> Bench_json.Null );
      ( "principal",
        match d.Diag.d_principal with
        | Some p -> Bench_json.Str p
        | None -> Bench_json.Null );
      ("message", Bench_json.Str d.Diag.d_message);
    ]

let to_json (r : report) : Bench_json.t =
  let s = r.r_summary in
  Bench_json.Obj
    [
      ("scope", Bench_json.Str r.r_scope);
      ("errors", Bench_json.Int s.Check.Checker.errors);
      ("warnings", Bench_json.Int s.Check.Checker.warnings);
      ("infos", Bench_json.Int s.Check.Checker.infos);
      ( "modules",
        Bench_json.List (List.map (fun (n, _) -> Bench_json.Str n) r.r_modules)
      );
      ( "findings",
        Bench_json.List (List.map finding_json s.Check.Checker.findings) );
    ]

let pp ppf (r : report) =
  Fmt.pf ppf "static check: %s (%d module%s)@." r.r_scope
    (List.length r.r_modules)
    (if List.length r.r_modules = 1 then "" else "s");
  Check.Checker.pp_summary ppf r.r_summary

(** Deterministic fault-injection campaigns against the quarantine
    policy (`lxfi_sim faultsim`).

    Every cell of the campaign boots a fresh quarantine-enabled system
    ([Config.lxfi_quarantine]), installs one real workload module as the
    {e bystander} (e1000 under netperf-style traffic, or can / rds
    socket traffic) plus a purpose-built faulty module [fsim] as the
    {e target}, then injects one class of fault into the target while
    driving it through the same kernel→module dispatch path a real
    entry uses:

    - {b alloc-fail}: {!Kernel_sim.Finject} makes the target's [N]th
      [kmalloc] return NULL; [fsim] stores through the unchecked result,
      which the store guard denies (no capability covers NULL);
    - {b drop-grant}: the [N]th wrapper capability grant is silently
      dropped, so the target's store into its own argument buffer is
      denied;
    - {b corrupt-slot}: the [N]th round scribbles a wild address into
      the module-writable function-pointer slot the kernel calls
      through; the writer-set check denies the call at kernel level
      (contained by {!Lxfi.Quarantine.protect});
    - {b watchdog}: round [N] enters an infinite loop, which the
      per-entry fuel budget turns into a [Watchdog_expired] violation.

    After the injection the driver keeps invoking the target, so the
    escalation path (repeat offender → whole-module retirement) is
    exercised in the same cell.  Every cell then asserts the invariants
    [test_failure.ml] pins: shadow stack balanced, kernel principal
    restored, quarantined principals hold zero capabilities, no foreign
    principal holds CALL for the target's text, and the bystander still
    serves traffic.  All randomness (injection points, wild addresses)
    derives from the campaign seed, so the report is identical across
    runs. *)

open Kernel_sim
open Kmodules
open Mir.Builder

type fault_class = Alloc_fail | Drop_grant | Corrupt_slot | Watchdog

let classes = [ Alloc_fail; Drop_grant; Corrupt_slot; Watchdog ]

let class_name = function
  | Alloc_fail -> "alloc-fail"
  | Drop_grant -> "drop-grant"
  | Corrupt_slot -> "corrupt-slot"
  | Watchdog -> "watchdog"

type row = {
  fs_class : string;
  fs_workload : string;
  fs_plan : string;  (** "nth=3" or "p=0.25" *)
  fs_fired : int;  (** faults actually injected *)
  fs_quarantines : int;
  fs_escalations : int;
  fs_efaults : int;  (** contained entries (-EFAULT to the caller) *)
  fs_bystander_ok : bool;
  fs_invariants_ok : bool;
}

(* ------------------------------------------------------------------ *)
(* The target: a module with one bug per fault class.                  *)

let alloc_slot = "fsim.alloc"
let fill_slot = "fsim.fill"
let spin_slot = "fsim.spin"
let ok_slot = "fsim.ok"

(* [alloc_op] omits the NULL check every correct module carries (cf.
   econet's sendmsg) — the classic error-path bug alloc-fail hunts. *)
let fsim_prog =
  prog "fsim" ~imports:[ "kmalloc"; "kfree" ]
    ~globals:[ global "g" 64; global "ops" 8 ~init:[ init_func 0 "ok" ] ]
    ~funcs:
      [
        func "module_init" [] [ ret0 ];
        func "alloc_op" [ "n" ]
          [
            let_ "p" (call_ext "kmalloc" [ ii 96 ]);
            store64 (v "p") (v "n");
            expr (call_ext "kfree" [ v "p" ]);
            ret0;
          ]
          ~export:alloc_slot;
        func "fill_op" [ "buf"; "n" ]
          [ store64 (v "buf") (v "n"); ret (load64 (v "buf")) ]
          ~export:fill_slot;
        func "spin_op" [ "n" ] [ while_ (ii 1) []; ret0 ] ~export:spin_slot;
        func "ok" [ "n" ]
          [ store64 (glob "g") (v "n"); ret (load64 (glob "g")) ]
          ~export:ok_slot;
      ]

let define_slots (sys : Ksys.t) =
  let d name params annot_src =
    ignore (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name ~params ~annot_src)
  in
  d alloc_slot [ "n" ] "";
  d fill_slot [ "buf"; "n" ] "pre(copy(write, buf, sizeof(struct socket)))";
  d spin_slot [ "n" ] "";
  d ok_slot [ "n" ] ""

(* ------------------------------------------------------------------ *)
(* Bystander workloads: setup returns a [serve] probe whose value must
   be unchanged after the campaign cell's faults. *)

let wl_netperf (sys : Ksys.t) =
  let pcidev, nic = Ksys.add_nic sys ~vendor:E1000.vendor ~device:E1000.device in
  let _ = Mod_common.install sys E1000.spec in
  let dev = Pci.pci_get_drvdata sys.Ksys.pci pcidev in
  fun () ->
    let skb = Skbuff.alloc sys.Ksys.kst 64 in
    Skbuff.set_dev sys.Ksys.kst skb dev;
    let r = Netdev.dev_queue_xmit sys.Ksys.net skb in
    ignore (Nic.drain_tx nic);
    r

let wl_can (sys : Ksys.t) =
  let _ = Mod_common.install sys Can.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_can ~typ:3 in
  ignore (Sockets.sys_bind sys.Ksys.sock ~fd ~addr:0 ~alen:0);
  let u = Kstate.user_alloc sys.Ksys.kst 16 in
  fun () -> Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:u ~len:16 ~flags:0

let wl_rds (sys : Ksys.t) =
  let _ = Mod_common.install sys Rds.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_rds ~typ:2 in
  let u = Kstate.user_alloc sys.Ksys.kst 64 in
  fun () -> Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:u ~len:32 ~flags:0

let workloads = [ ("netperf", wl_netperf); ("can", wl_can); ("rds", wl_rds) ]
let workload_names = List.map fst workloads

(* ------------------------------------------------------------------ *)
(* One campaign cell.                                                  *)

let rounds = 10

let plan_label = function
  | Finject.Nth n -> Printf.sprintf "nth=%d" n
  | Finject.Prob p -> Printf.sprintf "p=%.2f" p

(** [run_cell ~seed fclass ~workload ~plan] boots a fresh system, runs
    one injection cell and returns its report row plus any invariant
    breaches (empty = all held).  With [trace_dir] set, the faulting
    window — from just before the injection rounds through the
    post-fault probes — is traced into a small ring (newest events win)
    and written as Chrome trace-event JSON into the directory. *)
let run_cell ?trace_dir ~seed fclass ~workload ~plan =
  let setup =
    match List.assoc_opt workload workloads with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "faultsim: unknown workload %s" workload)
  in
  let sys = Ksys.boot Lxfi.Config.lxfi_quarantine in
  let rt = sys.Ksys.rt and kst = sys.Ksys.kst in
  define_slots sys;
  let serve = setup sys in
  let mi = fst (Ksys.load sys fsim_prog) in
  let baseline = serve () in
  let q0 = rt.Lxfi.Runtime.stats.Lxfi.Stats.quarantines in
  let e0 = rt.Lxfi.Runtime.stats.Lxfi.Stats.escalations in
  let fi = Finject.create ~seed in
  let efaults = ref 0 in
  let dispatch fname args =
    let r = Lxfi.Quarantine.dispatch rt mi fname args in
    if Int64.equal r Lxfi.Quarantine.efault then incr efaults;
    r
  in
  let tbuf =
    match trace_dir with
    | None -> None
    | Some dir ->
        let b = Trace.make ~capacity:4096 () in
        Lxfi.Runtime.attach_trace rt b;
        Some (dir, b)
  in
  let fired = ref 0 in
  (match fclass with
  | Alloc_fail ->
      Finject.arm fi Finject.Alloc_fail plan;
      Kstate.arm_finject kst fi;
      for i = 1 to rounds do
        ignore (dispatch "alloc_op" [ Int64.of_int i ])
      done;
      Kstate.disarm_finject kst;
      fired := Finject.fired fi Finject.Alloc_fail
  | Drop_grant ->
      Finject.arm fi Finject.Drop_grant plan;
      Kstate.arm_finject kst fi;
      for i = 1 to rounds do
        (* A fresh buffer per round, so each round's wrapper grant is
           the only thing standing between the module and a denial —
           a copied capability from an earlier round would mask the
           drop otherwise. *)
        let buf = Slab.kmalloc kst.Kstate.slab (Ksys.sizeof sys "socket") in
        ignore (dispatch "fill_op" [ Int64.of_int buf; Int64.of_int i ])
      done;
      Kstate.disarm_finject kst;
      fired := Finject.fired fi Finject.Drop_grant
  | Corrupt_slot ->
      Finject.arm fi Finject.Corrupt_slot plan;
      let slot = Mod_common.gaddr mi "ops" in
      let mem = Ksys.mem sys in
      let good = Kmem.read_ptr mem slot in
      for i = 1 to rounds do
        (* The injection models the module scribbling on its own slot —
           something a quarantined module (capabilities revoked) can no
           longer do, so the injector only fires while it holds them. *)
        if
          mi.Lxfi.Runtime.mi_shared.Lxfi.Principal.quarantined = None
          && Finject.fires fi Finject.Corrupt_slot
        then Kmem.write_ptr mem slot (Finject.garbage_addr fi);
        match
          Lxfi.Quarantine.protect rt (fun () ->
              Lxfi.Runtime.kernel_indirect_call rt ~slot ~ftype:ok_slot
                [ Int64.of_int i ])
        with
        | Ok r -> if Int64.equal r Lxfi.Quarantine.efault then incr efaults
        | Error _ ->
            incr efaults;
            (* The kernel notices the -EFAULT and re-initialises its
               pointer; later calls then hit the quarantined / retired
               module and stay contained. *)
            Kmem.write_ptr mem slot good
      done;
      fired := Finject.fired fi Finject.Corrupt_slot
  | Watchdog ->
      let at = match plan with Finject.Nth n -> n | Finject.Prob _ -> 1 in
      for i = 1 to rounds do
        if i = at then ignore (dispatch "spin_op" [ 0L ])
        else ignore (dispatch "ok" [ Int64.of_int i ])
      done;
      fired := rt.Lxfi.Runtime.stats.Lxfi.Stats.watchdog_expiries);
  (* Post-fault probes: keep knocking so repeat-offender escalation has
     a chance to trigger inside the same cell. *)
  for i = 1 to 3 do
    ignore (dispatch "ok" [ Int64.of_int i ])
  done;
  (match tbuf with
  | None -> ()
  | Some (dir, b) ->
      Trace.detach ();
      Trace_profile.write_chrome_json
        (Printf.sprintf "%s/faultsim_%s_%s_%s.json" dir (class_name fclass) workload
           (plan_label plan))
        b);
  (* ---- invariants ---- *)
  let breaches = ref [] in
  let breach fmt =
    Printf.ksprintf
      (fun s ->
        breaches :=
          Printf.sprintf "%s/%s/%s: %s" (class_name fclass) workload (plan_label plan) s
          :: !breaches)
      fmt
  in
  let depth = Lxfi.Shadow_stack.depth rt.Lxfi.Runtime.sstack in
  if depth <> 0 then breach "shadow stack depth %d after campaign" depth;
  (match rt.Lxfi.Runtime.current with
  | None -> ()
  | Some p -> breach "current principal is %s, not kernel" (Lxfi.Principal.describe p));
  List.iter
    (fun (p : Lxfi.Principal.t) ->
      let caps =
        Lxfi.Captable.write_count p.Lxfi.Principal.caps
        + Lxfi.Captable.call_count p.Lxfi.Principal.caps
        + Lxfi.Captable.ref_count p.Lxfi.Principal.caps
      in
      if p.Lxfi.Principal.quarantined <> None && caps <> 0 then
        breach "quarantined %s still holds %d capabilities"
          (Lxfi.Principal.describe p) caps;
      if p.Lxfi.Principal.owner <> "fsim" then
        Hashtbl.iter
          (fun fname addr ->
            if Lxfi.Captable.has_call p.Lxfi.Principal.caps ~target:addr then
              breach "capability leak: %s holds CALL for fsim.%s"
                (Lxfi.Principal.describe p) fname)
          mi.Lxfi.Runtime.mi_func_addr)
    (Lxfi.Runtime.all_principals rt);
  let after = serve () in
  let bystander_ok = Int64.equal after baseline in
  if not bystander_ok then
    breach "bystander %s stopped serving (%Ld, was %Ld)" workload after baseline;
  let quarantines = rt.Lxfi.Runtime.stats.Lxfi.Stats.quarantines - q0 in
  let escalations = rt.Lxfi.Runtime.stats.Lxfi.Stats.escalations - e0 in
  if !fired > 0 && quarantines = 0 then
    breach "%d faults injected but nothing was quarantined" !fired;
  ( {
      fs_class = class_name fclass;
      fs_workload = workload;
      fs_plan = plan_label plan;
      fs_fired = !fired;
      fs_quarantines = quarantines;
      fs_escalations = escalations;
      fs_efaults = !efaults;
      fs_bystander_ok = bystander_ok;
      fs_invariants_ok = !breaches = [];
    },
    List.rev !breaches )

(* ------------------------------------------------------------------ *)
(* The full campaign.                                                  *)

(** [run ~seed] sweeps every fault class over every workload at
    seed-derived injection points; returns the rows plus every
    invariant breach (an empty list is the pass criterion). *)
let run ?trace_dir ~seed () =
  let rng = Finject.create ~seed in
  (* Two deterministic single-shot points inside the drive window plus
     one probabilistic plan per finject-driven class. *)
  let points =
    [
      Finject.Nth (2 + Finject.pick rng 3);
      Finject.Nth (6 + Finject.pick rng 3);
      Finject.Prob 0.25;
    ]
  in
  let cells =
    List.concat_map
      (fun fclass ->
        let plans =
          match fclass with
          | Watchdog -> [ Finject.Nth (1 + Finject.pick rng rounds) ]
          | Alloc_fail | Drop_grant | Corrupt_slot -> points
        in
        List.concat_map
          (fun workload -> List.map (fun plan -> (fclass, workload, plan)) plans)
          workload_names)
      classes
  in
  let idx = ref 0 in
  let results =
    List.map
      (fun (fclass, workload, plan) ->
        incr idx;
        run_cell ?trace_dir ~seed:(seed + (7919 * !idx)) fclass ~workload ~plan)
      cells
  in
  let rows = List.map fst results in
  let breaches = List.concat_map snd results in
  (* Campaign-level acceptance: at least one quarantine per fault
     class (the deterministic Nth cells guarantee it). *)
  let class_breaches =
    List.filter_map
      (fun fclass ->
        let name = class_name fclass in
        let total =
          List.fold_left
            (fun acc r -> if r.fs_class = name then acc + r.fs_quarantines else acc)
            0 rows
        in
        if total = 0 then Some (Printf.sprintf "%s: no quarantine in any cell" name)
        else None)
      classes
  in
  let rows =
    List.sort
      (fun a b ->
        compare
          (a.fs_class, a.fs_workload, a.fs_plan)
          (b.fs_class, b.fs_workload, b.fs_plan))
      rows
  in
  (rows, breaches @ class_breaches)

(** [print ~seed] runs the campaign and prints the report; returns 0
    when every invariant held, 1 otherwise. *)
let print ?trace_dir ~seed () =
  let rows, breaches = run ?trace_dir ~seed () in
  Report.table
    ~title:(Printf.sprintf "Fault-injection campaign (seed %d)" seed)
    ~header:
      [
        "fault"; "workload"; "plan"; "fired"; "quar"; "escal"; "efault"; "bystander";
        "invariants";
      ]
    (List.map
       (fun r ->
         [
           r.fs_class;
           r.fs_workload;
           r.fs_plan;
           Report.int_ r.fs_fired;
           Report.int_ r.fs_quarantines;
           Report.int_ r.fs_escalations;
           Report.int_ r.fs_efaults;
           (if r.fs_bystander_ok then "ok" else "FAIL");
           (if r.fs_invariants_ok then "ok" else "BREACH");
         ])
       rows);
  print_endline "";
  (match breaches with
  | [] ->
      Printf.printf "%d cells, all invariants held (shadow stack, principal, caps, traffic)\n"
        (List.length rows)
  | bs ->
      Printf.printf "%d invariant breaches:\n" (List.length bs);
      List.iter (fun b -> Printf.printf "  %s\n" b) bs);
  if breaches = [] then 0 else 1

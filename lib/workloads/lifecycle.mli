(** Live module lifecycle campaign (`lxfi_sim lifecycle`): hot upgrades
    under traffic and quarantine→repair→replay recovery, against the
    same bystander workloads as {!Faultsim}.  Oracles per cell: no
    request dropped without [-EFAULT], every swap violation-free with
    reconciled guard counters and carried module state, every captured
    incident reproduced by replay on the unrepaired version and served
    cleanly by the repaired one.  Deterministic under a fixed seed. *)

val serve_slot : string
(** The target module's annotated entry slot type ([lc.serve]). *)

val make_prog : version:int -> buggy:bool -> Mir.Ast.prog
(** Version [version] of the [lcmod] target.  The buggy variant writes
    out of its 64-byte grant for inputs [n >= 8]; the fixed variant
    clamps the index. *)

val define_slots : Kmodules.Ksys.t -> unit

type upgrade_row = {
  ur_round : int;
  ur_from : int;  (** version before the swap *)
  ur_to : int;
  ur_swap_cycles : int;
  ur_restored : int;
  ur_dropped : int;
  ur_violation_free : bool;  (** no violation raised during the swap *)
  ur_reconciled : bool;  (** guard counters reconcile across the swap *)
  ur_state_carried : bool;  (** request counter survived; version bumped *)
}

type repair_row = {
  rp_round : int;
  rp_kind : string;  (** violation class of the captured incident *)
  rp_window : int;  (** traced events in the faulting window *)
  rp_reproduced : bool;  (** replay on the unrepaired version re-violates *)
  rp_clean : bool;  (** replay on the fixed version serves *)
}

type row = {
  lc_workload : string;
  lc_requests : int;
  lc_served : int;
  lc_efaults : int;
  lc_dropped : int;  (** served by nobody, no -EFAULT — must be 0 *)
  lc_upgrades : upgrade_row list;  (** oldest first *)
  lc_repairs : repair_row list;  (** oldest first *)
  lc_escalations : int;
  lc_quarantines : int;
  lc_final_version : int;
  lc_bystander_ok : bool;
  lc_invariants_ok : bool;
}

val rounds : int
(** Requests served per cell. *)

val run_cell : seed:int -> workload:string -> row * string list
(** One cell: boot fresh, serve [rounds] requests with three
    mid-traffic upgrades and two repair cycles at seed-derived rounds.
    Returns the row and any invariant breaches (empty = all held). *)

val run : seed:int -> unit -> row list * string list
(** One cell per bystander workload at derived seeds; rows sorted by
    workload name. *)

val to_json : seed:int -> row list -> string list -> Bench_json.t
(** Byte-stable JSON rendering of a campaign result (simulated
    quantities only — safe to [cmp] across reruns). *)

val print : ?json:string -> seed:int -> unit -> int
(** Run, print the report (optionally writing the JSON report to
    [json]); 0 when every invariant held. *)

(** Deterministic fault-injection campaigns against the quarantine
    policy (`lxfi_sim faultsim`): every cell injects one fault class
    (alloc-fail, drop-grant, corrupt-slot, watchdog) into a purpose-
    built faulty module while a real workload module (e1000 netperf,
    can, rds) runs alongside, then asserts containment: shadow stack
    balanced, kernel principal restored, quarantined principals hold
    zero capabilities, no cross-principal capability leakage, bystander
    still serves traffic.  All randomness derives from the seed. *)

type fault_class = Alloc_fail | Drop_grant | Corrupt_slot | Watchdog

val classes : fault_class list
val class_name : fault_class -> string

type row = {
  fs_class : string;
  fs_workload : string;
  fs_plan : string;  (** "nth=3" or "p=0.25" *)
  fs_fired : int;  (** faults actually injected *)
  fs_quarantines : int;
  fs_escalations : int;
  fs_efaults : int;  (** contained entries (-EFAULT to the caller) *)
  fs_bystander_ok : bool;
  fs_invariants_ok : bool;
}

val workloads : (string * (Kmodules.Ksys.t -> unit -> int64)) list
(** Bystander workload setups: each boots its module(s) into the given
    system and returns a [serve] probe whose value must be unchanged
    after a campaign cell's faults.  Shared with {!Lifecycle}. *)

val workload_names : string list

val run_cell :
  ?trace_dir:string ->
  seed:int ->
  fault_class ->
  workload:string ->
  plan:Kernel_sim.Finject.plan ->
  row * string list
(** Boot a fresh quarantine system, run one injection cell, return its
    row and any invariant breaches (empty = all held).  With
    [trace_dir] set, the faulting window is traced and written as
    Chrome trace-event JSON into that directory. *)

val run : ?trace_dir:string -> seed:int -> unit -> row list * string list
(** The full campaign: every fault class x workload at seed-derived
    injection points.  Rows are sorted; breaches empty on success. *)

val print : ?trace_dir:string -> seed:int -> unit -> int
(** Run and print the report table; 0 when every invariant held. *)

(** netperf over the simulated stack + instrumented e1000 — the Figure
    12/13 reproduction.  Cycles per packet/transaction are measured
    from real runs of the instrumented driver; throughput and CPU%%
    come from a calibrated analytic model of the paper's testbed (see
    the implementation header and EXPERIMENTS.md for every constant
    and deviation). *)

type env = {
  sys : Kmodules.Ksys.t;
  nic : Kernel_sim.Nic.t;
  dev : int;
  napi : int;
  irq : int;
}

val setup : Lxfi.Config.t -> env
(** Boot + one NIC + the e1000 module. *)

(** {1 Packet paths} — exposed for the trace workload driver. *)

val udp_send : env -> len:int -> unit
val tcp_send : env -> msg_len:int -> unit

val drain : env -> unit
(** Drain the NIC TX queue. *)

val rx_burst : env -> count:int -> frame_len:int -> int
(** Inject and NAPI-poll a receive burst; returns packets delivered. *)

type measure = {
  m_cycles_per_unit : float;
  m_guard_cycles_per_unit : float;
  m_stats : Lxfi.Stats.snapshot;
  m_units : int;
}

val measure_udp_tx : env -> pkts:int -> measure
val measure_udp_rx : env -> pkts:int -> measure
val measure_tcp_tx : env -> msgs:int -> msg_len:int -> measure
val measure_tcp_rx : env -> pkts:int -> measure
val measure_rr : env -> txns:int -> tcp:bool -> measure

type row = {
  r_test : string;
  r_unit : string;
  r_stock : float;
  r_lxfi : float;
  r_stock_cpu : float;  (** fraction, 0..1 *)
  r_lxfi_cpu : float;
}

val figure12 : ?pkts:int -> unit -> row list
(** The eight netperf rows, paper order. *)

type guard_row = {
  g_type : string;
  g_per_packet : float;
  g_paper_per_packet : float;
}

val figure13 : ?pkts:int -> unit -> guard_row list * measure
(** Guards per packet on UDP_STREAM TX, with the paper's column. *)

type ws_ablation = {
  ws_on_elided_fraction : float;
  ws_on_checked : float;
  ws_off_checked : float;
}

val writer_set_ablation : ?pkts:int -> unit -> ws_ablation
(** §8.4's "2/3 of indirect-call checks elided". *)

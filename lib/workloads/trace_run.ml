(** The `lxfi_sim trace` workload driver.

    Boots a fresh LXFI system, attaches a {!Trace} ring buffer to the
    runtime, drives a seed-determined operation mix through one of the
    standard workloads (the netperf packet paths, or can / rds socket
    traffic), then prints the per-principal / per-entry-point profile
    and optionally writes a Chrome trace-event JSON.

    Everything the trace records is simulated (cycle stamps, simulated
    addresses, principal descriptions) and the op mix derives from the
    seed through the {!Kernel_sim.Finject} splitmix stream, so the
    output — report and JSON alike — is byte-identical across runs for
    a fixed seed.  CI diffs two runs to pin exactly that. *)

open Kernel_sim
open Kmodules

(** Operations per run: enough boundary crossings for a meaningful
    profile, small enough that a trace run stays well under a second. *)
let ops = 1200

let boot_netperf () =
  let env = Netperf_sim.setup Lxfi.Config.lxfi in
  let step rng i =
    (match Finject.pick rng 4 with
    | 0 | 1 -> Netperf_sim.udp_send env ~len:(32 + Finject.pick rng 96)
    | 2 -> Netperf_sim.tcp_send env ~msg_len:(512 + Finject.pick rng 2048)
    | _ ->
        ignore (Netperf_sim.rx_burst env ~count:(1 + Finject.pick rng 8) ~frame_len:64));
    if i mod 16 = 0 then Netperf_sim.drain env
  in
  (env.Netperf_sim.sys, step)

let boot_can () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let _ = Mod_common.install sys Can.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_can ~typ:3 in
  ignore (Sockets.sys_bind sys.Ksys.sock ~fd ~addr:0 ~alen:0);
  let u = Kstate.user_alloc sys.Ksys.kst 16 in
  let step _rng _i = ignore (Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:u ~len:16 ~flags:0) in
  (sys, step)

let boot_rds () =
  let sys = Ksys.boot Lxfi.Config.lxfi in
  let _ = Mod_common.install sys Rds.spec in
  let fd = Sockets.sys_socket sys.Ksys.sock ~family:Sockets.af_rds ~typ:2 in
  let u = Kstate.user_alloc sys.Ksys.kst 64 in
  let step rng _i =
    ignore
      (Sockets.sys_sendmsg sys.Ksys.sock ~fd ~buf:u ~len:(16 + (8 * Finject.pick rng 3))
         ~flags:0)
  in
  (sys, step)

let workload_names = [ "netperf"; "can"; "rds" ]

(** [run ~workload ppf] — trace a workload run and print the profile to
    [ppf].  [limit] caps retained events (ring capacity); [out] writes
    the Chrome trace-event JSON.  Returns 0 when the per-principal
    cycle totals reconcile with the {!Kcycles} clock, 1 otherwise. *)
let run ?(seed = 1) ?(limit = Trace.default_capacity) ?out ~workload ppf =
  let boot =
    match workload with
    | "netperf" -> boot_netperf
    | "can" -> boot_can
    | "rds" -> boot_rds
    | w ->
        invalid_arg
          (Printf.sprintf "trace: unknown workload %s (expected %s)" w
             (String.concat "|" workload_names))
  in
  let sys, step = boot () in
  let rt = sys.Ksys.rt in
  let buf = Trace.make ~capacity:limit () in
  let rng = Finject.create ~seed in
  (* Attach after boot: the profile covers the steady-state drive, not
     module loading. *)
  Lxfi.Runtime.attach_trace rt buf;
  for i = 1 to ops do
    step rng i
  done;
  Trace.detach ();
  let c = sys.Ksys.kst.Kstate.cycles in
  let final = (Kcycles.kernel c, Kcycles.module_ c, Kcycles.guard c) in
  let profile = Trace_profile.aggregate ~final buf in
  Fmt.pf ppf "trace: workload %s, seed %d, %d ops, ring capacity %d@." workload seed ops
    limit;
  Trace_profile.report ppf profile;
  (match out with
  | None -> ()
  | Some path ->
      Trace_profile.write_chrome_json path buf;
      Fmt.pf ppf "chrome trace-event JSON written to %s@." path);
  if Trace_profile.attributed_cycles profile = profile.Trace_profile.pr_total_cycles then 0
  else 1

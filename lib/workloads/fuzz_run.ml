open Fuzz

let json_of_report (r : Campaign.report) =
  Bench_json.Obj
    [
      ("workload", Bench_json.Str "fuzz");
      ("seed", Bench_json.Int r.Campaign.r_seed);
      ("runs", Bench_json.Int r.Campaign.r_runs);
      ("mutants_per_case", Bench_json.Int r.Campaign.r_mutants_per_case);
      ("cases_ok", Bench_json.Int r.Campaign.r_cases_ok);
      ("mutants_total", Bench_json.Int r.Campaign.r_mutants_total);
      ("mutants_correct", Bench_json.Int r.Campaign.r_mutants_correct);
      ( "classes",
        Bench_json.List
          (List.map
             (fun (s : Campaign.class_stat) ->
               Bench_json.Obj
                 [
                   ("class", Bench_json.Str (Mutate.name s.Campaign.cs_class));
                   ("guard_family", Bench_json.Str (Mutate.guard_family s.Campaign.cs_class));
                   ( "expected",
                     Bench_json.Str
                       (Lxfi.Violation.kind_name (Mutate.expected_kind s.Campaign.cs_class)) );
                   ("total", Bench_json.Int s.Campaign.cs_total);
                   ("detected", Bench_json.Int s.Campaign.cs_detected);
                   ("correct", Bench_json.Int s.Campaign.cs_correct);
                   ("static_flagged", Bench_json.Int s.Campaign.cs_static);
                 ])
             r.Campaign.r_stats) );
      ( "divergences",
        Bench_json.List
          (List.map
             (fun (d : Campaign.divergence) ->
               Bench_json.Obj
                 [
                   ("name", Bench_json.Str d.Campaign.dv_name);
                   ("message", Bench_json.Str d.Campaign.dv_message);
                 ])
             r.Campaign.r_divergences) );
      ("passed", Bench_json.Bool (Campaign.passed r));
    ]

let write_repros dir repros =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (rp : Campaign.repro) ->
      let path = Filename.concat dir rp.Campaign.rp_name in
      let oc = open_out path in
      output_string oc rp.Campaign.rp_text;
      close_out oc;
      Printf.printf "wrote %s\n" path)
    repros

let print_report (r : Campaign.report) =
  Report.table
    ~title:
      (Printf.sprintf "Adversarial fuzz campaign (seed %d, %d runs, %d mutants/case)"
         r.Campaign.r_seed r.Campaign.r_runs r.Campaign.r_mutants_per_case)
    ~header:[ "class"; "guard family"; "expected"; "total"; "detected"; "correct"; "static" ]
    (List.map
       (fun (s : Campaign.class_stat) ->
         [
           Mutate.name s.Campaign.cs_class;
           Mutate.guard_family s.Campaign.cs_class;
           Lxfi.Violation.kind_name (Mutate.expected_kind s.Campaign.cs_class);
           Report.int_ s.Campaign.cs_total;
           Report.int_ s.Campaign.cs_detected;
           Report.int_ s.Campaign.cs_correct;
           Report.int_ s.Campaign.cs_static;
         ])
       r.Campaign.r_stats);
  print_endline "";
  Printf.printf "clean cases: %d/%d passed all oracles; mutants: %d/%d correct class\n"
    r.Campaign.r_cases_ok r.Campaign.r_runs r.Campaign.r_mutants_correct
    r.Campaign.r_mutants_total;
  match r.Campaign.r_divergences with
  | [] -> print_endline "no divergences"
  | ds ->
      Printf.printf "%d divergences:\n" (List.length ds);
      List.iter
        (fun (d : Campaign.divergence) ->
          Printf.printf "  %s: %s\n" d.Campaign.dv_name d.Campaign.dv_message)
        ds

let print ?(mutants_per_case = 4) ?out ?json ~seed ~runs () =
  let r = Campaign.run ~mutants_per_case ~seed ~runs () in
  print_report r;
  (match out with
  | Some dir when r.Campaign.r_repros <> [] -> write_repros dir r.Campaign.r_repros
  | _ -> ());
  (match json with
  | Some path ->
      Bench_json.write_file path (json_of_report r);
      Printf.printf "wrote %s\n" path
  | None -> ());
  if Campaign.passed r then 0 else 1

let print_exemplars ~seed ~out () =
  let repros = Campaign.exemplars ~seed in
  write_repros out repros;
  Printf.printf "%d exemplars written to %s\n" (List.length repros) out;
  0

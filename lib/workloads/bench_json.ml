(** Machine-readable benchmark output.

    Each bench section serializes to a [BENCH_<section>.json] file so
    runs can be diffed, plotted, and regression-checked by CI without
    scraping the text tables.  The emitter is a deliberately small
    hand-rolled JSON printer (no JSON library in the dependency
    cone) — output is standard JSON: objects, arrays, strings with
    escapes, and numbers ([nan]/[inf] become [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_string (v : t) : string =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (indent + 2) item)
          fields;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc

(** Full guard-counter snapshot, one field per {!Lxfi.Stats.snapshot}
    counter (including the enforcement counters: grants, revokes,
    principal switches, violations, quarantines, watchdog expiries). *)
let of_stats (s : Lxfi.Stats.snapshot) : t =
  Obj
    [
      ("annotation_actions", Int s.Lxfi.Stats.s_annotation_actions);
      ("fn_entry", Int s.Lxfi.Stats.s_fn_entry);
      ("fn_exit", Int s.Lxfi.Stats.s_fn_exit);
      ("mem_write_checks", Int s.Lxfi.Stats.s_mem_write_checks);
      ("mod_indcall_checks", Int s.Lxfi.Stats.s_mod_indcall_checks);
      ("kernel_indcall_all", Int s.Lxfi.Stats.s_kernel_indcall_all);
      ("kernel_indcall_checked", Int s.Lxfi.Stats.s_kernel_indcall_checked);
      ("kernel_indcall_elided", Int s.Lxfi.Stats.s_kernel_indcall_elided);
      ("caps_granted", Int s.Lxfi.Stats.s_caps_granted);
      ("caps_revoked", Int s.Lxfi.Stats.s_caps_revoked);
      ("principal_switches", Int s.Lxfi.Stats.s_principal_switches);
      ("violations", Int s.Lxfi.Stats.s_violations);
      ("quarantines", Int s.Lxfi.Stats.s_quarantines);
      ("escalations", Int s.Lxfi.Stats.s_escalations);
      ("watchdog_expiries", Int s.Lxfi.Stats.s_watchdog_expiries);
      ("flow_violations", Int s.Lxfi.Stats.s_flow_violations);
      ("caps_dropped", Int s.Lxfi.Stats.s_caps_dropped);
    ]

(** A netperf measurement: simulated cycles per unit, guard share, and
    the guard counters accumulated over the run. *)
let of_measure (m : Netperf_sim.measure) : t =
  Obj
    [
      ("units", Int m.Netperf_sim.m_units);
      ("cycles_per_unit", Float m.Netperf_sim.m_cycles_per_unit);
      ("guard_cycles_per_unit", Float m.Netperf_sim.m_guard_cycles_per_unit);
      ("guard_counters", of_stats m.Netperf_sim.m_stats);
    ]

(** CLI driver for the adversarial fuzz campaign (`lxfi_sim fuzz`):
    runs {!Fuzz.Campaign.run}, prints the per-class detection table,
    writes minimized repros to a directory and the deterministic
    [FUZZ_*.json] report.  Output contains no timestamps — two runs
    with the same seed are byte-identical. *)

val json_of_report : Fuzz.Campaign.report -> Bench_json.t

val print :
  ?mutants_per_case:int ->
  ?out:string ->
  ?json:string ->
  seed:int ->
  runs:int ->
  unit ->
  int
(** Run a campaign and print the report; returns 0 when every oracle
    passed (the process exit code). *)

val print_exemplars : seed:int -> out:string -> unit -> int
(** Write the per-class corpus exemplars ({!Fuzz.Campaign.exemplars})
    into [out]. *)

(** Live module lifecycle campaign (`lxfi_sim lifecycle`).

    One cell per bystander workload (netperf / can / rds traffic, as in
    {!Faultsim}), each running a long request stream against a target
    module [lcmod] whose lifecycle is exercised {e while serving}:

    - {b hot upgrades} ([Loader.upgrade]): at seed-derived rounds the
      module is swapped for its next version mid-traffic.  Each swap
      must be violation-free, carry the module's request counter across
      (state transfer), restore the accumulated dynamic capabilities
      (the per-entry [copy(write, buf, 64)] grants), and leave the
      guard counters reconciled: the granted-capability counter grows
      by at least the restored set and the violation counter does not
      move.  Swap latency is recorded in simulated cycles.
    - {b quarantine → repair → replay} ({!Lxfi.Repair}): at later
      seed-derived rounds the driver turns hostile, feeding inputs that
      trip [lcmod]'s latent out-of-bounds bug until the module
      escalates.  The armed repair hook captures the incident
      (pre-retirement snapshot + traced faulting window + the faulting
      entry); the cell then replays the entry against the {e same}
      buggy version (the original violation class must reproduce) and
      against a {e fixed} version (which must serve cleanly and stays
      loaded).  A later upgrade ships a buggy regression so the cycle
      runs twice.

    Liveness oracle: every request is either served (positive counter
    value) or refused with [-EFAULT] — no request is ever dropped
    silently by neither the old nor the new instance.

    Everything derives from the campaign seed and simulated quantities,
    so the report (and its JSON rendering) is byte-identical across
    runs — the CI determinism gate [cmp]s two fresh runs. *)

open Kernel_sim
open Kmodules
open Mir.Builder

(* ------------------------------------------------------------------ *)
(* The target module, versioned.                                       *)

let serve_slot = "lc.serve"

(** Version [version] of [lcmod].  [serve buf n] stores [n] at
    [buf + n*8] — in bounds of the wrapper's 64-byte grant only for
    [n < 8]; the {e fixed} variant clamps the index.  [hits] counts
    served requests (plain data: carried across upgrades); [version] is
    rodata so the upgrade's state transfer leaves it alone. *)
let make_prog ~version ~buggy : Mir.Ast.prog =
  let index = if buggy then v "n" else v "n" %: ii 8 in
  prog "lcmod" ~imports:[]
    ~globals:
      [
        global "hits" 8 ~init:[ init_int 0 0 ];
        global "version" 8 ~section:Mir.Ast.Rodata ~init:[ init_int 0 version ];
      ]
    ~funcs:
      [
        func "module_init" [] [ ret0 ];
        func "serve" [ "buf"; "n" ]
          [
            store64 (v "buf" +: (index *: ii 8)) (v "n");
            store64 (glob "hits") (load64 (glob "hits") +: ii 1);
            ret (load64 (glob "hits"));
          ]
          ~export:serve_slot;
      ]

let define_slots (sys : Ksys.t) =
  ignore
    (Annot.Registry.define_exn sys.Ksys.rt.Lxfi.Runtime.registry ~name:serve_slot
       ~params:[ "buf"; "n" ] ~annot_src:"pre(copy(write, buf, 64))")

(* ------------------------------------------------------------------ *)
(* Report rows.                                                        *)

type upgrade_row = {
  ur_round : int;
  ur_from : int;  (** version before the swap *)
  ur_to : int;
  ur_swap_cycles : int;
  ur_restored : int;
  ur_dropped : int;
  ur_violation_free : bool;  (** no violation raised during the swap *)
  ur_reconciled : bool;  (** guard counters reconcile across the swap *)
  ur_state_carried : bool;  (** request counter survived; version bumped *)
}

type repair_row = {
  rp_round : int;
  rp_kind : string;  (** violation class of the captured incident *)
  rp_window : int;  (** traced events in the faulting window *)
  rp_reproduced : bool;  (** replay on the unrepaired version re-violates *)
  rp_clean : bool;  (** replay on the fixed version serves *)
}

type row = {
  lc_workload : string;
  lc_requests : int;
  lc_served : int;
  lc_efaults : int;
  lc_dropped : int;  (** served by nobody, no -EFAULT — must be 0 *)
  lc_upgrades : upgrade_row list;  (** oldest first *)
  lc_repairs : repair_row list;  (** oldest first *)
  lc_escalations : int;
  lc_quarantines : int;
  lc_final_version : int;
  lc_bystander_ok : bool;
  lc_invariants_ok : bool;
}

(* ------------------------------------------------------------------ *)
(* One campaign cell.                                                  *)

let rounds = 44

let read_glob (sys : Ksys.t) (mi : Lxfi.Runtime.module_info) name =
  Kmem.read_ptr (Ksys.mem sys) (Mod_common.gaddr mi name)

(** [run_cell ~seed ~workload] — boot, serve [rounds] requests with
    three mid-traffic upgrades and two quarantine→repair→replay cycles
    at seed-derived rounds, and return the cell row plus any invariant
    breaches. *)
let run_cell ~seed ~workload =
  let setup =
    match List.assoc_opt workload Faultsim.workloads with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "lifecycle: unknown workload %s" workload)
  in
  let sys = Ksys.boot Lxfi.Config.lxfi_quarantine in
  let rt = sys.Ksys.rt and kst = sys.Ksys.kst in
  define_slots sys;
  let rep = Lxfi.Repair.arm rt in
  let tbuf = Trace.make ~capacity:8192 () in
  Lxfi.Runtime.attach_trace rt tbuf;
  let serve_bystander = setup sys in
  let baseline = serve_bystander () in
  let version = ref 1 in
  let mi = ref (fst (Ksys.load sys (make_prog ~version:1 ~buggy:true))) in
  ignore (Lxfi.Loader.init_call rt !mi "module_init" []);
  let fi = Finject.create ~seed in
  (* Seed-derived schedule: two healthy upgrades, first attack window,
     one regression upgrade, second attack window; the tail rounds run
     healthy traffic on the final repaired version. *)
  let u1 = 4 + Finject.pick fi 3 in
  let u2 = 12 + Finject.pick fi 3 in
  let a1 = 18 + Finject.pick fi 3 in
  let u3 = 30 + Finject.pick fi 3 in
  let a2 = 35 + Finject.pick fi 3 in
  let requests = ref 0
  and served = ref 0
  and efaults = ref 0
  and dropped = ref 0 in
  let upgrades = ref [] and repairs = ref [] in
  let breaches = ref [] in
  let breach fmt =
    Printf.ksprintf
      (fun s -> breaches := Printf.sprintf "%s: %s" workload s :: !breaches)
      fmt
  in
  let q0 = rt.Lxfi.Runtime.stats.Lxfi.Stats.quarantines in
  let e0 = rt.Lxfi.Runtime.stats.Lxfi.Stats.escalations in

  let do_upgrade ~round ~buggy =
    let from_v = !version and to_v = !version + 1 in
    let hits0 = read_glob sys !mi "hits" in
    let s0 = Lxfi.Stats.snapshot rt.Lxfi.Runtime.stats in
    let new_mi, _rw, upr =
      Lxfi.Loader.upgrade rt !mi (make_prog ~version:to_v ~buggy)
    in
    let s1 = Lxfi.Stats.snapshot rt.Lxfi.Runtime.stats in
    let reconciled =
      s1.Lxfi.Stats.s_caps_granted - s0.Lxfi.Stats.s_caps_granted
      >= upr.Lxfi.Loader.up_restored
      && s1.Lxfi.Stats.s_violations = s0.Lxfi.Stats.s_violations
      && s1.Lxfi.Stats.s_fn_entry - s1.Lxfi.Stats.s_fn_exit
         = s0.Lxfi.Stats.s_fn_entry - s0.Lxfi.Stats.s_fn_exit
    in
    let state_carried =
      read_glob sys new_mi "hits" = hits0
      && read_glob sys new_mi "version" = to_v
    in
    let r =
      {
        ur_round = round;
        ur_from = from_v;
        ur_to = to_v;
        ur_swap_cycles = upr.Lxfi.Loader.up_swap_cycles;
        ur_restored = upr.Lxfi.Loader.up_restored;
        ur_dropped = upr.Lxfi.Loader.up_dropped;
        ur_violation_free = upr.Lxfi.Loader.up_violations_during = 0;
        ur_reconciled = reconciled;
        ur_state_carried = state_carried;
      }
    in
    if not r.ur_violation_free then
      breach "upgrade v%d->v%d raised %d violations" from_v to_v
        upr.Lxfi.Loader.up_violations_during;
    if not reconciled then
      breach "upgrade v%d->v%d: guard counters do not reconcile" from_v to_v;
    if not state_carried then
      breach "upgrade v%d->v%d: module state lost in the swap" from_v to_v;
    if not upr.Lxfi.Loader.up_write_surface_ok then
      breach "upgrade v%d->v%d: write surface unexpectedly shrank" from_v to_v;
    upgrades := r :: !upgrades;
    mi := new_mi;
    version := to_v
  in

  let do_repair ~round (inc : Lxfi.Repair.incident) =
    (* Reproduce on the very version that escalated... *)
    let bad_prog = make_prog ~version:!version ~buggy:true in
    let mi_bad, vd_bad = Lxfi.Repair.replay rt inc ~prog:bad_prog in
    let reproduced = Lxfi.Repair.reproduces inc vd_bad in
    Lxfi.Loader.unload rt mi_bad;
    (* ...then bring the service back on the fixed next version. *)
    incr version;
    let fix_prog = make_prog ~version:!version ~buggy:false in
    let mi_fix, vd_fix = Lxfi.Repair.replay rt inc ~prog:fix_prog in
    let clean =
      (not vd_fix.Lxfi.Repair.vd_contained) && vd_fix.Lxfi.Repair.vd_ret <> None
    in
    let r =
      {
        rp_round = round;
        rp_kind =
          (match inc.Lxfi.Repair.inc_kind with
          | Some k -> Lxfi.Violation.kind_name k
          | None -> "-");
        rp_window = Array.length inc.Lxfi.Repair.inc_window;
        rp_reproduced = reproduced;
        rp_clean = clean;
      }
    in
    if not reproduced then
      breach "repair at round %d: replay on the unrepaired module did not \
              reproduce the %s violation"
        round r.rp_kind;
    if not clean then
      breach "repair at round %d: replay on the repaired module still faults" round;
    if r.rp_window = 0 then breach "repair at round %d: empty faulting window" round;
    repairs := r :: !repairs;
    mi := mi_fix
  in

  for r = 1 to rounds do
    if (r = u1 || r = u2 || r = u3) && Hashtbl.mem rt.Lxfi.Runtime.modules "lcmod"
    then do_upgrade ~round:r ~buggy:true;
    let attacking =
      match List.length !repairs with
      | 0 -> r >= a1
      | 1 -> r >= a2
      | _ -> false
    in
    let n = if attacking then 8 + Finject.pick fi 8 else Finject.pick fi 8 in
    let buf = Slab.kmalloc kst.Kstate.slab 64 in
    incr requests;
    let ret =
      Lxfi.Quarantine.dispatch rt !mi "serve" [ Int64.of_int buf; Int64.of_int n ]
    in
    if Int64.equal ret Lxfi.Quarantine.efault then incr efaults
    else if Int64.compare ret 0L > 0 then incr served
    else incr dropped;
    ignore (serve_bystander ());
    (* An escalation during this round left an incident behind: run the
       repair→replay cycle before the next request lands. *)
    if List.length (Lxfi.Repair.incidents rep) > List.length !repairs then
      match Lxfi.Repair.last rep with
      | Some inc -> do_repair ~round:r inc
      | None -> ()
  done;

  Trace.detach ();

  (* ---- invariants ---- *)
  if !dropped > 0 then
    breach "%d requests dropped without -EFAULT (liveness oracle)" !dropped;
  if List.length !upgrades < 3 then
    breach "only %d upgrades ran (wanted >= 3)" (List.length !upgrades);
  if List.length !repairs < 2 then
    breach "only %d repair cycles ran (wanted >= 2)" (List.length !repairs);
  let depth = Lxfi.Shadow_stack.depth rt.Lxfi.Runtime.sstack in
  if depth <> 0 then breach "shadow stack depth %d after campaign" depth;
  (match rt.Lxfi.Runtime.current with
  | None -> ()
  | Some p -> breach "current principal is %s, not kernel" (Lxfi.Principal.describe p));
  List.iter
    (fun (p : Lxfi.Principal.t) ->
      if p.Lxfi.Principal.quarantined <> None then begin
        let caps =
          Lxfi.Captable.write_count p.Lxfi.Principal.caps
          + Lxfi.Captable.call_count p.Lxfi.Principal.caps
          + Lxfi.Captable.ref_count p.Lxfi.Principal.caps
        in
        if caps <> 0 then
          breach "quarantined %s still holds %d capabilities"
            (Lxfi.Principal.describe p) caps
      end)
    (Lxfi.Runtime.all_principals rt);
  let after = serve_bystander () in
  let bystander_ok = Int64.equal after baseline in
  if not bystander_ok then
    breach "bystander %s stopped serving (%Ld, was %Ld)" workload after baseline;
  ( {
      lc_workload = workload;
      lc_requests = !requests;
      lc_served = !served;
      lc_efaults = !efaults;
      lc_dropped = !dropped;
      lc_upgrades = List.rev !upgrades;
      lc_repairs = List.rev !repairs;
      lc_escalations = rt.Lxfi.Runtime.stats.Lxfi.Stats.escalations - e0;
      lc_quarantines = rt.Lxfi.Runtime.stats.Lxfi.Stats.quarantines - q0;
      lc_final_version = !version;
      lc_bystander_ok = bystander_ok;
      lc_invariants_ok = !breaches = [];
    },
    List.rev !breaches )

(* ------------------------------------------------------------------ *)
(* The full campaign.                                                  *)

(** [run ~seed] — one cell per bystander workload at derived seeds;
    rows sorted by workload, breaches empty = pass. *)
let run ~seed () =
  let idx = ref 0 in
  let results =
    List.map
      (fun workload ->
        incr idx;
        run_cell ~seed:(seed + (7919 * !idx)) ~workload)
      Faultsim.workload_names
  in
  let rows =
    List.map fst results
    |> List.sort (fun a b -> compare a.lc_workload b.lc_workload)
  in
  (rows, List.concat_map snd results)

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let to_json ~seed (rows : row list) (breaches : string list) : Bench_json.t =
  let upgrade_json u =
    Bench_json.Obj
      [
        ("round", Bench_json.Int u.ur_round);
        ("from_version", Bench_json.Int u.ur_from);
        ("to_version", Bench_json.Int u.ur_to);
        ("swap_cycles", Bench_json.Int u.ur_swap_cycles);
        ("caps_restored", Bench_json.Int u.ur_restored);
        ("caps_dropped", Bench_json.Int u.ur_dropped);
        ("violation_free", Bench_json.Bool u.ur_violation_free);
        ("counters_reconciled", Bench_json.Bool u.ur_reconciled);
        ("state_carried", Bench_json.Bool u.ur_state_carried);
      ]
  in
  let repair_json p =
    Bench_json.Obj
      [
        ("round", Bench_json.Int p.rp_round);
        ("violation", Bench_json.Str p.rp_kind);
        ("window_events", Bench_json.Int p.rp_window);
        ("reproduced_on_unrepaired", Bench_json.Bool p.rp_reproduced);
        ("clean_on_repaired", Bench_json.Bool p.rp_clean);
      ]
  in
  let row_json r =
    Bench_json.Obj
      [
        ("workload", Bench_json.Str r.lc_workload);
        ("requests", Bench_json.Int r.lc_requests);
        ("served", Bench_json.Int r.lc_served);
        ("efaults", Bench_json.Int r.lc_efaults);
        ("dropped_without_efault", Bench_json.Int r.lc_dropped);
        ("upgrades", Bench_json.List (List.map upgrade_json r.lc_upgrades));
        ("repairs", Bench_json.List (List.map repair_json r.lc_repairs));
        ("escalations", Bench_json.Int r.lc_escalations);
        ("quarantines", Bench_json.Int r.lc_quarantines);
        ("final_version", Bench_json.Int r.lc_final_version);
        ("bystander_ok", Bench_json.Bool r.lc_bystander_ok);
        ("invariants_ok", Bench_json.Bool r.lc_invariants_ok);
      ]
  in
  Bench_json.Obj
    [
      ("seed", Bench_json.Int seed);
      ("rounds", Bench_json.Int rounds);
      ("rows", Bench_json.List (List.map row_json rows));
      ("breaches", Bench_json.List (List.map (fun b -> Bench_json.Str b) breaches));
      ("ok", Bench_json.Bool (breaches = []));
    ]

(** [print ~seed] runs the campaign, prints the report (and optionally
    the JSON to [json]); returns 0 when every invariant held. *)
let print ?json ~seed () =
  let rows, breaches = run ~seed () in
  Report.table
    ~title:(Printf.sprintf "Module lifecycle campaign (seed %d)" seed)
    ~header:
      [
        "workload"; "reqs"; "served"; "efault"; "dropped"; "upgrades"; "repairs";
        "escal"; "ver"; "bystander"; "invariants";
      ]
    (List.map
       (fun r ->
         [
           r.lc_workload;
           Report.int_ r.lc_requests;
           Report.int_ r.lc_served;
           Report.int_ r.lc_efaults;
           Report.int_ r.lc_dropped;
           Report.int_ (List.length r.lc_upgrades);
           Report.int_ (List.length r.lc_repairs);
           Report.int_ r.lc_escalations;
           Report.int_ r.lc_final_version;
           (if r.lc_bystander_ok then "ok" else "FAIL");
           (if r.lc_invariants_ok then "ok" else "BREACH");
         ])
       rows);
  print_endline "";
  List.iter
    (fun r ->
      List.iter
        (fun u ->
          Printf.printf
            "  %s: round %2d  v%d -> v%d  swap %6d cycles  %3d caps restored, %d dropped\n"
            r.lc_workload u.ur_round u.ur_from u.ur_to u.ur_swap_cycles u.ur_restored
            u.ur_dropped)
        r.lc_upgrades;
      List.iter
        (fun p ->
          Printf.printf
            "  %s: round %2d  repair after %s (%d traced events): reproduced=%b clean=%b\n"
            r.lc_workload p.rp_round p.rp_kind p.rp_window p.rp_reproduced p.rp_clean)
        r.lc_repairs)
    rows;
  print_endline "";
  (match breaches with
  | [] ->
      Printf.printf
        "%d cells, all lifecycle invariants held (liveness, violation-free swaps, \
         counter reconciliation, recovery oracle)\n"
        (List.length rows)
  | bs ->
      Printf.printf "%d invariant breaches:\n" (List.length bs);
      List.iter (fun b -> Printf.printf "  %s\n" b) bs);
  (match json with
  | None -> ()
  | Some file -> Bench_json.write_file file (to_json ~seed rows breaches));
  if breaches = [] then 0 else 1

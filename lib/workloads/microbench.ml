(** The SFI microbenchmarks of §8.3 (Figure 11): hotlist, lld, MD5 —
    originally from MiSFIT [Small & Seltzer], rebuilt as MIR kernel
    modules.

    Each benchmark reports the instrumented-vs-stock code-size ratio
    (IR nodes, from the rewriter) and the runtime slowdown (simulated
    cycles: module instructions + guard costs).  The three benchmarks
    exercise the three interesting regimes:

    - {b hotlist}: read-mostly pointer chasing — almost nothing to
      guard, slowdown ≈ 0;
    - {b lld}: linked-list insert/delete through tiny accessor
      functions — dominated by call overhead that trivial-function
      inlining removes (the optimization XFI's binary rewriting cannot
      do);
    - {b MD5}: tight rounds of constant-offset stores into a stack
      block — the guard-elision analysis proves them safe and drops
      nearly every write check. *)

open Kernel_sim
open Kmodules
open Mir.Builder

(* Each benchmark exports its entry point through this trivial slot
   type so the harness can invoke it under full isolation. *)
let bench_slot = "bench.entry"

let define_bench_slot (rt : Lxfi.Runtime.t) =
  if not (Annot.Registry.mem rt.Lxfi.Runtime.registry bench_slot) then
    ignore
      (Annot.Registry.define_exn rt.Lxfi.Runtime.registry ~name:bench_slot ~params:[ "n" ]
         ~annot_src:"")

(** {1 hotlist} — membership scans over a 200-node list. *)

let hotlist_prog : Mir.Ast.prog =
  let nodes = 200 in
  prog "bench_hotlist" ~imports:[ "kmalloc" ]
    ~globals:[ global "head" 8 ~section:Mir.Ast.Bss ]
    ~funcs:
      [
        func "bench_init" [ "_u" ]
          (for_ "i" ~from:(ii 0) ~below:(ii nodes)
             [
               let_ "node" (call_ext "kmalloc" [ ii 16 ]);
               store64 (v "node") (v "i" *: ii 3);
               store64 (v "node" +: ii 8) (load64 (glob "head"));
               store64 (glob "head") (v "node");
             ]
          @ [ ret0 ])
          ~export:bench_slot;
        (* membership test: last element (worst case) plus a miss *)
        func "lookup" [ "key" ]
          [
            let_ "cur" (load64 (glob "head"));
            let_ "found" (ii 0);
            while_ (v "cur" <>: ii 0)
              [
                when_ (load64 (v "cur") ==: v "key") [ let_ "found" (ii 1) ];
                let_ "cur" (load64 (v "cur" +: ii 8));
              ];
            ret (v "found");
          ];
        func "bench_run" [ "n" ]
          ([
             let_ "acc" (ii 0);
           ]
          @ for_ "iter" ~from:(ii 0) ~below:(v "n")
              [
                let_ "acc" (v "acc" +: call "lookup" [ ii 0 ]);
                let_ "acc" (v "acc" +: call "lookup" [ ii 601 ]);
              ]
          @ [ ret (v "acc") ])
          ~export:bench_slot;
      ]

(** {1 lld} — insert/delete churn through trivial accessors. *)

let lld_pool = 128

let lld_prog : Mir.Ast.prog =
  prog "bench_lld" ~imports:[]
    ~globals:
      [
        global "head" 8 ~section:Mir.Ast.Bss;
        global "free" 8 ~section:Mir.Ast.Bss;
        global "pool" (lld_pool * 16) ~section:Mir.Ast.Bss;
      ]
    ~funcs:
      [
        (* the tiny leaf functions XFI pays entry/exit guards for and
           LXFI's compiler plugin inlines away *)
        func "node_key" [ "node" ] [ ret (load64 (v "node")) ];
        func "node_next" [ "node" ] [ ret (load64 (v "node" +: ii 8)) ];
        func "pool_get" []
          [
            let_ "node" (load64 (glob "free"));
            when_ (v "node" <>: ii 0)
              [ store64 (glob "free") (load64 (v "node" +: ii 8)) ];
            ret (v "node");
          ];
        func "pool_put" [ "node" ]
          [
            store64 (v "node" +: ii 8) (load64 (glob "free"));
            store64 (glob "free") (v "node");
            ret0;
          ];
        func "insert" [ "key" ]
          [
            let_ "node" (call "pool_get" []);
            when_ (v "node" ==: ii 0) [ ret (ii (-12)) ];
            store64 (v "node") (v "key");
            store64 (v "node" +: ii 8) (load64 (glob "head"));
            store64 (glob "head") (v "node");
            ret0;
          ];
        func "delete" [ "key" ]
          [
            let_ "cur" (load64 (glob "head"));
            when_ (v "cur" ==: ii 0) [ ret (ii (-1)) ];
            if_
              (call "node_key" [ v "cur" ] ==: v "key")
              [
                store64 (glob "head") (call "node_next" [ v "cur" ]);
                expr (call "pool_put" [ v "cur" ]);
              ]
              [
                while_ (v "cur" <>: ii 0)
                  [
                    let_ "nxt" (call "node_next" [ v "cur" ]);
                    if_ (v "nxt" ==: ii 0)
                      [ let_ "cur" (ii 0) ]
                      [
                        if_
                          (call "node_key" [ v "nxt" ] ==: v "key")
                          [
                            store64 (v "cur" +: ii 8) (call "node_next" [ v "nxt" ]);
                            expr (call "pool_put" [ v "nxt" ]);
                            let_ "cur" (ii 0);
                          ]
                          [ let_ "cur" (v "nxt") ];
                      ];
                  ];
              ];
            ret0;
          ];
        func "bench_init" [ "_u" ]
          (for_ "i" ~from:(ii 0) ~below:(ii lld_pool)
             [ expr (call "pool_put" [ glob "pool" +: (v "i" *: ii 16) ]) ]
          @ [ ret0 ])
          ~export:bench_slot;
        (* steady-state churn: every iteration inserts at the head and
           deletes a key inserted ~40 iterations earlier, so deletions
           walk deep into the list (the read-dominated profile of the
           original benchmark) *)
        func "bench_run" [ "n" ]
          (for_ "i" ~from:(ii 0) ~below:(v "n")
             [
               expr (call "insert" [ v "i" %: ii 64 ]);
               expr (call "delete" [ (v "i" +: ii 40) %: ii 64 ]);
             ]
          @ [ ret0 ])
          ~export:bench_slot;
      ]

(** {1 MD5} — unrolled rounds of constant-offset stack stores.

    The block schedule and state updates are generated as straight-line
    code over two [Alloca] buffers, so every store has a constant
    offset the safe-store analysis can bound. *)

let md5_prog : Mir.Ast.prog =
  let state_words = 4 in
  let block_words = 8 in
  (* one "round": mix state word s with schedule word b *)
  let round s b k =
    let st o = v "state" +: ii (o * 8) in
    let bl o = v "block" +: ii (o * 8) in
    [
      let_ "t"
        (load64 (st s)
        +: (load64 (bl b) ^: (load64 (st ((s + 1) mod state_words)) <<: ii 7))
        +: i (Int64.of_int (0x5a827999 + (k * 0x6ed9eba1))));
      store64 (st s) (v "t" ^: (v "t" >>: ii 13));
    ]
  in
  let rounds =
    List.concat
      (List.init 16 (fun k -> round (k mod state_words) (k mod block_words) k))
  in
  let fill_block =
    List.concat
      (List.init block_words (fun w ->
           [ store64 (v "block" +: ii (w * 8)) ((v "blk" +: ii w) *: i 0x9e3779b9L) ]))
  in
  prog "bench_md5" ~imports:[]
    ~globals:[ global "digest" 32 ~section:Mir.Ast.Bss ]
    ~funcs:
      [
        func "bench_init" [ "_u" ] [ ret0 ] ~export:bench_slot;
        func "bench_run" [ "n" ]
          ([
             alloca "state" (state_words * 8);
             alloca "block" (block_words * 8);
             store64 (v "state") (i 0x67452301L);
             store64 (v "state" +: ii 8) (i 0xefcdab89L);
             store64 (v "state" +: ii 16) (i 0x98badcfeL);
             store64 (v "state" +: ii 24) (i 0x10325476L);
           ]
          @ for_ "blk" ~from:(ii 0) ~below:(v "n") (fill_block @ rounds)
          @ [
              (* publish the digest (guarded stores to .bss) *)
              store64 (glob "digest") (load64 (v "state"));
              store64 (glob "digest" +: ii 8) (load64 (v "state" +: ii 8));
              store64 (glob "digest" +: ii 16) (load64 (v "state" +: ii 16));
              store64 (glob "digest" +: ii 24) (load64 (v "state" +: ii 24));
              ret (load64 (glob "digest"));
            ])
          ~export:bench_slot;
      ]

(** {1 Harness} *)

type result = {
  b_name : string;
  b_code_ratio : float;  (** instrumented / original IR size *)
  b_stock_cycles : int;
  b_lxfi_cycles : int;
  b_slowdown : float;  (** lxfi/stock − 1 *)
  b_result : int64;  (** benchmark output, for cross-mode equality *)
}

let run_one ~(config : Lxfi.Config.t) prog ~iters : int * int64 * Lxfi.Rewriter.report =
  let sys = Ksys.boot config in
  define_bench_slot sys.Ksys.rt;
  let mi, report = Ksys.load sys prog in
  ignore (Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "bench_init" [ 0L ]);
  (match mi.Lxfi.Runtime.mi_ctx with
  | Some ctx -> Mir.Interp.refuel ctx
  | None -> ());
  let cycles = sys.Ksys.kst.Kstate.cycles in
  let s0 = Kcycles.snapshot cycles in
  let out =
    Lxfi.Runtime.invoke_module_function sys.Ksys.rt mi "bench_run"
      [ Int64.of_int iters ]
  in
  let d = Kcycles.since cycles s0 in
  (Kcycles.module_ d + Kcycles.guard d, out, report)

(** [run ?config_lxfi name prog ~iters] — stock vs (configurable) LXFI. *)
let run ?(config_lxfi = Lxfi.Config.lxfi) name prog ~iters : result =
  let stock_cycles, stock_out, _ = run_one ~config:Lxfi.Config.stock prog ~iters in
  let lxfi_cycles, lxfi_out, report = run_one ~config:config_lxfi prog ~iters in
  if not (Int64.equal stock_out lxfi_out) then
    invalid_arg
      (Printf.sprintf "%s: instrumented run diverged (%Ld vs %Ld)" name stock_out
         lxfi_out);
  {
    b_name = name;
    b_code_ratio =
      float_of_int report.Lxfi.Rewriter.r_inst_size
      /. float_of_int (max 1 report.Lxfi.Rewriter.r_orig_size);
    b_stock_cycles = stock_cycles;
    b_lxfi_cycles = lxfi_cycles;
    b_slowdown = (float_of_int lxfi_cycles /. float_of_int (max 1 stock_cycles)) -. 1.0;
    b_result = stock_out;
  }

let all ?(iters = 300) ?config_lxfi () : result list =
  [
    run ?config_lxfi "hotlist" hotlist_prog ~iters;
    run ?config_lxfi "lld" lld_prog ~iters:(iters * 4);
    run ?config_lxfi "MD5" md5_prog ~iters;
  ]

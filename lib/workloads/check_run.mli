(** Driver for the static checker over the shipped system: what
    [lxfi_sim check] and the CI check job run. *)

type report = {
  r_scope : string;  (** "catalog", a module name, or "broken-demo" *)
  r_interface : Check.Finding.t list;
      (** registry + kexport lint findings ([--all] only) *)
  r_modules : (string * Check.Finding.t list) list;
      (** per-module capability-flow findings *)
  r_summary : Check.Checker.summary;  (** all findings, sorted *)
}

val check_catalog : ?only:string -> unit -> report
(** Boot, build the checker environment from the live runtime, and
    check.  [only] restricts to one catalog module (capability-flow
    only); without it the whole API surface (slot registry + kernel
    exports) and all ten modules are checked.  Raises
    [Invalid_argument] on an unknown module name. *)

val broken_demo : unit -> report
(** The deliberately broken module: an annotation naming a nonexistent
    parameter (forged past definition-time validation), an unregistered
    capability iterator, and a store through a parameter no clause
    covers.  [has_errors] is guaranteed [true] — the acceptance test
    that the checker rejects things. *)

val has_errors : report -> bool
(** Any error-severity findings? (The CLI exit status.) *)

val to_json : report -> Bench_json.t
(** Machine-readable report: scope, severity totals, and every finding
    with rule, severity, location and message. *)

val pp : Format.formatter -> report -> unit

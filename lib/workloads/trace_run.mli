(** The `lxfi_sim trace` workload driver: boot an LXFI system, attach a
    trace ring buffer, drive a seed-determined op mix through a
    workload, print the per-principal / per-entry-point profile and
    optionally write Chrome trace-event JSON.  Byte-identical output
    for a fixed seed. *)

val ops : int
(** Operations driven per run. *)

val workload_names : string list
(** ["netperf"; "can"; "rds"]. *)

val run :
  ?seed:int ->
  ?limit:int ->
  ?out:string ->
  workload:string ->
  Format.formatter ->
  int
(** Returns 0 when the per-principal cycle totals reconcile with the
    {!Kernel_sim.Kcycles} clock, 1 otherwise.  Raises
    [Invalid_argument] on an unknown workload. *)

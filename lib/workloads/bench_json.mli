(** Machine-readable benchmark output: a minimal JSON emitter for the
    [BENCH_<section>.json] files written by [bench/main.exe --json].
    Output is standard JSON; [nan]/[inf] floats become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), deterministic for deterministic
    inputs — the enforcement-neutrality check compares these strings
    byte for byte. *)

val write_file : string -> t -> unit
(** Write [to_string] plus a trailing newline to a file. *)

val of_stats : Lxfi.Stats.snapshot -> t
(** All guard counters, including the enforcement counters (grants,
    revokes, principal switches, violations, quarantines, watchdog
    expiries). *)

val of_measure : Netperf_sim.measure -> t
(** Simulated cycles per unit, guard-cycle share, and guard counters of
    one netperf measurement. *)

(** Runtime introspection — the /proc-style view of LXFI's state:
    modules, principals (with their alias names), capability
    populations, writer-set size, shadow-stack depth, guard counters.
    Used by [lxfi_sim state] and debugging sessions. *)

type principal_view = {
  pv_describe : string;
  pv_writes : int;
  pv_calls : int;
  pv_refs : int;
  pv_aliases : int list;
  pv_quarantined : string option;  (** quarantine reason, if contained *)
}

type module_view = {
  mv_name : string;
  mv_functions : int;
  mv_globals : int;
  mv_sections : (string * int * int) list;
  mv_principals : principal_view list;
  mv_dead : string option;  (** retirement reason after escalation *)
}

type t = {
  iv_mode : string;
  iv_modules : module_view list;
  iv_writer_set_lines : int;
  iv_shadow_depth : int;
  iv_current : string;
  iv_stats : Stats.t;
  iv_quarantine_log : Diag.t list;  (** structured containment diagnostics, newest first *)
}

val capture : Runtime.t -> t
val pp : Format.formatter -> t -> unit
val to_string : Runtime.t -> string

(** Per-thread shadow stacks (§5).

    Each kernel thread gets a shadow stack adjacent to its kernel stack
    but inaccessible to modules (no WRITE capability is ever granted
    for it).  Wrappers push a frame at entry — return token and the
    principal to restore — and validate/pop at exit, enforcing control
    flow integrity on boundary returns and making principal switches
    interrupt-safe: IRQ entry saves the interrupted principal, IRQ exit
    restores it. *)

type frame = {
  token : int;  (** return token; must match at exit *)
  saved_principal : Principal.t option;  (** principal to restore (None = kernel) *)
  wrapper : string;  (** wrapper name, for diagnostics *)
}

type t = {
  mutable frames : frame list;
  mem_base : int;  (** reserved adjacent region (never granted to modules) *)
  mem_len : int;
  mutable max_depth : int;
  mutable token_counter : int;
}

let create ~mem_base ~mem_len =
  { frames = []; mem_base; mem_len; max_depth = 0; token_counter = 0 }

let depth t = List.length t.frames

(** [push t ~wrapper ~saved_principal] returns the token the matching
    [pop] must present. *)
let push t ~wrapper ~saved_principal =
  t.token_counter <- t.token_counter + 1;
  let token = t.token_counter in
  t.frames <- { token; saved_principal; wrapper } :: t.frames;
  let d = depth t in
  if d > t.max_depth then t.max_depth <- d;
  if d * 16 > t.mem_len then
    Violation.raise_ ~kind:Violation.Shadow_stack ~module_:wrapper
      "shadow stack overflow (depth %d)" d;
  token

(** [pop t ~wrapper ~token] validates the return and yields the
    principal to restore. *)
let pop t ~wrapper ~token =
  match t.frames with
  | [] ->
      Violation.raise_ ~kind:Violation.Shadow_stack ~module_:wrapper
        "return with empty shadow stack"
  | f :: rest ->
      if f.token <> token then
        Violation.raise_ ~kind:Violation.Shadow_stack ~module_:wrapper
          "return token mismatch (wrapper %s, expected frame %s)" wrapper f.wrapper;
      t.frames <- rest;
      f.saved_principal

let top_wrapper t = match t.frames with [] -> None | f :: _ -> Some f.wrapper

(** [unwind_to t ~depth] discards frames above [depth] without token
    validation — the quarantine path abandoning a faulted module's
    activations to return control to the kernel frame.  Returns the
    innermost discarded frame's saved principal (the principal that was
    current before the oldest abandoned wrapper ran), or [None] when
    nothing is discarded. *)
let unwind_to t ~depth =
  if depth < 0 then invalid_arg "Shadow_stack.unwind_to: depth < 0";
  let rec go acc frames =
    if List.length frames <= depth then (acc, frames)
    else match frames with
      | [] -> (acc, [])
      | f :: rest -> go (Some f) rest
  in
  let last_discarded, kept = go None t.frames in
  t.frames <- kept;
  match last_discarded with None -> None | Some f -> f.saved_principal

(** Deterministic snapshots of a module's security state.

    A snapshot captures everything the runtime knows about one loaded
    module: every principal with its full capability table (WRITE
    ranges, CALL targets, REF capabilities), quarantine status, the
    writer-set lines covering module-owned memory, the shadow-stack
    depth at capture, the module's global variables' bytes, and the
    guard counters at capture time.

    Snapshots serve three consumers (see DESIGN.md, "Recovery
    semantics"):

    - {e hot upgrade} ([Loader.upgrade]) captures before retiring the
      old instance and re-grants the surviving subset into the new one
      through {!restore_filtered};
    - {e quarantine repair} ([Repair]) captures the pre-retirement
      state at escalation so a repaired instance can resume where the
      faulted one stopped;
    - {e determinism checks}: {!render} is byte-stable — every fold
      over a hash table is sorted before rendering, and nothing
      depending on boot history other than simulated addresses (which
      are deterministic under a fixed seed) is included — so
      [capture -> restore -> capture] round-trips byte-identically.

    Capture and restore are pure table operations: they charge no
    simulated cycles, bump no guard counters, and emit no trace
    events, so taking a snapshot never perturbs a benchmark. *)

open Kernel_sim

type pstate = {
  ps_kind : Principal.kind;
  ps_name : int;  (** primary name pointer; 0 for shared/global *)
  ps_desc : string;  (** [Principal.describe] — the stable sort key *)
  ps_quarantined : string option;
  ps_flow : string option;  (** flow-automaton position at capture *)
  ps_writes : (int * int) list;  (** sorted (base, size) *)
  ps_calls : int list;  (** sorted targets *)
  ps_refs : (string * int) list;  (** sorted (rtype, addr) *)
}

type gstate = {
  gs_name : string;
  gs_size : int;
  gs_bytes : string;  (** raw bytes at capture *)
  gs_funcptr : bool;
      (** the global's initialisers contain function pointers; its bytes
          are never restored across an upgrade (they would resurrect
          retired addresses) *)
}

type t = {
  sn_module : string;
  sn_dead : string option;
  sn_depth : int;  (** shadow-stack depth at capture *)
  sn_principals : pstate list;  (** sorted by (kind, name, desc) *)
  sn_globals : gstate list;  (** sorted by name *)
  sn_wset : int list;  (** sorted writer-set lines over module memory *)
  sn_stats : Stats.snapshot;  (** global guard counters at capture *)
}

let kind_rank = function
  | Principal.Shared -> 0
  | Principal.Global -> 1
  | Principal.Instance -> 2

let kind_name = function
  | Principal.Shared -> "shared"
  | Principal.Global -> "global"
  | Principal.Instance -> "instance"

(** Module-owned memory ranges: data sections plus the module stack. *)
let owned_ranges (mi : Runtime.module_info) =
  (mi.Runtime.mi_stack_base, mi.Runtime.mi_stack_len)
  :: List.map (fun (_, base, len) -> (base, len)) mi.Runtime.mi_sections

let capture_principal (p : Principal.t) : pstate =
  let writes =
    Captable.fold_writes p.Principal.caps
      (fun acc ~base ~size -> (base, size) :: acc)
      []
    |> List.sort compare
  in
  let calls =
    Captable.fold_calls p.Principal.caps (fun acc ~target -> target :: acc) []
    |> List.sort compare
  in
  let refs =
    Captable.fold_refs p.Principal.caps
      (fun acc ~rtype ~addr -> (rtype, addr) :: acc)
      []
    |> List.sort compare
  in
  {
    ps_kind = p.Principal.kind;
    ps_name = p.Principal.primary_name;
    ps_desc = Principal.describe p;
    ps_quarantined = p.Principal.quarantined;
    ps_flow = p.Principal.flow_pos;
    ps_writes = writes;
    ps_calls = calls;
    ps_refs = refs;
  }

let glob_has_funcptr (g : Mir.Ast.glob) =
  List.exists
    (function Mir.Ast.Ifunc _ | Mir.Ast.Iext _ -> true | Mir.Ast.Iword _ -> false)
    g.Mir.Ast.ginit

let capture_global (rt : Runtime.t) (mi : Runtime.module_info) (g : Mir.Ast.glob) :
    gstate option =
  match Hashtbl.find_opt mi.Runtime.mi_globals g.Mir.Ast.gname with
  | None -> None
  | Some base ->
      let mem = rt.Runtime.kst.Kstate.mem in
      let bytes =
        String.init g.Mir.Ast.gsize (fun i ->
            Char.chr (Int64.to_int (Kmem.read mem ~addr:(base + i) ~size:1) land 0xff))
      in
      Some
        {
          gs_name = g.Mir.Ast.gname;
          gs_size = g.Mir.Ast.gsize;
          gs_bytes = bytes;
          gs_funcptr = glob_has_funcptr g;
        }

let capture (rt : Runtime.t) (mi : Runtime.module_info) : t =
  let principals =
    List.map capture_principal mi.Runtime.mi_principals
    |> List.sort (fun a b ->
           compare
             (kind_rank a.ps_kind, a.ps_name, a.ps_desc)
             (kind_rank b.ps_kind, b.ps_name, b.ps_desc))
  in
  let globals =
    List.filter_map (capture_global rt mi) mi.Runtime.mi_prog.Mir.Ast.globals
    |> List.sort (fun a b -> compare a.gs_name b.gs_name)
  in
  let ranges = owned_ranges mi in
  let line_covers l =
    let base = l lsl Writer_set.line_shift in
    let len = 1 lsl Writer_set.line_shift in
    List.exists (fun (b, n) -> base < b + n && b < base + len) ranges
  in
  let wset =
    Writer_set.fold_lines rt.Runtime.wset
      (fun acc l -> if line_covers l then l :: acc else acc)
      []
    |> List.sort compare
  in
  {
    sn_module = mi.Runtime.mi_name;
    sn_dead = mi.Runtime.mi_dead;
    sn_depth = Shadow_stack.depth rt.Runtime.sstack;
    sn_principals = principals;
    sn_globals = globals;
    sn_wset = wset;
    sn_stats = Stats.snapshot rt.Runtime.stats;
  }

(** {1 Restore} *)

(** Resolve the principal a captured [pstate] maps onto in [mi],
    materialising instance principals on demand. *)
let principal_of_pstate rt (mi : Runtime.module_info) (ps : pstate) : Principal.t =
  match ps.ps_kind with
  | Principal.Shared -> mi.Runtime.mi_shared
  | Principal.Global -> mi.Runtime.mi_global
  | Principal.Instance -> (
      match
        List.find_opt
          (fun (p : Principal.t) ->
            p.Principal.kind = Principal.Instance
            && p.Principal.primary_name = ps.ps_name)
          mi.Runtime.mi_principals
      with
      | Some p -> p
      | None -> Runtime.find_or_create_instance rt mi ~name_ptr:ps.ps_name)

(** Raw capability re-add: straight table inserts plus the writer-set
    marking a real grant would perform.  No stats, no fault injection,
    no trace — restore must be exact and silent. *)
let readd_caps rt (p : Principal.t) (ps : pstate) =
  List.iter
    (fun (base, size) ->
      Captable.add_write p.Principal.caps ~base ~size;
      if not (Kmem.Layout.is_user base) then
        Writer_set.mark_range rt.Runtime.wset ~base ~size)
    ps.ps_writes;
  List.iter (fun target -> Captable.add_call p.Principal.caps ~target) ps.ps_calls;
  List.iter
    (fun (rtype, addr) -> Captable.add_ref p.Principal.caps ~rtype ~addr)
    ps.ps_refs

(* A restored flow position is re-validated against the target
   module's enforced graph: a position the new graph does not even
   contain resets to start (mirroring the upgrade rule that stale
   grants drop).  With no graph to validate against, the captured
   position is kept verbatim so capture/restore round-trips. *)
let flow_of_pstate (mi : Runtime.module_info) (ps : pstate) : string option =
  match (ps.ps_flow, mi.Runtime.mi_flow) with
  | None, _ -> None
  | Some k, None -> Some k
  | Some k, Some g -> if Check.Apiflow.has_node g k then Some k else None

let restore_global rt (mi : Runtime.module_info) (gs : gstate) =
  if not gs.gs_funcptr then
    match Mir.Ast.find_global mi.Runtime.mi_prog gs.gs_name with
    | Some g
      when g.Mir.Ast.gsize = gs.gs_size
           && (not (glob_has_funcptr g))
           && g.Mir.Ast.gsection <> Mir.Ast.Rodata -> (
        match Hashtbl.find_opt mi.Runtime.mi_globals gs.gs_name with
        | Some base ->
            let mem = rt.Runtime.kst.Kstate.mem in
            String.iteri
              (fun i c ->
                Kmem.write mem ~addr:(base + i) ~size:1
                  (Int64.of_int (Char.code c)))
              gs.gs_bytes
        | None -> ())
    | _ -> ()

let restore (rt : Runtime.t) (mi : Runtime.module_info) (t : t) : unit =
  List.iter
    (fun ps ->
      let p = principal_of_pstate rt mi ps in
      Captable.clear p.Principal.caps;
      readd_caps rt p ps;
      p.Principal.quarantined <- ps.ps_quarantined;
      p.Principal.flow_pos <- flow_of_pstate mi ps)
    t.sn_principals;
  List.iter (restore_global rt mi) t.sn_globals

type filter = {
  keep_write : base:int -> size:int -> bool;
  keep_call : target:int -> bool;
  keep_ref : rtype:string -> addr:int -> bool;
  keep_instances : bool;
}

type restore_report = { rr_restored : int; rr_dropped : int }

let restore_filtered (rt : Runtime.t) (mi : Runtime.module_info) (t : t)
    (f : filter) : restore_report =
  let restored = ref 0 and dropped = ref 0 in
  let count keep = if keep then incr restored else incr dropped in
  let ncaps ps =
    List.length ps.ps_writes + List.length ps.ps_calls + List.length ps.ps_refs
  in
  List.iter
    (fun ps ->
      (* Quarantined principals stay revoked: the compatibility filter
         never resurrects what containment removed. *)
      if ps.ps_quarantined = None then
        if ps.ps_kind = Principal.Instance && not f.keep_instances then
          dropped := !dropped + ncaps ps
        else begin
          let p = principal_of_pstate rt mi ps in
          p.Principal.flow_pos <- flow_of_pstate mi ps;
          List.iter
            (fun (base, size) ->
              let keep = f.keep_write ~base ~size in
              count keep;
              if keep then begin
                Captable.add_write p.Principal.caps ~base ~size;
                if not (Kmem.Layout.is_user base) then
                  Writer_set.mark_range rt.Runtime.wset ~base ~size
              end)
            ps.ps_writes;
          List.iter
            (fun target ->
              let keep = f.keep_call ~target in
              count keep;
              if keep then Captable.add_call p.Principal.caps ~target)
            ps.ps_calls;
          List.iter
            (fun (rtype, addr) ->
              let keep = f.keep_ref ~rtype ~addr in
              count keep;
              if keep then Captable.add_ref p.Principal.caps ~rtype ~addr)
            ps.ps_refs
        end
      else dropped := !dropped + ncaps ps)
    t.sn_principals;
  List.iter (restore_global rt mi) t.sn_globals;
  { rr_restored = !restored; rr_dropped = !dropped }

(** {1 Rendering} *)

let hex_of_bytes s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let render_lines (t : t) : string list =
  let line fmt = Printf.sprintf fmt in
  let header =
    [
      line "module %s" t.sn_module;
      line "dead %s" (Option.value ~default:"-" t.sn_dead);
      line "depth %d" t.sn_depth;
    ]
  in
  let principal_lines ps =
    line "principal %s kind=%s name=0x%x quarantined=%s flow=%s" ps.ps_desc
      (kind_name ps.ps_kind) ps.ps_name
      (Option.value ~default:"-" ps.ps_quarantined)
      (Option.value ~default:"-" ps.ps_flow)
    :: List.map (fun (b, s) -> line "  write 0x%x+%d" b s) ps.ps_writes
    @ List.map (fun c -> line "  call 0x%x" c) ps.ps_calls
    @ List.map (fun (r, a) -> line "  ref %s@0x%x" r a) ps.ps_refs
  in
  let global_lines g =
    [
      line "global %s size=%d funcptr=%b bytes=%s" g.gs_name g.gs_size g.gs_funcptr
        (hex_of_bytes g.gs_bytes);
    ]
  in
  let wset_line =
    line "wset %s" (String.concat " " (List.map (Printf.sprintf "0x%x") t.sn_wset))
  in
  let s = t.sn_stats in
  let stats_line =
    line
      "stats annot=%d entry=%d exit=%d wcheck=%d mind=%d kall=%d kchk=%d kel=%d \
       grant=%d revoke=%d switch=%d viol=%d quar=%d esc=%d wdog=%d flow=%d drop=%d"
      s.Stats.s_annotation_actions s.Stats.s_fn_entry s.Stats.s_fn_exit
      s.Stats.s_mem_write_checks s.Stats.s_mod_indcall_checks
      s.Stats.s_kernel_indcall_all s.Stats.s_kernel_indcall_checked
      s.Stats.s_kernel_indcall_elided s.Stats.s_caps_granted s.Stats.s_caps_revoked
      s.Stats.s_principal_switches s.Stats.s_violations s.Stats.s_quarantines
      s.Stats.s_escalations s.Stats.s_watchdog_expiries s.Stats.s_flow_violations
      s.Stats.s_caps_dropped
  in
  header
  @ List.concat_map principal_lines t.sn_principals
  @ List.concat_map global_lines t.sn_globals
  @ [ wset_line; stats_line ]

let render (t : t) : string = String.concat "\n" (render_lines t) ^ "\n"

(** [diff a b] — line-level differences between the renderings, empty
    iff [render a = render b].  Lines only in [a] are prefixed ["-"],
    lines only in [b] are prefixed ["+"]. *)
let diff (a : t) (b : t) : string list =
  let la = render_lines a and lb = render_lines b in
  let rec go la lb acc =
    match (la, lb) with
    | [], [] -> List.rev acc
    | x :: la', [] -> go la' [] (("- " ^ x) :: acc)
    | [], y :: lb' -> go [] lb' (("+ " ^ y) :: acc)
    | x :: la', y :: lb' ->
        if String.equal x y then go la' lb' acc
        else go la' lb' (("+ " ^ y) :: ("- " ^ x) :: acc)
  in
  go la lb []

let equal (a : t) (b : t) : bool = String.equal (render a) (render b)

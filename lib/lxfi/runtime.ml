(** The LXFI runtime (§5): reference monitor on every control transfer
    between the core kernel and modules.

    Responsibilities, mirroring Figure 6 of the paper:

    - track principals per module (shared / global / pointer-named
      instances, with aliases);
    - maintain per-principal capability tables and perform the
      grant/revoke/check operations that annotations prescribe;
    - run {e wrappers} around every kernel→module and module→kernel
      call: shadow-stack push/pop, principal switch, pre and post
      annotation actions;
    - check module stores ([guard_write]) and module indirect calls
      ([guard_indcall]) — the guards the rewriter inserted;
    - check core-kernel indirect calls through module-writable slots
      ([kernel_indirect_call]), with the writer-set fast path;
    - expose the privileged runtime calls modules may invoke directly
      ([lxfi_check], [lxfi_princ_alias], [lxfi_switch_global]). *)

open Kernel_sim

(** Simulated cycle cost of each guard type, charged to the Guard
    category.  These are model constants calibrated so that the netperf
    reproduction exhibits the paper's Figure 12 shape (TCP unchanged,
    UDP TX −35%, CPU 2.2–3.7×); the host-measured ns-per-guard numbers
    of Figure 13 are measured separately by the benchmark harness. *)
module Cost = struct
  let annotation_action = 90
  let fn_entry = 8
  let fn_exit = 7
  let mem_write_check = 12
  let mod_indcall_check = 14
  let kernel_indcall_check = 30
  let kernel_indcall_fastpath = 3
  let principal_switch = 8
end

type module_info = {
  mi_name : string;
  mi_prog : Mir.Ast.prog;  (** instrumented program *)
  mi_shared : Principal.t;
  mi_global : Principal.t;
  mutable mi_principals : Principal.t list;  (** all, including shared+global *)
  mi_aliases : (int, Principal.t) Hashtbl.t;  (** name pointer -> principal *)
  mi_globals : (string, int) Hashtbl.t;
  mi_func_addr : (string, int) Hashtbl.t;
  mi_func_slot : (string, Annot.Registry.slot) Hashtbl.t;
      (** propagated annotation (slot type) per kernel-callable function *)
  mutable mi_ctx : Mir.Interp.ctx option;  (** set by the loader *)
  mi_sections : (string * int * int) list;  (** (section, base, len) *)
  mi_stack_base : int;
  mi_stack_len : int;
  mutable mi_dead : string option;  (** set when the whole module was retired *)
  mutable mi_recent_violations : int list;
      (** cycle stamps of recent violations, for escalation windowing *)
  mutable mi_recent_kinds : Violation.kind list;
      (** violation classes of the current escalation episode, newest
          first, bounded by the escalation threshold — the oldest entry
          is the episode's root cause (later entries are usually
          [Principal_denied] bounces off the already-quarantined
          principal) *)
  mutable mi_last_entry : (string * int64 list) option;
      (** innermost kernel→module entry (function, args) — recorded by
          the quarantine dispatcher so a faulting entry can be replayed
          against a repaired instance *)
  mutable mi_flow : Check.Apiflow.graph option;
      (** enforced kernel-API flow graph (set by the loader under
          [flow_integrity]: a registered policy graph if one exists,
          else self-extracted from the pristine MIR) *)
}

(** The capability shapes an iterator can yield — static metadata used
    by the upgrade compatibility check ([Loader.upgrade]): an iterator
    in an annotation makes the annotation write-granting (or
    REF(t)-granting) exactly when its shape list says so. *)
type cap_shape = Swrite | Scall | Sref of string

type kexport = {
  ke_name : string;
  ke_addr : int;
  ke_params : string list;
  ke_annot : Annot.Ast.t;
  ke_ahash : int64;
  ke_impl : int64 list -> int64;
}

type t = {
  kst : Kstate.t;
  config : Config.t;
  registry : Annot.Registry.t;
  stats : Stats.t;
  wset : Writer_set.t;
  modules : (string, module_info) Hashtbl.t;
  kexports : (string, kexport) Hashtbl.t;
  kexport_by_addr : (int, kexport) Hashtbl.t;
  flow_graphs : (string, Check.Apiflow.graph) Hashtbl.t;
      (** registered flow policies by module name; a module with no
          entry self-extracts its graph at load time *)
  iterators : (string, t -> int64 list -> Capability.t list) Hashtbl.t;
  iterator_shapes : (string, cap_shape list) Hashtbl.t;
      (** declared yield shapes per iterator; an iterator with no entry
          is conservatively assumed to yield every shape *)
  func_ahash_by_addr : (int, int64) Hashtbl.t;
  mutable current : Principal.t option;  (** None = kernel context *)
  sstack : Shadow_stack.t;
  raw_dispatch : slot:int -> ftype:string -> int64 list -> int64;
  kernel_stack_base : int;
  kernel_stack_len : int;
  retired : (int, string) Hashtbl.t;
      (** retired callable address -> owning module (dangling-pointer
          attribution after unload/escalation) *)
  mutable quarantine_log : Diag.t list;
      (** structured quarantine/escalation diagnostics, newest first *)
  mutable last_callee : Principal.t option;
      (** callee principal of the innermost kernel→module entry; lets
          the quarantine policy attribute faults ([Kmem.Fault]/[Oops])
          that carry no principal of their own *)
  mutable last_violation : Violation.info option;
      (** most recent violation the quarantine policy handled *)
  mutable on_escalate : (module_info -> reason:string -> unit) list;
      (** observers called at the start of escalation, before any
          principal is quarantined — the hook the repair subsystem uses
          to capture the pre-retirement snapshot and trace window *)
}

let charge rt n = Kcycles.charge rt.kst.Kstate.cycles Kcycles.Guard n

(** [attach_trace rt buf] wires the {!Trace} subsystem to this runtime:
    events are stamped from the simulated cycle clock and the current
    principal.  Tracing stays zero-cost when unattached — every hook
    site below checks [!Trace.on] before constructing anything, and
    emitting never charges cycles. *)
let attach_trace rt buf =
  Trace.attach buf
    ~clock:(fun () ->
      let c = rt.kst.Kstate.cycles in
      (Kcycles.kernel c, Kcycles.module_ c, Kcycles.guard c))
    ~principal:(fun () ->
      match rt.current with None -> "(kernel)" | Some p -> Principal.describe p)

let create ~kst ~(config : Config.t) =
  let registry = Annot.Registry.create () in
  let kernel_stack_len = 16 * 1024 in
  let kernel_stack_base = Kstate.alloc_stack kst (2 * kernel_stack_len) in
  (* The shadow stack lies adjacent to the thread's kernel stack (§5)
     but is never covered by any WRITE capability. *)
  let sstack =
    Shadow_stack.create ~mem_base:(kernel_stack_base + kernel_stack_len)
      ~mem_len:kernel_stack_len
  in
  let raw_dispatch = kst.Kstate.indcall in
  let rt =
    {
      kst;
      config;
      registry;
      stats = Stats.create ();
      wset = Writer_set.create ();
      modules = Hashtbl.create 16;
      kexports = Hashtbl.create 64;
      kexport_by_addr = Hashtbl.create 64;
      flow_graphs = Hashtbl.create 8;
      iterators = Hashtbl.create 16;
      iterator_shapes = Hashtbl.create 16;
      func_ahash_by_addr = Hashtbl.create 64;
      current = None;
      sstack;
      raw_dispatch;
      kernel_stack_base;
      kernel_stack_len;
      retired = Hashtbl.create 16;
      quarantine_log = [];
      last_callee = None;
      last_violation = None;
      on_escalate = [];
    }
  in
  rt

let current_module rt =
  match rt.current with
  | None -> None
  | Some p -> Hashtbl.find_opt rt.modules p.Principal.owner

let module_named rt name = Hashtbl.find_opt rt.modules name

(** Fault location of a module's innermost executing function, e.g.
    ["entry@1234"] (function name @ interpreter step count). *)
let where_of mi =
  match mi.mi_ctx with
  | Some ctx when ctx.Mir.Interp.cur_fn <> "" ->
      Some (Printf.sprintf "%s@%d" ctx.Mir.Interp.cur_fn ctx.Mir.Interp.steps)
  | _ -> None

(** [retire_module rt mi] pulls every kernel-callable address the
    module registered out of the dispatch tables, records it in
    [rt.retired], and empties every principal's capability table —
    WRITE ranges, CALL targets, and REF capabilities of {e every}
    registered rtype.  The explicit clear matters because principal
    records can outlive the module (saved [current] pointers, alias
    tables, snapshots holding a [Principal.t]): a retired module must
    hold nothing, not merely be unreachable.  The retirement path is
    shared by [Loader.unload] and quarantine escalation. *)
let retire_module rt mi =
  Hashtbl.iter
    (fun _fname addr ->
      Hashtbl.remove rt.kst.Kstate.calltab addr;
      Hashtbl.remove rt.func_ahash_by_addr addr;
      Hashtbl.replace rt.retired addr mi.mi_name)
    mi.mi_func_addr;
  List.iter
    (fun (p : Principal.t) -> Captable.clear p.Principal.caps)
    mi.mi_principals;
  Hashtbl.remove rt.modules mi.mi_name

(** {1 Kernel exports and capability iterators} *)

(** [register_kexport rt ~name ~params ~annot impl] registers an
    annotated kernel export from an already-parsed annotation; the
    hash participates in indirect-call matching.  Validation against
    [params] still runs, so a registered export is always internally
    consistent ([Error] is {!Annot.Registry.Invalid} otherwise). *)
let register_kexport rt ~name ~params ~annot impl :
    (kexport, Annot.Registry.error) result =
  match Annot.Ast.validate ~params annot with
  | Error msg -> Error (Annot.Registry.Invalid { name; msg })
  | Ok () ->
      let addr = Ksym.intern rt.kst.Kstate.sym name in
      let ke =
        {
          ke_name = name;
          ke_addr = addr;
          ke_params = params;
          ke_annot = annot;
          ke_ahash = Annot.Hash.of_annot ~params annot;
          ke_impl = impl;
        }
      in
      Hashtbl.replace rt.kexports name ke;
      Hashtbl.replace rt.kexport_by_addr addr ke;
      Hashtbl.replace rt.func_ahash_by_addr addr ke.ke_ahash;
      (* Kernel exports are also raw-callable through the kernel's own
         dispatch table (stock kernels call them without wrappers). *)
      Kstate.register_target rt.kst ~name ~addr ~kind:Kstate.Kernel_fn (fun args ->
          ke.ke_impl args);
      Ok ke

(** Thin convenience that parses the annotation source first. *)
let register_kexport_src rt ~name ~params ~annot_src impl :
    (kexport, Annot.Registry.error) result =
  match Annot.Parser.parse annot_src with
  | Error err -> Error (Annot.Registry.Parse { name; src = annot_src; err })
  | Ok annot -> register_kexport rt ~name ~params ~annot impl

let register_kexport_exn rt ~name ~params ~annot_src impl =
  Annot.Registry.ok_exn (register_kexport_src rt ~name ~params ~annot_src impl)

(** [register_flow_graph rt ~module_ g] installs [g] as the flow policy
    the next load of [module_] will enforce, instead of self-extracting
    a graph from the loaded MIR.  This is how an audited benign graph
    can be pinned while a (possibly tampered) binary is loaded — the
    SFIP threat model, and what the fuzz harness's flow-class mutants
    exercise. *)
let register_flow_graph rt ~module_ (g : Check.Apiflow.graph) =
  Hashtbl.replace rt.flow_graphs module_ g

let register_iterator ?shapes rt ~name fn =
  Hashtbl.replace rt.iterators name fn;
  match shapes with
  | Some ss -> Hashtbl.replace rt.iterator_shapes name ss
  | None -> ()

(** [iterator_can_yield rt ~name shape] — can iterator [name] yield a
    capability of [shape]?  Unknown iterators conservatively yield
    everything (so an upgrade never restores a grant on the strength of
    a missing declaration — the caller treats "can yield" as "the
    annotation surface still justifies this capability kind"). *)
let iterator_can_yield rt ~name (shape : cap_shape) =
  match Hashtbl.find_opt rt.iterator_shapes name with
  | None -> true
  | Some ss -> (
      match shape with
      | Sref rtype ->
          List.exists (function Sref r -> r = rtype | _ -> false) ss
      | s -> List.mem s ss)

let find_kexport rt name =
  match Hashtbl.find_opt rt.kexports name with
  | Some ke -> ke
  | None -> invalid_arg (Printf.sprintf "unknown kernel export %s" name)

(** {1 Capability operations} *)

let all_principals rt =
  Hashtbl.fold (fun _ mi acc -> mi.mi_principals @ acc) rt.modules []

(** Capability ownership with the implicit-access rules of §3.1:
    instance principals see the shared principal's capabilities; the
    global principal sees everything the module holds. *)
let principal_has rt (p : Principal.t) (c : Capability.t) : bool =
  let table_has (tbl : Captable.t) =
    match c with
    | Capability.Cwrite { base; size } -> Captable.has_write tbl ~addr:base ~size
    | Capability.Cref { rtype; addr } -> Captable.has_ref tbl ~rtype ~addr
    | Capability.Ccall { target } -> Captable.has_call tbl ~target
  in
  if p.Principal.quarantined <> None then false
  else if table_has p.Principal.caps then true
  else
    match Hashtbl.find_opt rt.modules p.Principal.owner with
    | None -> false
    | Some mi -> (
        match p.Principal.kind with
        | Principal.Shared -> false
        | Principal.Instance ->
            mi.mi_shared.Principal.quarantined = None
            && table_has mi.mi_shared.Principal.caps
        | Principal.Global ->
            List.exists
              (fun (q : Principal.t) ->
                q.Principal.quarantined = None && table_has q.Principal.caps)
              mi.mi_principals)

(** [has_write_covering rt p ~addr ~size] — like [principal_has] for a
    WRITE query at an interior address. *)
let has_write_covering rt p ~addr ~size =
  principal_has rt p (Capability.Cwrite { base = addr; size })

let grant ?(ctx = "") rt (p : Principal.t) (c : Capability.t) =
  let dropped =
    match rt.kst.Kstate.finject with
    | Some fi when Finject.fires fi Finject.Drop_grant ->
        rt.stats.Stats.caps_dropped <- rt.stats.Stats.caps_dropped + 1;
        if !Trace.on then
          Trace.emit (Trace.Cap (Trace.Dropped, Capability.to_string c, ctx));
        Klog.debug "finject: dropped grant of %s to %s" (Capability.to_string c)
          (Principal.describe p);
        true
    | _ -> false
  in
  if not dropped then begin
    rt.stats.Stats.caps_granted <- rt.stats.Stats.caps_granted + 1;
    if !Trace.on then Trace.emit (Trace.Cap (Trace.Grant, Capability.to_string c, ctx));
    match c with
    | Capability.Cwrite { base; size } ->
        Captable.add_write p.Principal.caps ~base ~size;
        (* User-space windows are not writer-set-marked: the kernel never
           loads function pointers it will call from user memory (and a
           corrupted slot pointing *into* user space is caught by the
           CALL-capability check on the slot's own writers). *)
        if not (Kmem.Layout.is_user base) then Writer_set.mark_range rt.wset ~base ~size
    | Capability.Cref { rtype; addr } -> Captable.add_ref p.Principal.caps ~rtype ~addr
    | Capability.Ccall { target } -> Captable.add_call p.Principal.caps ~target
  end

(** [revoke_from_all rt c] removes [c] (and for WRITE, anything
    intersecting its range) from every principal in the system — the
    transfer semantics of §3.3 that guarantee no stale copies survive
    object reuse. *)
let revoke_from_all ?(ctx = "") rt (c : Capability.t) =
  rt.stats.Stats.caps_revoked <- rt.stats.Stats.caps_revoked + 1;
  if !Trace.on then Trace.emit (Trace.Cap (Trace.Revoke, Capability.to_string c, ctx));
  List.iter
    (fun (p : Principal.t) ->
      match c with
      | Capability.Cwrite { base; size } ->
          ignore (Captable.remove_write_intersecting p.Principal.caps ~base ~size)
      | Capability.Cref { rtype; addr } -> Captable.remove_ref p.Principal.caps ~rtype ~addr
      | Capability.Ccall { target } -> Captable.remove_call p.Principal.caps ~target)
    (all_principals rt)

(** {1 Principal management} *)

let find_or_create_instance _rt mi ~name_ptr =
  match Hashtbl.find_opt mi.mi_aliases name_ptr with
  | Some p -> p
  | None ->
      let p =
        Principal.make ~kind:Principal.Instance ~owner:mi.mi_name ~primary_name:name_ptr
      in
      mi.mi_principals <- p :: mi.mi_principals;
      Hashtbl.replace mi.mi_aliases name_ptr p;
      Klog.debug "new principal %s" (Principal.describe p);
      p

(** {1 Annotation evaluation} *)

type direction =
  | M2K  (** module calling a kernel export *)
  | K2M  (** kernel invoking a module function *)

type eval_env = { params : string list; args : int64 list; ret : int64 option }

let rec eval_cexpr rt env (e : Annot.Ast.cexpr) : int64 =
  match e with
  | Annot.Ast.Cint n -> n
  | Annot.Ast.Cparam p -> (
      match List.assoc_opt p (List.combine env.params env.args) with
      | Some v -> v
      | None ->
          invalid_arg (Printf.sprintf "annotation references unknown parameter %s" p))
  | Annot.Ast.Creturn -> (
      match env.ret with
      | Some v -> v
      | None -> invalid_arg "annotation references return value in pre context")
  | Annot.Ast.Cneg e -> Int64.neg (eval_cexpr rt env e)
  | Annot.Ast.Csizeof s -> Int64.of_int (Ktypes.sizeof rt.kst.Kstate.types s)
  | Annot.Ast.Cbin (op, a, b) ->
      let va = eval_cexpr rt env a and vb = eval_cexpr rt env b in
      let bool_ x = if x then 1L else 0L in
      (match op with
      | Annot.Ast.Oeq -> bool_ (Int64.equal va vb)
      | Annot.Ast.One -> bool_ (not (Int64.equal va vb))
      | Annot.Ast.Olt -> bool_ (Int64.compare va vb < 0)
      | Annot.Ast.Ole -> bool_ (Int64.compare va vb <= 0)
      | Annot.Ast.Ogt -> bool_ (Int64.compare va vb > 0)
      | Annot.Ast.Oge -> bool_ (Int64.compare va vb >= 0)
      | Annot.Ast.Oadd -> Int64.add va vb
      | Annot.Ast.Osub -> Int64.sub va vb
      | Annot.Ast.Omul -> Int64.mul va vb
      | Annot.Ast.Oand -> bool_ (va <> 0L && vb <> 0L)
      | Annot.Ast.Oor -> bool_ (va <> 0L || vb <> 0L))

(** Resolve a caplist to concrete capabilities. *)
let caps_of_caplist rt env (cl : Annot.Ast.caplist) : Capability.t list =
  match cl with
  | Annot.Ast.Inline (ct, pe, se) -> (
      let ptr = Int64.to_int (eval_cexpr rt env pe) in
      match ct with
      | Annot.Ast.Write ->
          let size =
            match se with
            | Some e -> Int64.to_int (eval_cexpr rt env e)
            | None -> 8 (* documented default when no referent type is known *)
          in
          if size <= 0 then [] else [ Capability.Cwrite { base = ptr; size } ]
      | Annot.Ast.Call -> [ Capability.Ccall { target = ptr } ]
      | Annot.Ast.Ref rtype -> [ Capability.Cref { rtype; addr = ptr } ])
  | Annot.Ast.Iter (fname, argexprs) -> (
      match Hashtbl.find_opt rt.iterators fname with
      | None -> invalid_arg (Printf.sprintf "unknown capability iterator %s" fname)
      | Some fn -> fn rt (List.map (eval_cexpr rt env) argexprs))

let violation_kind_of_cap = function
  | Capability.Cwrite _ -> Violation.Write_denied
  | Capability.Cref _ -> Violation.Ref_denied
  | Capability.Ccall _ -> Violation.Call_denied

let check_owned rt mi (p : Principal.t) (c : Capability.t) ~ctx =
  if rt.config.Config.mode = Config.Lxfi && not (principal_has rt p c) then
    Violation.raise_ ~kind:(violation_kind_of_cap c) ~module_:mi.mi_name
      "%s: principal %s does not own %s" ctx (Principal.describe p)
      (Capability.to_string c)

(** Execute one annotation action.  [mp] is the module-side principal
    of the call (caller for M2K, callee for K2M); the kernel side is
    implicitly trusted and owns everything. *)
let rec run_action rt mi (mp : Principal.t) ~dir ~phase env (a : Annot.Ast.action) =
  (* Cost accounting is per capability processed, not per syntactic
     action: an skb_caps transfer does twice the table work of a plain
     lock check, and the netperf CPU inflation (§8.4) is dominated by
     exactly this "cost of capability operations". *)
  let account caps =
    let n = max 1 (List.length caps) in
    rt.stats.Stats.annotation_actions <- rt.stats.Stats.annotation_actions + n;
    charge rt (n * Cost.annotation_action);
    caps
  in
  let caps_of_caplist rt env cl = account (caps_of_caplist rt env cl) in
  let xfi = rt.config.Config.mode = Config.Xfi in
  match a with
  | Annot.Ast.Cif (c, a') -> if eval_cexpr rt env c <> 0L then run_action rt mi mp ~dir ~phase env a'
  | Annot.Ast.Check cl ->
      if not xfi then
        List.iter
          (fun cap ->
            match (dir, phase) with
            | M2K, _ -> check_owned rt mi mp cap ~ctx:"check"
            | K2M, _ -> () (* caller is the kernel; trivially owned *))
          (caps_of_caplist rt env cl)
  | Annot.Ast.Copy cl ->
      List.iter
        (fun cap ->
          match (dir, phase) with
          | M2K, `Pre ->
              (* module -> kernel: verify source ownership; the kernel
                 needs no table entry. *)
              if not xfi then check_owned rt mi mp cap ~ctx:"copy(pre)"
          | M2K, `Post -> grant ~ctx:"copy(post)" rt mp cap
          | K2M, `Pre -> grant ~ctx:"copy(pre)" rt mp cap
          | K2M, `Post ->
              (* callee (module) must own it; kernel side is implicit *)
              if not xfi then check_owned rt mi mp cap ~ctx:"copy(post)")
        (caps_of_caplist rt env cl)
  | Annot.Ast.Transfer cl ->
      List.iter
        (fun cap ->
          match (dir, phase) with
          | M2K, `Pre ->
              if not xfi then check_owned rt mi mp cap ~ctx:"transfer(pre)";
              revoke_from_all ~ctx:"transfer(pre)" rt cap
          | M2K, `Post ->
              revoke_from_all ~ctx:"transfer(post)" rt cap;
              grant ~ctx:"transfer(post)" rt mp cap
          | K2M, `Pre ->
              revoke_from_all ~ctx:"transfer(pre)" rt cap;
              grant ~ctx:"transfer(pre)" rt mp cap
          | K2M, `Post ->
              if not xfi then check_owned rt mi mp cap ~ctx:"transfer(post)";
              revoke_from_all ~ctx:"transfer(post)" rt cap)
        (caps_of_caplist rt env cl)

let run_actions rt mi mp ~dir ~phase env actions =
  List.iter (run_action rt mi mp ~dir ~phase env) actions

(** {1 Wrappers} *)

let entry_guard rt =
  rt.stats.Stats.fn_entry <- rt.stats.Stats.fn_entry + 1;
  charge rt Cost.fn_entry;
  if !Trace.on then Trace.emit (Trace.Guard Trace.Gentry)

let exit_guard rt =
  rt.stats.Stats.fn_exit <- rt.stats.Stats.fn_exit + 1;
  charge rt Cost.fn_exit;
  if !Trace.on then Trace.emit (Trace.Guard Trace.Gexit)

(** [call_kexport rt ke args] — module→kernel crossing.  The wrapper
    validates pre actions against the calling principal, runs the
    kernel implementation in kernel context, then applies post actions
    (grants flowing back to the caller). *)
let call_kexport rt (ke : kexport) args =
  match rt.config.Config.mode with
  | Config.Stock -> ke.ke_impl args
  | Config.Xfi | Config.Lxfi -> (
      let caller = rt.current in
      match caller with
      | None ->
          (* Kernel code calling a kernel export: no boundary. *)
          ke.ke_impl args
      | Some mp ->
          let mi =
            match Hashtbl.find_opt rt.modules mp.Principal.owner with
            | Some mi -> mi
            | None -> invalid_arg "current principal belongs to unknown module"
          in
          (* Syscall-flow integrity: advance the caller principal's flow
             automaton, or fault.  Enforced only within kernel-entered
             activations (an enclosing wrapper frame exists) so that bare
             harness calls carry no flow state; checked before
             [entry_guard] so a flow violation perturbs no other
             counter and charges no cycles. *)
          (if
             rt.config.Config.mode = Config.Lxfi
             && rt.config.Config.flow_integrity
             && Shadow_stack.depth rt.sstack > 0
           then
             match mi.mi_flow with
             | None -> ()
             | Some g ->
                 let pos = mp.Principal.flow_pos in
                 if Check.Apiflow.permits g ~pos ke.ke_name then
                   mp.Principal.flow_pos <- Some ke.ke_name
                 else begin
                   rt.stats.Stats.flow_violations <-
                     rt.stats.Stats.flow_violations + 1;
                   Violation.raise_ ~principal:mp ?where:(where_of mi)
                     ~kind:Violation.Flow_violation ~module_:mi.mi_name
                     "call to %s is off the module's flow graph (position: %s)"
                     ke.ke_name
                     (match pos with None -> "(start)" | Some p -> p)
                 end);
          entry_guard rt;
          if !Trace.on then Trace.emit (Trace.Span_begin (Trace.M2k, ke.ke_name));
          let token =
            Shadow_stack.push rt.sstack ~wrapper:ke.ke_name ~saved_principal:caller
          in
          let run () =
            let env = { params = ke.ke_params; args; ret = None } in
            run_actions rt mi mp ~dir:M2K ~phase:`Pre env
              (Annot.Ast.pre_actions ke.ke_annot);
            rt.current <- None;
            let ret = ke.ke_impl args in
            rt.current <- Some mp;
            let env = { env with ret = Some ret } in
            run_actions rt mi mp ~dir:M2K ~phase:`Post env
              (Annot.Ast.post_actions ke.ke_annot);
            ret
          in
          (match run () with
          | ret ->
              rt.current <- Shadow_stack.pop rt.sstack ~wrapper:ke.ke_name ~token;
              if !Trace.on then Trace.emit (Trace.Span_end (Trace.M2k, ke.ke_name));
              exit_guard rt;
              ret
          | exception e ->
              rt.current <- Shadow_stack.pop rt.sstack ~wrapper:ke.ke_name ~token;
              if !Trace.on then Trace.emit (Trace.Span_end (Trace.M2k, ke.ke_name));
              raise e))

(** Select the callee principal for a kernel→module call according to
    the slot type's [principal] clause. *)
let select_principal rt mi (slot : Annot.Registry.slot) env =
  match Annot.Ast.principal_of slot.Annot.Registry.sl_annot with
  | None | Some Annot.Ast.Pshared -> mi.mi_shared
  | Some Annot.Ast.Pglobal -> mi.mi_global
  | Some (Annot.Ast.Pexpr e) ->
      if rt.config.Config.mode = Config.Lxfi then
        let name_ptr = Int64.to_int (eval_cexpr rt env e) in
        find_or_create_instance rt mi ~name_ptr
      else mi.mi_shared

let run_mir rt mi fname args =
  match mi.mi_ctx with
  | None -> invalid_arg (Printf.sprintf "module %s has no interpreter context" mi.mi_name)
  | Some ctx -> (
      try Mir.Interp.run ctx fname args
      with Mir.Interp.Fuel_exhausted _ ->
        (* Only ever raised when we armed the watchdog below. *)
        rt.stats.Stats.watchdog_expiries <- rt.stats.Stats.watchdog_expiries + 1;
        Violation.raise_ ?principal:rt.current ?where:(where_of mi)
          ~kind:Violation.Watchdog_expired ~module_:mi.mi_name
          "entry exceeded its fuel budget of %d"
          (Option.value ~default:0 rt.config.Config.watchdog_fuel))

(** [invoke_module_function rt mi fname args] — kernel→module crossing
    through the function's propagated annotation (its slot type).  The
    paper's safe default applies: a function with no annotation cannot
    be invoked from the kernel under LXFI. *)
let invoke_module_function rt mi fname args =
  match rt.config.Config.mode with
  | Config.Stock -> run_mir rt mi fname args
  | Config.Xfi | Config.Lxfi -> (
      match Hashtbl.find_opt mi.mi_func_slot fname with
      | None ->
          if rt.config.Config.mode = Config.Lxfi then
            Violation.raise_ ~kind:Violation.Annot_mismatch ~module_:mi.mi_name
              "kernel invoked unannotated module function %s" fname
          else run_mir rt mi fname args
      | Some slot ->
          (match mi.mi_dead with
          | Some reason ->
              Violation.raise_ ~kind:Violation.Principal_denied ~module_:mi.mi_name
                "kernel invoked function %s of dead module (%s)" fname reason
          | None -> ());
          entry_guard rt;
          let wrapper = mi.mi_name ^ ":" ^ fname in
          if !Trace.on then Trace.emit (Trace.Span_begin (Trace.K2m, wrapper));
          let token = Shadow_stack.push rt.sstack ~wrapper ~saved_principal:rt.current in
          (* Flow-automaton bookkeeping for this activation: (principal,
             saved position, saved nesting depth).  A top-level entry
             continues from the principal's at-rest position (so the
             graph's boundary edges check the cross-activation step); a
             nested re-entry of an in-flight principal starts fresh and
             the outer position is restored on exit.  An aborted
             activation resets to start — a contained fault must not
             leave a position later calls would be judged against. *)
          let flow_saved = ref None in
          let flow_exit ~ok =
            match !flow_saved with
            | None -> ()
            | Some ((callee : Principal.t), pos, depth) ->
                callee.Principal.flow_depth <- depth;
                if not ok then begin
                  callee.Principal.flow_pos <- None;
                  mi.mi_global.Principal.flow_pos <- None
                end
                else if depth > 0 then callee.Principal.flow_pos <- pos
          in
          let run () =
            let env = { params = slot.Annot.Registry.sl_params; args; ret = None } in
            let callee = select_principal rt mi slot env in
            (match callee.Principal.quarantined with
            | Some reason ->
                Violation.raise_ ~principal:callee ~kind:Violation.Principal_denied
                  ~module_:mi.mi_name "entry %s via quarantined principal (%s)" fname
                  reason
            | None -> ());
            rt.last_callee <- Some callee;
            if rt.config.Config.mode = Config.Lxfi && rt.config.Config.flow_integrity
            then begin
              flow_saved :=
                Some (callee, callee.Principal.flow_pos, callee.Principal.flow_depth);
              if callee.Principal.flow_depth > 0 then
                callee.Principal.flow_pos <- None;
              callee.Principal.flow_depth <- callee.Principal.flow_depth + 1
            end;
            (* Arm the per-entry watchdog: the budget is per kernel→module
               crossing, so a wedged entry point expires instead of
               soft-locking the simulation. *)
            (match (rt.config.Config.watchdog_fuel, mi.mi_ctx) with
            | Some budget, Some ctx ->
                ctx.Mir.Interp.watchdog <- true;
                Mir.Interp.refuel ~fuel:budget ctx
            | _ -> ());
            run_actions rt mi callee ~dir:K2M ~phase:`Pre env
              (Annot.Ast.pre_actions slot.Annot.Registry.sl_annot);
            rt.stats.Stats.principal_switches <- rt.stats.Stats.principal_switches + 1;
            charge rt Cost.principal_switch;
            if !Trace.on then Trace.emit (Trace.Switch (Principal.describe callee));
            rt.current <- Some callee;
            let ret = run_mir rt mi fname args in
            (* Post actions run against the callee principal even if the
               module switched principals internally (switch_global). *)
            let env = { env with ret = Some ret } in
            run_actions rt mi callee ~dir:K2M ~phase:`Post env
              (Annot.Ast.post_actions slot.Annot.Registry.sl_annot);
            ret
          in
          (match run () with
          | ret ->
              flow_exit ~ok:true;
              rt.current <- Shadow_stack.pop rt.sstack ~wrapper ~token;
              if !Trace.on then Trace.emit (Trace.Span_end (Trace.K2m, wrapper));
              exit_guard rt;
              ret
          | exception e ->
              flow_exit ~ok:false;
              rt.current <- Shadow_stack.pop rt.sstack ~wrapper ~token;
              if !Trace.on then Trace.emit (Trace.Span_end (Trace.K2m, wrapper));
              raise e))

(** {1 Module-side guards (inserted by the rewriter)} *)

let guard_write rt mi ~addr ~size =
  rt.stats.Stats.mem_write_checks <- rt.stats.Stats.mem_write_checks + 1;
  charge rt Cost.mem_write_check;
  if !Trace.on then Trace.emit (Trace.Guard Trace.Gwrite);
  match rt.current with
  | None ->
      Violation.raise_ ~kind:Violation.Write_denied ~module_:mi.mi_name
        "module store executed without a module principal"
  | Some p ->
      if not (has_write_covering rt p ~addr ~size) then
        Violation.raise_ ~principal:p ?where:(where_of mi) ~kind:Violation.Write_denied
          ~module_:mi.mi_name "store of %d bytes at 0x%x by %s" size addr
          (Principal.describe p)

let guard_indcall rt mi ~target =
  rt.stats.Stats.mod_indcall_checks <- rt.stats.Stats.mod_indcall_checks + 1;
  charge rt Cost.mod_indcall_check;
  if !Trace.on then Trace.emit (Trace.Guard Trace.Gindcall);
  match rt.current with
  | None ->
      Violation.raise_ ~kind:Violation.Call_denied ~module_:mi.mi_name
        "module indirect call without a module principal"
  | Some p ->
      if not (principal_has rt p (Capability.Ccall { target })) then
        Violation.raise_ ~principal:p ?where:(where_of mi) ~kind:Violation.Call_denied
          ~module_:mi.mi_name "indirect call to %s by %s"
          (Fmt.str "%a" (Ksym.pp_addr rt.kst.Kstate.sym) target)
          (Principal.describe p)

(** {1 Kernel-side indirect-call checking (§4.1)} *)

(** Writer principals of a memory word: every principal holding a WRITE
    capability covering it (computed by walking the global principal
    list, as in the paper). *)
let writers_of rt ~addr =
  List.filter
    (fun (p : Principal.t) ->
      Captable.has_write p.Principal.caps ~addr ~size:1
      ||
      match Captable.find_write_covering p.Principal.caps ~addr with
      | Some _ -> true
      | None -> false)
    (all_principals rt)

(** The checking dispatcher installed as [Kstate.indcall] under LXFI.
    Implements [lxfi_check_indcall(pptr, ahash)]:

    1. writer-set fast path: if no principal could have written the
       slot, skip the capability check entirely;
    2. otherwise every writer principal must hold a CALL capability for
       the target;
    3. the target function's annotation hash must match the slot
       type's. *)
let kernel_indirect_call rt ~slot ~ftype args =
  rt.stats.Stats.kernel_indcall_all <- rt.stats.Stats.kernel_indcall_all + 1;
  let dispatch () = rt.raw_dispatch ~slot ~ftype args in
  (* Under quarantine, a pointer to a retired (unloaded/escalated)
     function is a contained violation, not an oops: the fault is
     attributed to the module that owned the address. *)
  (if rt.config.Config.quarantine then
     let target = Kmem.read_ptr rt.kst.Kstate.mem slot in
     match Hashtbl.find_opt rt.retired target with
     | Some owner ->
         Violation.raise_ ~kind:Violation.Call_denied ~module_:owner
           "kernel indirect call via slot 0x%x (%s) to retired address 0x%x" slot ftype
           target
     | None -> ());
  if rt.config.Config.mode <> Config.Lxfi then dispatch ()
  else if rt.config.Config.writer_set_tracking && not (Writer_set.maybe_written rt.wset slot)
  then begin
    rt.stats.Stats.kernel_indcall_elided <- rt.stats.Stats.kernel_indcall_elided + 1;
    charge rt Cost.kernel_indcall_fastpath;
    if !Trace.on then Trace.emit (Trace.Guard Trace.Gkindcall_elided);
    dispatch ()
  end
  else begin
    rt.stats.Stats.kernel_indcall_checked <- rt.stats.Stats.kernel_indcall_checked + 1;
    charge rt Cost.kernel_indcall_check;
    if !Trace.on then Trace.emit (Trace.Guard Trace.Gkindcall_checked);
    let target = Kmem.read_ptr rt.kst.Kstate.mem slot in
    let writers = writers_of rt ~addr:slot in
    match writers with
    | [] ->
        (* Writer-set false positive: the line was marked but no
           principal actually holds WRITE on the slot — benign. *)
        dispatch ()
    | _ ->
        List.iter
          (fun (p : Principal.t) ->
            if not (principal_has rt p (Capability.Ccall { target })) then
              Violation.raise_ ~principal:p ~kind:Violation.Call_denied
                ~module_:p.Principal.owner
                "kernel indirect call via slot 0x%x (%s): writer %s lacks CALL for %s"
                slot ftype (Principal.describe p)
                (Fmt.str "%a" (Ksym.pp_addr rt.kst.Kstate.sym) target))
          writers;
        (let slot_hash =
           match Annot.Registry.find_opt rt.registry ftype with
           | Some s -> s.Annot.Registry.sl_ahash
           | None -> Annot.Hash.empty
         in
         match Hashtbl.find_opt rt.func_ahash_by_addr target with
         | Some h when not (Int64.equal h slot_hash) ->
             Violation.raise_ ~kind:Violation.Annot_mismatch ~module_:"(kernel)"
               "slot 0x%x type %s: annotation hash mismatch for target %s" slot ftype
               (Fmt.str "%a" (Ksym.pp_addr rt.kst.Kstate.sym) target)
         | Some _ | None ->
             (* Unannotated targets are accepted, matching the paper's
                implementation status (§7): static kernel functions
                carry no annotations. *)
             ());
        dispatch ()
  end

(** [install rt] points the kernel's indirect-call dispatcher at the
    checking version.  Call once after boot. *)
let install rt =
  rt.kst.Kstate.indcall <- (fun ~slot ~ftype args -> kernel_indirect_call rt ~slot ~ftype args)

(** {1 Privileged runtime calls available to module code}

    These are importable as [lxfi_*] and may only be reached through
    direct calls (the rewriter never grants CALL capabilities for
    them), matching §3.4's requirement that privilege manipulations be
    statically coupled with their guarding checks. *)

let require_current_mi rt ~who =
  match rt.current with
  | Some p -> (
      match Hashtbl.find_opt rt.modules p.Principal.owner with
      | Some mi -> (p, mi)
      | None ->
          Violation.raise_ ~kind:Violation.Principal_denied ~module_:"(unknown)"
            "%s called without module context" who)
  | None ->
      Violation.raise_ ~kind:Violation.Principal_denied ~module_:"(kernel)"
        "%s called from kernel context" who

(** [lxfi_check rt ~rtype ~addr] — module-inserted explicit REF check
    (line 72 of Figure 4). *)
let lxfi_check rt ~rtype ~addr =
  if rt.config.Config.mode = Config.Lxfi then begin
    let p, mi = require_current_mi rt ~who:"lxfi_check" in
    if not (principal_has rt p (Capability.Cref { rtype; addr })) then
      Violation.raise_ ~principal:p ?where:(where_of mi) ~kind:Violation.Ref_denied
        ~module_:mi.mi_name "lxfi_check: %s lacks REF(%s, 0x%x)" (Principal.describe p)
        rtype addr
  end

(** [lxfi_princ_alias rt ~existing ~fresh] — create name [fresh] for
    the principal currently named [existing] (Figure 4 line 73). *)
let lxfi_princ_alias rt ~existing ~fresh =
  if rt.config.Config.mode = Config.Lxfi then begin
    let p, mi = require_current_mi rt ~who:"lxfi_princ_alias" in
    match Hashtbl.find_opt mi.mi_aliases existing with
    | Some target -> Hashtbl.replace mi.mi_aliases fresh target
    | None ->
        (* Aliasing a not-yet-materialised name: if the caller runs as
           the instance principal named [existing], alias to it. *)
        if p.Principal.kind = Principal.Instance && p.Principal.primary_name = existing
        then Hashtbl.replace mi.mi_aliases fresh p
        else
          Violation.raise_ ~kind:Violation.Principal_denied ~module_:mi.mi_name
            "lxfi_princ_alias: no principal named 0x%x" existing
  end

(** [lxfi_switch_global rt] — switch the current task to the module's
    global principal (for cross-instance state); undone automatically
    when the enclosing wrapper returns. *)
let lxfi_switch_global rt =
  if rt.config.Config.mode = Config.Lxfi then begin
    let p, mi = require_current_mi rt ~who:"lxfi_switch_global" in
    rt.stats.Stats.principal_switches <- rt.stats.Stats.principal_switches + 1;
    charge rt Cost.principal_switch;
    if !Trace.on then
      Trace.emit (Trace.Switch (Principal.describe mi.mi_global));
    (* The activation's kernel-API sequence continues under the global
       principal: carry the flow position across the switch so the
       automaton still sees one consecutive sequence. *)
    if p != mi.mi_global then
      mi.mi_global.Principal.flow_pos <- p.Principal.flow_pos;
    rt.current <- Some mi.mi_global
  end

(** {1 Interrupt entry/exit}

    An interrupt arriving while a module runs must not execute with the
    module's privileges; the principal is saved on the shadow stack and
    restored at exit (§3.1). *)

let irq_enter rt =
  let token = Shadow_stack.push rt.sstack ~wrapper:"(irq)" ~saved_principal:rt.current in
  rt.current <- None;
  token

let irq_exit rt token = rt.current <- Shadow_stack.pop rt.sstack ~wrapper:"(irq)" ~token

(** Writer-set tracking (§4.1, §5) — the fast path for kernel
    indirect-call checks.

    The runtime tracks, per 64-byte line of the address space, whether
    {e any} module principal has ever been granted a WRITE capability
    covering it since it was last zeroed.  Before the expensive
    indirect-call capability check, the kernel consults this bitmap: a
    function-pointer slot no module could have written needs no check
    at all.  The paper reports this eliminates ~2/3 of indirect-call
    checks on the UDP TX path (Figure 13); the ablation benchmark
    reproduces that ratio.

    False positives (a line granted but never actually written) cost
    only an unnecessary check; false negatives cannot arise from module
    stores because a store needs a WRITE capability, which marks the
    line first.  The remaining false-negative channel — the kernel
    copying a module-written pointer into kernel-private memory — is
    handled at rewrite time by the origin analysis (the kernel call
    sites in [lib/kernel] always pass the original slot address). *)

let line_shift = 6

type t = { lines : (int, unit) Hashtbl.t; mutable marks : int }

let create () = { lines = Hashtbl.create 1024; marks = 0 }

let mark_range t ~base ~size =
  if size > 0 then begin
    let first = base lsr line_shift and last = (base + size - 1) lsr line_shift in
    for l = first to last do
      if not (Hashtbl.mem t.lines l) then begin
        Hashtbl.replace t.lines l ();
        t.marks <- t.marks + 1
      end
    done
  end

(** [maybe_written t addr] — could any module principal have written the
    word at [addr]?  [false] means the check may be skipped. *)
let maybe_written t addr = Hashtbl.mem t.lines (addr lsr line_shift)

(** [clear_range t ~base ~size] — called when memory is zeroed and
    recycled outside module hands (slab page recycling). *)
let clear_range t ~base ~size =
  if size > 0 then begin
    let first = base lsr line_shift and last = (base + size - 1) lsr line_shift in
    for l = first to last do
      Hashtbl.remove t.lines l
    done
  end

let marked_lines t = Hashtbl.length t.lines

(** [fold_lines t f acc] — fold over every marked line index (hash
    order; snapshotting sorts). *)
let fold_lines t f acc = Hashtbl.fold (fun l () acc -> f acc l) t.lines acc

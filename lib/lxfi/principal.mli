(** Module principals (paper §3.1).

    Every module has a {e shared} principal (initial capabilities,
    implicitly available to all the module's principals) and a
    {e global} principal (implicit access to all the module's
    capabilities, for cross-instance state).  Instance principals are
    created on demand and named by pointers — the address of the
    socket / net_device / dm_target the instance stands for — and one
    logical principal may carry several names (aliases).  The access
    rules are implemented by [Runtime.principal_has]. *)

type kind = Shared | Global | Instance

type t = {
  id : int;  (** unique within the runtime *)
  kind : kind;
  owner : string;  (** module name *)
  primary_name : int;  (** 0 for shared/global; first name pointer otherwise *)
  caps : Captable.t;
  mutable quarantined : string option;
      (** quarantine reason; a quarantined principal holds no
          capabilities and cannot be selected for entry *)
  mutable flow_pos : string option;
      (** flow-automaton position: the last kexport this principal
          called, or [None] for the start state *)
  mutable flow_depth : int;
      (** nesting depth of kernel-entered activations running as this
          principal; maintained by [Runtime.invoke_module_function] *)
}

val make : kind:kind -> owner:string -> primary_name:int -> t
(** Allocate a principal with an empty capability table. *)

val describe : t -> string
(** ["mod/shared"], ["mod/global"] or ["mod/instance(0x...)"]. *)

val pp : Format.formatter -> t -> unit

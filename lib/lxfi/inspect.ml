(** Runtime introspection: the /proc-style view of LXFI's state —
    modules, principals, capability populations, writer-set size,
    shadow-stack depth.  Used by the CLI ([lxfi_sim state]), the
    examples, and debugging sessions. *)


type principal_view = {
  pv_describe : string;
  pv_writes : int;
  pv_calls : int;
  pv_refs : int;
  pv_aliases : int list;  (** the name pointers resolving to this principal *)
  pv_quarantined : string option;  (** quarantine reason, if contained *)
}

type module_view = {
  mv_name : string;
  mv_functions : int;
  mv_globals : int;
  mv_sections : (string * int * int) list;
  mv_principals : principal_view list;
  mv_dead : string option;  (** retirement reason after escalation *)
}

type t = {
  iv_mode : string;
  iv_modules : module_view list;
  iv_writer_set_lines : int;
  iv_shadow_depth : int;
  iv_current : string;  (** who is executing right now *)
  iv_stats : Stats.t;
  iv_quarantine_log : Diag.t list;  (** structured containment diagnostics, newest first *)
}

let principal_view (mi : Runtime.module_info) (p : Principal.t) =
  {
    pv_describe = Principal.describe p;
    pv_writes = Captable.write_count p.Principal.caps;
    pv_calls = Captable.call_count p.Principal.caps;
    pv_refs = Captable.ref_count p.Principal.caps;
    pv_aliases =
      Hashtbl.fold
        (fun name q acc -> if q.Principal.id = p.Principal.id then name :: acc else acc)
        mi.Runtime.mi_aliases []
      |> List.sort compare;
    pv_quarantined = p.Principal.quarantined;
  }

let module_view (mi : Runtime.module_info) =
  {
    mv_name = mi.Runtime.mi_name;
    mv_functions = List.length mi.Runtime.mi_prog.Mir.Ast.funcs;
    mv_globals = List.length mi.Runtime.mi_prog.Mir.Ast.globals;
    mv_sections = mi.Runtime.mi_sections;
    mv_principals =
      List.map (principal_view mi)
        (List.sort
           (fun (a : Principal.t) b -> compare a.Principal.id b.Principal.id)
           mi.Runtime.mi_principals);
    mv_dead = mi.Runtime.mi_dead;
  }

let capture (rt : Runtime.t) : t =
  {
    iv_mode = Config.mode_name rt.Runtime.config.Config.mode;
    iv_modules =
      Hashtbl.fold (fun _ mi acc -> module_view mi :: acc) rt.Runtime.modules []
      |> List.sort (fun a b -> compare a.mv_name b.mv_name);
    iv_writer_set_lines = Writer_set.marked_lines rt.Runtime.wset;
    iv_shadow_depth = Shadow_stack.depth rt.Runtime.sstack;
    iv_current =
      (match rt.Runtime.current with
      | None -> "(kernel)"
      | Some p -> Principal.describe p);
    iv_stats = rt.Runtime.stats;
    iv_quarantine_log = rt.Runtime.quarantine_log;
  }

let pp ppf (t : t) =
  Fmt.pf ppf "LXFI state (mode %s, executing %s)@." t.iv_mode t.iv_current;
  Fmt.pf ppf "  writer set: %d marked lines; shadow stack depth %d@."
    t.iv_writer_set_lines t.iv_shadow_depth;
  Fmt.pf ppf "  %a@." Stats.pp t.iv_stats;
  List.iter (fun d -> Fmt.pf ppf "  %a@." Diag.pp d) t.iv_quarantine_log;
  List.iter
    (fun m ->
      Fmt.pf ppf "@.module %s (%d functions, %d globals)%s@." m.mv_name m.mv_functions
        m.mv_globals
        (match m.mv_dead with None -> "" | Some r -> " [DEAD: " ^ r ^ "]");
      List.iter
        (fun (name, base, len) -> Fmt.pf ppf "  section %-8s 0x%x +%d@." name base len)
        m.mv_sections;
      List.iter
        (fun p ->
          Fmt.pf ppf "  %-32s write=%d call=%d ref=%d%s@." p.pv_describe p.pv_writes
            p.pv_calls p.pv_refs
            ((match p.pv_aliases with
             | [] -> ""
             | l ->
                 Printf.sprintf " names:[%s]"
                   (String.concat ", " (List.map (Printf.sprintf "0x%x") l)))
            ^
            match p.pv_quarantined with
            | None -> ""
            | Some r -> " [QUARANTINED: " ^ r ^ "]"))
        m.mv_principals)
    t.iv_modules

let to_string rt = Fmt.str "%a" pp (capture rt)

(** Module loader: the analogue of [insmod] plus LXFI's generated
    module-initialisation function (§4.2).

    Loading a module:

    + runs the rewriter over the module's MIR (per the configured mode);
    + lays out text / rodata / data / bss / stack sections in the
      module area of the simulated address space and applies global
      initialisers (including function-pointer initialisers, which are
      how ops tables come into existence);
    + propagates annotations: a function stored into a typed
      function-pointer slot of a known struct, or declared with an
      export slot type, receives that slot type's annotations; two
      conflicting sources are a load error (§4.2, "LXFI verifies that
      these annotations are exactly the same");
    + creates the shared and global principals and grants the initial
      capabilities: CALL for every imported wrapper and own function,
      WRITE for the writable sections, the module stack and the current
      kernel stack — and nothing for [.rodata], which is what defeats
      the unmodified RDS exploit;
    + registers every module function in the kernel's dispatch table so
      kernel indirect calls reach it {e through its wrapper};
    + builds the interpreter context whose guard hooks call into the
      runtime. *)

open Kernel_sim

exception Load_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Load_error s)) fmt

let stack_len = 64 * 1024

(** Imports beginning with [lxfi_] resolve to privileged runtime
    builtins rather than kernel exports.  [lxfi_check:<struct>] checks
    a REF capability of that type for its pointer argument. *)
let is_builtin name =
  name = "lxfi_princ_alias" || name = "lxfi_switch_global"
  || String.length name > 11 && String.sub name 0 11 = "lxfi_check:"

let builtin_impl rt name : int64 list -> int64 =
  if name = "lxfi_princ_alias" then (function
    | [ existing; fresh ] ->
        Runtime.lxfi_princ_alias rt ~existing:(Int64.to_int existing)
          ~fresh:(Int64.to_int fresh);
        0L
    | _ -> fail "lxfi_princ_alias expects 2 arguments")
  else if name = "lxfi_switch_global" then (function
    | [] ->
        Runtime.lxfi_switch_global rt;
        0L
    | _ -> fail "lxfi_switch_global expects no arguments")
  else
    let rtype = String.sub name 11 (String.length name - 11) in
    function
    | [ addr ] ->
        Runtime.lxfi_check rt ~rtype ~addr:(Int64.to_int addr);
        0L
    | _ -> fail "%s expects 1 argument" name

let section_name = function
  | Mir.Ast.Data -> "data"
  | Mir.Ast.Rodata -> "rodata"
  | Mir.Ast.Bss -> "bss"

(** [check_env rt] — the static checker's view of this runtime: slot
    registry, struct layouts, registered iterators, annotated kernel
    exports.  Built fresh on each call (registration may have changed). *)
let check_env (rt : Runtime.t) : Check.Env.t =
  Check.Env.make ~registry:rt.Runtime.registry ~types:rt.Runtime.kst.Kstate.types
    ~iterator_exists:(Hashtbl.mem rt.Runtime.iterators)
    ~kexports:
      (Hashtbl.fold
         (fun _ (ke : Runtime.kexport) acc ->
           {
             Check.Env.kx_name = ke.Runtime.ke_name;
             kx_params = ke.Runtime.ke_params;
             kx_annot = ke.Runtime.ke_annot;
           }
           :: acc)
         rt.Runtime.kexports [])

(** [load rt prog] instruments, lays out, and activates [prog]; returns
    the module handle and the rewriter's report. *)
let load (rt : Runtime.t) (prog : Mir.Ast.prog) : Runtime.module_info * Rewriter.report
    =
  let kst = rt.Runtime.kst in
  if Hashtbl.mem rt.Runtime.modules prog.Mir.Ast.pname then
    fail "module %s already loaded" prog.Mir.Ast.pname;
  (* Strict mode: run the static checker over the pristine (pre-
     instrumentation) MIR and refuse modules with error findings.  The
     pass is load-time only — it charges no simulated cycles and runs
     before any state below is allocated, so enabling it cannot perturb
     guard counters or benchmarks. *)
  if rt.Runtime.config.Config.strict_check then begin
    let findings = Check.Checker.check_module (check_env rt) prog in
    List.iter (fun f -> Klog.diag f.Check.Finding.f_diag) findings;
    let errs = List.filter Check.Finding.is_error findings in
    match errs with
    | [] -> ()
    | first :: _ ->
        fail "module %s: static check failed with %d error(s), first: %s"
          prog.Mir.Ast.pname (List.length errs)
          (Check.Finding.to_string first)
  end;
  (* Syscall-flow policy: a registered (audited) graph wins; otherwise
     self-extract from the pristine MIR, before instrumentation adds
     guard statements.  A faithfully executed module can never leave
     its self-extracted may-follow graph, so self-extraction costs no
     false positives; a registered graph is how skew between audited
     code and loaded binary becomes detectable. *)
  let flow =
    if
      rt.Runtime.config.Config.mode = Config.Lxfi
      && rt.Runtime.config.Config.flow_integrity
    then
      Some
        (match Hashtbl.find_opt rt.Runtime.flow_graphs prog.Mir.Ast.pname with
        | Some g -> g
        | None -> Check.Apiflow.extract (check_env rt) prog)
    else None
  in
  let prog, report = Rewriter.instrument rt.Runtime.config prog in
  let mname = prog.Mir.Ast.pname in

  (* --- text: one fake address per function --- *)
  let nfuncs = List.length prog.Mir.Ast.funcs in
  let text_base = Kstate.alloc_module_area kst (max 16 (16 * nfuncs)) in
  let func_addr_tbl = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Mir.Ast.func) ->
      Hashtbl.replace func_addr_tbl f.Mir.Ast.fname (text_base + (16 * i)))
    prog.Mir.Ast.funcs;

  (* --- data sections --- *)
  let globals_tbl = Hashtbl.create 16 in
  let align16 n = (n + 15) land lnot 15 in
  let layout_section sec =
    let globs =
      List.filter (fun g -> g.Mir.Ast.gsection = sec) prog.Mir.Ast.globals
    in
    if globs = [] then None
    else begin
      let total = List.fold_left (fun acc g -> acc + align16 g.Mir.Ast.gsize) 0 globs in
      let base = Kstate.alloc_module_area kst total in
      let _ =
        List.fold_left
          (fun off g ->
            Hashtbl.replace globals_tbl g.Mir.Ast.gname (base + off);
            off + align16 g.Mir.Ast.gsize)
          0 globs
      in
      Some (section_name sec, base, total)
    end
  in
  let sections =
    List.filter_map layout_section [ Mir.Ast.Rodata; Mir.Ast.Data; Mir.Ast.Bss ]
  in
  let stack_base = Kstate.alloc_module_area kst stack_len in

  (* --- resolve imports --- *)
  let builtin_addrs = Hashtbl.create 4 in
  let import_addr = Hashtbl.create 16 in
  List.iter
    (fun name ->
      if is_builtin name then begin
        let addr = Ksym.intern kst.Kstate.sym ("lxfi_builtin:" ^ name) in
        Hashtbl.replace builtin_addrs addr (builtin_impl rt name);
        Hashtbl.replace import_addr name addr
      end
      else
        match Hashtbl.find_opt rt.Runtime.kexports name with
        | Some ke -> Hashtbl.replace import_addr name ke.Runtime.ke_addr
        | None -> fail "module %s imports unknown symbol %s" mname name)
    prog.Mir.Ast.imports;

  (* --- apply global initialisers --- *)
  List.iter
    (fun (g : Mir.Ast.glob) ->
      let base = Hashtbl.find globals_tbl g.Mir.Ast.gname in
      List.iter
        (fun init ->
          match init with
          | Mir.Ast.Iword (off, w, v) ->
              Kmem.write kst.Kstate.mem ~addr:(base + off)
                ~size:(Mir.Ast.bytes_of_width w) v
          | Mir.Ast.Ifunc (off, f) -> (
              match Hashtbl.find_opt func_addr_tbl f with
              | Some a -> Kmem.write_ptr kst.Kstate.mem (base + off) a
              | None -> fail "global %s references unknown function %s" g.Mir.Ast.gname f)
          | Mir.Ast.Iext (off, imp) -> (
              match Hashtbl.find_opt import_addr imp with
              | Some a -> Kmem.write_ptr kst.Kstate.mem (base + off) a
              | None -> fail "global %s references unimported symbol %s" g.Mir.Ast.gname imp))
        g.Mir.Ast.ginit)
    prog.Mir.Ast.globals;

  (* --- principals and module record --- *)
  let shared = Principal.make ~kind:Principal.Shared ~owner:mname ~primary_name:0 in
  let global = Principal.make ~kind:Principal.Global ~owner:mname ~primary_name:0 in
  let mi : Runtime.module_info =
    {
      Runtime.mi_name = mname;
      mi_prog = prog;
      mi_shared = shared;
      mi_global = global;
      mi_principals = [ shared; global ];
      mi_aliases = Hashtbl.create 8;
      mi_globals = globals_tbl;
      mi_func_addr = func_addr_tbl;
      mi_func_slot = Hashtbl.create 8;
      mi_ctx = None;
      mi_sections = sections;
      mi_stack_base = stack_base;
      mi_stack_len = stack_len;
      mi_dead = None;
      mi_recent_violations = [];
      mi_recent_kinds = [];
      mi_last_entry = None;
      mi_flow = flow;
    }
  in

  (* --- annotation propagation (§4.2) --- *)
  let propagate fname slot_name =
    let slot =
      match Annot.Registry.find_opt rt.Runtime.registry slot_name with
      | Some s -> s
      | None -> fail "module %s: function %s exported with unknown slot type %s" mname fname slot_name
    in
    (match Hashtbl.find_opt mi.Runtime.mi_func_slot fname with
    | Some prev when prev.Annot.Registry.sl_name <> slot_name ->
        fail
          "module %s: function %s receives conflicting annotations (%s vs %s)"
          mname fname prev.Annot.Registry.sl_name slot_name
    | _ -> ());
    Hashtbl.replace mi.Runtime.mi_func_slot fname slot;
    match Hashtbl.find_opt func_addr_tbl fname with
    | Some addr ->
        Hashtbl.replace rt.Runtime.func_ahash_by_addr addr slot.Annot.Registry.sl_ahash
    | None -> fail "module %s: exported function %s not defined" mname fname
  in
  List.iter
    (fun (f : Mir.Ast.func) ->
      match f.Mir.Ast.export with Some sl -> propagate f.Mir.Ast.fname sl | None -> ())
    prog.Mir.Ast.funcs;
  List.iter
    (fun (g : Mir.Ast.glob) ->
      match g.Mir.Ast.gstruct with
      | None -> ()
      | Some sname ->
          List.iter
            (fun init ->
              match init with
              | Mir.Ast.Ifunc (off, f) -> (
                  match Ktypes.funcptr_slot kst.Kstate.types sname off with
                  | Some slot_name -> propagate f slot_name
                  | None ->
                      fail
                        "global %s: function pointer %s stored at +%d of struct %s, \
                         which is not a declared slot"
                        g.Mir.Ast.gname f off sname)
              | Mir.Ast.Iword _ | Mir.Ast.Iext _ -> ())
            g.Mir.Ast.ginit)
    prog.Mir.Ast.globals;

  (* --- initial capabilities (granted to the shared principal) --- *)
  if rt.Runtime.config.Config.mode <> Config.Stock then begin
    Hashtbl.iter
      (fun _ addr -> Runtime.grant rt shared (Capability.Ccall { target = addr }))
      func_addr_tbl;
    Hashtbl.iter
      (fun _ addr -> Runtime.grant rt shared (Capability.Ccall { target = addr }))
      import_addr;
    List.iter
      (fun (name, base, len) ->
        if name <> "rodata" then
          Runtime.grant rt shared (Capability.Cwrite { base; size = len }))
      sections;
    Runtime.grant rt shared (Capability.Cwrite { base = stack_base; size = stack_len });
    Runtime.grant rt shared
      (Capability.Cwrite
         { base = rt.Runtime.kernel_stack_base; size = rt.Runtime.kernel_stack_len });
    (* Blanket user-space window: uaccess helpers (copy_to_user and
       friends) write to user memory on the module's behalf, and user
       memory carries no kernel integrity.  Kernel addresses are what
       the WRITE discipline protects. *)
    Runtime.grant rt shared
      (Capability.Cwrite
         {
           base = Kmem.Layout.user_base;
           size = Kmem.Layout.user_top - Kmem.Layout.user_base;
         })
  end;

  (* --- make module functions kernel-callable (through wrappers) --- *)
  List.iter
    (fun (f : Mir.Ast.func) ->
      let fname = f.Mir.Ast.fname in
      let addr = Hashtbl.find func_addr_tbl fname in
      Kstate.register_target kst
        ~name:(mname ^ ":" ^ fname)
        ~addr ~kind:(Kstate.Module_fn mname)
        (fun args -> Quarantine.dispatch rt mi fname args))
    prog.Mir.Ast.funcs;

  (* --- interpreter context --- *)
  let global_addr name =
    match Hashtbl.find_opt globals_tbl name with
    | Some a -> a
    | None -> raise (Kstate.Oops (Printf.sprintf "module %s: unknown global %s" mname name))
  in
  let func_addr name =
    match Hashtbl.find_opt func_addr_tbl name with
    | Some a -> a
    | None -> raise (Kstate.Oops (Printf.sprintf "module %s: unknown function %s" mname name))
  in
  let ext_addr name =
    match Hashtbl.find_opt import_addr name with
    | Some a -> a
    | None -> raise (Kstate.Oops (Printf.sprintf "module %s: %s not imported" mname name))
  in
  let call_ext addr args =
    match Hashtbl.find_opt rt.Runtime.kexport_by_addr addr with
    | Some ke -> Runtime.call_kexport rt ke args
    | None -> (
        match Hashtbl.find_opt builtin_addrs addr with
        | Some impl -> impl args
        | None -> (
            (* A non-import target (kernel callback, another module's
               function, or — in stock mode — anything at all). *)
            match Kstate.target_of kst addr with
            | Some tg -> tg.Kstate.t_run args
            | None ->
                raise (Kstate.Oops (Printf.sprintf "call to bad address 0x%x" addr))))
  in
  let ctx =
    Mir.Interp.create ~kst ~prog ~global_addr ~func_addr ~ext_addr ~call_ext
      ~guard_write:(fun ~addr ~size -> Runtime.guard_write rt mi ~addr ~size)
      ~guard_indcall:(fun ~target -> Runtime.guard_indcall rt mi ~target)
      ~on_entry:(fun _ -> Runtime.entry_guard rt)
      ~on_exit:(fun _ -> Runtime.exit_guard rt)
      ~hooks_enabled:(rt.Runtime.config.Config.mode <> Config.Stock)
      ~stack_base ~stack_len
  in
  mi.Runtime.mi_ctx <- Some ctx;
  Hashtbl.replace rt.Runtime.modules mname mi;
  Klog.info "loaded module %s (%d functions, %d globals, mode %s)" mname nfuncs
    (List.length prog.Mir.Ast.globals)
    (Config.mode_name rt.Runtime.config.Config.mode);
  (mi, report)

(** [unload rt mi] — rmmod: run [module_exit] if the module defines one
    (its chance to unregister from every subsystem), then retire the
    module: its principals and all their capabilities disappear, its
    functions stop being callable, and its annotation hashes are
    forgotten.

    Like the real kernel, the loader cannot know about pointers to the
    module that are still stored in kernel data structures; a module
    whose exit function forgets to unregister leaves dangling function
    pointers behind, and a later kernel indirect call through one will
    oops (dispatch to a retired address).  The module's memory itself is
    {e not} recycled — the module area is append-only in this
    simulation, which conveniently makes use-after-unload deterministic
    instead of corrupting an unrelated module. *)
let unload (rt : Runtime.t) (mi : Runtime.module_info) =
  if not (Hashtbl.mem rt.Runtime.modules mi.Runtime.mi_name) then
    fail "module %s is not loaded" mi.Runtime.mi_name;
  if Mir.Ast.find_func mi.Runtime.mi_prog "module_exit" <> None then begin
    let saved = rt.Runtime.current in
    rt.Runtime.current <- Some mi.Runtime.mi_shared;
    (match Runtime.run_mir rt mi "module_exit" [] with
    | _ -> rt.Runtime.current <- saved
    | exception e ->
        rt.Runtime.current <- saved;
        raise e)
  end;
  Runtime.retire_module rt mi;
  Klog.info "unloaded module %s" mi.Runtime.mi_name

(** [init_call rt mi fname args] runs a module initialisation entry
    point ([module_init]) {e without} isolation, as the paper's loader
    does — initialisation happens before the module is exposed to
    untrusted input.  The function still runs under its wrapper if it
    has one; plain init functions run as the shared principal. *)
let init_call rt (mi : Runtime.module_info) fname args =
  match Hashtbl.find_opt mi.Runtime.mi_func_slot fname with
  | Some _ -> Runtime.invoke_module_function rt mi fname args
  | None ->
      let saved = rt.Runtime.current in
      rt.Runtime.current <- Some mi.Runtime.mi_shared;
      let fin () = rt.Runtime.current <- saved in
      (match Runtime.run_mir rt mi fname args with
      | r ->
          fin ();
          r
      | exception e ->
          fin ();
          raise e)

(** {1 Hot upgrade}

    [upgrade] replaces a running module with a new version of itself
    without losing the security state the old instance accumulated:
    dynamically granted capabilities (annotation copies/transfers,
    iterator grants) and non-pointer global state survive the swap —
    but only the subset a compatibility check against the {e new}
    version's annotations admits.  The invariant is monotonicity: an
    upgrade may shrink the restored grant set, never grow it beyond
    what the new annotations could have granted themselves. *)

(** A version's {e grant surface}: for each grant source — an exported
    slot type or an imported annotated kernel export — the caplists its
    copy/transfer actions can execute, plus the slot types that select
    instance principals.  Check actions are excluded: checking never
    grants. *)
type surface = {
  su_sources : (string * Annot.Ast.caplist list) list;
      (** grant source id ([slot:<name>#<ahash>] / [kexport:<name>])
          with its grant-position caplists *)
  su_principal_slots : (string * int64) list;
      (** slot types carrying [principal(expr)], as (name, ahash) *)
}

let rec grant_caplists_of_action (a : Annot.Ast.action) acc =
  match a with
  | Annot.Ast.Cif (_, a') -> grant_caplists_of_action a' acc
  | Annot.Ast.Copy cl | Annot.Ast.Transfer cl -> cl :: acc
  | Annot.Ast.Check _ -> acc

let grant_caplists (annot : Annot.Ast.t) =
  List.fold_left
    (fun acc a -> grant_caplists_of_action a acc)
    []
    (Annot.Ast.pre_actions annot @ Annot.Ast.post_actions annot)

(** Can this caplist yield a capability of [shape]?  Inline caplists
    answer exactly; iterator caplists consult the iterator's declared
    shapes ({!Runtime.register_iterator}), treating an undeclared
    iterator as able to yield anything — the conservative direction for
    a subset check on the {e old} side and for membership on the new. *)
let caplist_yields rt (cl : Annot.Ast.caplist) (shape : Runtime.cap_shape) =
  match cl with
  | Annot.Ast.Inline (ct, _, _) -> (
      match (ct, shape) with
      | Annot.Ast.Write, Runtime.Swrite -> true
      | Annot.Ast.Call, Runtime.Scall -> true
      | Annot.Ast.Ref r, Runtime.Sref r' -> String.equal r r'
      | _ -> false)
  | Annot.Ast.Iter (name, _) -> Runtime.iterator_can_yield rt ~name shape

let surface_of (rt : Runtime.t) (mi : Runtime.module_info) : surface =
  let slots =
    Hashtbl.fold (fun _ sl acc -> sl :: acc) mi.Runtime.mi_func_slot []
    |> List.sort_uniq (fun (a : Annot.Registry.slot) (b : Annot.Registry.slot) ->
           compare
             (a.Annot.Registry.sl_name, a.Annot.Registry.sl_ahash)
             (b.Annot.Registry.sl_name, b.Annot.Registry.sl_ahash))
  in
  let slot_sources =
    List.map
      (fun (sl : Annot.Registry.slot) ->
        ( Printf.sprintf "slot:%s#%Lx" sl.Annot.Registry.sl_name
            sl.Annot.Registry.sl_ahash,
          grant_caplists sl.Annot.Registry.sl_annot ))
      slots
  in
  let kexport_sources =
    List.filter_map
      (fun name ->
        if is_builtin name then None
        else
          match Hashtbl.find_opt rt.Runtime.kexports name with
          | Some ke -> Some ("kexport:" ^ name, grant_caplists ke.Runtime.ke_annot)
          | None -> None)
      (List.sort_uniq compare mi.Runtime.mi_prog.Mir.Ast.imports)
  in
  let principal_slots =
    List.filter_map
      (fun (sl : Annot.Registry.slot) ->
        match Annot.Ast.principal_of sl.Annot.Registry.sl_annot with
        | Some (Annot.Ast.Pexpr _) ->
            Some (sl.Annot.Registry.sl_name, sl.Annot.Registry.sl_ahash)
        | _ -> None)
      slots
  in
  { su_sources = slot_sources @ kexport_sources; su_principal_slots = principal_slots }

(** Source ids whose grant caplists can yield WRITE — the write
    surface.  A dynamic WRITE capability in a snapshot carries no
    provenance, so the compatibility check is all-or-nothing: every old
    write source must survive into the new version or {e every} dynamic
    WRITE is dropped.  Sound (never restores what the new annotations
    could not grant) at the price of precision. *)
let write_surface rt (s : surface) =
  List.filter_map
    (fun (id, cls) ->
      if List.exists (fun cl -> caplist_yields rt cl Runtime.Swrite) cls then Some id
      else None)
    s.su_sources
  |> List.sort_uniq compare

let surface_yields rt (s : surface) shape =
  List.exists
    (fun (_, cls) -> List.exists (fun cl -> caplist_yields rt cl shape) cls)
    s.su_sources

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** Does the shadow stack hold a wrapper frame of this module — i.e. is
    a kernel→module entry (or one of its nested crossings) still in
    flight? *)
let in_flight (rt : Runtime.t) (mi : Runtime.module_info) =
  let prefix = mi.Runtime.mi_name ^ ":" in
  List.exists
    (fun (f : Shadow_stack.frame) -> has_prefix ~prefix f.Shadow_stack.wrapper)
    rt.Runtime.sstack.Shadow_stack.frames

type upgrade_report = {
  up_swap_cycles : int;  (** simulated cycles from drain to resume *)
  up_restored : int;  (** capabilities re-granted into the new instance *)
  up_dropped : int;  (** capabilities the compatibility check refused *)
  up_violations_during : int;  (** must be 0: the violation-free oracle *)
  up_write_surface_ok : bool;  (** old write surface ⊆ new write surface *)
  up_instances_kept : bool;  (** instance principals survived the swap *)
}

let upgrade (rt : Runtime.t) (old_mi : Runtime.module_info)
    (new_prog : Mir.Ast.prog) :
    Runtime.module_info * Rewriter.report * upgrade_report =
  let mname = old_mi.Runtime.mi_name in
  if new_prog.Mir.Ast.pname <> mname then
    fail "upgrade: replacement program is named %s, expected %s"
      new_prog.Mir.Ast.pname mname;
  if not (Hashtbl.mem rt.Runtime.modules mname) then
    fail "upgrade: module %s is not loaded" mname;
  (* Drain.  Kernel→module entries are synchronous and watchdog-fuel-
     bounded, so by the time the kernel regains control every in-flight
     entry has completed (or expired) within its fuel budget — at
     kernel top level the module is always drained.  Finding a live
     wrapper frame here means upgrade was invoked from inside one of
     the module's own activations, which cannot be drained. *)
  if in_flight rt old_mi then
    fail "upgrade: module %s has in-flight kernel entries" mname;
  let snap = Snapshot.capture rt old_mi in
  let old_surface = surface_of rt old_mi in
  let old_mem =
    (old_mi.Runtime.mi_stack_base, old_mi.Runtime.mi_stack_len)
    :: List.map (fun (_, b, l) -> (b, l)) old_mi.Runtime.mi_sections
  in
  let overlaps_old ~base ~size =
    List.exists (fun (b, l) -> base < b + l && b < base + size) old_mem
  in
  let cycles0 = Kcycles.total rt.Runtime.kst.Kstate.cycles in
  let viol0 = rt.Runtime.stats.Stats.violations in
  unload rt old_mi;
  let new_mi, report = load rt new_prog in
  if Mir.Ast.find_func new_mi.Runtime.mi_prog "module_init" <> None then
    ignore (init_call rt new_mi "module_init" []);
  let new_surface = surface_of rt new_mi in
  let write_ok =
    subset (write_surface rt old_surface) (write_surface rt new_surface)
  in
  let instances_ok =
    (* Entry-interface preservation: every principal-selecting slot of
       the old version must exist, annotation-identical, in the new one
       — otherwise a restored instance principal could be selected by
       an entry whose contract changed under it. *)
    subset old_surface.su_principal_slots new_surface.su_principal_slots
  in
  (* CALL capabilities may only be restored toward targets the new
     version could legitimately call: its own imports (kernel exports
     and builtins keep their interned addresses across versions).  Old
     text addresses are retired; the new version's own functions were
     granted by [load]. *)
  let allowed_calls = Hashtbl.create 16 in
  List.iter
    (fun name ->
      if is_builtin name then
        Hashtbl.replace allowed_calls
          (Ksym.intern rt.Runtime.kst.Kstate.sym ("lxfi_builtin:" ^ name))
          ()
      else
        match Hashtbl.find_opt rt.Runtime.kexports name with
        | Some ke -> Hashtbl.replace allowed_calls ke.Runtime.ke_addr ()
        | None -> ())
    new_prog.Mir.Ast.imports;
  let filter =
    {
      Snapshot.keep_write =
        (fun ~base ~size -> write_ok && not (overlaps_old ~base ~size));
      keep_call = (fun ~target -> Hashtbl.mem allowed_calls target);
      keep_ref =
        (fun ~rtype ~addr:_ -> surface_yields rt new_surface (Runtime.Sref rtype));
      keep_instances = instances_ok;
    }
  in
  let rr = Snapshot.restore_filtered rt new_mi snap filter in
  (* Restored capabilities are real grants into live tables (and the
     refused ones real revocations), so the guard counters account for
     them — that is what lets a campaign reconcile counters across the
     swap.  Each processed capability costs one annotation action of
     simulated time, charged here because [Snapshot] itself is pure. *)
  rt.Runtime.stats.Stats.caps_granted <-
    rt.Runtime.stats.Stats.caps_granted + rr.Snapshot.rr_restored;
  rt.Runtime.stats.Stats.caps_revoked <-
    rt.Runtime.stats.Stats.caps_revoked + rr.Snapshot.rr_dropped;
  Kcycles.charge rt.Runtime.kst.Kstate.cycles Kcycles.Guard
    (Runtime.Cost.annotation_action * (rr.Snapshot.rr_restored + rr.Snapshot.rr_dropped));
  let upr =
    {
      up_swap_cycles = Kcycles.total rt.Runtime.kst.Kstate.cycles - cycles0;
      up_restored = rr.Snapshot.rr_restored;
      up_dropped = rr.Snapshot.rr_dropped;
      up_violations_during = rt.Runtime.stats.Stats.violations - viol0;
      up_write_surface_ok = write_ok;
      up_instances_kept = instances_ok;
    }
  in
  Klog.info "upgraded module %s: %d caps restored, %d dropped, %d simulated cycles"
    mname upr.up_restored upr.up_dropped upr.up_swap_cycles;
  (new_mi, report, upr)

(** Module loader: the analogue of [insmod] plus LXFI's generated
    module-initialisation function (§4.2).

    Loading a module:

    + runs the rewriter over the module's MIR (per the configured mode);
    + lays out text / rodata / data / bss / stack sections in the
      module area of the simulated address space and applies global
      initialisers (including function-pointer initialisers, which are
      how ops tables come into existence);
    + propagates annotations: a function stored into a typed
      function-pointer slot of a known struct, or declared with an
      export slot type, receives that slot type's annotations; two
      conflicting sources are a load error (§4.2, "LXFI verifies that
      these annotations are exactly the same");
    + creates the shared and global principals and grants the initial
      capabilities: CALL for every imported wrapper and own function,
      WRITE for the writable sections, the module stack and the current
      kernel stack — and nothing for [.rodata], which is what defeats
      the unmodified RDS exploit;
    + registers every module function in the kernel's dispatch table so
      kernel indirect calls reach it {e through its wrapper};
    + builds the interpreter context whose guard hooks call into the
      runtime. *)

open Kernel_sim

exception Load_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Load_error s)) fmt

let stack_len = 64 * 1024

(** Imports beginning with [lxfi_] resolve to privileged runtime
    builtins rather than kernel exports.  [lxfi_check:<struct>] checks
    a REF capability of that type for its pointer argument. *)
let is_builtin name =
  name = "lxfi_princ_alias" || name = "lxfi_switch_global"
  || String.length name > 11 && String.sub name 0 11 = "lxfi_check:"

let builtin_impl rt name : int64 list -> int64 =
  if name = "lxfi_princ_alias" then (function
    | [ existing; fresh ] ->
        Runtime.lxfi_princ_alias rt ~existing:(Int64.to_int existing)
          ~fresh:(Int64.to_int fresh);
        0L
    | _ -> fail "lxfi_princ_alias expects 2 arguments")
  else if name = "lxfi_switch_global" then (function
    | [] ->
        Runtime.lxfi_switch_global rt;
        0L
    | _ -> fail "lxfi_switch_global expects no arguments")
  else
    let rtype = String.sub name 11 (String.length name - 11) in
    function
    | [ addr ] ->
        Runtime.lxfi_check rt ~rtype ~addr:(Int64.to_int addr);
        0L
    | _ -> fail "%s expects 1 argument" name

let section_name = function
  | Mir.Ast.Data -> "data"
  | Mir.Ast.Rodata -> "rodata"
  | Mir.Ast.Bss -> "bss"

(** [check_env rt] — the static checker's view of this runtime: slot
    registry, struct layouts, registered iterators, annotated kernel
    exports.  Built fresh on each call (registration may have changed). *)
let check_env (rt : Runtime.t) : Check.Env.t =
  Check.Env.make ~registry:rt.Runtime.registry ~types:rt.Runtime.kst.Kstate.types
    ~iterator_exists:(Hashtbl.mem rt.Runtime.iterators)
    ~kexports:
      (Hashtbl.fold
         (fun _ (ke : Runtime.kexport) acc ->
           {
             Check.Env.kx_name = ke.Runtime.ke_name;
             kx_params = ke.Runtime.ke_params;
             kx_annot = ke.Runtime.ke_annot;
           }
           :: acc)
         rt.Runtime.kexports [])

(** [load rt prog] instruments, lays out, and activates [prog]; returns
    the module handle and the rewriter's report. *)
let load (rt : Runtime.t) (prog : Mir.Ast.prog) : Runtime.module_info * Rewriter.report
    =
  let kst = rt.Runtime.kst in
  if Hashtbl.mem rt.Runtime.modules prog.Mir.Ast.pname then
    fail "module %s already loaded" prog.Mir.Ast.pname;
  (* Strict mode: run the static checker over the pristine (pre-
     instrumentation) MIR and refuse modules with error findings.  The
     pass is load-time only — it charges no simulated cycles and runs
     before any state below is allocated, so enabling it cannot perturb
     guard counters or benchmarks. *)
  if rt.Runtime.config.Config.strict_check then begin
    let findings = Check.Checker.check_module (check_env rt) prog in
    List.iter (fun f -> Klog.diag f.Check.Finding.f_diag) findings;
    let errs = List.filter Check.Finding.is_error findings in
    match errs with
    | [] -> ()
    | first :: _ ->
        fail "module %s: static check failed with %d error(s), first: %s"
          prog.Mir.Ast.pname (List.length errs)
          (Check.Finding.to_string first)
  end;
  let prog, report = Rewriter.instrument rt.Runtime.config prog in
  let mname = prog.Mir.Ast.pname in

  (* --- text: one fake address per function --- *)
  let nfuncs = List.length prog.Mir.Ast.funcs in
  let text_base = Kstate.alloc_module_area kst (max 16 (16 * nfuncs)) in
  let func_addr_tbl = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Mir.Ast.func) ->
      Hashtbl.replace func_addr_tbl f.Mir.Ast.fname (text_base + (16 * i)))
    prog.Mir.Ast.funcs;

  (* --- data sections --- *)
  let globals_tbl = Hashtbl.create 16 in
  let align16 n = (n + 15) land lnot 15 in
  let layout_section sec =
    let globs =
      List.filter (fun g -> g.Mir.Ast.gsection = sec) prog.Mir.Ast.globals
    in
    if globs = [] then None
    else begin
      let total = List.fold_left (fun acc g -> acc + align16 g.Mir.Ast.gsize) 0 globs in
      let base = Kstate.alloc_module_area kst total in
      let _ =
        List.fold_left
          (fun off g ->
            Hashtbl.replace globals_tbl g.Mir.Ast.gname (base + off);
            off + align16 g.Mir.Ast.gsize)
          0 globs
      in
      Some (section_name sec, base, total)
    end
  in
  let sections =
    List.filter_map layout_section [ Mir.Ast.Rodata; Mir.Ast.Data; Mir.Ast.Bss ]
  in
  let stack_base = Kstate.alloc_module_area kst stack_len in

  (* --- resolve imports --- *)
  let builtin_addrs = Hashtbl.create 4 in
  let import_addr = Hashtbl.create 16 in
  List.iter
    (fun name ->
      if is_builtin name then begin
        let addr = Ksym.intern kst.Kstate.sym ("lxfi_builtin:" ^ name) in
        Hashtbl.replace builtin_addrs addr (builtin_impl rt name);
        Hashtbl.replace import_addr name addr
      end
      else
        match Hashtbl.find_opt rt.Runtime.kexports name with
        | Some ke -> Hashtbl.replace import_addr name ke.Runtime.ke_addr
        | None -> fail "module %s imports unknown symbol %s" mname name)
    prog.Mir.Ast.imports;

  (* --- apply global initialisers --- *)
  List.iter
    (fun (g : Mir.Ast.glob) ->
      let base = Hashtbl.find globals_tbl g.Mir.Ast.gname in
      List.iter
        (fun init ->
          match init with
          | Mir.Ast.Iword (off, w, v) ->
              Kmem.write kst.Kstate.mem ~addr:(base + off)
                ~size:(Mir.Ast.bytes_of_width w) v
          | Mir.Ast.Ifunc (off, f) -> (
              match Hashtbl.find_opt func_addr_tbl f with
              | Some a -> Kmem.write_ptr kst.Kstate.mem (base + off) a
              | None -> fail "global %s references unknown function %s" g.Mir.Ast.gname f)
          | Mir.Ast.Iext (off, imp) -> (
              match Hashtbl.find_opt import_addr imp with
              | Some a -> Kmem.write_ptr kst.Kstate.mem (base + off) a
              | None -> fail "global %s references unimported symbol %s" g.Mir.Ast.gname imp))
        g.Mir.Ast.ginit)
    prog.Mir.Ast.globals;

  (* --- principals and module record --- *)
  let shared = Principal.make ~kind:Principal.Shared ~owner:mname ~primary_name:0 in
  let global = Principal.make ~kind:Principal.Global ~owner:mname ~primary_name:0 in
  let mi : Runtime.module_info =
    {
      Runtime.mi_name = mname;
      mi_prog = prog;
      mi_shared = shared;
      mi_global = global;
      mi_principals = [ shared; global ];
      mi_aliases = Hashtbl.create 8;
      mi_globals = globals_tbl;
      mi_func_addr = func_addr_tbl;
      mi_func_slot = Hashtbl.create 8;
      mi_ctx = None;
      mi_sections = sections;
      mi_stack_base = stack_base;
      mi_stack_len = stack_len;
      mi_dead = None;
      mi_recent_violations = [];
    }
  in

  (* --- annotation propagation (§4.2) --- *)
  let propagate fname slot_name =
    let slot =
      match Annot.Registry.find_opt rt.Runtime.registry slot_name with
      | Some s -> s
      | None -> fail "module %s: function %s exported with unknown slot type %s" mname fname slot_name
    in
    (match Hashtbl.find_opt mi.Runtime.mi_func_slot fname with
    | Some prev when prev.Annot.Registry.sl_name <> slot_name ->
        fail
          "module %s: function %s receives conflicting annotations (%s vs %s)"
          mname fname prev.Annot.Registry.sl_name slot_name
    | _ -> ());
    Hashtbl.replace mi.Runtime.mi_func_slot fname slot;
    match Hashtbl.find_opt func_addr_tbl fname with
    | Some addr ->
        Hashtbl.replace rt.Runtime.func_ahash_by_addr addr slot.Annot.Registry.sl_ahash
    | None -> fail "module %s: exported function %s not defined" mname fname
  in
  List.iter
    (fun (f : Mir.Ast.func) ->
      match f.Mir.Ast.export with Some sl -> propagate f.Mir.Ast.fname sl | None -> ())
    prog.Mir.Ast.funcs;
  List.iter
    (fun (g : Mir.Ast.glob) ->
      match g.Mir.Ast.gstruct with
      | None -> ()
      | Some sname ->
          List.iter
            (fun init ->
              match init with
              | Mir.Ast.Ifunc (off, f) -> (
                  match Ktypes.funcptr_slot kst.Kstate.types sname off with
                  | Some slot_name -> propagate f slot_name
                  | None ->
                      fail
                        "global %s: function pointer %s stored at +%d of struct %s, \
                         which is not a declared slot"
                        g.Mir.Ast.gname f off sname)
              | Mir.Ast.Iword _ | Mir.Ast.Iext _ -> ())
            g.Mir.Ast.ginit)
    prog.Mir.Ast.globals;

  (* --- initial capabilities (granted to the shared principal) --- *)
  if rt.Runtime.config.Config.mode <> Config.Stock then begin
    Hashtbl.iter
      (fun _ addr -> Runtime.grant rt shared (Capability.Ccall { target = addr }))
      func_addr_tbl;
    Hashtbl.iter
      (fun _ addr -> Runtime.grant rt shared (Capability.Ccall { target = addr }))
      import_addr;
    List.iter
      (fun (name, base, len) ->
        if name <> "rodata" then
          Runtime.grant rt shared (Capability.Cwrite { base; size = len }))
      sections;
    Runtime.grant rt shared (Capability.Cwrite { base = stack_base; size = stack_len });
    Runtime.grant rt shared
      (Capability.Cwrite
         { base = rt.Runtime.kernel_stack_base; size = rt.Runtime.kernel_stack_len });
    (* Blanket user-space window: uaccess helpers (copy_to_user and
       friends) write to user memory on the module's behalf, and user
       memory carries no kernel integrity.  Kernel addresses are what
       the WRITE discipline protects. *)
    Runtime.grant rt shared
      (Capability.Cwrite
         {
           base = Kmem.Layout.user_base;
           size = Kmem.Layout.user_top - Kmem.Layout.user_base;
         })
  end;

  (* --- make module functions kernel-callable (through wrappers) --- *)
  List.iter
    (fun (f : Mir.Ast.func) ->
      let fname = f.Mir.Ast.fname in
      let addr = Hashtbl.find func_addr_tbl fname in
      Kstate.register_target kst
        ~name:(mname ^ ":" ^ fname)
        ~addr ~kind:(Kstate.Module_fn mname)
        (fun args -> Quarantine.dispatch rt mi fname args))
    prog.Mir.Ast.funcs;

  (* --- interpreter context --- *)
  let global_addr name =
    match Hashtbl.find_opt globals_tbl name with
    | Some a -> a
    | None -> raise (Kstate.Oops (Printf.sprintf "module %s: unknown global %s" mname name))
  in
  let func_addr name =
    match Hashtbl.find_opt func_addr_tbl name with
    | Some a -> a
    | None -> raise (Kstate.Oops (Printf.sprintf "module %s: unknown function %s" mname name))
  in
  let ext_addr name =
    match Hashtbl.find_opt import_addr name with
    | Some a -> a
    | None -> raise (Kstate.Oops (Printf.sprintf "module %s: %s not imported" mname name))
  in
  let call_ext addr args =
    match Hashtbl.find_opt rt.Runtime.kexport_by_addr addr with
    | Some ke -> Runtime.call_kexport rt ke args
    | None -> (
        match Hashtbl.find_opt builtin_addrs addr with
        | Some impl -> impl args
        | None -> (
            (* A non-import target (kernel callback, another module's
               function, or — in stock mode — anything at all). *)
            match Kstate.target_of kst addr with
            | Some tg -> tg.Kstate.t_run args
            | None ->
                raise (Kstate.Oops (Printf.sprintf "call to bad address 0x%x" addr))))
  in
  let ctx =
    Mir.Interp.create ~kst ~prog ~global_addr ~func_addr ~ext_addr ~call_ext
      ~guard_write:(fun ~addr ~size -> Runtime.guard_write rt mi ~addr ~size)
      ~guard_indcall:(fun ~target -> Runtime.guard_indcall rt mi ~target)
      ~on_entry:(fun _ -> Runtime.entry_guard rt)
      ~on_exit:(fun _ -> Runtime.exit_guard rt)
      ~hooks_enabled:(rt.Runtime.config.Config.mode <> Config.Stock)
      ~stack_base ~stack_len
  in
  mi.Runtime.mi_ctx <- Some ctx;
  Hashtbl.replace rt.Runtime.modules mname mi;
  Klog.info "loaded module %s (%d functions, %d globals, mode %s)" mname nfuncs
    (List.length prog.Mir.Ast.globals)
    (Config.mode_name rt.Runtime.config.Config.mode);
  (mi, report)

(** [unload rt mi] — rmmod: run [module_exit] if the module defines one
    (its chance to unregister from every subsystem), then retire the
    module: its principals and all their capabilities disappear, its
    functions stop being callable, and its annotation hashes are
    forgotten.

    Like the real kernel, the loader cannot know about pointers to the
    module that are still stored in kernel data structures; a module
    whose exit function forgets to unregister leaves dangling function
    pointers behind, and a later kernel indirect call through one will
    oops (dispatch to a retired address).  The module's memory itself is
    {e not} recycled — the module area is append-only in this
    simulation, which conveniently makes use-after-unload deterministic
    instead of corrupting an unrelated module. *)
let unload (rt : Runtime.t) (mi : Runtime.module_info) =
  if not (Hashtbl.mem rt.Runtime.modules mi.Runtime.mi_name) then
    fail "module %s is not loaded" mi.Runtime.mi_name;
  if Mir.Ast.find_func mi.Runtime.mi_prog "module_exit" <> None then begin
    let saved = rt.Runtime.current in
    rt.Runtime.current <- Some mi.Runtime.mi_shared;
    (match Runtime.run_mir rt mi "module_exit" [] with
    | _ -> rt.Runtime.current <- saved
    | exception e ->
        rt.Runtime.current <- saved;
        raise e)
  end;
  Runtime.retire_module rt mi;
  Klog.info "unloaded module %s" mi.Runtime.mi_name

(** [init_call rt mi fname args] runs a module initialisation entry
    point ([module_init]) {e without} isolation, as the paper's loader
    does — initialisation happens before the module is exposed to
    untrusted input.  The function still runs under its wrapper if it
    has one; plain init functions run as the shared principal. *)
let init_call rt (mi : Runtime.module_info) fname args =
  match Hashtbl.find_opt mi.Runtime.mi_func_slot fname with
  | Some _ -> Runtime.invoke_module_function rt mi fname args
  | None ->
      let saved = rt.Runtime.current in
      rt.Runtime.current <- Some mi.Runtime.mi_shared;
      let fin () = rt.Runtime.current <- saved in
      (match Runtime.run_mir rt mi fname args with
      | r ->
          fin ();
          r
      | exception e ->
          fin ();
          raise e)

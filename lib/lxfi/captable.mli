(** Per-principal capability tables (paper §5, "Capability table").

    One table per capability type (WRITE / CALL / REF).  WRITE
    capabilities are address ranges; following the paper, each range is
    inserted into every hash slot it covers after masking the low 12
    address bits, so the hot covering-range query costs one bucket
    lookup.  Ranges covering many pages (in practice only the blanket
    user-space window) are kept on a short linear list instead. *)

type wentry = { base : int; size : int }
(** A WRITE capability's range. *)

type t = {
  writes : (int, wentry list) Hashtbl.t;  (** page slot -> covering entries *)
  mutable big : wentry list;  (** oversized ranges, checked linearly *)
  calls : (int, unit) Hashtbl.t;
  refs : (string * int, unit) Hashtbl.t;
  mutable last_hit : wentry option;
      (** last covering WRITE range (guard-write fast path); dropped on
          any revoke/clear *)
}

val slot_shift : int
(** Low bits masked when hashing WRITE ranges (12 = page granularity). *)

val big_range_pages : int
(** Ranges covering at least this many pages go on the linear list. *)

val create : unit -> t

(** {1 WRITE capabilities} *)

val add_write : t -> base:int -> size:int -> unit
(** Insert a WRITE capability for [base, base+size); idempotent for an
    identical range.  Raises [Invalid_argument] when [size <= 0]. *)

val has_write : t -> addr:int -> size:int -> bool
(** Is [addr, addr+size) covered by a single WRITE capability?
    Consults a one-entry "last covering range" cache before the bucket
    scan; semantically identical to {!has_write_uncached}. *)

val has_write_uncached : t -> addr:int -> size:int -> bool
(** The cache-free covering-range query — reference semantics for the
    cached fast path (exercised differentially by the property suite). *)

val find_write_covering : t -> addr:int -> wentry option
(** The entry covering the single address [addr], if any (used to
    answer "who wrote this function-pointer slot"). *)

val remove_write_intersecting : t -> base:int -> size:int -> int
(** Remove every WRITE entry overlapping [base, base+size) — transfer
    semantics (§3.3).  A blanket ("big") range is only removed when the
    revocation range contains it entirely.  Returns the number of
    distinct entries removed. *)

val fold_writes : t -> ('a -> base:int -> size:int -> 'a) -> 'a -> 'a
(** Fold over distinct WRITE entries (each range visited once). *)

val write_count : t -> int

(** {1 CALL capabilities} *)

val add_call : t -> target:int -> unit
val has_call : t -> target:int -> bool
val remove_call : t -> target:int -> unit
val call_count : t -> int
val fold_calls : t -> ('a -> target:int -> 'a) -> 'a -> 'a

(** {1 REF capabilities} *)

val add_ref : t -> rtype:string -> addr:int -> unit
val has_ref : t -> rtype:string -> addr:int -> bool
val remove_ref : t -> rtype:string -> addr:int -> unit
val ref_count : t -> int

val fold_refs : t -> ('a -> rtype:string -> addr:int -> 'a) -> 'a -> 'a
(** Fold over every REF capability (hash order; callers that need a
    stable order must sort). *)

val clear : t -> unit
(** Drop every capability of every type — the quarantine revocation
    primitive. *)

val pp : Format.formatter -> t -> unit

(** Per-principal capability tables (§5, "Capability table").

    One table per capability type.  CALL and REF tables are ordinary
    hash tables keyed by target address / (type, address).

    WRITE capabilities are identified by an address {e range}, and the
    hot check ("does some capability cover [addr, addr+size)?") must be
    constant time.  Following the paper, a WRITE capability is inserted
    into {e every} hash slot its range covers after masking the low 12
    bits of the address, so a lookup only consults the one bucket for
    the queried address's page.  (The paper chose this over a balanced
    tree because kernel-module objects rarely exceed a page.) *)

let slot_shift = 12

(** Ranges covering more than this many pages are kept on a short
    linear list instead of being inserted per page slot.  The only such
    range in practice is the blanket user-space WRITE capability every
    module holds (uaccess helpers write to user memory on the module's
    behalf); per-page insertion of a 2 GB range would be absurd, and
    the paper's observation that "kernel modules do not usually
    manipulate memory objects larger than a page" still holds for the
    hashed population. *)
let big_range_pages = 64

type wentry = { base : int; size : int }

type t = {
  writes : (int, wentry list) Hashtbl.t;  (** page slot -> covering entries *)
  mutable big : wentry list;  (** oversized ranges, checked linearly *)
  calls : (int, unit) Hashtbl.t;
  refs : (string * int, unit) Hashtbl.t;
  mutable last_hit : wentry option;
      (** last covering WRITE range (guard-write fast path); sound
          because adding capabilities never shrinks a range, so the
          cache only needs dropping on revoke/clear *)
}

let create () =
  {
    writes = Hashtbl.create 32;
    big = [];
    calls = Hashtbl.create 16;
    refs = Hashtbl.create 16;
    last_hit = None;
  }

let slots_of ~base ~size =
  let first = base lsr slot_shift and last = (base + size - 1) lsr slot_shift in
  (first, last)

let is_big ~base ~size =
  let first, last = slots_of ~base ~size in
  last - first >= big_range_pages

(** {1 WRITE} *)

let add_write t ~base ~size =
  if size <= 0 then invalid_arg "Captable.add_write: size <= 0";
  let e = { base; size } in
  if is_big ~base ~size then begin
    if not (List.exists (fun x -> x.base = base && x.size = size) t.big) then
      t.big <- e :: t.big
  end
  else begin
    let first, last = slots_of ~base ~size in
    for s = first to last do
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.writes s) in
      (* Idempotent: an identical entry is not duplicated. *)
      if not (List.exists (fun x -> x.base = base && x.size = size) cur) then
        Hashtbl.replace t.writes s (e :: cur)
    done
  end

let covers e ~addr ~size = e.base <= addr && addr + size <= e.base + e.size

(** [has_write_uncached t ~addr ~size] — the cache-free covering-range
    query (reference semantics; the property suite checks the cached
    path against it). *)
let has_write_uncached t ~addr ~size =
  (match Hashtbl.find_opt t.writes (addr lsr slot_shift) with
  | None -> false
  | Some entries -> List.exists (fun e -> covers e ~addr ~size) entries)
  || List.exists (fun e -> covers e ~addr ~size) t.big

(** [has_write t ~addr ~size] — is [addr, addr+size) covered by a single
    WRITE capability?  Consults the last covering range first: guarded
    module stores cluster heavily (the same skb / stack buffer written
    field by field), so this hits far more often than the bucket scan. *)
let has_write t ~addr ~size =
  match t.last_hit with
  | Some e when covers e ~addr ~size -> true
  | _ ->
      let find = List.find_opt (fun e -> covers e ~addr ~size) in
      let hit =
        match
          match Hashtbl.find_opt t.writes (addr lsr slot_shift) with
          | None -> None
          | Some entries -> find entries
        with
        | Some _ as r -> r
        | None -> find t.big
      in
      (match hit with
      | Some _ ->
          t.last_hit <- hit;
          true
      | None -> false)

(** [find_write_covering t ~addr] — the covering entry for a single
    address, if any (used to answer "who wrote this slot"). *)
let find_write_covering t ~addr =
  let hit =
    match Hashtbl.find_opt t.writes (addr lsr slot_shift) with
    | None -> None
    | Some entries -> List.find_opt (fun e -> covers e ~addr ~size:1) entries
  in
  match hit with
  | Some _ as r -> r
  | None -> List.find_opt (fun e -> covers e ~addr ~size:1) t.big

let intersects e ~base ~size = e.base < base + size && base < e.base + e.size

(** [remove_write_intersecting t ~base ~size] removes every WRITE entry
    that overlaps [base, base+size); returns how many distinct entries
    were removed.  Used by transfer actions, which revoke from {e all}
    principals so that no copies survive (§3.3). *)
let remove_write_intersecting t ~base ~size =
  t.last_hit <- None;
  (* Collect victims from the overlapped slots, then delete each victim
     from all slots its own range covers. *)
  let first, last = slots_of ~base ~size in
  let victims = ref [] in
  for s = first to last do
    match Hashtbl.find_opt t.writes s with
    | None -> ()
    | Some entries ->
        List.iter
          (fun e ->
            if intersects e ~base ~size
               && not (List.exists (fun v -> v.base = e.base && v.size = e.size) !victims)
            then victims := e :: !victims)
          entries
  done;
  List.iter
    (fun v ->
      let vf, vl = slots_of ~base:v.base ~size:v.size in
      for s = vf to vl do
        match Hashtbl.find_opt t.writes s with
        | None -> ()
        | Some entries ->
            let kept =
              List.filter (fun e -> not (e.base = v.base && e.size = v.size)) entries
            in
            if kept = [] then Hashtbl.remove t.writes s
            else Hashtbl.replace t.writes s kept
      done)
    !victims;
  (* A big (blanket) range is only revoked when the revocation range
     contains it entirely: a transfer of one small object must not
     strip a module's user-space window. *)
  let contained e = e.base >= base && e.base + e.size <= base + size in
  let nbig = List.length (List.filter contained t.big) in
  t.big <- List.filter (fun e -> not (contained e)) t.big;
  List.length !victims + nbig

(** Distinct WRITE entries (each range counted once). *)
let fold_writes t f acc =
  let seen = Hashtbl.create 16 in
  let acc =
    Hashtbl.fold
      (fun _ entries acc ->
        List.fold_left
          (fun acc e ->
            if Hashtbl.mem seen (e.base, e.size) then acc
            else begin
              Hashtbl.replace seen (e.base, e.size) ();
              f acc ~base:e.base ~size:e.size
            end)
          acc entries)
      t.writes acc
  in
  List.fold_left (fun acc e -> f acc ~base:e.base ~size:e.size) acc t.big

let write_count t = fold_writes t (fun n ~base:_ ~size:_ -> n + 1) 0

(** {1 CALL} *)

let add_call t ~target = Hashtbl.replace t.calls target ()
let has_call t ~target = Hashtbl.mem t.calls target
let remove_call t ~target = Hashtbl.remove t.calls target
let call_count t = Hashtbl.length t.calls
let fold_calls t f acc = Hashtbl.fold (fun target () acc -> f acc ~target) t.calls acc

(** {1 REF} *)

let add_ref t ~rtype ~addr = Hashtbl.replace t.refs (rtype, addr) ()
let has_ref t ~rtype ~addr = Hashtbl.mem t.refs (rtype, addr)
let remove_ref t ~rtype ~addr = Hashtbl.remove t.refs (rtype, addr)
let ref_count t = Hashtbl.length t.refs

let fold_refs t f acc =
  Hashtbl.fold (fun (rtype, addr) () acc -> f acc ~rtype ~addr) t.refs acc

(** [clear t] drops every capability of every type — the quarantine
    revocation primitive. *)
let clear t =
  t.last_hit <- None;
  Hashtbl.reset t.writes;
  t.big <- [];
  Hashtbl.reset t.calls;
  Hashtbl.reset t.refs

let pp ppf t =
  Fmt.pf ppf "captable{write=%d; call=%d; ref=%d}" (write_count t) (call_count t)
    (ref_count t)

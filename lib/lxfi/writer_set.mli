(** Writer-set tracking (paper §4.1, §5) — the fast path that lets the
    kernel skip the capability check on indirect calls through memory
    no module principal could have written.

    A two-level bitmap at 64-byte-line granularity: a line is marked
    when any principal is granted a WRITE capability covering it.
    False positives (marked but never written) cost one unnecessary
    check; false negatives cannot arise from module stores, because a
    store needs a WRITE capability and the grant marks first. *)

type t = { lines : (int, unit) Hashtbl.t; mutable marks : int }

val line_shift : int
(** log2 of the tracking granularity (6 = 64-byte lines). *)

val create : unit -> t

val mark_range : t -> base:int -> size:int -> unit
(** Mark every line intersecting [base, base+size); no-op for
    [size <= 0]. *)

val maybe_written : t -> int -> bool
(** Could any module principal have written the word at this address?
    [false] means the indirect-call check may be skipped. *)

val clear_range : t -> base:int -> size:int -> unit
(** Unmark a range (memory zeroed and recycled outside module hands). *)

val marked_lines : t -> int

val fold_lines : t -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over every marked line index (hash order; callers that need a
    stable order must sort). *)

(** API-integrity violations.  Where the paper's runtime panics the
    kernel, the simulation raises {!Violation}; a caught violation is
    the "LXFI prevented the exploit" outcome of Figure 8.  Under a
    quarantine-enabled config the runtime additionally contains the
    fault: see {!Quarantine}. *)

type kind =
  | Write_denied  (** store without a covering WRITE capability *)
  | Call_denied  (** call/jump without a CALL capability *)
  | Ref_denied  (** argument without the required REF capability *)
  | Cap_not_owned  (** copy/transfer source does not own the capability *)
  | Annot_mismatch  (** function vs. slot-type annotation hash differs *)
  | Shadow_stack  (** return address or principal stack corrupted *)
  | Principal_denied  (** privileged principal operation without standing *)
  | Watchdog_expired  (** module entry exceeded its fuel budget *)
  | Flow_violation  (** kernel-API call outside the module's flow graph *)

val all_kinds : kind list
(** Every violation class, in declaration order. *)

val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Inverse of {!kind_name} (the names appear in corpus [expect:]
    directives and JSON reports). *)

val counter_row : kind -> string
(** The Figure 13 row title under which this kind is accounted
    ("Violations", "Watchdog expiries", "Flow violations", ...).
    Exhaustive: a new kind cannot compile without a row decision, and
    the stats tests assert the row exists in the table. *)

type info = {
  v_kind : kind;
  v_module : string;
  v_principal : Principal.t option;  (** faulting principal, when known *)
  v_where : string option;  (** fault location, e.g. ["entry@1234"] *)
  v_detail : string;
}

exception Violation of info

val to_diag : info -> Diag.t
(** The violation as a structured diagnostic (severity [Error], source
    ["runtime.violation"]) — the same record shape the static checker
    and the quarantine log use. *)

val raise_ :
  ?principal:Principal.t ->
  ?where:string ->
  kind:kind ->
  module_:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** [raise_ ~kind ~module_ fmt ...] logs and raises {!Violation}.
    [?principal]/[?where] attribute the fault to an exact instance and
    instruction location when the raiser knows them. *)

val pp : Format.formatter -> info -> unit

(** Fault containment: the quarantine policy.

    Where the paper's runtime panics on an LXFI violation (§6), a
    quarantine-enabled config ([Config.quarantine]) contains it: the
    offending principal loses every capability and can no longer enter,
    the shadow stack unwinds to the kernel frame, and the kernel caller
    receives {!efault} — sibling instances and other modules keep
    running.  Repeat offenders within [Config.escalate_window] cycles
    are escalated to whole-module retirement.  See DESIGN.md, "Recovery
    semantics". *)

val efault : int64
(** -14, the error a contained entry returns to the kernel caller. *)

val enabled : Runtime.t -> bool
(** Quarantine is on and the mode is Lxfi. *)

val quarantine_principal : Runtime.t -> Principal.t -> reason:string -> unit
(** Revoke everything the principal holds and bar it from future entry
    selection.  Idempotent. *)

val escalate : Runtime.t -> Runtime.module_info -> reason:string -> unit
(** Quarantine every principal of the module and retire its dispatch
    entries (the containment analogue of unload).  Idempotent. *)

val handle : Runtime.t -> Violation.info -> unit
(** Apply the policy to a caught violation: count, quarantine the
    faulting principal, escalate the module if it keeps offending. *)

val dispatch : Runtime.t -> Runtime.module_info -> string -> int64 list -> int64
(** The kernel→module entry registered by the loader: transparent
    without quarantine; with it, any violation / memory fault / oops is
    contained and returns {!efault} to the kernel caller. *)

val protect : Runtime.t -> (unit -> 'a) -> ('a, Violation.info) result
(** Contain violations surfacing at kernel top level (kernel indirect
    calls through corrupted or retired slots).  Without quarantine
    enabled, exceptions propagate unchanged. *)

(** API-integrity violations.

    When a check fails, the paper's runtime panics the kernel.  The
    simulation raises [Violation] instead, which the test and exploit
    harnesses catch — a caught violation is the "LXFI prevented the
    exploit" outcome of Figure 8.  Under a quarantine-enabled config the
    runtime additionally contains the fault: see {!Quarantine}. *)

type kind =
  | Write_denied  (** store without a covering WRITE capability *)
  | Call_denied  (** call/jump without a CALL capability *)
  | Ref_denied  (** argument without the required REF capability *)
  | Cap_not_owned  (** copy/transfer source does not own the capability *)
  | Annot_mismatch  (** function vs. slot-type annotation hash differs *)
  | Shadow_stack  (** return address or principal stack corrupted *)
  | Principal_denied  (** privileged principal operation without standing *)
  | Watchdog_expired  (** module entry exceeded its fuel budget *)
  | Flow_violation  (** kernel-API call outside the module's flow graph *)

let all_kinds =
  [
    Write_denied;
    Call_denied;
    Ref_denied;
    Cap_not_owned;
    Annot_mismatch;
    Shadow_stack;
    Principal_denied;
    Watchdog_expired;
    Flow_violation;
  ]

let kind_name = function
  | Write_denied -> "write-denied"
  | Call_denied -> "call-denied"
  | Ref_denied -> "ref-denied"
  | Cap_not_owned -> "cap-not-owned"
  | Annot_mismatch -> "annotation-mismatch"
  | Shadow_stack -> "shadow-stack"
  | Principal_denied -> "principal-denied"
  | Watchdog_expired -> "watchdog-expired"
  | Flow_violation -> "flow-violation"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

(** Figure 13 row title accounting for a kind.  Exhaustive on purpose:
    adding a [kind] without deciding its counter row is a compile error,
    and the tests assert every row title actually appears in the
    table. *)
let counter_row = function
  | Write_denied | Call_denied | Ref_denied | Cap_not_owned | Annot_mismatch
  | Shadow_stack | Principal_denied ->
      "Violations"
  | Watchdog_expired -> "Watchdog expiries"
  | Flow_violation -> "Flow violations"

type info = {
  v_kind : kind;
  v_module : string;
  v_principal : Principal.t option;  (** faulting principal, when known *)
  v_where : string option;  (** fault location, e.g. ["entry@1234"] *)
  v_detail : string;
}

exception Violation of info

let origin ?principal ?where () =
  let p = match principal with Some p -> " " ^ Principal.describe p | None -> "" in
  let w = match where with Some w -> " at " ^ w | None -> "" in
  p ^ w

(** A violation as a structured diagnostic — the record the runtime
    shares with the static checker's findings and the quarantine log. *)
let to_diag (i : info) : Diag.t =
  Diag.make
    ?principal:(Option.map Principal.describe i.v_principal)
    ~location:
      (match i.v_where with None -> i.v_module | Some w -> i.v_module ^ "/" ^ w)
    ~source:"runtime.violation" Diag.Error
    (Printf.sprintf "[%s] %s" (kind_name i.v_kind) i.v_detail)

let raise_ ?principal ?where ~kind ~module_ fmt =
  Format.kasprintf
    (fun detail ->
      if !Trace.on then Trace.emit (Trace.Violation (kind_name kind, module_));
      let i =
        { v_kind = kind; v_module = module_; v_principal = principal;
          v_where = where; v_detail = detail }
      in
      Kernel_sim.Klog.diag (to_diag i);
      raise (Violation i))
    fmt

let pp ppf i =
  Fmt.pf ppf "LXFI violation [%s] in module %s%s: %s" (kind_name i.v_kind) i.v_module
    (origin ?principal:i.v_principal ?where:i.v_where ())
    i.v_detail

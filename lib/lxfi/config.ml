(** Enforcement configuration.

    [mode] selects which system the simulation runs:

    - [Stock]: an uninstrumented kernel+module — the baseline all
      exploits succeed against.
    - [Xfi]: memory safety + module-side CFI only, in the spirit of
      XFI [Erlingsson et al., OSDI'06].  Modules can only write memory
      they own and call imports/own functions, but kernel APIs are not
      annotated (no argument contracts, no REF checks), the kernel does
      not interpose on its own indirect calls, and there are no
      principals.  This is the ablation that shows why API integrity is
      needed: confused-deputy attacks through permissive kernel APIs
      (RDS) and module-supplied corrupted pointers invoked by the
      kernel (Econet) still succeed.
    - [Lxfi]: the full system of the paper.

    The [opt_*] flags expose the paper's performance mechanisms for the
    ablation benchmarks: writer-set tracking (§5), guard elision for
    provably-safe stores, and trivial-function inlining (§8.3). *)

type mode = Stock | Xfi | Lxfi

type t = {
  mode : mode;
  writer_set_tracking : bool;  (** fast-path elision of kernel ind-call checks *)
  opt_elide_safe_writes : bool;  (** drop guards on in-bounds constant-offset stack stores *)
  opt_inline_trivial : bool;  (** inline trivial functions before guarding *)
  quarantine : bool;
      (** contain violations by quarantining the faulting principal and
          returning -EFAULT instead of letting the violation propagate *)
  escalate_threshold : int;
      (** quarantine mode: violations within [escalate_window] before the
          whole module is unloaded *)
  escalate_window : int;  (** escalation window, in simulated cycles *)
  watchdog_fuel : int option;
      (** per-entry interpreter fuel budget; exhaustion becomes a
          [Watchdog_expired] violation instead of a soft-lockup oops *)
  strict_check : bool;
      (** refuse to load a module with error-severity static-checker
          findings (annotation lint + capability-flow); off by default —
          the checker is load-time only and must not perturb benchmarks *)
  flow_integrity : bool;
      (** enforce syscall-flow integrity: advance a per-principal flow
          automaton at kexport calls within kernel-entered activations
          and raise [Flow_violation] on an off-graph transition
          (Lxfi mode only) *)
}

let lxfi =
  {
    mode = Lxfi;
    writer_set_tracking = true;
    opt_elide_safe_writes = true;
    opt_inline_trivial = true;
    quarantine = false;
    escalate_threshold = 3;
    escalate_window = 1_000_000;
    watchdog_fuel = None;
    strict_check = false;
    flow_integrity = true;
  }

let stock = { lxfi with mode = Stock }
let xfi = { lxfi with mode = Xfi }

let lxfi_quarantine = { lxfi with quarantine = true; watchdog_fuel = Some 1_000_000 }

let mode_name = function Stock -> "stock" | Xfi -> "xfi" | Lxfi -> "lxfi"

let pp ppf t =
  Fmt.pf ppf "%s(ws=%b,elide=%b,inline=%b%s%s)" (mode_name t.mode) t.writer_set_tracking
    t.opt_elide_safe_writes t.opt_inline_trivial
    (if t.quarantine then Printf.sprintf ",quarantine=%d/%dcyc" t.escalate_threshold t.escalate_window
     else "")
    ((match t.watchdog_fuel with Some n -> Printf.sprintf ",watchdog=%d" n | None -> "")
    ^ if t.strict_check then ",strict" else "")

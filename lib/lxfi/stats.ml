(** Guard counters — the raw material of Figure 13 ("guards per packet"
    by type) and the writer-set ablation.

    Counters are cheap monotonic ints; the benchmark harness snapshots
    them around a workload section and divides by the packet count. *)

type t = {
  mutable annotation_actions : int;
      (** copy/transfer/check actions executed by wrappers *)
  mutable fn_entry : int;  (** wrapper/function entry guards *)
  mutable fn_exit : int;
  mutable mem_write_checks : int;  (** module store guards *)
  mutable mod_indcall_checks : int;  (** module-side indirect-call guards *)
  mutable kernel_indcall_all : int;  (** kernel indirect-call sites executed *)
  mutable kernel_indcall_checked : int;  (** ... that needed the capability check *)
  mutable kernel_indcall_elided : int;  (** ... skipped via writer-set fast path *)
  mutable caps_granted : int;
  mutable caps_revoked : int;
  mutable principal_switches : int;
  mutable violations : int;
  mutable quarantines : int;  (** principals quarantined *)
  mutable escalations : int;  (** whole-module unloads after repeat offenses *)
  mutable watchdog_expiries : int;
  mutable flow_violations : int;  (** kernel-API calls denied by the flow automaton *)
  mutable caps_dropped : int;  (** grants suppressed by fault injection *)
  violations_by_module : (string, int) Hashtbl.t;
}

let create () =
  {
    annotation_actions = 0;
    fn_entry = 0;
    fn_exit = 0;
    mem_write_checks = 0;
    mod_indcall_checks = 0;
    kernel_indcall_all = 0;
    kernel_indcall_checked = 0;
    kernel_indcall_elided = 0;
    caps_granted = 0;
    caps_revoked = 0;
    principal_switches = 0;
    violations = 0;
    quarantines = 0;
    escalations = 0;
    watchdog_expiries = 0;
    flow_violations = 0;
    caps_dropped = 0;
    violations_by_module = Hashtbl.create 8;
  }

let reset t =
  t.annotation_actions <- 0;
  t.fn_entry <- 0;
  t.fn_exit <- 0;
  t.mem_write_checks <- 0;
  t.mod_indcall_checks <- 0;
  t.kernel_indcall_all <- 0;
  t.kernel_indcall_checked <- 0;
  t.kernel_indcall_elided <- 0;
  t.caps_granted <- 0;
  t.caps_revoked <- 0;
  t.principal_switches <- 0;
  t.violations <- 0;
  t.quarantines <- 0;
  t.escalations <- 0;
  t.watchdog_expiries <- 0;
  t.flow_violations <- 0;
  t.caps_dropped <- 0;
  Hashtbl.reset t.violations_by_module

(** [note_violation t module_] bumps the global and per-module violation
    counters. *)
let note_violation t module_ =
  t.violations <- t.violations + 1;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.violations_by_module module_) in
  Hashtbl.replace t.violations_by_module module_ (n + 1)

let module_violations t module_ =
  Option.value ~default:0 (Hashtbl.find_opt t.violations_by_module module_)

type snapshot = {
  s_annotation_actions : int;
  s_fn_entry : int;
  s_fn_exit : int;
  s_mem_write_checks : int;
  s_mod_indcall_checks : int;
  s_kernel_indcall_all : int;
  s_kernel_indcall_checked : int;
  s_kernel_indcall_elided : int;
  s_caps_granted : int;
  s_caps_revoked : int;
  s_principal_switches : int;
  s_violations : int;
  s_quarantines : int;
  s_escalations : int;
  s_watchdog_expiries : int;
  s_flow_violations : int;
  s_caps_dropped : int;
}

let snapshot t =
  {
    s_annotation_actions = t.annotation_actions;
    s_fn_entry = t.fn_entry;
    s_fn_exit = t.fn_exit;
    s_mem_write_checks = t.mem_write_checks;
    s_mod_indcall_checks = t.mod_indcall_checks;
    s_kernel_indcall_all = t.kernel_indcall_all;
    s_kernel_indcall_checked = t.kernel_indcall_checked;
    s_kernel_indcall_elided = t.kernel_indcall_elided;
    s_caps_granted = t.caps_granted;
    s_caps_revoked = t.caps_revoked;
    s_principal_switches = t.principal_switches;
    s_violations = t.violations;
    s_quarantines = t.quarantines;
    s_escalations = t.escalations;
    s_watchdog_expiries = t.watchdog_expiries;
    s_flow_violations = t.flow_violations;
    s_caps_dropped = t.caps_dropped;
  }

let since t s =
  {
    s_annotation_actions = t.annotation_actions - s.s_annotation_actions;
    s_fn_entry = t.fn_entry - s.s_fn_entry;
    s_fn_exit = t.fn_exit - s.s_fn_exit;
    s_mem_write_checks = t.mem_write_checks - s.s_mem_write_checks;
    s_mod_indcall_checks = t.mod_indcall_checks - s.s_mod_indcall_checks;
    s_kernel_indcall_all = t.kernel_indcall_all - s.s_kernel_indcall_all;
    s_kernel_indcall_checked = t.kernel_indcall_checked - s.s_kernel_indcall_checked;
    s_kernel_indcall_elided = t.kernel_indcall_elided - s.s_kernel_indcall_elided;
    s_caps_granted = t.caps_granted - s.s_caps_granted;
    s_caps_revoked = t.caps_revoked - s.s_caps_revoked;
    s_principal_switches = t.principal_switches - s.s_principal_switches;
    s_violations = t.violations - s.s_violations;
    s_quarantines = t.quarantines - s.s_quarantines;
    s_escalations = t.escalations - s.s_escalations;
    s_watchdog_expiries = t.watchdog_expiries - s.s_watchdog_expiries;
    s_flow_violations = t.flow_violations - s.s_flow_violations;
    s_caps_dropped = t.caps_dropped - s.s_caps_dropped;
  }

let pp ppf t =
  Fmt.pf ppf
    "guards{annot=%d; entry=%d; exit=%d; wcheck=%d; mod-ind=%d; kind=%d \
     (checked=%d elided=%d); grant=%d; revoke=%d; switch=%d; viol=%d; \
     quarantine=%d; escalate=%d; watchdog=%d; flow=%d; dropped=%d}"
    t.annotation_actions t.fn_entry t.fn_exit t.mem_write_checks t.mod_indcall_checks
    t.kernel_indcall_all t.kernel_indcall_checked t.kernel_indcall_elided t.caps_granted
    t.caps_revoked t.principal_switches t.violations t.quarantines t.escalations
    t.watchdog_expiries t.flow_violations t.caps_dropped

(** The LXFI runtime (paper §5): the reference monitor interposed on
    every control transfer between the core kernel and modules.

    It tracks principals and their capability tables, executes the
    grant/check/transfer actions that interface annotations prescribe
    (inside {e wrappers} around each boundary crossing, with shadow-
    stack protection and principal switching), guards module stores and
    indirect calls, and checks core-kernel indirect calls through
    module-writable slots with the writer-set fast path. *)

open Kernel_sim

(** Simulated cycle cost of each guard type (charged to the
    [Kcycles.Guard] category).  Model constants, calibrated so the
    netperf reproduction exhibits the paper's Figure 12 shapes; see
    EXPERIMENTS.md. *)
module Cost : sig
  val annotation_action : int
  (** per capability processed by a copy/transfer/check action *)

  val fn_entry : int
  val fn_exit : int
  val mem_write_check : int
  val mod_indcall_check : int
  val kernel_indcall_check : int
  val kernel_indcall_fastpath : int
  val principal_switch : int
end

type module_info = {
  mi_name : string;
  mi_prog : Mir.Ast.prog;  (** the instrumented program *)
  mi_shared : Principal.t;
  mi_global : Principal.t;
  mutable mi_principals : Principal.t list;  (** all, incl. shared+global *)
  mi_aliases : (int, Principal.t) Hashtbl.t;  (** name pointer -> principal *)
  mi_globals : (string, int) Hashtbl.t;  (** module global -> address *)
  mi_func_addr : (string, int) Hashtbl.t;  (** function -> text address *)
  mi_func_slot : (string, Annot.Registry.slot) Hashtbl.t;
      (** propagated annotation (slot type) per kernel-callable function *)
  mutable mi_ctx : Mir.Interp.ctx option;  (** set by the loader *)
  mi_sections : (string * int * int) list;  (** (section, base, len) *)
  mi_stack_base : int;
  mi_stack_len : int;
  mutable mi_dead : string option;  (** set when the whole module was retired *)
  mutable mi_recent_violations : int list;
      (** cycle stamps of recent violations, for escalation windowing *)
  mutable mi_recent_kinds : Violation.kind list;
      (** violation classes of the current escalation episode, newest
          first, bounded by the escalation threshold — the oldest entry
          is the episode's root cause *)
  mutable mi_last_entry : (string * int64 list) option;
      (** innermost kernel→module entry (function, args), recorded by
          the quarantine dispatcher for replay after repair *)
  mutable mi_flow : Check.Apiflow.graph option;
      (** enforced kernel-API flow graph (set by the loader under
          [flow_integrity]: a registered policy graph if one exists,
          else self-extracted from the pristine MIR) *)
}
(** Everything the runtime knows about one loaded module. *)

type cap_shape = Swrite | Scall | Sref of string
(** The capability shapes an iterator can yield — static metadata for
    the upgrade compatibility check ([Loader.upgrade]). *)

type kexport = {
  ke_name : string;
  ke_addr : int;  (** fake kernel-text address (= the wrapper's address) *)
  ke_params : string list;
  ke_annot : Annot.Ast.t;
  ke_ahash : int64;
  ke_impl : int64 list -> int64;
}
(** An annotated kernel export. *)

type t = {
  kst : Kstate.t;
  config : Config.t;
  registry : Annot.Registry.t;  (** function-pointer slot types *)
  stats : Stats.t;
  wset : Writer_set.t;
  modules : (string, module_info) Hashtbl.t;
  kexports : (string, kexport) Hashtbl.t;
  kexport_by_addr : (int, kexport) Hashtbl.t;
  flow_graphs : (string, Check.Apiflow.graph) Hashtbl.t;
      (** registered flow policies by module name; a module with no
          entry self-extracts its graph at load time *)
  iterators : (string, t -> int64 list -> Capability.t list) Hashtbl.t;
  iterator_shapes : (string, cap_shape list) Hashtbl.t;
      (** declared yield shapes per iterator; no entry = all shapes *)
  func_ahash_by_addr : (int, int64) Hashtbl.t;
      (** annotation hash of every annotated callable address *)
  mutable current : Principal.t option;  (** None = kernel context *)
  sstack : Shadow_stack.t;
  raw_dispatch : slot:int -> ftype:string -> int64 list -> int64;
      (** the kernel's original unchecked dispatcher *)
  kernel_stack_base : int;
  kernel_stack_len : int;
  retired : (int, string) Hashtbl.t;
      (** retired callable address -> owning module (dangling-pointer
          attribution after unload/escalation) *)
  mutable quarantine_log : Diag.t list;
      (** structured quarantine/escalation diagnostics, newest first *)
  mutable last_callee : Principal.t option;
      (** callee principal of the innermost kernel→module entry, for
          attributing faults that carry no principal *)
  mutable last_violation : Violation.info option;
      (** most recent violation the quarantine policy handled *)
  mutable on_escalate : (module_info -> reason:string -> unit) list;
      (** observers called at the start of escalation, before any
          principal is quarantined (the repair subsystem's capture
          hook) *)
}

val create : kst:Kstate.t -> config:Config.t -> t
(** Set up the runtime (capability stores, shadow stack adjacent to a
    fresh kernel stack).  Call {!install} to activate the kernel
    indirect-call checker. *)

val install : t -> unit
(** Point [Kstate.indcall] at {!kernel_indirect_call}. *)

val attach_trace : t -> Trace.t -> unit
(** Make [buf] the live {!Trace} sink, with events stamped from this
    runtime's cycle clock and current principal.  Undo with
    [Trace.detach ()]. *)

val current_module : t -> module_info option
val module_named : t -> string -> module_info option

val where_of : module_info -> string option
(** Fault location of the module's innermost executing function, e.g.
    ["entry@1234"] (function name @ interpreter step count). *)

val retire_module : t -> module_info -> unit
(** Pull every kernel-callable address the module registered out of the
    dispatch tables (recording each in [retired]) and empty every
    principal's capability table — WRITE, CALL and REF capabilities of
    every registered rtype — shared by [Loader.unload] and quarantine
    escalation. *)

(** {1 Kernel API surface} *)

val register_kexport :
  t ->
  name:string ->
  params:string list ->
  annot:Annot.Ast.t ->
  (int64 list -> int64) ->
  (kexport, Annot.Registry.error) result
(** Register an annotated kernel export from an already-parsed
    annotation.  Validates against [params] and hashes the canonical
    form; [Error] carries the structured reason. *)

val register_kexport_src :
  t ->
  name:string ->
  params:string list ->
  annot_src:string ->
  (int64 list -> int64) ->
  (kexport, Annot.Registry.error) result
(** Convenience wrapper that parses [annot_src] first. *)

val register_kexport_exn :
  t ->
  name:string ->
  params:string list ->
  annot_src:string ->
  (int64 list -> int64) ->
  kexport
(** [register_kexport_src] + {!Annot.Registry.ok_exn} — for boot-time
    registration where a bad built-in annotation is a programming
    bug. *)

val register_flow_graph : t -> module_:string -> Check.Apiflow.graph -> unit
(** Pin the flow policy the next load of [module_] enforces, instead of
    self-extracting a graph from the loaded MIR — how an audited benign
    graph is held against a possibly-tampered binary (the SFIP threat
    model; the fuzz harness's flow-class mutants use exactly this). *)

val register_iterator :
  ?shapes:cap_shape list ->
  t ->
  name:string ->
  (t -> int64 list -> Capability.t list) ->
  unit
(** Register a programmer-supplied capability iterator ([skb_caps],
    [kmalloc_caps], ...; §3.3).  [shapes] declares the capability kinds
    the iterator can yield, consumed by the upgrade compatibility
    check; omitted = assume every shape. *)

val iterator_can_yield : t -> name:string -> cap_shape -> bool
(** Can iterator [name] yield a capability of this shape?  Unknown
    iterators conservatively yield everything. *)

val find_kexport : t -> string -> kexport

(** {1 Capabilities and principals} *)

val all_principals : t -> Principal.t list

val principal_has : t -> Principal.t -> Capability.t -> bool
(** Ownership with the implicit-access rules of §3.1: instances see the
    shared principal's capabilities; the global principal sees
    everything the module holds. *)

val has_write_covering : t -> Principal.t -> addr:int -> size:int -> bool

val grant : ?ctx:string -> t -> Principal.t -> Capability.t -> unit
(** Insert a capability (marking the writer set for non-user WRITE
    ranges).  [ctx] names the annotation action performing the grant
    (e.g. ["copy(post)"]) for trace attribution. *)

val revoke_from_all : ?ctx:string -> t -> Capability.t -> unit
(** Remove the capability — for WRITE, anything intersecting its
    range — from {e every} principal in the system (§3.3 transfer
    semantics).  [ctx] as in {!grant}. *)

val find_or_create_instance : t -> module_info -> name_ptr:int -> Principal.t
(** The principal named by [name_ptr], following aliases; created on
    first use. *)

val writers_of : t -> addr:int -> Principal.t list
(** Principals holding a WRITE capability covering [addr] (the writer
    set, computed by walking the global principal list as in the
    paper). *)

(** {1 Wrappers and guards} *)

val entry_guard : t -> unit
val exit_guard : t -> unit

val call_kexport : t -> kexport -> int64 list -> int64
(** Module→kernel crossing: pre actions against the calling principal,
    the implementation in kernel context, post actions granting back to
    the caller.  From kernel context the implementation runs bare. *)

val run_mir : t -> module_info -> string -> int64 list -> int64
(** Run a module function in its interpreter context, no wrapper. *)

val invoke_module_function : t -> module_info -> string -> int64 list -> int64
(** Kernel→module crossing through the function's propagated slot-type
    annotation: principal selection, pre/post actions, shadow stack.
    Under LXFI an unannotated function is not kernel-callable (the safe
    default). *)

val guard_write : t -> module_info -> addr:int -> size:int -> unit
(** The rewriter-inserted store guard: the current principal must hold
    a covering WRITE capability. *)

val guard_indcall : t -> module_info -> target:int -> unit
(** The rewriter-inserted indirect-call guard: the current principal
    must hold CALL for [target]. *)

val kernel_indirect_call :
  t -> slot:int -> ftype:string -> int64 list -> int64
(** [lxfi_check_indcall(pptr, ahash)] (§4.1): writer-set fast path;
    otherwise every writer of [slot] must hold CALL for the stored
    target and the target's annotation hash must match [ftype]'s. *)

(** {1 Privileged runtime calls (module-importable as [lxfi_*])} *)

val lxfi_check : t -> rtype:string -> addr:int -> unit
(** Explicit REF check inserted by module code (Figure 4, line 72). *)

val lxfi_princ_alias : t -> existing:int -> fresh:int -> unit
(** Create name [fresh] for the principal named [existing] (Figure 4,
    line 73). *)

val lxfi_switch_global : t -> unit
(** Switch to the module's global principal for cross-instance state;
    undone when the enclosing wrapper returns (§3.1). *)

(** {1 Interrupts} *)

val irq_enter : t -> int
(** Save the interrupted principal on the shadow stack and enter kernel
    context; returns the token for {!irq_exit}. *)

val irq_exit : t -> int -> unit

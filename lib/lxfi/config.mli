(** Enforcement configuration: which system the simulation runs and
    which of the paper's optimizations are active. *)

type mode =
  | Stock  (** no instrumentation, no checks — the exploitable baseline *)
  | Xfi
      (** memory safety + module-side CFI only (the XFI-style ablation):
          no API-integrity annotations, no principals, no kernel-side
          indirect-call interposition *)
  | Lxfi  (** the full system of the paper *)

type t = {
  mode : mode;
  writer_set_tracking : bool;
      (** §4.1/§5 fast path eliding kernel indirect-call checks *)
  opt_elide_safe_writes : bool;
      (** drop guards on provably in-bounds constant-offset stack stores
          (§8.3, the MD5 result) *)
  opt_inline_trivial : bool;
      (** inline trivial functions before guarding (§8.3, the lld
          result) *)
  quarantine : bool;
      (** contain violations by quarantining the faulting principal and
          returning -EFAULT, instead of letting the violation propagate
          (the paper panics; see DESIGN.md "Recovery semantics") *)
  escalate_threshold : int;
      (** quarantine mode: violations within [escalate_window] before
          the whole module is unloaded *)
  escalate_window : int;  (** escalation window, in simulated cycles *)
  watchdog_fuel : int option;
      (** per-entry interpreter fuel budget; exhaustion becomes a
          [Watchdog_expired] violation instead of a soft-lockup oops *)
  strict_check : bool;
      (** refuse to load a module with error-severity static-checker
          findings; off in every preset (the checker is load-time only
          and must not perturb benchmarks) *)
  flow_integrity : bool;
      (** enforce syscall-flow integrity (Lxfi mode only): an
          off-graph kexport call within a kernel-entered activation
          raises [Flow_violation]; on in every preset — a faithfully
          executed module can never leave its own may-follow graph *)
}

val lxfi : t
(** Full enforcement with all optimizations. *)

val stock : t
val xfi : t

val lxfi_quarantine : t
(** Full enforcement plus fault containment: quarantine on violation and
    a per-entry watchdog budget. *)

val mode_name : mode -> string
val pp : Format.formatter -> t -> unit

(** Quarantine → repair → replay.

    Escalation retires a repeat-offender module (see {!Quarantine}),
    but a production kernel wants the service back.  This subsystem
    closes the loop:

    + {e capture} — {!arm} installs a pre-retirement escalation hook
      that records an {!incident}: the module's full security snapshot
      (taken while its capability tables are still intact), the traced
      window of events around the fault (from the attached {!Trace}
      ring buffer), the innermost kernel→module entry that was running,
      and the violation class that tripped the escalation;
    + {e repair} — somebody produces a fixed version of the module (in
      the campaigns, a variant with the bug patched);
    + {e replay} — {!replay} loads a candidate program under the
      retired module's name, restores the pre-fault snapshot into it,
      and re-drives the recorded faulting entry.  Replaying the
      {e unrepaired} program must reproduce the original violation
      class; replaying the {e repaired} one must complete cleanly —
      the recovery oracle the lifecycle campaign asserts.

    Replay is a quarantine-mode feature: it drives the entry through
    {!Quarantine.dispatch} and reads the containment result, so it
    requires a config with [quarantine = true]. *)

type incident = {
  inc_module : string;
  inc_reason : string;  (** escalation reason string *)
  inc_kind : Violation.kind option;
      (** class of the violation that tripped the escalation *)
  inc_snapshot : Snapshot.t;
      (** security state at escalation, pre-retirement *)
  inc_window : Trace.event array;
      (** traced events from the start of the faulting entry to the
          escalation; empty when no trace buffer was attached *)
  inc_prog : Mir.Ast.prog;
      (** the {e instrumented} program that faulted — for inspection;
          pass a pristine program to {!replay}, never this one *)
  inc_entry : (string * int64 list) option;
      (** innermost kernel→module entry (function, args) *)
}

type t = { mutable incidents : incident list  (** newest first *) }

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** The faulting window: every retained trace event from the last
    kernel→module entry into [mi] onward.  When no entry span of the
    module is retained (or no buffer is attached), the whole retained
    buffer (resp. nothing) is the window — more context, never less. *)
let window_of (buf : Trace.t) (mi : Runtime.module_info) : Trace.event array =
  let evs = Trace.events buf in
  let prefix = mi.Runtime.mi_name ^ ":" in
  let start = ref 0 in
  Array.iteri
    (fun i (e : Trace.event) ->
      match e.Trace.ev_kind with
      | Trace.Span_begin (Trace.K2m, w) when has_prefix ~prefix w -> start := i
      | _ -> ())
    evs;
  Array.sub evs !start (Array.length evs - !start)

let arm (rt : Runtime.t) : t =
  let t = { incidents = [] } in
  let hook (mi : Runtime.module_info) ~reason =
    let snap = Snapshot.capture rt mi in
    let window =
      match Trace.attached () with
      | None -> [||]
      | Some buf -> window_of buf mi
    in
    t.incidents <-
      {
        inc_module = mi.Runtime.mi_name;
        inc_reason = reason;
        inc_kind =
          (* Root cause: the oldest violation class of the escalation
             episode — the last one before retirement is usually just a
             [Principal_denied] bounce off the quarantined principal. *)
          (match List.rev mi.Runtime.mi_recent_kinds with
          | k :: _ -> Some k
          | [] -> Option.map (fun v -> v.Violation.v_kind) rt.Runtime.last_violation);
        inc_snapshot = snap;
        inc_window = window;
        inc_prog = mi.Runtime.mi_prog;
        inc_entry = mi.Runtime.mi_last_entry;
      }
      :: t.incidents
  in
  rt.Runtime.on_escalate <- hook :: rt.Runtime.on_escalate;
  t

let incidents t = t.incidents
let last t = match t.incidents with [] -> None | i :: _ -> Some i

type verdict = {
  vd_ret : int64 option;  (** return value when the entry completed *)
  vd_violation : Violation.kind option;
      (** violation class the replay provoked, when contained *)
  vd_contained : bool;  (** the entry was contained to [-EFAULT] *)
}

(** Does the replay verdict reproduce the incident's violation class?
    Matching on the class (not the detail string) tolerates address
    drift between the original and the replayed instance. *)
let reproduces (inc : incident) (vd : verdict) =
  match (inc.inc_kind, vd.vd_violation) with
  | Some k, Some k' -> k = k'
  | None, Some _ -> vd.vd_contained  (* original class unknown: any containment counts *)
  | _, None -> false

let replay (rt : Runtime.t) (inc : incident) ~(prog : Mir.Ast.prog) :
    Runtime.module_info * verdict =
  if prog.Mir.Ast.pname <> inc.inc_module then
    invalid_arg
      (Printf.sprintf "Repair.replay: program %s does not repair module %s"
         prog.Mir.Ast.pname inc.inc_module);
  let mi, _report = Loader.load rt prog in
  if Mir.Ast.find_func mi.Runtime.mi_prog "module_init" <> None then
    ignore (Loader.init_call rt mi "module_init" []);
  (* Restore the pre-fault state so the instance resumes where the
     faulted one stopped.  Additive over the fresh load grants;
     capabilities held by already-quarantined principals stay revoked
     (restore_filtered's standing rule), and CALL toward retired text
     is refused — the old version's functions no longer exist. *)
  let filter =
    {
      Snapshot.keep_write = (fun ~base:_ ~size:_ -> true);
      keep_call = (fun ~target -> not (Hashtbl.mem rt.Runtime.retired target));
      keep_ref = (fun ~rtype:_ ~addr:_ -> true);
      keep_instances = true;
    }
  in
  ignore (Snapshot.restore_filtered rt mi inc.inc_snapshot filter);
  let verdict =
    match inc.inc_entry with
    | None -> { vd_ret = None; vd_violation = None; vd_contained = false }
    | Some (fname, args) ->
        rt.Runtime.last_violation <- None;
        let r = Quarantine.dispatch rt mi fname args in
        let contained = Int64.equal r Quarantine.efault in
        {
          vd_ret = (if contained then None else Some r);
          vd_violation =
            (if contained then
               Option.map (fun v -> v.Violation.v_kind) rt.Runtime.last_violation
             else None);
          vd_contained = contained;
        }
  in
  (mi, verdict)

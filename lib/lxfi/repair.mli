(** Quarantine → repair → replay: incident capture at escalation and
    recovery-oracle replay of the faulting entry against a candidate
    fixed module.  See DESIGN.md, "Recovery semantics". *)

type incident = {
  inc_module : string;
  inc_reason : string;  (** escalation reason string *)
  inc_kind : Violation.kind option;
      (** class of the violation that tripped the escalation *)
  inc_snapshot : Snapshot.t;
      (** security state at escalation, captured pre-retirement while
          the capability tables were still intact *)
  inc_window : Trace.event array;
      (** traced events from the start of the faulting kernel→module
          entry to the escalation; empty without an attached buffer *)
  inc_prog : Mir.Ast.prog;
      (** the {e instrumented} program that faulted — for inspection
          only; pass a pristine program to {!replay} *)
  inc_entry : (string * int64 list) option;
      (** innermost kernel→module entry (function, args), as recorded
          by the quarantine dispatcher *)
}

type t

val arm : Runtime.t -> t
(** Install the pre-retirement escalation hook; every later escalation
    of any module appends an {!incident}. *)

val incidents : t -> incident list
(** All captured incidents, newest first. *)

val last : t -> incident option

val window_of : Trace.t -> Runtime.module_info -> Trace.event array
(** The faulting window: retained events from the module's last
    kernel→module entry onward. *)

type verdict = {
  vd_ret : int64 option;  (** return value when the entry completed *)
  vd_violation : Violation.kind option;
      (** violation class the replay provoked, when contained *)
  vd_contained : bool;  (** the entry was contained to [-EFAULT] *)
}

val reproduces : incident -> verdict -> bool
(** Does the verdict reproduce the incident's violation class?  Classes
    are compared, not detail strings — addresses drift between the
    original and replayed instance. *)

val replay :
  Runtime.t -> incident -> prog:Mir.Ast.prog -> Runtime.module_info * verdict
(** [replay rt inc ~prog] loads [prog] under the retired module's name
    (free since the escalation), runs its [module_init], restores the
    incident snapshot (additively; quarantined principals stay revoked,
    CALL toward retired text is refused), and re-drives the recorded
    faulting entry through {!Quarantine.dispatch}.  The recovery oracle:
    {!reproduces} must hold for the unrepaired program and must not for
    the repaired one.  The loaded instance is returned either way —
    unload the unrepaired one after the check.  Raises
    [Invalid_argument] if [prog] is named differently from the retired
    module; requires a quarantine-enabled config. *)

(** Fault containment: the quarantine policy.

    The paper's runtime answers any LXFI violation with a kernel panic
    (§6).  A simulation serving many module instances instead
    {e contains} the fault, leaning on the multi-principal design: the
    offending principal loses all its capabilities and can no longer be
    selected for entry, the shadow stack is unwound to the kernel frame,
    and the kernel caller gets an [-EFAULT]-style error — so sibling
    instances of the same module and every other module keep working.
    A module that keeps violating inside a cycle window is escalated:
    all its principals are quarantined and its dispatch-table entries
    retired, the containment analogue of [Loader.unload].

    This preserves the paper's security argument (see DESIGN.md): no
    capability is ever added by the quarantine path, only removed, and
    removal is exactly the transfer-revocation primitive of §3.3. *)

open Kernel_sim

(** -EFAULT, the error a contained entry returns to the kernel caller. *)
let efault = -14L

let enabled (rt : Runtime.t) =
  rt.Runtime.config.Config.quarantine && rt.Runtime.config.Config.mode = Config.Lxfi

(** [quarantine_principal rt p ~reason] revokes everything [p] holds and
    bars it from future entry selection.  Idempotent. *)
let quarantine_principal (rt : Runtime.t) (p : Principal.t) ~reason =
  match p.Principal.quarantined with
  | Some _ -> ()
  | None ->
      p.Principal.quarantined <- Some reason;
      Captable.clear p.Principal.caps;
      rt.Runtime.stats.Stats.quarantines <- rt.Runtime.stats.Stats.quarantines + 1;
      let d =
        Diag.make
          ~principal:(Principal.describe p)
          ~location:p.Principal.owner ~source:"runtime.quarantine" Diag.Warning
          ("quarantined: " ^ reason)
      in
      rt.Runtime.quarantine_log <- d :: rt.Runtime.quarantine_log;
      if !Trace.on then Trace.emit (Trace.Quarantine (Principal.describe p, reason));
      Klog.diag d

(** [escalate rt mi ~reason] — repeat offender: quarantine every
    principal of the module and retire its dispatch-table entries, so
    even its shared state stops being reachable.  Idempotent. *)
let escalate (rt : Runtime.t) (mi : Runtime.module_info) ~reason =
  match mi.Runtime.mi_dead with
  | Some _ -> ()
  | None ->
      (* Pre-retirement observers run first, while the module's
         capability tables are still intact — the repair subsystem
         captures its snapshot and the traced faulting window here. *)
      List.iter (fun hook -> hook mi ~reason) rt.Runtime.on_escalate;
      mi.Runtime.mi_dead <- Some reason;
      List.iter (fun p -> quarantine_principal rt p ~reason) mi.Runtime.mi_principals;
      Runtime.retire_module rt mi;
      rt.Runtime.stats.Stats.escalations <- rt.Runtime.stats.Stats.escalations + 1;
      if !Trace.on then Trace.emit (Trace.Escalation (mi.Runtime.mi_name, reason));
      let d =
        Diag.make ~location:mi.Runtime.mi_name ~source:"runtime.quarantine"
          Diag.Error ("escalation: module retired: " ^ reason)
      in
      rt.Runtime.quarantine_log <- d :: rt.Runtime.quarantine_log;
      Klog.diag d

(** Record a contained violation against [mi] and escalate once
    [escalate_threshold] violations land within [escalate_window]
    simulated cycles. *)
let note_and_maybe_escalate (rt : Runtime.t) (mi : Runtime.module_info) =
  let now = Kcycles.total rt.Runtime.kst.Kstate.cycles in
  let window = rt.Runtime.config.Config.escalate_window in
  mi.Runtime.mi_recent_violations <-
    now :: List.filter (fun t -> now - t <= window) mi.Runtime.mi_recent_violations;
  if
    List.length mi.Runtime.mi_recent_violations
    >= rt.Runtime.config.Config.escalate_threshold
  then
    escalate rt mi
      ~reason:
        (Printf.sprintf "%d violations within %d cycles"
           (List.length mi.Runtime.mi_recent_violations)
           window)

(** The module to charge a violation to: the named module if loaded,
    else the faulting principal's owner. *)
let module_of_violation (rt : Runtime.t) (v : Violation.info) principal =
  match Runtime.module_named rt v.Violation.v_module with
  | Some mi -> Some mi
  | None -> (
      match principal with
      | Some (p : Principal.t) -> Runtime.module_named rt p.Principal.owner
      | None -> None)

(** [handle rt v] applies the policy to a caught violation: count it,
    quarantine the faulting principal (falling back to the module's
    shared principal, then the innermost callee), and escalate the
    module if it keeps offending. *)
let handle (rt : Runtime.t) (v : Violation.info) =
  rt.Runtime.last_violation <- Some v;
  Stats.note_violation rt.Runtime.stats v.Violation.v_module;
  let principal =
    match v.Violation.v_principal with
    | Some p -> Some p
    | None -> (
        match Runtime.module_named rt v.Violation.v_module with
        | Some mi -> Some mi.Runtime.mi_shared
        | None -> rt.Runtime.last_callee)
  in
  let reason =
    Printf.sprintf "[%s] %s" (Violation.kind_name v.Violation.v_kind)
      v.Violation.v_detail
  in
  (match principal with Some p -> quarantine_principal rt p ~reason | None -> ());
  match module_of_violation rt v principal with
  | Some mi ->
      let rec take n = function
        | x :: tl when n > 0 -> x :: take (n - 1) tl
        | _ -> []
      in
      mi.Runtime.mi_recent_kinds <-
        take rt.Runtime.config.Config.escalate_threshold
          (v.Violation.v_kind :: mi.Runtime.mi_recent_kinds);
      note_and_maybe_escalate rt mi
  | None -> ()

(** Like {!handle} for raw machine faults ([Kmem.Fault] / [Oops]) that
    carry no principal: attribute to the innermost callee of [mi]. *)
let handle_fault (rt : Runtime.t) (mi : Runtime.module_info) ~reason =
  Stats.note_violation rt.Runtime.stats mi.Runtime.mi_name;
  let p =
    match rt.Runtime.last_callee with
    | Some p when p.Principal.owner = mi.Runtime.mi_name -> p
    | _ -> mi.Runtime.mi_shared
  in
  quarantine_principal rt p ~reason;
  note_and_maybe_escalate rt mi

(** [dispatch rt mi fname args] — the kernel→module entry the loader
    registers in place of a bare [Runtime.invoke_module_function]: under
    a quarantine config any violation, memory fault or oops raised by
    the entry is contained (shadow stack unwound to the kernel frame,
    kernel principal restored, offender quarantined) and surfaces to the
    kernel caller as {!efault}.  Without quarantine it is transparent. *)
let dispatch (rt : Runtime.t) (mi : Runtime.module_info) fname args =
  if not (enabled rt) then Runtime.invoke_module_function rt mi fname args
  else begin
    mi.Runtime.mi_last_entry <- Some (fname, args);
    let depth = Shadow_stack.depth rt.Runtime.sstack in
    let saved = rt.Runtime.current in
    let saved_callee = rt.Runtime.last_callee in
    let contain () =
      (* The wrappers already popped their frames while the exception
         propagated; the unwind is a backstop for frames abandoned
         between push and the handler. *)
      ignore (Shadow_stack.unwind_to rt.Runtime.sstack ~depth);
      rt.Runtime.current <- saved;
      rt.Runtime.last_callee <- saved_callee;
      efault
    in
    try
      let r = Runtime.invoke_module_function rt mi fname args in
      rt.Runtime.last_callee <- saved_callee;
      r
    with
    | Violation.Violation v ->
        handle rt v;
        contain ()
    | Kmem.Fault { addr; write } ->
        handle_fault rt mi
          ~reason:
            (Printf.sprintf "memory fault: bad %s at 0x%x"
               (if write then "write" else "read")
               addr);
        contain ()
    | Kstate.Oops msg ->
        handle_fault rt mi ~reason:("oops: " ^ msg);
        contain ()
  end

(** [protect rt f] contains violations that surface at kernel top level
    rather than inside a kernel→module entry — e.g. a kernel indirect
    call through a module-corrupted or retired function-pointer slot.
    Returns [Error info] with the runtime restored to the kernel frame
    and the offender quarantined. *)
let protect (rt : Runtime.t) f =
  let depth = Shadow_stack.depth rt.Runtime.sstack in
  let saved = rt.Runtime.current in
  try Ok (f ())
  with Violation.Violation v when enabled rt ->
    handle rt v;
    ignore (Shadow_stack.unwind_to rt.Runtime.sstack ~depth);
    rt.Runtime.current <- saved;
    Error v

(** Guard counters — the raw material of Figure 13 (guards per packet
    by type) and the writer-set ablation.  Monotonic; benchmark code
    snapshots around a workload section and divides by units of work. *)

type t = {
  mutable annotation_actions : int;
      (** capability operations performed by wrapper annotations (one
          count per capability processed) *)
  mutable fn_entry : int;  (** wrapper/function entry guards *)
  mutable fn_exit : int;
  mutable mem_write_checks : int;  (** module store guards *)
  mutable mod_indcall_checks : int;  (** module-side indirect-call guards *)
  mutable kernel_indcall_all : int;  (** kernel indirect-call sites executed *)
  mutable kernel_indcall_checked : int;  (** ... that needed the full check *)
  mutable kernel_indcall_elided : int;  (** ... skipped via the writer-set fast path *)
  mutable caps_granted : int;
  mutable caps_revoked : int;
  mutable principal_switches : int;
  mutable violations : int;
  mutable quarantines : int;  (** principals quarantined *)
  mutable escalations : int;  (** whole-module unloads after repeat offenses *)
  mutable watchdog_expiries : int;
  mutable flow_violations : int;  (** kernel-API calls denied by the flow automaton *)
  mutable caps_dropped : int;  (** grants suppressed by fault injection *)
  violations_by_module : (string, int) Hashtbl.t;
}

val create : unit -> t
val reset : t -> unit

val note_violation : t -> string -> unit
(** Bump the global and per-module violation counters. *)

val module_violations : t -> string -> int
(** Total violations recorded against a module. *)

type snapshot = {
  s_annotation_actions : int;
  s_fn_entry : int;
  s_fn_exit : int;
  s_mem_write_checks : int;
  s_mod_indcall_checks : int;
  s_kernel_indcall_all : int;
  s_kernel_indcall_checked : int;
  s_kernel_indcall_elided : int;
  s_caps_granted : int;
  s_caps_revoked : int;
  s_principal_switches : int;
  s_violations : int;
  s_quarantines : int;
  s_escalations : int;
  s_watchdog_expiries : int;
  s_flow_violations : int;
  s_caps_dropped : int;
}

val snapshot : t -> snapshot
val since : t -> snapshot -> snapshot
(** Counter deltas since an earlier snapshot. *)

val pp : Format.formatter -> t -> unit

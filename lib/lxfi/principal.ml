(** Module principals (§3.1).

    Every module has a {e shared} principal (initial capabilities —
    imports, writable sections — implicitly available to every other
    principal of the module) and a {e global} principal (implicit
    access to the capabilities of {e all} the module's principals,
    used for cross-instance state such as econet's global socket
    list).  Instance principals are created on demand and {e named by
    pointers} — the address of the socket / net_device / block device
    the instance represents — and one logical principal may carry
    several names ([lxfi_princ_alias]: the pci_dev and the net_device
    of one NIC name the same principal). *)

type kind = Shared | Global | Instance

type t = {
  id : int;  (** unique within the runtime *)
  kind : kind;
  owner : string;  (** module name *)
  primary_name : int;  (** 0 for shared/global; the first name pointer otherwise *)
  caps : Captable.t;
  mutable quarantined : string option;
      (** quarantine reason; a quarantined principal holds no
          capabilities and cannot be selected for entry *)
  mutable flow_pos : string option;
      (** flow-automaton position: the last kexport this principal
          called, or [None] for the start state *)
  mutable flow_depth : int;
      (** nesting depth of kernel-entered activations running as this
          principal (used to save/restore [flow_pos] around nested
          entries) *)
}

let counter = ref 0

let make ~kind ~owner ~primary_name =
  incr counter;
  { id = !counter; kind; owner; primary_name; caps = Captable.create ();
    quarantined = None; flow_pos = None; flow_depth = 0 }

let describe t =
  match t.kind with
  | Shared -> Printf.sprintf "%s/shared" t.owner
  | Global -> Printf.sprintf "%s/global" t.owner
  | Instance -> Printf.sprintf "%s/instance(0x%x)" t.owner t.primary_name

let pp ppf t = Fmt.string ppf (describe t)

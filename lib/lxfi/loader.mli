(** Module loader: [insmod] plus LXFI's generated module-initialisation
    function (paper §4.2).

    Loading runs the rewriter, lays out text/rodata/data/bss/stack in
    the module area, applies global initialisers, propagates
    annotations from typed function-pointer slots and export
    declarations (conflicts are load errors), grants the initial
    capabilities to the shared principal (CALL for imports and own
    functions; WRITE for the writable sections, module stack, kernel
    stack and the blanket user-space window — and {e nothing} for
    [.rodata]), registers every function in the kernel dispatch table
    behind its wrapper, and builds the interpreter context wired to the
    runtime's guards. *)

exception Load_error of string

val stack_len : int
(** Size of each module's interpreter stack region. *)

val is_builtin : string -> bool
(** Imports named [lxfi_princ_alias], [lxfi_switch_global] or
    [lxfi_check:<type>] resolve to privileged runtime builtins rather
    than kernel exports. *)

val check_env : Runtime.t -> Check.Env.t
(** The static checker's view of this runtime: slot registry, struct
    layouts, registered iterators, annotated kernel exports. *)

val load : Runtime.t -> Mir.Ast.prog -> Runtime.module_info * Rewriter.report
(** Instrument, lay out and activate a module.  Raises {!Load_error} on
    unknown imports/slot types, conflicting annotation propagation, or
    duplicate module names; {!Rewriter.Rewrite_error} on unanalysable
    code.  Under [Config.strict_check] the static checker
    ({!Check.Checker.check_module}) runs over the pristine MIR first and
    error-severity findings are load errors. *)

val unload : Runtime.t -> Runtime.module_info -> unit
(** rmmod: run [module_exit] (if defined) as the shared principal, then
    retire the module's principals, capabilities, callable addresses
    and annotation hashes.  Pointers the exit function failed to
    unregister dangle, and a later kernel indirect call through one
    oopses — as on real hardware.  Raises {!Load_error} if the module
    is not loaded. *)

val init_call : Runtime.t -> Runtime.module_info -> string -> int64 list -> int64
(** Run a module initialisation entry point.  Annotated functions go
    through their wrapper; plain init functions run as the shared
    principal (the paper loads modules without isolation before they
    see untrusted input). *)

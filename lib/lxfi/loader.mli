(** Module loader: [insmod] plus LXFI's generated module-initialisation
    function (paper §4.2).

    Loading runs the rewriter, lays out text/rodata/data/bss/stack in
    the module area, applies global initialisers, propagates
    annotations from typed function-pointer slots and export
    declarations (conflicts are load errors), grants the initial
    capabilities to the shared principal (CALL for imports and own
    functions; WRITE for the writable sections, module stack, kernel
    stack and the blanket user-space window — and {e nothing} for
    [.rodata]), registers every function in the kernel dispatch table
    behind its wrapper, and builds the interpreter context wired to the
    runtime's guards. *)

exception Load_error of string

val stack_len : int
(** Size of each module's interpreter stack region. *)

val is_builtin : string -> bool
(** Imports named [lxfi_princ_alias], [lxfi_switch_global] or
    [lxfi_check:<type>] resolve to privileged runtime builtins rather
    than kernel exports. *)

val check_env : Runtime.t -> Check.Env.t
(** The static checker's view of this runtime: slot registry, struct
    layouts, registered iterators, annotated kernel exports. *)

val load : Runtime.t -> Mir.Ast.prog -> Runtime.module_info * Rewriter.report
(** Instrument, lay out and activate a module.  Raises {!Load_error} on
    unknown imports/slot types, conflicting annotation propagation, or
    duplicate module names; {!Rewriter.Rewrite_error} on unanalysable
    code.  Under [Config.strict_check] the static checker
    ({!Check.Checker.check_module}) runs over the pristine MIR first and
    error-severity findings are load errors. *)

val unload : Runtime.t -> Runtime.module_info -> unit
(** rmmod: run [module_exit] (if defined) as the shared principal, then
    retire the module's principals, capabilities, callable addresses
    and annotation hashes.  Retirement empties every principal's whole
    capability table — WRITE ranges, CALL targets and REF capabilities
    of {e every} registered rtype ([test_unload.ml] pins the
    multi-rtype case).  Pointers the exit function failed to
    unregister dangle, and a later kernel indirect call through one
    oopses — as on real hardware.  Raises {!Load_error} if the module
    is not loaded. *)

val init_call : Runtime.t -> Runtime.module_info -> string -> int64 list -> int64
(** Run a module initialisation entry point.  Annotated functions go
    through their wrapper; plain init functions run as the shared
    principal (the paper loads modules without isolation before they
    see untrusted input). *)

(** {1 Hot upgrade} *)

type upgrade_report = {
  up_swap_cycles : int;
      (** simulated cycles from drain to resume (module_exit,
          module_init, and one annotation action per capability the
          compatibility check processed) *)
  up_restored : int;  (** capabilities re-granted into the new instance *)
  up_dropped : int;  (** capabilities the compatibility check refused *)
  up_violations_during : int;
      (** violations raised while the swap ran — the violation-free
          oracle requires 0 *)
  up_write_surface_ok : bool;
      (** the old version's write-granting annotation sources are a
          subset of the new version's; when false, {e every} dynamic
          WRITE capability was dropped *)
  up_instances_kept : bool;
      (** every principal-selecting slot of the old version exists,
          annotation-identical, in the new one, so instance principals
          (and their capabilities) survived *)
}

val upgrade :
  Runtime.t ->
  Runtime.module_info ->
  Mir.Ast.prog ->
  Runtime.module_info * Rewriter.report * upgrade_report
(** [upgrade rt old_mi new_prog] hot-swaps a running module for a new
    version of itself: drain in-flight entries (synchronous entries are
    watchdog-fuel-bounded, so at kernel top level the module is always
    drained; calling from inside one of the module's own activations is
    a {!Load_error}), snapshot the security state, retire the old
    instance through {!unload} (revoking every dangling grant), load
    the new version, run its [module_init], then restore the snapshot
    through the compatibility filter: dynamic WRITE capabilities only
    if the old write surface is contained in the new one, CALL only
    toward the new version's imports, REF only for rtypes the new
    annotations can still yield, instance principals only under
    entry-interface preservation, and nothing held by a quarantined
    principal.  A downgraded annotation therefore {e shrinks} the
    restored grant set — never grows it.  Non-pointer global state is
    carried over by name where size and shape match. *)

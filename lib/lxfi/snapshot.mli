(** Deterministic, serializable snapshots of a module's security state:
    per-principal capability tables, quarantine status, writer-set
    lines over module-owned memory, shadow-stack depth, module global
    bytes, and guard counters.

    {!render} is byte-stable (all hash-table folds are sorted), so
    [capture -> restore -> capture] round-trips byte-identically —
    the property [test_snapshot.ml] checks over fuzzer-generated
    modules.  Capture and restore are pure table operations: no
    cycles charged, no counters bumped, no trace events. *)

type pstate = {
  ps_kind : Principal.kind;
  ps_name : int;  (** primary name pointer; 0 for shared/global *)
  ps_desc : string;  (** [Principal.describe] — the stable sort key *)
  ps_quarantined : string option;
  ps_flow : string option;  (** flow-automaton position at capture *)
  ps_writes : (int * int) list;  (** sorted (base, size) *)
  ps_calls : int list;  (** sorted targets *)
  ps_refs : (string * int) list;  (** sorted (rtype, addr) *)
}

type gstate = {
  gs_name : string;
  gs_size : int;
  gs_bytes : string;
  gs_funcptr : bool;
      (** initialisers contain function pointers; never restored across
          an upgrade (would resurrect retired addresses) *)
}

type t = {
  sn_module : string;
  sn_dead : string option;
  sn_depth : int;
  sn_principals : pstate list;  (** sorted by (kind, name, desc) *)
  sn_globals : gstate list;  (** sorted by name *)
  sn_wset : int list;  (** sorted writer-set lines over module memory *)
  sn_stats : Stats.snapshot;
}

val capture : Runtime.t -> Runtime.module_info -> t
(** Capture the module's full security state.  Deterministic: repeated
    capture of unchanged state renders byte-identically. *)

val restore : Runtime.t -> Runtime.module_info -> t -> unit
(** Exact restore: each snapshotted principal's capability table is
    cleared and re-populated, quarantine flags are reinstated, and
    non-function-pointer global bytes are written back.  Instance
    principals are materialised on demand.  Principals of [mi] not in
    the snapshot are left untouched. *)

type filter = {
  keep_write : base:int -> size:int -> bool;
  keep_call : target:int -> bool;
  keep_ref : rtype:string -> addr:int -> bool;
  keep_instances : bool;
      (** restore instance principals at all (entry-interface
          preservation, see [Loader.upgrade]) *)
}

type restore_report = { rr_restored : int; rr_dropped : int }

val restore_filtered : Runtime.t -> Runtime.module_info -> t -> filter -> restore_report
(** Additive restore through a compatibility filter: surviving
    capabilities are re-added on top of whatever [mi] already holds
    (a fresh load's baseline grants); nothing is cleared.  Capabilities
    of quarantined principals are always dropped.  Returns how many
    capabilities were restored vs dropped — the grant-shrinking
    oracle's raw material. *)

val render : t -> string
(** Byte-stable text rendering (one line per fact, sorted). *)

val diff : t -> t -> string list
(** Line-level differences between the renderings; [diff a b = []] iff
    [render a = render b].  Removed lines are prefixed ["- "], added
    lines ["+ "]. *)

val equal : t -> t -> bool

(** Per-thread shadow stacks (paper §5): wrappers push a return token
    and the principal to restore at entry, and validate/pop at exit —
    control-flow integrity for boundary returns plus interrupt-safe
    principal switching. *)

type frame = {
  token : int;  (** return token; must match at exit *)
  saved_principal : Principal.t option;  (** to restore (None = kernel) *)
  wrapper : string;  (** for diagnostics *)
}

type t = {
  mutable frames : frame list;
  mem_base : int;  (** reserved region adjacent to the kernel stack;
                       never covered by any WRITE capability *)
  mem_len : int;
  mutable max_depth : int;
  mutable token_counter : int;
}

val create : mem_base:int -> mem_len:int -> t
val depth : t -> int

val push : t -> wrapper:string -> saved_principal:Principal.t option -> int
(** Returns the token the matching {!pop} must present.  Raises a
    shadow-stack {!Violation.Violation} on overflow. *)

val pop : t -> wrapper:string -> token:int -> Principal.t option
(** Validate the return and yield the principal to restore.  Raises a
    shadow-stack {!Violation.Violation} on token mismatch or empty
    stack. *)

val top_wrapper : t -> string option

val unwind_to : t -> depth:int -> Principal.t option
(** Discard frames above [depth] without token validation — the
    quarantine path abandoning a faulted module's activations.  Returns
    the saved principal of the innermost discarded frame (what was
    current before the oldest abandoned wrapper), or [None] if nothing
    was discarded. *)

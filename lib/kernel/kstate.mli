(** Composite simulated-kernel state: memory, allocator, symbols,
    tasks, the indirect-call dispatcher, uaccess and the oops/exit path.

    The LXFI-relevant hook is [indcall]: every core-kernel invocation of
    a possibly-module-supplied function pointer goes through it, with
    the slot address and slot-type name — modelling the paper's kernel
    rewriting plugin inserting [lxfi_check_indcall] (§4.1).  The default
    dispatcher is raw (a stock kernel); [Lxfi.Runtime.install] replaces
    it. *)

type target_kind =
  | Kernel_fn  (** exported core-kernel function *)
  | Module_fn of string  (** function of the named module *)
  | User_fn  (** attacker-controlled user-space code *)

type target = {
  t_addr : int;
  t_name : string;
  t_kind : target_kind;
  t_run : int64 list -> int64;
}

exception Oops of string
(** Kernel crash (NULL deref, jump to garbage, BUG()); caught at the
    syscall boundary, where do_exit runs. *)

exception Kill_task of string

type t = {
  mem : Kmem.t;
  slab : Slab.t;
  cycles : Kcycles.t;
  types : Ktypes.t;
  sym : Ksym.t;
  calltab : (int, target) Hashtbl.t;
  mutable indcall : slot:int -> ftype:string -> int64 list -> int64;
  mutable current : Task.t;
  run_queue : (int, Task.t) Hashtbl.t;  (** scheduled tasks, by pid *)
  pid_hash : (int, Task.t) Hashtbl.t;  (** the "ps" view *)
  mutable next_pid : int;
  mutable cve_2010_4258_fixed : bool;
      (** apply the upstream do_exit fix (default false, as evaluated) *)
  mutable user_cursor : int;
  mutable stack_cursor : int;
  mutable module_cursor : int;
  mutable oops_count : int;
  mutable finject : Finject.t option;
      (** armed fault-injection engine, if any (mirrored into
          [slab.finject]) *)
}

val boot : unit -> t
(** Fresh kernel with the task_struct layout defined and an init task
    (pid 1, root) running. *)

(** {1 Callable targets and indirect dispatch} *)

val register_target :
  t ->
  name:string ->
  addr:int ->
  kind:target_kind ->
  (int64 list -> int64) ->
  unit
(** Make [addr] callable (module functions, user payloads). *)

val register_kernel_fn : t -> string -> (int64 list -> int64) -> int
(** Intern a kernel function in fake kernel text; returns its address. *)

val target_of : t -> int -> target option

val call_ptr : t -> slot:int -> ftype:string -> int64 list -> int64
(** The core kernel invoking a function pointer stored at [slot];
    [ftype] names the slot type for annotation-hash matching. *)

(** {1 Tasks and the pid hash} *)

val spawn_task : t -> uid:int -> comm:string -> Task.t
val switch_to : t -> Task.t -> unit
val current_uid : t -> int

val ps : t -> int list
(** Pids visible through the pid hash (what [ps] would show). *)

val scheduled : t -> int list
(** Pids the scheduler still runs — a rootkit-hidden task appears here
    but not in {!ps}. *)

val detach_pid : t -> Task.t -> unit
(** The exported function the §8.1 rootkit abuses: unlink from the pid
    hash only. *)

(** {1 uaccess} *)

exception Efault of int

val put_user : t -> addr:int -> size:int -> int64 -> unit
(** Write through a user-supplied pointer; requires a user address
    unless the task's address limit is KERNEL_DS. *)

val get_user : t -> addr:int -> size:int -> int64
val set_fs : t -> int -> unit

(** {1 User memory for attack programs} *)

val user_alloc : t -> int -> int
val user_map_at : t -> addr:int -> len:int -> unit

(** {1 Oops / exit path} *)

val do_exit : t -> unit
(** Task exit, including the CVE-2010-4258 behaviour: a 4-byte zero is
    written through [clear_child_tid], honouring a stale KERNEL_DS
    address limit unless [cve_2010_4258_fixed]. *)

val with_syscall : t -> (unit -> 'a) -> ('a, string) result
(** Run a system call: faults and oopses are caught, the oops path
    (do_exit) runs, and an error is returned.  An injected
    [Slab.Out_of_memory] is a clean ENOMEM error (no do_exit). *)

(** {1 Fault injection} *)

val arm_finject : t -> Finject.t -> unit
(** Make an engine the active fault injector, here and in the slab
    allocator. *)

val disarm_finject : t -> unit

(** {1 Address-space carving} *)

val alloc_module_area : t -> int -> int
val alloc_stack : t -> int -> int

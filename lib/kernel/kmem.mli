(** Simulated 64-bit kernel address space: a sparse, page-granular byte
    store with no protection of its own — as on real x86-64, the kernel
    is one privilege domain and all isolation is LXFI's. *)

val page_shift : int
val page_size : int
val page_mask : int

(** Address-space layout, mirroring Linux closely enough for the
    paper's exploits: a user range the attacker controls, kernel text,
    kernel heap (slab pages), kernel stacks, and the module area. *)
module Layout : sig
  val null_guard_top : int
  val user_base : int
  val user_top : int
  val kernel_text_base : int
  val kernel_heap_base : int
  val kernel_stack_base : int
  val module_base : int
  val is_null : int -> bool
  val is_user : int -> bool
  val is_kernel : int -> bool
  val is_module_area : int -> bool
end

exception Fault of { addr : int; write : bool }
(** Access to the NULL guard page or (when enabled) unmapped memory;
    caught at the syscall boundary where the oops path runs. *)

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable mapped_pages : int;
  mutable fault_on_unmapped : bool;
      (** default [false]: reads of unmapped pages yield zeroes and
          writes map on demand *)
  mutable last_idx : int;
      (** single-entry page-lookup cache; [-1] when empty.  Pages are
          never unmapped, so the cache never needs invalidation. *)
  mutable last_page : Bytes.t;
}

val create : unit -> t

val map : t -> addr:int -> len:int -> unit
(** Eagerly map (zero-filled) all pages covering the range. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read : t -> addr:int -> size:int -> int64
(** Little-endian load of [size] bytes (1..8). *)

val write : t -> addr:int -> size:int -> int64 -> unit
(** Little-endian store of the low [size] bytes (1..8). *)

val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit

val read_ptr : t -> int -> int
(** Pointer-sized (8-byte) load, returned as an address. *)

val write_ptr : t -> int -> int -> unit

val read_bytes : t -> addr:int -> len:int -> Bytes.t
val write_bytes : t -> addr:int -> string -> unit
val zero : t -> addr:int -> len:int -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Copy within the address space (memcpy / uaccess paths). *)

val mapped_pages : t -> int

(** Kernel log — a thin wrapper around [Logs] with a dedicated source.

    The simulated kernel and the LXFI runtime report noteworthy events
    (module loads, capability violations, oopses) through this module so
    that tests and benchmarks can silence or capture them uniformly. *)

let src = Logs.Src.create "kernel_sim" ~doc:"Simulated Linux kernel substrate"

module Log = (val Logs.src_log src : Logs.LOG)

let debug fmt = Format.kasprintf (fun s -> Log.debug (fun m -> m "%s" s)) fmt
let info fmt = Format.kasprintf (fun s -> Log.info (fun m -> m "%s" s)) fmt
let warn fmt = Format.kasprintf (fun s -> Log.warn (fun m -> m "%s" s)) fmt
let err fmt = Format.kasprintf (fun s -> Log.err (fun m -> m "%s" s)) fmt

(** [diag d] routes a structured {!Diag.t} to the kernel log at the
    [Logs] level matching its severity — the single funnel through
    which the checker, the runtime, and the containment machinery
    report. *)
let diag (d : Diag.t) =
  let s = Diag.to_string d in
  match d.Diag.d_severity with
  | Diag.Error -> err "%s" s
  | Diag.Warning -> warn "%s" s
  | Diag.Info -> info "%s" s
  | Diag.Debug -> debug "%s" s

(** [quiet ()] disables all kernel log output (used by benchmarks).
    Idempotent; inverse of {!verbose}. *)
let quiet () = Logs.Src.set_level src None

(** [verbose ()] enables debug-level output on the kernel source.
    Installs the default format reporter only when no reporter is set,
    so a reporter the CLI or a test harness installed is never
    clobbered.  Idempotent; inverse of {!quiet}. *)
let verbose () =
  if Logs.reporter () == Logs.nop_reporter then
    Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src (Some Logs.Debug)

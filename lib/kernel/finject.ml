(** Deterministic fault-injection engine.

    A single seeded engine drives every injector in the simulation:
    allocation failures (consulted by {!Slab.kmalloc}), dropped
    capability grants (consulted by the LXFI runtime's grant path) and
    corrupted function-pointer slots (applied by the campaign runner).
    All randomness derives from the seed through a splitmix64 stream,
    so a campaign with the same seed makes exactly the same decisions
    run after run — the property the faultsim report depends on. *)

type site = Alloc_fail | Drop_grant | Corrupt_slot

let site_name = function
  | Alloc_fail -> "alloc-fail"
  | Drop_grant -> "drop-grant"
  | Corrupt_slot -> "corrupt-slot"

type plan =
  | Nth of int  (** fire on the [n]th eligible event (1-based), once *)
  | Prob of float  (** fire each eligible event with this probability *)

type counter = {
  mutable c_plan : plan option;
  mutable c_seen : int;  (** eligible events observed since arming *)
  mutable c_fired : int;  (** events actually failed/dropped *)
}

type t = {
  seed : int64;
  mutable rng : int64;  (** splitmix64 state *)
  alloc : counter;
  grant : counter;
  slot : counter;
}

(* splitmix64: tiny, seedable, and plenty for deciding which event to
   fail.  (OCaml's Random is banned here: its default self-seeding
   would break report determinism.) *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let fresh () = { c_plan = None; c_seen = 0; c_fired = 0 } in
  {
    seed = Int64.of_int seed;
    rng = Int64.of_int seed;
    alloc = fresh ();
    grant = fresh ();
    slot = fresh ();
  }

let next t =
  t.rng <- Int64.add t.rng 0x9e3779b97f4a7c15L;
  mix t.rng

(** [pick t n] — a deterministic integer in [0, n). *)
let pick t n =
  if n <= 0 then invalid_arg "Finject.pick: n <= 0";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int n))

(** [float01 t] — a deterministic float in [0, 1). *)
let float01 t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let counter_of t = function
  | Alloc_fail -> t.alloc
  | Drop_grant -> t.grant
  | Corrupt_slot -> t.slot

(** [arm t site plan] starts injecting at [site]; resets its event
    counter so [Nth n] counts from this moment. *)
let arm t site plan =
  let c = counter_of t site in
  c.c_plan <- Some plan;
  c.c_seen <- 0

let disarm t site = (counter_of t site).c_plan <- None

let disarm_all t =
  disarm t Alloc_fail;
  disarm t Drop_grant;
  disarm t Corrupt_slot

(** [fires t site] — called by the instrumented operation at each
    eligible event; true means "inject the fault here". *)
let fires t site =
  let c = counter_of t site in
  match c.c_plan with
  | None -> false
  | Some plan ->
      c.c_seen <- c.c_seen + 1;
      let hit =
        match plan with
        | Nth n -> c.c_seen = n
        | Prob p -> float01 t < p
      in
      if hit then begin
        c.c_fired <- c.c_fired + 1;
        if !Trace.on then Trace.emit (Trace.Fault_injected (site_name site))
      end;
      hit

let seen t site = (counter_of t site).c_seen
let fired t site = (counter_of t site).c_fired

(** A recognisably-wild kernel address for slot corruption: inside the
    heap region but never a callable target. *)
let garbage_addr t = 0x2_0BAD_0000 + (pick t 256 * 16)

let pp ppf t =
  Fmt.pf ppf "finject{seed=%Ld; alloc=%d/%d; grant=%d/%d; slot=%d/%d}" t.seed
    t.alloc.c_fired t.alloc.c_seen t.grant.c_fired t.grant.c_seen t.slot.c_fired
    t.slot.c_seen

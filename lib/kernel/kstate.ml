(** Composite simulated-kernel state: memory, allocator, symbol table,
    tasks, the indirect-call dispatcher, and the oops/exit path.

    The one LXFI-relevant hook here is [indcall]: every place the core
    kernel invokes a function pointer that a module may have supplied
    (socket ops, netdev ops, PCI probe, NAPI poll, dm-target ops, pcm
    ops) goes through this single dispatcher, passing the {e slot
    address} the pointer was loaded from and the {e slot-type name}.
    This models the paper's kernel rewriting plugin (§4.1), which
    inserts [lxfi_check_indcall(pptr, ahash)] before every indirect call
    in the core kernel.  Stock and XFI-like configurations leave the
    default dispatcher (no check) in place; the LXFI runtime replaces it
    with the checking version. *)

type target_kind =
  | Kernel_fn  (** exported core-kernel function *)
  | Module_fn of string  (** function belonging to the named module *)
  | User_fn  (** attacker-controlled user-space code *)

type target = {
  t_addr : int;
  t_name : string;
  t_kind : target_kind;
  t_run : int64 list -> int64;
}

exception Oops of string
(** A kernel crash: NULL dereference, jump to garbage, BUG().  Caught at
    the syscall boundary, where the do_exit path runs. *)

exception Kill_task of string
(** Controlled termination of the current task (LXFI panics the kernel in
    the paper; tests prefer killing the offending task context). *)

type t = {
  mem : Kmem.t;
  slab : Slab.t;
  cycles : Kcycles.t;
  types : Ktypes.t;
  sym : Ksym.t;
  calltab : (int, target) Hashtbl.t;
  mutable indcall : slot:int -> ftype:string -> int64 list -> int64;
  mutable current : Task.t;
  run_queue : (int, Task.t) Hashtbl.t;  (** scheduled tasks, by pid *)
  pid_hash : (int, Task.t) Hashtbl.t;  (** pid lookup table ("ps" view) *)
  mutable next_pid : int;
  mutable cve_2010_4258_fixed : bool;
      (** when true, do_exit resets the address limit before writing
          [clear_child_tid] (the upstream fix); default false, matching
          the kernel the paper evaluated *)
  mutable user_cursor : int;
  mutable stack_cursor : int;
  mutable module_cursor : int;
  mutable oops_count : int;
  mutable finject : Finject.t option;
      (** armed fault-injection engine, if any (also mirrored into
          [slab.finject] so the allocator can consult it) *)
}

let boot () =
  let mem = Kmem.create () in
  let cycles = Kcycles.create () in
  let slab = Slab.create mem cycles in
  let types = Ktypes.create () in
  Task.define_layout types;
  let sym = Ksym.create () in
  let t =
    {
      mem;
      slab;
      cycles;
      types;
      sym;
      calltab = Hashtbl.create 64;
      indcall = (fun ~slot:_ ~ftype:_ _ -> 0L);
      current = { Task.addr = 0; pid = 0 };
      run_queue = Hashtbl.create 16;
      pid_hash = Hashtbl.create 16;
      next_pid = 1;
      cve_2010_4258_fixed = false;
      user_cursor = Kmem.Layout.user_base + 0x10000;
      stack_cursor = Kmem.Layout.kernel_stack_base;
      module_cursor = Kmem.Layout.module_base;
      oops_count = 0;
      finject = None;
    }
  in
  (* init task (pid 1, root). *)
  let init = Task.create mem slab types ~pid:1 ~uid:0 ~comm:"init" in
  t.next_pid <- 2;
  Hashtbl.replace t.run_queue 1 init;
  Hashtbl.replace t.pid_hash 1 init;
  t.current <- init;
  (* Default dispatcher: raw, unchecked — a stock kernel. *)
  t.indcall <-
    (fun ~slot ~ftype:_ args ->
      let target = Kmem.read_ptr mem slot in
      match Hashtbl.find_opt t.calltab target with
      | Some tg -> tg.t_run args
      | None -> raise (Oops (Printf.sprintf "indirect call to bad address 0x%x" target)));
  t

(** {1 Targets and dispatch} *)

(** [register_target t ~name ~addr ~kind run] makes [addr] callable. *)
let register_target t ~name ~addr ~kind run =
  Ksym.register_at t.sym name addr;
  Hashtbl.replace t.calltab addr { t_addr = addr; t_name = name; t_kind = kind; t_run = run }

(** [register_kernel_fn t name run] interns [name] in kernel text and
    makes it callable; returns its address. *)
let register_kernel_fn t name run =
  let addr = Ksym.intern t.sym name in
  Hashtbl.replace t.calltab addr
    { t_addr = addr; t_name = name; t_kind = Kernel_fn; t_run = run };
  addr

let target_of t addr = Hashtbl.find_opt t.calltab addr

(** [call_ptr t ~slot ~ftype args] is the core kernel invoking a function
    pointer stored at address [slot]; [ftype] names the pointer's slot
    type (e.g. ["proto_ops.ioctl"]) for annotation-hash matching. *)
let call_ptr t ~slot ~ftype args =
  Kcycles.charge t.cycles Kcycles.Kernel 6;
  t.indcall ~slot ~ftype args

(** {1 Tasks, scheduling and the pid hash} *)

let spawn_task t ~uid ~comm =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let task = Task.create t.mem t.slab t.types ~pid ~uid ~comm in
  Hashtbl.replace t.run_queue pid task;
  Hashtbl.replace t.pid_hash pid task;
  task

(** Switch the current task (our "scheduler"). *)
let switch_to t task = t.current <- task

let current_uid t = Task.uid t.mem t.types t.current

(** [ps t] is what the [ps] command would show: tasks reachable through
    the pid hash.  A rootkit that detaches a task from the pid hash hides
    it from this listing while [scheduled t] still runs it. *)
let ps t = Hashtbl.fold (fun pid _ acc -> pid :: acc) t.pid_hash [] |> List.sort compare

let scheduled t =
  Hashtbl.fold (fun pid _ acc -> pid :: acc) t.run_queue [] |> List.sort compare

(** [detach_pid t task] — exported kernel function abused by the rootkit
    variant in §8.1: unlinks [task] from the pid hash only. *)
let detach_pid t (task : Task.t) = Hashtbl.remove t.pid_hash task.pid

(** {1 uaccess} *)

exception Efault of int

(** [put_user t ~addr ~size v] writes to a user-supplied pointer with the
    usual access check: the target must be a user address unless the
    current task's address limit is KERNEL_DS. *)
let put_user t ~addr ~size v =
  let limit = Task.addr_limit t.mem t.types t.current in
  if Kmem.Layout.is_user addr || limit = Task.kernel_ds then
    Kmem.write t.mem ~addr ~size v
  else raise (Efault addr)

let get_user t ~addr ~size =
  let limit = Task.addr_limit t.mem t.types t.current in
  if Kmem.Layout.is_user addr || limit = Task.kernel_ds then
    Kmem.read t.mem ~addr ~size
  else raise (Efault addr)

let set_fs t limit = Task.set_addr_limit t.mem t.types t.current limit

(** {1 User memory for attack programs} *)

(** [user_alloc t len] hands the attack program a fresh user-space
    buffer. *)
let user_alloc t len =
  let a = t.user_cursor in
  t.user_cursor <- (t.user_cursor + len + 0xfff) land lnot 0xfff;
  Kmem.map t.mem ~addr:a ~len;
  a

(** [user_map_at t ~addr ~len] maps user memory at a chosen address (the
    Econet exploit maps the page its corrupted pointer will land in). *)
let user_map_at t ~addr ~len =
  if not (Kmem.Layout.is_user addr) then invalid_arg "user_map_at: not a user address";
  Kmem.map t.mem ~addr ~len

(** {1 Oops / do_exit path} *)

(** The do_exit behaviour at the heart of CVE-2010-4258: when a task dies
    (including from an oops), the kernel writes a 4-byte zero to the
    task's [clear_child_tid] user pointer.  On the vulnerable kernel this
    write honours a stale KERNEL_DS address limit left by the faulting
    path, so it can hit kernel memory. *)
let do_exit t =
  let task = t.current in
  let tid = Task.clear_child_tid t.mem t.types task in
  (if tid <> 0 then begin
     if t.cve_2010_4258_fixed then set_fs t Task.user_ds;
     try put_user t ~addr:tid ~size:4 0L with Efault _ -> ()
   end);
  Hashtbl.remove t.run_queue task.pid;
  Hashtbl.remove t.pid_hash task.pid

(** [with_syscall t f] runs [f ()] as a system call issued by the current
    task: kernel faults and oopses are caught, the oops path (do_exit)
    runs, and an error code is returned — the attack programs rely on
    surviving their own induced oopses in other tasks. *)
let with_syscall t f =
  try Ok (f ()) with
  | Kmem.Fault { addr; write } ->
      t.oops_count <- t.oops_count + 1;
      Klog.warn "kernel oops: bad %s at 0x%x" (if write then "write" else "read") addr;
      do_exit t;
      Error (Printf.sprintf "oops: fault at 0x%x" addr)
  | Oops msg ->
      t.oops_count <- t.oops_count + 1;
      Klog.warn "kernel oops: %s" msg;
      do_exit t;
      Error ("oops: " ^ msg)
  | Kill_task msg ->
      Klog.warn "task killed: %s" msg;
      Error ("killed: " ^ msg)
  | Slab.Out_of_memory ->
      (* ENOMEM is a clean failure, not an oops: the task survives. *)
      Klog.warn "allocation failed (injected or genuine OOM)";
      Error "ENOMEM"

(** {1 Fault injection} *)

(** [arm_finject t fi] makes [fi] the active fault-injection engine —
    both here and in the slab allocator. *)
let arm_finject t fi =
  t.finject <- Some fi;
  t.slab.Slab.finject <- Some fi

let disarm_finject t =
  t.finject <- None;
  t.slab.Slab.finject <- None

(** {1 Section carving for module loading} *)

(** [alloc_module_area t len] reserves page-aligned space in the module
    region (text/rodata/data/bss/stack sections of loaded modules). *)
let alloc_module_area t len =
  let a = t.module_cursor in
  t.module_cursor <- (t.module_cursor + len + 0xfff) land lnot 0xfff;
  Kmem.map t.mem ~addr:a ~len;
  a

(** [alloc_stack t len] reserves a kernel thread stack (the LXFI shadow
    stack is carved adjacent to it by the runtime). *)
let alloc_stack t len =
  let a = t.stack_cursor in
  t.stack_cursor <- (t.stack_cursor + len + 0xfff) land lnot 0xfff;
  Kmem.map t.mem ~addr:a ~len;
  a
